// Watch the analysis hold up against the packet-level simulator: runs the
// Figure-1/2/3 scenario in the discrete-event model of the Click switch
// and compares every flow's observed worst case with its holistic bound.
//
//   $ ./sim_validation [seconds]
#include <cstdio>
#include <cstdlib>

#include "core/holistic.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"
#include "workload/scenario.hpp"

using namespace gmfnet;

int main(int argc, char** argv) {
  const int seconds = argc > 1 ? std::atoi(argv[1]) : 5;

  const auto scenario = workload::make_figure2_scenario(10'000'000, true);
  std::printf("Simulating %d s of the Figure-1 network with the MPEG flow, "
              "a competing video\nand a VoIP flow; software switches run "
              "stride-scheduled ingress/egress tasks\n(CROUTE=2.7us, "
              "CSEND=1.0us) exactly as in Figure 5.\n\n",
              seconds);

  core::AnalysisContext ctx(scenario.network, scenario.flows);
  const auto bound = core::analyze_holistic(ctx);
  if (!bound.converged) {
    std::printf("analysis diverged — nothing to validate\n");
    return 1;
  }

  sim::SimOptions opts;
  opts.horizon = Time::sec(seconds);
  opts.source.model = sim::ArrivalModel::kPeriodic;
  sim::Simulator simulator(scenario.network, scenario.flows, opts);
  simulator.run();

  Table t("Observed response times vs analytical bounds");
  t.set_columns({"flow", "packets", "mean", "observed worst", "bound",
                 "headroom", "sound"});
  bool all_sound = true;
  for (std::size_t f = 0; f < scenario.flows.size(); ++f) {
    const net::FlowId id(static_cast<std::int32_t>(f));
    const auto& st = simulator.stats(id);
    double mean_s = 0;
    std::uint64_t n = 0;
    for (const auto& ks : st.per_kind) {
      mean_s += ks.mean() * static_cast<double>(ks.count());
      n += ks.count();
    }
    if (n > 0) mean_s /= static_cast<double>(n);
    const Time worst = st.worst_response();
    const Time b = bound.flows[f].worst_response();
    bool sound = true;
    for (std::size_t k = 0; k < scenario.flows[f].frame_count(); ++k) {
      if (st.per_kind[k].count() > 0 &&
          st.max_response[k] > bound.flows[f].frames[k].response) {
        sound = false;
      }
    }
    all_sound &= sound;
    t.add_row({scenario.flows[f].name(), std::to_string(st.packets_completed),
               Time::sec_f(mean_s).str(), worst.str(), b.str(),
               Table::fixed(worst.ps() > 0
                                ? static_cast<double>(b.ps()) /
                                      static_cast<double>(worst.ps())
                                : 0.0,
                            2) +
                   "x",
               sound ? "yes" : "VIOLATED"});
  }
  t.print();
  std::printf("\nevery observation under its bound: %s\n",
              all_sound ? "yes — the analysis held" : "NO — bug!");
  return all_sound ? 0 : 1;
}
