// Online admission control for VoIP, the paper's motivating application
// (the "Telefonkaos" incident: telephony over Ethernet without delay
// guarantees).  An operator's switch admits calls one by one, each with a
// guaranteed network delay, and refuses the call that would break any
// guarantee.
//
// Decisions run on the incremental AnalysisEngine: the analysis world and
// its converged jitter fixed point live across arrivals, so each verdict
// re-analyses only the component the call touches, warm-started — the
// per-decision latency column is the point.
//
//   $ ./voip_admission [max_calls]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/admission.hpp"
#include "net/topology.hpp"
#include "util/table.hpp"
#include "workload/scenario.hpp"

using namespace gmfnet;

int main(int argc, char** argv) {
  const int max_calls = argc > 1 ? std::atoi(argv[1]) : 64;

  // An office: one software switch, 10 phones, 10 Mbit/s cabling.
  const auto star = net::make_star_network(10, 10'000'000);
  core::AdmissionController controller(star.net);

  std::printf("Admitting G.711 calls (160-byte RTP payload every 20 ms, "
              "20 ms network deadline)\nonto a 10-port software switch, "
              "10 Mbit/s links...\n\n");

  Table t("Admission log");
  t.set_columns({"call", "endpoints", "verdict", "decision us",
                 "worst bound after"});
  Rng rng(7);
  int admitted = 0;
  for (int c = 0; c < max_calls; ++c) {
    const auto a = static_cast<std::size_t>(rng.next_below(10));
    auto b = a;
    while (b == a) b = static_cast<std::size_t>(rng.next_below(10));

    const gmf::Flow call = workload::make_voip_flow(
        "call" + std::to_string(c),
        net::Route({star.hosts[a], star.sw, star.hosts[b]}));
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = controller.try_admit(call);
    const auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    std::string worst = "-";
    if (result) {
      ++admitted;
      Time w = Time::zero();
      for (std::size_t f = 0; f < result->flows.size(); ++f) {
        w = max(w, result->flows[f].worst_response());
      }
      worst = w.str();
    }
    t.add_row({std::to_string(c),
               "h" + std::to_string(a) + " -> h" + std::to_string(b),
               result ? "ADMIT" : "reject", Table::fixed(us, 1), worst});
    if (!result && admitted + 8 < c) break;  // saturated; stop logging
  }
  t.print();

  const engine::EngineStats& stats = controller.engine().stats();
  std::printf("\n%d calls admitted, %zu rejected.\n", admitted,
              controller.rejected_count());
  std::printf("Engine: %zu per-flow analyses run, %zu cached flow results "
              "reused, %zu sweeps total\n        across %zu evaluations "
              "(%zu cold, %zu incremental).\n",
              stats.flow_analyses, stats.flow_results_reused, stats.sweeps,
              stats.evaluations, stats.full_runs, stats.incremental_runs);
  std::printf("Every admitted call keeps a proven end-to-end bound below "
              "its 20 ms budget —\nthe guarantee the incident's network "
              "lacked.\n");
  return admitted > 0 ? 0 : 1;
}
