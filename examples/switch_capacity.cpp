// Capacity planning for software-implemented Ethernet switches: the
// Conclusions' multiprocessor argument as a tool.
//
//   $ ./switch_capacity [ports] [croute_us] [csend_us]
//
// For a switch with the given port count and per-frame task costs, prints
// the stride service period CIRC per CPU count and the fastest standard
// link rate each configuration sustains (CIRC < MFT).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "ethernet/framing.hpp"
#include "switchsim/switch_model.hpp"
#include "util/table.hpp"

using namespace gmfnet;

int main(int argc, char** argv) {
  const int ports = argc > 1 ? std::atoi(argv[1]) : 48;
  const double croute_us = argc > 2 ? std::atof(argv[2]) : 2.7;
  const double csend_us = argc > 3 ? std::atof(argv[3]) : 1.0;
  const Time croute = Time::us_f(croute_us);
  const Time csend = Time::us_f(csend_us);

  std::printf("Switch with %d ports, CROUTE=%s, CSEND=%s (paper defaults "
              "are the Click measurements).\n\n",
              ports, croute.str().c_str(), csend.str().c_str());

  const std::vector<std::pair<const char*, ethernet::LinkSpeedBps>> rates = {
      {"10 Mbit/s", 10'000'000},
      {"100 Mbit/s", 100'000'000},
      {"1 Gbit/s", 1'000'000'000},
      {"10 Gbit/s", 10'000'000'000LL},
  };

  Table t("CIRC and sustainable line rate vs CPU count");
  t.set_columns({"CPUs", "ports/CPU", "CIRC", "fastest sustained rate"});
  for (int cpus = 1; cpus <= ports; cpus *= 2) {
    const Time circ = switchsim::circ_multiproc(ports, cpus, croute, csend);
    const char* best = "none";
    for (const auto& [name, bps] : rates) {
      if (switchsim::sustains_linkspeed(circ, bps)) best = name;
    }
    t.add_row({std::to_string(cpus),
               std::to_string(switchsim::interfaces_per_processor(ports, cpus)),
               circ.str(), best});
  }
  t.print();

  std::printf("\nRule: a configuration sustains a rate when CIRC < MFT "
              "(the egress task is\nguaranteed a service within every "
              "frame transmission).  MFT at 1 Gbit/s is %s.\n",
              ethernet::max_frame_transmission_time(1'000'000'000)
                  .str()
                  .c_str());
  std::printf("The paper's 16-CPU example: CIRC = %s.\n",
              switchsim::circ_multiproc(48, 16, Time::ns(2700),
                                        Time::ns(1000))
                  .str()
                  .c_str());
  return 0;
}
