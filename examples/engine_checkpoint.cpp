// Warm-boot workflow: run an admission controller, checkpoint its converged
// state, "kill" the process (drop the engine), and restore a fully warm
// engine from the checkpoint file — the restored engine answers what-if
// probes immediately, without a single solver run.
//
//   $ ./engine_checkpoint [checkpoint-path]
//
// The checkpoint path defaults to engine.ckpt in the working directory.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "engine/analysis_engine.hpp"
#include "io/atomic_file.hpp"
#include "io/checkpoint.hpp"
#include "net/network.hpp"
#include "workload/scenario.hpp"

using namespace gmfnet;

namespace {

double wall_us(const std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "engine.ckpt";

  // A small campus: 4 star cells, 8 phones each, a mix of calls per cell.
  net::Network net;
  std::vector<std::vector<net::NodeId>> hosts;
  std::vector<net::NodeId> switches;
  for (int cell = 0; cell < 4; ++cell) {
    const net::NodeId sw = net.add_switch("sw" + std::to_string(cell));
    switches.push_back(sw);
    hosts.emplace_back();
    for (int h = 0; h < 8; ++h) {
      const net::NodeId host = net.add_endhost(
          "c" + std::to_string(cell) + "h" + std::to_string(h));
      net.add_duplex_link(host, sw, 100'000'000);
      hosts.back().push_back(host);
    }
  }
  const auto call = [&](int n) {
    const std::size_t cell = static_cast<std::size_t>(n) % 4;
    const std::size_t pair = (static_cast<std::size_t>(n) / 4) % 4;
    return workload::make_voip_flow(
        "call" + std::to_string(n),
        net::Route({hosts[cell][2 * pair], switches[cell],
                    hosts[cell][2 * pair + 1]}),
        gmfnet::Time::ms(20), /*priority=*/5);
  };

  // --- day 1: serve admissions, then checkpoint ---------------------------
  {
    engine::AnalysisEngine eng(net);
    int admitted = 0;
    for (int n = 0; n < 48; ++n) admitted += eng.try_admit(call(n)).has_value();
    std::printf("live engine: %d/48 admitted, %zu residents across %zu "
                "locality domains\n",
                admitted, eng.flow_count(), eng.shard_count());

    // Atomic replace (temp + fsync + rename): a crash mid-save never
    // leaves a truncated checkpoint where a good one used to be.
    io::AtomicFileWriter out(path);
    const auto t0 = std::chrono::steady_clock::now();
    eng.save(out.stream());
    out.commit();
    std::printf("checkpoint written to %s in %.0f us\n", path.c_str(),
                wall_us(t0));
  }  // engine destroyed — the "process" dies here

  // --- day 2: warm-boot from the checkpoint -------------------------------
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::printf("cannot reopen %s\n", path.c_str());
    return 1;
  }
  const auto t0 = std::chrono::steady_clock::now();
  engine::AnalysisEngine restored = engine::AnalysisEngine::restore(in);
  const double restore_us = wall_us(t0);

  const engine::EngineStats s = restored.stats();
  std::printf("restored %zu residents / %zu domains in %.0f us with %zu "
              "solver runs\n",
              restored.flow_count(), restored.shard_count(), restore_us,
              s.evaluations);

  // The published snapshot is immediately probe-ready.
  const auto t1 = std::chrono::steady_clock::now();
  const engine::WhatIfResult probe = restored.published()->what_if(call(100));
  std::printf("first post-restore what-if: %s in %.0f us (engine solver "
              "runs recorded: %zu)\n",
              probe.admissible ? "admit" : "reject", wall_us(t1),
              restored.stats().evaluations);
  return 0;
}
