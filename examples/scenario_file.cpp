// Operator workflow: scenarios live in config files, not C++.  Loads a
// scenario (from a path given on the command line, or a built-in demo
// written to a temp file first), analyses it, prints a slack report, then
// answers the operator's next question — "what else would fit?" — with a
// batch of incremental what-if probes against the cached analysis state.
//
//   $ ./scenario_file [scenario.txt]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/sensitivity.hpp"
#include "engine/analysis_engine.hpp"
#include "io/scenario_io.hpp"
#include "util/table.hpp"

using namespace gmfnet;

namespace {

const char* kDemo = R"(# demo: two buildings, two switches, mixed traffic
endhost cam1
endhost cam2
endhost nvr
endhost phone1
endhost phone2
switch  sw-a croute_ns=2700 csend_ns=1000
switch  sw-b croute_ns=2700 csend_ns=1000
duplex  cam1 sw-a 100000000
duplex  cam2 sw-a 100000000
duplex  phone1 sw-a 100000000
duplex  sw-a sw-b 100000000
duplex  nvr sw-b 100000000
duplex  phone2 sw-b 100000000

# surveillance video: 20 kB I-frame then three 3 kB P-frames, 25 fps
flow cam1-feed prio=1 route=cam1,sw-a,sw-b,nvr
frame t_ms=40 d_ms=80 gj_ms=1 payload_bytes=20000
frame t_ms=40 d_ms=80 gj_ms=1 payload_bytes=3000
frame t_ms=40 d_ms=80 gj_ms=1 payload_bytes=3000
frame t_ms=40 d_ms=80 gj_ms=1 payload_bytes=3000

flow cam2-feed prio=1 route=cam2,sw-a,sw-b,nvr
frame t_ms=40 d_ms=80 gj_ms=1 payload_bytes=20000
frame t_ms=40 d_ms=80 gj_ms=1 payload_bytes=3000
frame t_ms=40 d_ms=80 gj_ms=1 payload_bytes=3000
frame t_ms=40 d_ms=80 gj_ms=1 payload_bytes=3000

# telephony across the trunk
flow call prio=5 rtp route=phone1,sw-a,sw-b,phone2
frame t_ms=20 d_ms=20 gj_us=500 payload_bytes=160
flow call-back prio=5 rtp route=phone2,sw-b,sw-a,phone1
frame t_ms=20 d_ms=20 gj_us=500 payload_bytes=160
)";

std::string stage_name(const workload::Scenario& s,
                       const core::StageKey& st) {
  if (st.is_link()) {
    return "link(" + s.network.node(st.a).name + " -> " +
           s.network.node(st.b).name + ")";
  }
  return "in(" + s.network.node(st.a).name + ")";
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = std::string(std::getenv("TMPDIR") ? std::getenv("TMPDIR")
                                             : "/tmp") +
           "/gmfnet_demo_scenario.txt";
    const auto demo = io::parse_scenario(kDemo);
    if (!io::save_scenario(demo, path)) {
      std::printf("cannot write demo scenario to %s\n", path.c_str());
      return 1;
    }
    std::printf("(no file given; wrote the built-in demo to %s)\n\n",
                path.c_str());
  }

  workload::Scenario scenario;
  try {
    scenario = io::load_scenario(path);
  } catch (const std::exception& e) {
    std::printf("failed to load %s: %s\n", path.c_str(), e.what());
    return 1;
  }
  std::printf("loaded %zu nodes, %zu links, %zu flows from %s\n\n",
              scenario.network.node_count(), scenario.network.link_count(),
              scenario.flows.size(), path.c_str());

  // The engine owns the sharded analysis world; the what-if probes below
  // reuse its published fixed point.  The slack sweep wants one whole-set
  // context, so it builds its own — but warm-starts its solve from the
  // engine's converged jitters (same flows, same global order), so the
  // fixed point is confirmed rather than recomputed.
  engine::AnalysisEngine eng(scenario.network);
  for (const gmf::Flow& f : scenario.flows) eng.add_flow(f);
  const core::HolisticResult& engine_result = eng.evaluate();

  const core::AnalysisContext slack_ctx(scenario.network, scenario.flows);
  core::HolisticOptions slack_opts;
  slack_opts.warm_start = core::WarmStartView(engine_result.jitters);
  const auto slack = core::compute_slack(slack_ctx, slack_opts);
  if (!slack) {
    std::printf("analysis diverged: the configuration is overloaded\n");
    return 1;
  }

  Table t("Guarantee report");
  t.set_columns({"flow", "slack", "verdict", "bottleneck"});
  bool all_ok = true;
  for (const core::FlowSlack& fs : *slack) {
    const auto& flow = scenario.flows[static_cast<std::size_t>(fs.flow.v)];
    const bool ok = fs.slack >= Time::zero();
    all_ok &= ok;
    t.add_row({flow.name(), fs.slack.str(), ok ? "GUARANTEED" : "AT RISK",
               stage_name(scenario, fs.bottleneck)});
  }
  t.print();
  std::printf("\noverall: %s\n", all_ok ? "all deadlines guaranteed"
                                        : "NOT schedulable as configured");

  // What-if: would a clone of each flow (one more camera, one more call on
  // the same route) still be guaranteed?  One batch, fanned over the
  // thread pool, each probe warm-started from the cached fixed point.
  std::vector<gmf::Flow> candidates;
  for (const gmf::Flow& f : scenario.flows) {
    gmf::Flow clone = f;
    clone.set_name(f.name() + "+1");
    candidates.push_back(std::move(clone));
  }
  const auto probes = eng.evaluate_batch(candidates);

  Table w("What-if: one more of each");
  w.set_columns({"candidate", "verdict", "its worst bound"});
  for (std::size_t i = 0; i < probes.size(); ++i) {
    const auto cand_id =
        core::FlowId(static_cast<std::int32_t>(scenario.flows.size()));
    w.add_row({candidates[i].name(),
               probes[i].admissible ? "would fit" : "would NOT fit",
               probes[i].converged()
                   ? probes[i].worst_response(cand_id).str()
                   : "diverges"});
  }
  std::printf("\n");
  w.print();
  return all_ok ? 0 : 1;
}
