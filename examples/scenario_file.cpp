// Operator workflow: scenarios live in config files, not C++.  Loads a
// scenario (from a path given on the command line, or a built-in demo
// written to a temp file first), analyses it and prints a slack report.
//
//   $ ./scenario_file [scenario.txt]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/sensitivity.hpp"
#include "io/scenario_io.hpp"
#include "util/table.hpp"

using namespace gmfnet;

namespace {

const char* kDemo = R"(# demo: two buildings, two switches, mixed traffic
endhost cam1
endhost cam2
endhost nvr
endhost phone1
endhost phone2
switch  sw-a croute_ns=2700 csend_ns=1000
switch  sw-b croute_ns=2700 csend_ns=1000
duplex  cam1 sw-a 100000000
duplex  cam2 sw-a 100000000
duplex  phone1 sw-a 100000000
duplex  sw-a sw-b 100000000
duplex  nvr sw-b 100000000
duplex  phone2 sw-b 100000000

# surveillance video: 20 kB I-frame then three 3 kB P-frames, 25 fps
flow cam1-feed prio=1 route=cam1,sw-a,sw-b,nvr
frame t_ms=40 d_ms=80 gj_ms=1 payload_bytes=20000
frame t_ms=40 d_ms=80 gj_ms=1 payload_bytes=3000
frame t_ms=40 d_ms=80 gj_ms=1 payload_bytes=3000
frame t_ms=40 d_ms=80 gj_ms=1 payload_bytes=3000

flow cam2-feed prio=1 route=cam2,sw-a,sw-b,nvr
frame t_ms=40 d_ms=80 gj_ms=1 payload_bytes=20000
frame t_ms=40 d_ms=80 gj_ms=1 payload_bytes=3000
frame t_ms=40 d_ms=80 gj_ms=1 payload_bytes=3000
frame t_ms=40 d_ms=80 gj_ms=1 payload_bytes=3000

# telephony across the trunk
flow call prio=5 rtp route=phone1,sw-a,sw-b,phone2
frame t_ms=20 d_ms=20 gj_us=500 payload_bytes=160
flow call-back prio=5 rtp route=phone2,sw-b,sw-a,phone1
frame t_ms=20 d_ms=20 gj_us=500 payload_bytes=160
)";

std::string stage_name(const workload::Scenario& s,
                       const core::StageKey& st) {
  if (st.is_link()) {
    return "link(" + s.network.node(st.a).name + " -> " +
           s.network.node(st.b).name + ")";
  }
  return "in(" + s.network.node(st.a).name + ")";
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = std::string(std::getenv("TMPDIR") ? std::getenv("TMPDIR")
                                             : "/tmp") +
           "/gmfnet_demo_scenario.txt";
    const auto demo = io::parse_scenario(kDemo);
    if (!io::save_scenario(demo, path)) {
      std::printf("cannot write demo scenario to %s\n", path.c_str());
      return 1;
    }
    std::printf("(no file given; wrote the built-in demo to %s)\n\n",
                path.c_str());
  }

  workload::Scenario scenario;
  try {
    scenario = io::load_scenario(path);
  } catch (const std::exception& e) {
    std::printf("failed to load %s: %s\n", path.c_str(), e.what());
    return 1;
  }
  std::printf("loaded %zu nodes, %zu links, %zu flows from %s\n\n",
              scenario.network.node_count(), scenario.network.link_count(),
              scenario.flows.size(), path.c_str());

  core::AnalysisContext ctx(scenario.network, scenario.flows);
  const auto slack = core::compute_slack(ctx);
  if (!slack) {
    std::printf("analysis diverged: the configuration is overloaded\n");
    return 1;
  }

  Table t("Guarantee report");
  t.set_columns({"flow", "slack", "verdict", "bottleneck"});
  bool all_ok = true;
  for (const core::FlowSlack& fs : *slack) {
    const auto& flow = scenario.flows[static_cast<std::size_t>(fs.flow.v)];
    const bool ok = fs.slack >= Time::zero();
    all_ok &= ok;
    t.add_row({flow.name(), fs.slack.str(), ok ? "GUARANTEED" : "AT RISK",
               stage_name(scenario, fs.bottleneck)});
  }
  t.print();
  std::printf("\noverall: %s\n", all_ok ? "all deadlines guaranteed"
                                        : "NOT schedulable as configured");
  return all_ok ? 0 : 1;
}
