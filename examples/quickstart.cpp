// Quickstart: build a network, describe a GMF flow, get a guaranteed
// end-to-end response-time bound.
//
//   $ ./quickstart
//
// Walks through the whole public API in ~60 lines: topology, flow
// definition, holistic analysis, verdict.
#include <cstdio>

#include "core/holistic.hpp"
#include "gmf/flow.hpp"
#include "net/network.hpp"
#include "net/route.hpp"

using namespace gmfnet;

int main() {
  // 1. The network: two PCs connected through one software Ethernet switch
  //    (Click-style; the defaults are the paper's measured task costs,
  //    CROUTE = 2.7 us, CSEND = 1.0 us).
  net::Network network;
  const net::NodeId alice = network.add_endhost("alice");
  const net::NodeId sw = network.add_switch("sw");
  const net::NodeId bob = network.add_endhost("bob");
  network.add_duplex_link(alice, sw, 100'000'000);  // 100 Mbit/s
  network.add_duplex_link(sw, bob, 100'000'000);

  // 2. The traffic: a generalized multiframe flow.  This one alternates a
  //    large 8 kB packet and two small 1 kB packets, 10 ms apart — think
  //    "one I-frame, two P-frames".  Every packet must arrive within 20 ms.
  std::vector<gmf::FrameSpec> frames(3);
  for (std::size_t k = 0; k < 3; ++k) {
    frames[k].min_separation = Time::ms(10);   // T_i^k
    frames[k].deadline = Time::ms(20);         // D_i^k (end-to-end)
    frames[k].jitter = Time::us(200);          // GJ_i^k release window
    frames[k].payload_bits = (k == 0 ? 8'000 : 1'000) * 8;  // S_i^k
  }
  const gmf::Flow flow("video", net::Route({alice, sw, bob}), frames,
                       /*priority=*/3);

  // 3. The analysis: holistic response-time analysis over every hop
  //    (first link, switch ingress, prioritized switch egress).
  core::AnalysisContext ctx(network, {flow});
  const core::HolisticResult result = core::analyze_holistic(ctx);

  if (!result.converged) {
    std::printf("The analysis diverged: the network is overloaded.\n");
    return 1;
  }

  // 4. The verdict, per GMF frame.
  std::printf("flow 'video' through %zu pipeline stages:\n",
              ctx.stages(core::FlowId(0)).size());
  for (std::size_t k = 0; k < flow.frame_count(); ++k) {
    const auto& fr = result.flows[0].frames[k];
    std::printf("  frame %zu (%5lld bytes): bound %-10s deadline %-8s %s\n",
                k,
                static_cast<long long>(flow.frame(k).payload_bits / 8),
                fr.response.str().c_str(),
                flow.frame(k).deadline.str().c_str(),
                fr.meets_deadline ? "OK" : "MISS");
  }
  std::printf("schedulable: %s\n", result.schedulable ? "yes" : "no");
  return result.schedulable ? 0 : 1;
}
