// From packet capture to delay guarantee: fit a GMF flow from an observed
// trace (here synthesized: an MPEG-like stream with timing wobble), then
// analyse it on the paper's example network.
//
//   $ ./trace_analysis
#include <cstdio>
#include <vector>

#include "core/holistic.hpp"
#include "gmf/trace_fit.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace gmfnet;

int main() {
  // --- 1. "Capture" traffic: what a monitor port would record. ----------
  // A 9-slot MPEG pattern at nominally 30 ms spacing with up to 8% jitter
  // in the gaps, 8 GOPs long.
  const std::vector<ethernet::Bits> gop = {
      16000 * 8, 1500 * 8, 1500 * 8, 4000 * 8, 1500 * 8,
      1500 * 8,  4000 * 8, 1500 * 8, 1500 * 8};
  Rng rng(2026);
  std::vector<gmf::TracePacket> trace;
  Time t = Time::zero();
  for (int cycle = 0; cycle < 8; ++cycle) {
    for (const ethernet::Bits size : gop) {
      trace.push_back(gmf::TracePacket{t, size});
      t += Time(static_cast<Time::rep>(
          30e9 * (1.0 + 0.08 * rng.uniform01())));
    }
  }
  std::printf("captured %zu packets over %s\n", trace.size(),
              trace.back().timestamp.str().c_str());

  // --- 2. Fit the GMF parameters. ---------------------------------------
  const gmf::CycleDetection det = gmf::detect_cycle(trace);
  std::printf("detected GMF cycle length: %zu (size residual %.0f bits)\n\n",
              det.cycle_length, det.residual);

  const net::Figure1Network fig = net::make_figure1_network(10'000'000);
  const net::Route route({fig.host0, fig.sw4, fig.sw6, fig.host3});
  const gmf::Flow fitted =
      gmf::fit_gmf_flow(trace, "fitted-mpeg", route,
                        /*deadline=*/Time::ms(100),
                        /*jitter=*/Time::ms(1), /*priority=*/1);

  Table params("Fitted GMF parameters (sound: min separations, max sizes)");
  params.set_columns({"slot", "T^k (fitted)", "S^k (fitted bytes)"});
  for (std::size_t k = 0; k < fitted.frame_count(); ++k) {
    params.add_row({std::to_string(k),
                    fitted.frame(k).min_separation.str(),
                    std::to_string(fitted.frame(k).payload_bits / 8)});
  }
  params.print();

  // --- 3. Analyse. -------------------------------------------------------
  core::AnalysisContext ctx(fig.net, {fitted});
  const auto result = core::analyze_holistic(ctx);
  if (!result.converged) {
    std::printf("\nanalysis diverged — trace traffic cannot be guaranteed\n");
    return 1;
  }
  std::printf("\nworst end-to-end bound over the cycle: %s (deadline "
              "100ms) -> %s\n",
              result.flows[0].worst_response().str().c_str(),
              result.schedulable ? "GUARANTEED" : "NOT guaranteed");
  return result.schedulable ? 0 : 1;
}
