// Operator daemon in one process: boots gmfnetd's server core on a Unix
// socket, then drives it through the typed client exactly like gmfnet_ctl
// would — gated admissions until the office link saturates, a
// non-committing what-if, live stats, and a checkpoint of the final world.
//
// The same engine semantics as examples/voip_admission.cpp, but observed
// through the wire: every response decodes to the exact engine types.
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>

#include "engine/analysis_engine.hpp"
#include "net/topology.hpp"
#include "rpc/client.hpp"
#include "rpc/server.hpp"
#include "workload/scenario.hpp"

using namespace gmfnet;

int main() {
  // An office: one 100 Mbit/s software switch, 16 phones.
  const auto star = net::make_star_network(16, 100'000'000);
  auto eng = std::make_shared<engine::AnalysisEngine>(star.net);

  rpc::ServerConfig cfg;
  cfg.unix_path =
      "/tmp/gmfnet_operator_demo_" + std::to_string(::getpid()) + ".sock";
  rpc::Server server(eng, cfg);
  std::thread daemon([&server] { server.serve(); });
  std::printf("daemon serving on unix:%s\n\n", cfg.unix_path.c_str());

  rpc::Client client = rpc::Client::connect_unix(cfg.unix_path);

  // Admit bidirectional G.711 call legs until the daemon says no.
  int admitted = 0;
  for (int call = 0;; ++call) {
    const auto a = static_cast<std::size_t>((2 * call) % 16);
    const auto b = static_cast<std::size_t>((2 * call + 1) % 16);
    const gmf::Flow leg = workload::make_voip_flow(
        "call" + std::to_string(call),
        net::Route({star.hosts[a], star.sw, star.hosts[b]}));
    if (!client.admit(leg)) {
      std::printf("call %d rejected — office is full\n", call);
      break;
    }
    ++admitted;
    if (call >= 10000) break;  // safety stop; never reached in practice
  }
  std::printf("admitted %d call legs\n\n", admitted);

  // A non-committing probe: would one more camera-grade flow fit?
  const gmf::Flow cam("probe_cam",
                      net::Route({star.hosts[0], star.sw, star.hosts[1]}),
                      {{gmfnet::Time::ms(40), gmfnet::Time::ms(100),
                        gmfnet::Time::zero(), 20000 * 8}},
                      /*priority=*/1);
  const engine::WhatIfResult probe = client.what_if(cam);
  std::printf("what-if probe_cam: %s\n",
              probe.admissible ? "admissible" : "inadmissible");

  const rpc::StatsResponse stats = client.stats();
  std::printf("daemon stats: %llu flows in %llu domains, %zu solver runs "
              "(%zu incremental)\n",
              static_cast<unsigned long long>(stats.flows),
              static_cast<unsigned long long>(stats.shards),
              stats.stats.evaluations, stats.stats.incremental_runs);

  const std::string ckpt = client.save_checkpoint();
  std::printf("checkpoint of the admitted world: %zu bytes "
              "(gmfnetd --restore warm-boots from this)\n",
              ckpt.size());

  client.shutdown();
  daemon.join();
  std::printf("daemon stopped\n");
  return 0;
}
