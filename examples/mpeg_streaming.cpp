// The paper's running example, end to end: the Figure-3 MPEG stream on the
// Figure-1 network, analysed with the GMF model and with the sporadic
// collapse — showing why the generalized multiframe model matters for
// video traffic.
//
//   $ ./mpeg_streaming
#include <cstdio>

#include "baseline/sporadic.hpp"
#include "core/holistic.hpp"
#include "util/table.hpp"
#include "workload/scenario.hpp"

using namespace gmfnet;

int main() {
  // The MPEG stream IBBPBBPBB of Figure 3 (I+P coalesced, 30 ms spacing),
  // routed 0 -> 4 -> 6 -> 3 as in Figure 2, with competing video and voice.
  gmf::MpegSizes sizes;
  sizes.i_bits = 25'000 * 8;  // 25 kB I-frames: a DVD-quality stream
  sizes.p_bits = 4'000 * 8;
  sizes.b_bits = 1'500 * 8;
  const auto scenario = workload::make_figure2_scenario(
      10'000'000, /*with_cross_traffic=*/true, sizes);

  std::printf("Figure-1 network, 10 Mbit/s links; %zu flows.\n\n",
              scenario.flows.size());

  core::AnalysisContext ctx(scenario.network, scenario.flows);
  const auto gmf_result = core::analyze_holistic(ctx);

  const char* slots[] = {"I+P", "B", "B", "P", "B", "B", "P", "B", "B"};
  Table t("GMF holistic bounds for the MPEG flow 0 -> 4 -> 6 -> 3");
  t.set_columns({"frame", "slot", "size", "bound", "deadline", "verdict"});
  for (std::size_t k = 0; k < 9; ++k) {
    const auto& fr = gmf_result.flows[0].frames[k];
    t.add_row({std::to_string(k), slots[k],
               std::to_string(scenario.flows[0].frame(k).payload_bits / 8) +
                   " B",
               fr.response.str(),
               scenario.flows[0].frame(k).deadline.str(),
               fr.meets_deadline ? "OK" : "MISS"});
  }
  t.print();
  std::printf("GMF verdict: %s\n\n",
              gmf_result.schedulable ? "ACCEPTED" : "REJECTED");

  // The pre-GMF alternative: model the stream as sporadic, i.e. every
  // packet is I+P-sized at the 30 ms rate.
  const auto spor_result = baseline::analyze_sporadic_baseline(
      scenario.network, scenario.flows);
  std::printf("Sporadic-collapse verdict: %s",
              spor_result.schedulable ? "accepted" : "REJECTED");
  if (!spor_result.schedulable) {
    std::printf(" — the same traffic is refused when the per-cycle size "
                "variation\nis thrown away, which is precisely the paper's "
                "case for the GMF model.");
  }
  std::printf("\n");
  return gmf_result.schedulable && !spor_result.schedulable ? 0 : 1;
}
