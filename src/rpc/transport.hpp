// Socket transport for the gmfnetd wire protocol: a thin RAII layer over
// POSIX stream sockets (Unix-domain and loopback TCP) plus whole-frame
// send/receive.  Framing is the rpc/protocol header — the receiver reads
// the fixed-size header, validates it, then reads exactly the declared
// body, so a slow or malicious peer can never make it over-read or
// allocate unbounded memory.
//
// Deadline discipline (the robustness layer): every blocking operation
// can carry a deadline.  Sockets have configurable recv/send timeouts
// (poll-before-io — the fd stays blocking, readiness is awaited with a
// bounded poll), connects accept a timeout, and frame receive
// distinguishes "peer idle past the allowance" from "peer died" from
// "peer stalled mid-frame".  A deadline expiry throws TimeoutError (a
// TransportError subclass), so existing catch sites keep working while
// callers that care — the server's stalled-peer close, the client's
// retry policy, gmfnet_ctl's exit code — can tell a slow peer from a
// dead one.
//
// All raw recv/send syscalls route through wrappers that consult the
// thread-local rpc::FaultInjector (rpc/fault_injection.hpp), which is how
// the chaos soak drives short reads/writes, EINTR storms, delays and
// mid-frame resets through exactly the code paths production traffic
// uses.  With no injector installed the wrappers are the bare syscalls.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <optional>
#include <string>

#include "rpc/protocol.hpp"

namespace gmfnet::rpc {

/// Thrown when a socket operation fails (connect/bind/accept/send/recv);
/// carries errno context in what() and the raw errno in errno_value()
/// (0 when the failure has no errno, e.g. a protocol-level EOF mid-frame).
class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& message, int err = 0);
  [[nodiscard]] int errno_value() const { return errno_value_; }

 private:
  int errno_value_;
};

/// A deadline expired (connect, send, recv, or idle allowance).  The
/// socket is in an indeterminate mid-operation state — close it.
class TimeoutError : public TransportError {
 public:
  explicit TimeoutError(const std::string& message);
};

/// No deadline (block forever) — the default for every timeout knob.
inline constexpr int kNoTimeout = -1;

/// Sets or clears O_NONBLOCK on `fd` (reactor plumbing).  Throws
/// TransportError on fcntl failure.
void set_nonblocking(int fd, bool on);

/// One connected stream socket (RAII; movable, not copyable).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  void close();
  /// Half-closes both directions without releasing the fd — wakes a peer
  /// (or our own thread) blocked in recv.  Safe on an already-closed fd.
  void shutdown_both();

  /// Deadlines for subsequent whole-operation send_all / recv_exact calls
  /// (milliseconds; kNoTimeout = block forever).  The deadline covers the
  /// entire operation, not each syscall — a peer trickling one byte per
  /// poll interval cannot stretch it.
  void set_recv_timeout_ms(int ms) { recv_timeout_ms_ = ms; }
  void set_send_timeout_ms(int ms) { send_timeout_ms_ = ms; }
  [[nodiscard]] int recv_timeout_ms() const { return recv_timeout_ms_; }
  [[nodiscard]] int send_timeout_ms() const { return send_timeout_ms_; }

  /// Writes all of `data` (throws TransportError on failure, TimeoutError
  /// when the send deadline expires first).
  void send_all(std::string_view data);
  /// Reads exactly `n` bytes.  Returns false on clean EOF before the first
  /// byte; throws TransportError on errors or EOF mid-read, TimeoutError
  /// when the recv deadline expires first.
  bool recv_exact(char* buf, std::size_t n);

  /// Waits up to `timeout_ms` for the socket to become readable without
  /// consuming anything.  Returns false on timeout; throws TransportError
  /// on poll failure.
  [[nodiscard]] bool wait_readable(int timeout_ms);

  // Single-shot non-blocking io for the reactor (the fd must carry
  // O_NONBLOCK; see set_nonblocking).  Both route through the same
  // fault-injected wrappers as the blocking path, so chaos streams
  // exercise the reactor's partial-io handling too.

  /// One recv: returns the byte count (> 0), 0 on peer EOF, or -1 when no
  /// data is available right now (EAGAIN / injected EINTR).  Throws
  /// TransportError on hard failures.
  [[nodiscard]] ssize_t recv_some(char* buf, std::size_t n);
  /// One send: returns the byte count written, or -1 when the socket
  /// buffer is full (EAGAIN / injected EINTR).  Throws TransportError on
  /// hard failures.
  [[nodiscard]] ssize_t send_some(const char* buf, std::size_t n);

 private:
  int fd_ = -1;
  int recv_timeout_ms_ = kNoTimeout;
  int send_timeout_ms_ = kNoTimeout;
};

/// Connects to a Unix-domain socket path.  `timeout_ms` bounds the
/// connect itself (kNoTimeout = block).
[[nodiscard]] Socket connect_unix(const std::string& path,
                                  int timeout_ms = kNoTimeout);
/// Connects to a TCP endpoint (dotted-quad host, e.g. loopback).
[[nodiscard]] Socket connect_tcp(const std::string& host, std::uint16_t port,
                                 int timeout_ms = kNoTimeout);

/// A listening socket (Unix-domain or TCP).
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds + listens on a Unix socket path.  A leftover socket file is
  /// connect-probed first: when a live daemon answers, the bind is refused
  /// (TransportError, errno EADDRINUSE) instead of stealing its path; when
  /// nobody answers (a SIGKILL'd daemon leaves the file behind) it is
  /// unlinked and the path reclaimed.
  [[nodiscard]] static Listener listen_unix(const std::string& path);
  /// Binds + listens on TCP `host:port`; port 0 picks an ephemeral port
  /// (readable via port()).
  [[nodiscard]] static Listener listen_tcp(const std::string& host,
                                           std::uint16_t port);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] const std::string& unix_path() const { return unix_path_; }

  /// Waits up to `timeout_ms` for a connection.  Returns an invalid Socket
  /// on timeout or when the listener was closed concurrently; throws
  /// TransportError on hard failures — with errno_value() set, so the
  /// accept loop can tell fd exhaustion (EMFILE/ENFILE: back off, the
  /// condition clears when connections close) from a dead listener.
  [[nodiscard]] Socket accept(int timeout_ms);

  /// Closes the listening fd and removes a Unix socket file.
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::string unix_path_;
};

/// True for accept(2) failures that indicate a transient, recoverable
/// condition (fd exhaustion, a connection that died in the backlog) —
/// the listener itself is still good.
[[nodiscard]] bool is_transient_accept_error(int err);

/// Sends one already-encoded protocol frame.
void send_frame(Socket& s, std::string_view frame);

/// Receives one complete frame (header + body), validating the header and
/// the body checksum.  Returns std::nullopt on clean EOF at a frame
/// boundary (peer closed); throws ProtocolError on malformed frames,
/// TimeoutError on recv-deadline expiry, and TransportError on socket
/// failures.
[[nodiscard]] std::optional<std::string> recv_frame(Socket& s);

/// recv_frame with a separate idle allowance: waits up to
/// `idle_timeout_ms` for the first byte of the next frame (kIdle when the
/// peer stays silent), then reads the frame under the socket's recv
/// deadline (a peer that starts a frame and stalls gets TimeoutError —
/// mid-frame stall, not idleness).
enum class FrameStatus { kFrame, kEof, kIdle };
[[nodiscard]] FrameStatus recv_frame_idle(Socket& s, std::string& frame,
                                          int idle_timeout_ms);

}  // namespace gmfnet::rpc
