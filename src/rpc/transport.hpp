// Socket transport for the gmfnetd wire protocol: a thin RAII layer over
// POSIX stream sockets (Unix-domain and loopback TCP) plus whole-frame
// send/receive.  Framing is the rpc/protocol header — the receiver reads
// the fixed-size header, validates it, then reads exactly the declared
// body, so a slow or malicious peer can never make it over-read or
// allocate unbounded memory.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "rpc/protocol.hpp"

namespace gmfnet::rpc {

/// Thrown when a socket operation fails (connect/bind/accept/send/recv);
/// carries errno context in what().
class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& message);
};

/// One connected stream socket (RAII; movable, not copyable).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  void close();
  /// Half-closes both directions without releasing the fd — wakes a peer
  /// (or our own thread) blocked in recv.  Safe on an already-closed fd.
  void shutdown_both();

  /// Writes all of `data` (throws TransportError on failure).
  void send_all(std::string_view data);
  /// Reads exactly `n` bytes.  Returns false on clean EOF before the first
  /// byte; throws TransportError on errors or EOF mid-read.
  bool recv_exact(char* buf, std::size_t n);

 private:
  int fd_ = -1;
};

/// Connects to a Unix-domain socket path.
[[nodiscard]] Socket connect_unix(const std::string& path);
/// Connects to a TCP endpoint (dotted-quad host, e.g. loopback).
[[nodiscard]] Socket connect_tcp(const std::string& host, std::uint16_t port);

/// A listening socket (Unix-domain or TCP).
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds + listens on a Unix socket path (unlinks a stale file first).
  [[nodiscard]] static Listener listen_unix(const std::string& path);
  /// Binds + listens on TCP `host:port`; port 0 picks an ephemeral port
  /// (readable via port()).
  [[nodiscard]] static Listener listen_tcp(const std::string& host,
                                           std::uint16_t port);

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] const std::string& unix_path() const { return unix_path_; }

  /// Waits up to `timeout_ms` for a connection.  Returns an invalid Socket
  /// on timeout or when the listener was closed concurrently; throws
  /// TransportError on hard failures.
  [[nodiscard]] Socket accept(int timeout_ms);

  /// Closes the listening fd and removes a Unix socket file.
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::string unix_path_;
};

/// Sends one already-encoded protocol frame.
void send_frame(Socket& s, std::string_view frame);

/// Receives one complete frame (header + body), validating the header and
/// the body checksum.  Returns std::nullopt on clean EOF at a frame
/// boundary (peer closed); throws ProtocolError on malformed frames and
/// TransportError on socket failures.
[[nodiscard]] std::optional<std::string> recv_frame(Socket& s);

}  // namespace gmfnet::rpc
