#include "rpc/replication.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <stdexcept>
#include <utility>
#include <variant>

namespace gmfnet::rpc {

// -------------------------------------------------------- primary address --

PrimaryAddr parse_primary_addr(const std::string& addr) {
  PrimaryAddr out;
  constexpr std::string_view kUnixPrefix = "unix:";
  if (addr.rfind(kUnixPrefix, 0) == 0) {
    out.unix_path = addr.substr(kUnixPrefix.size());
    if (out.unix_path.empty()) {
      throw std::invalid_argument("primary address: empty unix socket path");
    }
    return out;
  }
  const std::size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == addr.size()) {
    throw std::invalid_argument(
        "primary address must be unix:PATH or HOST:PORT, got \"" + addr +
        "\"");
  }
  out.host = addr.substr(0, colon);
  const std::string port_str = addr.substr(colon + 1);
  long port = 0;
  for (const char c : port_str) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument("primary address: bad port \"" + port_str +
                                  "\"");
    }
    port = port * 10 + (c - '0');
    if (port > 65'535) {
      throw std::invalid_argument("primary address: port out of range");
    }
  }
  if (port == 0) {
    throw std::invalid_argument("primary address: port must be 1..65535");
  }
  out.port = static_cast<std::uint16_t>(port);
  return out;
}

std::string format_primary_addr(const PrimaryAddr& addr) {
  if (!addr.unix_path.empty()) return "unix:" + addr.unix_path;
  return addr.host + ":" + std::to_string(addr.port);
}

// ---------------------------------------------------------- primary journal --

ReplicationLog::ReplicationLog(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

void ReplicationLog::append(std::uint64_t seq, std::string frame) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (seq != first_seq_ + frames_.size()) {
      throw std::logic_error("replication journal: non-contiguous append");
    }
    frames_.push_back(std::move(frame));
    while (frames_.size() > capacity_) {
      frames_.pop_front();
      ++first_seq_;
    }
  }
  cv_.notify_all();
}

ReplicationLog::Fetch ReplicationLog::wait_fetch(std::uint64_t seq,
                                                 std::string& frame,
                                                 int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(std::max(timeout_ms, 0));
  for (;;) {
    if (stopped_) return Fetch::kStopped;
    if (seq < first_seq_) return Fetch::kGap;
    if (seq < first_seq_ + frames_.size()) {
      frame = frames_[seq - first_seq_];
      return Fetch::kOk;
    }
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return Fetch::kTimeout;
    }
  }
}

ReplicationLog::Fetch ReplicationLog::try_fetch(std::uint64_t seq,
                                                std::string& frame) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) return Fetch::kStopped;
  if (seq < first_seq_) return Fetch::kGap;
  if (seq < first_seq_ + frames_.size()) {
    frame = frames_[seq - first_seq_];
    return Fetch::kOk;
  }
  return Fetch::kTimeout;
}

void ReplicationLog::reset(std::uint64_t next_seq) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    frames_.clear();
    first_seq_ = next_seq;
  }
  // A waiter parked before the reset wakes up and re-evaluates: a seq now
  // below first_seq_ surfaces as kGap → its replica full-syncs.
  cv_.notify_all();
}

void ReplicationLog::request_stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  cv_.notify_all();
}

std::uint64_t ReplicationLog::first_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return first_seq_;
}

std::uint64_t ReplicationLog::next_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return first_seq_ + frames_.size();
}

// ----------------------------------------------------------- replica client --

ReplicationClient::ReplicationClient(ReplicationClientConfig cfg,
                                     ReplicationHooks hooks)
    : cfg_(std::move(cfg)),
      hooks_(std::move(hooks)),
      jitter_(cfg_.backoff_seed != 0 ? cfg_.backoff_seed : 1),
      primary_addr_(cfg_.primary_addr) {
  // Fail fast on a malformed address — before a background thread exists
  // to bury the error in.
  (void)parse_primary_addr(primary_addr_);
}

ReplicationClient::~ReplicationClient() { stop(); }

void ReplicationClient::start() {
  if (thread_.joinable()) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread(&ReplicationClient::run, this);
}

void ReplicationClient::stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void ReplicationClient::pause() {
  paused_.store(true, std::memory_order_release);
  link_gen_.fetch_add(1, std::memory_order_acq_rel);
}

void ReplicationClient::resume(const std::string& new_primary) {
  if (!new_primary.empty()) {
    (void)parse_primary_addr(new_primary);  // validate before adopting
    std::lock_guard<std::mutex> lock(mu_);
    primary_addr_ = new_primary;
  }
  link_gen_.fetch_add(1, std::memory_order_acq_rel);
  paused_.store(false, std::memory_order_release);
}

std::string ReplicationClient::primary_addr() const {
  std::lock_guard<std::mutex> lock(mu_);
  return primary_addr_;
}

std::string ReplicationClient::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

void ReplicationClient::note_error(const std::string& what) {
  std::lock_guard<std::mutex> lock(mu_);
  last_error_ = what;
}

bool ReplicationClient::winding_down() const {
  return stop_.load(std::memory_order_acquire) ||
         (hooks_.stopped && hooks_.stopped());
}

void ReplicationClient::backoff_sleep(int attempt) {
  const int shift = std::min(attempt, 20);
  const std::int64_t uncapped =
      static_cast<std::int64_t>(cfg_.backoff_initial_ms) << shift;
  const std::int64_t capped = std::min<std::int64_t>(
      uncapped, std::max(cfg_.backoff_max_ms, cfg_.backoff_initial_ms));
  std::int64_t remaining =
      capped / 2 + jitter_.uniform_i64(
                       0, std::max<std::int64_t>(capped - capped / 2, 0));
  // Sliced so a stop/pause/repoint interrupts the wait promptly.
  const std::uint64_t gen = link_gen_.load(std::memory_order_acquire);
  while (remaining > 0 && !winding_down() &&
         !paused_.load(std::memory_order_acquire) && !link_stale(gen)) {
    const std::int64_t slice = std::min<std::int64_t>(remaining, 50);
    std::this_thread::sleep_for(std::chrono::milliseconds(slice));
    remaining -= slice;
  }
}

void ReplicationClient::run() {
  // The injector rides the replication thread itself, so the chaos suite
  // can storm the replication link while operator links stay clean.
  std::optional<ScopedFaultInjection> faults;
  if (cfg_.fault != nullptr) faults.emplace(*cfg_.fault);

  int attempt = 0;
  while (!winding_down()) {
    if (paused_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::min(cfg_.idle_slice_ms, 50)));
      attempt = 0;
      continue;
    }
    const std::uint64_t gen = link_gen_.load(std::memory_order_acquire);
    bool streamed = false;
    try {
      streamed = session(gen);
    } catch (const TransportError& e) {
      // Includes TimeoutError: the link died or stalled.  The replica's
      // position is intact (deltas apply one whole frame at a time), so
      // the next session resumes right where this one stopped.
      note_error(e.what());
    } catch (const ProtocolError& e) {
      // Corruption on the replication link (checksum mismatch, a frame
      // that is not a delta): the stream can no longer be trusted, and
      // neither can the position bookkeeping around it — resync from a
      // fresh full checkpoint.
      gaps_.fetch_add(1, std::memory_order_relaxed);
      force_full_resync_.store(true, std::memory_order_release);
      note_error(e.what());
    } catch (const std::exception& e) {
      // A full_sync hook rejecting an invalid checkpoint lands here too;
      // retry from scratch.
      force_full_resync_.store(true, std::memory_order_release);
      note_error(e.what());
    }
    connected_.store(false, std::memory_order_release);
    if (winding_down()) break;
    if (link_stale(gen)) continue;  // repoint/pause: no backoff, no count
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    attempt = streamed ? 0 : attempt + 1;
    backoff_sleep(attempt);
  }
  connected_.store(false, std::memory_order_release);
}

bool ReplicationClient::session(std::uint64_t gen) {
  const PrimaryAddr addr = parse_primary_addr(primary_addr());
  Socket sock = addr.unix_path.empty()
                    ? connect_tcp(addr.host, addr.port,
                                  cfg_.connect_timeout_ms)
                    : connect_unix(addr.unix_path, cfg_.connect_timeout_ms);
  sock.set_recv_timeout_ms(cfg_.io_timeout_ms);
  sock.set_send_timeout_ms(cfg_.io_timeout_ms);

  SubscribeRequest sub;  // (0,0,0): ask for the whole world
  if (!force_full_resync_.load(std::memory_order_acquire)) {
    const ReplicaPosition pos = hooks_.position();
    sub.epoch = pos.epoch;
    sub.next_seq = pos.next_seq;
    sub.history = pos.history;
  }
  send_frame(sock, encode_request(Request{sub}));

  std::optional<std::string> first = recv_frame(sock);
  if (!first) {
    throw TransportError("primary closed the connection during subscribe");
  }
  Response resp = decode_response(*first);
  if (const auto* np = std::get_if<NotPrimaryResponse>(&resp)) {
    // The upstream is itself a replica (or fenced).  Stay pointed at it —
    // it may be promoted any moment; repointing is an operator decision.
    note_error("subscribe refused: peer is not a primary" +
               (np->primary_addr.empty() ? std::string()
                                         : " (primary: " + np->primary_addr +
                                               ")"));
    return false;
  }
  if (const auto* err = std::get_if<ErrorResponse>(&resp)) {
    note_error("subscribe refused: " + err->message);
    return false;
  }
  if (const auto* full = std::get_if<SyncFullResponse>(&resp)) {
    if (full->epoch < hooks_.position().epoch) {
      // Epoch fence: an ex-primary from before our promotion/failover may
      // not roll us back, no matter how complete its checkpoint looks.
      stale_rejects_.fetch_add(1, std::memory_order_relaxed);
      note_error("rejected full sync from stale primary (epoch " +
                 std::to_string(full->epoch) + " < ours)");
      return false;
    }
    hooks_.full_sync(*full);  // throws on an invalid checkpoint
    full_syncs_.fetch_add(1, std::memory_order_relaxed);
    force_full_resync_.store(false, std::memory_order_release);
  } else if (const auto* ok = std::get_if<SubscribeResponse>(&resp)) {
    const ReplicaPosition pos = hooks_.position();
    if (ok->epoch < pos.epoch) {
      stale_rejects_.fetch_add(1, std::memory_order_relaxed);
      note_error("rejected journal catch-up from stale primary");
      return false;
    }
    if (ok->epoch != pos.epoch || ok->next_seq != pos.next_seq) {
      // The primary accepted catch-up but from a position that is not
      // ours — bookkeeping mismatch; degrade safely to a full sync.
      gaps_.fetch_add(1, std::memory_order_relaxed);
      force_full_resync_.store(true, std::memory_order_release);
      return false;
    }
  } else {
    throw ProtocolError("unexpected response type to SUBSCRIBE");
  }

  connected_.store(true, std::memory_order_release);
  std::string frame;
  while (!winding_down() && !paused_.load(std::memory_order_acquire) &&
         !link_stale(gen)) {
    const FrameStatus st = recv_frame_idle(sock, frame, cfg_.idle_slice_ms);
    if (st == FrameStatus::kIdle) continue;  // quiet primary — normal
    if (st == FrameStatus::kEof) {
      note_error("primary closed the delta stream");
      return true;
    }
    Response msg = decode_response(frame);
    const auto* delta = std::get_if<DeltaResponse>(&msg);
    if (delta == nullptr) {
      throw ProtocolError("non-delta frame on a subscribed stream");
    }
    switch (hooks_.apply(*delta)) {
      case ApplyResult::kApplied:
        deltas_applied_.fetch_add(1, std::memory_order_relaxed);
        break;
      case ApplyResult::kGap:
        gaps_.fetch_add(1, std::memory_order_relaxed);
        force_full_resync_.store(true, std::memory_order_release);
        note_error("delta sequence gap — resyncing from a full checkpoint");
        return true;
      case ApplyResult::kStale:
        stale_rejects_.fetch_add(1, std::memory_order_relaxed);
        note_error("rejected delta from stale primary epoch");
        return true;
    }
  }
  return true;
}

}  // namespace gmfnet::rpc
