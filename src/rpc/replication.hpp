// Checkpoint-shipping replication for gmfnetd: a primary journals every
// committed mutation as a DELTA frame keyed by a monotonic
// (epoch, commit_seq) and streams the journal to subscribed replicas; a
// replica bootstraps from a full checkpoint (SYNC_FULL — the PR 4
// on-disk format, shipped over the wire) and then applies the delta tail.
//
// The pieces:
//
//  * ReplicationLog — the primary's bounded in-memory journal of
//    pre-encoded DELTA frames.  Subscriber threads block on it
//    (cv-based, sliced waits) and stream frames in commit order; a
//    subscriber that asks for a sequence the bounded journal no longer
//    holds gets kGap, which the server answers with a fresh full sync.
//
//  * ReplicationClient — the replica's pull side: one background thread
//    that connects to the primary with capped-exponential-backoff (the
//    same policy as rpc::Client), SUBSCRIBEs at the replica's current
//    position, applies SYNC_FULL / DELTA frames through caller hooks,
//    and falls back to a fresh full sync on any sequence gap or
//    checksum failure.  The PR 7 fault injector can be installed on the
//    replication thread, so the chaos suite drives short writes, EINTR
//    storms, delays and resets through this exact path.
//
// Epoch fencing (the no-split-brain rule): every daemon carries an
// epoch; promote bumps the new primary's epoch past its old primary's.
// A replica REJECTS any subscribe answer or delta carrying an epoch
// lower than its own — an ex-primary that comes back after a failover
// can never roll a promoted replica backwards.  The epoch alone is not
// enough to resume a delta stream, though: a restarted primary's fresh
// history could coincidentally reach a matching (epoch, seq).  Each
// primary history therefore carries a random `history` token, and
// journal catch-up requires the replica's token to match; any mismatch
// degrades safely to a full sync.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "rpc/fault_injection.hpp"
#include "rpc/protocol.hpp"
#include "rpc/transport.hpp"
#include "util/rng.hpp"

namespace gmfnet::rpc {

// -------------------------------------------------------- primary address --

/// A daemon address as operators write it: "unix:PATH" or "HOST:PORT".
struct PrimaryAddr {
  std::string unix_path;  ///< non-empty: Unix-domain
  std::string host;
  std::uint16_t port = 0;

  [[nodiscard]] bool valid() const {
    return !unix_path.empty() || !host.empty();
  }
};

/// Parses "unix:PATH" or "HOST:PORT"; throws std::invalid_argument on
/// anything else (empty path, unparseable port).
[[nodiscard]] PrimaryAddr parse_primary_addr(const std::string& addr);
/// The canonical string form parse_primary_addr accepts.
[[nodiscard]] std::string format_primary_addr(const PrimaryAddr& addr);

// ---------------------------------------------------------- primary journal --

/// Bounded in-memory journal of pre-encoded DELTA frames, contiguous by
/// commit sequence.  One writer (the daemon's mutation path, already
/// serialized by the server's writer mutex) appends; any number of
/// subscriber threads block in wait_fetch.  When the journal exceeds its
/// capacity the oldest frames fall off — a replica that needs them gets
/// kGap and recovers via full sync (bounded memory beats unbounded
/// history; the checkpoint IS the compacted history).
class ReplicationLog {
 public:
  explicit ReplicationLog(std::size_t capacity);

  enum class Fetch {
    kOk,       ///< frame delivered
    kGap,      ///< seq older than the journal holds — full sync needed
    kTimeout,  ///< nothing new within the slice — re-check stop and retry
    kStopped,  ///< the journal is winding down — subscriber must exit
  };

  /// Appends the frame for `seq`, which must be exactly next_seq() —
  /// commit order IS journal order.  Throws std::logic_error otherwise.
  void append(std::uint64_t seq, std::string frame);

  /// Blocks up to `timeout_ms` for the frame with sequence `seq`.
  Fetch wait_fetch(std::uint64_t seq, std::string& frame, int timeout_ms);

  /// Non-blocking wait_fetch for the reactor's subscriber pump: kTimeout
  /// means "nothing new yet" (the reactor re-pumps after the next commit
  /// wakes it) — never parks the calling thread.
  Fetch try_fetch(std::uint64_t seq, std::string& frame);

  /// Drops every frame and restarts the journal at `next_seq` (promote /
  /// restore: history before the event is no longer streamable).
  void reset(std::uint64_t next_seq);

  /// Wakes every waiter with kStopped (serve() teardown).
  void request_stop();

  /// Oldest journaled sequence (== next_seq() when empty).
  [[nodiscard]] std::uint64_t first_seq() const;
  /// The sequence the next append must carry (last + 1).
  [[nodiscard]] std::uint64_t next_seq() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::string> frames_;
  std::uint64_t first_seq_ = 1;  ///< seq of frames_.front()
  bool stopped_ = false;
};

// ----------------------------------------------------------- replica client --

struct ReplicationClientConfig {
  /// The primary, as "unix:PATH" or "HOST:PORT".
  std::string primary_addr;
  int connect_timeout_ms = 5'000;
  /// Deadline for each in-flight frame (a primary that stalls mid-frame
  /// is treated as dead and the stream is re-established).
  int io_timeout_ms = 30'000;
  /// How often a replica blocked on a quiet stream re-checks stop /
  /// pause (the stream is push-based; idleness is normal).
  int idle_slice_ms = 250;
  /// Reconnect backoff, same shape as ClientConfig's.
  int backoff_initial_ms = 20;
  int backoff_max_ms = 2'000;
  std::uint64_t backoff_seed = 1;
  /// Non-null: installed (thread-local) on the replication thread, so
  /// every transport syscall of the replication link runs under fault
  /// injection.  The injector must outlive stop().
  FaultInjector* fault = nullptr;
};

/// Where the replica currently stands; returned by the position() hook
/// and offered to the primary at subscribe time.
struct ReplicaPosition {
  std::uint64_t epoch = 0;
  std::uint64_t next_seq = 0;  ///< first sequence the replica still needs
  std::uint64_t history = 0;   ///< history token of the followed primary
};

/// What the apply hook made of one delta.
enum class ApplyResult {
  kApplied,  ///< committed locally; keep streaming
  kGap,      ///< sequence/shape mismatch — resync from a fresh full sync
  kStale,    ///< delta epoch below ours — fenced primary; drop the link
};

/// Callbacks into the replica's server (all invoked on the replication
/// thread; the server side takes its own writer lock inside).
struct ReplicationHooks {
  /// Install a full checkpoint (SYNC_FULL).  Throws on a checkpoint that
  /// fails validation — the client counts it and resyncs from scratch.
  std::function<void(const SyncFullResponse&)> full_sync;
  /// Apply one delta at the replica's current position.
  std::function<ApplyResult(const DeltaResponse&)> apply;
  /// The replica's current position (offered at subscribe time).
  std::function<ReplicaPosition()> position;
  /// True once the server is stopping/draining — the thread winds down.
  std::function<bool()> stopped;
};

/// The replica's subscription loop.  start() launches the thread; stop()
/// (or hooks.stopped() turning true) winds it down.  The loop reconnects
/// forever with capped backoff: replication losing its primary is an
/// availability event, never a crash.
class ReplicationClient {
 public:
  ReplicationClient(ReplicationClientConfig cfg, ReplicationHooks hooks);
  ~ReplicationClient();

  ReplicationClient(const ReplicationClient&) = delete;
  ReplicationClient& operator=(const ReplicationClient&) = delete;

  void start();
  /// Signals the thread and joins it.  Safe to call twice.  MUST be
  /// called without holding any lock the hooks acquire (the thread may
  /// be blocked inside apply()).
  void stop();

  /// Test/repoint hook: a paused client drops its link and subscribes to
  /// nothing until resume() — the deterministic way to open a journal gap
  /// under it or to swap primary_addr.
  void pause();
  /// resume() with a non-empty `new_primary` also repoints the client.
  void resume(const std::string& new_primary = "");

  [[nodiscard]] bool connected() const {
    return connected_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t full_syncs() const {
    return full_syncs_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t deltas_applied() const {
    return deltas_applied_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }
  /// Streams dropped for a local gap/corruption (each leads to a full
  /// resync on the next subscribe).
  [[nodiscard]] std::uint64_t gaps() const {
    return gaps_.load(std::memory_order_relaxed);
  }
  /// Subscribe answers / deltas rejected for carrying a stale epoch.
  [[nodiscard]] std::uint64_t stale_rejects() const {
    return stale_rejects_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::string primary_addr() const;
  [[nodiscard]] std::string last_error() const;

 private:
  void run();
  /// One connect → subscribe → stream session; returns when the link
  /// drops (or stop/pause/repoint — `gen` went stale).  Sets
  /// force_full_resync_ when the next session must start from scratch.
  /// Returns true when the session got as far as a live delta stream.
  bool session(std::uint64_t gen);
  void backoff_sleep(int attempt);
  void note_error(const std::string& what);
  [[nodiscard]] bool winding_down() const;
  [[nodiscard]] bool link_stale(std::uint64_t gen) const {
    return link_gen_.load(std::memory_order_acquire) != gen;
  }

  ReplicationClientConfig cfg_;
  ReplicationHooks hooks_;
  Rng jitter_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> paused_{false};
  /// Bumped by pause()/resume(): a session started under an older value
  /// drops its link (the repoint/pause barrier).
  std::atomic<std::uint64_t> link_gen_{0};
  std::atomic<bool> connected_{false};
  /// Next subscribe offers position (0,0,0) — ask for the whole world.
  std::atomic<bool> force_full_resync_{false};
  std::atomic<std::uint64_t> full_syncs_{0};
  std::atomic<std::uint64_t> deltas_applied_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> gaps_{0};
  std::atomic<std::uint64_t> stale_rejects_{0};
  mutable std::mutex mu_;  ///< guards primary_addr_ + last_error_
  std::string primary_addr_;
  std::string last_error_;
};

}  // namespace gmfnet::rpc
