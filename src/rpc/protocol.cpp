#include "rpc/protocol.hpp"

#include <cstring>
#include <utility>

#include "io/codec.hpp"

namespace gmfnet::rpc {
namespace {

// ------------------------------------------------------- body encodings --

void encode_engine_stats(io::ByteWriter& w, const engine::EngineStats& s) {
  w.u64(s.evaluations);
  w.u64(s.full_runs);
  w.u64(s.incremental_runs);
  w.u64(s.flow_analyses);
  w.u64(s.flow_results_reused);
  w.u64(s.sweeps);
  w.u64(s.accel_accepted);
  w.u64(s.accel_rejected);
}

engine::EngineStats decode_engine_stats(io::ByteReader& r) {
  engine::EngineStats s;
  s.evaluations = static_cast<std::size_t>(r.u64());
  s.full_runs = static_cast<std::size_t>(r.u64());
  s.incremental_runs = static_cast<std::size_t>(r.u64());
  s.flow_analyses = static_cast<std::size_t>(r.u64());
  s.flow_results_reused = static_cast<std::size_t>(r.u64());
  s.sweeps = static_cast<std::size_t>(r.u64());
  s.accel_accepted = static_cast<std::size_t>(r.u64());
  s.accel_rejected = static_cast<std::size_t>(r.u64());
  return s;
}

// What-if wire flags: bit 0 = admissible, bit 1 = detailed (a full
// HolisticResult follows; otherwise the lean converged/sweeps/flow_count
// triple does).
constexpr std::uint8_t kWhatIfAdmissible = 1u << 0;
constexpr std::uint8_t kWhatIfDetailed = 1u << 1;

void encode_what_if(io::ByteWriter& w, const engine::WhatIfResult& wi) {
  std::uint8_t flags = wi.admissible ? kWhatIfAdmissible : 0;
  if (wi.detailed()) flags |= kWhatIfDetailed;
  w.u8(flags);
  if (wi.detailed()) {
    // The wire carries the full result; materializing it here (server side,
    // once per encoded probe) keeps the probe hot path itself copy-free.
    io::codec::encode_holistic_result(w, wi.result());
  } else {
    w.u8(wi.converged() ? 1 : 0);
    w.u64(static_cast<std::uint64_t>(wi.sweeps()));
    w.u64(wi.flow_count());
  }
}

engine::WhatIfResult decode_what_if(io::ByteReader& r) {
  // Sequence the reads explicitly: C++ leaves function-argument evaluation
  // order unspecified, and all read from the same stream.
  const std::uint8_t flags = r.u8();
  const bool admissible = (flags & kWhatIfAdmissible) != 0;
  if ((flags & kWhatIfDetailed) != 0) {
    return engine::WhatIfResult::from_full(
        admissible, io::codec::decode_holistic_result(r));
  }
  const bool converged = r.u8() != 0;
  const auto sweeps = static_cast<int>(r.u64());
  const auto flows = static_cast<std::size_t>(r.u64());
  return engine::WhatIfResult::verdict_only(admissible, converged, sweeps,
                                            flows);
}

Role decode_role(io::ByteReader& r) {
  const std::uint8_t v = r.u8();
  if (v != static_cast<std::uint8_t>(Role::kPrimary) &&
      v != static_cast<std::uint8_t>(Role::kReplica)) {
    throw ProtocolError("invalid role value " + std::to_string(v));
  }
  return static_cast<Role>(v);
}

DeltaKind decode_delta_kind(io::ByteReader& r) {
  const std::uint8_t v = r.u8();
  if (v < static_cast<std::uint8_t>(DeltaKind::kAdmit) ||
      v > static_cast<std::uint8_t>(DeltaKind::kBatch)) {
    throw ProtocolError("invalid delta kind " + std::to_string(v));
  }
  return static_cast<DeltaKind>(v);
}

/// Bodiless messages still carry one reserved zero byte, so every valid
/// frame has a non-empty body and a zero body length is always rejected as
/// a framing violation (not a legal empty message).
void encode_reserved(io::ByteWriter& w) { w.u8(0); }

void decode_reserved(io::ByteReader& r, const char* what) {
  if (r.u8() != 0) {
    throw ProtocolError(std::string(what) + ": reserved byte must be zero");
  }
}

struct BodyEncoder {
  io::ByteWriter& w;

  void operator()(const AdmitRequest& m) { io::codec::encode_flow(w, m.flow); }
  void operator()(const RemoveRequest& m) { w.u64(m.index); }
  void operator()(const WhatIfBatchRequest& m) {
    w.u8(m.verdict_only ? 1 : 0);
    w.u64(m.candidates.size());
    for (const gmf::Flow& f : m.candidates) io::codec::encode_flow(w, f);
  }
  void operator()(const StatsRequest&) { encode_reserved(w); }
  void operator()(const SaveCheckpointRequest&) { encode_reserved(w); }
  void operator()(const RestoreRequest& m) { w.str(m.checkpoint); }
  void operator()(const ShutdownRequest&) { encode_reserved(w); }
  void operator()(const SubscribeRequest& m) {
    w.u64(m.epoch);
    w.u64(m.next_seq);
    w.u64(m.history);
  }
  void operator()(const PromoteRequest&) { encode_reserved(w); }
  void operator()(const RoleRequest&) { encode_reserved(w); }
  void operator()(const RepointRequest& m) { w.str(m.primary_addr); }
  void operator()(const AdmitBatchRequest& m) {
    w.u64(m.flows.size());
    for (const gmf::Flow& f : m.flows) io::codec::encode_flow(w, f);
  }

  void operator()(const AdmitResponse& m) {
    w.u8(m.result.has_value() ? 1 : 0);
    if (m.result) io::codec::encode_holistic_result(w, *m.result);
  }
  void operator()(const RemoveResponse& m) { w.u8(m.removed ? 1 : 0); }
  void operator()(const WhatIfBatchResponse& m) {
    w.u64(m.results.size());
    for (const engine::WhatIfResult& wi : m.results) encode_what_if(w, wi);
  }
  void operator()(const StatsResponse& m) {
    encode_engine_stats(w, m.stats);
    w.u64(m.flows);
    w.u64(m.shards);
    w.u8(static_cast<std::uint8_t>(m.role));
    w.u64(m.epoch);
    w.u64(m.commit_seq);
    w.u64(m.uptime_ms);
    w.u64(m.active_connections);
    w.u64(m.frames_served);
    w.u64(m.coalesced_commits);
    w.u64(m.pipelined_hwm);
    w.u8(m.solver_mode);
  }
  void operator()(const SaveCheckpointResponse& m) { w.str(m.checkpoint); }
  void operator()(const RestoreResponse& m) { w.u64(m.flows); }
  void operator()(const ShutdownResponse&) { encode_reserved(w); }
  void operator()(const SubscribeResponse& m) {
    w.u64(m.epoch);
    w.u64(m.next_seq);
  }
  void operator()(const SyncFullResponse& m) {
    w.u64(m.epoch);
    w.u64(m.commit_seq);
    w.u64(m.history);
    w.str(m.checkpoint);
  }
  void operator()(const DeltaResponse& m) {
    w.u8(static_cast<std::uint8_t>(m.kind));
    w.u64(m.epoch);
    w.u64(m.seq);
    w.u64(m.flows_after);
    // Only the active payload rides the wire (tagged union by `kind`).
    switch (m.kind) {
      case DeltaKind::kAdmit:
        io::codec::encode_flow(w, m.flow);
        break;
      case DeltaKind::kRemove:
        w.u64(m.index);
        break;
      case DeltaKind::kRestore:
        w.str(m.checkpoint);
        break;
      case DeltaKind::kBatch:
        w.u64(m.ops.size());
        for (const DeltaOp& op : m.ops) {
          w.u8(static_cast<std::uint8_t>(op.kind));
          if (op.kind == DeltaKind::kAdmit) {
            io::codec::encode_flow(w, op.flow);
          } else {
            w.u64(op.index);
          }
        }
        break;
    }
  }
  void operator()(const PromoteResponse& m) { w.u64(m.epoch); }
  void operator()(const RoleResponse& m) {
    w.u8(static_cast<std::uint8_t>(m.role));
    w.u8(m.fenced ? 1 : 0);
    w.u64(m.epoch);
    w.u64(m.commit_seq);
    w.str(m.primary_addr);
    w.u8(m.connected ? 1 : 0);
    w.u64(m.full_syncs);
    w.u64(m.deltas_applied);
    w.u64(m.subscribers);
    w.u64(m.journal_begin);
    w.u64(m.journal_end);
  }
  void operator()(const NotPrimaryResponse& m) {
    w.str(m.primary_addr);
    w.u64(m.epoch);
  }
  void operator()(const AdmitBatchResponse& m) {
    w.u64(m.admitted.size());
    for (const std::uint8_t v : m.admitted) w.u8(v != 0 ? 1 : 0);
    w.u64(m.flows_after);
  }
  void operator()(const ErrorResponse& m) { w.str(m.message); }
};

Request decode_request_body(MsgType type, io::ByteReader& r) {
  switch (type) {
    case MsgType::kAdmitRequest:
      return AdmitRequest{io::codec::decode_flow(r)};
    case MsgType::kRemoveRequest:
      return RemoveRequest{r.u64()};
    case MsgType::kWhatIfBatchRequest: {
      WhatIfBatchRequest m;
      m.verdict_only = r.u8() != 0;
      const std::size_t n = r.count(8 + 8 + 8 + 1 + 8);  // min encoded flow
      m.candidates.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        m.candidates.push_back(io::codec::decode_flow(r));
      }
      return m;
    }
    case MsgType::kStatsRequest:
      decode_reserved(r, "STATS");
      return StatsRequest{};
    case MsgType::kSaveCheckpointRequest:
      decode_reserved(r, "SAVE_CHECKPOINT");
      return SaveCheckpointRequest{};
    case MsgType::kRestoreRequest:
      return RestoreRequest{r.str()};
    case MsgType::kShutdownRequest:
      decode_reserved(r, "SHUTDOWN");
      return ShutdownRequest{};
    case MsgType::kSubscribeRequest: {
      SubscribeRequest m;
      m.epoch = r.u64();
      m.next_seq = r.u64();
      m.history = r.u64();
      return m;
    }
    case MsgType::kPromoteRequest:
      decode_reserved(r, "PROMOTE");
      return PromoteRequest{};
    case MsgType::kRoleRequest:
      decode_reserved(r, "ROLE");
      return RoleRequest{};
    case MsgType::kRepointRequest:
      return RepointRequest{r.str()};
    case MsgType::kAdmitBatchRequest: {
      AdmitBatchRequest m;
      const std::size_t n = r.count(8 + 8 + 8 + 1 + 8);  // min encoded flow
      m.flows.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        m.flows.push_back(io::codec::decode_flow(r));
      }
      return m;
    }
    default:
      throw ProtocolError("response-typed frame where a request was expected");
  }
}

Response decode_response_body(MsgType type, io::ByteReader& r) {
  switch (type) {
    case MsgType::kAdmitResponse: {
      AdmitResponse m;
      if (r.u8() != 0) m.result = io::codec::decode_holistic_result(r);
      return m;
    }
    case MsgType::kRemoveResponse:
      return RemoveResponse{r.u8() != 0};
    case MsgType::kWhatIfBatchResponse: {
      WhatIfBatchResponse m;
      // Min encoded what-if: flags + lean converged/sweeps/flow_count.
      const std::size_t n = r.count(1 + 1 + 8 + 8);
      m.results.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        m.results.push_back(decode_what_if(r));
      }
      return m;
    }
    case MsgType::kStatsResponse: {
      StatsResponse m;
      m.stats = decode_engine_stats(r);
      m.flows = r.u64();
      m.shards = r.u64();
      m.role = decode_role(r);
      m.epoch = r.u64();
      m.commit_seq = r.u64();
      m.uptime_ms = r.u64();
      m.active_connections = r.u64();
      m.frames_served = r.u64();
      m.coalesced_commits = r.u64();
      m.pipelined_hwm = r.u64();
      m.solver_mode = r.u8();
      return m;
    }
    case MsgType::kSaveCheckpointResponse:
      return SaveCheckpointResponse{r.str()};
    case MsgType::kRestoreResponse:
      return RestoreResponse{r.u64()};
    case MsgType::kShutdownResponse:
      decode_reserved(r, "SHUTDOWN response");
      return ShutdownResponse{};
    case MsgType::kSubscribeResponse: {
      SubscribeResponse m;
      m.epoch = r.u64();
      m.next_seq = r.u64();
      return m;
    }
    case MsgType::kSyncFullResponse: {
      SyncFullResponse m;
      m.epoch = r.u64();
      m.commit_seq = r.u64();
      m.history = r.u64();
      m.checkpoint = r.str();
      return m;
    }
    case MsgType::kDeltaResponse: {
      DeltaResponse m;
      m.kind = decode_delta_kind(r);
      m.epoch = r.u64();
      m.seq = r.u64();
      m.flows_after = r.u64();
      switch (m.kind) {
        case DeltaKind::kAdmit:
          m.flow = io::codec::decode_flow(r);
          break;
        case DeltaKind::kRemove:
          m.index = r.u64();
          break;
        case DeltaKind::kRestore:
          m.checkpoint = r.str();
          break;
        case DeltaKind::kBatch: {
          const std::size_t n = r.count(1 + 8);  // min op: kind + index
          m.ops.reserve(n);
          for (std::size_t i = 0; i < n; ++i) {
            DeltaOp op;
            op.kind = decode_delta_kind(r);
            if (op.kind == DeltaKind::kAdmit) {
              op.flow = io::codec::decode_flow(r);
            } else if (op.kind == DeltaKind::kRemove) {
              op.index = r.u64();
            } else {
              throw ProtocolError("invalid op kind inside batch delta");
            }
            m.ops.push_back(std::move(op));
          }
          break;
        }
      }
      return m;
    }
    case MsgType::kPromoteResponse:
      return PromoteResponse{r.u64()};
    case MsgType::kRoleResponse: {
      RoleResponse m;
      m.role = decode_role(r);
      m.fenced = r.u8() != 0;
      m.epoch = r.u64();
      m.commit_seq = r.u64();
      m.primary_addr = r.str();
      m.connected = r.u8() != 0;
      m.full_syncs = r.u64();
      m.deltas_applied = r.u64();
      m.subscribers = r.u64();
      m.journal_begin = r.u64();
      m.journal_end = r.u64();
      return m;
    }
    case MsgType::kNotPrimaryResponse: {
      NotPrimaryResponse m;
      m.primary_addr = r.str();
      m.epoch = r.u64();
      return m;
    }
    case MsgType::kAdmitBatchResponse: {
      AdmitBatchResponse m;
      const std::size_t n = r.count(1);
      m.admitted.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t v = r.u8();
        if (v > 1) {
          throw ProtocolError("invalid admit-batch verdict byte " +
                              std::to_string(v));
        }
        m.admitted.push_back(v);
      }
      m.flows_after = r.u64();
      return m;
    }
    case MsgType::kErrorResponse:
      return ErrorResponse{r.str()};
    default:
      throw ProtocolError("request-typed frame where a response was expected");
  }
}

[[nodiscard]] bool known_type(std::uint32_t t) {
  return (t >= static_cast<std::uint32_t>(MsgType::kAdmitRequest) &&
          t <= static_cast<std::uint32_t>(MsgType::kAdmitBatchRequest)) ||
         (t >= static_cast<std::uint32_t>(MsgType::kAdmitResponse) &&
          t <= static_cast<std::uint32_t>(MsgType::kAdmitBatchResponse)) ||
         t == static_cast<std::uint32_t>(MsgType::kErrorResponse);
}

template <typename Msg>
std::string encode_frame(const Msg& msg, MsgType type) {
  io::ByteWriter body;
  std::visit(BodyEncoder{body}, msg);

  io::ByteWriter frame;
  frame.raw(std::string_view(kMagic, sizeof kMagic));
  frame.u32(kVersion);
  frame.u32(static_cast<std::uint32_t>(type));
  frame.u64(body.bytes().size());
  frame.u64(io::fnv1a(body.bytes()));
  frame.raw(body.bytes());
  return frame.take();
}

/// Splits a whole frame into validated (header, body) and dispatches to
/// `decode_body`; shared by decode_request / decode_response.
template <typename Msg, typename DecodeBody>
Msg decode_frame(std::string_view frame, DecodeBody&& decode_body) {
  if (frame.size() < kHeaderSize) {
    throw ProtocolError("truncated frame (header)");
  }
  const FrameHeader h = decode_frame_header(frame.substr(0, kHeaderSize));
  const std::string_view body = frame.substr(kHeaderSize);
  if (body.size() != h.body_len) {
    throw ProtocolError(body.size() < h.body_len
                            ? "truncated frame (body shorter than declared)"
                            : "trailing bytes after frame body");
  }
  verify_body(h, body);
  try {
    io::ByteReader r(body, "rpc body");
    Msg msg = decode_body(h.type, r);
    if (!r.done()) {
      throw ProtocolError("trailing bytes inside frame body");
    }
    return msg;
  } catch (const ProtocolError&) {
    throw;
  } catch (const std::exception& e) {
    // WireError truncation/enum failures from the shared codecs, plus
    // structural validation from net/gmf builders.
    throw ProtocolError(std::string("malformed message body: ") + e.what());
  }
}

}  // namespace

MsgType type_of(const Request& req) {
  return static_cast<MsgType>(
      static_cast<std::uint32_t>(MsgType::kAdmitRequest) +
      static_cast<std::uint32_t>(req.index()));
}

MsgType type_of(const Response& resp) {
  if (std::holds_alternative<ErrorResponse>(resp)) {
    return MsgType::kErrorResponse;
  }
  return static_cast<MsgType>(
      static_cast<std::uint32_t>(MsgType::kAdmitResponse) +
      static_cast<std::uint32_t>(resp.index()));
}

std::string encode_request(const Request& req) {
  return encode_frame(req, type_of(req));
}

std::string encode_response(const Response& resp) {
  return encode_frame(resp, type_of(resp));
}

FrameHeader decode_frame_header(std::string_view header) {
  if (header.size() < kHeaderSize) {
    throw ProtocolError("truncated frame (header)");
  }
  if (std::memcmp(header.data(), kMagic, sizeof kMagic) != 0) {
    throw ProtocolError("bad magic — not a gmfnet rpc frame");
  }
  io::ByteReader r(header.data() + sizeof kMagic,
                   kHeaderSize - sizeof kMagic, "rpc header");
  const std::uint32_t version = r.u32();
  if (version != kVersion) {
    throw ProtocolError("unsupported protocol version " +
                        std::to_string(version) + " (this build speaks " +
                        std::to_string(kVersion) + ")");
  }
  const std::uint32_t type = r.u32();
  if (!known_type(type)) {
    throw ProtocolError("unknown message type " + std::to_string(type));
  }
  FrameHeader h;
  h.type = static_cast<MsgType>(type);
  h.body_len = r.u64();
  if (h.body_len == 0) {
    throw ProtocolError("zero-length frame body");
  }
  if (h.body_len > kMaxBodyLen) {
    throw ProtocolError("oversized frame body (" +
                        std::to_string(h.body_len) + " bytes, limit " +
                        std::to_string(kMaxBodyLen) + ")");
  }
  h.checksum = r.u64();
  return h;
}

void verify_body(const FrameHeader& header, std::string_view body) {
  if (body.size() != header.body_len) {
    throw ProtocolError("frame body length mismatch");
  }
  if (io::fnv1a(body) != header.checksum) {
    throw ProtocolError("corrupted frame (checksum mismatch)");
  }
}

Request decode_request(std::string_view frame) {
  return decode_frame<Request>(frame, decode_request_body);
}

Response decode_response(std::string_view frame) {
  return decode_frame<Response>(frame, decode_response_body);
}

}  // namespace gmfnet::rpc
