#include "rpc/fault_injection.hpp"

namespace gmfnet::rpc {

namespace {

thread_local FaultInjector* t_injector = nullptr;

/// SplitMix64 step over an atomic state: each caller gets an independent
/// draw from one deterministic stream regardless of thread interleaving
/// (the *set* of decisions is fixed by the seed; their assignment to
/// threads is scheduling-dependent, which is exactly what a chaos soak
/// wants).
std::uint64_t next_u64(std::atomic<std::uint64_t>& state) {
  std::uint64_t z = state.fetch_add(0x9E3779B97F4A7C15ull,
                                    std::memory_order_relaxed) +
                    0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double unit(std::uint64_t v) {
  return static_cast<double>(v >> 11) * 0x1.0p-53;
}

/// A run of EINTRs longer than this would turn a retry loop into a
/// livelock; real kernels do not deliver unbounded signal storms either.
constexpr int kMaxEintrBurst = 16;

}  // namespace

FaultInjector::FaultInjector(FaultProfile profile)
    : profile_(profile), state_(profile.seed) {}

FaultInjector::Decision FaultInjector::next() {
  ios_.fetch_add(1, std::memory_order_relaxed);
  Decision d;
  if (profile_.delay > 0 && unit(next_u64(state_)) < profile_.delay) {
    d.delay_us = static_cast<int>(
        next_u64(state_) %
        static_cast<std::uint64_t>(profile_.max_delay_us > 0
                                       ? profile_.max_delay_us
                                       : 1));
    delays_.fetch_add(1, std::memory_order_relaxed);
  }
  if (profile_.reset > 0 && unit(next_u64(state_)) < profile_.reset) {
    resets_.fetch_add(1, std::memory_order_relaxed);
    d.io = Io::kReset;
    return d;
  }
  if (profile_.eintr > 0 && unit(next_u64(state_)) < profile_.eintr) {
    if (eintr_burst_.fetch_add(1, std::memory_order_relaxed) <
        kMaxEintrBurst) {
      eintrs_.fetch_add(1, std::memory_order_relaxed);
      d.io = Io::kEintr;
      return d;
    }
  }
  eintr_burst_.store(0, std::memory_order_relaxed);
  if (profile_.short_io > 0 && unit(next_u64(state_)) < profile_.short_io) {
    shorts_.fetch_add(1, std::memory_order_relaxed);
    d.io = Io::kShort;
  }
  return d;
}

ScopedFaultInjection::ScopedFaultInjection(FaultInjector& injector)
    : previous_(t_injector) {
  t_injector = &injector;
}

ScopedFaultInjection::~ScopedFaultInjection() { t_injector = previous_; }

FaultInjector* current_fault_injector() { return t_injector; }

}  // namespace gmfnet::rpc
