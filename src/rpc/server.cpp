#include "rpc/server.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>
#include <utility>

#include "io/atomic_file.hpp"
#include "util/log.hpp"

namespace gmfnet::rpc {

namespace {

template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

using Clock = std::chrono::steady_clock;

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             Clock::now().time_since_epoch())
      .count();
}

/// Tries to tell the peer why it is being disconnected (deadline blown,
/// malformed frame) before the close.  Strictly best-effort: the peer may
/// be the very thing that is broken, so failures are swallowed and the
/// send gets a short deadline of its own.
void best_effort_error(Socket& sock, const std::string& message) {
  try {
    sock.set_send_timeout_ms(1000);
    send_frame(sock, encode_response(ErrorResponse{message}));
  } catch (const std::exception&) {
  }
}

/// Idle-wait slice: how often a blocked handler re-checks stop/drain.
constexpr int kWaitSliceMs = 100;

/// Accept failures in a row after which the loop gives up on the listener.
constexpr int kMaxConsecutiveAcceptFailures = 100;

/// A per-process random history token (splitmix64 over clock/pid/address
/// entropy).  Never zero: zero is a replica's "no history yet".
std::uint64_t make_history_token(const void* self) {
  std::uint64_t x = static_cast<std::uint64_t>(
      Clock::now().time_since_epoch().count());
  x ^= static_cast<std::uint64_t>(::getpid()) << 32;
  x ^= static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(self));
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x | 1;
}

}  // namespace

Server::Server(std::shared_ptr<engine::AnalysisEngine> engine,
               ServerConfig cfg)
    : cfg_(std::move(cfg)),
      engine_(std::move(engine)),
      readers_(cfg_.reader_threads),
      reader_scratch_(readers_.size() + 1),
      role_(static_cast<std::uint8_t>(
          cfg_.replica_of.empty() ? Role::kPrimary : Role::kReplica)),
      // A fresh primary starts history at epoch 1; a replica starts at
      // epoch 0 ("before any history") and adopts its primary's epoch
      // with the first sync.
      epoch_(cfg_.replica_of.empty() ? 1 : 0),
      history_token_(make_history_token(this)),
      journal_(cfg_.journal_capacity),
      started_(Clock::now()) {
  if (!engine_) throw std::logic_error("rpc server: null engine");
  listener_ = cfg_.unix_path.empty()
                  ? Listener::listen_tcp(cfg_.tcp_host, cfg_.tcp_port)
                  : Listener::listen_unix(cfg_.unix_path);
  if (!cfg_.replica_of.empty()) {
    ReplicationClientConfig rcfg;
    rcfg.primary_addr = cfg_.replica_of;  // validated by the client ctor
    rcfg.connect_timeout_ms = cfg_.repl_connect_timeout_ms;
    rcfg.io_timeout_ms = cfg_.repl_io_timeout_ms;
    rcfg.backoff_initial_ms = cfg_.repl_backoff_initial_ms;
    rcfg.backoff_max_ms = cfg_.repl_backoff_max_ms;
    rcfg.backoff_seed = cfg_.repl_backoff_seed != 0 ? cfg_.repl_backoff_seed
                                                    : history_token_;
    rcfg.fault = cfg_.repl_fault;
    ReplicationHooks hooks;
    hooks.full_sync = [this](const SyncFullResponse& f) {
      replica_full_sync(f);
    };
    hooks.apply = [this](const DeltaResponse& d) { return replica_apply(d); };
    hooks.position = [this] {
      return ReplicaPosition{
          epoch(), commit_seq() + 1,
          upstream_history_.load(std::memory_order_acquire)};
    };
    hooks.stopped = [this] {
      return stop_requested() || drain_requested();
    };
    repl_ = std::make_unique<ReplicationClient>(std::move(rcfg),
                                                std::move(hooks));
    repl_->start();
  }
}

Server::~Server() {
  request_stop();
  // Wind the replication thread down before members it calls into go
  // away.  (By destruction time no handler threads are live — serve()
  // joined them — so the unlocked repl_ access is single-threaded.)
  if (repl_) repl_->stop();
  journal_.request_stop();
  // serve() owns connection teardown; if it never ran (or already
  // returned), there is nothing left to join here.
  listener_.close();
}

void Server::request_stop() { stop_.store(true, std::memory_order_release); }

void Server::request_drain() { drain_.store(true, std::memory_order_release); }

void Server::serve() {
  // Teardown (close + join every handler) must run no matter how the
  // accept loop ends: joinable std::threads destroyed without a join
  // would std::terminate the daemon.
  int consecutive_failures = 0;
  int backoff_ms = 0;
  // Ring of the most recent hard accept-failure reasons: when the loop
  // gives up it must say WHY, loudly — a daemon that stops serving with
  // an exit indistinguishable from a clean shutdown is undebuggable.
  std::vector<std::string> accept_errors;
  const auto note_accept_failure = [&](const std::string& what) {
    constexpr std::size_t kKeepErrors = 8;
    if (accept_errors.size() >= kKeepErrors) {
      accept_errors.erase(accept_errors.begin());
    }
    accept_errors.push_back(what);
    if (++consecutive_failures >= kMaxConsecutiveAcceptFailures) {
      std::string history;
      for (const std::string& e : accept_errors) {
        history += "\n  recent failure: " + e;
      }
      GMFNET_LOG_ERROR(
          "rpc server: accept loop giving up after %d consecutive hard "
          "failures — winding down abnormally%s",
          consecutive_failures, history.c_str());
      abnormal_.store(true, std::memory_order_release);
      request_stop();
    }
  };
  while (!stop_requested() && !drain_requested()) {
    try {
      Socket conn = listener_.accept(/*timeout_ms=*/50);
      reap_connections(/*all=*/false);
      if (!conn.valid()) continue;
      if (cfg_.max_connections > 0 &&
          live_connections() >= cfg_.max_connections) {
        shed_oldest_idle();
      }
      auto sock = std::make_shared<Socket>(std::move(conn));
      auto done = std::make_shared<std::atomic<bool>>(false);
      auto last_active =
          std::make_shared<std::atomic<std::int64_t>>(now_ms());
      std::thread th(&Server::handle_connection, this, sock, done,
                     last_active);
      std::lock_guard<std::mutex> lock(conn_mu_);
      conns_.push_back(Conn{std::move(th), sock, done, last_active});
      consecutive_failures = 0;
      backoff_ms = 0;
      accept_errors.clear();
    } catch (const TransportError& e) {
      if (is_transient_accept_error(e.errno_value())) {
        // fd exhaustion or a backlog abort: the listener is still good.
        // Back off (capped exponential) so the loop does not spin while
        // the condition clears, reap finished handlers to free fds, and
        // keep serving.
        backoff_ms = backoff_ms == 0 ? 10 : std::min(backoff_ms * 2, 500);
        GMFNET_LOG_WARN("rpc server: transient accept failure (%s), "
                        "backing off %dms",
                        e.what(), backoff_ms);
        reap_connections(/*all=*/false);
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        continue;
      }
      // A listener that fails persistently cannot recover — wind down
      // instead of spinning on it.
      note_accept_failure(e.what());
    } catch (const std::exception& e) {
      // Thread-spawn failure under load: drop that connection and keep
      // serving the live ones.
      note_accept_failure(e.what());
    }
  }
  listener_.close();
  // Wake subscriber streams parked on the journal; they exit within a
  // wait slice and are joined with every other handler below.
  journal_.request_stop();
  if (drain_requested() && !stop_requested()) {
    // Grace period: in-flight requests finish on their own (handlers exit
    // at the next request boundary once they observe the drain flag).
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(
                           cfg_.drain_timeout_ms >= 0 ? cfg_.drain_timeout_ms
                                                      : 0);
    for (;;) {
      reap_connections(/*all=*/false);
      {
        std::lock_guard<std::mutex> lock(conn_mu_);
        if (conns_.empty()) break;
      }
      if (Clock::now() >= deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  reap_connections(/*all=*/true);
  if (!cfg_.checkpoint_path.empty()) {
    std::lock_guard<std::mutex> lock(writer_mu_);
    try {
      write_checkpoint_locked();
    } catch (const std::exception& e) {
      GMFNET_LOG_ERROR("rpc server: final checkpoint failed: %s", e.what());
    }
  }
}

std::size_t Server::live_connections() const {
  std::lock_guard<std::mutex> lock(conn_mu_);
  std::size_t live = 0;
  for (const Conn& c : conns_) {
    if (!c.done->load(std::memory_order_acquire)) ++live;
  }
  return live;
}

void Server::shed_oldest_idle() {
  std::lock_guard<std::mutex> lock(conn_mu_);
  Conn* oldest = nullptr;
  std::int64_t oldest_ms = 0;
  for (Conn& c : conns_) {
    if (c.done->load(std::memory_order_acquire)) continue;
    const std::int64_t at = c.last_active->load(std::memory_order_relaxed);
    if (oldest == nullptr || at < oldest_ms) {
      oldest = &c;
      oldest_ms = at;
    }
  }
  if (oldest != nullptr) {
    // Wake its handler (blocked in recv) with EOF; it exits and is
    // reaped on a later pass.
    oldest->sock->shutdown_both();
    shed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::reap_connections(bool all) {
  std::vector<Conn> finished;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (all) {
      // Wake handlers blocked in recv; they observe EOF and exit.
      for (Conn& c : conns_) c.sock->shutdown_both();
      finished = std::move(conns_);
      conns_.clear();
    } else {
      for (auto it = conns_.begin(); it != conns_.end();) {
        if (it->done->load(std::memory_order_acquire)) {
          finished.push_back(std::move(*it));
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  for (Conn& c : finished) {
    if (c.thread.joinable()) c.thread.join();
  }
}

void Server::handle_connection(
    const std::shared_ptr<Socket>& sock,
    const std::shared_ptr<std::atomic<bool>>& done,
    const std::shared_ptr<std::atomic<std::int64_t>>& last_active) {
  sock->set_recv_timeout_ms(cfg_.io_timeout_ms);
  sock->set_send_timeout_ms(cfg_.io_timeout_ms);

  // Waits for the next request in short slices so a stop/drain interrupts
  // an idle connection promptly (the deadline knobs stay whole-operation:
  // slicing only applies to the between-requests idle wait).
  enum class Wait { kReady, kIdle, kWindDown };
  const auto wait_for_request = [&]() -> Wait {
    const Clock::time_point idle_start = Clock::now();
    for (;;) {
      if (stop_requested() || drain_requested()) return Wait::kWindDown;
      int slice = kWaitSliceMs;
      if (cfg_.idle_timeout_ms >= 0) {
        const auto idle_ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                Clock::now() - idle_start)
                .count();
        if (idle_ms >= cfg_.idle_timeout_ms) return Wait::kIdle;
        slice = std::min<int>(
            slice, static_cast<int>(cfg_.idle_timeout_ms - idle_ms));
      }
      if (sock->wait_readable(slice)) return Wait::kReady;
    }
  };

  try {
    for (;;) {
      const Wait w = wait_for_request();
      if (w == Wait::kWindDown) break;
      if (w == Wait::kIdle) {
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        best_effort_error(*sock, "idle timeout: closing connection");
        break;
      }
      std::optional<std::string> frame = recv_frame(*sock);
      if (!frame) break;  // peer closed cleanly
      last_active->store(now_ms(), std::memory_order_relaxed);
      Request req = decode_request(*frame);
      if (const auto* sub = std::get_if<SubscribeRequest>(&req)) {
        // The connection becomes a one-way delta stream; when it ends
        // (gap, peer gone, wind-down) the connection is done.
        serve_subscriber(*sock, *sub, last_active);
        break;
      }
      Response resp = handle(std::move(req));
      const bool shutting_down = std::holds_alternative<ShutdownResponse>(resp);
      send_frame(*sock, encode_response(resp));
      last_active->store(now_ms(), std::memory_order_relaxed);
      if (shutting_down) break;
    }
  } catch (const TimeoutError&) {
    // Stalled peer: mid-frame recv or an unread response blew the io
    // deadline.  Tell it why (best effort) and drop the connection —
    // never a hung thread.
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    best_effort_error(*sock, "request deadline exceeded: closing connection");
  } catch (const ProtocolError& e) {
    // Malformed frame: this connection's stream can no longer be trusted
    // — report why (best effort) and drop it, leaving the daemon and
    // other connections untouched.
    best_effort_error(*sock, e.what());
  } catch (const std::exception&) {
    // Broken socket: nothing to report to, just drop it.  (Engine-level
    // failures never reach here; handle() turns them into ErrorResponse.)
  }
  sock->shutdown_both();
  done->store(true, std::memory_order_release);
}

void Server::note_mutation_locked() {
  const std::size_t n = mutations_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (cfg_.checkpoint_every > 0 && !cfg_.checkpoint_path.empty() &&
      n % cfg_.checkpoint_every == 0) {
    try {
      write_checkpoint_locked();
    } catch (const std::exception& e) {
      // An auto-checkpoint failure must not fail the mutation that
      // triggered it (the admission itself committed fine); the previous
      // checkpoint generation is still on disk thanks to the atomic
      // writer.
      GMFNET_LOG_WARN("rpc server: auto-checkpoint failed: %s", e.what());
    }
  }
}

void Server::write_checkpoint_locked() {
  io::AtomicFileWriter writer(cfg_.checkpoint_path, /*keep_previous=*/true);
  engine()->save(writer.stream());
  writer.commit();
}

Response Server::handle(Request&& req) {
  try {
    return std::visit(
        Overloaded{
            [&](AdmitRequest& m) -> Response {
              std::lock_guard<std::mutex> lock(writer_mu_);
              if (role() != Role::kPrimary || fenced()) {
                return not_primary_locked();
              }
              // try_admit consumes the flow; the journal needs its bytes.
              gmf::Flow journal_flow = m.flow;
              AdmitResponse resp{engine()->try_admit(std::move(m.flow))};
              if (resp.result.has_value()) {
                DeltaResponse delta;
                delta.kind = DeltaKind::kAdmit;
                delta.flow = std::move(journal_flow);
                journal_commit_locked(std::move(delta));
                note_mutation_locked();
              }
              return resp;
            },
            [&](RemoveRequest& m) -> Response {
              std::lock_guard<std::mutex> lock(writer_mu_);
              if (role() != Role::kPrimary || fenced()) {
                return not_primary_locked();
              }
              const std::shared_ptr<engine::AnalysisEngine> eng = engine();
              const bool removed =
                  eng->remove_flow(static_cast<std::size_t>(m.index));
              // Re-evaluate immediately: the daemon keeps the published
              // snapshot fresh so reader probes never lag a mutation.
              if (removed) {
                (void)eng->evaluate();
                DeltaResponse delta;
                delta.kind = DeltaKind::kRemove;
                delta.index = m.index;
                journal_commit_locked(std::move(delta));
                note_mutation_locked();
              }
              return RemoveResponse{removed};
            },
            [&](WhatIfBatchRequest& m) -> Response {
              // Lock-free read path: probes run against the published
              // snapshot, fanned over the reader pool.
              const std::shared_ptr<engine::AnalysisEngine> eng = engine();
              const std::shared_ptr<const engine::EngineSnapshot> snap =
                  eng->published();
              WhatIfBatchResponse resp;
              resp.results.resize(m.candidates.size());
              // The first batch to arrive fans its candidates over the
              // reader pool; batches landing while the pool is busy probe
              // inline on their own connection thread instead of queueing
              // behind it (no head-of-line blocking across connections —
              // every probe is a lock-free snapshot read either way).
              std::unique_lock<std::mutex> pool_turn(readers_mu_,
                                                     std::try_to_lock);
              if (m.candidates.size() > 1 && readers_.size() > 1 &&
                  pool_turn.owns_lock()) {
                // Each pool slot reuses its own warm ProbeScratch across
                // batches (guarded by readers_mu_, held here).
                readers_.parallel_for_slotted(
                    m.candidates.size(), [&](std::size_t slot, std::size_t i) {
                      resp.results[i] =
                          snap->what_if(m.candidates[i], reader_scratch_[slot]);
                    });
              } else {
                const engine::ProbeScratchPool::Lease lease =
                    conn_scratch_.acquire();
                for (std::size_t i = 0; i < m.candidates.size(); ++i) {
                  resp.results[i] = snap->what_if(m.candidates[i], lease.get());
                }
              }
              return resp;
            },
            [&](StatsRequest&) -> Response {
              const std::shared_ptr<engine::AnalysisEngine> eng = engine();
              const std::shared_ptr<const engine::EngineSnapshot> snap =
                  eng->published();
              StatsResponse resp;
              resp.stats = eng->stats();
              resp.flows = snap->flow_count();
              resp.shards = snap->shard_count();
              resp.role = role();
              resp.epoch = epoch();
              resp.commit_seq = commit_seq();
              resp.uptime_ms = static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::milliseconds>(
                      Clock::now() - started_)
                      .count());
              return resp;
            },
            [&](SaveCheckpointRequest&) -> Response {
              std::lock_guard<std::mutex> lock(writer_mu_);
              std::ostringstream os;
              engine()->save(os);
              return SaveCheckpointResponse{std::move(os).str()};
            },
            [&](RestoreRequest& m) -> Response {
              std::lock_guard<std::mutex> lock(writer_mu_);
              if (role() != Role::kPrimary || fenced()) {
                return not_primary_locked();
              }
              std::istringstream is(m.checkpoint);
              std::shared_ptr<engine::AnalysisEngine> fresh =
                  engine::AnalysisEngine::restore_unique(is,
                                                         cfg_.engine_opts);
              std::atomic_store(&engine_, std::move(fresh));
              DeltaResponse delta;
              delta.kind = DeltaKind::kRestore;
              delta.checkpoint = std::move(m.checkpoint);
              journal_commit_locked(std::move(delta));
              note_mutation_locked();
              return RestoreResponse{engine()->flow_count()};
            },
            [&](ShutdownRequest&) -> Response {
              request_stop();
              return ShutdownResponse{};
            },
            [&](SubscribeRequest&) -> Response {
              // Unreachable: handle_connection hands SUBSCRIBE straight
              // to serve_subscriber.  Answer a pipelined misuse politely.
              return ErrorResponse{
                  "SUBSCRIBE must be the only request on its connection"};
            },
            [&](PromoteRequest&) -> Response {
              return PromoteResponse{promote()};
            },
            [&](RoleRequest&) -> Response {
              std::lock_guard<std::mutex> lock(writer_mu_);
              return role_response_locked();
            },
            [&](RepointRequest& m) -> Response {
              // Throws invalid_argument on a malformed address → the
              // catch below turns it into ErrorResponse, state untouched.
              (void)parse_primary_addr(m.primary_addr);
              std::lock_guard<std::mutex> lock(writer_mu_);
              if (role() != Role::kReplica || repl_ == nullptr) {
                return ErrorResponse{
                    "repoint: this daemon is not a replica"};
              }
              repl_->pause();
              repl_->resume(m.primary_addr);
              return role_response_locked();
            },
        },
        req);
  } catch (const std::exception& e) {
    // Engine/semantic failure executing a well-framed request: report it,
    // keep the connection (and the resident set) intact.
    return ErrorResponse{e.what()};
  }
}

// --------------------------------------------------------------- replication

void Server::journal_commit_locked(DeltaResponse&& delta) {
  const std::uint64_t seq =
      commit_seq_.load(std::memory_order_relaxed) + 1;
  delta.epoch = epoch_.load(std::memory_order_relaxed);
  delta.seq = seq;
  delta.flows_after = engine()->flow_count();
  // Encoded ONCE here; every subscriber streams the same frame bytes.
  journal_.append(seq, encode_response(Response{std::move(delta)}));
  commit_seq_.store(seq, std::memory_order_release);
}

NotPrimaryResponse Server::not_primary_locked() {
  NotPrimaryResponse np;
  np.epoch = epoch_.load(std::memory_order_relaxed);
  if (repl_) np.primary_addr = repl_->primary_addr();
  return np;
}

RoleResponse Server::role_response_locked() {
  RoleResponse r;
  r.role = role();
  r.fenced = fenced();
  r.epoch = epoch();
  r.commit_seq = commit_seq();
  if (repl_) {
    r.primary_addr = repl_->primary_addr();
    r.connected = repl_->connected();
    r.full_syncs = repl_->full_syncs();
    r.deltas_applied = repl_->deltas_applied();
  }
  r.subscribers = subscribers_.load(std::memory_order_relaxed);
  r.journal_begin = journal_.first_seq();
  r.journal_end = journal_.next_seq() - 1;  // begin - 1 when empty
  return r;
}

std::uint64_t Server::promote() {
  std::unique_ptr<ReplicationClient> old;
  std::uint64_t fresh_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    if (role() == Role::kPrimary && !fenced()) {
      // Idempotent: re-promoting the live primary must not fence anyone.
      return epoch_.load(std::memory_order_acquire);
    }
    // Outrank every history this daemon has ever seen — its own and any
    // peer that subscribed or synced to it.
    fresh_epoch = std::max(epoch_.load(std::memory_order_relaxed),
                           peer_epoch_.load(std::memory_order_relaxed)) +
                  1;
    epoch_.store(fresh_epoch, std::memory_order_release);
    // History before the promotion is not streamable under the new
    // epoch; every subscriber starts from here (or from a full sync).
    journal_.reset(commit_seq_.load(std::memory_order_relaxed) + 1);
    role_.store(static_cast<std::uint8_t>(Role::kPrimary),
                std::memory_order_release);
    fenced_.store(false, std::memory_order_release);
    old = std::move(repl_);
  }
  // Stopping the subscription joins its thread, which may be blocked on
  // writer_mu_ inside an apply hook — MUST happen outside the lock.  The
  // hook re-checks the role under the lock and refuses (kStale) now.
  if (old) old->stop();
  GMFNET_LOG_WARN("rpc server: promoted to primary at epoch %llu",
                  static_cast<unsigned long long>(fresh_epoch));
  return fresh_epoch;
}

void Server::replica_full_sync(const SyncFullResponse& full) {
  // Build the fresh engine outside the writer lock (checkpoint restore is
  // the expensive part), swap under it.
  std::istringstream is(full.checkpoint);
  std::shared_ptr<engine::AnalysisEngine> fresh =
      engine::AnalysisEngine::restore_unique(is, cfg_.engine_opts);
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (role() != Role::kReplica) {
    // Promoted while the sync was in flight — the new primary's state
    // must not be overwritten by its old upstream.
    throw std::runtime_error("full sync refused: no longer a replica");
  }
  std::atomic_store(&engine_, std::move(fresh));
  epoch_.store(full.epoch, std::memory_order_release);
  commit_seq_.store(full.commit_seq, std::memory_order_release);
  upstream_history_.store(full.history, std::memory_order_release);
  note_mutation_locked();
}

ApplyResult Server::replica_apply(const DeltaResponse& delta) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (role() != Role::kReplica) return ApplyResult::kStale;
  const std::uint64_t our_epoch = epoch_.load(std::memory_order_relaxed);
  if (delta.epoch < our_epoch) return ApplyResult::kStale;
  if (delta.epoch > our_epoch ||
      delta.seq != commit_seq_.load(std::memory_order_relaxed) + 1) {
    return ApplyResult::kGap;
  }
  const std::shared_ptr<engine::AnalysisEngine> eng = engine();
  switch (delta.kind) {
    case DeltaKind::kAdmit:
      // The primary only journals flows try_admit COMMITTED, and the
      // engine is deterministic: add_flow + evaluate reproduces the
      // primary's post-admission world bit for bit (the equivalence
      // guarantee the engine test suite holds it to).
      (void)eng->add_flow(delta.flow);
      (void)eng->evaluate();
      break;
    case DeltaKind::kRemove:
      if (!eng->remove_flow(static_cast<std::size_t>(delta.index))) {
        return ApplyResult::kGap;  // divergence — resync
      }
      (void)eng->evaluate();
      break;
    case DeltaKind::kRestore: {
      std::istringstream is(delta.checkpoint);
      std::shared_ptr<engine::AnalysisEngine> fresh =
          engine::AnalysisEngine::restore_unique(is, cfg_.engine_opts);
      std::atomic_store(&engine_, std::move(fresh));
      break;
    }
  }
  if (engine()->flow_count() != delta.flows_after) {
    // Tripwire: local state disagrees with the primary's after-image.
    // The state is already perturbed, but kGap forces a full resync that
    // replaces it wholesale — divergence never survives.
    return ApplyResult::kGap;
  }
  commit_seq_.store(delta.seq, std::memory_order_release);
  note_mutation_locked();
  return ApplyResult::kApplied;
}

void Server::serve_subscriber(
    Socket& sock, const SubscribeRequest& sub,
    const std::shared_ptr<std::atomic<std::int64_t>>& last_active) {
  if (sub.epoch > epoch()) {
    std::lock_guard<std::mutex> lock(writer_mu_);
    std::uint64_t cur = peer_epoch_.load(std::memory_order_relaxed);
    while (sub.epoch > cur &&
           !peer_epoch_.compare_exchange_weak(cur, sub.epoch,
                                              std::memory_order_acq_rel)) {
    }
    if (role() == Role::kPrimary &&
        sub.epoch > epoch_.load(std::memory_order_relaxed) && !fenced()) {
      // The fence, passive direction: a subscriber living in a later
      // epoch proves a newer primary was promoted somewhere.  This
      // daemon must never commit again — split-brain ends here.
      fenced_.store(true, std::memory_order_release);
      GMFNET_LOG_ERROR(
          "rpc server: fenced — subscriber at epoch %llu outranks our "
          "epoch %llu; refusing mutations until promoted",
          static_cast<unsigned long long>(sub.epoch),
          static_cast<unsigned long long>(
              epoch_.load(std::memory_order_relaxed)));
    }
  }
  {
    std::unique_lock<std::mutex> lock(writer_mu_);
    if (role() != Role::kPrimary || fenced()) {
      const NotPrimaryResponse np = not_primary_locked();
      lock.unlock();
      send_frame(sock, encode_response(Response{np}));
      return;
    }
  }

  subscribers_.fetch_add(1, std::memory_order_relaxed);
  struct SubscriberCount {
    std::atomic<std::uint64_t>& n;
    ~SubscriberCount() { n.fetch_sub(1, std::memory_order_relaxed); }
  } count_guard{subscribers_};

  // Journal catch-up needs the EXACT history: same token (not a restarted
  // primary whose fresh sequence numbers merely collide), same epoch, and
  // a position the bounded journal still covers.  Anything else gets the
  // whole world — degrading to a full sync is always safe.
  std::uint64_t next = 0;
  const bool catch_up =
      sub.history == history_token_ && sub.epoch == epoch() &&
      sub.next_seq >= journal_.first_seq() &&
      sub.next_seq <= journal_.next_seq();
  if (catch_up) {
    send_frame(sock,
               encode_response(Response{SubscribeResponse{epoch(),
                                                          sub.next_seq}}));
    next = sub.next_seq;
  } else {
    SyncFullResponse full;
    {
      std::lock_guard<std::mutex> lock(writer_mu_);
      std::ostringstream os;
      engine()->save(os);
      full.checkpoint = std::move(os).str();
      full.epoch = epoch_.load(std::memory_order_relaxed);
      full.commit_seq = commit_seq_.load(std::memory_order_relaxed);
      full.history = history_token_;
    }
    next = full.commit_seq + 1;
    // The (possibly large) blob goes out OUTSIDE writer_mu_: a slow
    // replica link must not stall the mutation path.
    send_frame(sock, encode_response(Response{std::move(full)}));
  }
  last_active->store(now_ms(), std::memory_order_relaxed);

  std::string frame;
  while (!stop_requested() && !drain_requested()) {
    switch (journal_.wait_fetch(next, frame, kWaitSliceMs)) {
      case ReplicationLog::Fetch::kOk:
        send_frame(sock, frame);
        ++next;
        last_active->store(now_ms(), std::memory_order_relaxed);
        break;
      case ReplicationLog::Fetch::kTimeout:
        // Nothing committed this slice.  A subscriber never speaks after
        // SUBSCRIBE, so readability means EOF (or junk) — either way the
        // stream is over; the replica owns reconnecting.
        if (sock.wait_readable(0)) return;
        break;
      case ReplicationLog::Fetch::kGap:
        // The bounded journal moved past this replica (or a promote
        // reset it).  Drop the stream; the reconnect gets a full sync.
        return;
      case ReplicationLog::Fetch::kStopped:
        return;
    }
  }
}

}  // namespace gmfnet::rpc
