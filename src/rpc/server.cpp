#include "rpc/server.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>
#include <utility>

#include "io/atomic_file.hpp"
#include "util/log.hpp"

namespace gmfnet::rpc {

namespace {

template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

using Clock = std::chrono::steady_clock;

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             Clock::now().time_since_epoch())
      .count();
}

/// Tries to tell the peer why it is being disconnected (deadline blown,
/// malformed frame) before the close.  Strictly best-effort: the peer may
/// be the very thing that is broken, so failures are swallowed and the
/// send gets a short deadline of its own.
void best_effort_error(Socket& sock, const std::string& message) {
  try {
    sock.set_send_timeout_ms(1000);
    send_frame(sock, encode_response(ErrorResponse{message}));
  } catch (const std::exception&) {
  }
}

/// Idle-wait slice: how often a blocked handler re-checks stop/drain.
constexpr int kWaitSliceMs = 100;

}  // namespace

Server::Server(std::shared_ptr<engine::AnalysisEngine> engine,
               ServerConfig cfg)
    : cfg_(std::move(cfg)),
      engine_(std::move(engine)),
      readers_(cfg_.reader_threads),
      reader_scratch_(readers_.size() + 1) {
  if (!engine_) throw std::logic_error("rpc server: null engine");
  listener_ = cfg_.unix_path.empty()
                  ? Listener::listen_tcp(cfg_.tcp_host, cfg_.tcp_port)
                  : Listener::listen_unix(cfg_.unix_path);
}

Server::~Server() {
  request_stop();
  // serve() owns connection teardown; if it never ran (or already
  // returned), there is nothing left to join here.
  listener_.close();
}

void Server::request_stop() { stop_.store(true, std::memory_order_release); }

void Server::request_drain() { drain_.store(true, std::memory_order_release); }

void Server::serve() {
  // Teardown (close + join every handler) must run no matter how the
  // accept loop ends: joinable std::threads destroyed without a join
  // would std::terminate the daemon.
  int consecutive_failures = 0;
  int backoff_ms = 0;
  while (!stop_requested() && !drain_requested()) {
    try {
      Socket conn = listener_.accept(/*timeout_ms=*/50);
      reap_connections(/*all=*/false);
      if (!conn.valid()) continue;
      if (cfg_.max_connections > 0 &&
          live_connections() >= cfg_.max_connections) {
        shed_oldest_idle();
      }
      auto sock = std::make_shared<Socket>(std::move(conn));
      auto done = std::make_shared<std::atomic<bool>>(false);
      auto last_active =
          std::make_shared<std::atomic<std::int64_t>>(now_ms());
      std::thread th(&Server::handle_connection, this, sock, done,
                     last_active);
      std::lock_guard<std::mutex> lock(conn_mu_);
      conns_.push_back(Conn{std::move(th), sock, done, last_active});
      consecutive_failures = 0;
      backoff_ms = 0;
    } catch (const TransportError& e) {
      if (is_transient_accept_error(e.errno_value())) {
        // fd exhaustion or a backlog abort: the listener is still good.
        // Back off (capped exponential) so the loop does not spin while
        // the condition clears, reap finished handlers to free fds, and
        // keep serving.
        backoff_ms = backoff_ms == 0 ? 10 : std::min(backoff_ms * 2, 500);
        GMFNET_LOG_WARN("rpc server: transient accept failure (%s), "
                        "backing off %dms",
                        e.what(), backoff_ms);
        reap_connections(/*all=*/false);
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        continue;
      }
      // A listener that fails persistently cannot recover — wind down
      // instead of spinning on it.
      if (++consecutive_failures >= 100) request_stop();
    } catch (const std::exception&) {
      // Thread-spawn failure under load: drop that connection and keep
      // serving the live ones.
      if (++consecutive_failures >= 100) request_stop();
    }
  }
  listener_.close();
  if (drain_requested() && !stop_requested()) {
    // Grace period: in-flight requests finish on their own (handlers exit
    // at the next request boundary once they observe the drain flag).
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(
                           cfg_.drain_timeout_ms >= 0 ? cfg_.drain_timeout_ms
                                                      : 0);
    for (;;) {
      reap_connections(/*all=*/false);
      {
        std::lock_guard<std::mutex> lock(conn_mu_);
        if (conns_.empty()) break;
      }
      if (Clock::now() >= deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  reap_connections(/*all=*/true);
  if (!cfg_.checkpoint_path.empty()) {
    std::lock_guard<std::mutex> lock(writer_mu_);
    try {
      write_checkpoint_locked();
    } catch (const std::exception& e) {
      GMFNET_LOG_ERROR("rpc server: final checkpoint failed: %s", e.what());
    }
  }
}

std::size_t Server::live_connections() const {
  std::lock_guard<std::mutex> lock(conn_mu_);
  std::size_t live = 0;
  for (const Conn& c : conns_) {
    if (!c.done->load(std::memory_order_acquire)) ++live;
  }
  return live;
}

void Server::shed_oldest_idle() {
  std::lock_guard<std::mutex> lock(conn_mu_);
  Conn* oldest = nullptr;
  std::int64_t oldest_ms = 0;
  for (Conn& c : conns_) {
    if (c.done->load(std::memory_order_acquire)) continue;
    const std::int64_t at = c.last_active->load(std::memory_order_relaxed);
    if (oldest == nullptr || at < oldest_ms) {
      oldest = &c;
      oldest_ms = at;
    }
  }
  if (oldest != nullptr) {
    // Wake its handler (blocked in recv) with EOF; it exits and is
    // reaped on a later pass.
    oldest->sock->shutdown_both();
    shed_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::reap_connections(bool all) {
  std::vector<Conn> finished;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (all) {
      // Wake handlers blocked in recv; they observe EOF and exit.
      for (Conn& c : conns_) c.sock->shutdown_both();
      finished = std::move(conns_);
      conns_.clear();
    } else {
      for (auto it = conns_.begin(); it != conns_.end();) {
        if (it->done->load(std::memory_order_acquire)) {
          finished.push_back(std::move(*it));
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  for (Conn& c : finished) {
    if (c.thread.joinable()) c.thread.join();
  }
}

void Server::handle_connection(
    const std::shared_ptr<Socket>& sock,
    const std::shared_ptr<std::atomic<bool>>& done,
    const std::shared_ptr<std::atomic<std::int64_t>>& last_active) {
  sock->set_recv_timeout_ms(cfg_.io_timeout_ms);
  sock->set_send_timeout_ms(cfg_.io_timeout_ms);

  // Waits for the next request in short slices so a stop/drain interrupts
  // an idle connection promptly (the deadline knobs stay whole-operation:
  // slicing only applies to the between-requests idle wait).
  enum class Wait { kReady, kIdle, kWindDown };
  const auto wait_for_request = [&]() -> Wait {
    const Clock::time_point idle_start = Clock::now();
    for (;;) {
      if (stop_requested() || drain_requested()) return Wait::kWindDown;
      int slice = kWaitSliceMs;
      if (cfg_.idle_timeout_ms >= 0) {
        const auto idle_ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                Clock::now() - idle_start)
                .count();
        if (idle_ms >= cfg_.idle_timeout_ms) return Wait::kIdle;
        slice = std::min<int>(
            slice, static_cast<int>(cfg_.idle_timeout_ms - idle_ms));
      }
      if (sock->wait_readable(slice)) return Wait::kReady;
    }
  };

  try {
    for (;;) {
      const Wait w = wait_for_request();
      if (w == Wait::kWindDown) break;
      if (w == Wait::kIdle) {
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        best_effort_error(*sock, "idle timeout: closing connection");
        break;
      }
      std::optional<std::string> frame = recv_frame(*sock);
      if (!frame) break;  // peer closed cleanly
      last_active->store(now_ms(), std::memory_order_relaxed);
      Response resp = handle(decode_request(*frame));
      const bool shutting_down = std::holds_alternative<ShutdownResponse>(resp);
      send_frame(*sock, encode_response(resp));
      last_active->store(now_ms(), std::memory_order_relaxed);
      if (shutting_down) break;
    }
  } catch (const TimeoutError&) {
    // Stalled peer: mid-frame recv or an unread response blew the io
    // deadline.  Tell it why (best effort) and drop the connection —
    // never a hung thread.
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    best_effort_error(*sock, "request deadline exceeded: closing connection");
  } catch (const ProtocolError& e) {
    // Malformed frame: this connection's stream can no longer be trusted
    // — report why (best effort) and drop it, leaving the daemon and
    // other connections untouched.
    best_effort_error(*sock, e.what());
  } catch (const std::exception&) {
    // Broken socket: nothing to report to, just drop it.  (Engine-level
    // failures never reach here; handle() turns them into ErrorResponse.)
  }
  sock->shutdown_both();
  done->store(true, std::memory_order_release);
}

void Server::note_mutation_locked() {
  const std::size_t n = mutations_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (cfg_.checkpoint_every > 0 && !cfg_.checkpoint_path.empty() &&
      n % cfg_.checkpoint_every == 0) {
    try {
      write_checkpoint_locked();
    } catch (const std::exception& e) {
      // An auto-checkpoint failure must not fail the mutation that
      // triggered it (the admission itself committed fine); the previous
      // checkpoint generation is still on disk thanks to the atomic
      // writer.
      GMFNET_LOG_WARN("rpc server: auto-checkpoint failed: %s", e.what());
    }
  }
}

void Server::write_checkpoint_locked() {
  io::AtomicFileWriter writer(cfg_.checkpoint_path, /*keep_previous=*/true);
  engine()->save(writer.stream());
  writer.commit();
}

Response Server::handle(Request&& req) {
  try {
    return std::visit(
        Overloaded{
            [&](AdmitRequest& m) -> Response {
              std::lock_guard<std::mutex> lock(writer_mu_);
              AdmitResponse resp{engine()->try_admit(std::move(m.flow))};
              if (resp.result.has_value()) note_mutation_locked();
              return resp;
            },
            [&](RemoveRequest& m) -> Response {
              std::lock_guard<std::mutex> lock(writer_mu_);
              const std::shared_ptr<engine::AnalysisEngine> eng = engine();
              const bool removed =
                  eng->remove_flow(static_cast<std::size_t>(m.index));
              // Re-evaluate immediately: the daemon keeps the published
              // snapshot fresh so reader probes never lag a mutation.
              if (removed) {
                (void)eng->evaluate();
                note_mutation_locked();
              }
              return RemoveResponse{removed};
            },
            [&](WhatIfBatchRequest& m) -> Response {
              // Lock-free read path: probes run against the published
              // snapshot, fanned over the reader pool.
              const std::shared_ptr<engine::AnalysisEngine> eng = engine();
              const std::shared_ptr<const engine::EngineSnapshot> snap =
                  eng->published();
              WhatIfBatchResponse resp;
              resp.results.resize(m.candidates.size());
              // The first batch to arrive fans its candidates over the
              // reader pool; batches landing while the pool is busy probe
              // inline on their own connection thread instead of queueing
              // behind it (no head-of-line blocking across connections —
              // every probe is a lock-free snapshot read either way).
              std::unique_lock<std::mutex> pool_turn(readers_mu_,
                                                     std::try_to_lock);
              if (m.candidates.size() > 1 && readers_.size() > 1 &&
                  pool_turn.owns_lock()) {
                // Each pool slot reuses its own warm ProbeScratch across
                // batches (guarded by readers_mu_, held here).
                readers_.parallel_for_slotted(
                    m.candidates.size(), [&](std::size_t slot, std::size_t i) {
                      resp.results[i] =
                          snap->what_if(m.candidates[i], reader_scratch_[slot]);
                    });
              } else {
                const engine::ProbeScratchPool::Lease lease =
                    conn_scratch_.acquire();
                for (std::size_t i = 0; i < m.candidates.size(); ++i) {
                  resp.results[i] = snap->what_if(m.candidates[i], lease.get());
                }
              }
              return resp;
            },
            [&](StatsRequest&) -> Response {
              const std::shared_ptr<engine::AnalysisEngine> eng = engine();
              const std::shared_ptr<const engine::EngineSnapshot> snap =
                  eng->published();
              return StatsResponse{eng->stats(), snap->flow_count(),
                                   snap->shard_count()};
            },
            [&](SaveCheckpointRequest&) -> Response {
              std::lock_guard<std::mutex> lock(writer_mu_);
              std::ostringstream os;
              engine()->save(os);
              return SaveCheckpointResponse{std::move(os).str()};
            },
            [&](RestoreRequest& m) -> Response {
              std::lock_guard<std::mutex> lock(writer_mu_);
              std::istringstream is(std::move(m.checkpoint));
              std::shared_ptr<engine::AnalysisEngine> fresh =
                  engine::AnalysisEngine::restore_unique(is,
                                                         cfg_.engine_opts);
              std::atomic_store(&engine_, std::move(fresh));
              note_mutation_locked();
              return RestoreResponse{engine()->flow_count()};
            },
            [&](ShutdownRequest&) -> Response {
              request_stop();
              return ShutdownResponse{};
            },
        },
        req);
  } catch (const std::exception& e) {
    // Engine/semantic failure executing a well-framed request: report it,
    // keep the connection (and the resident set) intact.
    return ErrorResponse{e.what()};
  }
}

}  // namespace gmfnet::rpc
