#include "rpc/server.hpp"

#include <sstream>
#include <utility>

namespace gmfnet::rpc {

namespace {

template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;

}  // namespace

Server::Server(std::shared_ptr<engine::AnalysisEngine> engine,
               ServerConfig cfg)
    : cfg_(std::move(cfg)),
      engine_(std::move(engine)),
      readers_(cfg_.reader_threads),
      reader_scratch_(readers_.size() + 1) {
  if (!engine_) throw std::logic_error("rpc server: null engine");
  listener_ = cfg_.unix_path.empty()
                  ? Listener::listen_tcp(cfg_.tcp_host, cfg_.tcp_port)
                  : Listener::listen_unix(cfg_.unix_path);
}

Server::~Server() {
  request_stop();
  // serve() owns connection teardown; if it never ran (or already
  // returned), there is nothing left to join here.
  listener_.close();
}

void Server::request_stop() { stop_.store(true, std::memory_order_release); }

void Server::serve() {
  // Teardown (close + join every handler) must run no matter how the
  // accept loop ends: joinable std::threads destroyed without a join
  // would std::terminate the daemon.
  int consecutive_failures = 0;
  while (!stop_requested()) {
    try {
      Socket conn = listener_.accept(/*timeout_ms=*/50);
      reap_connections(/*all=*/false);
      if (!conn.valid()) continue;
      auto sock = std::make_shared<Socket>(std::move(conn));
      auto done = std::make_shared<std::atomic<bool>>(false);
      std::thread th(&Server::handle_connection, this, sock, done);
      std::lock_guard<std::mutex> lock(conn_mu_);
      conns_.push_back(Conn{std::move(th), sock, done});
      consecutive_failures = 0;
    } catch (const std::exception&) {
      // Transient accept/thread-spawn failure (fd or thread exhaustion
      // under a connection flood): drop that connection and keep serving
      // the live ones.  A listener that fails persistently cannot recover
      // — wind down instead of spinning on it.
      if (++consecutive_failures >= 100) request_stop();
    }
  }
  listener_.close();
  reap_connections(/*all=*/true);
}

void Server::reap_connections(bool all) {
  std::vector<Conn> finished;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (all) {
      // Wake handlers blocked in recv; they observe EOF and exit.
      for (Conn& c : conns_) c.sock->shutdown_both();
      finished = std::move(conns_);
      conns_.clear();
    } else {
      for (auto it = conns_.begin(); it != conns_.end();) {
        if (it->done->load(std::memory_order_acquire)) {
          finished.push_back(std::move(*it));
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  for (Conn& c : finished) {
    if (c.thread.joinable()) c.thread.join();
  }
}

void Server::handle_connection(
    const std::shared_ptr<Socket>& sock,
    const std::shared_ptr<std::atomic<bool>>& done) {
  try {
    for (;;) {
      std::optional<std::string> frame = recv_frame(*sock);
      if (!frame) break;  // peer closed cleanly
      Response resp = handle(decode_request(*frame));
      const bool shutting_down = std::holds_alternative<ShutdownResponse>(resp);
      send_frame(*sock, encode_response(resp));
      if (shutting_down) break;
    }
  } catch (const std::exception&) {
    // Malformed frame or broken socket: this connection's stream can no
    // longer be trusted — drop it, leave the daemon and other connections
    // untouched.  (Engine-level failures never reach here; handle() turns
    // them into ErrorResponse.)
  }
  sock->shutdown_both();
  done->store(true, std::memory_order_release);
}

Response Server::handle(Request&& req) {
  try {
    return std::visit(
        Overloaded{
            [&](AdmitRequest& m) -> Response {
              std::lock_guard<std::mutex> lock(writer_mu_);
              return AdmitResponse{engine()->try_admit(std::move(m.flow))};
            },
            [&](RemoveRequest& m) -> Response {
              std::lock_guard<std::mutex> lock(writer_mu_);
              const std::shared_ptr<engine::AnalysisEngine> eng = engine();
              const bool removed =
                  eng->remove_flow(static_cast<std::size_t>(m.index));
              // Re-evaluate immediately: the daemon keeps the published
              // snapshot fresh so reader probes never lag a mutation.
              if (removed) (void)eng->evaluate();
              return RemoveResponse{removed};
            },
            [&](WhatIfBatchRequest& m) -> Response {
              // Lock-free read path: probes run against the published
              // snapshot, fanned over the reader pool.
              const std::shared_ptr<engine::AnalysisEngine> eng = engine();
              const std::shared_ptr<const engine::EngineSnapshot> snap =
                  eng->published();
              WhatIfBatchResponse resp;
              resp.results.resize(m.candidates.size());
              // The first batch to arrive fans its candidates over the
              // reader pool; batches landing while the pool is busy probe
              // inline on their own connection thread instead of queueing
              // behind it (no head-of-line blocking across connections —
              // every probe is a lock-free snapshot read either way).
              std::unique_lock<std::mutex> pool_turn(readers_mu_,
                                                     std::try_to_lock);
              if (m.candidates.size() > 1 && readers_.size() > 1 &&
                  pool_turn.owns_lock()) {
                // Each pool slot reuses its own warm ProbeScratch across
                // batches (guarded by readers_mu_, held here).
                readers_.parallel_for_slotted(
                    m.candidates.size(), [&](std::size_t slot, std::size_t i) {
                      resp.results[i] =
                          snap->what_if(m.candidates[i], reader_scratch_[slot]);
                    });
              } else {
                const engine::ProbeScratchPool::Lease lease =
                    conn_scratch_.acquire();
                for (std::size_t i = 0; i < m.candidates.size(); ++i) {
                  resp.results[i] = snap->what_if(m.candidates[i], lease.get());
                }
              }
              return resp;
            },
            [&](StatsRequest&) -> Response {
              const std::shared_ptr<engine::AnalysisEngine> eng = engine();
              const std::shared_ptr<const engine::EngineSnapshot> snap =
                  eng->published();
              return StatsResponse{eng->stats(), snap->flow_count(),
                                   snap->shard_count()};
            },
            [&](SaveCheckpointRequest&) -> Response {
              std::lock_guard<std::mutex> lock(writer_mu_);
              std::ostringstream os;
              engine()->save(os);
              return SaveCheckpointResponse{std::move(os).str()};
            },
            [&](RestoreRequest& m) -> Response {
              std::lock_guard<std::mutex> lock(writer_mu_);
              std::istringstream is(std::move(m.checkpoint));
              std::shared_ptr<engine::AnalysisEngine> fresh =
                  engine::AnalysisEngine::restore_unique(is,
                                                         cfg_.engine_opts);
              std::atomic_store(&engine_, std::move(fresh));
              return RestoreResponse{engine()->flow_count()};
            },
            [&](ShutdownRequest&) -> Response {
              request_stop();
              return ShutdownResponse{};
            },
        },
        req);
  } catch (const std::exception& e) {
    // Engine/semantic failure executing a well-framed request: report it,
    // keep the connection (and the resident set) intact.
    return ErrorResponse{e.what()};
  }
}

}  // namespace gmfnet::rpc
