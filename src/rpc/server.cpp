#include "rpc/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <sstream>
#include <thread>
#include <utility>
#include <variant>

#include "io/atomic_file.hpp"
#include "util/log.hpp"

namespace gmfnet::rpc {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             Clock::now().time_since_epoch())
      .count();
}

/// Reactor wait slice: the epoll wait never parks longer than this, so a
/// stop/drain request is observed promptly even with no timers armed.
constexpr int kWaitSliceMs = 100;

/// Accept failures in a row after which the loop gives up on the listener.
constexpr int kMaxConsecutiveAcceptFailures = 100;

/// Grace allowance for flushing a best-effort ERROR frame to a peer that
/// is being disconnected (deadline blown, malformed frame).
constexpr int kErrorFlushGraceMs = 1000;

/// A subscriber whose unflushed delta backlog exceeds this pauses its own
/// journal pump until the socket drains — a slow replica never grows the
/// daemon's memory unboundedly (it falls behind and full-syncs instead).
constexpr std::size_t kSubscriberOutCap = 4u << 20;

/// epoll identity values below the first connection id.
constexpr std::uint64_t kListenerId = 0;
constexpr std::uint64_t kWakeId = 1;

/// A per-process random history token (splitmix64 over clock/pid/address
/// entropy).  Never zero: zero is a replica's "no history yet".
std::uint64_t make_history_token(const void* self) {
  std::uint64_t x = static_cast<std::uint64_t>(
      Clock::now().time_since_epoch().count());
  x ^= static_cast<std::uint64_t>(::getpid()) << 32;
  x ^= static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(self));
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x | 1;
}

/// ADMIT / REMOVE / ADMIT_BATCH coalesce into one commit group; anything
/// else is a barrier that executes alone.
bool coalescable(const Request& req) {
  return std::holds_alternative<AdmitRequest>(req) ||
         std::holds_alternative<RemoveRequest>(req) ||
         std::holds_alternative<AdmitBatchRequest>(req);
}

}  // namespace

Server::Server(std::shared_ptr<engine::AnalysisEngine> engine,
               ServerConfig cfg)
    : cfg_(std::move(cfg)),
      engine_(std::move(engine)),
      readers_(cfg_.reader_threads),
      role_(static_cast<std::uint8_t>(
          cfg_.replica_of.empty() ? Role::kPrimary : Role::kReplica)),
      // A fresh primary starts history at epoch 1; a replica starts at
      // epoch 0 ("before any history") and adopts its primary's epoch
      // with the first sync.
      epoch_(cfg_.replica_of.empty() ? 1 : 0),
      history_token_(make_history_token(this)),
      journal_(cfg_.journal_capacity),
      started_(Clock::now()) {
  if (!engine_) throw std::logic_error("rpc server: null engine");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    throw TransportError("rpc server: eventfd failed", errno);
  }
  try {
    listener_ = cfg_.unix_path.empty()
                    ? Listener::listen_tcp(cfg_.tcp_host, cfg_.tcp_port)
                    : Listener::listen_unix(cfg_.unix_path);
  } catch (...) {
    ::close(wake_fd_);
    wake_fd_ = -1;
    throw;
  }
  if (!cfg_.replica_of.empty()) {
    ReplicationClientConfig rcfg;
    rcfg.primary_addr = cfg_.replica_of;  // validated by the client ctor
    rcfg.connect_timeout_ms = cfg_.repl_connect_timeout_ms;
    rcfg.io_timeout_ms = cfg_.repl_io_timeout_ms;
    rcfg.backoff_initial_ms = cfg_.repl_backoff_initial_ms;
    rcfg.backoff_max_ms = cfg_.repl_backoff_max_ms;
    rcfg.backoff_seed = cfg_.repl_backoff_seed != 0 ? cfg_.repl_backoff_seed
                                                    : history_token_;
    rcfg.fault = cfg_.repl_fault;
    ReplicationHooks hooks;
    hooks.full_sync = [this](const SyncFullResponse& f) {
      replica_full_sync(f);
    };
    hooks.apply = [this](const DeltaResponse& d) { return replica_apply(d); };
    hooks.position = [this] {
      return ReplicaPosition{
          epoch(), commit_seq() + 1,
          upstream_history_.load(std::memory_order_acquire)};
    };
    hooks.stopped = [this] {
      return stop_requested() || drain_requested();
    };
    repl_ = std::make_unique<ReplicationClient>(std::move(rcfg),
                                                std::move(hooks));
    repl_->start();
  }
}

Server::~Server() {
  request_stop();
  // Wind the replication thread down before members it calls into go
  // away.  (By destruction time serve() has returned — no reactor, no
  // mutation worker — so the unlocked repl_ access is single-threaded.)
  if (repl_) repl_->stop();
  journal_.request_stop();
  listener_.close();
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
}

void Server::request_stop() {
  stop_.store(true, std::memory_order_release);
  wake_reactor();
}

void Server::request_drain() {
  drain_.store(true, std::memory_order_release);
  wake_reactor();
}

void Server::wake_reactor() {
  if (wake_fd_ < 0) return;
  const std::uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof one);
}

// ------------------------------------------------------------------ reactor --

void Server::serve() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw TransportError("rpc server: epoll_create1 failed", errno);
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerId;
  if (listener_.valid() &&
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_.fd(), &ev) != 0) {
    const int err = errno;
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    throw TransportError("rpc server: epoll_ctl(listener) failed", err);
  }
  ev.data.u64 = kWakeId;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    const int err = errno;
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    throw TransportError("rpc server: epoll_ctl(eventfd) failed", err);
  }

  {
    std::lock_guard<std::mutex> lock(mut_mu_);
    mut_stop_ = false;
  }
  std::thread mut_thread(&Server::mutation_loop, this);

  try {
    reactor_loop();
  } catch (const std::exception& e) {
    GMFNET_LOG_ERROR("rpc server: reactor failed: %s — winding down "
                     "abnormally",
                     e.what());
    abnormal_.store(true, std::memory_order_release);
    request_stop();
  }

  // Teardown: stop the mutation worker, drop every connection, quiesce
  // the reader pool, then write the final checkpoint.
  {
    std::lock_guard<std::mutex> lock(mut_mu_);
    mut_stop_ = true;
  }
  mut_cv_.notify_all();
  mut_thread.join();
  journal_.request_stop();
  {
    std::vector<std::uint64_t> ids;
    ids.reserve(conns_.size());
    for (const auto& [id, c] : conns_) ids.push_back(id);
    for (const std::uint64_t id : ids) close_conn(id);
    dead_.clear();
  }
  readers_.wait_idle();
  {
    // Worker completions posted after the last pump are unreachable now.
    std::lock_guard<std::mutex> lock(comp_mu_);
    comp_queue_.clear();
  }
  listener_.close();
  ::close(epoll_fd_);
  epoll_fd_ = -1;
  if (!cfg_.checkpoint_path.empty()) {
    std::lock_guard<std::mutex> lock(writer_mu_);
    try {
      write_checkpoint_locked();
    } catch (const std::exception& e) {
      GMFNET_LOG_ERROR("rpc server: final checkpoint failed: %s", e.what());
    }
  }
}

void Server::reactor_loop() {
  int consecutive_failures = 0;
  int backoff_ms = 0;
  // Ring of the most recent hard accept-failure reasons: when the loop
  // gives up it must say WHY, loudly — a daemon that stops serving with
  // an exit indistinguishable from a clean shutdown is undebuggable.
  std::vector<std::string> accept_errors;
  std::array<epoll_event, 128> events{};
  std::vector<std::uint64_t> expired;

  while (!stop_requested()) {
    if (drain_requested() && !draining_) begin_drain();
    if (draining_) {
      if (conns_.empty()) break;
      if (Clock::now() >= drain_deadline_) break;
    }
    int timeout = kWaitSliceMs;
    const int wheel_delay = wheel_.next_delay_ms(Clock::now());
    if (wheel_delay >= 0) timeout = std::min(timeout, wheel_delay);
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      GMFNET_LOG_ERROR("rpc server: epoll_wait failed (errno %d) — winding "
                       "down abnormally",
                       errno);
      abnormal_.store(true, std::memory_order_release);
      request_stop();
      break;
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t id = events[i].data.u64;
      const std::uint32_t evs = events[i].events;
      if (id == kListenerId) {
        if (!draining_ && !stop_requested()) {
          accept_ready(consecutive_failures, backoff_ms, accept_errors);
        }
        continue;
      }
      if (id == kWakeId) {
        std::uint64_t v = 0;
        while (::read(wake_fd_, &v, sizeof v) > 0) {
        }
        continue;
      }
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // closed earlier this batch
      Conn& c = *it->second;
      if ((evs & (EPOLLERR | EPOLLHUP)) != 0) {
        close_conn(id);
        continue;
      }
      if ((evs & EPOLLIN) != 0) {
        on_readable(c);
        if (conns_.find(id) == conns_.end()) continue;
      }
      if ((evs & EPOLLOUT) != 0) flush_out(c);
    }
    pump_completions();
    pump_subscribers();
    expired.clear();
    wheel_.expire(Clock::now(), expired);
    for (const std::uint64_t id : expired) handle_expired(id);
    dead_.clear();
  }
  dead_.clear();
}

void Server::accept_ready(int& consecutive_failures, int& backoff_ms,
                          std::vector<std::string>& accept_errors) {
  const auto note_accept_failure = [&](const std::string& what) {
    constexpr std::size_t kKeepErrors = 8;
    if (accept_errors.size() >= kKeepErrors) {
      accept_errors.erase(accept_errors.begin());
    }
    accept_errors.push_back(what);
    if (++consecutive_failures >= kMaxConsecutiveAcceptFailures) {
      std::string history;
      for (const std::string& e : accept_errors) {
        history += "\n  recent failure: " + e;
      }
      GMFNET_LOG_ERROR(
          "rpc server: accept loop giving up after %d consecutive hard "
          "failures — winding down abnormally%s",
          consecutive_failures, history.c_str());
      abnormal_.store(true, std::memory_order_release);
      request_stop();
    }
  };
  for (;;) {
    try {
      Socket conn = listener_.accept(/*timeout_ms=*/0);
      if (!conn.valid()) return;  // backlog drained
      add_conn(std::move(conn));
      consecutive_failures = 0;
      backoff_ms = 0;
      accept_errors.clear();
    } catch (const TransportError& e) {
      if (is_transient_accept_error(e.errno_value())) {
        // fd exhaustion or a backlog abort: the listener is still good.
        // Back off (capped exponential) so the loop does not spin while
        // the condition clears.
        backoff_ms = backoff_ms == 0 ? 10 : std::min(backoff_ms * 2, 500);
        GMFNET_LOG_WARN("rpc server: transient accept failure (%s), "
                        "backing off %dms",
                        e.what(), backoff_ms);
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        return;
      }
      note_accept_failure(e.what());
      return;
    } catch (const std::exception& e) {
      note_accept_failure(e.what());
      return;
    }
  }
}

void Server::add_conn(Socket sock) {
  if (cfg_.max_connections > 0 && conns_.size() >= cfg_.max_connections) {
    shed_oldest_idle();
  }
  auto c = std::make_unique<Conn>();
  c->id = next_conn_id_++;
  c->sock = std::move(sock);
  set_nonblocking(c->sock.fd(), true);
  if (cfg_.unix_path.empty()) {
    // Pipelined small responses must not sit in Nagle's buffer.
    const int one = 1;
    (void)::setsockopt(c->sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                       sizeof one);
  }
  c->last_active_ms = now_ms();
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = c->id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, c->sock.fd(), &ev) != 0) {
    GMFNET_LOG_WARN("rpc server: epoll_ctl(add conn) failed (errno %d) — "
                    "dropping the connection",
                    errno);
    return;
  }
  c->ep_events = EPOLLIN;
  update_deadline(*c);  // arms the idle allowance
  active_conns_.fetch_add(1, std::memory_order_release);
  const std::uint64_t id = c->id;
  conns_.emplace(id, std::move(c));
}

void Server::close_conn(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  std::unique_ptr<Conn> c = std::move(it->second);
  conns_.erase(it);
  wheel_.cancel(id);
  if (c->sock.valid()) {
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c->sock.fd(), nullptr);
  }
  if (c->subscriber) subscribers_.fetch_sub(1, std::memory_order_relaxed);
  active_conns_.fetch_sub(1, std::memory_order_release);
  // Prompt FIN/EOF to the peer even though the fd is parked in dead_
  // until the end of this loop iteration.
  c->sock.shutdown_both();
  dead_.push_back(std::move(c));
}

void Server::shed_oldest_idle() {
  const Conn* oldest = nullptr;
  for (const auto& [id, c] : conns_) {
    if (oldest == nullptr || c->last_active_ms < oldest->last_active_ms) {
      oldest = c.get();
    }
  }
  if (oldest != nullptr) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    close_conn(oldest->id);
  }
}

void Server::on_readable(Conn& c) {
  if (c.subscriber || c.sub_pending) {
    // A subscriber never speaks after SUBSCRIBE, so readability means EOF
    // (or junk) — either way the stream is over; the replica owns
    // reconnecting.
    char probe[256];
    try {
      const ssize_t n = c.sock.recv_some(probe, sizeof probe);
      if (n == -1) return;  // spurious wakeup
    } catch (const std::exception&) {
    }
    close_conn(c.id);
    return;
  }
  if (!c.reading || c.closing) return;
  char buf[64 * 1024];
  // Bounded rounds per event so one firehose connection cannot starve the
  // rest; level-triggered epoll re-delivers whatever is left.
  for (int round = 0; round < 16; ++round) {
    ssize_t n = 0;
    try {
      n = c.sock.recv_some(buf, sizeof buf);
    } catch (const std::exception&) {
      // Broken socket (reset mid-stream): nothing to report to.
      close_conn(c.id);
      return;
    }
    if (n == -1) break;  // drained
    if (n == 0) {
      // Peer closed.  Mid-frame or with responses pending, the stream is
      // equally over — drop the connection, daemon unharmed.
      close_conn(c.id);
      return;
    }
    c.in_buf.append(buf, static_cast<std::size_t>(n));
    c.last_active_ms = now_ms();
    parse_frames(c);
    if (c.closing || !c.reading) break;
    if (static_cast<std::size_t>(n) < sizeof buf) break;
  }
  // One flush for everything the parse loop delivered inline (it also
  // re-arms the deadline for the pure-read case).
  if (conns_.find(c.id) != conns_.end()) flush_out(c);
}

void Server::parse_frames(Conn& c) {
  while (!c.closing && !c.sub_pending && !c.subscriber && !draining_ &&
         c.reading) {
    const std::size_t avail = c.in_buf.size() - c.in_off;
    if (avail < kHeaderSize) break;
    FrameHeader header;
    try {
      header = decode_frame_header(
          std::string_view(c.in_buf.data() + c.in_off, kHeaderSize));
    } catch (const ProtocolError& e) {
      // Malformed header: the stream can no longer be trusted — report
      // why (best effort) and drop this connection only.
      error_close(c, e.what());
      break;
    }
    const std::size_t frame_len =
        kHeaderSize + static_cast<std::size_t>(header.body_len);
    if (avail < frame_len) break;  // wait for the rest of the body
    Request req;
    try {
      req = decode_request(
          std::string_view(c.in_buf.data() + c.in_off, frame_len));
    } catch (const ProtocolError& e) {
      error_close(c, e.what());
      break;
    }
    c.in_off += frame_len;
    dispatch(c, std::move(req));
  }
  if (c.in_off == c.in_buf.size()) {
    c.in_buf.clear();
    c.in_off = 0;
  } else if (c.in_off > (64u << 10)) {
    c.in_buf.erase(0, c.in_off);
    c.in_off = 0;
  }
}

void Server::dispatch(Conn& c, Request&& req) {
  frames_served_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t seq = c.next_seq++;
  ++c.inflight;
  const std::uint64_t depth = c.inflight;
  std::uint64_t hwm = pipelined_hwm_.load(std::memory_order_relaxed);
  while (depth > hwm && !pipelined_hwm_.compare_exchange_weak(
                            hwm, depth, std::memory_order_relaxed)) {
  }
  if (cfg_.max_pipeline > 0 && c.inflight >= cfg_.max_pipeline) {
    // Backpressure: stop reading until the pipeline drains.
    c.reading = false;
    update_epoll(c);
  }
  if (auto* what_if = std::get_if<WhatIfBatchRequest>(&req)) {
    dispatch_what_if(c.id, seq, std::move(*what_if));
    return;
  }
  if (std::holds_alternative<SubscribeRequest>(req)) {
    // Stop decoding further frames; the mutation worker sets the stream
    // up (it needs a consistent position under the writer mutex).
    c.sub_pending = true;
  }
  {
    std::lock_guard<std::mutex> lock(mut_mu_);
    mut_queue_.push_back(PendingOp{c.id, seq, std::move(req)});
  }
  mut_cv_.notify_one();
}

void Server::dispatch_what_if(std::uint64_t conn_id, std::uint64_t seq,
                              WhatIfBatchRequest&& req) {
  // Small batches (the dominant operator pattern: one candidate per frame)
  // probe inline on the reactor thread: a domain probe against the
  // published snapshot costs microseconds, far less than a pool hand-off
  // plus an eventfd wakeup, and the response joins the current write batch
  // instead of waking the reactor again.  Fat batches still fan out below.
  if (req.candidates.size() <= 2) {
    Response resp;
    try {
      const std::shared_ptr<const engine::EngineSnapshot> snap =
          engine()->published();
      const engine::ProbeScratchPool::Lease lease = conn_scratch_.acquire();
      WhatIfBatchResponse out;
      out.results.reserve(req.candidates.size());
      for (const gmf::Flow& cand : req.candidates) {
        engine::WhatIfResult wi = snap->what_if(cand, lease.get());
        // Verdict-only probes strip the O(world) payload before encoding:
        // serializing the full HolisticResult deep-copies every resident's
        // FlowResult and dominates the probe itself on large worlds.
        out.results.push_back(
            req.verdict_only
                ? engine::WhatIfResult::verdict_only(
                      wi.admissible, wi.converged(), wi.sweeps(),
                      wi.flow_count())
                : std::move(wi));
      }
      resp = std::move(out);
    } catch (const std::exception& e) {
      resp = ErrorResponse{e.what()};
    }
    auto it = conns_.find(conn_id);
    if (it != conns_.end()) {
      deliver(*it->second, seq, encode_response(resp));
    }
    return;
  }
  struct Job {
    std::vector<gmf::Flow> candidates;
    std::vector<engine::WhatIfResult> results;
    std::shared_ptr<const engine::EngineSnapshot> snap;
    std::atomic<std::size_t> remaining{0};
    std::mutex err_mu;
    std::string error;
    bool failed = false;
    bool verdict_only = false;
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
  };
  auto job = std::make_shared<Job>();
  job->candidates = std::move(req.candidates);
  job->verdict_only = req.verdict_only;
  job->results.resize(job->candidates.size());
  job->snap = engine()->published();
  job->conn_id = conn_id;
  job->seq = seq;
  // Fan the candidates over the reader pool in contiguous chunks: intra-
  // batch parallelism for one fat batch, request-level parallelism across
  // connections for many thin ones.
  const std::size_t chunks = std::min<std::size_t>(
      job->candidates.size(), std::max<std::size_t>(readers_.size(), 1));
  job->remaining.store(chunks, std::memory_order_relaxed);
  const std::size_t per = job->candidates.size() / chunks;
  const std::size_t extra = job->candidates.size() % chunks;
  std::size_t begin = 0;
  for (std::size_t k = 0; k < chunks; ++k) {
    const std::size_t len = per + (k < extra ? 1 : 0);
    const std::size_t end = begin + len;
    readers_.submit([this, job, begin, end] {
      try {
        const engine::ProbeScratchPool::Lease lease = conn_scratch_.acquire();
        for (std::size_t i = begin; i < end; ++i) {
          engine::WhatIfResult wi =
              job->snap->what_if(job->candidates[i], lease.get());
          // Strip the O(world) payload on the worker, not the reactor.
          job->results[i] =
              job->verdict_only
                  ? engine::WhatIfResult::verdict_only(
                        wi.admissible, wi.converged(), wi.sweeps(),
                        wi.flow_count())
                  : std::move(wi);
        }
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(job->err_mu);
        job->failed = true;
        if (job->error.empty()) job->error = e.what();
      }
      if (job->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        Response resp =
            job->failed
                ? Response{ErrorResponse{job->error}}
                : Response{WhatIfBatchResponse{std::move(job->results)}};
        post_completion(
            Completion{job->conn_id, job->seq, encode_response(resp)});
        wake_reactor();
      }
    });
    begin = end;
  }
}

StatsResponse Server::build_stats() {
  const std::shared_ptr<engine::AnalysisEngine> eng = engine();
  const std::shared_ptr<const engine::EngineSnapshot> snap =
      eng->published();
  StatsResponse resp;
  resp.stats = eng->stats();
  resp.flows = snap->flow_count();
  resp.shards = snap->shard_count();
  resp.role = role();
  resp.epoch = epoch();
  resp.commit_seq = commit_seq();
  resp.uptime_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            started_)
          .count());
  resp.active_connections = active_conns_.load(std::memory_order_acquire);
  resp.frames_served = frames_served_.load(std::memory_order_relaxed);
  resp.coalesced_commits = coalesced_.load(std::memory_order_relaxed);
  resp.pipelined_hwm = pipelined_hwm_.load(std::memory_order_relaxed);
  resp.solver_mode =
      static_cast<std::uint8_t>(eng->options().solver.mode);
  return resp;
}

void Server::deliver(Conn& c, std::uint64_t seq, std::string frame) {
  // Appends to out_buf only — the caller owes a flush_out once its whole
  // delivery batch is buffered, so neighbouring responses share one send.
  const auto appended_seq = [&](std::uint64_t appended) {
    if (c.inflight > 0) --c.inflight;
    if (appended == c.stop_seq) c.stop_when_flushed = true;
    if (appended == c.close_seq) c.closing = true;
    if (appended == c.sub_seq) {
      c.subscriber = true;
      c.sub_pending = false;
      c.sub_next = c.pending_sub_next;
      subscribers_.fetch_add(1, std::memory_order_relaxed);
    }
  };
  if (c.done.empty() && seq == c.flush_seq) {
    // In-order completion (the common case): straight to out_buf, no map.
    c.out_buf.append(frame);
    appended_seq(c.flush_seq++);
  } else {
    c.done.emplace(seq, std::move(frame));
    // Flush the contiguous completed prefix in request order — the
    // pipelining contract: responses never reorder within a connection.
    for (;;) {
      auto it = c.done.find(c.flush_seq);
      if (it == c.done.end()) break;
      c.out_buf.append(it->second);
      c.done.erase(it);
      appended_seq(c.flush_seq++);
    }
  }
  c.last_active_ms = now_ms();
  if (!c.reading && !c.closing && !c.subscriber && !c.sub_pending &&
      !draining_ &&
      (cfg_.max_pipeline == 0 || c.inflight < cfg_.max_pipeline)) {
    c.reading = true;  // backpressure released
    update_epoll(c);
  }
}

void Server::flush_out(Conn& c) {
  if (pending_out(c)) {
    try {
      while (c.out_off < c.out_buf.size()) {
        const ssize_t n = c.sock.send_some(c.out_buf.data() + c.out_off,
                                           c.out_buf.size() - c.out_off);
        if (n < 0) break;  // socket buffer full — EPOLLOUT resumes us
        c.out_off += static_cast<std::size_t>(n);
      }
    } catch (const std::exception&) {
      close_conn(c.id);
      return;
    }
  }
  if (!pending_out(c)) {
    c.out_buf.clear();
    c.out_off = 0;
    if (c.want_write) {
      c.want_write = false;
      update_epoll(c);
    }
    if (c.stop_when_flushed) {
      // SHUTDOWN contract: the acknowledgement reached the kernel before
      // the daemon winds down.
      c.stop_when_flushed = false;
      request_stop();
    }
    if (c.closing) {
      close_conn(c.id);
      return;
    }
    if (draining_ && c.inflight == 0 && c.done.empty()) {
      close_conn(c.id);
      return;
    }
  } else if (!c.want_write) {
    c.want_write = true;
    update_epoll(c);
  }
  update_deadline(c);
}

void Server::pump_completions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(comp_mu_);
    batch.swap(comp_queue_);
  }
  std::vector<std::uint64_t> touched;
  for (Completion& comp : batch) {
    auto it = conns_.find(comp.conn_id);
    if (it == conns_.end()) continue;  // connection died while computing
    Conn& c = *it->second;
    if (comp.stop_after) c.stop_seq = comp.seq;
    if (comp.close_after) c.close_seq = comp.seq;
    if (comp.sub_start) {
      c.sub_seq = comp.seq;
      c.pending_sub_next = comp.sub_next;
    }
    deliver(c, comp.seq, std::move(comp.frame));
    if (touched.empty() || touched.back() != comp.conn_id) {
      touched.push_back(comp.conn_id);
    }
  }
  // Flush each touched connection once: completions that landed together
  // leave in one send.
  for (const std::uint64_t id : touched) {
    auto it = conns_.find(id);
    if (it != conns_.end()) flush_out(*it->second);
  }
}

void Server::pump_subscribers() {
  static thread_local std::vector<std::uint64_t> ids;
  ids.clear();
  for (const auto& [id, c] : conns_) {
    if (c->subscriber && !c->closing) ids.push_back(id);
  }
  for (const std::uint64_t id : ids) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    Conn& c = *it->second;
    bool stream_over = false;
    std::string frame;
    while (c.out_buf.size() - c.out_off < kSubscriberOutCap) {
      const ReplicationLog::Fetch f = journal_.try_fetch(c.sub_next, frame);
      if (f == ReplicationLog::Fetch::kOk) {
        c.out_buf.append(frame);
        ++c.sub_next;
        c.last_active_ms = now_ms();
        continue;
      }
      if (f == ReplicationLog::Fetch::kTimeout) break;  // nothing new yet
      // kGap (the bounded journal moved past this replica, or a promote
      // reset it) or kStopped: drop the stream; the reconnect full-syncs.
      stream_over = true;
      break;
    }
    if (stream_over) c.closing = true;
    flush_out(c);
  }
}

void Server::error_close(Conn& c, const std::string& message) {
  // Best effort: the peer may be the very thing that is broken, so the
  // frame rides the normal buffered path under a short grace deadline and
  // failures are swallowed.
  try {
    c.out_buf.append(encode_response(Response{ErrorResponse{message}}));
  } catch (const std::exception&) {
  }
  c.closing = true;
  c.reading = false;
  update_epoll(c);
  flush_out(c);
  if (conns_.find(c.id) != conns_.end()) {
    wheel_.schedule_in(c.id, kErrorFlushGraceMs, Clock::now());
    c.dl = Conn::Deadline::kIo;
  }
}

void Server::update_deadline(Conn& c) {
  using D = Conn::Deadline;
  if (c.closing) return;  // error_close manages the flush grace timer
  D want = D::kNone;
  if (c.subscriber || c.sub_pending) {
    want = pending_out(c) ? D::kIo : D::kNone;
  } else if (pending_out(c) || c.in_off < c.in_buf.size()) {
    // Mid-frame inbound bytes or unread responses: the io deadline.
    want = D::kIo;
  } else if (c.inflight == 0 && c.done.empty()) {
    want = D::kIdle;
  }
  // Whole-operation discipline: a deadline already in the wanted mode is
  // left running — a peer trickling one byte per tick cannot extend it.
  if (want == c.dl) return;
  c.dl = want;
  switch (want) {
    case D::kNone:
      wheel_.cancel(c.id);
      break;
    case D::kIdle:
      if (cfg_.idle_timeout_ms >= 0) {
        wheel_.schedule_in(c.id, cfg_.idle_timeout_ms, Clock::now());
      } else {
        wheel_.cancel(c.id);
      }
      break;
    case D::kIo:
      if (cfg_.io_timeout_ms >= 0) {
        wheel_.schedule_in(c.id, cfg_.io_timeout_ms, Clock::now());
      } else {
        wheel_.cancel(c.id);
      }
      break;
  }
}

void Server::update_epoll(Conn& c) {
  const std::uint32_t want =
      (c.reading && !c.closing ? EPOLLIN : 0u) |
      (c.want_write ? EPOLLOUT : 0u);
  if (want == c.ep_events) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.u64 = c.id;
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.sock.fd(), &ev);
  c.ep_events = want;
}

void Server::begin_drain() {
  draining_ = true;
  drain_deadline_ =
      Clock::now() + std::chrono::milliseconds(
                         cfg_.drain_timeout_ms >= 0 ? cfg_.drain_timeout_ms
                                                    : 0);
  listener_.close();
  // Wake subscriber streams: their next pump observes kStopped and winds
  // the stream down.
  journal_.request_stop();
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, c] : conns_) ids.push_back(id);
  for (const std::uint64_t id : ids) {
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    Conn& c = *it->second;
    c.reading = false;  // no new frames; dispatched work finishes
    update_epoll(c);
    if (!pending_out(c) && c.inflight == 0 && c.done.empty()) {
      close_conn(id);
    } else {
      flush_out(c);
    }
  }
}

void Server::handle_expired(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& c = *it->second;
  if (c.closing) {
    // The grace allowance for flushing the farewell ERROR frame blew too.
    close_conn(id);
    return;
  }
  switch (c.dl) {
    case Conn::Deadline::kIdle:
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      error_close(c, "idle timeout: closing connection");
      break;
    case Conn::Deadline::kIo:
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      error_close(c, "request deadline exceeded: closing connection");
      break;
    case Conn::Deadline::kNone:
      break;  // stale fire after a mode change — ignore
  }
}

// ---------------------------------------------------------- mutation worker --

void Server::post_completion(Completion comp) {
  std::lock_guard<std::mutex> lock(comp_mu_);
  comp_queue_.push_back(std::move(comp));
}

void Server::mutation_loop() {
  for (;;) {
    std::vector<PendingOp> group;
    bool barrier = false;
    {
      std::unique_lock<std::mutex> lock(mut_mu_);
      mut_cv_.wait(lock, [&] { return mut_stop_ || !mut_queue_.empty(); });
      if (mut_stop_) return;
      group.push_back(std::move(mut_queue_.front()));
      mut_queue_.pop_front();
      if (!coalescable(group.front().req)) {
        barrier = true;
      } else {
        // Coalesce every mutation that queued while the previous commit
        // was in flight, up to the next barrier.
        while (!mut_queue_.empty() && coalescable(mut_queue_.front().req)) {
          group.push_back(std::move(mut_queue_.front()));
          mut_queue_.pop_front();
        }
      }
    }
    if (barrier) {
      exec_barrier(std::move(group.front()));
    } else {
      exec_group(std::move(group));
    }
    wake_reactor();
  }
}

void Server::exec_group(std::vector<PendingOp>&& ops) {
  std::vector<Completion> out;
  out.reserve(ops.size());
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    if (role() != Role::kPrimary || fenced()) {
      const NotPrimaryResponse np = not_primary_locked();
      for (PendingOp& op : ops) {
        out.push_back(Completion{op.conn_id, op.seq,
                                 encode_response(Response{np})});
      }
    } else if (ops.size() == 1 &&
               std::holds_alternative<AdmitRequest>(ops.front().req)) {
      // Solo ADMIT: the classic path, bit-identical journal + response.
      PendingOp& op = ops.front();
      auto& m = std::get<AdmitRequest>(op.req);
      Response resp;
      try {
        // try_admit consumes the flow; the journal needs its bytes.
        gmf::Flow journal_flow = m.flow;
        AdmitResponse admit{engine()->try_admit(std::move(m.flow))};
        if (admit.result.has_value()) {
          DeltaResponse delta;
          delta.kind = DeltaKind::kAdmit;
          delta.flow = std::move(journal_flow);
          journal_commit_locked(std::move(delta));
          note_mutation_locked();
        }
        resp = std::move(admit);
      } catch (const std::exception& e) {
        resp = ErrorResponse{e.what()};
      }
      out.push_back(Completion{op.conn_id, op.seq, encode_response(resp)});
    } else if (ops.size() == 1 &&
               std::holds_alternative<RemoveRequest>(ops.front().req)) {
      // Solo REMOVE: classic path — remove, re-evaluate, journal.
      PendingOp& op = ops.front();
      const auto& m = std::get<RemoveRequest>(op.req);
      Response resp;
      try {
        const std::shared_ptr<engine::AnalysisEngine> eng = engine();
        const bool removed =
            eng->remove_flow(static_cast<std::size_t>(m.index));
        if (removed) {
          (void)eng->evaluate();
          DeltaResponse delta;
          delta.kind = DeltaKind::kRemove;
          delta.index = m.index;
          journal_commit_locked(std::move(delta));
          note_mutation_locked();
        }
        resp = RemoveResponse{removed};
      } catch (const std::exception& e) {
        resp = ErrorResponse{e.what()};
      }
      out.push_back(Completion{op.conn_id, op.seq, encode_response(resp)});
    } else {
      // Coalesced group (or a single ADMIT_BATCH, which IS a group): one
      // engine commit group, one snapshot publish, one journal frame.
      struct OpResult {
        enum class Kind { kAdmit, kRemove, kBatch, kError } kind =
            Kind::kError;
        bool ok = false;
        std::vector<std::uint8_t> bits;
        std::string error;
      };
      const std::shared_ptr<engine::AnalysisEngine> eng = engine();
      std::vector<OpResult> results(ops.size());
      DeltaResponse delta;
      delta.kind = DeltaKind::kBatch;
      std::size_t committed = 0;
      eng->begin_batch();
      for (std::size_t i = 0; i < ops.size(); ++i) {
        OpResult& r = results[i];
        try {
          if (auto* admit = std::get_if<AdmitRequest>(&ops[i].req)) {
            r.kind = OpResult::Kind::kAdmit;
            gmf::Flow journal_flow = admit->flow;
            r.ok = eng->try_admit_lean(std::move(admit->flow));
            if (r.ok) {
              delta.ops.push_back(DeltaOp{DeltaKind::kAdmit,
                                          std::move(journal_flow), 0});
              ++committed;
            }
          } else if (auto* rem = std::get_if<RemoveRequest>(&ops[i].req)) {
            r.kind = OpResult::Kind::kRemove;
            r.ok = eng->remove_flow(static_cast<std::size_t>(rem->index));
            if (r.ok) {
              delta.ops.push_back(
                  DeltaOp{DeltaKind::kRemove, gmf::Flow{}, rem->index});
              ++committed;
            }
          } else {
            auto& batch = std::get<AdmitBatchRequest>(ops[i].req);
            r.kind = OpResult::Kind::kBatch;
            r.bits.reserve(batch.flows.size());
            for (gmf::Flow& flow : batch.flows) {
              gmf::Flow journal_flow = flow;
              const bool ok = eng->try_admit_lean(std::move(flow));
              r.bits.push_back(ok ? 1 : 0);
              if (ok) {
                delta.ops.push_back(DeltaOp{DeltaKind::kAdmit,
                                            std::move(journal_flow), 0});
                ++committed;
              }
            }
          }
        } catch (const std::exception& e) {
          r.kind = OpResult::Kind::kError;
          r.error = e.what();
        }
      }
      const core::HolisticResult* final_result = nullptr;
      std::string end_error;
      try {
        final_result = &eng->end_batch();
      } catch (const std::exception& e) {
        end_error = e.what();
      }
      if (committed > 0 && end_error.empty()) {
        journal_commit_locked(std::move(delta));
        for (std::size_t k = 0; k < committed; ++k) note_mutation_locked();
      }
      if (ops.size() > 1) {
        coalesced_.fetch_add(ops.size() - 1, std::memory_order_relaxed);
      }
      const std::uint64_t flows_after = eng->flow_count();
      for (std::size_t i = 0; i < ops.size(); ++i) {
        const OpResult& r = results[i];
        Response resp;
        if (!end_error.empty()) {
          resp = ErrorResponse{end_error};
        } else {
          switch (r.kind) {
            case OpResult::Kind::kAdmit: {
              AdmitResponse admit;
              if (r.ok && final_result != nullptr) {
                // Coalescing semantics: every admitted flow in the group
                // receives the end-of-group committed result.
                admit.result = *final_result;
              }
              resp = std::move(admit);
              break;
            }
            case OpResult::Kind::kRemove:
              resp = RemoveResponse{r.ok};
              break;
            case OpResult::Kind::kBatch: {
              AdmitBatchResponse batch;
              batch.admitted = r.bits;
              batch.flows_after = flows_after;
              resp = std::move(batch);
              break;
            }
            case OpResult::Kind::kError:
              resp = ErrorResponse{r.error};
              break;
          }
        }
        out.push_back(
            Completion{ops[i].conn_id, ops[i].seq, encode_response(resp)});
      }
    }
  }
  for (Completion& comp : out) post_completion(std::move(comp));
}

void Server::exec_barrier(PendingOp&& op) {
  if (std::holds_alternative<SubscribeRequest>(op.req)) {
    exec_subscribe(std::move(op));
    return;
  }
  Completion comp{op.conn_id, op.seq, std::string{}};
  Response resp;
  try {
    if (std::holds_alternative<StatsRequest>(op.req)) {
      // Counter reads are lock-free, but STATS still rides the mutation
      // queue: a STATS pipelined behind an ADMIT must observe it
      // (read-your-writes per connection, as the thread-per-connection
      // server gave).
      resp = build_stats();
    } else if (std::holds_alternative<SaveCheckpointRequest>(op.req)) {
      std::lock_guard<std::mutex> lock(writer_mu_);
      std::ostringstream os;
      engine()->save(os);
      resp = SaveCheckpointResponse{std::move(os).str()};
    } else if (auto* restore = std::get_if<RestoreRequest>(&op.req)) {
      std::lock_guard<std::mutex> lock(writer_mu_);
      if (role() != Role::kPrimary || fenced()) {
        resp = not_primary_locked();
      } else {
        std::istringstream is(restore->checkpoint);
        std::shared_ptr<engine::AnalysisEngine> fresh =
            engine::AnalysisEngine::restore_unique(is, cfg_.engine_opts);
        std::atomic_store(&engine_, std::move(fresh));
        DeltaResponse delta;
        delta.kind = DeltaKind::kRestore;
        delta.checkpoint = std::move(restore->checkpoint);
        journal_commit_locked(std::move(delta));
        note_mutation_locked();
        resp = RestoreResponse{engine()->flow_count()};
      }
    } else if (std::holds_alternative<ShutdownRequest>(op.req)) {
      // The stop fires once the acknowledgement is flushed to the peer
      // (Completion::stop_after), upholding "acknowledged before the
      // daemon winds down".
      resp = ShutdownResponse{};
      comp.stop_after = true;
    } else if (std::holds_alternative<PromoteRequest>(op.req)) {
      resp = PromoteResponse{promote()};
    } else if (std::holds_alternative<RoleRequest>(op.req)) {
      std::lock_guard<std::mutex> lock(writer_mu_);
      resp = role_response_locked();
    } else if (auto* repoint = std::get_if<RepointRequest>(&op.req)) {
      // Throws invalid_argument on a malformed address → the catch below
      // turns it into ErrorResponse, state untouched.
      (void)parse_primary_addr(repoint->primary_addr);
      std::lock_guard<std::mutex> lock(writer_mu_);
      if (role() != Role::kReplica || repl_ == nullptr) {
        resp = ErrorResponse{"repoint: this daemon is not a replica"};
      } else {
        repl_->pause();
        repl_->resume(repoint->primary_addr);
        resp = role_response_locked();
      }
    } else {
      resp = ErrorResponse{"unsupported request"};
    }
  } catch (const std::exception& e) {
    // Engine/semantic failure executing a well-framed request: report it,
    // keep the connection (and the resident set) intact.
    resp = ErrorResponse{e.what()};
    comp.stop_after = false;
  }
  comp.frame = encode_response(resp);
  post_completion(std::move(comp));
}

void Server::exec_subscribe(PendingOp&& op) {
  const auto& sub = std::get<SubscribeRequest>(op.req);
  Completion comp{op.conn_id, op.seq, std::string{}};
  if (sub.epoch > epoch()) {
    std::lock_guard<std::mutex> lock(writer_mu_);
    std::uint64_t cur = peer_epoch_.load(std::memory_order_relaxed);
    while (sub.epoch > cur &&
           !peer_epoch_.compare_exchange_weak(cur, sub.epoch,
                                              std::memory_order_acq_rel)) {
    }
    if (role() == Role::kPrimary &&
        sub.epoch > epoch_.load(std::memory_order_relaxed) && !fenced()) {
      // The fence, passive direction: a subscriber living in a later
      // epoch proves a newer primary was promoted somewhere.  This
      // daemon must never commit again — split-brain ends here.
      fenced_.store(true, std::memory_order_release);
      GMFNET_LOG_ERROR(
          "rpc server: fenced — subscriber at epoch %llu outranks our "
          "epoch %llu; refusing mutations until promoted",
          static_cast<unsigned long long>(sub.epoch),
          static_cast<unsigned long long>(
              epoch_.load(std::memory_order_relaxed)));
    }
  }
  {
    std::unique_lock<std::mutex> lock(writer_mu_);
    if (role() != Role::kPrimary || fenced()) {
      const NotPrimaryResponse np = not_primary_locked();
      lock.unlock();
      comp.frame = encode_response(Response{np});
      comp.close_after = true;
      post_completion(std::move(comp));
      return;
    }
  }
  // Journal catch-up needs the EXACT history: same token (not a restarted
  // primary whose fresh sequence numbers merely collide), same epoch, and
  // a position the bounded journal still covers.  Anything else gets the
  // whole world — degrading to a full sync is always safe.
  const bool catch_up =
      sub.history == history_token_ && sub.epoch == epoch() &&
      sub.next_seq >= journal_.first_seq() &&
      sub.next_seq <= journal_.next_seq();
  if (catch_up) {
    comp.frame = encode_response(
        Response{SubscribeResponse{epoch(), sub.next_seq}});
    comp.sub_next = sub.next_seq;
  } else {
    SyncFullResponse full;
    {
      std::lock_guard<std::mutex> lock(writer_mu_);
      std::ostringstream os;
      engine()->save(os);
      full.checkpoint = std::move(os).str();
      full.epoch = epoch_.load(std::memory_order_relaxed);
      full.commit_seq = commit_seq_.load(std::memory_order_relaxed);
      full.history = history_token_;
    }
    comp.sub_next = full.commit_seq + 1;
    // The (possibly large) blob is encoded here but streamed by the
    // reactor's buffered writer: a slow replica link never stalls the
    // mutation path.
    comp.frame = encode_response(Response{std::move(full)});
  }
  comp.sub_start = true;
  post_completion(std::move(comp));
}

void Server::note_mutation_locked() {
  const std::size_t n = mutations_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (cfg_.checkpoint_every > 0 && !cfg_.checkpoint_path.empty() &&
      n % cfg_.checkpoint_every == 0) {
    try {
      write_checkpoint_locked();
    } catch (const std::exception& e) {
      // An auto-checkpoint failure must not fail the mutation that
      // triggered it (the admission itself committed fine); the previous
      // checkpoint generation is still on disk thanks to the atomic
      // writer.
      GMFNET_LOG_WARN("rpc server: auto-checkpoint failed: %s", e.what());
    }
  }
}

void Server::write_checkpoint_locked() {
  io::AtomicFileWriter writer(cfg_.checkpoint_path, /*keep_previous=*/true);
  engine()->save(writer.stream());
  writer.commit();
}

// --------------------------------------------------------------- replication

void Server::journal_commit_locked(DeltaResponse&& delta) {
  const std::uint64_t seq =
      commit_seq_.load(std::memory_order_relaxed) + 1;
  delta.epoch = epoch_.load(std::memory_order_relaxed);
  delta.seq = seq;
  delta.flows_after = engine()->flow_count();
  // Encoded ONCE here; every subscriber streams the same frame bytes.
  journal_.append(seq, encode_response(Response{std::move(delta)}));
  commit_seq_.store(seq, std::memory_order_release);
}

NotPrimaryResponse Server::not_primary_locked() {
  NotPrimaryResponse np;
  np.epoch = epoch_.load(std::memory_order_relaxed);
  if (repl_) np.primary_addr = repl_->primary_addr();
  return np;
}

RoleResponse Server::role_response_locked() {
  RoleResponse r;
  r.role = role();
  r.fenced = fenced();
  r.epoch = epoch();
  r.commit_seq = commit_seq();
  if (repl_) {
    r.primary_addr = repl_->primary_addr();
    r.connected = repl_->connected();
    r.full_syncs = repl_->full_syncs();
    r.deltas_applied = repl_->deltas_applied();
  }
  r.subscribers = subscribers_.load(std::memory_order_relaxed);
  r.journal_begin = journal_.first_seq();
  r.journal_end = journal_.next_seq() - 1;  // begin - 1 when empty
  return r;
}

std::uint64_t Server::promote() {
  std::unique_ptr<ReplicationClient> old;
  std::uint64_t fresh_epoch = 0;
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    if (role() == Role::kPrimary && !fenced()) {
      // Idempotent: re-promoting the live primary must not fence anyone.
      return epoch_.load(std::memory_order_acquire);
    }
    // Outrank every history this daemon has ever seen — its own and any
    // peer that subscribed or synced to it.
    fresh_epoch = std::max(epoch_.load(std::memory_order_relaxed),
                           peer_epoch_.load(std::memory_order_relaxed)) +
                  1;
    epoch_.store(fresh_epoch, std::memory_order_release);
    // History before the promotion is not streamable under the new
    // epoch; every subscriber starts from here (or from a full sync).
    journal_.reset(commit_seq_.load(std::memory_order_relaxed) + 1);
    role_.store(static_cast<std::uint8_t>(Role::kPrimary),
                std::memory_order_release);
    fenced_.store(false, std::memory_order_release);
    old = std::move(repl_);
  }
  // Stopping the subscription joins its thread, which may be blocked on
  // writer_mu_ inside an apply hook — MUST happen outside the lock.  The
  // hook re-checks the role under the lock and refuses (kStale) now.
  if (old) old->stop();
  GMFNET_LOG_WARN("rpc server: promoted to primary at epoch %llu",
                  static_cast<unsigned long long>(fresh_epoch));
  return fresh_epoch;
}

void Server::replica_full_sync(const SyncFullResponse& full) {
  // Build the fresh engine outside the writer lock (checkpoint restore is
  // the expensive part), swap under it.
  std::istringstream is(full.checkpoint);
  std::shared_ptr<engine::AnalysisEngine> fresh =
      engine::AnalysisEngine::restore_unique(is, cfg_.engine_opts);
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (role() != Role::kReplica) {
    // Promoted while the sync was in flight — the new primary's state
    // must not be overwritten by its old upstream.
    throw std::runtime_error("full sync refused: no longer a replica");
  }
  std::atomic_store(&engine_, std::move(fresh));
  epoch_.store(full.epoch, std::memory_order_release);
  commit_seq_.store(full.commit_seq, std::memory_order_release);
  upstream_history_.store(full.history, std::memory_order_release);
  note_mutation_locked();
}

ApplyResult Server::replica_apply(const DeltaResponse& delta) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  if (role() != Role::kReplica) return ApplyResult::kStale;
  const std::uint64_t our_epoch = epoch_.load(std::memory_order_relaxed);
  if (delta.epoch < our_epoch) return ApplyResult::kStale;
  if (delta.epoch > our_epoch ||
      delta.seq != commit_seq_.load(std::memory_order_relaxed) + 1) {
    return ApplyResult::kGap;
  }
  const std::shared_ptr<engine::AnalysisEngine> eng = engine();
  switch (delta.kind) {
    case DeltaKind::kAdmit:
      // The primary only journals flows try_admit COMMITTED, and the
      // engine is deterministic: add_flow + evaluate reproduces the
      // primary's post-admission world bit for bit (the equivalence
      // guarantee the engine test suite holds it to).
      (void)eng->add_flow(delta.flow);
      (void)eng->evaluate();
      break;
    case DeltaKind::kRemove:
      if (!eng->remove_flow(static_cast<std::size_t>(delta.index))) {
        return ApplyResult::kGap;  // divergence — resync
      }
      (void)eng->evaluate();
      break;
    case DeltaKind::kRestore: {
      std::istringstream is(delta.checkpoint);
      std::shared_ptr<engine::AnalysisEngine> fresh =
          engine::AnalysisEngine::restore_unique(is, cfg_.engine_opts);
      std::atomic_store(&engine_, std::move(fresh));
      break;
    }
    case DeltaKind::kBatch:
      // A coalesced commit group: apply the ops in order, evaluate ONCE
      // at the end — the replica coalesces exactly like its primary did.
      for (const DeltaOp& op : delta.ops) {
        if (op.kind == DeltaKind::kAdmit) {
          (void)eng->add_flow(op.flow);
        } else if (op.kind == DeltaKind::kRemove) {
          if (!eng->remove_flow(static_cast<std::size_t>(op.index))) {
            return ApplyResult::kGap;  // divergence — resync
          }
        } else {
          return ApplyResult::kGap;  // malformed group — resync
        }
      }
      (void)eng->evaluate();
      break;
  }
  if (engine()->flow_count() != delta.flows_after) {
    // Tripwire: local state disagrees with the primary's after-image.
    // The state is already perturbed, but kGap forces a full resync that
    // replaces it wholesale — divergence never survives.
    return ApplyResult::kGap;
  }
  commit_seq_.store(delta.seq, std::memory_order_release);
  note_mutation_locked();
  return ApplyResult::kApplied;
}

}  // namespace gmfnet::rpc
