// Typed client for the gmfnetd wire protocol: one connected socket, one
// synchronous request/response exchange per call, results decoded back
// into the exact engine types — a remote call returns bit-identically
// what the same call on an in-process AnalysisEngine returns.
//
// Error model:
//  * RemoteError   — the daemon executed the request and reported a
//    failure (malformed flow, invalid checkpoint, ...).  The connection
//    stays usable.
//  * ProtocolError — the byte stream violated the protocol (corruption,
//    version skew, an unexpected response type).  Do not reuse the
//    connection.
//  * TransportError — the socket failed (daemon gone, mid-frame close).
//    TimeoutError (a subclass) when a configured deadline expired first.
//
// Resilience (ClientConfig): connects and requests carry deadlines, and
// transport failures on *idempotent* requests — WHAT_IF_BATCH and STATS,
// which commit nothing — are retried up to max_retries times over a fresh
// connection with capped exponential backoff plus jitter.  Mutating
// requests (ADMIT, REMOVE, RESTORE, SHUTDOWN) are NEVER retried blindly:
// a transport error mid-exchange leaves it unknown whether the daemon
// committed the mutation, and replaying it could double-admit.  Such
// failures surface as TransportError; the operator (who can consult
// STATS) decides.
//
// One Client per thread: calls on one connection are serialized by the
// request/response protocol itself.  Open several clients for concurrent
// traffic — the daemon serves each connection on its own thread.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rpc/protocol.hpp"
#include "rpc/transport.hpp"
#include "util/rng.hpp"

namespace gmfnet::rpc {

/// The daemon reported a failure executing a well-formed request.
class RemoteError : public std::runtime_error {
 public:
  explicit RemoteError(const std::string& message)
      : std::runtime_error("rpc remote: " + message) {}
};

struct ClientConfig {
  /// Deadline for establishing (or re-establishing) the connection.
  int connect_timeout_ms = 10'000;
  /// Whole-request deadline (send + receive); kNoTimeout = wait forever.
  int request_timeout_ms = kNoTimeout;
  /// Transparent retries for idempotent requests after a transport
  /// failure (0 = fail on the first error, like any mutating request).
  int max_retries = 0;
  /// Capped exponential backoff between retries: attempt k sleeps a
  /// jittered duration in [d/2, d] for d = min(initial << k, max).
  int backoff_initial_ms = 20;
  int backoff_max_ms = 2'000;
  /// Jitter seed; 0 derives one from the clock (jitter exists to spread
  /// reconnect stampedes, determinism is for tests).
  std::uint64_t backoff_seed = 0;
};

class Client {
 public:
  [[nodiscard]] static Client connect_unix(const std::string& path,
                                           ClientConfig cfg = {});
  [[nodiscard]] static Client connect_tcp(const std::string& host,
                                          std::uint16_t port,
                                          ClientConfig cfg = {});

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// ADMIT: gated admission — engaged with the committed whole-set result
  /// iff the daemon admitted the flow (AnalysisEngine::try_admit).
  std::optional<core::HolisticResult> admit(const gmf::Flow& flow);

  /// REMOVE: drops the resident flow at `index`; false when out of range.
  bool remove(std::uint64_t index);

  /// WHAT_IF_BATCH: independent non-committing probes against the
  /// daemon's published snapshot; out[i] corresponds to candidates[i].
  /// Idempotent: retried per ClientConfig.
  std::vector<engine::WhatIfResult> what_if_batch(
      const std::vector<gmf::Flow>& candidates);
  /// Single-candidate convenience over WHAT_IF_BATCH.
  engine::WhatIfResult what_if(const gmf::Flow& candidate);

  /// STATS: engine counters plus resident flow / shard counts.
  /// Idempotent: retried per ClientConfig.
  StatsResponse stats();

  /// SAVE_CHECKPOINT: the daemon's converged state as a PR 4 checkpoint
  /// stream (feed to restore(), or persist for warm boot).
  std::string save_checkpoint();

  /// RESTORE: replaces the daemon's engine with the checkpointed world;
  /// returns the restored resident flow count.
  std::uint64_t restore(const std::string& checkpoint);

  /// SHUTDOWN: asks the daemon to exit its serve loop (acknowledged
  /// before the daemon winds down).
  void shutdown();

  /// Transport-level retries performed so far (observability for tests
  /// and the chaos soak).
  [[nodiscard]] std::uint64_t retries_performed() const { return retries_; }

 private:
  struct Endpoint {
    std::string unix_path;  ///< non-empty: Unix-domain
    std::string host;
    std::uint16_t port = 0;
  };

  Client(Socket sock, Endpoint endpoint, ClientConfig cfg);

  /// One exchange; throws RemoteError on ErrorResponse and ProtocolError
  /// when the response is not of type `Expected`.  With `idempotent`,
  /// transport failures reconnect and retry under the backoff policy.
  template <typename Expected>
  Expected call(const Request& req, bool idempotent = false);
  template <typename Expected>
  Expected call_once(const Request& req);
  void ensure_connected();
  void backoff_sleep(int attempt);

  Socket sock_;
  Endpoint endpoint_;
  ClientConfig cfg_;
  Rng jitter_;
  std::uint64_t retries_ = 0;
};

}  // namespace gmfnet::rpc
