// Typed client for the gmfnetd wire protocol: one connected socket, one
// synchronous request/response exchange per call, results decoded back
// into the exact engine types — a remote call returns bit-identically
// what the same call on an in-process AnalysisEngine returns.
//
// Error model:
//  * RemoteError   — the daemon executed the request and reported a
//    failure (malformed flow, invalid checkpoint, ...).  The connection
//    stays usable.
//  * ProtocolError — the byte stream violated the protocol (corruption,
//    version skew, an unexpected response type).  Do not reuse the
//    connection.
//  * TransportError — the socket failed (daemon gone, mid-frame close).
//    TimeoutError (a subclass) when a configured deadline expired first.
//
// Resilience (ClientConfig): connects and requests carry deadlines, and
// transport failures on *idempotent* requests — WHAT_IF_BATCH and STATS,
// which commit nothing — are retried up to max_retries times over a fresh
// connection with capped exponential backoff plus jitter.  Mutating
// requests (ADMIT, REMOVE, RESTORE, SHUTDOWN) are NEVER retried blindly:
// a transport error mid-exchange leaves it unknown whether the daemon
// committed the mutation, and replaying it could double-admit.  Such
// failures surface as TransportError; the operator (who can consult
// STATS) decides.
//
// One Client per thread: calls on one connection are serialized by the
// request/response protocol itself.  Open several clients for concurrent
// traffic — the daemon serves each connection on its own thread.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rpc/protocol.hpp"
#include "rpc/transport.hpp"
#include "util/rng.hpp"

namespace gmfnet::rpc {

/// The daemon reported a failure executing a well-formed request.
class RemoteError : public std::runtime_error {
 public:
  explicit RemoteError(const std::string& message)
      : std::runtime_error("rpc remote: " + message) {}
};

/// A mutation was refused because the daemon is a replica (or a fenced
/// ex-primary).  primary_addr() says where writes go — may be empty when
/// the daemon does not know (a fenced primary).  The connection stays
/// usable for reads.
class NotPrimaryError : public RemoteError {
 public:
  NotPrimaryError(std::string primary_addr, std::uint64_t epoch)
      : RemoteError("not the primary" +
                    (primary_addr.empty()
                         ? std::string()
                         : " (primary: " + primary_addr + ")")),
        primary_addr_(std::move(primary_addr)),
        epoch_(epoch) {}
  [[nodiscard]] const std::string& primary_addr() const {
    return primary_addr_;
  }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

 private:
  std::string primary_addr_;
  std::uint64_t epoch_;
};

struct ClientConfig {
  /// Deadline for establishing (or re-establishing) the connection.
  int connect_timeout_ms = 10'000;
  /// Whole-request deadline (send + receive); kNoTimeout = wait forever.
  int request_timeout_ms = kNoTimeout;
  /// Transparent retries for idempotent requests after a transport
  /// failure (0 = fail on the first error, like any mutating request).
  int max_retries = 0;
  /// Capped exponential backoff between retries: attempt k sleeps a
  /// jittered duration in [d/2, d] for d = min(initial << k, max).
  int backoff_initial_ms = 20;
  int backoff_max_ms = 2'000;
  /// Jitter seed; 0 derives one from the clock (jitter exists to spread
  /// reconnect stampedes, determinism is for tests).
  std::uint64_t backoff_seed = 0;
};

class Client {
 public:
  [[nodiscard]] static Client connect_unix(const std::string& path,
                                           ClientConfig cfg = {});
  [[nodiscard]] static Client connect_tcp(const std::string& host,
                                          std::uint16_t port,
                                          ClientConfig cfg = {});

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// ADMIT: gated admission — engaged with the committed whole-set result
  /// iff the daemon admitted the flow (AnalysisEngine::try_admit).
  std::optional<core::HolisticResult> admit(const gmf::Flow& flow);

  /// REMOVE: drops the resident flow at `index`; false when out of range.
  bool remove(std::uint64_t index);

  /// ADMIT_BATCH: gated admission of many flows in ONE exchange and one
  /// coalesced engine commit.  admitted[i] says whether flows[i] made it
  /// (the same verdict a sequence of admit() calls would have produced);
  /// flows_after is the resident count after the single commit.  Not
  /// retried (a mutation, like admit()).
  AdmitBatchResponse admit_batch(const std::vector<gmf::Flow>& flows);

  /// WHAT_IF_BATCH: independent non-committing probes against the
  /// daemon's published snapshot; out[i] corresponds to candidates[i].
  /// Idempotent: retried per ClientConfig.
  std::vector<engine::WhatIfResult> what_if_batch(
      const std::vector<gmf::Flow>& candidates);
  /// WHAT_IF_BATCH with verdict_only set: results answer admissible /
  /// converged() / sweeps() / flow_count() but carry no per-flow payload
  /// (result() throws) — the response is O(1) per candidate instead of
  /// O(world), the hot form for high-rate admission polling.
  std::vector<engine::WhatIfResult> what_if_verdicts(
      const std::vector<gmf::Flow>& candidates);
  /// Single-candidate convenience over WHAT_IF_BATCH.
  engine::WhatIfResult what_if(const gmf::Flow& candidate);

  /// STATS: engine counters plus resident flow / shard counts.
  /// Idempotent: retried per ClientConfig.
  StatsResponse stats();

  /// SAVE_CHECKPOINT: the daemon's converged state as a PR 4 checkpoint
  /// stream (feed to restore(), or persist for warm boot).
  std::string save_checkpoint();

  /// RESTORE: replaces the daemon's engine with the checkpointed world;
  /// returns the restored resident flow count.
  std::uint64_t restore(const std::string& checkpoint);

  /// SHUTDOWN: asks the daemon to exit its serve loop (acknowledged
  /// before the daemon winds down).
  void shutdown();

  /// PROMOTE: makes the daemon the primary (epoch-fencing failover);
  /// returns the freshly bumped epoch.  Idempotent on a live primary.
  std::uint64_t promote();

  /// ROLE: the daemon's replication role, position and sync health.
  /// Idempotent: retried per ClientConfig.
  RoleResponse role();

  /// REPOINT: tells a replica to follow a different primary
  /// ("unix:PATH" or "HOST:PORT"); returns the post-repoint role state.
  RoleResponse repoint(const std::string& primary_addr);

  // ------------------------------------------------------- pipelining --
  // The reactor daemon allows many request frames in flight on one
  // connection and answers them strictly in request order.  submit()
  // sends a frame without waiting; collect() receives the next response
  // (for the oldest uncollected submit).  Pipelined exchanges are never
  // retried — after a TransportError the in-flight tail is unknown and
  // the connection is closed; reconnect and resubmit what is safe.
  // Do not interleave submit/collect with the synchronous calls above
  // while responses are pending.

  /// Sends `req` immediately; the response is claimed by a later
  /// collect().  Throws TransportError on a send failure.
  void submit(const Request& req);

  /// Receives the next pipelined response in request order.  Maps
  /// ERROR / NOT_PRIMARY responses to RemoteError / NotPrimaryError like
  /// the synchronous calls; otherwise returns the decoded Response.
  /// Throws std::logic_error when nothing is pending.
  Response collect();

  /// Typed collect(): additionally throws ProtocolError when the
  /// response is not of type `Expected`.
  template <typename Expected>
  Expected collect_as() {
    Response resp = collect();
    if (auto* ok = std::get_if<Expected>(&resp)) return std::move(*ok);
    throw ProtocolError("unexpected response type for pipelined request");
  }

  /// Pipelined requests submitted but not yet collected.
  [[nodiscard]] std::size_t pending() const { return pending_; }

  /// Transport-level retries performed so far (observability for tests
  /// and the chaos soak).
  [[nodiscard]] std::uint64_t retries_performed() const { return retries_; }

  /// The backoff schedule, exposed for determinism tests: the jittered
  /// sleep before retry `attempt` (0-based) under `cfg`, drawn from
  /// `jitter`.  Always in [capped/2, capped] for
  /// capped = min(initial << attempt, max(max, initial)).
  [[nodiscard]] static std::int64_t backoff_delay_ms(const ClientConfig& cfg,
                                                     int attempt,
                                                     Rng& jitter);

 private:
  struct Endpoint {
    std::string unix_path;  ///< non-empty: Unix-domain
    std::string host;
    std::uint16_t port = 0;
  };

  Client(Socket sock, Endpoint endpoint, ClientConfig cfg);

  /// One exchange; throws RemoteError on ErrorResponse and ProtocolError
  /// when the response is not of type `Expected`.  With `idempotent`,
  /// transport failures reconnect and retry under the backoff policy.
  template <typename Expected>
  Expected call(const Request& req, bool idempotent = false);
  template <typename Expected>
  Expected call_once(const Request& req);
  void ensure_connected();
  void backoff_sleep(int attempt);

  Socket sock_;
  Endpoint endpoint_;
  ClientConfig cfg_;
  Rng jitter_;
  std::uint64_t retries_ = 0;
  std::size_t pending_ = 0;  ///< pipelined submits awaiting collect()
};

}  // namespace gmfnet::rpc
