// Typed client for the gmfnetd wire protocol: one connected socket, one
// synchronous request/response exchange per call, results decoded back
// into the exact engine types — a remote call returns bit-identically
// what the same call on an in-process AnalysisEngine returns.
//
// Error model:
//  * RemoteError   — the daemon executed the request and reported a
//    failure (malformed flow, invalid checkpoint, ...).  The connection
//    stays usable.
//  * ProtocolError — the byte stream violated the protocol (corruption,
//    version skew, an unexpected response type).  Do not reuse the
//    connection.
//  * TransportError — the socket failed (daemon gone, mid-frame close).
//
// One Client per thread: calls on one connection are serialized by the
// request/response protocol itself.  Open several clients for concurrent
// traffic — the daemon serves each connection on its own thread.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rpc/protocol.hpp"
#include "rpc/transport.hpp"

namespace gmfnet::rpc {

/// The daemon reported a failure executing a well-formed request.
class RemoteError : public std::runtime_error {
 public:
  explicit RemoteError(const std::string& message)
      : std::runtime_error("rpc remote: " + message) {}
};

class Client {
 public:
  [[nodiscard]] static Client connect_unix(const std::string& path);
  [[nodiscard]] static Client connect_tcp(const std::string& host,
                                          std::uint16_t port);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// ADMIT: gated admission — engaged with the committed whole-set result
  /// iff the daemon admitted the flow (AnalysisEngine::try_admit).
  std::optional<core::HolisticResult> admit(const gmf::Flow& flow);

  /// REMOVE: drops the resident flow at `index`; false when out of range.
  bool remove(std::uint64_t index);

  /// WHAT_IF_BATCH: independent non-committing probes against the
  /// daemon's published snapshot; out[i] corresponds to candidates[i].
  std::vector<engine::WhatIfResult> what_if_batch(
      const std::vector<gmf::Flow>& candidates);
  /// Single-candidate convenience over WHAT_IF_BATCH.
  engine::WhatIfResult what_if(const gmf::Flow& candidate);

  /// STATS: engine counters plus resident flow / shard counts.
  StatsResponse stats();

  /// SAVE_CHECKPOINT: the daemon's converged state as a PR 4 checkpoint
  /// stream (feed to restore(), or persist for warm boot).
  std::string save_checkpoint();

  /// RESTORE: replaces the daemon's engine with the checkpointed world;
  /// returns the restored resident flow count.
  std::uint64_t restore(const std::string& checkpoint);

  /// SHUTDOWN: asks the daemon to exit its serve loop (acknowledged
  /// before the daemon winds down).
  void shutdown();

 private:
  explicit Client(Socket sock) : sock_(std::move(sock)) {}

  /// One exchange; throws RemoteError on ErrorResponse and ProtocolError
  /// when the response is not of type `Expected`.
  template <typename Expected>
  Expected call(const Request& req);

  Socket sock_;
};

}  // namespace gmfnet::rpc
