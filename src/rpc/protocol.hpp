// gmfnetd wire protocol: length-prefixed binary frames carrying typed
// admission-control messages between an operator tool and the daemon.
//
// One message = one frame.  Frame layout (all integers little-endian):
//
//   offset  size  field
//   0       8     magic "GMFNRPC1"
//   8       4     protocol version (u32); readers reject versions they do
//                 not know (forward-incompatible by design)
//   12      4     message type (u32); unknown types rejected
//   16      8     body length in bytes (u64); zero and > kMaxBodyLen
//                 rejected (every message body is non-empty by
//                 construction — bodiless messages carry one reserved
//                 zero byte — so a zero length is always a framing bug)
//   24      8     FNV-1a 64 checksum of the body bytes (u64)
//   32      ...   body (io/codec field encodings)
//
// The decode path is strict in the io/checkpoint tradition: truncation,
// bit flips (checksummed body, validated header fields), unknown message
// types, oversized or zero lengths, and trailing bytes are all rejected
// with ProtocolError — never UB, never a silently wrong message.
//
// Message catalog (request -> response):
//
//   ADMIT            { flow }            -> { admitted?, HolisticResult }
//   ADMIT_BATCH      { flows }           -> { per-flow verdicts, flows_after }
//                                           (one gated admission pass over
//                                            many flows: one engine commit,
//                                            one snapshot publish, one
//                                            replication DELTA batch)
//   REMOVE           { index }           -> { removed }
//   WHAT_IF_BATCH    { candidates,       -> { WhatIfResult per candidate;
//                      verdict_only? }      verdict_only requests elide the
//                                           O(world) per-flow payload }
//   STATS            {}                  -> { EngineStats, flows, shards,
//                                            role, epoch, commit_seq, uptime,
//                                            server counters, solver mode }
//   SAVE_CHECKPOINT  {}                  -> { checkpoint blob (PR 4 stream) }
//   RESTORE          { checkpoint blob } -> { restored flow count }
//   SHUTDOWN         {}                  -> {}
//   SUBSCRIBE        { epoch, seq, hist }-> SUBSCRIBE_OK { epoch, next_seq }
//                                           then a one-way DELTA stream, or
//                                           SYNC_FULL { epoch, seq, hist,
//                                                       checkpoint } then the
//                                           DELTA stream (replication link)
//   PROMOTE          {}                  -> { epoch } (replica -> primary,
//                                            epoch bumped — the fence)
//   ROLE             {}                  -> { role, epoch, seq, sync state }
//   REPOINT          { primary addr }    -> { } (replica follows a new
//                                            primary)
//   (mutation on a replica or a fenced   -> NOT_PRIMARY { primary addr,
//    ex-primary)                            epoch }
//   (any request)                        -> ERROR { message } on failure
//
//   DELTA frames are pushed primary -> replica on a subscribed connection:
//   one frame per committed mutation, carrying (epoch, commit_seq), the
//   operation bytes (io/codec encodings — the same bytes a checkpoint
//   section would hold) and the expected post-apply resident count.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "core/holistic.hpp"
#include "engine/analysis_engine.hpp"
#include "engine/snapshot.hpp"
#include "gmf/flow.hpp"
#include "io/wire.hpp"

namespace gmfnet::rpc {

/// Thrown on malformed frames and protocol violations: truncated input,
/// checksum mismatch, bad magic, a forward-incompatible protocol version,
/// an unknown message type, oversized/zero body lengths, trailing bytes,
/// or a body that fails strict decode.
class ProtocolError : public io::WireError {
 public:
  explicit ProtocolError(const std::string& message)
      : io::WireError("rpc: " + message) {}
};

/// Frame constants, shared with tests that forge malformed frames.
inline constexpr char kMagic[8] = {'G', 'M', 'F', 'N', 'R', 'P', 'C', '1'};
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::size_t kVersionOffset = 8;
inline constexpr std::size_t kTypeOffset = 12;
inline constexpr std::size_t kBodyLenOffset = 16;
inline constexpr std::size_t kChecksumOffset = 24;
inline constexpr std::size_t kHeaderSize = 32;
/// Body-length sanity bound: a frame larger than this is rejected before
/// any allocation happens.  Checkpoint blobs ride inside RESTORE frames,
/// so the bound is generous; anything beyond it is a corrupted length
/// field, not a real message.
inline constexpr std::uint64_t kMaxBodyLen = 1ull << 30;  // 1 GiB

enum class MsgType : std::uint32_t {
  kAdmitRequest = 1,
  kRemoveRequest = 2,
  kWhatIfBatchRequest = 3,
  kStatsRequest = 4,
  kSaveCheckpointRequest = 5,
  kRestoreRequest = 6,
  kShutdownRequest = 7,
  kSubscribeRequest = 8,
  kPromoteRequest = 9,
  kRoleRequest = 10,
  kRepointRequest = 11,
  kAdmitBatchRequest = 12,

  kAdmitResponse = 101,
  kRemoveResponse = 102,
  kWhatIfBatchResponse = 103,
  kStatsResponse = 104,
  kSaveCheckpointResponse = 105,
  kRestoreResponse = 106,
  kShutdownResponse = 107,
  kSubscribeResponse = 108,
  kSyncFullResponse = 109,
  kDeltaResponse = 110,
  kPromoteResponse = 111,
  kRoleResponse = 112,
  kNotPrimaryResponse = 113,
  kAdmitBatchResponse = 114,

  kErrorResponse = 200,
};

/// Replication role of a daemon.  On the wire in STATS/ROLE responses.
enum class Role : std::uint8_t {
  kPrimary = 1,  ///< accepts mutations, journals + streams deltas
  kReplica = 2,  ///< follows a primary, serves reads from its snapshots
};

/// The kind of committed mutation a DELTA frame carries.
enum class DeltaKind : std::uint8_t {
  kAdmit = 1,    ///< body: io/codec flow encoding (the admitted flow)
  kRemove = 2,   ///< body: u64 resident index
  kRestore = 3,  ///< body: a complete PR 4 checkpoint stream
  kBatch = 4,    ///< body: a coalesced sequence of admit/remove ops that
                 ///< committed as ONE engine commit on the primary; replicas
                 ///< apply the whole sequence before checking flows_after
};

// ------------------------------------------------------------- requests --

struct AdmitRequest {
  gmf::Flow flow;
};
struct RemoveRequest {
  std::uint64_t index = 0;
};
struct WhatIfBatchRequest {
  std::vector<gmf::Flow> candidates;
  /// When set, responses carry the admission verdict plus summary fields
  /// (converged, sweeps, flow_count) but no per-flow payload — the full
  /// HolisticResult is a deep copy of every resident's FlowResult, O(world)
  /// to encode per probe, which dwarfs the probe itself on large worlds.
  /// Decoded verdict-only results throw on result()/flow_result().
  bool verdict_only = false;
};
struct StatsRequest {};
struct SaveCheckpointRequest {};
struct RestoreRequest {
  std::string checkpoint;  ///< a complete io/checkpoint stream
};
struct ShutdownRequest {};
/// Replica -> primary: start (or resume) the delta stream.  `epoch`,
/// `next_seq` and `history` describe the replica's current position; a
/// primary that can serve the journal tail from exactly that position of
/// the SAME history answers SubscribeResponse, otherwise SyncFullResponse.
/// A brand-new replica sends (0, 0, 0) and always gets a full sync.
struct SubscribeRequest {
  std::uint64_t epoch = 0;
  std::uint64_t next_seq = 0;  ///< first commit_seq the replica still needs
  std::uint64_t history = 0;   ///< history token of the primary it followed
};
/// Operator -> replica: become the primary.  Bumps the epoch (the fence).
struct PromoteRequest {};
/// Operator -> any daemon: report role + replication position/health.
struct RoleRequest {};
/// Operator -> replica: follow a different primary ("unix:PATH" or
/// "HOST:PORT").  The replica resubscribes there; epoch fencing decides
/// whether its state survives (catch-up / full sync) or the new primary is
/// rejected as stale.
struct RepointRequest {
  std::string primary_addr;
};
/// Gated admission of many flows in one request: the daemon runs the same
/// per-flow admission test as ADMIT, in order, but commits all accepted
/// flows as ONE engine commit + ONE snapshot publish + ONE replication
/// DELTA batch.  Verdicts are bit-identical to sending the flows as
/// sequential ADMITs.
struct AdmitBatchRequest {
  std::vector<gmf::Flow> flows;
};

// New request types append LAST: type_of() maps variant index -> MsgType
// arithmetically from kAdmitRequest.
using Request =
    std::variant<AdmitRequest, RemoveRequest, WhatIfBatchRequest,
                 StatsRequest, SaveCheckpointRequest, RestoreRequest,
                 ShutdownRequest, SubscribeRequest, PromoteRequest,
                 RoleRequest, RepointRequest, AdmitBatchRequest>;

// ------------------------------------------------------------ responses --

struct AdmitResponse {
  /// Engaged with the committed whole-set result iff the flow was admitted
  /// (exactly AnalysisEngine::try_admit's contract over the wire).
  std::optional<core::HolisticResult> result;
};
struct RemoveResponse {
  bool removed = false;
};
struct WhatIfBatchResponse {
  std::vector<engine::WhatIfResult> results;  ///< parallel to candidates
};
struct StatsResponse {
  engine::EngineStats stats;
  std::uint64_t flows = 0;
  std::uint64_t shards = 0;
  // Appended after the PR 5 fields (decode layout of the old fields is
  // unchanged): replication position + daemon uptime, so failover tooling
  // can watch a fleet with the one verb it already speaks.
  Role role = Role::kPrimary;
  std::uint64_t epoch = 0;
  std::uint64_t commit_seq = 0;
  std::uint64_t uptime_ms = 0;
  // Appended after the PR 8 fields: reactor-server observability counters
  // (zero on daemons without a serving reactor).
  std::uint64_t active_connections = 0;  ///< currently open operator conns
  std::uint64_t frames_served = 0;       ///< total request frames answered
  std::uint64_t coalesced_commits = 0;   ///< mutations folded into group
                                         ///< commits beyond the group heads
  std::uint64_t pipelined_hwm = 0;  ///< max frames in flight on one conn
  // Appended after the PR 9 fields: which iteration strategy the engine's
  // fixed-point solves run under (core::SolverMode values; the accel_*
  // counters in `stats` are only nonzero under kAnderson).
  std::uint8_t solver_mode = 0;
};
struct SaveCheckpointResponse {
  std::string checkpoint;
};
struct RestoreResponse {
  std::uint64_t flows = 0;
};
struct ShutdownResponse {};
/// Primary -> replica: the journal covers the replica's position; deltas
/// follow starting at exactly `next_seq`.
struct SubscribeResponse {
  std::uint64_t epoch = 0;
  std::uint64_t next_seq = 0;
};
/// Primary -> replica: the journal cannot cover the replica's position (or
/// histories/epochs differ) — here is the whole world instead.  `commit_seq`
/// is the position the checkpoint captures; deltas follow from
/// `commit_seq + 1`.
struct SyncFullResponse {
  std::uint64_t epoch = 0;
  std::uint64_t commit_seq = 0;
  std::uint64_t history = 0;       ///< the primary's history token
  std::string checkpoint;          ///< a complete io/checkpoint stream
};
/// One committed mutation, pushed primary -> replica on a subscribed
/// connection.  `seq` values are contiguous per epoch; `flows_after` is the
/// resident flow count after applying — a cheap divergence tripwire on top
/// of the per-frame checksum.
/// One element of a kBatch delta: an admit (flow) or a remove (index) that
/// was part of a coalesced commit group.
struct DeltaOp {
  DeltaKind kind = DeltaKind::kAdmit;  ///< kAdmit or kRemove only
  gmf::Flow flow;                      ///< kAdmit payload
  std::uint64_t index = 0;             ///< kRemove payload
};
struct DeltaResponse {
  DeltaKind kind = DeltaKind::kAdmit;
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;
  std::uint64_t flows_after = 0;
  gmf::Flow flow;               ///< kAdmit payload
  std::uint64_t index = 0;      ///< kRemove payload
  std::string checkpoint;       ///< kRestore payload
  std::vector<DeltaOp> ops;     ///< kBatch payload (in commit order)
};
struct PromoteResponse {
  std::uint64_t epoch = 0;  ///< the freshly fenced epoch
};
/// Replication state of a daemon; serves both `gmfnet_ctl role` and
/// `gmfnet_ctl sync`.  The journal/subscriber fields are primary-side, the
/// connected/sync counters replica-side; the irrelevant half reads zero.
struct RoleResponse {
  Role role = Role::kPrimary;
  bool fenced = false;           ///< ex-primary refusing mutations
  std::uint64_t epoch = 0;
  std::uint64_t commit_seq = 0;
  std::string primary_addr;      ///< upstream (replica) / own ad (primary)
  bool connected = false;        ///< replica: delta stream currently up
  std::uint64_t full_syncs = 0;  ///< replica: bootstrap + gap recoveries
  std::uint64_t deltas_applied = 0;
  std::uint64_t subscribers = 0;      ///< primary: live delta streams
  std::uint64_t journal_begin = 0;    ///< primary: oldest journaled seq
  std::uint64_t journal_end = 0;      ///< primary: newest journaled seq
};
/// Mutation refused: this daemon is a replica (or a fenced ex-primary).
/// Carries where writes should go so operators/tools can follow.
struct NotPrimaryResponse {
  std::string primary_addr;  ///< may be empty if unknown (fenced primary)
  std::uint64_t epoch = 0;
};
/// Server-side failure executing an otherwise well-framed request (e.g. a
/// malformed flow, a checkpoint that fails validation).  The connection
/// stays usable.
struct ErrorResponse {
  std::string message;
};
/// Per-flow verdicts of an ADMIT_BATCH, parallel to the request's flows
/// (1 = admitted).  `flows_after` is the resident count after the single
/// coalesced commit.
struct AdmitBatchResponse {
  std::vector<std::uint8_t> admitted;
  std::uint64_t flows_after = 0;
};

// New response types append immediately BEFORE ErrorResponse: type_of()
// maps variant index -> MsgType arithmetically from kAdmitResponse, with
// ErrorResponse special-cased to 200.
using Response =
    std::variant<AdmitResponse, RemoveResponse, WhatIfBatchResponse,
                 StatsResponse, SaveCheckpointResponse, RestoreResponse,
                 ShutdownResponse, SubscribeResponse, SyncFullResponse,
                 DeltaResponse, PromoteResponse, RoleResponse,
                 NotPrimaryResponse, AdmitBatchResponse, ErrorResponse>;

// -------------------------------------------------------------- framing --

[[nodiscard]] MsgType type_of(const Request& req);
[[nodiscard]] MsgType type_of(const Response& resp);

/// Encodes one message as a complete frame (header + body).
[[nodiscard]] std::string encode_request(const Request& req);
[[nodiscard]] std::string encode_response(const Response& resp);

/// Strict whole-frame decode; the frame must contain exactly one message
/// (trailing bytes rejected).  decode_request rejects response-typed
/// frames and vice versa.  Throws ProtocolError on any violation.
[[nodiscard]] Request decode_request(std::string_view frame);
[[nodiscard]] Response decode_response(std::string_view frame);

/// Validated frame header, for stream transports that read the header
/// first and then exactly `body_len` more bytes.
struct FrameHeader {
  MsgType type;
  std::uint64_t body_len = 0;
  std::uint64_t checksum = 0;
};

/// Validates magic, version, message type and body-length bounds of a
/// kHeaderSize-byte prefix.  Throws ProtocolError.
[[nodiscard]] FrameHeader decode_frame_header(std::string_view header);

/// Verifies `body` against a decoded header (length + checksum); throws
/// ProtocolError on mismatch.
void verify_body(const FrameHeader& header, std::string_view body);

}  // namespace gmfnet::rpc
