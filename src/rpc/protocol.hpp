// gmfnetd wire protocol: length-prefixed binary frames carrying typed
// admission-control messages between an operator tool and the daemon.
//
// One message = one frame.  Frame layout (all integers little-endian):
//
//   offset  size  field
//   0       8     magic "GMFNRPC1"
//   8       4     protocol version (u32); readers reject versions they do
//                 not know (forward-incompatible by design)
//   12      4     message type (u32); unknown types rejected
//   16      8     body length in bytes (u64); zero and > kMaxBodyLen
//                 rejected (every message body is non-empty by
//                 construction — bodiless messages carry one reserved
//                 zero byte — so a zero length is always a framing bug)
//   24      8     FNV-1a 64 checksum of the body bytes (u64)
//   32      ...   body (io/codec field encodings)
//
// The decode path is strict in the io/checkpoint tradition: truncation,
// bit flips (checksummed body, validated header fields), unknown message
// types, oversized or zero lengths, and trailing bytes are all rejected
// with ProtocolError — never UB, never a silently wrong message.
//
// Message catalog (request -> response):
//
//   ADMIT            { flow }            -> { admitted?, HolisticResult }
//   REMOVE           { index }           -> { removed }
//   WHAT_IF_BATCH    { candidate flows } -> { WhatIfResult per candidate }
//   STATS            {}                  -> { EngineStats, flows, shards }
//   SAVE_CHECKPOINT  {}                  -> { checkpoint blob (PR 4 stream) }
//   RESTORE          { checkpoint blob } -> { restored flow count }
//   SHUTDOWN         {}                  -> {}
//   (any request)                        -> ERROR { message } on failure
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "core/holistic.hpp"
#include "engine/analysis_engine.hpp"
#include "engine/snapshot.hpp"
#include "gmf/flow.hpp"
#include "io/wire.hpp"

namespace gmfnet::rpc {

/// Thrown on malformed frames and protocol violations: truncated input,
/// checksum mismatch, bad magic, a forward-incompatible protocol version,
/// an unknown message type, oversized/zero body lengths, trailing bytes,
/// or a body that fails strict decode.
class ProtocolError : public io::WireError {
 public:
  explicit ProtocolError(const std::string& message)
      : io::WireError("rpc: " + message) {}
};

/// Frame constants, shared with tests that forge malformed frames.
inline constexpr char kMagic[8] = {'G', 'M', 'F', 'N', 'R', 'P', 'C', '1'};
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::size_t kVersionOffset = 8;
inline constexpr std::size_t kTypeOffset = 12;
inline constexpr std::size_t kBodyLenOffset = 16;
inline constexpr std::size_t kChecksumOffset = 24;
inline constexpr std::size_t kHeaderSize = 32;
/// Body-length sanity bound: a frame larger than this is rejected before
/// any allocation happens.  Checkpoint blobs ride inside RESTORE frames,
/// so the bound is generous; anything beyond it is a corrupted length
/// field, not a real message.
inline constexpr std::uint64_t kMaxBodyLen = 1ull << 30;  // 1 GiB

enum class MsgType : std::uint32_t {
  kAdmitRequest = 1,
  kRemoveRequest = 2,
  kWhatIfBatchRequest = 3,
  kStatsRequest = 4,
  kSaveCheckpointRequest = 5,
  kRestoreRequest = 6,
  kShutdownRequest = 7,

  kAdmitResponse = 101,
  kRemoveResponse = 102,
  kWhatIfBatchResponse = 103,
  kStatsResponse = 104,
  kSaveCheckpointResponse = 105,
  kRestoreResponse = 106,
  kShutdownResponse = 107,

  kErrorResponse = 200,
};

// ------------------------------------------------------------- requests --

struct AdmitRequest {
  gmf::Flow flow;
};
struct RemoveRequest {
  std::uint64_t index = 0;
};
struct WhatIfBatchRequest {
  std::vector<gmf::Flow> candidates;
};
struct StatsRequest {};
struct SaveCheckpointRequest {};
struct RestoreRequest {
  std::string checkpoint;  ///< a complete io/checkpoint stream
};
struct ShutdownRequest {};

using Request =
    std::variant<AdmitRequest, RemoveRequest, WhatIfBatchRequest,
                 StatsRequest, SaveCheckpointRequest, RestoreRequest,
                 ShutdownRequest>;

// ------------------------------------------------------------ responses --

struct AdmitResponse {
  /// Engaged with the committed whole-set result iff the flow was admitted
  /// (exactly AnalysisEngine::try_admit's contract over the wire).
  std::optional<core::HolisticResult> result;
};
struct RemoveResponse {
  bool removed = false;
};
struct WhatIfBatchResponse {
  std::vector<engine::WhatIfResult> results;  ///< parallel to candidates
};
struct StatsResponse {
  engine::EngineStats stats;
  std::uint64_t flows = 0;
  std::uint64_t shards = 0;
};
struct SaveCheckpointResponse {
  std::string checkpoint;
};
struct RestoreResponse {
  std::uint64_t flows = 0;
};
struct ShutdownResponse {};
/// Server-side failure executing an otherwise well-framed request (e.g. a
/// malformed flow, a checkpoint that fails validation).  The connection
/// stays usable.
struct ErrorResponse {
  std::string message;
};

using Response =
    std::variant<AdmitResponse, RemoveResponse, WhatIfBatchResponse,
                 StatsResponse, SaveCheckpointResponse, RestoreResponse,
                 ShutdownResponse, ErrorResponse>;

// -------------------------------------------------------------- framing --

[[nodiscard]] MsgType type_of(const Request& req);
[[nodiscard]] MsgType type_of(const Response& resp);

/// Encodes one message as a complete frame (header + body).
[[nodiscard]] std::string encode_request(const Request& req);
[[nodiscard]] std::string encode_response(const Response& resp);

/// Strict whole-frame decode; the frame must contain exactly one message
/// (trailing bytes rejected).  decode_request rejects response-typed
/// frames and vice versa.  Throws ProtocolError on any violation.
[[nodiscard]] Request decode_request(std::string_view frame);
[[nodiscard]] Response decode_response(std::string_view frame);

/// Validated frame header, for stream transports that read the header
/// first and then exactly `body_len` more bytes.
struct FrameHeader {
  MsgType type;
  std::uint64_t body_len = 0;
  std::uint64_t checksum = 0;
};

/// Validates magic, version, message type and body-length bounds of a
/// kHeaderSize-byte prefix.  Throws ProtocolError.
[[nodiscard]] FrameHeader decode_frame_header(std::string_view header);

/// Verifies `body` against a decoded header (length + checksum); throws
/// ProtocolError on mismatch.
void verify_body(const FrameHeader& header, std::string_view body);

}  // namespace gmfnet::rpc
