// TimerWheel: hashed timer wheel for per-connection deadlines in the
// gmfnetd reactor.  The PR 7 io/idle deadlines were enforced by blocking
// poll calls on the connection's own thread; on the reactor one thread
// owns hundreds of connections, so deadlines become wheel entries —
// schedule/cancel/reschedule are O(1), and the event loop drains expired
// entries once per tick instead of parking a thread per deadline.
//
// Semantics:
//  * One live deadline per id: schedule() replaces any earlier deadline
//    for the same id (lazy cancellation — the superseded wheel entry stays
//    in its slot and is discarded by a generation check when its slot is
//    drained, so reschedule never walks a bucket).
//  * cancel() is idempotent and also lazy.
//  * expire(now) pops every id whose deadline is <= now, in slot order
//    (ordering across ids within one tick is unspecified — deadline
//    enforcement does not need it).
//  * Deadlines land on tick boundaries, rounded UP: an entry never fires
//    early, and fires at most one tick (`tick_ms`) late.  Identical
//    tolerance to the poll-based enforcement it replaces (the old loop's
//    poll granularity was the deadline slice).
//
// Single-threaded by design: the reactor thread owns the wheel.  No
// allocation on the steady-state path beyond bucket push_back.
#pragma once

#include <chrono>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace gmfnet::rpc {

class TimerWheel {
 public:
  using Clock = std::chrono::steady_clock;

  explicit TimerWheel(int tick_ms = 100, std::size_t slots = 256)
      : tick_ms_(tick_ms > 0 ? tick_ms : 1),
        slots_(slots > 1 ? slots : 2),
        wheel_(slots_),
        origin_(Clock::now()),
        cursor_(0) {}

  /// Arms (or re-arms) the deadline for `id`.
  void schedule(std::uint64_t id, Clock::time_point deadline) {
    const std::uint64_t tick = tick_of(deadline);
    const std::uint64_t gen = ++live_[id].gen;
    live_[id].tick = tick;
    wheel_[tick % slots_].push_back(Entry{id, gen, tick});
  }

  /// Arms the deadline `timeout_ms` from `now` (kNoTimeout < 0 = no-op).
  void schedule_in(std::uint64_t id, int timeout_ms, Clock::time_point now) {
    if (timeout_ms < 0) return;
    schedule(id, now + std::chrono::milliseconds(timeout_ms));
  }

  /// Disarms `id`'s deadline (idempotent).
  void cancel(std::uint64_t id) { live_.erase(id); }

  [[nodiscard]] bool armed(std::uint64_t id) const {
    return live_.count(id) != 0;
  }
  [[nodiscard]] std::size_t size() const { return live_.size(); }

  /// Appends every id whose deadline has passed to `out` and disarms it.
  void expire(Clock::time_point now, std::vector<std::uint64_t>& out) {
    const std::uint64_t now_tick = tick_of_floor(now);
    while (cursor_ <= now_tick) {
      std::vector<Entry>& bucket = wheel_[cursor_ % slots_];
      std::size_t keep = 0;
      for (Entry& e : bucket) {
        const auto it = live_.find(e.id);
        if (it == live_.end() || it->second.gen != e.gen) {
          continue;  // cancelled or superseded: lazy discard
        }
        if (e.tick <= now_tick) {
          out.push_back(e.id);
          live_.erase(it);
        } else {
          // Same slot, a later wheel revolution: keep for a future pass.
          bucket[keep++] = e;
        }
      }
      bucket.resize(keep);
      ++cursor_;
    }
  }

  /// Suggested wait bound for the event loop: -1 (wait forever) with no
  /// armed deadline, else the milliseconds until the next tick boundary
  /// (in [0, tick_ms]).  Coarse on purpose — the wheel fires on ticks, so
  /// a finer wait buys nothing.
  [[nodiscard]] int next_delay_ms(Clock::time_point now) const {
    if (live_.empty()) return -1;
    const auto since = std::chrono::duration_cast<std::chrono::milliseconds>(
                           now - origin_)
                           .count();
    const auto next_boundary =
        (since / tick_ms_ + 1) * static_cast<long long>(tick_ms_);
    const long long left = next_boundary - since;
    return left > 0 ? static_cast<int>(left) : 0;
  }

 private:
  struct Entry {
    std::uint64_t id = 0;
    std::uint64_t gen = 0;
    std::uint64_t tick = 0;  ///< absolute tick the deadline rounds up to
  };
  struct Live {
    std::uint64_t gen = 0;
    std::uint64_t tick = 0;
  };

  /// Absolute tick index of `t`, rounded up (never fires early).
  [[nodiscard]] std::uint64_t tick_of(Clock::time_point t) const {
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        t - origin_)
                        .count();
    if (ms <= 0) return cursor_;
    const auto up = (static_cast<std::uint64_t>(ms) +
                     static_cast<std::uint64_t>(tick_ms_) - 1) /
                    static_cast<std::uint64_t>(tick_ms_);
    return up > cursor_ ? up : cursor_;
  }
  /// Absolute tick index of `t`, rounded down (how far "now" has come).
  [[nodiscard]] std::uint64_t tick_of_floor(Clock::time_point t) const {
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        t - origin_)
                        .count();
    return ms <= 0 ? 0 : static_cast<std::uint64_t>(ms) /
                             static_cast<std::uint64_t>(tick_ms_);
  }

  int tick_ms_;
  std::size_t slots_;
  std::vector<std::vector<Entry>> wheel_;
  Clock::time_point origin_;
  std::uint64_t cursor_;  ///< next tick expire() will drain
  std::unordered_map<std::uint64_t, Live> live_;
};

}  // namespace gmfnet::rpc
