// gmfnetd: the operator daemon serving one AnalysisEngine over the
// rpc/protocol wire format (Unix-domain or loopback TCP socket).
//
// Concurrency model — the PR 3 engine contract, made observable from
// outside the process:
//
//  * Mutating requests (ADMIT, REMOVE, SAVE_CHECKPOINT, RESTORE) serialize
//    through one writer mutex; each handler thread becomes "the writer
//    thread" for the duration of its mutation.  After every committed
//    mutation the engine's published snapshot is fresh (ADMIT commits via
//    try_admit, REMOVE re-evaluates immediately), so the daemon upholds
//    the invariant that published() is never stale.
//
//  * WHAT_IF_BATCH takes no lock at all: it loads the engine's published
//    EngineSnapshot and fans the candidates over a reader thread pool
//    (EngineSnapshot::what_if — the RCU read path).  Concurrent batches
//    from any number of connections never block a writer performing
//    admissions, and vice versa.
//
//  * RESTORE swaps the whole engine behind an atomic shared_ptr: readers
//    that loaded the old engine finish their probes against its (still
//    immutable) snapshots, later requests see the restored world.
//
// One thread per connection; requests on one connection are answered in
// order.  A malformed frame closes that connection (the stream can no
// longer be trusted) without disturbing the daemon or other connections.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/analysis_engine.hpp"
#include "rpc/protocol.hpp"
#include "rpc/transport.hpp"
#include "util/thread_pool.hpp"

namespace gmfnet::rpc {

struct ServerConfig {
  /// Non-empty: listen on this Unix-domain socket path.  Empty: listen on
  /// tcp_host:tcp_port.
  std::string unix_path;
  std::string tcp_host = "127.0.0.1";
  std::uint16_t tcp_port = 0;  ///< 0 = ephemeral (read back via tcp_port())
  std::size_t reader_threads = 0;  ///< what-if pool size (0 = hardware)
  /// Must equal the options the engine was built with; RESTORE rebuilds
  /// the engine under these (the checkpoint's option fingerprint is
  /// validated against them).
  core::HolisticOptions engine_opts;
};

class Server {
 public:
  /// Binds and listens (throws TransportError on failure); serve() then
  /// accepts connections.  The engine must have been constructed with
  /// `cfg.engine_opts`.
  Server(std::shared_ptr<engine::AnalysisEngine> engine, ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bound TCP port (meaningful when listening on TCP).
  [[nodiscard]] std::uint16_t tcp_port() const { return listener_.port(); }
  [[nodiscard]] const std::string& unix_path() const {
    return listener_.unix_path();
  }

  /// Accept-and-serve loop; returns after a SHUTDOWN request (or
  /// request_stop()) once every connection handler has exited.
  void serve();

  /// Asks a running serve() to wind down (safe from any thread).
  void request_stop();
  [[nodiscard]] bool stop_requested() const {
    return stop_.load(std::memory_order_acquire);
  }

  /// The currently served engine (atomic shared_ptr load — safe from any
  /// thread; RESTORE swaps it).
  [[nodiscard]] std::shared_ptr<engine::AnalysisEngine> engine() const {
    return std::atomic_load(&engine_);
  }

 private:
  struct Conn {
    std::thread thread;
    std::shared_ptr<Socket> sock;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void handle_connection(const std::shared_ptr<Socket>& sock,
                         const std::shared_ptr<std::atomic<bool>>& done);
  [[nodiscard]] Response handle(Request&& req);
  /// Joins finished handlers; with `all`, shuts every live socket down
  /// first and joins them all (serve-exit path).
  void reap_connections(bool all);

  ServerConfig cfg_;
  Listener listener_;
  /// Accessed only via std::atomic_load / std::atomic_store (see
  /// engine/analysis_engine.hpp on why the free functions, not
  /// std::atomic<shared_ptr>).
  std::shared_ptr<engine::AnalysisEngine> engine_;
  std::mutex writer_mu_;  ///< serializes mutating requests
  ThreadPool readers_;    ///< fans WHAT_IF_BATCH candidates
  /// Try-held around parallel_for: a batch that finds the pool busy
  /// probes inline on its connection thread instead of queueing.
  std::mutex readers_mu_;
  /// One ProbeScratch per reader-pool slot (readers_.size() + 1 entries;
  /// the extra slot is the single-worker inline path).  Only the
  /// readers_mu_ holder fans over the pool, so slots are never contended.
  std::vector<engine::ProbeScratch> reader_scratch_;
  /// Warm scratches for batches probing inline on their connection thread
  /// (the readers_mu_ try-lock miss path).
  engine::ProbeScratchPool conn_scratch_;
  std::atomic<bool> stop_{false};
  std::mutex conn_mu_;
  std::vector<Conn> conns_;
};

}  // namespace gmfnet::rpc
