// gmfnetd: the operator daemon serving one AnalysisEngine over the
// rpc/protocol wire format (Unix-domain or loopback TCP socket).
//
// Concurrency model — the PR 3 engine contract, made observable from
// outside the process:
//
//  * Mutating requests (ADMIT, REMOVE, SAVE_CHECKPOINT, RESTORE) serialize
//    through one writer mutex; each handler thread becomes "the writer
//    thread" for the duration of its mutation.  After every committed
//    mutation the engine's published snapshot is fresh (ADMIT commits via
//    try_admit, REMOVE re-evaluates immediately), so the daemon upholds
//    the invariant that published() is never stale.
//
//  * WHAT_IF_BATCH takes no lock at all: it loads the engine's published
//    EngineSnapshot and fans the candidates over a reader thread pool
//    (EngineSnapshot::what_if — the RCU read path).  Concurrent batches
//    from any number of connections never block a writer performing
//    admissions, and vice versa.
//
//  * RESTORE swaps the whole engine behind an atomic shared_ptr: readers
//    that loaded the old engine finish their probes against its (still
//    immutable) snapshots, later requests see the restored world.
//
// One thread per connection; requests on one connection are answered in
// order.  A malformed frame closes that connection (the stream can no
// longer be trusted) without disturbing the daemon or other connections.
//
// Robustness contract — no peer can pin daemon resources indefinitely:
//
//  * Deadline I/O.  Every per-connection send/recv runs under
//    io_timeout_ms; a peer that starts a frame and stalls (slow-loris) is
//    sent a best-effort ERROR frame and disconnected when the deadline
//    expires.  A peer idle between requests past idle_timeout_ms is
//    likewise disconnected.
//
//  * Connection cap.  At most max_connections concurrent connections;
//    when a new one arrives at the cap, the connection idle the longest
//    is shed to make room (operator tooling reconnects; a leaked
//    connection must not starve the daemon).
//
//  * Accept resilience.  Transient accept failures (EMFILE/ENFILE fd
//    exhaustion, backlog aborts) back the accept loop off with a capped
//    exponential delay instead of killing the listener.
//
//  * Graceful drain.  request_drain() (SIGTERM in gmfnetd) stops
//    accepting, lets in-flight requests finish up to drain_timeout_ms,
//    force-closes stragglers, then — like every serve() exit when
//    checkpoint_path is set — writes a final crash-safe checkpoint.
//
//  * Crash-safe persistence.  Auto-checkpoints (every checkpoint_every
//    committed mutations) and the final checkpoint go through
//    io::AtomicFileWriter with rotation: the newest valid checkpoint is
//    always recoverable at checkpoint_path or checkpoint_path + ".prev",
//    no matter when the process dies.
//
// Replication (rpc/replication.hpp has the full protocol story):
//
//  * A primary stamps every committed mutation with (epoch, commit_seq),
//    journals it as a pre-encoded DELTA frame, and streams the journal to
//    SUBSCRIBE connections (each on its ordinary connection thread).  A
//    subscriber whose position the bounded journal cannot cover gets a
//    full checkpoint (SYNC_FULL) first.
//
//  * A replica (cfg.replica_of set) runs a ReplicationClient that applies
//    those frames under the same writer mutex as local mutations would
//    use, keeping published() fresh after every applied delta — replicas
//    serve WHAT_IF_BATCH / STATS exactly like a primary serves them.
//    Mutations are refused with NOT_PRIMARY (carrying the upstream's
//    address).
//
//  * PROMOTE turns a replica into a primary and bumps the epoch above
//    any epoch it has ever seen; an ex-primary that observes a subscriber
//    from a higher epoch fences itself (mutations refused) — two daemons
//    can never both commit on the same epoch.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/analysis_engine.hpp"
#include "rpc/protocol.hpp"
#include "rpc/replication.hpp"
#include "rpc/transport.hpp"
#include "util/thread_pool.hpp"

namespace gmfnet::rpc {

struct ServerConfig {
  /// Non-empty: listen on this Unix-domain socket path.  Empty: listen on
  /// tcp_host:tcp_port.
  std::string unix_path;
  std::string tcp_host = "127.0.0.1";
  std::uint16_t tcp_port = 0;  ///< 0 = ephemeral (read back via tcp_port())
  std::size_t reader_threads = 0;  ///< what-if pool size (0 = hardware)
  /// Must equal the options the engine was built with; RESTORE rebuilds
  /// the engine under these (the checkpoint's option fingerprint is
  /// validated against them).
  core::HolisticOptions engine_opts;

  /// Whole-operation deadline for each per-connection send/recv
  /// (kNoTimeout = never): a peer stalled mid-frame is disconnected when
  /// it expires.
  int io_timeout_ms = 30'000;
  /// Allowance for a connection sitting idle between requests
  /// (kNoTimeout = keep idle connections forever).
  int idle_timeout_ms = 120'000;
  /// Max concurrent connections (0 = unlimited); at the cap the
  /// oldest-idle connection is shed to admit the new one.
  std::size_t max_connections = 1024;
  /// How long request_drain() waits for in-flight requests before
  /// force-closing their connections.
  int drain_timeout_ms = 5'000;
  /// Non-empty: serve() exits (and auto-checkpoints, see below) write the
  /// engine state here via io::AtomicFileWriter with .prev rotation.
  std::string checkpoint_path;
  /// With checkpoint_path: also checkpoint after every N committed
  /// mutations (0 = only the final checkpoint).
  std::size_t checkpoint_every = 0;

  // ----------------------------------------------------------- replication --
  /// Non-empty ("unix:PATH" or "HOST:PORT"): start as a replica of that
  /// primary.  Empty: start as a primary.
  std::string replica_of;
  /// Primary: DELTA frames the in-memory journal retains.  A replica
  /// that falls further behind recovers via full sync instead.
  std::size_t journal_capacity = 1024;
  /// Replication-link deadlines and reconnect backoff (replica side).
  int repl_connect_timeout_ms = 5'000;
  int repl_io_timeout_ms = 30'000;
  int repl_backoff_initial_ms = 20;
  int repl_backoff_max_ms = 2'000;
  std::uint64_t repl_backoff_seed = 0;  ///< 0 = derive from the clock
  /// Non-null: installed on the replication thread, so chaos tests can
  /// storm the replication link while operator links stay clean.  Must
  /// outlive the server.
  FaultInjector* repl_fault = nullptr;
};

class Server {
 public:
  /// Binds and listens (throws TransportError on failure); serve() then
  /// accepts connections.  The engine must have been constructed with
  /// `cfg.engine_opts`.
  Server(std::shared_ptr<engine::AnalysisEngine> engine, ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bound TCP port (meaningful when listening on TCP).
  [[nodiscard]] std::uint16_t tcp_port() const { return listener_.port(); }
  [[nodiscard]] const std::string& unix_path() const {
    return listener_.unix_path();
  }

  /// Accept-and-serve loop; returns after a SHUTDOWN request,
  /// request_stop(), or request_drain() once every connection handler has
  /// exited (drain gives in-flight requests cfg.drain_timeout_ms first).
  void serve();

  /// Asks a running serve() to wind down (safe from any thread).
  void request_stop();
  [[nodiscard]] bool stop_requested() const {
    return stop_.load(std::memory_order_acquire);
  }

  /// Graceful wind-down (safe from any thread, e.g. a signal watcher):
  /// stop accepting, drain in-flight requests up to cfg.drain_timeout_ms,
  /// write the final checkpoint, return from serve().
  void request_drain();
  [[nodiscard]] bool drain_requested() const {
    return drain_.load(std::memory_order_acquire);
  }

  /// The currently served engine (atomic shared_ptr load — safe from any
  /// thread; RESTORE swaps it).
  [[nodiscard]] std::shared_ptr<engine::AnalysisEngine> engine() const {
    return std::atomic_load(&engine_);
  }

  // Observability for tests and operators.
  [[nodiscard]] std::size_t live_connections() const;
  /// Connections dropped to make room at the max_connections cap.
  [[nodiscard]] std::size_t shed_connections() const {
    return shed_.load(std::memory_order_relaxed);
  }
  /// Connections dropped for a blown io/idle deadline.
  [[nodiscard]] std::size_t timed_out_connections() const {
    return timeouts_.load(std::memory_order_relaxed);
  }
  /// Committed mutations (ADMIT that admitted, REMOVE that removed,
  /// RESTORE) — the auto-checkpoint cadence counter.
  [[nodiscard]] std::size_t committed_mutations() const {
    return mutations_.load(std::memory_order_relaxed);
  }
  /// True when serve() wound down abnormally (persistent accept failure)
  /// rather than via SHUTDOWN / request_stop / request_drain — gmfnetd
  /// turns this into a distinct exit status.
  [[nodiscard]] bool abnormal_stop() const {
    return abnormal_.load(std::memory_order_acquire);
  }

  // Replication observability (all safe from any thread).
  [[nodiscard]] Role role() const {
    return static_cast<Role>(role_.load(std::memory_order_acquire));
  }
  [[nodiscard]] bool fenced() const {
    return fenced_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t commit_seq() const {
    return commit_seq_.load(std::memory_order_acquire);
  }
  /// The replica's subscription loop, for tests that pause/inspect it
  /// (null on a primary).
  [[nodiscard]] ReplicationClient* replication_client() {
    return repl_.get();
  }
  /// Promotes this daemon to primary (idempotent on an unfenced primary):
  /// bumps the epoch above every epoch it has ever seen, restarts the
  /// journal at the current position, and stops the replication client.
  /// Returns the new epoch.
  std::uint64_t promote();

 private:
  struct Conn {
    std::thread thread;
    std::shared_ptr<Socket> sock;
    std::shared_ptr<std::atomic<bool>> done;
    /// Last request activity (steady-clock ms) — the shedding order key.
    std::shared_ptr<std::atomic<std::int64_t>> last_active;
  };

  void handle_connection(
      const std::shared_ptr<Socket>& sock,
      const std::shared_ptr<std::atomic<bool>>& done,
      const std::shared_ptr<std::atomic<std::int64_t>>& last_active);
  [[nodiscard]] Response handle(Request&& req);
  /// Dedicates a connection to a replica's delta stream (SUBSCRIBE);
  /// returns when the stream ends (gap, peer gone, stop/drain).
  void serve_subscriber(
      Socket& sock, const SubscribeRequest& sub,
      const std::shared_ptr<std::atomic<std::int64_t>>& last_active);
  /// Journals one committed mutation as a DELTA frame and advances
  /// commit_seq_.  Caller holds writer_mu_ and has already applied the
  /// mutation to the engine.
  void journal_commit_locked(DeltaResponse&& delta);
  /// The NOT_PRIMARY answer for a mutation refused on this daemon.
  /// Caller holds writer_mu_ (it reads repl_).
  [[nodiscard]] NotPrimaryResponse not_primary_locked();
  /// Caller holds writer_mu_ (it reads repl_).
  [[nodiscard]] RoleResponse role_response_locked();
  /// Replica side: install a full checkpoint / apply one delta (the
  /// ReplicationClient hooks; both take writer_mu_ themselves).
  void replica_full_sync(const SyncFullResponse& full);
  [[nodiscard]] ApplyResult replica_apply(const DeltaResponse& delta);
  /// Joins finished handlers; with `all`, shuts every live socket down
  /// first and joins them all (serve-exit path).
  void reap_connections(bool all);
  /// At the connection cap: shuts down the oldest-idle connection.
  void shed_oldest_idle();
  /// Counts a committed mutation and auto-checkpoints on cadence.
  /// Caller holds writer_mu_.
  void note_mutation_locked();
  /// Atomic (temp + fsync + rename + dir fsync, with .prev rotation)
  /// checkpoint to cfg_.checkpoint_path.  Caller holds writer_mu_.
  void write_checkpoint_locked();

  ServerConfig cfg_;
  Listener listener_;
  /// Accessed only via std::atomic_load / std::atomic_store (see
  /// engine/analysis_engine.hpp on why the free functions, not
  /// std::atomic<shared_ptr>).
  std::shared_ptr<engine::AnalysisEngine> engine_;
  std::mutex writer_mu_;  ///< serializes mutating requests
  ThreadPool readers_;    ///< fans WHAT_IF_BATCH candidates
  /// Try-held around parallel_for: a batch that finds the pool busy
  /// probes inline on its connection thread instead of queueing.
  std::mutex readers_mu_;
  /// One ProbeScratch per reader-pool slot (readers_.size() + 1 entries;
  /// the extra slot is the single-worker inline path).  Only the
  /// readers_mu_ holder fans over the pool, so slots are never contended.
  std::vector<engine::ProbeScratch> reader_scratch_;
  /// Warm scratches for batches probing inline on their connection thread
  /// (the readers_mu_ try-lock miss path).
  engine::ProbeScratchPool conn_scratch_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> drain_{false};
  std::atomic<bool> abnormal_{false};
  std::atomic<std::size_t> shed_{0};
  std::atomic<std::size_t> timeouts_{0};
  std::atomic<std::size_t> mutations_{0};
  mutable std::mutex conn_mu_;
  std::vector<Conn> conns_;

  // ----------------------------------------------------------- replication --
  /// Stored as the underlying integer so handlers can read it lock-free;
  /// transitions (promote, fence) happen under writer_mu_.
  std::atomic<std::uint8_t> role_;
  std::atomic<bool> fenced_{false};
  std::atomic<std::uint64_t> epoch_;
  std::atomic<std::uint64_t> commit_seq_{0};
  /// Highest epoch ever seen on a peer (subscribers, upstream syncs) —
  /// promote() must clear it, so a promoted daemon outranks everyone it
  /// has ever talked to.
  std::atomic<std::uint64_t> peer_epoch_{0};
  /// This process's own history token (random per construction): journal
  /// catch-up is only offered to replicas whose position carries it.
  std::uint64_t history_token_;
  /// Replica: the history token of the primary it last synced from.
  std::atomic<std::uint64_t> upstream_history_{0};
  ReplicationLog journal_;
  /// Live SUBSCRIBE streams (observability).
  std::atomic<std::uint64_t> subscribers_{0};
  /// Guarded by writer_mu_ (created in the ctor, moved out by promote()).
  std::unique_ptr<ReplicationClient> repl_;
  std::chrono::steady_clock::time_point started_;
};

}  // namespace gmfnet::rpc
