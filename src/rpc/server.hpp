// gmfnetd: the operator daemon serving one AnalysisEngine over the
// rpc/protocol wire format (Unix-domain or loopback TCP socket).
//
// Concurrency model — an epoll reactor in front of the PR 3 engine
// contract:
//
//  * One reactor thread (the serve() caller) owns the listener, an epoll
//    set and every connection's state machine: non-blocking reads feed an
//    incremental frame decoder, responses accumulate in per-connection
//    write buffers flushed as the socket allows (EPOLLOUT only while a
//    partial write is pending), and the PR 7 io/idle deadlines are timer-
//    wheel entries instead of per-thread blocking polls.  One thread
//    services hundreds of connections.
//
//  * Clients may PIPELINE: many request frames may be in flight on one
//    connection before the first response arrives.  Responses are always
//    delivered in request order per connection — completions that finish
//    out of order are buffered until the contiguous prefix is ready.
//
//  * WHAT_IF_BATCH takes no lock at all: probes run against the engine's
//    published EngineSnapshot (the RCU read path), so they never block a
//    writer performing admissions, and vice versa.  Small batches (<= 2
//    candidates — the dominant operator pattern) probe inline on the
//    reactor thread, where a microsecond domain probe is cheaper than a
//    pool hand-off and the response joins the current write batch; fat
//    batches fan their candidates over a reader thread pool.  A request
//    with verdict_only set gets lean responses — the admission verdict
//    and summary fields without the O(world) per-flow payload, whose
//    serialization would otherwise dwarf the probe itself.
//
//  * Mutating requests flow through ONE mutation worker thread.  The
//    worker drains its queue in arrival order and COALESCES adjacent
//    ADMIT / REMOVE / ADMIT_BATCH frames that queued up while the
//    previous commit was in flight into a single engine commit group
//    (AnalysisEngine::begin_batch / try_admit_lean / end_batch): one
//    snapshot publish and one replication DELTA frame per group instead
//    of one per mutation.  A group of one uses the exact classic path.
//    Non-coalescable mutations (RESTORE, SAVE_CHECKPOINT, PROMOTE, ROLE,
//    REPOINT, SUBSCRIBE setup, SHUTDOWN) are barriers: they split groups
//    and execute alone.  All of it under the same writer mutex the
//    replication hooks use, so the engine still sees exactly one writer.
//
//  * RESTORE swaps the whole engine behind an atomic shared_ptr: readers
//    that loaded the old engine finish their probes against its (still
//    immutable) snapshots, later requests see the restored world.
//
// A malformed frame closes that connection (the stream can no longer be
// trusted) without disturbing the daemon or other connections.
//
// Robustness contract — no peer can pin daemon resources indefinitely:
//
//  * Deadline I/O.  A peer that starts a frame and stalls (slow-loris),
//    or stops reading while responses are pending, is sent a best-effort
//    ERROR frame and disconnected when io_timeout_ms expires.  A peer
//    idle between requests past idle_timeout_ms is likewise disconnected.
//    Deadlines are wheel entries: arming/cancelling is O(1) and expiry is
//    checked once per reactor tick.
//
//  * Connection cap.  At most max_connections concurrent connections;
//    when a new one arrives at the cap, the connection idle the longest
//    is shed to make room (operator tooling reconnects; a leaked
//    connection must not starve the daemon).
//
//  * Accept resilience.  Transient accept failures (EMFILE/ENFILE fd
//    exhaustion, backlog aborts) back the accept loop off with a capped
//    exponential delay instead of killing the listener.
//
//  * Graceful drain.  request_drain() (SIGTERM in gmfnetd) stops
//    accepting, stops reading new frames, lets dispatched requests finish
//    and their responses flush up to drain_timeout_ms, force-closes
//    stragglers, then — like every serve() exit when checkpoint_path is
//    set — writes a final crash-safe checkpoint.
//
//  * Crash-safe persistence.  Auto-checkpoints (every checkpoint_every
//    committed mutations) and the final checkpoint go through
//    io::AtomicFileWriter with rotation: the newest valid checkpoint is
//    always recoverable at checkpoint_path or checkpoint_path + ".prev",
//    no matter when the process dies.
//
// Replication (rpc/replication.hpp has the full protocol story):
//
//  * A primary stamps every committed mutation (or coalesced group, as
//    one kBatch delta) with (epoch, commit_seq), journals it as a
//    pre-encoded DELTA frame, and streams the journal to SUBSCRIBE
//    connections.  Subscriber streams are reactor-managed long-lived
//    writers: the reactor pumps journal frames into their write buffers
//    (bounded — a slow replica pauses its own stream, never the daemon)
//    as commits land.  A subscriber whose position the bounded journal
//    cannot cover gets a full checkpoint (SYNC_FULL) first.
//
//  * A replica (cfg.replica_of set) runs a ReplicationClient that applies
//    those frames under the same writer mutex as local mutations would
//    use, keeping published() fresh after every applied delta — replicas
//    serve WHAT_IF_BATCH / STATS exactly like a primary serves them.
//    Mutations are refused with NOT_PRIMARY (carrying the upstream's
//    address).
//
//  * PROMOTE turns a replica into a primary and bumps the epoch above
//    any epoch it has ever seen; an ex-primary that observes a subscriber
//    from a higher epoch fences itself (mutations refused) — two daemons
//    can never both commit on the same epoch.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/analysis_engine.hpp"
#include "rpc/protocol.hpp"
#include "rpc/replication.hpp"
#include "rpc/timer_wheel.hpp"
#include "rpc/transport.hpp"
#include "util/thread_pool.hpp"

namespace gmfnet::rpc {

struct ServerConfig {
  /// Non-empty: listen on this Unix-domain socket path.  Empty: listen on
  /// tcp_host:tcp_port.
  std::string unix_path;
  std::string tcp_host = "127.0.0.1";
  std::uint16_t tcp_port = 0;  ///< 0 = ephemeral (read back via tcp_port())
  std::size_t reader_threads = 0;  ///< what-if pool size (0 = hardware)
  /// Must equal the options the engine was built with; RESTORE rebuilds
  /// the engine under these (the checkpoint's option fingerprint is
  /// validated against them).
  core::HolisticOptions engine_opts;

  /// Whole-operation deadline for a peer stalled mid-frame or not reading
  /// its responses (kNoTimeout = never).
  int io_timeout_ms = 30'000;
  /// Allowance for a connection sitting idle between requests
  /// (kNoTimeout = keep idle connections forever).
  int idle_timeout_ms = 120'000;
  /// Max concurrent connections (0 = unlimited); at the cap the
  /// oldest-idle connection is shed to admit the new one.
  std::size_t max_connections = 1024;
  /// How long request_drain() waits for in-flight requests before
  /// force-closing their connections.
  int drain_timeout_ms = 5'000;
  /// Non-empty: serve() exits (and auto-checkpoints, see below) write the
  /// engine state here via io::AtomicFileWriter with .prev rotation.
  std::string checkpoint_path;
  /// With checkpoint_path: also checkpoint after every N committed
  /// mutations (0 = only the final checkpoint).
  std::size_t checkpoint_every = 0;
  /// Frames one connection may have in flight (decoded, response not yet
  /// flushed) before the reactor stops reading from it until the pipeline
  /// drains (backpressure, not an error).
  std::size_t max_pipeline = 1024;

  // ----------------------------------------------------------- replication --
  /// Non-empty ("unix:PATH" or "HOST:PORT"): start as a replica of that
  /// primary.  Empty: start as a primary.
  std::string replica_of;
  /// Primary: DELTA frames the in-memory journal retains.  A replica
  /// that falls further behind recovers via full sync instead.
  std::size_t journal_capacity = 1024;
  /// Replication-link deadlines and reconnect backoff (replica side).
  int repl_connect_timeout_ms = 5'000;
  int repl_io_timeout_ms = 30'000;
  int repl_backoff_initial_ms = 20;
  int repl_backoff_max_ms = 2'000;
  std::uint64_t repl_backoff_seed = 0;  ///< 0 = derive from the clock
  /// Non-null: installed on the replication thread, so chaos tests can
  /// storm the replication link while operator links stay clean.  Must
  /// outlive the server.
  FaultInjector* repl_fault = nullptr;
};

class Server {
 public:
  /// Binds and listens (throws TransportError on failure); serve() then
  /// accepts connections.  The engine must have been constructed with
  /// `cfg.engine_opts`.
  Server(std::shared_ptr<engine::AnalysisEngine> engine, ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bound TCP port (meaningful when listening on TCP).
  [[nodiscard]] std::uint16_t tcp_port() const { return listener_.port(); }
  [[nodiscard]] const std::string& unix_path() const {
    return listener_.unix_path();
  }

  /// The reactor loop; returns after a SHUTDOWN request, request_stop(),
  /// or request_drain() once every connection has wound down (drain gives
  /// in-flight requests cfg.drain_timeout_ms first).
  void serve();

  /// Asks a running serve() to wind down (safe from any thread).
  void request_stop();
  [[nodiscard]] bool stop_requested() const {
    return stop_.load(std::memory_order_acquire);
  }

  /// Graceful wind-down (safe from any thread, e.g. a signal watcher):
  /// stop accepting, drain in-flight requests up to cfg.drain_timeout_ms,
  /// write the final checkpoint, return from serve().
  void request_drain();
  [[nodiscard]] bool drain_requested() const {
    return drain_.load(std::memory_order_acquire);
  }

  /// The currently served engine (atomic shared_ptr load — safe from any
  /// thread; RESTORE swaps it).
  [[nodiscard]] std::shared_ptr<engine::AnalysisEngine> engine() const {
    return std::atomic_load(&engine_);
  }

  // Observability for tests and operators.
  [[nodiscard]] std::size_t live_connections() const {
    return active_conns_.load(std::memory_order_acquire);
  }
  /// Connections dropped to make room at the max_connections cap.
  [[nodiscard]] std::size_t shed_connections() const {
    return shed_.load(std::memory_order_relaxed);
  }
  /// Connections dropped for a blown io/idle deadline.
  [[nodiscard]] std::size_t timed_out_connections() const {
    return timeouts_.load(std::memory_order_relaxed);
  }
  /// Committed mutations (ADMIT that admitted, REMOVE that removed,
  /// RESTORE) — the auto-checkpoint cadence counter.
  [[nodiscard]] std::size_t committed_mutations() const {
    return mutations_.load(std::memory_order_relaxed);
  }
  /// Request frames decoded and dispatched over the server's lifetime.
  [[nodiscard]] std::uint64_t frames_served() const {
    return frames_served_.load(std::memory_order_relaxed);
  }
  /// Mutations folded into a coalesced commit group beyond each group's
  /// first (0 = every commit was solo).
  [[nodiscard]] std::uint64_t coalesced_commits() const {
    return coalesced_.load(std::memory_order_relaxed);
  }
  /// High-water mark of frames in flight on one connection (pipelining
  /// depth actually reached).
  [[nodiscard]] std::uint64_t pipelined_hwm() const {
    return pipelined_hwm_.load(std::memory_order_relaxed);
  }
  /// True when serve() wound down abnormally (persistent accept failure)
  /// rather than via SHUTDOWN / request_stop / request_drain — gmfnetd
  /// turns this into a distinct exit status.
  [[nodiscard]] bool abnormal_stop() const {
    return abnormal_.load(std::memory_order_acquire);
  }

  // Replication observability (all safe from any thread).
  [[nodiscard]] Role role() const {
    return static_cast<Role>(role_.load(std::memory_order_acquire));
  }
  [[nodiscard]] bool fenced() const {
    return fenced_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t commit_seq() const {
    return commit_seq_.load(std::memory_order_acquire);
  }
  /// The replica's subscription loop, for tests that pause/inspect it
  /// (null on a primary).
  [[nodiscard]] ReplicationClient* replication_client() {
    return repl_.get();
  }
  /// Promotes this daemon to primary (idempotent on an unfenced primary):
  /// bumps the epoch above every epoch it has ever seen, restarts the
  /// journal at the current position, and stops the replication client.
  /// Returns the new epoch.
  std::uint64_t promote();

 private:
  /// One connection's reactor state machine.  Owned and touched by the
  /// reactor thread only; other threads reach a connection exclusively by
  /// posting a Completion keyed by its id.
  struct Conn {
    std::uint64_t id = 0;
    Socket sock;
    std::string in_buf;       ///< unparsed inbound bytes
    std::size_t in_off = 0;   ///< parse cursor into in_buf
    std::string out_buf;      ///< encoded responses awaiting the socket
    std::size_t out_off = 0;  ///< flush cursor into out_buf
    /// Pipelining bookkeeping: requests get per-connection sequence
    /// numbers at decode; completions buffer in `done` until the
    /// contiguous prefix starting at flush_seq is ready.
    std::uint64_t next_seq = 0;
    std::uint64_t flush_seq = 0;
    std::map<std::uint64_t, std::string> done;
    std::size_t inflight = 0;  ///< dispatched, response not yet in out_buf
    std::int64_t last_active_ms = 0;  ///< shedding order key
    bool reading = true;       ///< wants EPOLLIN
    bool want_write = false;   ///< wants EPOLLOUT (partial write pending)
    std::uint32_t ep_events = 0;     ///< events currently registered
    bool closing = false;      ///< flush out_buf, then close
    bool stop_when_flushed = false;  ///< SHUTDOWN acked: stop after flush
    bool subscriber = false;         ///< live delta stream
    bool sub_pending = false;        ///< SUBSCRIBE dispatched, not yet set up
    std::uint64_t sub_next = 0;      ///< next journal seq to stream
    /// Response sequence numbers that trigger an action the moment that
    /// response is appended to out_buf (kNoSeq = unarmed): stop the
    /// daemon (SHUTDOWN), close the connection (refused SUBSCRIBE), or
    /// enter subscriber stream mode (accepted SUBSCRIBE).
    static constexpr std::uint64_t kNoSeq = ~0ull;
    std::uint64_t stop_seq = kNoSeq;
    std::uint64_t close_seq = kNoSeq;
    std::uint64_t sub_seq = kNoSeq;
    std::uint64_t pending_sub_next = 0;
    enum class Deadline { kNone, kIdle, kIo } dl = Deadline::kNone;
  };

  /// A decoded mutation/barrier request queued for the mutation worker.
  struct PendingOp {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    Request req;
  };

  /// A finished response traveling back to the reactor thread.
  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    std::string frame;  ///< encoded Response
    bool stop_after = false;   ///< SHUTDOWN: request_stop once flushed
    bool close_after = false;  ///< refused SUBSCRIBE: close once flushed
    bool sub_start = false;    ///< accepted SUBSCRIBE: enter stream mode
    std::uint64_t sub_next = 0;
  };

  // ------------------------------------------------ reactor (serve thread) --
  void reactor_loop();
  void accept_ready(int& consecutive_failures, int& backoff_ms,
                    std::vector<std::string>& accept_errors);
  void add_conn(Socket sock);
  void close_conn(std::uint64_t id);
  void shed_oldest_idle();
  void on_readable(Conn& c);
  void parse_frames(Conn& c);
  void dispatch(Conn& c, Request&& req);
  void dispatch_what_if(std::uint64_t conn_id, std::uint64_t seq,
                        WhatIfBatchRequest&& req);
  [[nodiscard]] StatsResponse build_stats();
  /// Buffers a completed response for in-order flushing.  Appends to
  /// out_buf only: the caller owes one flush_out() per delivery batch, so
  /// responses that complete together leave in one send.
  void deliver(Conn& c, std::uint64_t seq, std::string frame);
  void flush_out(Conn& c);
  void pump_completions();
  void pump_subscribers();
  /// Queues a best-effort ERROR frame and puts the connection on the
  /// flush-then-close path with a short grace deadline.
  void error_close(Conn& c, const std::string& message);
  void update_deadline(Conn& c);
  /// Syncs the epoll registration to (reading, want_write).
  void update_epoll(Conn& c);
  void begin_drain();
  void handle_expired(std::uint64_t id);
  [[nodiscard]] bool pending_out(const Conn& c) const {
    return c.out_off < c.out_buf.size();
  }

  // --------------------------------------------- mutation worker (1 thread) --
  void mutation_loop();
  void exec_barrier(PendingOp&& op);
  void exec_group(std::vector<PendingOp>&& ops);
  void exec_subscribe(PendingOp&& op);
  void post_completion(Completion c);
  void wake_reactor();

  /// Journals one committed mutation as a DELTA frame and advances
  /// commit_seq_.  Caller holds writer_mu_ and has already applied the
  /// mutation to the engine.
  void journal_commit_locked(DeltaResponse&& delta);
  /// The NOT_PRIMARY answer for a mutation refused on this daemon.
  /// Caller holds writer_mu_ (it reads repl_).
  [[nodiscard]] NotPrimaryResponse not_primary_locked();
  /// Caller holds writer_mu_ (it reads repl_).
  [[nodiscard]] RoleResponse role_response_locked();
  /// Replica side: install a full checkpoint / apply one delta (the
  /// ReplicationClient hooks; both take writer_mu_ themselves).
  void replica_full_sync(const SyncFullResponse& full);
  [[nodiscard]] ApplyResult replica_apply(const DeltaResponse& delta);
  /// Counts a committed mutation and auto-checkpoints on cadence.
  /// Caller holds writer_mu_.
  void note_mutation_locked();
  /// Atomic (temp + fsync + rename + dir fsync, with .prev rotation)
  /// checkpoint to cfg_.checkpoint_path.  Caller holds writer_mu_.
  void write_checkpoint_locked();

  ServerConfig cfg_;
  Listener listener_;
  /// Accessed only via std::atomic_load / std::atomic_store (see
  /// engine/analysis_engine.hpp on why the free functions, not
  /// std::atomic<shared_ptr>).
  std::shared_ptr<engine::AnalysisEngine> engine_;
  std::mutex writer_mu_;  ///< serializes engine mutation (worker + repl hooks)

  // Cross-thread plumbing.  Declared before readers_ so worker tasks that
  // outlive the reactor loop still find them alive at destruction time.
  std::mutex comp_mu_;
  std::vector<Completion> comp_queue_;
  std::mutex mut_mu_;
  std::condition_variable mut_cv_;
  std::deque<PendingOp> mut_queue_;
  bool mut_stop_ = false;  ///< guarded by mut_mu_
  int wake_fd_ = -1;       ///< eventfd: workers → reactor

  ThreadPool readers_;  ///< fans WHAT_IF_BATCH candidates
  /// Warm per-probe scratches for reader tasks (internally synchronized).
  engine::ProbeScratchPool conn_scratch_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> drain_{false};
  std::atomic<bool> abnormal_{false};
  std::atomic<std::size_t> active_conns_{0};
  std::atomic<std::size_t> shed_{0};
  std::atomic<std::size_t> timeouts_{0};
  std::atomic<std::size_t> mutations_{0};
  std::atomic<std::uint64_t> frames_served_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> pipelined_hwm_{0};

  // Reactor-thread-only state (no locks: one owner).
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  /// Closed connections parked until the end of the loop iteration, so a
  /// Conn& on the call stack stays valid through a close.
  std::vector<std::unique_ptr<Conn>> dead_;
  std::uint64_t next_conn_id_ = 16;  ///< ids below 16 are epoll sentinels
  int epoll_fd_ = -1;
  TimerWheel wheel_{/*tick_ms=*/20};
  bool draining_ = false;
  std::chrono::steady_clock::time_point drain_deadline_{};

  // ----------------------------------------------------------- replication --
  /// Stored as the underlying integer so handlers can read it lock-free;
  /// transitions (promote, fence) happen under writer_mu_.
  std::atomic<std::uint8_t> role_;
  std::atomic<bool> fenced_{false};
  std::atomic<std::uint64_t> epoch_;
  std::atomic<std::uint64_t> commit_seq_{0};
  /// Highest epoch ever seen on a peer (subscribers, upstream syncs) —
  /// promote() must clear it, so a promoted daemon outranks everyone it
  /// has ever talked to.
  std::atomic<std::uint64_t> peer_epoch_{0};
  /// This process's own history token (random per construction): journal
  /// catch-up is only offered to replicas whose position carries it.
  std::uint64_t history_token_;
  /// Replica: the history token of the primary it last synced from.
  std::atomic<std::uint64_t> upstream_history_{0};
  ReplicationLog journal_;
  /// Live SUBSCRIBE streams (observability).
  std::atomic<std::uint64_t> subscribers_{0};
  /// Guarded by writer_mu_ (created in the ctor, moved out by promote()).
  std::unique_ptr<ReplicationClient> repl_;
  std::chrono::steady_clock::time_point started_;
};

}  // namespace gmfnet::rpc
