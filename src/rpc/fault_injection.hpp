// Fault injection for the RPC transport: a deterministic, seedable shim
// hooked into the transport's syscall wrappers (rpc/transport.cpp routes
// every recv/send through it when one is installed on the calling thread).
//
// The injector perturbs I/O the way a hostile network and a loaded kernel
// do — short reads/writes (the kernel is always allowed to transfer fewer
// bytes than asked), EINTR storms, scheduling delays, and mid-frame
// connection resets — without ever corrupting bytes that are delivered.
// Under it, the chaos soak (tests/test_rpc_chaos.cpp) proves the invariant
// the whole robustness layer exists for: every *delivered* verdict is
// bit-identical to an in-process mirror engine, no matter what the wire
// did in between.
//
// Installation is thread-local (ScopedFaultInjection): a test installs the
// injector on its client threads only, so the faults model a misbehaving
// peer/network as seen from one side while the daemon's own syscalls stay
// honest — exactly the deployment failure mode.  The injector itself is
// thread-safe (one instance may be shared across threads).
#pragma once

#include <atomic>
#include <cstdint>

namespace gmfnet::rpc {

/// Probabilities of each perturbation, checked independently per syscall.
/// All default to zero: an injector with a default profile is a no-op.
struct FaultProfile {
  std::uint64_t seed = 1;    ///< deterministic decision stream
  double short_io = 0.0;     ///< clamp a recv/send to a 1-byte transfer
  double eintr = 0.0;        ///< fail with EINTR (bursts capped, see .cpp)
  double delay = 0.0;        ///< sleep up to max_delay_us before the io
  int max_delay_us = 500;
  double reset = 0.0;        ///< kill the connection mid-io (both ways)
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultProfile profile);

  enum class Io { kPass, kShort, kEintr, kReset };

  /// One decision per attempted recv/send, with the delay (if any) to
  /// sleep first.  Thread-safe.
  struct Decision {
    Io io = Io::kPass;
    int delay_us = 0;
  };
  [[nodiscard]] Decision next();

  // Injection counters, for soak-coverage assertions ("the run actually
  // exercised every fault kind").
  [[nodiscard]] std::uint64_t ios() const { return ios_.load(); }
  [[nodiscard]] std::uint64_t shorts() const { return shorts_.load(); }
  [[nodiscard]] std::uint64_t eintrs() const { return eintrs_.load(); }
  [[nodiscard]] std::uint64_t delays() const { return delays_.load(); }
  [[nodiscard]] std::uint64_t resets() const { return resets_.load(); }

 private:
  FaultProfile profile_;
  std::atomic<std::uint64_t> state_;       // SplitMix64 walk — lock-free
  std::atomic<int> eintr_burst_{0};        // cap consecutive EINTRs
  std::atomic<std::uint64_t> ios_{0}, shorts_{0}, eintrs_{0}, delays_{0},
      resets_{0};
};

/// Installs `injector` on the current thread for the lifetime of the
/// object; transport syscalls on this thread consult it.  Nesting restores
/// the previous injector on destruction.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultInjector& injector);
  ~ScopedFaultInjection();
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

 private:
  FaultInjector* previous_;
};

/// The injector installed on the current thread, or nullptr.
[[nodiscard]] FaultInjector* current_fault_injector();

}  // namespace gmfnet::rpc
