#include "rpc/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace gmfnet::rpc {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t clock_seed() {
  return static_cast<std::uint64_t>(
      Clock::now().time_since_epoch().count());
}

}  // namespace

Client::Client(Socket sock, Endpoint endpoint, ClientConfig cfg)
    : sock_(std::move(sock)),
      endpoint_(std::move(endpoint)),
      cfg_(cfg),
      jitter_(cfg.backoff_seed != 0 ? cfg.backoff_seed : clock_seed()) {}

Client Client::connect_unix(const std::string& path, ClientConfig cfg) {
  return Client(rpc::connect_unix(path, cfg.connect_timeout_ms),
                Endpoint{path, {}, 0}, cfg);
}

Client Client::connect_tcp(const std::string& host, std::uint16_t port,
                           ClientConfig cfg) {
  return Client(rpc::connect_tcp(host, port, cfg.connect_timeout_ms),
                Endpoint{{}, host, port}, cfg);
}

void Client::ensure_connected() {
  if (sock_.valid()) return;
  sock_ = endpoint_.unix_path.empty()
              ? rpc::connect_tcp(endpoint_.host, endpoint_.port,
                                 cfg_.connect_timeout_ms)
              : rpc::connect_unix(endpoint_.unix_path,
                                  cfg_.connect_timeout_ms);
}

std::int64_t Client::backoff_delay_ms(const ClientConfig& cfg, int attempt,
                                      Rng& jitter) {
  const int shift = std::min(attempt, 20);  // 2^20 x initial >> any cap
  const std::int64_t uncapped =
      static_cast<std::int64_t>(cfg.backoff_initial_ms) << shift;
  const std::int64_t capped = std::min<std::int64_t>(
      uncapped, std::max(cfg.backoff_max_ms, cfg.backoff_initial_ms));
  // Jitter in [capped/2, capped]: spreads the reconnect stampede when many
  // clients lose the same daemon at the same instant.
  return capped / 2 +
         jitter.uniform_i64(
             0, std::max<std::int64_t>(capped - capped / 2, 0));
}

void Client::backoff_sleep(int attempt) {
  std::this_thread::sleep_for(
      std::chrono::milliseconds(backoff_delay_ms(cfg_, attempt, jitter_)));
}

template <typename Expected>
Expected Client::call_once(const Request& req) {
  // The request deadline spans the whole exchange: the send and the
  // response receive share one budget, so a daemon that accepts the
  // request but never answers cannot double the wait.
  const Clock::time_point started = Clock::now();
  const auto remaining = [&]() -> int {
    if (cfg_.request_timeout_ms < 0) return kNoTimeout;
    const auto spent = std::chrono::duration_cast<std::chrono::milliseconds>(
                           Clock::now() - started)
                           .count();
    return std::max<int>(
        0, cfg_.request_timeout_ms - static_cast<int>(spent));
  };
  sock_.set_send_timeout_ms(remaining());
  send_frame(sock_, encode_request(req));
  sock_.set_recv_timeout_ms(remaining());
  std::optional<std::string> frame = recv_frame(sock_);
  if (!frame) {
    throw TransportError("daemon closed the connection before responding");
  }
  Response resp = decode_response(*frame);
  if (auto* err = std::get_if<ErrorResponse>(&resp)) {
    throw RemoteError(err->message);
  }
  if (auto* np = std::get_if<NotPrimaryResponse>(&resp)) {
    throw NotPrimaryError(std::move(np->primary_addr), np->epoch);
  }
  if (auto* ok = std::get_if<Expected>(&resp)) {
    return std::move(*ok);
  }
  throw ProtocolError("unexpected response type for request");
}

template <typename Expected>
Expected Client::call(const Request& req, bool idempotent) {
  for (int attempt = 0;; ++attempt) {
    try {
      ensure_connected();
      return call_once<Expected>(req);
    } catch (const TransportError&) {
      // The socket is in an unknown mid-exchange state either way.
      sock_.close();
      if (!idempotent || attempt >= cfg_.max_retries) throw;
      ++retries_;
      backoff_sleep(attempt);
    }
  }
}

std::optional<core::HolisticResult> Client::admit(const gmf::Flow& flow) {
  return call<AdmitResponse>(AdmitRequest{flow}).result;
}

bool Client::remove(std::uint64_t index) {
  return call<RemoveResponse>(RemoveRequest{index}).removed;
}

AdmitBatchResponse Client::admit_batch(const std::vector<gmf::Flow>& flows) {
  return call<AdmitBatchResponse>(AdmitBatchRequest{flows});
}

void Client::submit(const Request& req) {
  try {
    ensure_connected();
    sock_.set_send_timeout_ms(cfg_.request_timeout_ms);
    send_frame(sock_, encode_request(req));
  } catch (const TransportError&) {
    // The pipeline tail is gone with the socket; nothing is collectable.
    sock_.close();
    pending_ = 0;
    throw;
  }
  ++pending_;
}

Response Client::collect() {
  if (pending_ == 0) {
    throw std::logic_error("collect: no pipelined request in flight");
  }
  std::optional<std::string> frame;
  try {
    sock_.set_recv_timeout_ms(cfg_.request_timeout_ms);
    frame = recv_frame(sock_);
  } catch (const TransportError&) {
    sock_.close();
    pending_ = 0;
    throw;
  }
  if (!frame) {
    sock_.close();
    pending_ = 0;
    throw TransportError("daemon closed the connection before responding");
  }
  --pending_;
  Response resp = decode_response(*frame);
  if (auto* err = std::get_if<ErrorResponse>(&resp)) {
    throw RemoteError(err->message);
  }
  if (auto* np = std::get_if<NotPrimaryResponse>(&resp)) {
    throw NotPrimaryError(std::move(np->primary_addr), np->epoch);
  }
  return resp;
}

std::vector<engine::WhatIfResult> Client::what_if_batch(
    const std::vector<gmf::Flow>& candidates) {
  return call<WhatIfBatchResponse>(WhatIfBatchRequest{candidates},
                                   /*idempotent=*/true)
      .results;
}

std::vector<engine::WhatIfResult> Client::what_if_verdicts(
    const std::vector<gmf::Flow>& candidates) {
  return call<WhatIfBatchResponse>(
             WhatIfBatchRequest{candidates, /*verdict_only=*/true},
             /*idempotent=*/true)
      .results;
}

engine::WhatIfResult Client::what_if(const gmf::Flow& candidate) {
  std::vector<engine::WhatIfResult> results = what_if_batch({candidate});
  if (results.size() != 1) {
    throw ProtocolError("WHAT_IF_BATCH response size mismatch");
  }
  return std::move(results.front());
}

StatsResponse Client::stats() {
  return call<StatsResponse>(StatsRequest{}, /*idempotent=*/true);
}

std::string Client::save_checkpoint() {
  return call<SaveCheckpointResponse>(SaveCheckpointRequest{}).checkpoint;
}

std::uint64_t Client::restore(const std::string& checkpoint) {
  return call<RestoreResponse>(RestoreRequest{checkpoint}).flows;
}

void Client::shutdown() {
  (void)call<ShutdownResponse>(ShutdownRequest{});
}

std::uint64_t Client::promote() {
  // Not blindly retried: promote is a mutation of cluster topology — a
  // transport failure leaves it unknown whether the epoch was bumped.
  return call<PromoteResponse>(PromoteRequest{}).epoch;
}

RoleResponse Client::role() {
  return call<RoleResponse>(RoleRequest{}, /*idempotent=*/true);
}

RoleResponse Client::repoint(const std::string& primary_addr) {
  return call<RoleResponse>(RepointRequest{primary_addr});
}

}  // namespace gmfnet::rpc
