#include "rpc/client.hpp"

#include <utility>

namespace gmfnet::rpc {

Client Client::connect_unix(const std::string& path) {
  return Client(rpc::connect_unix(path));
}

Client Client::connect_tcp(const std::string& host, std::uint16_t port) {
  return Client(rpc::connect_tcp(host, port));
}

template <typename Expected>
Expected Client::call(const Request& req) {
  send_frame(sock_, encode_request(req));
  std::optional<std::string> frame = recv_frame(sock_);
  if (!frame) {
    throw TransportError("daemon closed the connection before responding");
  }
  Response resp = decode_response(*frame);
  if (auto* err = std::get_if<ErrorResponse>(&resp)) {
    throw RemoteError(err->message);
  }
  if (auto* ok = std::get_if<Expected>(&resp)) {
    return std::move(*ok);
  }
  throw ProtocolError("unexpected response type for request");
}

std::optional<core::HolisticResult> Client::admit(const gmf::Flow& flow) {
  return call<AdmitResponse>(AdmitRequest{flow}).result;
}

bool Client::remove(std::uint64_t index) {
  return call<RemoveResponse>(RemoveRequest{index}).removed;
}

std::vector<engine::WhatIfResult> Client::what_if_batch(
    const std::vector<gmf::Flow>& candidates) {
  return call<WhatIfBatchResponse>(WhatIfBatchRequest{candidates}).results;
}

engine::WhatIfResult Client::what_if(const gmf::Flow& candidate) {
  std::vector<engine::WhatIfResult> results = what_if_batch({candidate});
  if (results.size() != 1) {
    throw ProtocolError("WHAT_IF_BATCH response size mismatch");
  }
  return std::move(results.front());
}

StatsResponse Client::stats() { return call<StatsResponse>(StatsRequest{}); }

std::string Client::save_checkpoint() {
  return call<SaveCheckpointResponse>(SaveCheckpointRequest{}).checkpoint;
}

std::uint64_t Client::restore(const std::string& checkpoint) {
  return call<RestoreResponse>(RestoreRequest{checkpoint}).flows;
}

void Client::shutdown() {
  (void)call<ShutdownResponse>(ShutdownRequest{});
}

}  // namespace gmfnet::rpc
