#include "rpc/transport.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <utility>

namespace gmfnet::rpc {

namespace {

[[nodiscard]] std::string errno_suffix() {
  return std::string(": ") + std::strerror(errno);
}

/// Retries EINTR around a syscall returning -1 on error.
template <typename Fn>
auto retry_eintr(Fn&& fn) {
  for (;;) {
    const auto r = fn();
    if (r >= 0 || errno != EINTR) return r;
  }
}

}  // namespace

TransportError::TransportError(const std::string& message)
    : std::runtime_error("rpc transport: " + message) {}

// ----------------------------------------------------------------- Socket --

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::send_all(std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = retry_eintr([&] {
      return ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    });
    if (n <= 0) throw TransportError("send failed" + errno_suffix());
    off += static_cast<std::size_t>(n);
  }
}

bool Socket::recv_exact(char* buf, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r =
        retry_eintr([&] { return ::recv(fd_, buf + off, n - off, 0); });
    if (r < 0) throw TransportError("recv failed" + errno_suffix());
    if (r == 0) {
      if (off == 0) return false;  // clean EOF at a message boundary
      throw TransportError("connection closed mid-frame");
    }
    off += static_cast<std::size_t>(r);
  }
  return true;
}

Socket connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof addr.sun_path) {
    throw TransportError("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw TransportError("socket failed" + errno_suffix());
  Socket s(fd);
  if (retry_eintr([&] {
        return ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                         sizeof addr);
      }) != 0) {
    throw TransportError("connect to " + path + " failed" + errno_suffix());
  }
  return s;
}

Socket connect_tcp(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw TransportError("bad IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw TransportError("socket failed" + errno_suffix());
  Socket s(fd);
  if (retry_eintr([&] {
        return ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                         sizeof addr);
      }) != 0) {
    throw TransportError("connect to " + host + ":" + std::to_string(port) +
                         " failed" + errno_suffix());
  }
  // One small frame per request/response: latency beats batching here.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return s;
}

// --------------------------------------------------------------- Listener --

Listener::~Listener() { close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_),
      port_(other.port_),
      unix_path_(std::move(other.unix_path_)) {
  other.fd_ = -1;
  other.unix_path_.clear();
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    unix_path_ = std::move(other.unix_path_);
    other.fd_ = -1;
    other.unix_path_.clear();
  }
  return *this;
}

Listener Listener::listen_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof addr.sun_path) {
    throw TransportError("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  Listener l;
  l.fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (l.fd_ < 0) throw TransportError("socket failed" + errno_suffix());
  ::unlink(path.c_str());  // a stale socket file from a dead daemon
  if (::bind(l.fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    throw TransportError("bind to " + path + " failed" + errno_suffix());
  }
  l.unix_path_ = path;
  if (::listen(l.fd_, SOMAXCONN) != 0) {
    throw TransportError("listen on " + path + " failed" + errno_suffix());
  }
  return l;
}

Listener Listener::listen_tcp(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw TransportError("bad IPv4 address: " + host);
  }
  Listener l;
  l.fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (l.fd_ < 0) throw TransportError("socket failed" + errno_suffix());
  const int one = 1;
  ::setsockopt(l.fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(l.fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    throw TransportError("bind to " + host + ":" + std::to_string(port) +
                         " failed" + errno_suffix());
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(l.fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    throw TransportError("getsockname failed" + errno_suffix());
  }
  l.port_ = ntohs(bound.sin_port);
  if (::listen(l.fd_, SOMAXCONN) != 0) {
    throw TransportError("listen failed" + errno_suffix());
  }
  return l;
}

Socket Listener::accept(int timeout_ms) {
  if (fd_ < 0) return Socket{};
  pollfd pfd{fd_, POLLIN, 0};
  const int pr = retry_eintr([&] { return ::poll(&pfd, 1, timeout_ms); });
  if (pr < 0) throw TransportError("poll failed" + errno_suffix());
  if (pr == 0) return Socket{};  // timeout
  const int cfd =
      static_cast<int>(retry_eintr([&] { return ::accept(fd_, nullptr, nullptr); }));
  if (cfd < 0) {
    // The listener may have been closed out from under us during shutdown.
    if (errno == EBADF || errno == EINVAL || errno == ECONNABORTED) {
      return Socket{};
    }
    throw TransportError("accept failed" + errno_suffix());
  }
  return Socket(cfd);
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!unix_path_.empty()) {
    ::unlink(unix_path_.c_str());
    unix_path_.clear();
  }
}

// ----------------------------------------------------------------- frames --

void send_frame(Socket& s, std::string_view frame) { s.send_all(frame); }

std::optional<std::string> recv_frame(Socket& s) {
  std::string frame(kHeaderSize, '\0');
  if (!s.recv_exact(frame.data(), kHeaderSize)) return std::nullopt;
  const FrameHeader h = decode_frame_header(frame);
  frame.resize(kHeaderSize + static_cast<std::size_t>(h.body_len));
  if (!s.recv_exact(frame.data() + kHeaderSize,
                    static_cast<std::size_t>(h.body_len))) {
    throw TransportError("connection closed mid-frame");
  }
  verify_body(h, std::string_view(frame).substr(kHeaderSize));
  return frame;
}

}  // namespace gmfnet::rpc
