#include "rpc/transport.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <thread>
#include <utility>

#include "rpc/fault_injection.hpp"

namespace gmfnet::rpc {

namespace {

using Clock = std::chrono::steady_clock;

[[nodiscard]] std::string errno_suffix() {
  return std::string(": ") + std::strerror(errno);
}

/// Retries EINTR around a syscall returning -1 on error.
template <typename Fn>
auto retry_eintr(Fn&& fn) {
  for (;;) {
    const auto r = fn();
    if (r >= 0 || errno != EINTR) return r;
  }
}

/// Absolute deadline for a whole operation; kNoTimeout = none.
struct Deadline {
  explicit Deadline(int timeout_ms)
      : has_deadline(timeout_ms >= 0),
        at(Clock::now() + std::chrono::milliseconds(
                              timeout_ms >= 0 ? timeout_ms : 0)) {}

  /// Remaining milliseconds for poll(): -1 when unbounded, >= 0 otherwise
  /// (0 once expired).
  [[nodiscard]] int remaining_ms() const {
    if (!has_deadline) return -1;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          at - Clock::now())
                          .count();
    return left > 0 ? static_cast<int>(left) : 0;
  }
  [[nodiscard]] bool expired() const {
    return has_deadline && Clock::now() >= at;
  }

  bool has_deadline;
  Clock::time_point at;
};

/// Waits for `events` on `fd` until the deadline.  Returns true when
/// ready, false on deadline expiry; throws TransportError on poll failure.
bool wait_for(int fd, short events, const Deadline& deadline,
              const char* what) {
  for (;;) {
    pollfd pfd{fd, events, 0};
    const int pr = ::poll(&pfd, 1, deadline.remaining_ms());
    if (pr > 0) return true;  // ready (or error/hup — the io will report it)
    if (pr == 0) return false;
    if (errno != EINTR) {
      throw TransportError(std::string(what) + " poll failed" +
                               errno_suffix(),
                           errno);
    }
    if (deadline.expired()) return false;
  }
}

/// The transport's only raw data syscalls, routed through the
/// thread-local fault injector (no-ops without one): short transfers,
/// EINTR, injected scheduling delays, and mid-operation resets all enter
/// here, exercising the very loops production traffic runs.
ssize_t faulty_recv(int fd, char* buf, std::size_t n) {
  if (FaultInjector* fi = current_fault_injector()) {
    const FaultInjector::Decision d = fi->next();
    if (d.delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(d.delay_us));
    }
    switch (d.io) {
      case FaultInjector::Io::kEintr:
        errno = EINTR;
        return -1;
      case FaultInjector::Io::kReset:
        ::shutdown(fd, SHUT_RDWR);
        break;  // fall through to the syscall: it observes the dead socket
      case FaultInjector::Io::kShort:
        n = 1;
        break;
      case FaultInjector::Io::kPass:
        break;
    }
  }
  return ::recv(fd, buf, n, 0);
}

ssize_t faulty_send(int fd, const char* buf, std::size_t n) {
  if (FaultInjector* fi = current_fault_injector()) {
    const FaultInjector::Decision d = fi->next();
    if (d.delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(d.delay_us));
    }
    switch (d.io) {
      case FaultInjector::Io::kEintr:
        errno = EINTR;
        return -1;
      case FaultInjector::Io::kReset:
        ::shutdown(fd, SHUT_RDWR);
        break;
      case FaultInjector::Io::kShort:
        n = 1;
        break;
      case FaultInjector::Io::kPass:
        break;
    }
  }
  return ::send(fd, buf, n, MSG_NOSIGNAL);
}

/// connect(2) with an optional deadline: non-blocking connect + poll +
/// SO_ERROR, restored to blocking on success.
void connect_with_timeout(int fd, const sockaddr* addr, socklen_t len,
                          int timeout_ms, const std::string& where) {
  if (timeout_ms < 0) {
    if (retry_eintr([&] { return ::connect(fd, addr, len); }) != 0) {
      throw TransportError("connect to " + where + " failed" + errno_suffix(),
                           errno);
    }
    return;
  }
  set_nonblocking(fd, true);
  if (::connect(fd, addr, len) != 0) {
    if (errno != EINPROGRESS && errno != EINTR) {
      throw TransportError("connect to " + where + " failed" + errno_suffix(),
                           errno);
    }
    const Deadline deadline(timeout_ms);
    if (!wait_for(fd, POLLOUT, deadline, "connect")) {
      throw TimeoutError("connect to " + where + " timed out after " +
                         std::to_string(timeout_ms) + "ms");
    }
    int err = 0;
    socklen_t err_len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0) {
      throw TransportError("getsockopt failed" + errno_suffix(), errno);
    }
    if (err != 0) {
      errno = err;
      throw TransportError("connect to " + where + " failed" + errno_suffix(),
                           err);
    }
  }
  set_nonblocking(fd, false);
}

}  // namespace

void set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw TransportError("fcntl failed" + errno_suffix(), errno);
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, want) < 0) {
    throw TransportError("fcntl failed" + errno_suffix(), errno);
  }
}

TransportError::TransportError(const std::string& message, int err)
    : std::runtime_error("rpc transport: " + message), errno_value_(err) {}

TimeoutError::TimeoutError(const std::string& message)
    : TransportError(message, ETIMEDOUT) {}

// ----------------------------------------------------------------- Socket --

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_),
      recv_timeout_ms_(other.recv_timeout_ms_),
      send_timeout_ms_(other.send_timeout_ms_) {
  other.fd_ = -1;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    recv_timeout_ms_ = other.recv_timeout_ms_;
    send_timeout_ms_ = other.send_timeout_ms_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::send_all(std::string_view data) {
  const Deadline deadline(send_timeout_ms_);
  std::size_t off = 0;
  while (off < data.size()) {
    if (deadline.has_deadline &&
        !wait_for(fd_, POLLOUT, deadline, "send")) {
      throw TimeoutError("send timed out after " +
                         std::to_string(send_timeout_ms_) + "ms");
    }
    const ssize_t n = retry_eintr([&] {
      return faulty_send(fd_, data.data() + off, data.size() - off);
    });
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    if (n <= 0) throw TransportError("send failed" + errno_suffix(), errno);
    off += static_cast<std::size_t>(n);
  }
}

bool Socket::recv_exact(char* buf, std::size_t n) {
  const Deadline deadline(recv_timeout_ms_);
  std::size_t off = 0;
  while (off < n) {
    if (deadline.has_deadline &&
        !wait_for(fd_, POLLIN, deadline, "recv")) {
      throw TimeoutError("recv timed out after " +
                         std::to_string(recv_timeout_ms_) + "ms" +
                         (off == 0 ? "" : " (mid-frame)"));
    }
    const ssize_t r =
        retry_eintr([&] { return faulty_recv(fd_, buf + off, n - off); });
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    if (r < 0) throw TransportError("recv failed" + errno_suffix(), errno);
    if (r == 0) {
      if (off == 0) return false;  // clean EOF at a message boundary
      throw TransportError("connection closed mid-frame");
    }
    off += static_cast<std::size_t>(r);
  }
  return true;
}

bool Socket::wait_readable(int timeout_ms) {
  const Deadline deadline(timeout_ms);
  return wait_for(fd_, POLLIN, deadline, "wait_readable");
}

ssize_t Socket::recv_some(char* buf, std::size_t n) {
  const ssize_t r = faulty_recv(fd_, buf, n);
  if (r >= 0) return r;
  // EINTR maps to "try again later" too: the reactor re-arms the fd
  // instead of spinning on the syscall.
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return -1;
  throw TransportError("recv failed" + errno_suffix(), errno);
}

ssize_t Socket::send_some(const char* buf, std::size_t n) {
  const ssize_t r = faulty_send(fd_, buf, n);
  if (r >= 0) return r;
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return -1;
  throw TransportError("send failed" + errno_suffix(), errno);
}

Socket connect_unix(const std::string& path, int timeout_ms) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof addr.sun_path) {
    throw TransportError("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw TransportError("socket failed" + errno_suffix(), errno);
  Socket s(fd);
  connect_with_timeout(fd, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof addr, timeout_ms, path);
  return s;
}

Socket connect_tcp(const std::string& host, std::uint16_t port,
                   int timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw TransportError("bad IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw TransportError("socket failed" + errno_suffix(), errno);
  Socket s(fd);
  connect_with_timeout(fd, reinterpret_cast<const sockaddr*>(&addr),
                       sizeof addr, timeout_ms,
                       host + ":" + std::to_string(port));
  // One small frame per request/response: latency beats batching here.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return s;
}

// --------------------------------------------------------------- Listener --

Listener::~Listener() { close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_),
      port_(other.port_),
      unix_path_(std::move(other.unix_path_)) {
  other.fd_ = -1;
  other.unix_path_.clear();
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    unix_path_ = std::move(other.unix_path_);
    other.fd_ = -1;
    other.unix_path_.clear();
  }
  return *this;
}

Listener Listener::listen_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof addr.sun_path) {
    throw TransportError("unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  Listener l;
  l.fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (l.fd_ < 0) throw TransportError("socket failed" + errno_suffix(), errno);
  if (::access(path.c_str(), F_OK) == 0) {
    // A leftover socket file: connect-probe before touching it.  A
    // successful connect means a live daemon is serving the path — refuse
    // to steal it out from under it.  ECONNREFUSED (the SIGKILL'd-daemon
    // case: the file outlived its listener) marks it stale, reclaimable.
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
      const int rc = static_cast<int>(retry_eintr([&] {
        return ::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                         sizeof addr);
      }));
      const int probe_errno = errno;
      ::close(probe);
      if (rc == 0) {
        throw TransportError(
            "bind to " + path + " refused: a live daemon already serves it",
            EADDRINUSE);
      }
      if (probe_errno != ECONNREFUSED && probe_errno != ENOENT) {
        // Anything else (EACCES, ...) is not provably stale: leave the
        // file alone rather than risk unseating a healthy daemon.
        throw TransportError("bind to " + path +
                                 " refused: cannot probe existing socket: " +
                                 std::strerror(probe_errno),
                             probe_errno);
      }
    }
    ::unlink(path.c_str());  // stale socket file from a dead daemon
  }
  if (::bind(l.fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    throw TransportError("bind to " + path + " failed" + errno_suffix(),
                         errno);
  }
  l.unix_path_ = path;
  if (::listen(l.fd_, SOMAXCONN) != 0) {
    throw TransportError("listen on " + path + " failed" + errno_suffix(),
                         errno);
  }
  return l;
}

Listener Listener::listen_tcp(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw TransportError("bad IPv4 address: " + host);
  }
  Listener l;
  l.fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (l.fd_ < 0) throw TransportError("socket failed" + errno_suffix(), errno);
  const int one = 1;
  ::setsockopt(l.fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(l.fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    throw TransportError("bind to " + host + ":" + std::to_string(port) +
                             " failed" + errno_suffix(),
                         errno);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(l.fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    throw TransportError("getsockname failed" + errno_suffix(), errno);
  }
  l.port_ = ntohs(bound.sin_port);
  if (::listen(l.fd_, SOMAXCONN) != 0) {
    throw TransportError("listen failed" + errno_suffix(), errno);
  }
  return l;
}

Socket Listener::accept(int timeout_ms) {
  if (fd_ < 0) return Socket{};
  pollfd pfd{fd_, POLLIN, 0};
  const int pr = retry_eintr([&] { return ::poll(&pfd, 1, timeout_ms); });
  if (pr < 0) throw TransportError("poll failed" + errno_suffix(), errno);
  if (pr == 0) return Socket{};  // timeout
  const int cfd = static_cast<int>(
      retry_eintr([&] { return ::accept(fd_, nullptr, nullptr); }));
  if (cfd < 0) {
    // The listener may have been closed out from under us during shutdown.
    if (errno == EBADF || errno == EINVAL || errno == ECONNABORTED) {
      return Socket{};
    }
    throw TransportError("accept failed" + errno_suffix(), errno);
  }
  return Socket(cfd);
}

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!unix_path_.empty()) {
    ::unlink(unix_path_.c_str());
    unix_path_.clear();
  }
}

bool is_transient_accept_error(int err) {
  // EMFILE/ENFILE: fd exhaustion — clears when connections close, provided
  // the accept loop backs off instead of spinning.  ECONNABORTED: the peer
  // gave up while queued in the backlog.  EAGAIN/EINTR for completeness
  // (poll-gated accepts rarely see them).
  return err == EMFILE || err == ENFILE || err == ECONNABORTED ||
         err == EAGAIN || err == EWOULDBLOCK || err == EINTR ||
         err == ENOBUFS || err == ENOMEM;
}

// ----------------------------------------------------------------- frames --

void send_frame(Socket& s, std::string_view frame) { s.send_all(frame); }

std::optional<std::string> recv_frame(Socket& s) {
  std::string frame(kHeaderSize, '\0');
  if (!s.recv_exact(frame.data(), kHeaderSize)) return std::nullopt;
  const FrameHeader h = decode_frame_header(frame);
  frame.resize(kHeaderSize + static_cast<std::size_t>(h.body_len));
  if (!s.recv_exact(frame.data() + kHeaderSize,
                    static_cast<std::size_t>(h.body_len))) {
    throw TransportError("connection closed mid-frame");
  }
  verify_body(h, std::string_view(frame).substr(kHeaderSize));
  return frame;
}

FrameStatus recv_frame_idle(Socket& s, std::string& frame,
                            int idle_timeout_ms) {
  if (idle_timeout_ms >= 0 && !s.wait_readable(idle_timeout_ms)) {
    return FrameStatus::kIdle;
  }
  std::optional<std::string> f = recv_frame(s);
  if (!f) return FrameStatus::kEof;
  frame = std::move(*f);
  return FrameStatus::kFrame;
}

}  // namespace gmfnet::rpc
