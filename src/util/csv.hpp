// Minimal CSV emitter used by benches to dump figure/table data series.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace gmfnet {

/// Writes RFC-4180-ish CSV (quotes fields containing separators/quotes).
/// Rows are buffered; `save` writes the whole file at once so a crashed
/// bench never leaves a half-written artifact behind.
///
/// Shape-strict: `add` before the first `begin_row`, more values per row
/// than header columns, or rendering a row with fewer values than columns
/// all throw std::logic_error — a malformed series is a bench bug, never a
/// silently corrupt artifact.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// Starts a new row; values are appended with `add`.
  void begin_row();
  void add(const std::string& v);
  void add(const char* v);
  void add(double v);
  void add(std::int64_t v);
  void add(std::uint64_t v);
  void add(int v) { add(static_cast<std::int64_t>(v)); }

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  /// Renders the artifact; throws std::logic_error when any row is not
  /// exactly as wide as the header.
  [[nodiscard]] std::string to_string() const;

  /// Writes to `path`; returns false (and leaves no file guarantees) on I/O
  /// failure.  Throws like to_string on malformed rows.
  bool save(const std::string& path) const;

 private:
  /// Appends one value to the current row, enforcing the shape contract.
  void cell(std::string v);

  static std::string escape(const std::string& v);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gmfnet
