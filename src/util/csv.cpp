#include "util/csv.hpp"

#include <cstdio>
#include <stdexcept>

namespace gmfnet {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::begin_row() { rows_.emplace_back(); }

void CsvWriter::cell(std::string v) {
  if (rows_.empty()) {
    throw std::logic_error("CsvWriter::add called before begin_row()");
  }
  if (rows_.back().size() >= header_.size()) {
    throw std::logic_error("CsvWriter::add: row already has " +
                           std::to_string(header_.size()) +
                           " values (one per header column)");
  }
  rows_.back().push_back(std::move(v));
}

void CsvWriter::add(const std::string& v) { cell(v); }
void CsvWriter::add(const char* v) { cell(v); }

void CsvWriter::add(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  cell(buf);
}

void CsvWriter::add(std::int64_t v) { cell(std::to_string(v)); }

void CsvWriter::add(std::uint64_t v) { cell(std::to_string(v)); }

std::string CsvWriter::escape(const std::string& v) {
  if (v.find_first_of(",\"\n") == std::string::npos) return v;
  std::string out = "\"";
  for (char c : v) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::to_string() const {
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (rows_[r].size() != header_.size()) {
      // A short row would silently shift every later column under the
      // wrong header — a corrupt artifact, not a rendering choice.
      throw std::logic_error(
          "CsvWriter: row " + std::to_string(r) + " has " +
          std::to_string(rows_[r].size()) + " values but the header has " +
          std::to_string(header_.size()) + " columns");
    }
  }
  std::ostringstream os;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) os << ',';
    os << escape(header_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << escape(row[i]);
    }
    os << '\n';
  }
  return os.str();
}

bool CsvWriter::save(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << to_string();
  return static_cast<bool>(f);
}

}  // namespace gmfnet
