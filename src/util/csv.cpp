#include "util/csv.hpp"

#include <cstdio>

namespace gmfnet {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::begin_row() { rows_.emplace_back(); }

void CsvWriter::add(const std::string& v) { rows_.back().push_back(v); }
void CsvWriter::add(const char* v) { rows_.back().emplace_back(v); }

void CsvWriter::add(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  rows_.back().emplace_back(buf);
}

void CsvWriter::add(std::int64_t v) {
  rows_.back().push_back(std::to_string(v));
}

void CsvWriter::add(std::uint64_t v) {
  rows_.back().push_back(std::to_string(v));
}

std::string CsvWriter::escape(const std::string& v) {
  if (v.find_first_of(",\"\n") == std::string::npos) return v;
  std::string out = "\"";
  for (char c : v) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) os << ',';
    os << escape(header_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << escape(row[i]);
    }
    os << '\n';
  }
  return os.str();
}

bool CsvWriter::save(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << to_string();
  return static_cast<bool>(f);
}

}  // namespace gmfnet
