// Machine-readable bench output: every bench dumps its headline series as
// BENCH_<name>.json next to the working directory, so CI can archive the
// perf trajectory PR over PR (and humans can diff it) without scraping
// stdout tables.
//
// Schema (stable, append-only):
//   {
//     "bench": "<name>",
//     "rows": [ { "<key>": <number|string>, ... }, ... ]
//   }
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace gmfnet {

/// Flat row-oriented JSON emitter; rows are buffered and `save` writes the
/// whole artifact at once (a crashed bench leaves no half-written file).
/// `add` before the first `begin_row` throws std::logic_error.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string bench_name);

  /// Starts a new row; fields are appended with `add`.
  void begin_row();
  void add(const std::string& key, double v);
  void add(const std::string& key, std::int64_t v);
  void add(const std::string& key, int v) {
    add(key, static_cast<std::int64_t>(v));
  }
  void add(const std::string& key, const std::string& v);
  void add(const std::string& key, bool v);

  [[nodiscard]] std::string to_string() const;

  /// Writes BENCH_<name>.json into the current directory; returns false on
  /// I/O failure.
  bool save() const;
  [[nodiscard]] std::string path() const { return "BENCH_" + name_ + ".json"; }

 private:
  /// Appends one pre-rendered field to the current row; throws
  /// std::logic_error when no row has been started.
  void field(const std::string& key, std::string rendered);

  std::string name_;
  /// Rows of (key, pre-rendered JSON value) pairs, in insertion order.
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

}  // namespace gmfnet
