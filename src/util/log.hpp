// Tiny leveled logger.  Library code logs sparingly (warnings about
// non-converging analyses, simulator sanity checks); benches raise the level
// to keep their table output clean.
#pragma once

#include <cstdarg>
#include <string>

namespace gmfnet {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Defaults to kWarn.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging to stderr with a level prefix.
void logf(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

#define GMFNET_LOG_DEBUG(...) ::gmfnet::logf(::gmfnet::LogLevel::kDebug, __VA_ARGS__)
#define GMFNET_LOG_INFO(...) ::gmfnet::logf(::gmfnet::LogLevel::kInfo, __VA_ARGS__)
#define GMFNET_LOG_WARN(...) ::gmfnet::logf(::gmfnet::LogLevel::kWarn, __VA_ARGS__)
#define GMFNET_LOG_ERROR(...) ::gmfnet::logf(::gmfnet::LogLevel::kError, __VA_ARGS__)

}  // namespace gmfnet
