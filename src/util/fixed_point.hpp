// Generic monotone fixed-point iteration with a divergence guard.
//
// All the response-time recurrences in the paper have the shape
//   x_{v+1} = F(x_v),  F monotone non-decreasing, x_0 <= F(x_0),
// so the iterates climb until they either stabilise (the fixed point, which
// is the quantity the analysis needs) or pass a horizon that proves the
// system is not schedulable at this level (eq (20)/(34) style divergence).
//
// Monotone-iterate contract: because x_0 <= F(x_0) and F is monotone, the
// sequence of arguments passed to `f` within one iterate_fixed_point call
// is non-decreasing (each argument is >= the previous one; the final,
// converged application repeats the same value).  Demand evaluation relies
// on this: gmf::LevelEnvelope threads a forward EvalCursor through `f`, so
// each iteration advances per-interferer staircase positions in O(1)
// amortized instead of binary-searching from scratch.  The cursor detects
// and survives violations (it re-anchors on any backward query, e.g. when
// the next w(q) chain re-seeds lower), so the contract is a performance
// contract, not a correctness precondition.
#pragma once

#include <cstdint>
#include <functional>

#include "util/time.hpp"

namespace gmfnet {

struct FixedPointResult {
  Time value = Time::zero();     ///< the fixed point if `converged`
  bool converged = false;        ///< false: passed `horizon` or hit iteration cap
  std::int64_t iterations = 0;   ///< number of applications of F
};

struct FixedPointOptions {
  /// Iteration aborts (non-converged) once the iterate exceeds this.
  Time horizon = Time::max();
  /// Hard cap on iterations; generously sized, only a safety net.
  std::int64_t max_iterations = 1'000'000;
};

/// Iterates `x <- f(x)` from `seed` until `f(x) == x` (converged), the
/// iterate exceeds `opts.horizon`, or `opts.max_iterations` is reached.
///
/// `f` must be monotone in its argument for the result to be meaningful, but
/// the helper itself makes no such assumption beyond running the loop.
template <typename F>
FixedPointResult iterate_fixed_point(Time seed, const F& f,
                                     const FixedPointOptions& opts = {}) {
  FixedPointResult r;
  Time x = seed;
  for (std::int64_t i = 0; i < opts.max_iterations; ++i) {
    if (x > opts.horizon) {
      r.value = x;
      r.converged = false;
      r.iterations = i;
      return r;
    }
    const Time next = f(x);
    ++r.iterations;
    if (next == x) {
      r.value = x;
      r.converged = true;
      return r;
    }
    x = next;
  }
  r.value = x;
  r.converged = false;
  return r;
}

}  // namespace gmfnet
