// Generic monotone fixed-point iteration with a divergence guard.
//
// All the response-time recurrences in the paper have the shape
//   x_{v+1} = F(x_v),  F monotone non-decreasing, x_0 <= F(x_0),
// so the iterates climb until they either stabilise (the fixed point, which
// is the quantity the analysis needs) or pass a horizon that proves the
// system is not schedulable at this level (eq (20)/(34) style divergence).
//
// Monotone-iterate contract: because x_0 <= F(x_0) and F is monotone, the
// sequence of arguments passed to `f` within one iterate_fixed_point call
// is non-decreasing (each argument is >= the previous one; the final,
// converged application repeats the same value).  Demand evaluation relies
// on this: gmf::LevelEnvelope threads a forward EvalCursor through `f`, so
// each iteration advances per-interferer staircase positions in O(1)
// amortized instead of binary-searching from scratch.  The cursor detects
// and survives violations (it re-anchors on any backward query, e.g. when
// the next w(q) chain re-seeds lower), so the contract is a performance
// contract, not a correctness precondition.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "util/time.hpp"

namespace gmfnet {

struct FixedPointResult {
  Time value = Time::zero();     ///< the fixed point if `converged`
  bool converged = false;        ///< false: passed `horizon` or hit iteration cap
  std::int64_t iterations = 0;   ///< number of applications of F
};

struct FixedPointOptions {
  /// Iteration aborts (non-converged) once the iterate exceeds this.
  Time horizon = Time::max();
  /// Hard cap on iterations; generously sized, only a safety net.
  std::int64_t max_iterations = 1'000'000;
};

/// Iterates `x <- f(x)` from `seed` until `f(x) == x` (converged), the
/// iterate exceeds `opts.horizon`, or `opts.max_iterations` is reached.
///
/// `f` must be monotone in its argument for the result to be meaningful, but
/// the helper itself makes no such assumption beyond running the loop.
template <typename F>
FixedPointResult iterate_fixed_point(Time seed, const F& f,
                                     const FixedPointOptions& opts = {}) {
  FixedPointResult r;
  Time x = seed;
  for (std::int64_t i = 0; i < opts.max_iterations; ++i) {
    if (x > opts.horizon) {
      r.value = x;
      r.converged = false;
      r.iterations = i;
      return r;
    }
    const Time next = f(x);
    ++r.iterations;
    if (next == x) {
      r.value = x;
      r.converged = true;
      return r;
    }
    x = next;
  }
  r.value = x;
  r.converged = false;
  return r;
}

/// Anderson(m) mixer over flattened iterate vectors: records observed
/// (x_j, g_j = G(x_j)) pairs of a fixed-point iteration and proposes the
/// standard Anderson-accelerated iterate
///
///     y = g_k - sum_i gamma_i * (g_{j+1} - g_j)
///
/// where gamma minimizes || f_k - sum_i gamma_i * (f_{j+1} - f_j) ||_2 over
/// the residuals f_j = g_j - x_j of the last h = min(m, pairs-1) steps
/// (normal equations, Gaussian elimination with partial pivoting).  For
/// m = 1 this reduces to the EDIIS(1)/AA(1) closed form and is exact on
/// scalar affine iterations (one proposal jumps to the fixed point).
///
/// The mixer is policy-free: it never decides whether y is *safe* to adopt.
/// Callers owning a monotone iteration must clamp and safeguard the
/// proposal themselves (see core::SolverOptions), because an extrapolated
/// iterate can overshoot the least fixed point.
class AndersonMixer {
 public:
  explicit AndersonMixer(int m) : m_(m < 1 ? 1 : m) {}

  /// Drops all recorded pairs (used after a safeguard rollback: history
  /// from the abandoned speculative branch would poison later proposals).
  void reset() { pairs_.clear(); }

  [[nodiscard]] std::size_t history() const { return pairs_.size(); }

  /// Records one observed application of the underlying map.  `x` and `g`
  /// must have the same length across all pushes since the last reset.
  void push(std::vector<double> x, std::vector<double> g) {
    pairs_.emplace_back(std::move(x), std::move(g));
    while (pairs_.size() > static_cast<std::size_t>(m_) + 1) {
      pairs_.pop_front();
    }
  }

  /// The accelerated iterate from the recorded history, or an empty vector
  /// when fewer than two pairs are recorded or the least-squares system is
  /// numerically degenerate (no useful descent direction — e.g. exactly
  /// (anti)parallel residual differences, or a converged iteration).
  [[nodiscard]] std::vector<double> propose() const {
    if (pairs_.size() < 2) return {};
    const std::size_t h = pairs_.size() - 1;   // difference columns
    const std::size_t n = pairs_.back().first.size();
    const std::size_t k = pairs_.size() - 1;   // newest pair index

    // Residuals f_j = g_j - x_j for the retained window.
    std::vector<std::vector<double>> f(pairs_.size());
    for (std::size_t j = 0; j < pairs_.size(); ++j) {
      f[j].resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        f[j][i] = pairs_[j].second[i] - pairs_[j].first[i];
      }
    }

    // Normal equations A gamma = b over the difference columns
    // d_l = f_{l+1} - f_l.
    std::vector<std::vector<double>> a(h, std::vector<double>(h, 0.0));
    std::vector<double> b(h, 0.0);
    const auto dot_d = [&](std::size_t l, std::size_t r, double& out) {
      out = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        out += (f[l + 1][i] - f[l][i]) * (f[r + 1][i] - f[r][i]);
      }
    };
    for (std::size_t l = 0; l < h; ++l) {
      for (std::size_t r = l; r < h; ++r) {
        dot_d(l, r, a[l][r]);
        a[r][l] = a[l][r];
      }
      for (std::size_t i = 0; i < n; ++i) {
        b[l] += f[k][i] * (f[l + 1][i] - f[l][i]);
      }
    }

    // Gaussian elimination with partial pivoting; a pivot collapsing
    // against the matrix scale means the system carries no information.
    double scale = 0.0;
    for (std::size_t l = 0; l < h; ++l) scale = std::max(scale, a[l][l]);
    if (!(scale > 0.0)) return {};
    std::vector<double> gamma(h, 0.0);
    for (std::size_t col = 0; col < h; ++col) {
      std::size_t piv = col;
      for (std::size_t row = col + 1; row < h; ++row) {
        if (std::fabs(a[row][col]) > std::fabs(a[piv][col])) piv = row;
      }
      if (std::fabs(a[piv][col]) < 1e-12 * scale) return {};
      std::swap(a[piv], a[col]);
      std::swap(b[piv], b[col]);
      for (std::size_t row = col + 1; row < h; ++row) {
        const double fac = a[row][col] / a[col][col];
        for (std::size_t cc = col; cc < h; ++cc) a[row][cc] -= fac * a[col][cc];
        b[row] -= fac * b[col];
      }
    }
    for (std::size_t col = h; col-- > 0;) {
      double acc = b[col];
      for (std::size_t cc = col + 1; cc < h; ++cc) acc -= a[col][cc] * gamma[cc];
      gamma[col] = acc / a[col][col];
    }

    // y = g_k - sum_l gamma_l * (g_{l+1} - g_l).
    std::vector<double> y = pairs_.back().second;
    for (std::size_t l = 0; l < h; ++l) {
      const double gl = gamma[l];
      if (gl == 0.0) continue;
      for (std::size_t i = 0; i < n; ++i) {
        y[i] -= gl * (pairs_[l + 1].second[i] - pairs_[l].second[i]);
      }
    }
    return y;
  }

 private:
  int m_;
  /// Observed (x_j, g_j) pairs, oldest first; at most m_ + 1 retained.
  std::deque<std::pair<std::vector<double>, std::vector<double>>> pairs_;
};

}  // namespace gmfnet
