// ASCII table rendering for the benchmark harness.  Every bench prints its
// reproduced paper table/figure as one of these so `bench_output.txt` reads
// like the paper's evaluation section.
#pragma once

#include <string>
#include <vector>

namespace gmfnet {

class Table {
 public:
  explicit Table(std::string title = {});

  void set_columns(std::vector<std::string> names);
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with %g.
  static std::string num(double v);
  /// Formats with fixed decimals.
  static std::string fixed(double v, int decimals);

  [[nodiscard]] std::string render() const;
  void print() const;  ///< render() to stdout

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gmfnet
