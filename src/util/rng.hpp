// Deterministic, seedable random number generation (xoshiro256**).
//
// Everything randomized in gmfnet (workload generation, simulator arrival
// laws, property-test sweeps) takes an explicit seed so that every experiment
// in EXPERIMENTS.md is reproducible bit-for-bit.  std::mt19937_64 would work
// too but its distributions are not specified cross-platform; we implement
// the few distributions we need on top of a fixed generator instead.
#pragma once

#include <cstdint>
#include <vector>

namespace gmfnet {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, n) without modulo bias. Requires n > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Bernoulli trial.
  bool chance(double p);

  /// Returns an index into `weights` chosen proportionally to the weights
  /// (all weights must be >= 0, with a positive sum).
  std::size_t weighted_index(const std::vector<double>& weights);

  /// UUniFast (Bini & Buttazzo): splits `total` into `n` non-negative parts
  /// that sum to `total`, uniformly over the simplex. Classic generator for
  /// per-task utilizations in schedulability experiments.
  std::vector<double> uunifast(std::size_t n, double total);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator; useful for giving each thread
  /// of a parallel sweep its own stream.
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace gmfnet
