#include "util/time.hpp"

#include <cmath>
#include <cstdio>

namespace gmfnet {

namespace {
Time::rep round_to_rep(double v) {
  return static_cast<Time::rep>(std::llround(v));
}
}  // namespace

Time Time::ns_f(double v) { return Time(round_to_rep(v * 1e3)); }
Time Time::us_f(double v) { return Time(round_to_rep(v * 1e6)); }
Time Time::ms_f(double v) { return Time(round_to_rep(v * 1e9)); }
Time Time::sec_f(double v) { return Time(round_to_rep(v * 1e12)); }

std::string Time::str() const {
  const double absps = std::abs(static_cast<double>(ps_));
  char buf[64];
  if (absps < 1e3) {
    std::snprintf(buf, sizeof buf, "%lldps", static_cast<long long>(ps_));
  } else if (absps < 1e6) {
    std::snprintf(buf, sizeof buf, "%.3gns", to_ns());
  } else if (absps < 1e9) {
    std::snprintf(buf, sizeof buf, "%.6gus", to_us());
  } else if (absps < 1e12) {
    std::snprintf(buf, sizeof buf, "%.6gms", to_ms());
  } else {
    std::snprintf(buf, sizeof buf, "%.6gs", to_sec());
  }
  return buf;
}

}  // namespace gmfnet
