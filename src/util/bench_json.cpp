#include "util/bench_json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace gmfnet {

namespace {
std::string escape(const std::string& v) {
  std::string out;
  out.reserve(v.size() + 2);
  for (const char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

BenchJsonWriter::BenchJsonWriter(std::string bench_name)
    : name_(std::move(bench_name)) {}

void BenchJsonWriter::begin_row() { rows_.emplace_back(); }

void BenchJsonWriter::field(const std::string& key, std::string rendered) {
  if (rows_.empty()) {
    throw std::logic_error("BenchJsonWriter::add called before begin_row()");
  }
  rows_.back().emplace_back(key, std::move(rendered));
}

void BenchJsonWriter::add(const std::string& key, double v) {
  char buf[64];
  // JSON has no NaN/Inf; encode them as null.
  if (std::isfinite(v)) {
    std::snprintf(buf, sizeof buf, "%.6g", v);
  } else {
    std::snprintf(buf, sizeof buf, "null");
  }
  field(key, buf);
}

void BenchJsonWriter::add(const std::string& key, std::int64_t v) {
  field(key, std::to_string(v));
}

void BenchJsonWriter::add(const std::string& key, const std::string& v) {
  field(key, "\"" + escape(v) + "\"");
}

void BenchJsonWriter::add(const std::string& key, bool v) {
  field(key, v ? "true" : "false");
}

std::string BenchJsonWriter::to_string() const {
  std::string out = "{\n  \"bench\": \"" + escape(name_) + "\",\n  \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out += r == 0 ? "\n" : ",\n";
    out += "    {";
    for (std::size_t f = 0; f < rows_[r].size(); ++f) {
      if (f != 0) out += ", ";
      out += "\"" + escape(rows_[r][f].first) + "\": " + rows_[r][f].second;
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

bool BenchJsonWriter::save() const {
  std::ofstream f(path(), std::ios::binary | std::ios::trunc);
  if (!f) return false;
  const std::string s = to_string();
  f.write(s.data(), static_cast<std::streamsize>(s.size()));
  return static_cast<bool>(f);
}

}  // namespace gmfnet
