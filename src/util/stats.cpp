#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gmfnet {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double Percentiles::percentile(double p) const {
  assert(!xs_.empty());
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
  if (p <= 0) return xs_.front();
  if (p >= 100) return xs_.back();
  const double rank = p / 100.0 * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs_.size()) return xs_.back();
  return xs_[lo] * (1.0 - frac) + xs_[lo + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  assert(hi > lo);
  assert(buckets > 0);
}

void Histogram::add(double x) {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::int64_t>(std::floor((x - lo_) / w));
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + w * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const { return bucket_lo(i + 1); }

}  // namespace gmfnet
