#include "util/rng.hpp"

#include <cassert>
#include <cmath>

namespace gmfnet {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // Guard against the all-zero state, which xoshiro cannot leave.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  assert(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_i64(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform01() {
  // 53 significant bits, uniform in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

double Rng::exponential(double mean) {
  assert(mean > 0);
  double u = uniform01();
  if (u <= 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

bool Rng::chance(double p) { return uniform01() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  assert(total > 0);
  double x = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0) return i;
  }
  return weights.size() - 1;
}

std::vector<double> Rng::uunifast(std::size_t n, double total) {
  std::vector<double> u(n, 0.0);
  if (n == 0) return u;
  double sum = total;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double next =
        sum * std::pow(uniform01(), 1.0 / static_cast<double>(n - 1 - i));
    u[i] = sum - next;
    sum = next;
  }
  u[n - 1] = sum;
  return u;
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace gmfnet
