// Integer time type used throughout gmfnet.
//
// All times are held as signed 64-bit *picoseconds*.  The response-time
// recurrences of the paper (eqs 15/17/22/24/29/31) terminate when two
// successive iterates are *equal*; an integer representation makes that exact
// and reproducible, which floating point would not.  Picoseconds are fine
// enough that every transmission time arising from integral bit counts and
// the link speeds we care about (10 kbit/s .. 100 Gbit/s) is either exact or
// conservatively rounded up by < 1 ps, and coarse enough that the full range
// covers ~106 days — far beyond any busy period or simulation horizon.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace gmfnet {

/// A point in time or a duration, in integer picoseconds.
///
/// Deliberately a tiny value type: explicit construction from raw counts
/// prevents accidental unit mix-ups, and named factories (`Time::us(2.7)`)
/// keep call sites readable.
class Time {
 public:
  using rep = std::int64_t;

  constexpr Time() = default;
  constexpr explicit Time(rep picoseconds) : ps_(picoseconds) {}

  [[nodiscard]] constexpr rep ps() const { return ps_; }

  // -- named factories ------------------------------------------------------
  static constexpr Time zero() { return Time(0); }
  static constexpr Time max() {
    return Time(std::numeric_limits<rep>::max());
  }
  static constexpr Time ps_count(rep v) { return Time(v); }
  static constexpr Time ns(rep v) { return Time(v * 1'000); }
  static constexpr Time us(rep v) { return Time(v * 1'000'000); }
  static constexpr Time ms(rep v) { return Time(v * 1'000'000'000); }
  static constexpr Time sec(rep v) { return Time(v * 1'000'000'000'000); }

  /// Fractional factories; round to nearest picosecond.
  static Time ns_f(double v);
  static Time us_f(double v);
  static Time ms_f(double v);
  static Time sec_f(double v);

  // -- conversions ----------------------------------------------------------
  [[nodiscard]] double to_ns() const { return static_cast<double>(ps_) / 1e3; }
  [[nodiscard]] double to_us() const { return static_cast<double>(ps_) / 1e6; }
  [[nodiscard]] double to_ms() const { return static_cast<double>(ps_) / 1e9; }
  [[nodiscard]] double to_sec() const {
    return static_cast<double>(ps_) / 1e12;
  }

  // -- arithmetic -----------------------------------------------------------
  constexpr Time operator+(Time o) const { return Time(ps_ + o.ps_); }
  constexpr Time operator-(Time o) const { return Time(ps_ - o.ps_); }
  constexpr Time operator*(rep k) const { return Time(ps_ * k); }
  constexpr Time operator-() const { return Time(-ps_); }
  constexpr Time& operator+=(Time o) {
    ps_ += o.ps_;
    return *this;
  }
  constexpr Time& operator-=(Time o) {
    ps_ -= o.ps_;
    return *this;
  }
  constexpr Time& operator*=(rep k) {
    ps_ *= k;
    return *this;
  }

  /// Floor division of one duration by another (how many whole `o` fit).
  /// Requires `o > 0` and `*this >= 0`.
  [[nodiscard]] constexpr rep floor_div(Time o) const {
    return ps_ / o.ps_;
  }
  /// Ceiling division; requires `o > 0` and `*this >= 0`.
  [[nodiscard]] constexpr rep ceil_div(Time o) const {
    return (ps_ + o.ps_ - 1) / o.ps_;
  }
  /// Remainder of floor division; requires `o > 0` and `*this >= 0`.
  [[nodiscard]] constexpr Time mod(Time o) const { return Time(ps_ % o.ps_); }

  constexpr auto operator<=>(const Time&) const = default;

  /// Human-readable rendering with an auto-selected unit, e.g. "14.8us".
  [[nodiscard]] std::string str() const;

 private:
  rep ps_ = 0;
};

constexpr Time operator*(Time::rep k, Time t) { return t * k; }

[[nodiscard]] constexpr Time min(Time a, Time b) { return a < b ? a : b; }
[[nodiscard]] constexpr Time max(Time a, Time b) { return a < b ? b : a; }

}  // namespace gmfnet
