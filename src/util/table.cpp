#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace gmfnet {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_columns(std::vector<std::string> names) {
  columns_ = std::move(names);
}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

std::string Table::fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> width(columns_.size(), 0);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    width[c] = columns_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto hline = [&] {
    std::string s = "+";
    for (auto w : width) s += std::string(w + 2, '-') + "+";
    s += '\n';
    return s;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      s += " " + v + std::string(width[c] - v.size(), ' ') + " |";
    }
    s += '\n';
    return s;
  };

  std::ostringstream os;
  if (!title_.empty()) os << title_ << '\n';
  os << hline() << line(columns_) << hline();
  for (const auto& row : rows_) os << line(row);
  os << hline();
  return os.str();
}

void Table::print() const { std::printf("%s", render().c_str()); }

}  // namespace gmfnet
