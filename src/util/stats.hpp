// Small statistics helpers for the benchmark harness and the simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/time.hpp"

namespace gmfnet {

/// Streaming mean / variance / extrema (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Collects samples and answers percentile queries. Used for response-time
/// distributions in the simulator benches.
class Percentiles {
 public:
  void add(double x) { xs_.push_back(x); }
  void add(Time t) { xs_.push_back(static_cast<double>(t.ps())); }

  [[nodiscard]] std::size_t count() const { return xs_.size(); }
  [[nodiscard]] bool empty() const { return xs_.empty(); }

  /// Nearest-rank percentile, p in [0,100]. Requires at least one sample.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double min() const { return percentile(0); }
  [[nodiscard]] double median() const { return percentile(50); }
  [[nodiscard]] double max() const { return percentile(100); }

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return counts_[i];
  }
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] double bucket_hi(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace gmfnet
