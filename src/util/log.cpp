#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace gmfnet {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "[debug] ";
    case LogLevel::kInfo: return "[info ] ";
    case LogLevel::kWarn: return "[warn ] ";
    case LogLevel::kError: return "[error] ";
    case LogLevel::kOff: return "";
  }
  return "";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void logf(LogLevel level, const char* fmt, ...) {
  if (level < g_level.load()) return;
  std::fprintf(stderr, "%s", prefix(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace gmfnet
