#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

namespace gmfnet {

namespace {
/// Slot of the pool worker running on this thread (meaningless outside a
/// worker).  A thread belongs to at most one pool, so one thread-local
/// suffices; parallel_for_slotted reads it to hand each body call its
/// executing worker's slot.
thread_local std::size_t t_pool_slot = 0;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lk(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop(std::size_t slot) {
  t_pool_slot = slot;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lk(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

bool ThreadPool::called_from_worker() const {
  const auto self = std::this_thread::get_id();
  for (const std::thread& w : workers_) {
    if (w.get_id() == self) return true;
  }
  return false;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  parallel_for_slotted(n,
                       [&body](std::size_t, std::size_t i) { body(i); });
}

void ThreadPool::parallel_for_slotted(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  if (called_from_worker()) {
    throw std::logic_error(
        "ThreadPool::parallel_for: nested call from a worker of the same "
        "pool would deadlock");
  }
  std::lock_guard pf_lock(parallel_for_mu_);
  if (n == 0) return;
  const std::size_t nthreads = std::max<std::size_t>(1, size());
  if (nthreads <= 1) {
    // A one-worker pool adds no parallelism: run inline on the caller (its
    // slot is size()) and skip the queue/condvar round trip entirely.  An
    // exception propagates directly, matching the pooled path's
    // first-exception-cancels semantics.
    for (std::size_t i = 0; i < n; ++i) body(size(), i);
    return;
  }
  const std::size_t chunk = (n + nthreads - 1) / nthreads;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancelled{false};
  std::mutex error_mu;
  std::exception_ptr error;
  for (std::size_t t = 0; t < nthreads; ++t) {
    submit([&, chunk, n] {
      for (;;) {
        if (cancelled.load(std::memory_order_relaxed)) return;
        const std::size_t begin = next.fetch_add(chunk);
        if (begin >= n) return;
        const std::size_t end = std::min(begin + chunk, n);
        for (std::size_t i = begin; i < end; ++i) {
          if (cancelled.load(std::memory_order_relaxed)) return;
          try {
            body(t_pool_slot, i);
          } catch (...) {
            cancelled.store(true, std::memory_order_relaxed);
            const std::lock_guard lk(error_mu);
            if (!error) error = std::current_exception();
            return;
          }
        }
      }
    });
  }
  wait_idle();
  if (error) std::rethrow_exception(error);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads) {
  ThreadPool pool(threads);
  pool.parallel_for(n, body);
}

}  // namespace gmfnet
