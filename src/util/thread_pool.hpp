// Work-stealing-free, dead-simple thread pool with a parallel_for helper.
//
// Used for embarrassingly parallel parameter sweeps in the benches (each
// (utilization, seed) cell is independent) and for the Jacobi variant of the
// holistic fixed point, where all flows' response times in one sweep are
// computed against a frozen jitter snapshot.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gmfnet {

class ThreadPool {
 public:
  /// `threads == 0` means std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. Tasks must not throw (std::terminate otherwise).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Runs body(i) for i in [0, n), distributing chunks over the pool, and
  /// waits for completion.  Safe to call from one thread at a time: an
  /// internal mutex serializes concurrent calls from different threads, and
  /// a nested call from one of this pool's own workers (which could never
  /// finish — the caller occupies the very worker it would wait on) throws
  /// std::logic_error before enqueuing anything.
  ///
  /// Exception-safe: if a body call throws, remaining iterations are
  /// cancelled (already-started chunks finish their current call), the pool
  /// drains, and the first exception is rethrown in the caller — so a
  /// throwing probe surfaces to the engine's caller instead of
  /// std::terminate'ing a worker.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// parallel_for whose body also receives the executing thread's *slot*:
  /// body(slot, i).  Each pool worker owns one fixed slot in [0, size());
  /// slot size() is the calling thread itself (the single-worker fast path
  /// runs the whole loop inline on the caller, skipping the queue round
  /// trip).  No two concurrent body calls of one invocation share a slot,
  /// so callers may key per-thread scratch state by slot with size() + 1
  /// entries and no further synchronization.  Same serialization, nesting
  /// and exception contract as parallel_for.
  void parallel_for_slotted(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t)>& body);

 private:
  void worker_loop(std::size_t slot);
  [[nodiscard]] bool called_from_worker() const;

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::mutex parallel_for_mu_;  ///< serializes parallel_for callers
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Standalone one-shot parallel_for over a transient pool sized to the
/// hardware. Handy in benches where no pool object is around.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t threads = 0);

}  // namespace gmfnet
