// Text serialization of scenarios (network + flows).
//
// An admission controller deployed by a network operator is configured from
// files, not from C++; this module defines a small line-oriented format and
// a strict parser with line-accurate error messages.
//
//   # gmfnet scenario v1
//   endhost alice
//   router  gw
//   switch  sw1 croute_ns=2700 csend_ns=1000 processors=1
//   duplex  alice sw1 100000000 prop_ps=0
//   link    sw1 gw 1000000000
//   flow    video prio=3 rtp route=alice,sw1,gw
//   frame   t_us=10000 d_us=20000 gj_us=200 payload_bytes=8000
//   frame   t_us=10000 d_us=20000 gj_us=200 payload_bytes=1000
//
// `frame` lines attach to the most recent `flow`.  Durations accept the
// suffixed keys t_ps/t_ns/t_us/t_ms (same for d_, gj_); payload accepts
// payload_bits or payload_bytes.  Lines starting with '#' and blank lines
// are ignored.
//
// The parser is strict: integers must be pure digits (`duplex a b 100mbps`
// is an error, not 100 bps), a duplicate key on one line is an error, and
// any key a directive does not recognize (a typo like `pirority=5`, a
// misspelled unit like `gj_s=1`, or a redundant second payload key) is
// rejected instead of silently ignored.
#pragma once

#include <stdexcept>
#include <string>

#include "workload/scenario.hpp"

namespace gmfnet::io {

/// Thrown by the parser; `what()` includes the 1-based line number.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& message);
  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Parses a scenario from text.  Throws ParseError on malformed input and
/// std::logic_error when the parsed scenario fails semantic validation.
[[nodiscard]] workload::Scenario parse_scenario(const std::string& text);

/// Parses from a file; throws std::runtime_error when unreadable.
[[nodiscard]] workload::Scenario load_scenario(const std::string& path);

/// Renders a scenario in the same format (round-trips through
/// parse_scenario).  Throws std::invalid_argument when a node or flow name
/// cannot survive the round trip (empty, contains whitespace / '#' / ',',
/// or a duplicate node name) — emitting it would produce a file the parser
/// corrupts or rejects.
[[nodiscard]] std::string format_scenario(const workload::Scenario& scenario);

/// Writes to a file; returns false on I/O failure.  Throws like
/// format_scenario on names that cannot round-trip.
bool save_scenario(const workload::Scenario& scenario,
                   const std::string& path);

}  // namespace gmfnet::io
