// Field-level binary codecs for the domain types that cross process
// boundaries: networks, flows, jitter maps and holistic results.  The
// checkpoint container (io/checkpoint) persists them to disk and the
// operator RPC protocol (rpc/protocol) ships them over sockets — one
// encoding, so a checkpoint section and an RPC message body are the same
// bytes for the same value.
//
// Decoders throw io::WireError on malformed input (out-of-range enum
// values, truncation surfaced by ByteReader); format entry points rewrap
// with their own error type.
#pragma once

#include "io/wire.hpp"

#include "core/holistic.hpp"
#include "gmf/flow.hpp"
#include "net/network.hpp"

namespace gmfnet::io::codec {

void encode_network(ByteWriter& w, const net::Network& net);
[[nodiscard]] net::Network decode_network(ByteReader& r);

void encode_flow(ByteWriter& w, const gmf::Flow& f);
[[nodiscard]] gmf::Flow decode_flow(ByteReader& r);

void encode_stage_key(ByteWriter& w, const core::StageKey& k);
[[nodiscard]] core::StageKey decode_stage_key(ByteReader& r);

void encode_jitter_map(ByteWriter& w, const core::JitterMap& m);
[[nodiscard]] core::JitterMap decode_jitter_map(ByteReader& r);

void encode_holistic_result(ByteWriter& w, const core::HolisticResult& res);
[[nodiscard]] core::HolisticResult decode_holistic_result(ByteReader& r);

}  // namespace gmfnet::io::codec
