// Crash-safe file replacement: write a temp file in the target's
// directory, fsync it, rename it over the target, fsync the directory.
// At every instant the target path either holds the complete old content
// or the complete new content — a crash (power loss, kill -9, a thrown
// exception) mid-save can cost the save in progress, never the last good
// file.  This is the only way checkpoint bytes reach disk anywhere in the
// tree (gmfnetd auto/final checkpoints, gmfnet_ctl save, examples).
//
// With `keep_previous`, commit first rotates the existing target to
// `<target>.prev` before renaming the new file in.  The crash window
// between the two renames leaves the target path briefly absent, but
// `.prev` then holds the last good content — so a reader that tries
// `<target>` first and falls back to `<target>.prev` (gmfnetd boot
// recovery) always finds the newest valid checkpoint.
//
// Every stage consults a test-only fault hook (set_file_fault_hook) so
// the checkpoint crash-safety tests can fail fsync/rename or simulate a
// kill at exact stage boundaries without mocking the filesystem.
#pragma once

#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace gmfnet::io {

/// Thrown when an atomic replacement cannot be completed; the target file
/// is untouched unless what() says otherwise (rotation succeeded but the
/// final rename failed: the last good content is at previous_path()).
class AtomicFileError : public std::runtime_error {
 public:
  explicit AtomicFileError(const std::string& message)
      : std::runtime_error("atomic file: " + message) {}
};

/// Test hook, consulted before each commit stage with the stage name
/// ("write", "fsync", "rename-previous", "rename", "fsync-dir") and the
/// path involved.  Return true to make that stage fail as if the
/// underlying syscall errored; throw to simulate a crash at that exact
/// point.  An empty hook (the default) injects nothing.
using FileFaultHook =
    std::function<bool(std::string_view stage, const std::string& path)>;
void set_file_fault_hook(FileFaultHook hook);

class AtomicFileWriter {
 public:
  /// Prepares a replacement of `target`.  Nothing touches the filesystem
  /// until commit().
  explicit AtomicFileWriter(std::string target, bool keep_previous = false);
  /// Aborts (removes the temp file) when commit() was never reached.
  ~AtomicFileWriter();
  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Buffer the new content here (e.g. AnalysisEngine::save(stream())).
  [[nodiscard]] std::ostream& stream() { return buf_; }

  /// Durably replaces the target: temp write + fsync + rename(s) + dir
  /// fsync.  Throws AtomicFileError on any failure (temp file cleaned up;
  /// target untouched except as documented for keep_previous).
  void commit();

  /// Best-effort cleanup of the temp file; target untouched.
  void abort() noexcept;

  [[nodiscard]] const std::string& target_path() const { return target_; }
  [[nodiscard]] const std::string& temp_path() const { return temp_; }

  /// Where the pre-replacement content lives after a keep_previous commit.
  [[nodiscard]] static std::string previous_path(const std::string& target) {
    return target + ".prev";
  }

 private:
  std::string target_;
  std::string temp_;
  bool keep_previous_;
  bool committed_ = false;
  std::ostringstream buf_;
};

/// One-shot convenience over AtomicFileWriter.
void atomic_write_file(const std::string& target, std::string_view data,
                       bool keep_previous = false);

}  // namespace gmfnet::io
