// Checkpoint container (see checkpoint.hpp for the layout) and the
// AnalysisEngine::save / AnalysisEngine::restore entry points declared in
// engine/analysis_engine.hpp.  The engine members are defined here so the
// whole persisted-state walk lives in one translation unit; the byte
// primitives live in io/wire.hpp and the field codecs in io/codec.hpp,
// shared with the operator RPC protocol (rpc/protocol).
#include "io/checkpoint.hpp"

#include <cstring>
#include <istream>
#include <memory>
#include <sstream>
#include <ostream>
#include <utility>
#include <vector>

#include "core/context.hpp"
#include "core/holistic.hpp"
#include "engine/analysis_engine.hpp"
#include "gmf/flow.hpp"
#include "io/codec.hpp"
#include "net/network.hpp"

namespace gmfnet::io {
namespace {

// Section ids, in stream order.
constexpr std::uint32_t kSecEngine = 1;
constexpr std::uint32_t kSecNetwork = 2;
constexpr std::uint32_t kSecFlows = 3;
constexpr std::uint32_t kSecShards = 4;

void write_section(ByteWriter& payload, std::uint32_t id,
                   const ByteWriter& body) {
  payload.u32(id);
  payload.u64(body.bytes().size());
  payload.raw(body.bytes());
}

ByteReader read_section(ByteReader& payload, std::uint32_t expect,
                        const char* what) {
  const std::uint32_t id = payload.u32();
  if (id != expect) {
    throw CheckpointError(std::string("unexpected section while reading ") +
                          what);
  }
  const std::uint64_t len = payload.u64();
  if (len > payload.remaining()) {
    throw CheckpointError(std::string("section length overruns stream (") +
                          what + ")");
  }
  return payload.sub(static_cast<std::size_t>(len), what);
}

}  // namespace
}  // namespace gmfnet::io

// ------------------------------------------- engine save / restore entry --

namespace gmfnet::engine {

using io::CheckpointError;

void AnalysisEngine::save(std::ostream& os) {
  // Checkpoint the converged world: every shard gets a cache and the
  // restored engine can publish without solving.
  (void)evaluate();

  io::ByteWriter engine_sec;
  engine_sec.u8(shard_by_domain_ ? 1 : 0);
  engine_sec.u64(locs_.size());
  engine_sec.u64(shards_.size());
  // Analysis-option fingerprint: every field the persisted fixed points
  // depend on.  (Sweep order, thread count and the envelope fast path do
  // not change results — see core/holistic.hpp — so they are free to
  // differ across save/restore.)
  engine_sec.time(opts_.hop.horizon);
  engine_sec.u8(opts_.hop.charge_self_circ ? 1 : 0);
  engine_sec.i32(opts_.max_sweeps);
  // Solver mode (version 2): the accelerated mode is only identity-exact on
  // acyclic interference (and conservative otherwise — see
  // core::SolverOptions), so a restore must run under the mode that
  // produced the checkpoint — silently switching strategies underneath
  // persisted state would make "restored world answers bit-identically"
  // unauditable.  The cyclic opt-in changes reachable fixed points, so it
  // is part of the fingerprint byte.
  engine_sec.u8(static_cast<std::uint8_t>(opts_.solver.mode) |
                (opts_.solver.accept_cyclic ? 0x80 : 0));

  io::ByteWriter network_sec;
  io::codec::encode_network(network_sec, network());

  io::ByteWriter flows_sec;
  for (std::size_t i = 0; i < locs_.size(); ++i) {
    io::codec::encode_flow(flows_sec, flow(i));
  }

  io::ByteWriter shards_sec;
  for (const Shard& s : shards_) {
    shards_sec.u64(s.to_global.size());
    for (const net::FlowId g : s.to_global) shards_sec.i32(g.v);
    shards_sec.u8(s.cache ? 1 : 0);
    if (s.cache) io::codec::encode_holistic_result(shards_sec, *s.cache);
  }

  io::ByteWriter payload;
  io::write_section(payload, io::kSecEngine, engine_sec);
  io::write_section(payload, io::kSecNetwork, network_sec);
  io::write_section(payload, io::kSecFlows, flows_sec);
  io::write_section(payload, io::kSecShards, shards_sec);

  io::ByteWriter header;
  header.raw(std::string(io::ckpt::kMagic, sizeof io::ckpt::kMagic));
  header.u32(io::ckpt::kVersion);
  header.u64(payload.bytes().size());
  header.u64(io::fnv1a(payload.bytes()));

  os.write(header.bytes().data(),
           static_cast<std::streamsize>(header.bytes().size()));
  os.write(payload.bytes().data(),
           static_cast<std::streamsize>(payload.bytes().size()));
  if (!os) throw std::runtime_error("checkpoint: stream write failed");
}

AnalysisEngine::RestoredState AnalysisEngine::parse_checkpoint(
    std::istream& is, const core::HolisticOptions& opts) {
  // Block-copy the stream (istreambuf_iterator would walk it char by char —
  // measurably slow for warm boot, where the whole point is restart speed).
  std::string buf;
  {
    std::ostringstream ss;
    ss << is.rdbuf();
    buf = std::move(ss).str();
  }
  if (buf.size() < io::ckpt::kHeaderSize) {
    throw CheckpointError("truncated stream (header)");
  }
  if (std::memcmp(buf.data(), io::ckpt::kMagic, sizeof io::ckpt::kMagic) !=
      0) {
    throw CheckpointError("bad magic — not a gmfnet checkpoint");
  }
  io::ByteReader header(buf.data() + sizeof io::ckpt::kMagic,
                        io::ckpt::kHeaderSize - sizeof io::ckpt::kMagic,
                        "header");
  const std::uint32_t version = header.u32();
  if (version != io::ckpt::kVersion) {
    throw CheckpointError(
        "unsupported format version " + std::to_string(version) +
        " (this build reads version " + std::to_string(io::ckpt::kVersion) +
        ")");
  }
  const std::uint64_t payload_len = header.u64();
  const std::uint64_t checksum = header.u64();
  if (payload_len != buf.size() - io::ckpt::kHeaderSize) {
    throw CheckpointError(
        payload_len > buf.size() - io::ckpt::kHeaderSize
            ? "truncated stream (payload shorter than declared)"
            : "trailing bytes after payload");
  }
  // Checksum and parse in place — no second copy of the payload on the
  // restart hot path.
  const char* payload_data = buf.data() + io::ckpt::kHeaderSize;
  const std::size_t payload_size = buf.size() - io::ckpt::kHeaderSize;
  if (io::fnv1a(std::string_view(payload_data, payload_size)) != checksum) {
    throw CheckpointError("corrupted stream (checksum mismatch)");
  }

  io::ByteReader payload(payload_data, payload_size, "payload");
  RestoredState st;
  try {
    io::ByteReader engine_sec =
        io::read_section(payload, io::kSecEngine, "engine section");
    st.shard_by_domain = engine_sec.u8() != 0;
    const std::size_t flow_count = engine_sec.u64();
    const std::size_t shard_count = engine_sec.u64();
    const gmfnet::Time horizon = engine_sec.time();
    const bool charge_self_circ = engine_sec.u8() != 0;
    const std::int32_t max_sweeps = engine_sec.i32();
    const std::uint8_t solver_mode = engine_sec.u8();
    if (horizon != opts.hop.horizon ||
        charge_self_circ != opts.hop.charge_self_circ ||
        max_sweeps != opts.max_sweeps) {
      throw CheckpointError(
          "analysis options mismatch: the checkpoint's fixed points were "
          "solved under different hop.horizon / hop.charge_self_circ / "
          "max_sweeps — restore with the options the checkpoint was saved "
          "with");
    }
    const std::uint8_t want_mode =
        static_cast<std::uint8_t>(opts.solver.mode) |
        (opts.solver.accept_cyclic ? 0x80 : 0);
    if (solver_mode != want_mode) {
      throw CheckpointError(
          "solver mode mismatch: the checkpoint's fixed points were solved "
          "under a different iteration strategy (--solver) — restore with "
          "the solver the checkpoint was saved with");
    }
    if (!engine_sec.done()) {
      throw CheckpointError("engine section has trailing bytes");
    }

    io::ByteReader network_sec =
        io::read_section(payload, io::kSecNetwork, "network section");
    st.network = io::codec::decode_network(network_sec);
    if (!network_sec.done()) {
      throw CheckpointError("network section has trailing bytes");
    }

    io::ByteReader flows_sec =
        io::read_section(payload, io::kSecFlows, "flows section");
    for (std::size_t i = 0; i < flow_count; ++i) {
      st.flows.push_back(io::codec::decode_flow(flows_sec));
    }
    if (!flows_sec.done()) {
      throw CheckpointError("flows section has trailing bytes");
    }

    io::ByteReader shards_sec =
        io::read_section(payload, io::kSecShards, "shards section");
    for (std::size_t s = 0; s < shard_count; ++s) {
      RestoredShard shard;
      const std::size_t locals = shards_sec.count(4);
      shard.to_global.reserve(locals);
      for (std::size_t l = 0; l < locals; ++l) {
        shard.to_global.emplace_back(shards_sec.i32());
      }
      if (shards_sec.u8() == 0) {
        throw CheckpointError("shard " + std::to_string(s) +
                              " carries no converged state");
      }
      shard.cache = io::codec::decode_holistic_result(shards_sec);
      st.shards.push_back(std::move(shard));
    }
    if (!shards_sec.done()) {
      throw CheckpointError("shards section has trailing bytes");
    }
    if (!payload.done()) {
      throw CheckpointError("trailing bytes after the last section");
    }
  } catch (const CheckpointError&) {
    throw;
  } catch (const std::exception& e) {
    // Truncation/enum failures from the shared codecs (WireError) and
    // structural/semantic validation failures from net/gmf/core builders.
    throw CheckpointError(std::string("invalid checkpoint data: ") +
                          e.what());
  }
  return st;
}

// The construct-and-rewrap block appears once per entry point because the
// engine is neither copyable nor movable: each must construct its own
// return object in place.  Keep the catch clauses identical so the two
// error contracts cannot drift.
AnalysisEngine AnalysisEngine::restore(std::istream& is,
                                       core::HolisticOptions opts) {
  RestoredState st = parse_checkpoint(is, opts);
  try {
    return AnalysisEngine(std::move(st), opts);
  } catch (const CheckpointError&) {
    throw;
  } catch (const std::exception& e) {
    throw CheckpointError(std::string("checkpoint failed validation: ") +
                          e.what());
  }
}

std::unique_ptr<AnalysisEngine> AnalysisEngine::restore_unique(
    std::istream& is, core::HolisticOptions opts) {
  RestoredState st = parse_checkpoint(is, opts);
  try {
    return std::unique_ptr<AnalysisEngine>(
        new AnalysisEngine(std::move(st), opts));
  } catch (const CheckpointError&) {
    throw;
  } catch (const std::exception& e) {
    throw CheckpointError(std::string("checkpoint failed validation: ") +
                          e.what());
  }
}

AnalysisEngine::AnalysisEngine(RestoredState&& st, core::HolisticOptions opts)
    : empty_ctx_(std::make_shared<const core::AnalysisContext>(
          std::move(st.network))),
      opts_(opts),
      shard_by_domain_(st.shard_by_domain) {
  opts_.warm_start = {};  // the engine owns warm starting

  // Rebuild every shard's context directly from the persisted partition:
  // adding the shard's flows in local order reproduces the exact per-link
  // flow order (locals are kept ascending in global id, the one-context
  // engine's order), so the recomputed derived state and floating-point
  // aggregates are bit-identical to the saving engine's.
  locs_.assign(st.flows.size(), FlowLoc{});
  std::vector<bool> seen(st.flows.size(), false);
  shards_.reserve(st.shards.size());
  for (std::size_t si = 0; si < st.shards.size(); ++si) {
    RestoredShard& rs = st.shards[si];
    Shard s;
    core::AnalysisContext ctx = core::AnalysisContext::empty_clone(*empty_ctx_);
    net::FlowId prev(-1);
    std::vector<gmf::Flow> shard_flows;
    shard_flows.reserve(rs.to_global.size());
    for (const net::FlowId g : rs.to_global) {
      const auto gi = static_cast<std::size_t>(g.v);
      if (g.v < 0 || gi >= st.flows.size()) {
        throw std::logic_error("shard references an out-of-range flow id");
      }
      if (seen[gi]) {
        throw std::logic_error("flow assigned to more than one shard");
      }
      if (g <= prev) {
        throw std::logic_error("shard-local flow order is not ascending");
      }
      seen[gi] = true;
      prev = g;
      shard_flows.push_back(st.flows[gi]);
    }
    // Bulk append: validates every flow against the network and recomputes
    // each link's aggregates once (warm boot must not pay the sequential
    // path's quadratic per-link recompute).
    ctx.add_flows(std::move(shard_flows));
    if (rs.cache.flows.size() != rs.to_global.size()) {
      throw std::logic_error("shard cache is not parallel to its flow set");
    }
    s.ctx = std::make_shared<const core::AnalysisContext>(std::move(ctx));
    s.cache =
        std::make_shared<const core::HolisticResult>(std::move(rs.cache));
    s.to_global = std::move(rs.to_global);
    shards_.push_back(std::move(s));
  }
  for (std::size_t f = 0; f < seen.size(); ++f) {
    if (!seen[f]) {
      throw std::logic_error("flow " + std::to_string(f) +
                             " belongs to no shard");
    }
  }

  // Index the partition, rejecting links claimed by two shards (the
  // locality-domain invariant every later mutation leans on).
  for (std::uint32_t si = 0; si < shards_.size(); ++si) {
    const Shard& s = shards_[si];
    for (std::uint32_t l = 0; l < s.to_global.size(); ++l) {
      locs_[static_cast<std::size_t>(s.to_global[l].v)] = FlowLoc{si, l};
      for (const net::LinkRef link :
           s.ctx->route_links(net::FlowId(static_cast<std::int32_t>(l)))) {
        const auto [it, fresh] = link_shard_.emplace(link, si);
        if (!fresh && it->second != si) {
          throw std::logic_error("link owned by two shards");
        }
      }
    }
  }

  // Publish the restored world.  Every shard holds a persisted cache, so
  // this assembles and publishes without a single solver run — warm boot.
  assemble_and_publish();
}

}  // namespace gmfnet::engine
