// Checkpoint container (see checkpoint.hpp for the layout) and the
// AnalysisEngine::save / AnalysisEngine::restore entry points declared in
// engine/analysis_engine.hpp.  The engine members are defined here so the
// whole persisted-state format — byte primitives, section framing, and the
// engine field walk — lives in one translation unit.
#include "io/checkpoint.hpp"

#include <cstring>
#include <istream>
#include <sstream>
#include <ostream>
#include <utility>
#include <vector>

#include "core/context.hpp"
#include "core/holistic.hpp"
#include "engine/analysis_engine.hpp"
#include "gmf/flow.hpp"
#include "net/network.hpp"

namespace gmfnet::io {

std::uint64_t ckpt::fnv1a(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

// Section ids, in stream order.
constexpr std::uint32_t kSecEngine = 1;
constexpr std::uint32_t kSecNetwork = 2;
constexpr std::uint32_t kSecFlows = 3;
constexpr std::uint32_t kSecShards = 4;

// ---------------------------------------------------------------- writer --

/// Append-only little-endian byte buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void time(gmfnet::Time t) { i64(t.ps()); }
  void str(const std::string& s) {
    u64(s.size());
    buf_.append(s);
  }
  void raw(const std::string& s) { buf_.append(s); }

  [[nodiscard]] const std::string& bytes() const { return buf_; }

 private:
  std::string buf_;
};

// ---------------------------------------------------------------- reader --

/// Bounds-checked cursor over a byte range; every primitive read throws
/// CheckpointError instead of walking past the end, so truncated or
/// length-corrupted streams can never be misinterpreted as data.
class ByteReader {
 public:
  ByteReader(const char* data, std::size_t size, const char* what)
      : data_(data), size_(size), what_(what) {}

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] bool done() const { return pos_ == size_; }

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data_[pos_ + static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  gmfnet::Time time() { return gmfnet::Time(i64()); }
  std::string str() {
    const std::uint64_t len = u64();
    need(len);
    std::string out(data_ + pos_, static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return out;
  }
  /// A count of items that each occupy >= `min_item_bytes` in this reader:
  /// rejects counts the remaining bytes cannot possibly hold, so corrupted
  /// counts fail fast instead of driving giant allocations.
  std::size_t count(std::size_t min_item_bytes) {
    const std::uint64_t n = u64();
    if (min_item_bytes != 0 && n > remaining() / min_item_bytes) {
      throw CheckpointError(std::string(what_) +
                            ": item count exceeds stream size");
    }
    return static_cast<std::size_t>(n);
  }

  /// Sub-reader over the next `len` bytes (section body).
  ByteReader sub(std::size_t len, const char* what) {
    need(len);
    ByteReader r(data_ + pos_, len, what);
    pos_ += len;
    return r;
  }

 private:
  void need(std::uint64_t n) const {
    if (n > size_ - pos_) {
      throw CheckpointError(std::string("truncated stream (") + what_ + ")");
    }
  }

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  const char* what_;
};

void write_section(ByteWriter& payload, std::uint32_t id,
                   const ByteWriter& body) {
  payload.u32(id);
  payload.u64(body.bytes().size());
  payload.raw(body.bytes());
}

ByteReader read_section(ByteReader& payload, std::uint32_t expect,
                        const char* what) {
  const std::uint32_t id = payload.u32();
  if (id != expect) {
    throw CheckpointError(std::string("unexpected section while reading ") +
                          what);
  }
  const std::uint64_t len = payload.u64();
  if (len > payload.remaining()) {
    throw CheckpointError(std::string("section length overruns stream (") +
                          what + ")");
  }
  return payload.sub(static_cast<std::size_t>(len), what);
}

// -------------------------------------------------- field-level encoding --

void encode_network(ByteWriter& w, const net::Network& net) {
  w.u64(net.node_count());
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    const net::Node& n = net.node(net::NodeId(static_cast<std::int32_t>(i)));
    w.u8(static_cast<std::uint8_t>(n.kind));
    w.str(n.name);
    w.time(n.sw.croute);
    w.time(n.sw.csend);
    w.i32(n.sw.processors);
  }
  w.u64(net.links().size());
  for (const net::Link& l : net.links()) {
    w.i32(l.src.v);
    w.i32(l.dst.v);
    w.i64(l.speed_bps);
    w.time(l.prop);
  }
}

net::Network decode_network(ByteReader& r) {
  net::Network net;
  const std::size_t nodes = r.count(1 + 8 + 8 + 8 + 4);
  for (std::size_t i = 0; i < nodes; ++i) {
    const std::uint8_t kind = r.u8();
    std::string name = r.str();
    net::SwitchParams sw;
    sw.croute = r.time();
    sw.csend = r.time();
    sw.processors = r.i32();
    switch (kind) {
      case static_cast<std::uint8_t>(net::NodeKind::kEndHost):
        net.add_endhost(std::move(name));
        break;
      case static_cast<std::uint8_t>(net::NodeKind::kSwitch):
        net.add_switch(std::move(name), sw);
        break;
      case static_cast<std::uint8_t>(net::NodeKind::kRouter):
        net.add_router(std::move(name));
        break;
      default:
        throw CheckpointError("unknown node kind");
    }
  }
  const std::size_t links = r.count(4 + 4 + 8 + 8);
  for (std::size_t i = 0; i < links; ++i) {
    const net::NodeId src(r.i32());
    const net::NodeId dst(r.i32());
    const std::int64_t speed = r.i64();
    const gmfnet::Time prop = r.time();
    net.add_link(src, dst, speed, prop);  // throws on invalid link data
  }
  return net;
}

void encode_flow(ByteWriter& w, const gmf::Flow& f) {
  w.str(f.name());
  w.u64(f.route().node_count());
  for (const net::NodeId n : f.route().nodes()) w.i32(n.v);
  w.i64(f.priority());
  w.u8(f.rtp() ? 1 : 0);
  w.u64(f.frame_count());
  for (const gmf::FrameSpec& fr : f.frames()) {
    w.time(fr.min_separation);
    w.time(fr.deadline);
    w.time(fr.jitter);
    w.i64(fr.payload_bits);
  }
}

gmf::Flow decode_flow(ByteReader& r) {
  std::string name = r.str();
  const std::size_t hops = r.count(4);
  std::vector<net::NodeId> nodes;
  nodes.reserve(hops);
  for (std::size_t i = 0; i < hops; ++i) nodes.emplace_back(r.i32());
  const std::int64_t priority = r.i64();
  const bool rtp = r.u8() != 0;
  const std::size_t nframes = r.count(8 * 4);
  std::vector<gmf::FrameSpec> frames;
  frames.reserve(nframes);
  for (std::size_t k = 0; k < nframes; ++k) {
    gmf::FrameSpec fs;
    fs.min_separation = r.time();
    fs.deadline = r.time();
    fs.jitter = r.time();
    fs.payload_bits = r.i64();
    frames.push_back(fs);
  }
  return gmf::Flow(std::move(name), net::Route(std::move(nodes)),
                   std::move(frames), priority, rtp);
}

void encode_stage_key(ByteWriter& w, const core::StageKey& k) {
  w.u8(static_cast<std::uint8_t>(k.kind));
  w.i32(k.a.v);
  w.i32(k.b.v);
}

core::StageKey decode_stage_key(ByteReader& r) {
  const std::uint8_t kind = r.u8();
  core::StageKey k;
  switch (kind) {
    case static_cast<std::uint8_t>(core::StageKey::Kind::kLink):
      k.kind = core::StageKey::Kind::kLink;
      break;
    case static_cast<std::uint8_t>(core::StageKey::Kind::kIngress):
      k.kind = core::StageKey::Kind::kIngress;
      break;
    default:
      throw CheckpointError("unknown stage kind");
  }
  k.a = net::NodeId(r.i32());
  k.b = net::NodeId(r.i32());
  return k;
}

void encode_jitter_map(ByteWriter& w, const core::JitterMap& m) {
  w.u64(m.flow_slots());
  for (std::size_t f = 0; f < m.flow_slots(); ++f) {
    const net::FlowId id(static_cast<std::int32_t>(f));
    if (!m.has_entries(id)) {
      w.u8(0);
      continue;
    }
    w.u8(1);
    const core::JitterMap::StageEntries entries = m.stage_entries(id);
    w.u64(entries.size());
    for (const auto& [stage, frames] : entries) {
      encode_stage_key(w, stage);
      w.u64(frames.size());
      for (const gmfnet::Time t : frames) w.time(t);
    }
  }
}

core::JitterMap decode_jitter_map(ByteReader& r) {
  core::JitterMap m;
  const std::size_t slots = r.count(1);
  m.resize_slots(slots);
  for (std::size_t f = 0; f < slots; ++f) {
    if (r.u8() == 0) continue;
    const net::FlowId id(static_cast<std::int32_t>(f));
    const std::size_t stages = r.count(1 + 4 + 4 + 8);
    for (std::size_t s = 0; s < stages; ++s) {
      const core::StageKey key = decode_stage_key(r);
      const std::size_t nframes = r.count(8);
      std::vector<gmfnet::Time> frames;
      frames.reserve(nframes);
      for (std::size_t k = 0; k < nframes; ++k) frames.push_back(r.time());
      m.set_stage_frames(id, key, std::move(frames));
    }
  }
  return m;
}

void encode_holistic_result(ByteWriter& w, const core::HolisticResult& res) {
  w.u8(res.converged ? 1 : 0);
  w.u8(res.schedulable ? 1 : 0);
  w.i32(res.sweeps);
  w.u64(res.flows.size());
  for (const core::FlowResult& fr : res.flows) {
    w.u64(fr.frames.size());
    for (const core::FrameResult& frame : fr.frames) {
      w.time(frame.response);
      w.u8(frame.converged ? 1 : 0);
      w.u8(frame.meets_deadline ? 1 : 0);
      w.u64(frame.stages.size());
      for (const core::StageResponse& st : frame.stages) {
        encode_stage_key(w, st.stage);
        w.time(st.hop.response);
        w.u8(st.hop.converged ? 1 : 0);
        w.time(st.hop.busy_period);
        w.i64(st.hop.instances);
        w.i64(st.hop.iterations);
      }
    }
  }
  encode_jitter_map(w, res.jitters);
}

core::HolisticResult decode_holistic_result(ByteReader& r) {
  core::HolisticResult res;
  res.converged = r.u8() != 0;
  res.schedulable = r.u8() != 0;
  res.sweeps = r.i32();
  const std::size_t nflows = r.count(8);
  for (std::size_t f = 0; f < nflows; ++f) {
    core::FlowResult fr;
    const std::size_t nframes = r.count(8 + 1 + 1 + 8);
    for (std::size_t k = 0; k < nframes; ++k) {
      core::FrameResult frame;
      frame.response = r.time();
      frame.converged = r.u8() != 0;
      frame.meets_deadline = r.u8() != 0;
      const std::size_t nstages = r.count(1 + 4 + 4 + 8 + 1 + 8 + 8 + 8);
      for (std::size_t s = 0; s < nstages; ++s) {
        core::StageResponse st;
        st.stage = decode_stage_key(r);
        st.hop.response = r.time();
        st.hop.converged = r.u8() != 0;
        st.hop.busy_period = r.time();
        st.hop.instances = r.i64();
        st.hop.iterations = r.i64();
        frame.stages.push_back(std::move(st));
      }
      fr.frames.push_back(std::move(frame));
    }
    res.flows.push_back(std::move(fr));
  }
  res.jitters = decode_jitter_map(r);
  return res;
}

}  // namespace
}  // namespace gmfnet::io

// ------------------------------------------- engine save / restore entry --

namespace gmfnet::engine {

using io::CheckpointError;

void AnalysisEngine::save(std::ostream& os) {
  // Checkpoint the converged world: every shard gets a cache and the
  // restored engine can publish without solving.
  (void)evaluate();

  io::ByteWriter engine_sec;
  engine_sec.u8(shard_by_domain_ ? 1 : 0);
  engine_sec.u64(locs_.size());
  engine_sec.u64(shards_.size());
  // Analysis-option fingerprint: every field the persisted fixed points
  // depend on.  (Sweep order, thread count and the envelope fast path do
  // not change results — see core/holistic.hpp — so they are free to
  // differ across save/restore.)
  engine_sec.time(opts_.hop.horizon);
  engine_sec.u8(opts_.hop.charge_self_circ ? 1 : 0);
  engine_sec.i32(opts_.max_sweeps);

  io::ByteWriter network_sec;
  io::encode_network(network_sec, network());

  io::ByteWriter flows_sec;
  for (std::size_t i = 0; i < locs_.size(); ++i) {
    io::encode_flow(flows_sec, flow(i));
  }

  io::ByteWriter shards_sec;
  for (const Shard& s : shards_) {
    shards_sec.u64(s.to_global.size());
    for (const net::FlowId g : s.to_global) shards_sec.i32(g.v);
    shards_sec.u8(s.cache ? 1 : 0);
    if (s.cache) io::encode_holistic_result(shards_sec, *s.cache);
  }

  io::ByteWriter payload;
  io::write_section(payload, io::kSecEngine, engine_sec);
  io::write_section(payload, io::kSecNetwork, network_sec);
  io::write_section(payload, io::kSecFlows, flows_sec);
  io::write_section(payload, io::kSecShards, shards_sec);

  io::ByteWriter header;
  header.raw(std::string(io::ckpt::kMagic, sizeof io::ckpt::kMagic));
  header.u32(io::ckpt::kVersion);
  header.u64(payload.bytes().size());
  header.u64(io::ckpt::fnv1a(payload.bytes()));

  os.write(header.bytes().data(),
           static_cast<std::streamsize>(header.bytes().size()));
  os.write(payload.bytes().data(),
           static_cast<std::streamsize>(payload.bytes().size()));
  if (!os) throw std::runtime_error("checkpoint: stream write failed");
}

AnalysisEngine AnalysisEngine::restore(std::istream& is,
                                       core::HolisticOptions opts) {
  // Block-copy the stream (istreambuf_iterator would walk it char by char —
  // measurably slow for warm boot, where the whole point is restart speed).
  std::string buf;
  {
    std::ostringstream ss;
    ss << is.rdbuf();
    buf = std::move(ss).str();
  }
  if (buf.size() < io::ckpt::kHeaderSize) {
    throw CheckpointError("truncated stream (header)");
  }
  if (std::memcmp(buf.data(), io::ckpt::kMagic, sizeof io::ckpt::kMagic) !=
      0) {
    throw CheckpointError("bad magic — not a gmfnet checkpoint");
  }
  io::ByteReader header(buf.data() + sizeof io::ckpt::kMagic,
                        io::ckpt::kHeaderSize - sizeof io::ckpt::kMagic,
                        "header");
  const std::uint32_t version = header.u32();
  if (version != io::ckpt::kVersion) {
    throw CheckpointError(
        "unsupported format version " + std::to_string(version) +
        " (this build reads version " + std::to_string(io::ckpt::kVersion) +
        ")");
  }
  const std::uint64_t payload_len = header.u64();
  const std::uint64_t checksum = header.u64();
  if (payload_len != buf.size() - io::ckpt::kHeaderSize) {
    throw CheckpointError(
        payload_len > buf.size() - io::ckpt::kHeaderSize
            ? "truncated stream (payload shorter than declared)"
            : "trailing bytes after payload");
  }
  // Checksum and parse in place — no second copy of the payload on the
  // restart hot path.
  const char* payload_data = buf.data() + io::ckpt::kHeaderSize;
  const std::size_t payload_size = buf.size() - io::ckpt::kHeaderSize;
  if (io::ckpt::fnv1a(std::string_view(payload_data, payload_size)) !=
      checksum) {
    throw CheckpointError("corrupted stream (checksum mismatch)");
  }

  io::ByteReader payload(payload_data, payload_size, "payload");
  RestoredState st;
  try {
    io::ByteReader engine_sec =
        io::read_section(payload, io::kSecEngine, "engine section");
    st.shard_by_domain = engine_sec.u8() != 0;
    const std::size_t flow_count = engine_sec.u64();
    const std::size_t shard_count = engine_sec.u64();
    const gmfnet::Time horizon = engine_sec.time();
    const bool charge_self_circ = engine_sec.u8() != 0;
    const std::int32_t max_sweeps = engine_sec.i32();
    if (horizon != opts.hop.horizon ||
        charge_self_circ != opts.hop.charge_self_circ ||
        max_sweeps != opts.max_sweeps) {
      throw CheckpointError(
          "analysis options mismatch: the checkpoint's fixed points were "
          "solved under different hop.horizon / hop.charge_self_circ / "
          "max_sweeps — restore with the options the checkpoint was saved "
          "with");
    }
    if (!engine_sec.done()) {
      throw CheckpointError("engine section has trailing bytes");
    }

    io::ByteReader network_sec =
        io::read_section(payload, io::kSecNetwork, "network section");
    st.network = io::decode_network(network_sec);
    if (!network_sec.done()) {
      throw CheckpointError("network section has trailing bytes");
    }

    io::ByteReader flows_sec =
        io::read_section(payload, io::kSecFlows, "flows section");
    for (std::size_t i = 0; i < flow_count; ++i) {
      st.flows.push_back(io::decode_flow(flows_sec));
    }
    if (!flows_sec.done()) {
      throw CheckpointError("flows section has trailing bytes");
    }

    io::ByteReader shards_sec =
        io::read_section(payload, io::kSecShards, "shards section");
    for (std::size_t s = 0; s < shard_count; ++s) {
      RestoredShard shard;
      const std::size_t locals = shards_sec.count(4);
      shard.to_global.reserve(locals);
      for (std::size_t l = 0; l < locals; ++l) {
        shard.to_global.emplace_back(shards_sec.i32());
      }
      if (shards_sec.u8() == 0) {
        throw CheckpointError("shard " + std::to_string(s) +
                              " carries no converged state");
      }
      shard.cache = io::decode_holistic_result(shards_sec);
      st.shards.push_back(std::move(shard));
    }
    if (!shards_sec.done()) {
      throw CheckpointError("shards section has trailing bytes");
    }
    if (!payload.done()) {
      throw CheckpointError("trailing bytes after the last section");
    }
  } catch (const CheckpointError&) {
    throw;
  } catch (const std::exception& e) {
    // Structural/semantic validation failures from net/gmf/core builders.
    throw CheckpointError(std::string("invalid checkpoint data: ") +
                          e.what());
  }

  try {
    return AnalysisEngine(std::move(st), opts);
  } catch (const std::exception& e) {
    throw CheckpointError(std::string("checkpoint failed validation: ") +
                          e.what());
  }
}

AnalysisEngine::AnalysisEngine(RestoredState&& st, core::HolisticOptions opts)
    : empty_ctx_(std::make_shared<const core::AnalysisContext>(
          std::move(st.network))),
      opts_(opts),
      shard_by_domain_(st.shard_by_domain) {
  opts_.initial_jitters = nullptr;  // the engine owns warm starting

  // Rebuild every shard's context directly from the persisted partition:
  // adding the shard's flows in local order reproduces the exact per-link
  // flow order (locals are kept ascending in global id, the one-context
  // engine's order), so the recomputed derived state and floating-point
  // aggregates are bit-identical to the saving engine's.
  locs_.assign(st.flows.size(), FlowLoc{});
  std::vector<bool> seen(st.flows.size(), false);
  shards_.reserve(st.shards.size());
  for (std::size_t si = 0; si < st.shards.size(); ++si) {
    RestoredShard& rs = st.shards[si];
    Shard s;
    core::AnalysisContext ctx = core::AnalysisContext::empty_clone(*empty_ctx_);
    net::FlowId prev(-1);
    std::vector<gmf::Flow> shard_flows;
    shard_flows.reserve(rs.to_global.size());
    for (const net::FlowId g : rs.to_global) {
      const auto gi = static_cast<std::size_t>(g.v);
      if (g.v < 0 || gi >= st.flows.size()) {
        throw std::logic_error("shard references an out-of-range flow id");
      }
      if (seen[gi]) {
        throw std::logic_error("flow assigned to more than one shard");
      }
      if (g <= prev) {
        throw std::logic_error("shard-local flow order is not ascending");
      }
      seen[gi] = true;
      prev = g;
      shard_flows.push_back(st.flows[gi]);
    }
    // Bulk append: validates every flow against the network and recomputes
    // each link's aggregates once (warm boot must not pay the sequential
    // path's quadratic per-link recompute).
    ctx.add_flows(std::move(shard_flows));
    if (rs.cache.flows.size() != rs.to_global.size()) {
      throw std::logic_error("shard cache is not parallel to its flow set");
    }
    s.ctx = std::make_shared<const core::AnalysisContext>(std::move(ctx));
    s.cache =
        std::make_shared<const core::HolisticResult>(std::move(rs.cache));
    s.to_global = std::move(rs.to_global);
    shards_.push_back(std::move(s));
  }
  for (std::size_t f = 0; f < seen.size(); ++f) {
    if (!seen[f]) {
      throw std::logic_error("flow " + std::to_string(f) +
                             " belongs to no shard");
    }
  }

  // Index the partition, rejecting links claimed by two shards (the
  // locality-domain invariant every later mutation leans on).
  for (std::uint32_t si = 0; si < shards_.size(); ++si) {
    const Shard& s = shards_[si];
    for (std::uint32_t l = 0; l < s.to_global.size(); ++l) {
      locs_[static_cast<std::size_t>(s.to_global[l].v)] = FlowLoc{si, l};
      for (const net::LinkRef link :
           s.ctx->route_links(net::FlowId(static_cast<std::int32_t>(l)))) {
        const auto [it, fresh] = link_shard_.emplace(link, si);
        if (!fresh && it->second != si) {
          throw std::logic_error("link owned by two shards");
        }
      }
    }
  }

  // Publish the restored world.  Every shard holds a persisted cache, so
  // this assembles and publishes without a single solver run — warm boot.
  assemble_and_publish();
}

}  // namespace gmfnet::engine
