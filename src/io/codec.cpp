#include "io/codec.hpp"

#include <utility>
#include <vector>

namespace gmfnet::io::codec {

void encode_network(ByteWriter& w, const net::Network& net) {
  w.u64(net.node_count());
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    const net::Node& n = net.node(net::NodeId(static_cast<std::int32_t>(i)));
    w.u8(static_cast<std::uint8_t>(n.kind));
    w.str(n.name);
    w.time(n.sw.croute);
    w.time(n.sw.csend);
    w.i32(n.sw.processors);
  }
  w.u64(net.links().size());
  for (const net::Link& l : net.links()) {
    w.i32(l.src.v);
    w.i32(l.dst.v);
    w.i64(l.speed_bps);
    w.time(l.prop);
  }
}

net::Network decode_network(ByteReader& r) {
  net::Network net;
  const std::size_t nodes = r.count(1 + 8 + 8 + 8 + 4);
  for (std::size_t i = 0; i < nodes; ++i) {
    const std::uint8_t kind = r.u8();
    std::string name = r.str();
    net::SwitchParams sw;
    sw.croute = r.time();
    sw.csend = r.time();
    sw.processors = r.i32();
    switch (kind) {
      case static_cast<std::uint8_t>(net::NodeKind::kEndHost):
        net.add_endhost(std::move(name));
        break;
      case static_cast<std::uint8_t>(net::NodeKind::kSwitch):
        net.add_switch(std::move(name), sw);
        break;
      case static_cast<std::uint8_t>(net::NodeKind::kRouter):
        net.add_router(std::move(name));
        break;
      default:
        throw WireError("unknown node kind");
    }
  }
  const std::size_t links = r.count(4 + 4 + 8 + 8);
  for (std::size_t i = 0; i < links; ++i) {
    const net::NodeId src(r.i32());
    const net::NodeId dst(r.i32());
    const std::int64_t speed = r.i64();
    const gmfnet::Time prop = r.time();
    net.add_link(src, dst, speed, prop);  // throws on invalid link data
  }
  return net;
}

void encode_flow(ByteWriter& w, const gmf::Flow& f) {
  w.str(f.name());
  w.u64(f.route().node_count());
  for (const net::NodeId n : f.route().nodes()) w.i32(n.v);
  w.i64(f.priority());
  w.u8(f.rtp() ? 1 : 0);
  w.u64(f.frame_count());
  for (const gmf::FrameSpec& fr : f.frames()) {
    w.time(fr.min_separation);
    w.time(fr.deadline);
    w.time(fr.jitter);
    w.i64(fr.payload_bits);
  }
}

gmf::Flow decode_flow(ByteReader& r) {
  std::string name = r.str();
  const std::size_t hops = r.count(4);
  std::vector<net::NodeId> nodes;
  nodes.reserve(hops);
  for (std::size_t i = 0; i < hops; ++i) nodes.emplace_back(r.i32());
  const std::int64_t priority = r.i64();
  const bool rtp = r.u8() != 0;
  const std::size_t nframes = r.count(8 * 4);
  std::vector<gmf::FrameSpec> frames;
  frames.reserve(nframes);
  for (std::size_t k = 0; k < nframes; ++k) {
    gmf::FrameSpec fs;
    fs.min_separation = r.time();
    fs.deadline = r.time();
    fs.jitter = r.time();
    fs.payload_bits = r.i64();
    frames.push_back(fs);
  }
  return gmf::Flow(std::move(name), net::Route(std::move(nodes)),
                   std::move(frames), priority, rtp);
}

void encode_stage_key(ByteWriter& w, const core::StageKey& k) {
  w.u8(static_cast<std::uint8_t>(k.kind));
  w.i32(k.a.v);
  w.i32(k.b.v);
}

core::StageKey decode_stage_key(ByteReader& r) {
  const std::uint8_t kind = r.u8();
  core::StageKey k;
  switch (kind) {
    case static_cast<std::uint8_t>(core::StageKey::Kind::kLink):
      k.kind = core::StageKey::Kind::kLink;
      break;
    case static_cast<std::uint8_t>(core::StageKey::Kind::kIngress):
      k.kind = core::StageKey::Kind::kIngress;
      break;
    default:
      throw WireError("unknown stage kind");
  }
  k.a = net::NodeId(r.i32());
  k.b = net::NodeId(r.i32());
  return k;
}

void encode_jitter_map(ByteWriter& w, const core::JitterMap& m) {
  w.u64(m.flow_slots());
  for (std::size_t f = 0; f < m.flow_slots(); ++f) {
    const net::FlowId id(static_cast<std::int32_t>(f));
    if (!m.has_entries(id)) {
      w.u8(0);
      continue;
    }
    w.u8(1);
    const core::JitterMap::StageEntries entries = m.stage_entries(id);
    w.u64(entries.size());
    for (const auto& [stage, frames] : entries) {
      encode_stage_key(w, stage);
      w.u64(frames.size());
      for (const gmfnet::Time t : frames) w.time(t);
    }
  }
}

core::JitterMap decode_jitter_map(ByteReader& r) {
  core::JitterMap m;
  const std::size_t slots = r.count(1);
  m.resize_slots(slots);
  for (std::size_t f = 0; f < slots; ++f) {
    if (r.u8() == 0) continue;
    const net::FlowId id(static_cast<std::int32_t>(f));
    const std::size_t stages = r.count(1 + 4 + 4 + 8);
    for (std::size_t s = 0; s < stages; ++s) {
      const core::StageKey key = decode_stage_key(r);
      const std::size_t nframes = r.count(8);
      std::vector<gmfnet::Time> frames;
      frames.reserve(nframes);
      for (std::size_t k = 0; k < nframes; ++k) frames.push_back(r.time());
      m.set_stage_frames(id, key, std::move(frames));
    }
  }
  return m;
}

void encode_holistic_result(ByteWriter& w, const core::HolisticResult& res) {
  w.u8(res.converged ? 1 : 0);
  w.u8(res.schedulable ? 1 : 0);
  w.i32(res.sweeps);
  w.u64(res.flows.size());
  for (const core::FlowResult& fr : res.flows) {
    w.u64(fr.frames.size());
    for (const core::FrameResult& frame : fr.frames) {
      w.time(frame.response);
      w.u8(frame.converged ? 1 : 0);
      w.u8(frame.meets_deadline ? 1 : 0);
      w.u64(frame.stages.size());
      for (const core::StageResponse& st : frame.stages) {
        encode_stage_key(w, st.stage);
        w.time(st.hop.response);
        w.u8(st.hop.converged ? 1 : 0);
        w.time(st.hop.busy_period);
        w.i64(st.hop.instances);
        w.i64(st.hop.iterations);
      }
    }
  }
  encode_jitter_map(w, res.jitters);
}

core::HolisticResult decode_holistic_result(ByteReader& r) {
  core::HolisticResult res;
  res.converged = r.u8() != 0;
  res.schedulable = r.u8() != 0;
  res.sweeps = r.i32();
  const std::size_t nflows = r.count(8);
  for (std::size_t f = 0; f < nflows; ++f) {
    core::FlowResult fr;
    const std::size_t nframes = r.count(8 + 1 + 1 + 8);
    for (std::size_t k = 0; k < nframes; ++k) {
      core::FrameResult frame;
      frame.response = r.time();
      frame.converged = r.u8() != 0;
      frame.meets_deadline = r.u8() != 0;
      const std::size_t nstages = r.count(1 + 4 + 4 + 8 + 1 + 8 + 8 + 8);
      for (std::size_t s = 0; s < nstages; ++s) {
        core::StageResponse st;
        st.stage = decode_stage_key(r);
        st.hop.response = r.time();
        st.hop.converged = r.u8() != 0;
        st.hop.busy_period = r.time();
        st.hop.instances = r.i64();
        st.hop.iterations = r.i64();
        frame.stages.push_back(std::move(st));
      }
      fr.frames.push_back(std::move(frame));
    }
    res.flows.push_back(std::move(fr));
  }
  res.jitters = decode_jitter_map(r);
  return res;
}

}  // namespace gmfnet::io::codec
