#include "io/scenario_io.hpp"

#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace gmfnet::io {

ParseError::ParseError(std::size_t line, const std::string& message)
    : std::runtime_error("line " + std::to_string(line) + ": " + message),
      line_(line) {}

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

/// Strict integer parse shared by positional fields and Options::i64: the
/// whole token must be digits (no silent "100mbps" -> 100 truncation).
std::int64_t strict_i64(std::size_t line, const std::string& what,
                        const std::string& v) {
  try {
    std::size_t pos = 0;
    const std::int64_t out = std::stoll(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    throw ParseError(line, what + ": bad integer '" + v + "'");
  }
}

/// key=value option bag with typed accessors and line context.  Strict:
/// duplicate keys are rejected at construction, and reject_unconsumed()
/// (called after each directive is fully parsed) errors on any key no
/// accessor asked for — so typos like `pirority=5` or `gj_s=1` fail loudly
/// instead of silently vanishing into a `*_or` fallback.
class Options {
 public:
  Options(std::size_t line, const std::vector<std::string>& tokens,
          std::size_t first)
      : line_(line) {
    for (std::size_t i = first; i < tokens.size(); ++i) {
      const std::string& t = tokens[i];
      const auto eq = t.find('=');
      const std::string key = eq == std::string::npos ? t : t.substr(0, eq);
      const std::string val =
          eq == std::string::npos ? "" : t.substr(eq + 1);  // "" = bare flag
      if (!kv_.emplace(key, Entry{val, false}).second) {
        throw ParseError(line_, "duplicate option " + key);
      }
    }
  }

  [[nodiscard]] bool has(const std::string& key) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return false;
    it->second.consumed = true;
    return true;
  }

  [[nodiscard]] std::string str(const std::string& key) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) throw ParseError(line_, "missing option " + key);
    it->second.consumed = true;
    return it->second.value;
  }

  [[nodiscard]] std::int64_t i64(const std::string& key) const {
    return strict_i64(line_, "option " + key, str(key));
  }

  /// Throws on any option no accessor consumed — unknown or mistyped keys,
  /// and redundant ones (e.g. payload_bits together with payload_bytes).
  void reject_unconsumed() const {
    for (const auto& [key, entry] : kv_) {
      if (!entry.consumed) {
        throw ParseError(line_, "unknown or unused option '" + key + "'");
      }
    }
  }

  [[nodiscard]] std::int64_t i64_or(const std::string& key,
                                    std::int64_t fallback) const {
    return has(key) ? i64(key) : fallback;
  }

  /// Duration with unit-suffixed key: looks for <stem>_ps/_ns/_us/_ms.
  [[nodiscard]] gmfnet::Time duration(const std::string& stem) const {
    if (has(stem + "_ps")) return gmfnet::Time(i64(stem + "_ps"));
    if (has(stem + "_ns")) return gmfnet::Time::ns(i64(stem + "_ns"));
    if (has(stem + "_us")) return gmfnet::Time::us(i64(stem + "_us"));
    if (has(stem + "_ms")) return gmfnet::Time::ms(i64(stem + "_ms"));
    throw ParseError(line_, "missing duration " + stem +
                                "_{ps,ns,us,ms}=...");
  }

  [[nodiscard]] gmfnet::Time duration_or(const std::string& stem,
                                         gmfnet::Time fallback) const {
    if (has(stem + "_ps") || has(stem + "_ns") || has(stem + "_us") ||
        has(stem + "_ms")) {
      return duration(stem);
    }
    return fallback;
  }

 private:
  struct Entry {
    std::string value;
    /// Set by has()/str() even on const bags: consumption tracking is
    /// bookkeeping about the *parse*, not part of the option values.
    mutable bool consumed = false;
  };

  std::size_t line_;
  std::map<std::string, Entry> kv_;
};

struct PendingFlow {
  std::string name;
  std::int64_t priority = 0;
  bool rtp = false;
  std::vector<std::string> route_names;
  std::vector<gmf::FrameSpec> frames;
  std::size_t line = 0;
};

}  // namespace

workload::Scenario parse_scenario(const std::string& text) {
  workload::Scenario scenario;
  std::map<std::string, net::NodeId> nodes;
  std::vector<PendingFlow> flows;

  auto node_of = [&](std::size_t line, const std::string& name) {
    const auto it = nodes.find(name);
    if (it == nodes.end()) throw ParseError(line, "unknown node " + name);
    return it->second;
  };
  auto define_node = [&](std::size_t line, const std::string& name,
                         net::NodeId id) {
    if (!nodes.emplace(name, id).second) {
      throw ParseError(line, "duplicate node " + name);
    }
  };

  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::vector<std::string> tok = tokenize(line);
    if (tok.empty()) continue;
    const std::string& cmd = tok[0];

    if (cmd == "endhost" || cmd == "router") {
      if (tok.size() < 2) throw ParseError(lineno, cmd + ": missing name");
      if (tok.size() > 2) {
        // Same strictness as the option-bearing directives: trailing
        // tokens ("endhost h1 h2") must not vanish silently.
        throw ParseError(lineno, cmd + ": unexpected token '" + tok[2] +
                                     "' after name");
      }
      define_node(lineno, tok[1],
                  cmd == "endhost" ? scenario.network.add_endhost(tok[1])
                                   : scenario.network.add_router(tok[1]));
    } else if (cmd == "switch") {
      if (tok.size() < 2) throw ParseError(lineno, "switch: missing name");
      const Options opts(lineno, tok, 2);
      net::SwitchParams p;
      p.croute = opts.duration_or("croute", p.croute);
      p.csend = opts.duration_or("csend", p.csend);
      p.processors =
          static_cast<int>(opts.i64_or("processors", p.processors));
      opts.reject_unconsumed();
      define_node(lineno, tok[1], scenario.network.add_switch(tok[1], p));
    } else if (cmd == "link" || cmd == "duplex") {
      if (tok.size() < 4) {
        throw ParseError(lineno, cmd + ": need <a> <b> <speed_bps>");
      }
      const Options opts(lineno, tok, 4);
      const net::NodeId a = node_of(lineno, tok[1]);
      const net::NodeId b = node_of(lineno, tok[2]);
      // Strict: `duplex a b 100mbps` must error, not parse as 100 bps.
      const std::int64_t speed = strict_i64(lineno, cmd + ": speed", tok[3]);
      const gmfnet::Time prop = opts.duration_or("prop", gmfnet::Time::zero());
      opts.reject_unconsumed();
      try {
        if (cmd == "link") {
          scenario.network.add_link(a, b, speed, prop);
        } else {
          scenario.network.add_duplex_link(a, b, speed, prop);
        }
      } catch (const std::invalid_argument& e) {
        throw ParseError(lineno, e.what());
      }
    } else if (cmd == "flow") {
      if (tok.size() < 2) throw ParseError(lineno, "flow: missing name");
      const Options opts(lineno, tok, 2);
      PendingFlow f;
      f.name = tok[1];
      f.priority = opts.i64_or("prio", 0);
      f.rtp = opts.has("rtp");
      f.line = lineno;
      std::istringstream rs(opts.str("route"));
      std::string hop;
      while (std::getline(rs, hop, ',')) {
        if (!hop.empty()) f.route_names.push_back(hop);
      }
      if (f.route_names.size() < 2) {
        throw ParseError(lineno, "flow: route needs >= 2 nodes");
      }
      opts.reject_unconsumed();
      flows.push_back(std::move(f));
    } else if (cmd == "frame") {
      if (flows.empty()) {
        throw ParseError(lineno, "frame before any flow");
      }
      const Options opts(lineno, tok, 1);
      gmf::FrameSpec spec;
      spec.min_separation = opts.duration("t");
      spec.deadline = opts.duration("d");
      spec.jitter = opts.duration_or("gj", gmfnet::Time::zero());
      if (opts.has("payload_bits")) {
        spec.payload_bits = opts.i64("payload_bits");
      } else {
        spec.payload_bits = opts.i64("payload_bytes") * 8;
      }
      opts.reject_unconsumed();
      flows.back().frames.push_back(spec);
    } else {
      throw ParseError(lineno, "unknown directive '" + cmd + "'");
    }
  }

  for (PendingFlow& pf : flows) {
    std::vector<net::NodeId> hops;
    hops.reserve(pf.route_names.size());
    for (const std::string& n : pf.route_names) {
      hops.push_back(node_of(pf.line, n));
    }
    if (pf.frames.empty()) {
      throw ParseError(pf.line, "flow " + pf.name + " has no frames");
    }
    scenario.flows.emplace_back(pf.name, net::Route(std::move(hops)),
                                std::move(pf.frames), pf.priority, pf.rtp);
  }

  // Semantic validation (throws std::logic_error with context).
  scenario.network.validate();
  for (const gmf::Flow& f : scenario.flows) f.validate(scenario.network);
  return scenario;
}

workload::Scenario load_scenario(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path);
  std::stringstream ss;
  ss << f.rdbuf();
  return parse_scenario(ss.str());
}

namespace {

/// A name the line-oriented format can round-trip: non-empty, and free of
/// whitespace (the tokenizer would split it), '#' (the rest of the line
/// would be stripped as a comment) and ',' (route lists are comma-joined).
void require_formattable_name(const char* what, const std::string& name) {
  const auto bad = [&](const std::string& why) {
    throw std::invalid_argument("format_scenario: " + std::string(what) +
                                " name '" + name + "' " + why +
                                " and would not round-trip through the "
                                "scenario format");
  };
  if (name.empty()) bad("is empty");
  for (const char c : name) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0 ||
        static_cast<unsigned char>(c) < 0x20) {
      bad("contains whitespace");
    }
    if (c == '#') bad("contains '#'");
    if (c == ',') bad("contains ','");
  }
}

}  // namespace

std::string format_scenario(const workload::Scenario& scenario) {
  std::ostringstream os;
  os << "# gmfnet scenario v1\n";
  const net::Network& net = scenario.network;
  // The emitted file must parse back: reject names the parser cannot read,
  // and node names the parser would refuse as duplicate definitions.
  std::set<std::string> node_names;
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    const std::string& name =
        net.node(net::NodeId(static_cast<std::int32_t>(i))).name;
    require_formattable_name("node", name);
    if (!node_names.insert(name).second) {
      throw std::invalid_argument("format_scenario: duplicate node name '" +
                                  name +
                                  "' would not round-trip through the "
                                  "scenario format");
    }
  }
  for (const gmf::Flow& f : scenario.flows) {
    require_formattable_name("flow", f.name());
  }
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    const net::NodeId id(static_cast<std::int32_t>(i));
    const net::Node& n = net.node(id);
    switch (n.kind) {
      case net::NodeKind::kEndHost:
        os << "endhost " << n.name << "\n";
        break;
      case net::NodeKind::kRouter:
        os << "router " << n.name << "\n";
        break;
      case net::NodeKind::kSwitch:
        os << "switch " << n.name << " croute_ps=" << n.sw.croute.ps()
           << " csend_ps=" << n.sw.csend.ps()
           << " processors=" << n.sw.processors << "\n";
        break;
    }
  }
  for (const net::Link& l : net.links()) {
    os << "link " << net.node(l.src).name << " " << net.node(l.dst).name
       << " " << l.speed_bps << " prop_ps=" << l.prop.ps() << "\n";
  }
  for (const gmf::Flow& f : scenario.flows) {
    os << "flow " << f.name() << " prio=" << f.priority();
    if (f.rtp()) os << " rtp";
    os << " route=";
    for (std::size_t i = 0; i < f.route().node_count(); ++i) {
      if (i) os << ",";
      os << net.node(f.route().node_at(i)).name;
    }
    os << "\n";
    for (const gmf::FrameSpec& fr : f.frames()) {
      os << "frame t_ps=" << fr.min_separation.ps()
         << " d_ps=" << fr.deadline.ps() << " gj_ps=" << fr.jitter.ps()
         << " payload_bits=" << fr.payload_bits << "\n";
    }
  }
  return os.str();
}

bool save_scenario(const workload::Scenario& scenario,
                   const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << format_scenario(scenario);
  return static_cast<bool>(f);
}

}  // namespace gmfnet::io
