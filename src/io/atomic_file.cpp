#include "io/atomic_file.hpp"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <utility>

namespace gmfnet::io {

namespace {

FileFaultHook g_fault_hook;

/// True when the test hook wants this stage to fail.  A throwing hook
/// (simulated crash) propagates from here — exactly as if the process
/// died at this boundary, minus the temp-file litter a real crash leaves.
bool injected_failure(std::string_view stage, const std::string& path) {
  return g_fault_hook && g_fault_hook(stage, path);
}

[[nodiscard]] std::string errno_suffix() {
  return std::string(": ") + std::strerror(errno);
}

[[nodiscard]] std::string dir_of(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void fsync_dir(const std::string& dir) {
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) {
    throw AtomicFileError("cannot open directory " + dir + errno_suffix());
  }
  const int rc = ::fsync(dfd);
  ::close(dfd);
  if (rc != 0) {
    throw AtomicFileError("fsync of directory " + dir + " failed" +
                          errno_suffix());
  }
}

}  // namespace

void set_file_fault_hook(FileFaultHook hook) {
  g_fault_hook = std::move(hook);
}

AtomicFileWriter::AtomicFileWriter(std::string target, bool keep_previous)
    : target_(std::move(target)), keep_previous_(keep_previous) {
  if (target_.empty()) throw AtomicFileError("empty target path");
  static std::atomic<unsigned> counter{0};
  temp_ = target_ + ".tmp." + std::to_string(::getpid()) + "." +
          std::to_string(counter.fetch_add(1));
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) abort();
}

void AtomicFileWriter::abort() noexcept { ::unlink(temp_.c_str()); }

void AtomicFileWriter::commit() {
  if (committed_) throw AtomicFileError("commit() called twice");
  const std::string data = buf_.str();

  // 1. Write the complete new content to a temp file in the same
  //    directory (rename is only atomic within one filesystem).
  const int fd =
      ::open(temp_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw AtomicFileError("cannot create " + temp_ + errno_suffix());
  }
  std::size_t off = 0;
  bool write_failed = injected_failure("write", temp_);
  while (!write_failed && off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      write_failed = true;
      break;
    }
    off += static_cast<std::size_t>(n);
  }
  if (write_failed) {
    ::close(fd);
    abort();
    throw AtomicFileError("write to " + temp_ + " failed" + errno_suffix());
  }

  // 2. fsync the temp file: the bytes must be durable *before* the rename
  //    makes them visible, or a crash could leave a visible-but-empty
  //    target — the exact corruption this class exists to rule out.
  if (injected_failure("fsync", temp_) || ::fsync(fd) != 0) {
    ::close(fd);
    abort();
    throw AtomicFileError("fsync of " + temp_ + " failed" + errno_suffix());
  }
  ::close(fd);

  // 3. Optionally rotate the current target to .prev — from here until
  //    stage 4 completes the target path is absent, but .prev holds the
  //    last good content (the boot-recovery fallback).
  if (keep_previous_) {
    const std::string prev = previous_path(target_);
    if (injected_failure("rename-previous", prev)) {
      abort();
      throw AtomicFileError("rename of " + target_ + " to " + prev +
                            " failed" + errno_suffix());
    }
    if (::rename(target_.c_str(), prev.c_str()) != 0 && errno != ENOENT) {
      abort();
      throw AtomicFileError("rename of " + target_ + " to " + prev +
                            " failed" + errno_suffix());
    }
  }

  // 4. Atomically install the new content.
  if (injected_failure("rename", target_) ||
      ::rename(temp_.c_str(), target_.c_str()) != 0) {
    abort();
    throw AtomicFileError(
        "rename of " + temp_ + " to " + target_ + " failed" + errno_suffix() +
        (keep_previous_ ? "; last good content at " + previous_path(target_)
                        : std::string()));
  }

  // 5. fsync the directory so the rename itself survives a crash.
  const std::string dir = dir_of(target_);
  if (injected_failure("fsync-dir", dir)) {
    throw AtomicFileError("fsync of directory " + dir + " failed" +
                          errno_suffix());
  }
  fsync_dir(dir);
  committed_ = true;
}

void atomic_write_file(const std::string& target, std::string_view data,
                       bool keep_previous) {
  AtomicFileWriter w(target, keep_previous);
  w.stream().write(data.data(), static_cast<std::streamsize>(data.size()));
  w.commit();
}

}  // namespace gmfnet::io
