// Byte-level wire primitives shared by every binary format in the tree:
// the checkpoint container (io/checkpoint) and the operator RPC protocol
// (rpc/protocol) both serialize through the same little-endian writer and
// the same bounds-checked reader, so "strict decode" means one thing
// everywhere — a truncated or length-corrupted stream can never be
// misinterpreted as data, it throws.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/time.hpp"

namespace gmfnet::io {

/// Base of every binary-decode failure (CheckpointError, rpc's
/// ProtocolError).  The shared primitives below throw plain WireError;
/// format entry points catch and rewrap it with format context.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& message)
      : std::runtime_error(message) {}
};

/// FNV-1a 64-bit — the payload checksum of both binary formats.
[[nodiscard]] inline std::uint64_t fnv1a(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Append-only little-endian byte buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void time(gmfnet::Time t) { i64(t.ps()); }
  void str(const std::string& s) {
    u64(s.size());
    buf_.append(s);
  }
  void raw(std::string_view s) { buf_.append(s); }

  [[nodiscard]] const std::string& bytes() const { return buf_; }
  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked cursor over a byte range; every primitive read throws
/// WireError instead of walking past the end, so truncated or
/// length-corrupted streams can never be misinterpreted as data.
class ByteReader {
 public:
  ByteReader(const char* data, std::size_t size, const char* what)
      : data_(data), size_(size), what_(what) {}
  ByteReader(std::string_view data, const char* what)
      : ByteReader(data.data(), data.size(), what) {}

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] bool done() const { return pos_ == size_; }

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data_[pos_ + static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  gmfnet::Time time() { return gmfnet::Time(i64()); }
  std::string str() {
    const std::uint64_t len = u64();
    need(len);
    std::string out(data_ + pos_, static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return out;
  }
  /// A count of items that each occupy >= `min_item_bytes` in this reader:
  /// rejects counts the remaining bytes cannot possibly hold, so corrupted
  /// counts fail fast instead of driving giant allocations.
  std::size_t count(std::size_t min_item_bytes) {
    const std::uint64_t n = u64();
    if (min_item_bytes != 0 && n > remaining() / min_item_bytes) {
      throw WireError(std::string(what_) + ": item count exceeds stream size");
    }
    return static_cast<std::size_t>(n);
  }

  /// Sub-reader over the next `len` bytes (section body).
  ByteReader sub(std::size_t len, const char* what) {
    need(len);
    ByteReader r(data_ + pos_, len, what);
    pos_ += len;
    return r;
  }

 private:
  void need(std::uint64_t n) const {
    if (n > size_ - pos_) {
      throw WireError(std::string("truncated stream (") + what_ + ")");
    }
  }

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  const char* what_;
};

}  // namespace gmfnet::io
