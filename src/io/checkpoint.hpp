// Versioned binary checkpoint of a converged AnalysisEngine.
//
// A production admission controller serving a long-lived resident set
// cannot afford a cold holistic re-solve on every process restart; the
// converged per-shard fixed points are exactly the state worth keeping.
// AnalysisEngine::save writes them to a single self-describing stream and
// AnalysisEngine::restore (both declared in engine/analysis_engine.hpp,
// implemented here) rebuilds a fully warm engine from it without running
// the solver — the warm-boot analogue of replaying persisted switch state
// instead of reprogramming the ASIC from scratch.
//
// Container layout (all integers little-endian):
//
//   offset  size  field
//   0       8     magic "GMFNCKPT"
//   8       4     format version (u32); readers reject versions they do
//                 not know (forward-incompatible by design)
//   12      8     payload length in bytes (u64)
//   20      8     FNV-1a 64 checksum of the payload bytes (u64)
//   28      ...   payload: a sequence of length-prefixed sections
//
// Each section is `u32 section id, u64 body length, body`; the reader
// verifies ids, lengths and overall framing, so truncated or bit-flipped
// streams are rejected with a CheckpointError instead of being
// misinterpreted.  Sections (in order): engine header (mode, counts, the
// analysis-option fingerprint), network (nodes + links), flows (global-id
// order), shards (per shard: ascending global ids + the persisted
// HolisticResult, including its fixed-point JitterMap).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "io/wire.hpp"

namespace gmfnet::io {

/// Thrown by AnalysisEngine::restore on malformed checkpoint streams:
/// truncated input, checksum mismatch, bad magic, a forward-incompatible
/// format version, an analysis-option mismatch, or data that fails
/// semantic validation.  Derives WireError: the shared byte primitives
/// (io/wire.hpp) throw plain WireError, which the restore path rewraps.
class CheckpointError : public WireError {
 public:
  explicit CheckpointError(const std::string& message)
      : WireError("checkpoint: " + message) {}
};

namespace ckpt {

/// Container constants, shared with tests that forge malformed streams.
inline constexpr char kMagic[8] = {'G', 'M', 'F', 'N', 'C', 'K', 'P', 'T'};
/// Version 2 appended the solver mode to the engine section's
/// analysis-option fingerprint (version 1 streams are rejected: their fixed
/// points carry no record of the strategy that produced them).
inline constexpr std::uint32_t kVersion = 2;
inline constexpr std::size_t kVersionOffset = 8;
inline constexpr std::size_t kPayloadLenOffset = 12;
inline constexpr std::size_t kChecksumOffset = 20;
inline constexpr std::size_t kHeaderSize = 28;

/// FNV-1a 64-bit over `data` — the payload checksum (the shared wire
/// checksum; kept here for the tests that forge streams).
[[nodiscard]] inline std::uint64_t fnv1a(std::string_view data) {
  return io::fnv1a(data);
}

}  // namespace ckpt

}  // namespace gmfnet::io
