// Fitting GMF parameters from an observed packet trace.
//
// The paper assumes flow parameters are given; in practice an operator
// derives them from captures of the application's traffic.  Given a trace
// of (timestamp, payload) pairs, this module detects the GMF cycle length
// (e.g. 9 for an IBBPBBPBB MPEG stream) and extracts, per cycle slot, the
// *sound* GMF parameters: the minimum observed separation (a valid T^k
// lower bound) and the maximum observed payload (a valid S^k upper bound).
// Feeding the fitted flow to the analysis therefore yields bounds that are
// valid for every behaviour the trace exhibited.
#pragma once

#include <cstddef>
#include <vector>

#include "ethernet/constants.hpp"
#include "gmf/flow.hpp"
#include "util/time.hpp"

namespace gmfnet::gmf {

/// One observed packet release.
struct TracePacket {
  gmfnet::Time timestamp;
  ethernet::Bits payload_bits = 0;
};

/// Result of cycle detection.
struct CycleDetection {
  std::size_t cycle_length = 1;
  /// Mean per-slot payload spread (max-min, bits) at the chosen length;
  /// 0 means the trace is perfectly periodic in sizes at this length.
  double residual = 0.0;
};

/// Detects the most plausible GMF cycle length in [1, max_cycle] by
/// minimizing the per-slot payload spread, with a mild parsimony penalty so
/// n=1 wins on genuinely sporadic traffic and multiples of the true cycle
/// do not.  Requires at least 2 full candidate cycles of samples for a
/// length to be considered.
[[nodiscard]] CycleDetection detect_cycle(
    const std::vector<TracePacket>& trace, std::size_t max_cycle = 32);

/// Per-slot fitted parameters (before conversion to FrameSpec).
struct FittedSlot {
  gmfnet::Time min_separation;   ///< min observed gap slot k -> k+1
  ethernet::Bits max_payload = 0;
  std::size_t samples = 0;
};

/// Extracts per-slot parameters at a given cycle length.  The trace must
/// hold at least cycle_length + 1 packets (so every slot has a separation
/// sample).  The slot phase is anchored at the first packet.
[[nodiscard]] std::vector<FittedSlot> fit_slots(
    const std::vector<TracePacket>& trace, std::size_t cycle_length);

/// End-to-end convenience: detect the cycle, fit the slots and build a
/// Flow.  `deadline` and `jitter` are specification inputs (a trace cannot
/// reveal deadlines; jitter may be measured separately).
[[nodiscard]] Flow fit_gmf_flow(const std::vector<TracePacket>& trace,
                                std::string name, net::Route route,
                                gmfnet::Time deadline,
                                gmfnet::Time jitter = gmfnet::Time::zero(),
                                std::int64_t priority = 0, bool rtp = false,
                                std::size_t max_cycle = 32);

}  // namespace gmfnet::gmf
