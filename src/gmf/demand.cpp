#include "gmf/demand.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <unordered_map>

namespace gmfnet::gmf {

namespace {
std::uint64_t next_uid() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

DemandCurve::DemandCurve(const FlowLinkParams& p)
    : uid_(next_uid()), tsum_(p.tsum()), csum_(p.csum()), nsum_(p.nsum()) {
  const std::size_t n = p.frame_count();

  // Enumerate every window (phase k1 in [0,n), length k2 in [1,n]) and
  // dedupe equal spans as they are produced, keeping the per-span maxima.
  // Real traces repeat separations heavily (a constant-rate MPEG cycle has
  // only n distinct spans out of n^2 windows), so deduping first shrinks the
  // sort from O(n^2 log n) to O(u log u) over the u unique spans.
  struct Best {
    gmfnet::Time::rep cost;
    std::int64_t count;
  };
  std::unordered_map<gmfnet::Time::rep, Best> by_span;
  // Reserve for the common dedupe-heavy shape (constant-rate traces have
  // ~n unique spans); irregular traces grow geometrically from there
  // instead of committing a worst-case n^2 bucket array up front.
  by_span.reserve(2 * n);
  for (std::size_t k1 = 0; k1 < n; ++k1) {
    for (std::size_t k2 = 1; k2 <= n; ++k2) {
      const gmfnet::Time::rep span = p.tsum_window(k1, k2).ps();
      const gmfnet::Time::rep cost = p.csum_window(k1, k2).ps();
      const std::int64_t count = p.nsum_window(k1, k2);
      auto [it, inserted] = by_span.try_emplace(span, Best{cost, count});
      if (!inserted) {
        it->second.cost = std::max(it->second.cost, cost);
        it->second.count = std::max(it->second.count, count);
      }
    }
  }

  steps_.reserve(by_span.size());
  for (const auto& [span, best] : by_span) {
    steps_.push_back(Step{span, best.cost, best.count});
  }
  std::sort(steps_.begin(), steps_.end(),
            [](const Step& a, const Step& b) { return a.span < b.span; });

  // Turn per-span maxima into a staircase: running prefix maxima, dropping
  // steps dominated by a shorter span (keeps queries branch-light and the
  // envelope arrays minimal).
  gmfnet::Time::rep best_cost = 0;
  std::int64_t best_count = 0;
  std::size_t out = 0;
  for (const Step& s : steps_) {
    best_cost = std::max(best_cost, s.max_cost);
    best_count = std::max(best_count, s.max_count);
    if (out > 0 && steps_[out - 1].max_cost == best_cost &&
        steps_[out - 1].max_count == best_count) {
      continue;  // dominated: adds span without raising either maximum
    }
    steps_[out++] = Step{s.span, best_cost, best_count};
  }
  steps_.resize(out);
}

namespace {
/// Index of the last step with span <= t, or -1.
template <typename Steps>
std::ptrdiff_t last_leq(const Steps& steps, gmfnet::Time::rep t) {
  auto it = std::upper_bound(
      steps.begin(), steps.end(), t,
      [](gmfnet::Time::rep v, const auto& s) { return v < s.span; });
  return it - steps.begin() - 1;
}
}  // namespace

gmfnet::Time DemandCurve::mxs(gmfnet::Time t) const {
  if (t < gmfnet::Time::zero()) return gmfnet::Time::zero();
  const std::ptrdiff_t i = last_leq(steps_, t.ps());
  // Span-0 (single-frame) windows qualify at any t >= 0, so i >= 0 here.
  assert(i >= 0);
  return gmfnet::Time(steps_[static_cast<std::size_t>(i)].max_cost);
}

gmfnet::Time DemandCurve::mx(gmfnet::Time t) const {
  if (t < gmfnet::Time::zero()) return gmfnet::Time::zero();
  assert(tsum_ > gmfnet::Time::zero());
  const auto q = t.floor_div(tsum_);
  const gmfnet::Time rem = t.mod(tsum_);
  return q * csum_ + mxs(rem);
}

std::int64_t DemandCurve::nxs(gmfnet::Time t) const {
  if (t < gmfnet::Time::zero()) return 0;
  const std::ptrdiff_t i = last_leq(steps_, t.ps());
  assert(i >= 0);
  return steps_[static_cast<std::size_t>(i)].max_count;
}

std::int64_t DemandCurve::nx(gmfnet::Time t) const {
  if (t < gmfnet::Time::zero()) return 0;
  assert(tsum_ > gmfnet::Time::zero());
  const auto q = t.floor_div(tsum_);
  const gmfnet::Time rem = t.mod(tsum_);
  return q * nsum_ + nxs(rem);
}

}  // namespace gmfnet::gmf
