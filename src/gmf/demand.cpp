#include "gmf/demand.hpp"

#include <algorithm>
#include <cassert>

namespace gmfnet::gmf {

DemandCurve::DemandCurve(const FlowLinkParams& p)
    : tsum_(p.tsum()), csum_(p.csum()), nsum_(p.nsum()) {
  const std::size_t n = p.frame_count();

  // Enumerate every window: phase k1 in [0,n), length k2 in [1,n].
  struct Raw {
    gmfnet::Time::rep span;
    gmfnet::Time::rep cost;
    std::int64_t count;
  };
  std::vector<Raw> raw;
  raw.reserve(n * n);
  for (std::size_t k1 = 0; k1 < n; ++k1) {
    for (std::size_t k2 = 1; k2 <= n; ++k2) {
      raw.push_back(Raw{p.tsum_window(k1, k2).ps(),
                        p.csum_window(k1, k2).ps(),
                        p.nsum_window(k1, k2)});
    }
  }
  std::sort(raw.begin(), raw.end(),
            [](const Raw& a, const Raw& b) { return a.span < b.span; });

  // Collapse to a staircase: strictly increasing spans carrying the running
  // maxima of cost and count.
  steps_.reserve(raw.size());
  gmfnet::Time::rep best_cost = 0;
  std::int64_t best_count = 0;
  for (const Raw& r : raw) {
    best_cost = std::max(best_cost, r.cost);
    best_count = std::max(best_count, r.count);
    if (!steps_.empty() && steps_.back().span == r.span) {
      steps_.back().max_cost = best_cost;
      steps_.back().max_count = best_count;
    } else {
      steps_.push_back(Step{r.span, best_cost, best_count});
    }
  }
}

namespace {
/// Index of the last step with span <= t, or -1.
template <typename Steps>
std::ptrdiff_t last_leq(const Steps& steps, gmfnet::Time::rep t) {
  auto it = std::upper_bound(
      steps.begin(), steps.end(), t,
      [](gmfnet::Time::rep v, const auto& s) { return v < s.span; });
  return it - steps.begin() - 1;
}
}  // namespace

gmfnet::Time DemandCurve::mxs(gmfnet::Time t) const {
  if (t < gmfnet::Time::zero()) return gmfnet::Time::zero();
  const std::ptrdiff_t i = last_leq(steps_, t.ps());
  // Span-0 (single-frame) windows qualify at any t >= 0, so i >= 0 here.
  assert(i >= 0);
  return gmfnet::Time(steps_[static_cast<std::size_t>(i)].max_cost);
}

gmfnet::Time DemandCurve::mx(gmfnet::Time t) const {
  if (t < gmfnet::Time::zero()) return gmfnet::Time::zero();
  assert(tsum_ > gmfnet::Time::zero());
  const auto q = t.floor_div(tsum_);
  const gmfnet::Time rem = t.mod(tsum_);
  return q * csum_ + mxs(rem);
}

std::int64_t DemandCurve::nxs(gmfnet::Time t) const {
  if (t < gmfnet::Time::zero()) return 0;
  const std::ptrdiff_t i = last_leq(steps_, t.ps());
  assert(i >= 0);
  return steps_[static_cast<std::size_t>(i)].max_count;
}

std::int64_t DemandCurve::nx(gmfnet::Time t) const {
  if (t < gmfnet::Time::zero()) return 0;
  assert(tsum_ > gmfnet::Time::zero());
  const auto q = t.floor_div(tsum_);
  const gmfnet::Time rem = t.mod(tsum_);
  return q * nsum_ + nxs(rem);
}

}  // namespace gmfnet::gmf
