// The generalized multiframe (GMF) flow model of §2.3, extended with the
// paper's "generalized jitter".
//
// A flow τ_i is a cyclic sequence of n_i frames (frame = one UDP packet per
// release, NOT an Ethernet frame).  Frame k is described by:
//   T_i^k  — minimum separation between the arrival of frame k and frame
//            (k+1) mod n_i at the source,
//   D_i^k  — relative end-to-end deadline of frame k,
//   GJ_i^k — generalized jitter: the Ethernet frames of one release of frame
//            k are released within [t, t+GJ_i^k),
//   S_i^k  — payload bits of the UDP packet of frame k.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ethernet/constants.hpp"
#include "net/ids.hpp"
#include "net/route.hpp"
#include "util/time.hpp"

namespace gmfnet::gmf {

/// Per-frame parameters of one frame of a GMF flow.
struct FrameSpec {
  gmfnet::Time min_separation;            ///< T_i^k
  gmfnet::Time deadline;                  ///< D_i^k (end-to-end, relative)
  gmfnet::Time jitter = gmfnet::Time::zero();  ///< GJ_i^k at the source
  ethernet::Bits payload_bits = 0;        ///< S_i^k

  /// Field-wise value equality (checkpoint round-trip verification).
  bool operator==(const FrameSpec&) const = default;
};

/// A GMF flow with its route and static priority.
///
/// `priority`: larger value = more urgent (matching 802.1p PCP ordering).
/// `rtp`: when true, packetization adds the 16-byte RTP header (§3.1).
class Flow {
 public:
  Flow() = default;
  Flow(std::string name, net::Route route, std::vector<FrameSpec> frames,
       std::int64_t priority = 0, bool rtp = false);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const net::Route& route() const { return route_; }
  [[nodiscard]] std::int64_t priority() const { return priority_; }
  [[nodiscard]] bool rtp() const { return rtp_; }

  [[nodiscard]] net::NodeId source() const { return route_.source(); }
  [[nodiscard]] net::NodeId destination() const {
    return route_.destination();
  }

  /// n_i: number of frames in the GMF cycle.
  [[nodiscard]] std::size_t frame_count() const { return frames_.size(); }
  [[nodiscard]] const FrameSpec& frame(std::size_t k) const {
    return frames_[k];
  }
  [[nodiscard]] const std::vector<FrameSpec>& frames() const {
    return frames_;
  }

  /// TSUM_i (eq 6): sum of all minimum separations — the cycle length.
  [[nodiscard]] gmfnet::Time tsum() const;

  /// TSUM_i(k1, k2) (eq 9): time from the arrival of frame k1 to the arrival
  /// of frame k1+k2-1 (indices mod n_i), i.e. the minimum span containing k2
  /// consecutive frame arrivals.  k2 >= 1; TSUM(k1, 1) == 0.
  [[nodiscard]] gmfnet::Time tsum_window(std::size_t k1, std::size_t k2) const;

  /// Largest source jitter over all frames.
  [[nodiscard]] gmfnet::Time max_source_jitter() const;
  /// Smallest relative deadline over all frames.
  [[nodiscard]] gmfnet::Time min_deadline() const;

  /// nbits_i^k: UDP datagram bits of frame k (payload + UDP [+ RTP]).
  [[nodiscard]] ethernet::Bits nbits(std::size_t k) const;

  /// Structural checks: >= 1 frame, positive separations, non-negative
  /// jitter/payload, positive deadlines, valid route.  Throws
  /// std::logic_error on the first violation.
  void validate(const net::Network& net) const;

  void set_priority(std::int64_t p) { priority_ = p; }
  void set_name(std::string n) { name_ = std::move(n); }

  /// Field-wise value equality — two flows are equal iff every serialized
  /// attribute (name, route, frames, priority, rtp) matches.  The
  /// checkpoint round-trip tests lean on this to prove a restored resident
  /// set is the saved one, bit for bit.
  bool operator==(const Flow&) const = default;

 private:
  std::string name_;
  net::Route route_;
  std::vector<FrameSpec> frames_;
  std::int64_t priority_ = 0;
  bool rtp_ = false;
};

/// Convenience: a sporadic flow is the GMF special case n_i = 1.
[[nodiscard]] Flow make_sporadic_flow(std::string name, net::Route route,
                                      gmfnet::Time period,
                                      gmfnet::Time deadline,
                                      ethernet::Bits payload_bits,
                                      std::int64_t priority = 0,
                                      gmfnet::Time jitter = gmfnet::Time::zero(),
                                      bool rtp = false);

}  // namespace gmfnet::gmf
