// LevelEnvelope: the merged interferer-demand view of one hop analysis.
//
// Within one per-hop analysis (eqs 14-18 / 21-27 / 28-35) the jitter offsets
// extra_j are constants, so the k interferer request-bound curves the busy
// and queueing recurrences keep re-evaluating — MX_j(t + extra_j) and
// NX_j(t + extra_j) — form a fixed set of jitter-shifted staircases.  The
// envelope pre-merges them once into flat contiguous arrays (packed
// (span, cumulative max_cost, max_count) steps, one range per interferer,
// plus each interferer's periodic (TSUM, CSUM, NSUM) tail) so that a
// fixed-point iteration evaluates the whole level's interference in one
// cache-friendly pass instead of k separate binary searches over k
// scattered vectors.
// The analysed flow itself is deliberately *not* an envelope entry: its
// jitter changes from frame to frame (Figure 6 lines 8/13/17), and keeping
// it out means those writes never invalidate a built envelope.
//
// The second half of the win is the EvalCursor: iterate_fixed_point produces
// a monotonically non-decreasing sequence of iterates (see
// util/fixed_point.hpp), so instead of a binary search plus two 64-bit
// divisions per interferer per query, the cursor remembers each
// interferer's (cycle base, step) position from the previous query and
// advances it forward — O(1) amortized, division-free.  A query that jumps
// backwards (a new w(q) chain re-seeding below the previous chain's fixed
// point) or wraps into a new GMF cycle falls back to one division + binary
// search, so correctness never depends on monotonicity.
//
// Results are bit-identical to summing DemandCurve::mx/nx per interferer:
// both paths select the same staircase step and int64 picosecond sums are
// exact and order-independent (tests/test_envelope.cpp pins this).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "gmf/demand.hpp"
#include "util/time.hpp"

namespace gmfnet::gmf {

/// One interferer of a hop analysis: its request-bound curve and its
/// constant jitter shift extra_j for this hop.
struct EnvelopeSpec {
  const DemandCurve* curve = nullptr;
  gmfnet::Time shift;  ///< extra_j: evaluated at MX/NX(t + shift)
};

/// Total interferer demand at one instant.
struct EnvelopeSums {
  gmfnet::Time::rep cost = 0;  ///< sum of MX_j(t+e_j)
  std::int64_t count = 0;      ///< sum of NX_j(t+e_j)
};

class LevelEnvelope;

/// Per-interferer forward positions of the monotone fixed-point iteration.
/// Bound to one envelope build; automatically resets when the envelope it is
/// used with was rebuilt.
class EvalCursor {
 public:
  void reset() { bound_build_ = 0; }

 private:
  friend class LevelEnvelope;
  struct Pos {
    gmfnet::Time::rep cycle_start;  ///< current cycle's start, shifted time
    gmfnet::Time::rep cycle_cost;   ///< cycle index * CSUM
    std::int64_t cycle_count;       ///< cycle index * NSUM
    std::uint32_t idx;              ///< current step (global step index)
  };
  std::vector<Pos> pos_;
  const LevelEnvelope* bound_env_ = nullptr;
  std::uint64_t bound_build_ = 0;  ///< 0 = unbound
};

class LevelEnvelope {
 public:
  /// Makes the envelope hold exactly `specs[0..n)`: reuses the current build
  /// when the (curve uid, shift) fingerprint matches (returns true),
  /// otherwise rebuilds the merged arrays (returns false).
  bool ensure(const EnvelopeSpec* specs, std::size_t n);

  /// Total interferer demand at `t`; bit-identical to summing
  /// curve->mx(t+shift) and curve->nx(t+shift) over the entries.  `cur`
  /// carries the forward positions between calls; non-monotone queries are
  /// handled (division + binary-search fallback), monotone ones are O(1)
  /// amortized and division-free.  Defined inline below so each call site
  /// specializes the loop (and unused sum halves fall away).
  [[nodiscard]] EnvelopeSums eval(gmfnet::Time t, EvalCursor& cur) const;

  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }

 private:
  /// Per-entry hot state, touched every iteration: 24 bytes, nothing else.
  struct Entry {
    gmfnet::Time::rep shift;
    gmfnet::Time::rep tsum;
    std::uint32_t begin;  ///< step range [begin, end) in steps_
    std::uint32_t end;
  };
  /// Per-entry cold state: needed only on cycle wraps and revalidation.
  struct EntryTail {
    std::uint64_t curve_uid;
    gmfnet::Time::rep csum;  ///< periodic cost tail per whole cycle
    std::int64_t nsum;       ///< periodic count tail per whole cycle
  };

  void bind(EvalCursor& cur) const;

  std::vector<Entry> entries_;
  std::vector<EntryTail> tails_;  ///< parallel to entries_
  /// Flattened steps of all entries, contiguous per entry, packed
  /// (span, cost, count) together so one advance touches one cache line:
  /// spans strictly increasing within each [begin, end), cost/count the
  /// matching prefix maxima.
  std::vector<DemandCurve::Step> steps_;
  std::uint64_t build_ = 0;  ///< bumped on every rebuild (cursor binding)
};

inline void LevelEnvelope::bind(EvalCursor& cur) const {
  if (cur.bound_env_ == this && cur.bound_build_ == build_) return;
  cur.pos_.resize(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    // Fresh state = start of cycle 0 at the entry's span-0 step; a first
    // query inside cycle 0 can then take the fast path directly.
    EvalCursor::Pos& p = cur.pos_[i];
    p.cycle_start = 0;
    p.cycle_cost = 0;
    p.cycle_count = 0;
    p.idx = entries_[i].begin;
  }
  cur.bound_env_ = this;
  cur.bound_build_ = build_;
}

inline EnvelopeSums LevelEnvelope::eval(gmfnet::Time t,
                                        EvalCursor& cur) const {
  bind(cur);
  EnvelopeSums sums;
  const gmfnet::Time::rep tv = t.ps();
  const Entry* entries = entries_.data();
  const DemandCurve::Step* steps = steps_.data();
  EvalCursor::Pos* pos = cur.pos_.data();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries[i];
    const gmfnet::Time::rep shifted = tv + e.shift;
    if (shifted < 0) continue;  // MX/NX are zero for negative windows
    assert(e.tsum > 0);

    EvalCursor::Pos& p = pos[i];
    const gmfnet::Time::rep rem = shifted - p.cycle_start;
    if (rem >= 0 && rem < e.tsum && steps[p.idx].span <= rem) {
      // Monotone fast path, division-free: same GMF cycle and the current
      // step still applies, so the position can only advance forward.  (A
      // query that moved backwards but stayed within the current step's
      // range is equally served — the selected step is the same.)
      while (p.idx + 1 < e.end && steps[p.idx + 1].span <= rem) ++p.idx;
    } else {
      // Cycle wrap or backward jump (fresh w(q) chain): one division pair
      // and one binary search re-anchor the position.
      const EntryTail& tail = tails_[i];
      const gmfnet::Time::rep cycle = shifted / e.tsum;
      const gmfnet::Time::rep in_cycle = shifted % e.tsum;
      p.cycle_start = shifted - in_cycle;
      p.cycle_cost = cycle * tail.csum;
      p.cycle_count = cycle * tail.nsum;
      const auto first = steps_.begin() + e.begin;
      const auto last = steps_.begin() + e.end;
      const auto it = std::upper_bound(
          first, last, in_cycle,
          [](gmfnet::Time::rep v, const DemandCurve::Step& s) {
            return v < s.span;
          });
      p.idx = static_cast<std::uint32_t>(it - steps_.begin() - 1);
    }
    assert(p.idx >= e.begin && p.idx < e.end &&
           steps[p.idx].span <= shifted - p.cycle_start);

    const DemandCurve::Step& s = steps[p.idx];
    sums.cost += p.cycle_cost + s.max_cost;
    sums.count += p.cycle_count + s.max_count;
  }
  return sums;
}

}  // namespace gmfnet::gmf
