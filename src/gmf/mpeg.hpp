// MPEG GOP -> GMF flow conversion (Figure 3 of the paper).
//
// An MPEG stream with a repeating group of pictures such as IBBPBBPBB is
// exactly a GMF flow: one "frame" (UDP packet) per picture, cycling through
// the per-picture-type sizes.  The paper's Figure 3 transmits the GOP in
// decode order, with the leading I coalesced with the following P into a
// single "I+P" packet, yielding the 9-frame cycle
//   I+P, B, B, P, B, B, P?, ...  (see note below) — we reproduce the
// figure's transmission row verbatim: I+P B B P B B P B B, with every frame
// 30 ms apart (TSUM = 270 ms, matching eq (6)'s worked value).
#pragma once

#include <string>
#include <vector>

#include "gmf/flow.hpp"

namespace gmfnet::gmf {

/// Per-picture-type sizes of an MPEG stream, in payload bits per UDP packet.
///
/// Figure 4 of the paper carries concrete per-frame values but survives only
/// as an image; these defaults are representative of a CIF video-conference
/// stream at ~1 Mbit/s mean rate and are the documented substitution (see
/// DESIGN.md).  All three are configurable.
struct MpegSizes {
  ethernet::Bits i_bits = 12'000 * 8;  ///< I picture (12 kB)
  ethernet::Bits p_bits = 4'000 * 8;   ///< P picture (4 kB)
  ethernet::Bits b_bits = 1'500 * 8;   ///< B picture (1.5 kB)
};

/// Transmission-order pattern of Figure 3: the first slot carries I and the
/// first P together ("I+P"), then the GOP continues.
inline constexpr const char* kFigure3Pattern = "XBBPBBPBB";  // X = I+P

/// Builds a GMF flow for an MPEG stream.
///
/// `pattern` is a string over {I, P, B, X} giving the per-slot picture type
/// in transmission order; X denotes the coalesced I+P packet of Figure 3.
/// Every slot is `frame_spacing` after the previous (Figure 3 uses 30 ms),
/// all slots share `deadline` and `jitter`.
[[nodiscard]] Flow make_mpeg_flow(std::string name, net::Route route,
                                  const std::string& pattern,
                                  const MpegSizes& sizes,
                                  gmfnet::Time frame_spacing,
                                  gmfnet::Time deadline,
                                  gmfnet::Time jitter = gmfnet::Time::zero(),
                                  std::int64_t priority = 0, bool rtp = false);

/// The exact Figure-3 stream: pattern IBBPBBPBB transmitted as
/// X B B P B B P B B with 30 ms spacing.
[[nodiscard]] Flow make_figure3_flow(std::string name, net::Route route,
                                     const MpegSizes& sizes = {},
                                     gmfnet::Time deadline = gmfnet::Time::ms(100),
                                     gmfnet::Time jitter = gmfnet::Time::ms(1),
                                     std::int64_t priority = 0);

}  // namespace gmfnet::gmf
