// Request-bound functions MXS/MX (eqs 10-11) and NXS/NX (eqs 12-13).
//
// MXS(τ_j, link, t) bounds the link time flow τ_j can demand within any
// window of length t; NXS bounds the number of Ethernet frames.  Both are
// maxima over all windows of k2 consecutive frames starting at any phase k1
// whose arrival span TSUM(k1,k2) fits in t.  MX/NX extend them to arbitrary
// t by peeling off whole GMF cycles.
//
// Window semantics (DESIGN.md correction #7): windows are *right-closed* —
// an arrival exactly at the window edge counts, so MXS(0) is the largest
// single frame (the critical-instant release), and eq (10)'s min(t, ...)
// cap is dropped.  As printed, the capped open-window reading makes
// w = q*CSUM a fixed point of eq (17), which would erase all interference;
// the right-closed uncapped bound is the standard request-bound function of
// fixed-point response-time analysis and is what eqs (15)/(17) need to be
// meaningful.
//
// Because the fixed-point iterations evaluate these thousands of times, the
// max-over-windows is precomputed as a "staircase": all (span, cost) pairs
// sorted by span with prefix maxima, making each query a binary search.
#pragma once

#include <cstdint>
#include <vector>

#include "gmf/link_params.hpp"
#include "util/time.hpp"

namespace gmfnet::gmf {

/// Precomputed request-bound curve of one flow on one link.
class DemandCurve {
 public:
  /// One step of the staircase: the prefix maxima of cost/count over all
  /// windows whose span is <= `span`.
  struct Step {
    gmfnet::Time::rep span;       ///< TSUM(k1,k2)
    gmfnet::Time::rep max_cost;   ///< prefix max of CSUM(k1,k2)
    std::int64_t max_count;       ///< prefix max of NSUM(k1,k2)
  };

  explicit DemandCurve(const FlowLinkParams& params);

  /// MXS (eq 10, right-closed): max transmission demand of a window of
  /// length t >= 0; MXS(0) is the largest single frame.  Returns 0 for
  /// t < 0.
  [[nodiscard]] gmfnet::Time mxs(gmfnet::Time t) const;

  /// MX (eq 11): upper bound on link time demanded in any right-closed
  /// window of length t >= 0 (0 for t < 0).
  [[nodiscard]] gmfnet::Time mx(gmfnet::Time t) const;

  /// NXS (eq 12): frame-count analogue of MXS.
  [[nodiscard]] std::int64_t nxs(gmfnet::Time t) const;

  /// NX (eq 13): upper bound on Ethernet frames received in any
  /// right-closed window of length t >= 0 (0 for t < 0).
  [[nodiscard]] std::int64_t nx(gmfnet::Time t) const;

  [[nodiscard]] gmfnet::Time tsum() const { return tsum_; }
  [[nodiscard]] gmfnet::Time csum() const { return csum_; }
  [[nodiscard]] std::int64_t nsum() const { return nsum_; }

  /// The intra-cycle staircase: spans strictly increasing, cost/count
  /// non-decreasing, first span always 0 (the critical-instant release).
  /// LevelEnvelope flattens these into its merged per-hop view.
  [[nodiscard]] const std::vector<Step>& steps() const { return steps_; }

  /// Process-unique id, assigned at construction.  Envelope caches key on
  /// this instead of the object address, so a curve freed and another
  /// allocated at the same address can never be mistaken for it (ABA).
  [[nodiscard]] std::uint64_t uid() const { return uid_; }

 private:
  std::uint64_t uid_;
  gmfnet::Time tsum_;
  gmfnet::Time csum_;
  std::int64_t nsum_ = 0;
  std::vector<Step> steps_;  ///< sorted by span, strictly increasing
};

}  // namespace gmfnet::gmf
