#include "gmf/envelope.hpp"

namespace gmfnet::gmf {

bool LevelEnvelope::ensure(const EnvelopeSpec* specs, std::size_t n) {
  // Fingerprint: same curves (by process-unique uid), same shifts, same
  // order.  Matching means every merged value is already correct.
  if (entries_.size() == n) {
    bool same = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (tails_[i].curve_uid != specs[i].curve->uid() ||
          entries_[i].shift != specs[i].shift.ps()) {
        same = false;
        break;
      }
    }
    if (same) return true;
  }

  entries_.clear();
  tails_.clear();
  steps_.clear();
  entries_.reserve(n);
  tails_.reserve(n);
  std::size_t total_steps = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total_steps += specs[i].curve->steps().size();
  }
  steps_.reserve(total_steps);

  for (std::size_t i = 0; i < n; ++i) {
    const DemandCurve& c = *specs[i].curve;
    Entry e;
    e.shift = specs[i].shift.ps();
    e.tsum = c.tsum().ps();
    e.begin = static_cast<std::uint32_t>(steps_.size());
    steps_.insert(steps_.end(), c.steps().begin(), c.steps().end());
    e.end = static_cast<std::uint32_t>(steps_.size());
    assert(e.end > e.begin && steps_[e.begin].span == 0 &&
           "staircase must start with the span-0 critical-instant step");
    entries_.push_back(e);
    tails_.push_back(EntryTail{c.uid(), c.csum().ps(), c.nsum()});
  }
  ++build_;
  return false;
}

}  // namespace gmfnet::gmf
