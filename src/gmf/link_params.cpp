#include "gmf/link_params.hpp"

#include <cassert>

namespace gmfnet::gmf {

FlowLinkParams::FlowLinkParams(const Flow& flow,
                               ethernet::LinkSpeedBps speed_bps)
    : speed_(speed_bps),
      mft_(ethernet::max_frame_transmission_time(speed_bps)) {
  const std::size_t n = flow.frame_count();
  assert(n > 0);
  c_.reserve(n);
  nframes_.reserve(n);
  t_.reserve(n);
  csum_ = gmfnet::Time::zero();
  tsum_ = gmfnet::Time::zero();
  for (std::size_t k = 0; k < n; ++k) {
    const ethernet::Bits nb = flow.nbits(k);
    const gmfnet::Time ck = ethernet::transmission_time(nb, speed_bps);
    c_.push_back(ck);
    // eq (5)/(8) count Ethernet frames as ceil(C / MFT).
    nframes_.push_back(ck.ceil_div(mft_));
    t_.push_back(flow.frame(k).min_separation);
    csum_ += ck;
    nsum_ += nframes_.back();
    tsum_ += t_.back();
  }

  c_prefix_.assign(2 * n + 1, 0);
  n_prefix_.assign(2 * n + 1, 0);
  t_prefix_.assign(2 * n + 1, 0);
  for (std::size_t i = 0; i < 2 * n; ++i) {
    c_prefix_[i + 1] = c_prefix_[i] + c_[i % n].ps();
    n_prefix_[i + 1] = n_prefix_[i] + nframes_[i % n];
    t_prefix_[i + 1] = t_prefix_[i] + t_[i % n].ps();
  }
}

gmfnet::Time FlowLinkParams::csum_window(std::size_t k1, std::size_t k2) const {
  assert(k1 < c_.size());
  assert(k2 >= 1 && k2 <= c_.size());
  return gmfnet::Time(c_prefix_[k1 + k2] - c_prefix_[k1]);
}

std::int64_t FlowLinkParams::nsum_window(std::size_t k1, std::size_t k2) const {
  assert(k1 < c_.size());
  assert(k2 >= 1 && k2 <= c_.size());
  return n_prefix_[k1 + k2] - n_prefix_[k1];
}

gmfnet::Time FlowLinkParams::tsum_window(std::size_t k1, std::size_t k2) const {
  assert(k1 < c_.size());
  assert(k2 >= 1 && k2 <= c_.size());
  // eq (9): k2 arrivals span k2-1 separations.
  return gmfnet::Time(t_prefix_[k1 + k2 - 1] - t_prefix_[k1]);
}

double FlowLinkParams::utilization() const {
  if (tsum_ <= gmfnet::Time::zero()) return 0.0;
  return static_cast<double>(csum_.ps()) / static_cast<double>(tsum_.ps());
}

}  // namespace gmfnet::gmf
