#include "gmf/mpeg.hpp"

#include <stdexcept>

namespace gmfnet::gmf {

Flow make_mpeg_flow(std::string name, net::Route route,
                    const std::string& pattern, const MpegSizes& sizes,
                    gmfnet::Time frame_spacing, gmfnet::Time deadline,
                    gmfnet::Time jitter, std::int64_t priority, bool rtp) {
  if (pattern.empty()) {
    throw std::invalid_argument("make_mpeg_flow: empty pattern");
  }
  std::vector<FrameSpec> frames;
  frames.reserve(pattern.size());
  for (char c : pattern) {
    FrameSpec f;
    f.min_separation = frame_spacing;
    f.deadline = deadline;
    f.jitter = jitter;
    switch (c) {
      case 'I': f.payload_bits = sizes.i_bits; break;
      case 'P': f.payload_bits = sizes.p_bits; break;
      case 'B': f.payload_bits = sizes.b_bits; break;
      case 'X': f.payload_bits = sizes.i_bits + sizes.p_bits; break;  // I+P
      default:
        throw std::invalid_argument(
            std::string("make_mpeg_flow: bad pattern char '") + c + "'");
    }
    frames.push_back(f);
  }
  return Flow(std::move(name), std::move(route), std::move(frames), priority,
              rtp);
}

Flow make_figure3_flow(std::string name, net::Route route,
                       const MpegSizes& sizes, gmfnet::Time deadline,
                       gmfnet::Time jitter, std::int64_t priority) {
  return make_mpeg_flow(std::move(name), std::move(route), kFigure3Pattern,
                        sizes, gmfnet::Time::ms(30), deadline, jitter,
                        priority, /*rtp=*/false);
}

}  // namespace gmfnet::gmf
