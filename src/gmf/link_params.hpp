// Per-(flow, link) derived parameters: transmission times C_i^k,link and the
// aggregate sums of eqs (4)-(9).
#pragma once

#include <cstdint>
#include <vector>

#include "ethernet/framing.hpp"
#include "gmf/flow.hpp"
#include "util/time.hpp"

namespace gmfnet::gmf {

/// The projection of one GMF flow onto one link: what §3.1 calls the "basic
/// parameters".  Construct once per (flow, link) and reuse; all queries are
/// O(1) or O(window).
class FlowLinkParams {
 public:
  FlowLinkParams(const Flow& flow, ethernet::LinkSpeedBps speed_bps);

  [[nodiscard]] std::size_t frame_count() const { return c_.size(); }
  [[nodiscard]] ethernet::LinkSpeedBps speed_bps() const { return speed_; }

  /// C_i^k,link: transmission time of frame k's UDP packet on this link.
  [[nodiscard]] gmfnet::Time c(std::size_t k) const { return c_[k]; }
  /// Number of Ethernet frames of frame k on this link, computed as
  /// ceil(C_i^k / MFT) exactly as eq (5)/(8) do.
  [[nodiscard]] std::int64_t nframes(std::size_t k) const {
    return nframes_[k];
  }

  /// MFT(link), eq (1).
  [[nodiscard]] gmfnet::Time mft() const { return mft_; }

  /// CSUM_i^link (eq 4): total transmission time of one GMF cycle.
  [[nodiscard]] gmfnet::Time csum() const { return csum_; }
  /// NSUM_i^link (eq 5): total Ethernet frames of one GMF cycle.
  [[nodiscard]] std::int64_t nsum() const { return nsum_; }
  /// TSUM_i (eq 6): cycle length (link-independent, cached for convenience).
  [[nodiscard]] gmfnet::Time tsum() const { return tsum_; }

  /// CSUM_i^link(k1,k2) (eq 7): transmission time of k2 consecutive frames
  /// starting at frame k1 (indices mod n).  Requires 1 <= k2 <= n.
  [[nodiscard]] gmfnet::Time csum_window(std::size_t k1, std::size_t k2) const;
  /// NSUM_i^link(k1,k2) (eq 8).
  [[nodiscard]] std::int64_t nsum_window(std::size_t k1, std::size_t k2) const;
  /// TSUM_i(k1,k2) (eq 9): span of the k2 arrivals starting at k1.
  [[nodiscard]] gmfnet::Time tsum_window(std::size_t k1, std::size_t k2) const;

  /// Utilization of this flow on this link: CSUM / TSUM (used by the
  /// convergence preconditions, eqs 20/34/35).
  [[nodiscard]] double utilization() const;

 private:
  ethernet::LinkSpeedBps speed_;
  gmfnet::Time mft_;
  std::vector<gmfnet::Time> c_;
  std::vector<std::int64_t> nframes_;
  std::vector<gmfnet::Time> t_;
  gmfnet::Time csum_;
  std::int64_t nsum_ = 0;
  gmfnet::Time tsum_;
  // Prefix sums over a doubled index range for O(1) windowed queries.
  std::vector<gmfnet::Time::rep> c_prefix_;   // size 2n+1
  std::vector<std::int64_t> n_prefix_;        // size 2n+1
  std::vector<gmfnet::Time::rep> t_prefix_;   // size 2n+1
};

}  // namespace gmfnet::gmf
