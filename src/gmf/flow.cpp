#include "gmf/flow.hpp"

#include <stdexcept>

#include "ethernet/framing.hpp"

namespace gmfnet::gmf {

Flow::Flow(std::string name, net::Route route, std::vector<FrameSpec> frames,
           std::int64_t priority, bool rtp)
    : name_(std::move(name)),
      route_(std::move(route)),
      frames_(std::move(frames)),
      priority_(priority),
      rtp_(rtp) {}

gmfnet::Time Flow::tsum() const {
  gmfnet::Time t = gmfnet::Time::zero();
  for (const FrameSpec& f : frames_) t += f.min_separation;
  return t;
}

gmfnet::Time Flow::tsum_window(std::size_t k1, std::size_t k2) const {
  // eq (9): sum_{k=k1}^{k1+k2-2} T^{k mod n}.  Note the -2: the span of k2
  // arrivals is k2-1 separations.
  const std::size_t n = frames_.size();
  gmfnet::Time t = gmfnet::Time::zero();
  for (std::size_t k = k1; k + 1 < k1 + k2; ++k) {
    t += frames_[k % n].min_separation;
  }
  return t;
}

gmfnet::Time Flow::max_source_jitter() const {
  gmfnet::Time m = gmfnet::Time::zero();
  for (const FrameSpec& f : frames_) m = gmfnet::max(m, f.jitter);
  return m;
}

gmfnet::Time Flow::min_deadline() const {
  gmfnet::Time m = gmfnet::Time::max();
  for (const FrameSpec& f : frames_) m = gmfnet::min(m, f.deadline);
  return m;
}

ethernet::Bits Flow::nbits(std::size_t k) const {
  return ethernet::udp_datagram_bits(frames_[k].payload_bits, rtp_);
}

void Flow::validate(const net::Network& net) const {
  if (frames_.empty()) {
    throw std::logic_error("flow " + name_ + ": no frames");
  }
  for (std::size_t k = 0; k < frames_.size(); ++k) {
    const FrameSpec& f = frames_[k];
    const std::string where =
        "flow " + name_ + " frame " + std::to_string(k);
    if (f.min_separation <= gmfnet::Time::zero()) {
      throw std::logic_error(where + ": non-positive min separation");
    }
    if (f.deadline <= gmfnet::Time::zero()) {
      throw std::logic_error(where + ": non-positive deadline");
    }
    if (f.jitter < gmfnet::Time::zero()) {
      throw std::logic_error(where + ": negative jitter");
    }
    if (f.payload_bits < 0) {
      throw std::logic_error(where + ": negative payload");
    }
    if (f.payload_bits > ethernet::kMaxUdpPayloadBytes * 8) {
      throw std::logic_error(where + ": payload exceeds UDP maximum");
    }
  }
  route_.validate(net);
}

Flow make_sporadic_flow(std::string name, net::Route route,
                        gmfnet::Time period, gmfnet::Time deadline,
                        ethernet::Bits payload_bits, std::int64_t priority,
                        gmfnet::Time jitter, bool rtp) {
  FrameSpec f;
  f.min_separation = period;
  f.deadline = deadline;
  f.jitter = jitter;
  f.payload_bits = payload_bits;
  return Flow(std::move(name), std::move(route), {f}, priority, rtp);
}

}  // namespace gmfnet::gmf
