#include "gmf/trace_fit.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace gmfnet::gmf {

namespace {

/// Mean per-slot payload spread (max-min) when the trace is folded at
/// cycle length n, debiased for sample count: m i.i.d. samples of a
/// distribution with range R have expected spread ~ R*(m-1)/(m+1), so a
/// larger fold always shows a smaller *raw* spread even on unstructured
/// data.  Dividing by that factor makes folds of different lengths
/// comparable: random traffic scores ~R at every n, a true cycle scores ~0
/// only at its length (and multiples).
double fold_residual(const std::vector<TracePacket>& trace, std::size_t n) {
  double total = 0;
  for (std::size_t slot = 0; slot < n; ++slot) {
    ethernet::Bits lo = std::numeric_limits<ethernet::Bits>::max();
    ethernet::Bits hi = std::numeric_limits<ethernet::Bits>::min();
    std::size_t m = 0;
    for (std::size_t i = slot; i < trace.size(); i += n) {
      lo = std::min(lo, trace[i].payload_bits);
      hi = std::max(hi, trace[i].payload_bits);
      ++m;
    }
    double spread = static_cast<double>(hi - lo);
    if (m >= 2) {
      spread *= static_cast<double>(m + 1) / static_cast<double>(m - 1);
    }
    total += spread;
  }
  return total / static_cast<double>(n);
}

}  // namespace

CycleDetection detect_cycle(const std::vector<TracePacket>& trace,
                            std::size_t max_cycle) {
  CycleDetection best;
  if (trace.size() < 2) return best;
  best.residual = fold_residual(trace, 1);

  for (std::size_t n = 2; n <= max_cycle; ++n) {
    if (trace.size() < 2 * n) break;  // need two full cycles of evidence
    const double r = fold_residual(trace, n);
    // Parsimony: a longer cycle must at least HALVE the debiased residual.
    // Real GMF streams have near-constant per-slot sizes, so the true
    // cycle scores ~0 and passes easily; on unstructured traffic the
    // debiased residuals of all folds fluctuate within a few tens of
    // percent of each other (sampling noise of the min over candidates),
    // well above the 50% bar.  n-multiples of the true cycle score the
    // same as the cycle itself and are rejected too.
    if (r < best.residual * 0.50 - 1e-9) {
      best.cycle_length = n;
      best.residual = r;
    }
  }
  return best;
}

std::vector<FittedSlot> fit_slots(const std::vector<TracePacket>& trace,
                                  std::size_t cycle_length) {
  if (cycle_length == 0) {
    throw std::invalid_argument("fit_slots: zero cycle length");
  }
  if (trace.size() < cycle_length + 1) {
    throw std::invalid_argument(
        "fit_slots: trace shorter than one cycle plus one packet");
  }
  for (std::size_t i = 1; i < trace.size(); ++i) {
    if (trace[i].timestamp <= trace[i - 1].timestamp) {
      throw std::invalid_argument(
          "fit_slots: timestamps must be strictly increasing");
    }
  }

  std::vector<FittedSlot> slots(cycle_length);
  for (auto& s : slots) s.min_separation = gmfnet::Time::max();

  for (std::size_t i = 0; i < trace.size(); ++i) {
    FittedSlot& s = slots[i % cycle_length];
    s.max_payload = std::max(s.max_payload, trace[i].payload_bits);
    ++s.samples;
    if (i + 1 < trace.size()) {
      s.min_separation = gmfnet::min(
          s.min_separation, trace[i + 1].timestamp - trace[i].timestamp);
    }
  }
  return slots;
}

Flow fit_gmf_flow(const std::vector<TracePacket>& trace, std::string name,
                  net::Route route, gmfnet::Time deadline,
                  gmfnet::Time jitter, std::int64_t priority, bool rtp,
                  std::size_t max_cycle) {
  const CycleDetection det = detect_cycle(trace, max_cycle);
  const auto slots = fit_slots(trace, det.cycle_length);
  std::vector<FrameSpec> frames;
  frames.reserve(slots.size());
  for (const FittedSlot& s : slots) {
    FrameSpec f;
    f.min_separation = s.min_separation;
    f.deadline = deadline;
    f.jitter = jitter;
    f.payload_bits = s.max_payload;
    frames.push_back(f);
  }
  return Flow(std::move(name), std::move(route), std::move(frames), priority,
              rtp);
}

}  // namespace gmfnet::gmf
