#include "workload/taskset_gen.hpp"

#include <algorithm>
#include <cmath>

#include "ethernet/framing.hpp"
#include "net/shortest_path.hpp"

namespace gmfnet::workload {

namespace {

gmfnet::Time log_uniform(Rng& rng, gmfnet::Time lo, gmfnet::Time hi) {
  const double llo = std::log(static_cast<double>(lo.ps()));
  const double lhi = std::log(static_cast<double>(hi.ps()));
  return gmfnet::Time(static_cast<gmfnet::Time::rep>(
      std::exp(rng.uniform(llo, lhi))));
}

/// Payload bits such that the frame's wire time on `speed` is roughly
/// `target_c`.  Inverts the framing overhead approximately, then clamps to
/// legal UDP sizes.
ethernet::Bits payload_for_time(gmfnet::Time target_c,
                                ethernet::LinkSpeedBps speed) {
  const double wire_bits =
      target_c.to_sec() * static_cast<double>(speed);
  double data_bits = wire_bits * static_cast<double>(ethernet::kDataBitsPerFrame) /
                     static_cast<double>(ethernet::kMaxFrameWireBits);
  data_bits -= static_cast<double>(ethernet::kUdpHeaderBits);
  const double max_bits =
      static_cast<double>(ethernet::kMaxUdpPayloadBytes) * 8.0;
  data_bits = std::clamp(data_bits, 8.0, max_bits);
  return static_cast<ethernet::Bits>(data_bits);
}

}  // namespace

std::optional<GeneratedTaskset> generate_taskset(
    const net::Network& network, const std::vector<net::NodeId>& hosts,
    const TasksetParams& params, Rng& rng) {
  if (hosts.size() < 2 || params.num_flows < 1) return std::nullopt;

  const std::vector<double> shares =
      rng.uunifast(static_cast<std::size_t>(params.num_flows),
                   params.total_utilization);

  GeneratedTaskset out;
  out.flows.reserve(static_cast<std::size_t>(params.num_flows));

  for (int f = 0; f < params.num_flows; ++f) {
    // Find a routable endpoint pair (bounded retries).
    std::optional<net::Route> route;
    for (int attempt = 0; attempt < 64 && !route; ++attempt) {
      const auto a = static_cast<std::size_t>(
          rng.next_below(hosts.size()));
      auto b = static_cast<std::size_t>(rng.next_below(hosts.size()));
      if (a == b) continue;
      route = net::shortest_route(network, hosts[a], hosts[b]);
    }
    if (!route) return std::nullopt;

    // Slowest link along the route defines the utilization realisation.
    ethernet::LinkSpeedBps min_speed = std::numeric_limits<ethernet::LinkSpeedBps>::max();
    for (const net::LinkRef l : route->links()) {
      min_speed = std::min(min_speed, network.linkspeed(l.src, l.dst));
    }

    const int n = static_cast<int>(rng.uniform_i64(params.min_frames,
                                                   params.max_frames));
    const gmfnet::Time base =
        log_uniform(rng, params.separation_lo, params.separation_hi);
    const double share = shares[static_cast<std::size_t>(f)];

    std::vector<gmf::FrameSpec> frames;
    frames.reserve(static_cast<std::size_t>(n));
    gmfnet::Time tsum = gmfnet::Time::zero();
    for (int k = 0; k < n; ++k) {
      gmf::FrameSpec spec;
      const double sep_mult =
          rng.uniform(1.0 - params.separation_spread,
                      1.0 + params.separation_spread);
      spec.min_separation = gmfnet::max(
          gmfnet::Time::us(100),
          gmfnet::Time(static_cast<gmfnet::Time::rep>(
              static_cast<double>(base.ps()) * sep_mult)));
      tsum += spec.min_separation;

      const double size_mult = rng.uniform(1.0 - params.size_spread,
                                           1.0 + params.size_spread);
      const gmfnet::Time target_c =
          gmfnet::Time(static_cast<gmfnet::Time::rep>(
              static_cast<double>(spec.min_separation.ps()) * share *
              size_mult));
      spec.payload_bits = payload_for_time(target_c, min_speed);

      const double jf = rng.uniform(0.0, params.max_jitter_fraction);
      spec.jitter = gmfnet::Time(static_cast<gmfnet::Time::rep>(
          static_cast<double>(spec.min_separation.ps()) * jf));
      frames.push_back(spec);
    }
    const double df = rng.uniform(params.deadline_factor_lo,
                                  params.deadline_factor_hi);
    const gmfnet::Time deadline(
        static_cast<gmfnet::Time::rep>(static_cast<double>(tsum.ps()) * df));
    for (gmf::FrameSpec& spec : frames) spec.deadline = deadline;

    out.flows.emplace_back("flow" + std::to_string(f), *route,
                           std::move(frames));
  }
  return out;
}

}  // namespace gmfnet::workload
