#include "workload/scenario.hpp"

#include <stdexcept>

#include "net/shortest_path.hpp"
#include "util/rng.hpp"

namespace gmfnet::workload {

Scenario make_figure2_scenario(ethernet::LinkSpeedBps speed_bps,
                               bool with_cross_traffic,
                               const gmf::MpegSizes& sizes) {
  net::Figure1Network fig = net::make_figure1_network(speed_bps);
  Scenario s;

  // The Figure-2 route: 0 -> 4 -> 6 -> 3.
  const net::Route route({fig.host0, fig.sw4, fig.sw6, fig.host3});
  s.flows.push_back(gmf::make_figure3_flow("mpeg-0-3", route, sizes,
                                           /*deadline=*/gmfnet::Time::ms(100),
                                           /*jitter=*/gmfnet::Time::ms(1),
                                           /*priority=*/1));

  if (with_cross_traffic) {
    // A second MPEG stream sharing link(4,6) and switch 6.
    const net::Route r2({fig.host1, fig.sw4, fig.sw6, fig.host3});
    gmf::MpegSizes smaller = sizes;
    smaller.i_bits /= 2;
    smaller.p_bits /= 2;
    smaller.b_bits /= 2;
    s.flows.push_back(gmf::make_figure3_flow("mpeg-1-3", r2, smaller,
                                             gmfnet::Time::ms(100),
                                             gmfnet::Time::ms(1),
                                             /*priority=*/0));
    // A voice flow entering at switch 5 and sharing link(6,3).
    const net::Route r3({fig.host2, fig.sw5, fig.sw6, fig.host3});
    s.flows.push_back(make_voip_flow("voip-2-3", r3, gmfnet::Time::ms(20),
                                     /*priority=*/2));
  }

  s.network = std::move(fig.net);
  return s;
}

gmf::Flow make_voip_flow(std::string name, net::Route route,
                         gmfnet::Time deadline, std::int64_t priority) {
  gmf::FrameSpec f;
  f.min_separation = gmfnet::Time::ms(20);  // 50 packets/s (G.711, 20 ms)
  f.deadline = deadline;
  f.jitter = gmfnet::Time::us(500);  // OS/process release wobble
  f.payload_bits = 160 * 8;          // 160-byte voice payload
  return gmf::Flow(std::move(name), std::move(route), {f}, priority,
                   /*rtp=*/true);
}

Scenario make_voip_office_scenario(int calls,
                                   ethernet::LinkSpeedBps speed_bps,
                                   std::uint64_t seed) {
  // Enough hosts that each call can get its own pair when possible.
  const int hosts = std::max(2, 2 * calls);
  net::StarNetwork star = net::make_star_network(hosts, speed_bps);
  Scenario s;
  Rng rng(seed);
  for (int c = 0; c < calls; ++c) {
    const auto a = static_cast<std::size_t>(
        rng.next_below(star.hosts.size()));
    std::size_t b = a;
    while (b == a) {
      b = static_cast<std::size_t>(rng.next_below(star.hosts.size()));
    }
    const net::Route fwd({star.hosts[a], star.sw, star.hosts[b]});
    const net::Route rev({star.hosts[b], star.sw, star.hosts[a]});
    s.flows.push_back(make_voip_flow("call" + std::to_string(c) + "-fwd",
                                     fwd));
    s.flows.push_back(make_voip_flow("call" + std::to_string(c) + "-rev",
                                     rev));
  }
  s.network = std::move(star.net);
  return s;
}

Scenario make_videoconf_scenario(ethernet::LinkSpeedBps speed_bps,
                                 const gmf::MpegSizes& sizes) {
  net::Figure1Network fig = net::make_figure1_network(speed_bps);
  Scenario s;

  const auto add_pair = [&](net::NodeId a, net::NodeId b,
                            const std::string& tag) {
    const auto fwd = net::shortest_route(fig.net, a, b);
    const auto rev = net::shortest_route(fig.net, b, a);
    if (!fwd || !rev) throw std::logic_error("videoconf: no route");
    // Video at priority 1, audio at 2: audio is the latency-critical leg.
    s.flows.push_back(gmf::make_figure3_flow("video-" + tag, *fwd, sizes,
                                             gmfnet::Time::ms(100),
                                             gmfnet::Time::ms(1), 1));
    s.flows.push_back(gmf::make_figure3_flow("video-" + tag + "-rev", *rev,
                                             sizes, gmfnet::Time::ms(100),
                                             gmfnet::Time::ms(1), 1));
    s.flows.push_back(make_voip_flow("audio-" + tag, *fwd,
                                     gmfnet::Time::ms(20), 2));
    s.flows.push_back(make_voip_flow("audio-" + tag + "-rev", *rev,
                                     gmfnet::Time::ms(20), 2));
  };

  add_pair(fig.host0, fig.host3, "0-3");
  add_pair(fig.host1, fig.host2, "1-2");

  s.network = std::move(fig.net);
  return s;
}

}  // namespace gmfnet::workload
