// Canned scenarios: the paper's worked example and the application mixes
// its introduction motivates (VoIP, video conferencing).
#pragma once

#include <vector>

#include "gmf/flow.hpp"
#include "gmf/mpeg.hpp"
#include "net/topology.hpp"

namespace gmfnet::workload {

/// A network plus a flow set, ready for AnalysisContext / Simulator.
struct Scenario {
  net::Network network;
  std::vector<gmf::Flow> flows;
};

/// The paper's running example: the Figure-1 network with the Figure-3 MPEG
/// stream routed 0 -> 4 -> 6 -> 3 (Figure 2).  `with_cross_traffic` adds a
/// competing videoconference flow 1 -> 4 -> 6 -> 3 and a voice flow
/// 2 -> 5 -> 6 -> 3, exercising shared links and switch contention.
[[nodiscard]] Scenario make_figure2_scenario(
    ethernet::LinkSpeedBps speed_bps = 10'000'000,
    bool with_cross_traffic = false,
    const gmf::MpegSizes& sizes = {});

/// A G.711-style VoIP call leg: 160-byte payload every 20 ms over RTP.
/// The classic interactive-latency budget of 150 ms is split; the network
/// share used as end-to-end deadline here is 20 ms by default.
[[nodiscard]] gmf::Flow make_voip_flow(std::string name, net::Route route,
                                       gmfnet::Time deadline = gmfnet::Time::ms(20),
                                       std::int64_t priority = 0);

/// `calls` bidirectional VoIP calls between random host pairs of a star
/// network (one switch).  The scenario of an office deploying telephony on
/// one software switch — the setting of the paper's motivating incident.
[[nodiscard]] Scenario make_voip_office_scenario(int calls,
                                                 ethernet::LinkSpeedBps speed_bps,
                                                 std::uint64_t seed = 1);

/// Video conference on the Figure-1 network: every end host pair (0,3) and
/// (1,2) runs an MPEG video flow plus a VoIP audio flow in both directions.
[[nodiscard]] Scenario make_videoconf_scenario(
    ethernet::LinkSpeedBps speed_bps = 100'000'000,
    const gmf::MpegSizes& sizes = {});

}  // namespace gmfnet::workload
