// Random GMF flow-set generation for the evaluation sweeps (E5, E6, E8).
//
// Follows the standard recipe of schedulability experiments: a total
// utilization target is split over flows with UUniFast, each flow gets a
// random route between end hosts, a random GMF cycle (frame count,
// separations, per-frame sizes realising the flow's utilization share on
// its bottleneck link), and a deadline proportional to its cycle length.
#pragma once

#include <optional>
#include <vector>

#include "gmf/flow.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"

namespace gmfnet::workload {

struct TasksetParams {
  int num_flows = 8;
  /// Total utilization budget, split over flows by UUniFast.  Each flow's
  /// share is realised as CSUM/TSUM on the *slowest* link of its route, so
  /// any single link carries at most the sum of the shares of the flows
  /// crossing it (<= target on shared-bottleneck topologies).
  double total_utilization = 0.5;
  int min_frames = 1;
  int max_frames = 8;
  /// Base frame separation drawn log-uniformly from [lo, hi].
  gmfnet::Time separation_lo = gmfnet::Time::ms(5);
  gmfnet::Time separation_hi = gmfnet::Time::ms(50);
  /// Per-frame separation = base * U[1-spread, 1+spread].
  double separation_spread = 0.5;
  /// Per-frame size skew: sizes multiply U[1-spread, 1+spread] around the
  /// utilization-derived mean (GMF heterogeneity; 0 = all frames equal, the
  /// sporadic-friendly case).
  double size_spread = 0.8;
  /// End-to-end deadline = factor * TSUM, factor ~ U[lo, hi].
  double deadline_factor_lo = 0.5;
  double deadline_factor_hi = 1.0;
  /// Source generalized jitter = fraction * min separation, ~ U[0, max].
  double max_jitter_fraction = 0.1;
};

/// One generated flow set plus the endpoints used.
struct GeneratedTaskset {
  std::vector<gmf::Flow> flows;
};

/// Generates a flow set between the given candidate end hosts.  Flows whose
/// endpoints have no switch-only path are re-drawn; returns std::nullopt
/// when the topology cannot host `num_flows` routed flows (after bounded
/// retries).  Priorities are left at 0; callers typically run
/// core::assign_priorities afterwards.
[[nodiscard]] std::optional<GeneratedTaskset> generate_taskset(
    const net::Network& network, const std::vector<net::NodeId>& hosts,
    const TasksetParams& params, Rng& rng);

}  // namespace gmfnet::workload
