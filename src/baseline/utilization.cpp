#include "baseline/utilization.hpp"

#include <algorithm>

namespace gmfnet::baseline {

UtilizationReport measure_utilization(const net::Network& network,
                                      const std::vector<gmf::Flow>& flows) {
  core::AnalysisContext ctx(network, flows);
  UtilizationReport rep;
  for (const net::Link& l : network.links()) {
    const net::LinkRef ref(l.src, l.dst);
    if (ctx.flows_on_link(ref).empty()) continue;
    rep.max_link_utilization =
        std::max(rep.max_link_utilization, ctx.link_utilization(ref));
    // Ingress tasks exist only where the receiving node is a switch.
    if (network.node(l.dst).kind == net::NodeKind::kSwitch) {
      rep.max_ingress_utilization =
          std::max(rep.max_ingress_utilization, ctx.ingress_utilization(ref));
    }
  }
  return rep;
}

bool utilization_test(const net::Network& network,
                      const std::vector<gmf::Flow>& flows, double bound) {
  const UtilizationReport rep = measure_utilization(network, flows);
  return rep.max_link_utilization < bound &&
         rep.max_ingress_utilization < bound;
}

}  // namespace gmfnet::baseline
