#include "baseline/sporadic.hpp"

namespace gmfnet::baseline {

gmf::Flow collapse_to_sporadic(const gmf::Flow& flow) {
  gmf::FrameSpec worst;
  worst.min_separation = gmfnet::Time::max();
  worst.deadline = gmfnet::Time::max();
  worst.jitter = gmfnet::Time::zero();
  worst.payload_bits = 0;
  for (const gmf::FrameSpec& f : flow.frames()) {
    worst.min_separation = gmfnet::min(worst.min_separation, f.min_separation);
    worst.deadline = gmfnet::min(worst.deadline, f.deadline);
    worst.jitter = gmfnet::max(worst.jitter, f.jitter);
    worst.payload_bits = std::max(worst.payload_bits, f.payload_bits);
  }
  return gmf::Flow(flow.name() + "/sporadic", flow.route(), {worst},
                   flow.priority(), flow.rtp());
}

std::vector<gmf::Flow> collapse_to_sporadic(
    const std::vector<gmf::Flow>& flows) {
  std::vector<gmf::Flow> out;
  out.reserve(flows.size());
  for (const gmf::Flow& f : flows) out.push_back(collapse_to_sporadic(f));
  return out;
}

core::HolisticResult analyze_sporadic_baseline(
    const net::Network& network, const std::vector<gmf::Flow>& flows,
    const core::HolisticOptions& opts) {
  core::AnalysisContext ctx(network, collapse_to_sporadic(flows));
  return core::analyze_holistic(ctx, opts);
}

}  // namespace gmfnet::baseline
