// Sporadic-model baseline (Tindell & Clark-style holistic analysis).
//
// Pre-GMF holistic analysis characterises every flow by a single
// (period, size) pair.  The sound way to collapse a GMF flow into that model
// is the worst frame in every dimension: period = min_k T^k, payload =
// max_k S^k, deadline = min_k D^k, jitter = max_k GJ^k.  Every GMF arrival
// sequence is also a legal arrival sequence of that sporadic flow, so the
// baseline's bounds are valid — just (often much) more pessimistic, which is
// exactly the paper's motivation for using GMF.  Running both through the
// same pipeline machinery isolates the *model* difference (E5).
#pragma once

#include <vector>

#include "core/holistic.hpp"
#include "gmf/flow.hpp"

namespace gmfnet::baseline {

/// Collapses a GMF flow to its sporadic over-approximation (n = 1).
[[nodiscard]] gmf::Flow collapse_to_sporadic(const gmf::Flow& flow);

/// Collapses a whole flow set.
[[nodiscard]] std::vector<gmf::Flow> collapse_to_sporadic(
    const std::vector<gmf::Flow>& flows);

/// Holistic analysis of the sporadic collapses: the baseline verdict for a
/// GMF flow set.  Sound (accepts only schedulable sets) but pessimistic.
[[nodiscard]] core::HolisticResult analyze_sporadic_baseline(
    const net::Network& network, const std::vector<gmf::Flow>& flows,
    const core::HolisticOptions& opts = {});

}  // namespace gmfnet::baseline
