// Utilization-only admission baselines.
//
// The crudest admission policies an operator could deploy: accept while
// every resource stays below a utilization threshold.  They ignore deadlines
// entirely, so they are *not* sound for hard guarantees — they serve as the
// "what commodity gear does today" reference point in the acceptance-ratio
// experiment (E5).
#pragma once

#include <vector>

#include "core/context.hpp"
#include "gmf/flow.hpp"
#include "net/network.hpp"

namespace gmfnet::baseline {

/// Largest link utilization (sum of CSUM/TSUM) over all links that carry at
/// least one flow, and largest ingress-task utilization over all switch
/// input interfaces.
struct UtilizationReport {
  double max_link_utilization = 0.0;
  double max_ingress_utilization = 0.0;
};

[[nodiscard]] UtilizationReport measure_utilization(
    const net::Network& network, const std::vector<gmf::Flow>& flows);

/// Accepts the set iff every link and every ingress task stays strictly
/// below `bound` (1.0 = the necessary schedulability condition; the paper's
/// eqs (20)/(34) use it as a convergence precondition).
[[nodiscard]] bool utilization_test(const net::Network& network,
                                    const std::vector<gmf::Flow>& flows,
                                    double bound = 1.0);

}  // namespace gmfnet::baseline
