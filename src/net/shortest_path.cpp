#include "net/shortest_path.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

#include "ethernet/framing.hpp"

namespace gmfnet::net {

namespace {
/// Link weight under the chosen metric, in picoseconds (1 for kHops).
std::int64_t weight(const Network& net, NodeId a, NodeId b,
                    RouteMetric metric) {
  if (metric == RouteMetric::kHops) return 1;
  const Link& l = net.link(a, b);
  return (ethernet::max_frame_transmission_time(l.speed_bps) + l.prop).ps();
}
}  // namespace

std::optional<Route> shortest_route(const Network& net, NodeId src, NodeId dst,
                                    RouteMetric metric) {
  if (!net.has_node(src) || !net.has_node(dst) || src == dst) {
    return std::nullopt;
  }
  const std::size_t n = net.node_count();
  constexpr auto kInf = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> dist(n, kInf);
  std::vector<NodeId> parent(n);

  using Item = std::pair<std::int64_t, NodeId>;  // (dist, node)
  auto cmp = [](const Item& a, const Item& b) {
    return a.first != b.first ? a.first > b.first : a.second > b.second;
  };
  std::priority_queue<Item, std::vector<Item>, decltype(cmp)> pq(cmp);

  dist[static_cast<std::size_t>(src.v)] = 0;
  pq.emplace(0, src);

  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<std::size_t>(u.v)]) continue;
    if (u == dst) break;
    for (NodeId v : net.successors(u)) {
      // Intermediate nodes must be switches; only dst may be endhost/router.
      if (v != dst && net.node(v).kind != NodeKind::kSwitch) continue;
      // Traffic never transits *through* the destination already handled;
      // src may be any kind since it is where we start.
      const std::int64_t nd = d + weight(net, u, v, metric);
      auto& dv = dist[static_cast<std::size_t>(v.v)];
      if (nd < dv) {
        dv = nd;
        parent[static_cast<std::size_t>(v.v)] = u;
        pq.emplace(nd, v);
      }
    }
  }

  if (dist[static_cast<std::size_t>(dst.v)] == kInf) return std::nullopt;

  std::vector<NodeId> path;
  for (NodeId at = dst; at != src;
       at = parent[static_cast<std::size_t>(at.v)]) {
    path.push_back(at);
  }
  path.push_back(src);
  std::reverse(path.begin(), path.end());
  return Route(std::move(path));
}

}  // namespace gmfnet::net
