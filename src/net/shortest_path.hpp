// Route computation helpers.  The paper assumes routes are pre-specified;
// operators typically derive them from spanning-tree/shortest-path state, so
// the workload generator needs a router.
#pragma once

#include <optional>

#include "net/network.hpp"
#include "net/route.hpp"

namespace gmfnet::net {

/// Cost metric for shortest_route.
enum class RouteMetric {
  kHops,     ///< minimize number of links
  kLatency,  ///< minimize sum of (MFT serialization + propagation) per link
};

/// Computes a route from `src` to `dst` whose intermediate nodes are all
/// switches (endpoints may be endhost/router).  Returns std::nullopt when no
/// such path exists.  Deterministic: ties broken by smaller node id.
[[nodiscard]] std::optional<Route> shortest_route(
    const Network& net, NodeId src, NodeId dst,
    RouteMetric metric = RouteMetric::kHops);

}  // namespace gmfnet::net
