#include "net/route.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace gmfnet::net {

NodeId Route::succ(NodeId n) const {
  for (std::size_t i = 0; i + 1 < nodes_.size(); ++i) {
    if (nodes_[i] == n) return nodes_[i + 1];
  }
  return NodeId{};
}

NodeId Route::prec(NodeId n) const {
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i] == n) return nodes_[i - 1];
  }
  return NodeId{};
}

bool Route::contains(NodeId n) const {
  return std::find(nodes_.begin(), nodes_.end(), n) != nodes_.end();
}

bool Route::uses_link(NodeId a, NodeId b) const {
  for (std::size_t i = 0; i + 1 < nodes_.size(); ++i) {
    if (nodes_[i] == a && nodes_[i + 1] == b) return true;
  }
  return false;
}

std::vector<LinkRef> Route::links() const {
  std::vector<LinkRef> out;
  for (std::size_t i = 0; i + 1 < nodes_.size(); ++i) {
    out.emplace_back(nodes_[i], nodes_[i + 1]);
  }
  return out;
}

std::vector<NodeId> Route::intermediates() const {
  if (nodes_.size() <= 2) return {};
  return {nodes_.begin() + 1, nodes_.end() - 1};
}

void Route::validate(const Network& net) const {
  if (nodes_.size() < 2) {
    throw std::logic_error("route: needs at least source and destination");
  }
  std::unordered_set<NodeId> seen;
  for (NodeId n : nodes_) {
    if (!net.has_node(n)) throw std::logic_error("route: unknown node");
    if (!seen.insert(n).second) {
      throw std::logic_error("route: repeated node " + net.node(n).name);
    }
  }
  for (std::size_t i = 0; i + 1 < nodes_.size(); ++i) {
    if (!net.has_link(nodes_[i], nodes_[i + 1])) {
      throw std::logic_error("route: missing link " +
                             net.node(nodes_[i]).name + "->" +
                             net.node(nodes_[i + 1]).name);
    }
  }
  auto endpoint_ok = [&](NodeId n) {
    const NodeKind k = net.node(n).kind;
    return k == NodeKind::kEndHost || k == NodeKind::kRouter;
  };
  if (!endpoint_ok(source())) {
    throw std::logic_error("route: source must be an endhost or router");
  }
  if (!endpoint_ok(destination())) {
    throw std::logic_error("route: destination must be an endhost or router");
  }
  for (NodeId n : intermediates()) {
    if (net.node(n).kind != NodeKind::kSwitch) {
      throw std::logic_error("route: intermediate " + net.node(n).name +
                             " is not an Ethernet switch");
    }
  }
}

}  // namespace gmfnet::net
