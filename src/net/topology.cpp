#include "net/topology.hpp"

#include <stdexcept>
#include <string>

namespace gmfnet::net {

Figure1Network make_figure1_network(ethernet::LinkSpeedBps speed_bps,
                                    SwitchParams params) {
  Figure1Network f;
  // Insertion order matches the paper's node numbering.
  f.host0 = f.net.add_endhost("0");
  f.host1 = f.net.add_endhost("1");
  f.host2 = f.net.add_endhost("2");
  f.host3 = f.net.add_endhost("3");
  f.sw4 = f.net.add_switch("4", params);
  f.sw5 = f.net.add_switch("5", params);
  f.sw6 = f.net.add_switch("6", params);
  f.router7 = f.net.add_router("7");

  f.net.add_duplex_link(f.host0, f.sw4, speed_bps);
  f.net.add_duplex_link(f.host1, f.sw4, speed_bps);
  f.net.add_duplex_link(f.sw4, f.sw5, speed_bps);
  f.net.add_duplex_link(f.sw4, f.sw6, speed_bps);
  f.net.add_duplex_link(f.host2, f.sw5, speed_bps);
  f.net.add_duplex_link(f.sw5, f.sw6, speed_bps);
  f.net.add_duplex_link(f.sw6, f.host3, speed_bps);
  f.net.add_duplex_link(f.sw6, f.router7, speed_bps);

  f.net.validate();
  return f;
}

LineNetwork make_line_network(int num_switches,
                              ethernet::LinkSpeedBps speed_bps,
                              SwitchParams params) {
  if (num_switches < 1) {
    throw std::invalid_argument("make_line_network: need >= 1 switch");
  }
  LineNetwork l;
  l.src_host = l.net.add_endhost("src");
  for (int i = 0; i < num_switches; ++i) {
    l.switches.push_back(l.net.add_switch("sw" + std::to_string(i), params));
  }
  l.dst_host = l.net.add_endhost("dst");

  l.net.add_duplex_link(l.src_host, l.switches.front(), speed_bps);
  for (int i = 0; i + 1 < num_switches; ++i) {
    l.net.add_duplex_link(l.switches[static_cast<std::size_t>(i)],
                          l.switches[static_cast<std::size_t>(i + 1)],
                          speed_bps);
  }
  l.net.add_duplex_link(l.switches.back(), l.dst_host, speed_bps);

  for (int i = 0; i < num_switches; ++i) {
    const NodeId leaf = l.net.add_endhost("leaf" + std::to_string(i));
    l.leaf_hosts.push_back(leaf);
    l.net.add_duplex_link(leaf, l.switches[static_cast<std::size_t>(i)],
                          speed_bps);
  }

  l.net.validate();
  return l;
}

StarNetwork make_star_network(int hosts, ethernet::LinkSpeedBps speed_bps,
                              SwitchParams params) {
  if (hosts < 1) throw std::invalid_argument("make_star_network: need hosts");
  StarNetwork s;
  s.sw = s.net.add_switch("sw", params);
  for (int i = 0; i < hosts; ++i) {
    const NodeId h = s.net.add_endhost("h" + std::to_string(i));
    s.hosts.push_back(h);
    s.net.add_duplex_link(h, s.sw, speed_bps);
  }
  s.net.validate();
  return s;
}

TreeNetwork make_tree_network(int depth, int hosts_per_leaf,
                              ethernet::LinkSpeedBps speed_bps,
                              SwitchParams params) {
  if (depth < 1) throw std::invalid_argument("make_tree_network: depth >= 1");
  if (hosts_per_leaf < 1) {
    throw std::invalid_argument("make_tree_network: hosts_per_leaf >= 1");
  }
  TreeNetwork t;
  // Level-order construction of a complete binary tree of switches.
  std::vector<std::vector<NodeId>> levels;
  for (int d = 0; d < depth; ++d) {
    levels.emplace_back();
    const int width = 1 << d;
    for (int i = 0; i < width; ++i) {
      const NodeId sw = t.net.add_switch(
          "sw_d" + std::to_string(d) + "_" + std::to_string(i), params);
      levels.back().push_back(sw);
      t.switches.push_back(sw);
      if (d > 0) {
        const NodeId parent =
            levels[static_cast<std::size_t>(d - 1)]
                  [static_cast<std::size_t>(i / 2)];
        t.net.add_duplex_link(parent, sw, speed_bps);
      }
    }
  }
  t.root = levels.front().front();
  for (std::size_t i = 0; i < levels.back().size(); ++i) {
    for (int h = 0; h < hosts_per_leaf; ++h) {
      const NodeId host = t.net.add_endhost(
          "h" + std::to_string(i) + "_" + std::to_string(h));
      t.hosts.push_back(host);
      t.net.add_duplex_link(host, levels.back()[i], speed_bps);
    }
  }
  t.net.validate();
  return t;
}

RandomNetwork make_random_network(int switches, int hosts, int extra_links,
                                  ethernet::LinkSpeedBps speed_bps, Rng& rng,
                                  SwitchParams params) {
  if (switches < 1) {
    throw std::invalid_argument("make_random_network: need switches");
  }
  if (hosts < 1) {
    throw std::invalid_argument("make_random_network: need hosts");
  }
  RandomNetwork r;
  for (int i = 0; i < switches; ++i) {
    r.switches.push_back(
        r.net.add_switch("sw" + std::to_string(i), params));
  }
  // Random spanning tree: attach each new switch to a uniformly chosen
  // earlier one (random recursive tree).
  for (int i = 1; i < switches; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(i)));
    r.net.add_duplex_link(r.switches[static_cast<std::size_t>(i)],
                          r.switches[j], speed_bps);
  }
  // Extra cables between switch pairs that are not yet connected.
  int added = 0;
  int attempts = 0;
  while (added < extra_links && attempts < extra_links * 20 + 100) {
    ++attempts;
    if (switches < 3) break;
    const auto a = static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(switches)));
    const auto b = static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(switches)));
    if (a == b) continue;
    if (r.net.has_link(r.switches[a], r.switches[b])) continue;
    r.net.add_duplex_link(r.switches[a], r.switches[b], speed_bps);
    ++added;
  }
  for (int i = 0; i < hosts; ++i) {
    const NodeId h = r.net.add_endhost("h" + std::to_string(i));
    r.hosts.push_back(h);
    const auto s = static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(switches)));
    r.net.add_duplex_link(h, r.switches[s], speed_bps);
  }
  r.net.validate();
  return r;
}

}  // namespace gmfnet::net
