// A flow's route: the pre-specified node sequence from source to destination
// (§2.1; Figure 2).  Routes traverse only Ethernet switches between their
// endpoints and never repeat a node.
#pragma once

#include <vector>

#include "net/ids.hpp"
#include "net/network.hpp"

namespace gmfnet::net {

class Route {
 public:
  Route() = default;
  explicit Route(std::vector<NodeId> nodes) : nodes_(std::move(nodes)) {}

  [[nodiscard]] bool empty() const { return nodes_.empty(); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  /// Number of links traversed (node_count() - 1).
  [[nodiscard]] std::size_t hop_count() const {
    return nodes_.empty() ? 0 : nodes_.size() - 1;
  }

  [[nodiscard]] NodeId source() const { return nodes_.front(); }
  [[nodiscard]] NodeId destination() const { return nodes_.back(); }
  [[nodiscard]] NodeId node_at(std::size_t i) const { return nodes_[i]; }
  [[nodiscard]] const std::vector<NodeId>& nodes() const { return nodes_; }

  /// succ(τ, N): node after N on the route; invalid NodeId if N is the
  /// destination or not on the route.
  [[nodiscard]] NodeId succ(NodeId n) const;
  /// prec(τ, N): node before N on the route; invalid NodeId if N is the
  /// source or not on the route.
  [[nodiscard]] NodeId prec(NodeId n) const;

  [[nodiscard]] bool contains(NodeId n) const;
  /// True when the route traverses the directed link a->b.
  [[nodiscard]] bool uses_link(NodeId a, NodeId b) const;
  [[nodiscard]] bool uses_link(LinkRef l) const {
    return uses_link(l.src, l.dst);
  }

  /// All directed links of the route, in order.
  [[nodiscard]] std::vector<LinkRef> links() const;

  /// The intermediate nodes (all Ethernet switches for a valid route).
  [[nodiscard]] std::vector<NodeId> intermediates() const;

  /// Validates against a network: >= 2 nodes, no repeats, every consecutive
  /// pair is a link, endpoints are endhosts/routers, intermediates are
  /// switches.  Throws std::logic_error describing the first violation.
  void validate(const Network& net) const;

  auto operator<=>(const Route&) const = default;

 private:
  std::vector<NodeId> nodes_;
};

}  // namespace gmfnet::net
