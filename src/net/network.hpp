// The modelled network: a directed graph of nodes and links.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ids.hpp"
#include "net/link.hpp"
#include "net/node.hpp"

namespace gmfnet::net {

/// Directed multigraph-free network graph.  Links are unique per (src, dst)
/// ordered pair; a full-duplex cable is added as two directed links (see
/// `add_duplex_link`).
class Network {
 public:
  /// Adds a node and returns its id. Names are for diagnostics only and need
  /// not be unique (empty gets an auto name like "n3").
  NodeId add_node(NodeKind kind, std::string name = {});
  NodeId add_endhost(std::string name = {}) {
    return add_node(NodeKind::kEndHost, std::move(name));
  }
  NodeId add_switch(std::string name = {}, SwitchParams params = {});
  NodeId add_router(std::string name = {}) {
    return add_node(NodeKind::kRouter, std::move(name));
  }

  /// Adds a directed link; rejects duplicates and self-loops (throws
  /// std::invalid_argument).
  void add_link(NodeId src, NodeId dst, ethernet::LinkSpeedBps speed_bps,
                gmfnet::Time prop = gmfnet::Time::zero());

  /// Adds both directions with identical attributes.
  void add_duplex_link(NodeId a, NodeId b, ethernet::LinkSpeedBps speed_bps,
                       gmfnet::Time prop = gmfnet::Time::zero());

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] Node& node(NodeId id);
  [[nodiscard]] bool has_node(NodeId id) const {
    return id.v >= 0 && static_cast<std::size_t>(id.v) < nodes_.size();
  }

  [[nodiscard]] bool has_link(NodeId src, NodeId dst) const;
  [[nodiscard]] const Link& link(NodeId src, NodeId dst) const;
  [[nodiscard]] const Link& link(LinkRef ref) const {
    return link(ref.src, ref.dst);
  }

  /// linkspeed(N1,N2) / prop(N1,N2) accessors in the paper's vocabulary.
  [[nodiscard]] ethernet::LinkSpeedBps linkspeed(NodeId src, NodeId dst) const {
    return link(src, dst).speed_bps;
  }
  [[nodiscard]] gmfnet::Time prop(NodeId src, NodeId dst) const {
    return link(src, dst).prop;
  }

  /// Outgoing / incoming neighbor node ids.
  [[nodiscard]] const std::vector<NodeId>& successors(NodeId id) const;
  [[nodiscard]] const std::vector<NodeId>& predecessors(NodeId id) const;

  /// NINTERFACES(N): number of network interfaces on a node = its degree in
  /// the undirected sense (each attached cable is one interface).
  [[nodiscard]] int ninterfaces(NodeId id) const;

  /// All links, in insertion order.
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }

  /// All node ids of a given kind.
  [[nodiscard]] std::vector<NodeId> nodes_of_kind(NodeKind kind) const;

  /// Structural sanity checks (every switch has >= 1 interface, speeds
  /// positive...). Throws std::logic_error with a description on failure.
  void validate() const;

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::unordered_map<LinkRef, std::size_t> link_index_;
  std::vector<std::vector<NodeId>> succ_;
  std::vector<std::vector<NodeId>> pred_;
};

}  // namespace gmfnet::net
