// Topology builders: the paper's Figure-1 network and the synthetic families
// used by the evaluation sweeps.
#pragma once

#include <vector>

#include "net/network.hpp"
#include "util/rng.hpp"

namespace gmfnet::net {

/// The example network of Figure 1, with all node ids matching the paper:
/// nodes 0..3 are IP end hosts, 4..6 are Ethernet switches, 7 is the
/// IP router to the global Internet.
///
/// Cabling (full duplex), from the figure: 0-4, 1-4, 4-5, 4-6, 2-5, 5-6,
/// 6-3, 6-7.  All links default to `speed_bps` (the worked example in §3.1
/// uses 10 Mbit/s on link(0,4)).
struct Figure1Network {
  Network net;
  NodeId host0, host1, host2, host3;
  NodeId sw4, sw5, sw6;
  NodeId router7;
};
[[nodiscard]] Figure1Network make_figure1_network(
    ethernet::LinkSpeedBps speed_bps = 10'000'000,
    SwitchParams params = {});

/// A line: H0 - S1 - S2 - ... - Sk - H1, with one extra leaf host hanging
/// off every switch (so switches have realistic interface counts and cross
/// traffic can be injected at any hop).  Used by the jitter-propagation
/// experiment (E7).
struct LineNetwork {
  Network net;
  NodeId src_host;
  NodeId dst_host;
  std::vector<NodeId> switches;
  std::vector<NodeId> leaf_hosts;  ///< leaf_hosts[i] hangs off switches[i]
};
[[nodiscard]] LineNetwork make_line_network(int num_switches,
                                            ethernet::LinkSpeedBps speed_bps,
                                            SwitchParams params = {});

/// A star: one switch, `hosts` end hosts attached to it.
struct StarNetwork {
  Network net;
  NodeId sw;
  std::vector<NodeId> hosts;
};
[[nodiscard]] StarNetwork make_star_network(int hosts,
                                            ethernet::LinkSpeedBps speed_bps,
                                            SwitchParams params = {});

/// A balanced binary tree of switches of the given depth; every leaf switch
/// gets `hosts_per_leaf` end hosts.  Typical enterprise edge topology.
struct TreeNetwork {
  Network net;
  NodeId root;
  std::vector<NodeId> switches;
  std::vector<NodeId> hosts;
};
[[nodiscard]] TreeNetwork make_tree_network(int depth, int hosts_per_leaf,
                                            ethernet::LinkSpeedBps speed_bps,
                                            SwitchParams params = {});

/// A random connected switch mesh with `switches` switches (random spanning
/// tree + `extra_links` random extra cables) and `hosts` end hosts attached
/// to random switches.
struct RandomNetwork {
  Network net;
  std::vector<NodeId> switches;
  std::vector<NodeId> hosts;
};
[[nodiscard]] RandomNetwork make_random_network(int switches, int hosts,
                                                int extra_links,
                                                ethernet::LinkSpeedBps speed_bps,
                                                Rng& rng,
                                                SwitchParams params = {});

}  // namespace gmfnet::net
