#include "net/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace gmfnet::net {

NodeId Network::add_node(NodeKind kind, std::string name) {
  NodeId id(static_cast<std::int32_t>(nodes_.size()));
  Node n;
  n.kind = kind;
  n.name = name.empty() ? "n" + std::to_string(id.v) : std::move(name);
  nodes_.push_back(std::move(n));
  succ_.emplace_back();
  pred_.emplace_back();
  return id;
}

NodeId Network::add_switch(std::string name, SwitchParams params) {
  NodeId id = add_node(NodeKind::kSwitch, std::move(name));
  nodes_[static_cast<std::size_t>(id.v)].sw = params;
  return id;
}

void Network::add_link(NodeId src, NodeId dst,
                       ethernet::LinkSpeedBps speed_bps, gmfnet::Time prop) {
  if (!has_node(src) || !has_node(dst)) {
    throw std::invalid_argument("add_link: unknown node");
  }
  if (src == dst) {
    throw std::invalid_argument("add_link: self-loop");
  }
  if (speed_bps <= 0) {
    throw std::invalid_argument("add_link: non-positive link speed");
  }
  if (prop < gmfnet::Time::zero()) {
    throw std::invalid_argument("add_link: negative propagation delay");
  }
  const LinkRef ref(src, dst);
  if (link_index_.contains(ref)) {
    throw std::invalid_argument("add_link: duplicate link");
  }
  link_index_[ref] = links_.size();
  links_.push_back(Link{src, dst, speed_bps, prop});
  succ_[static_cast<std::size_t>(src.v)].push_back(dst);
  pred_[static_cast<std::size_t>(dst.v)].push_back(src);
}

void Network::add_duplex_link(NodeId a, NodeId b,
                              ethernet::LinkSpeedBps speed_bps,
                              gmfnet::Time prop) {
  add_link(a, b, speed_bps, prop);
  add_link(b, a, speed_bps, prop);
}

const Node& Network::node(NodeId id) const {
  if (!has_node(id)) throw std::out_of_range("node: bad id");
  return nodes_[static_cast<std::size_t>(id.v)];
}

Node& Network::node(NodeId id) {
  if (!has_node(id)) throw std::out_of_range("node: bad id");
  return nodes_[static_cast<std::size_t>(id.v)];
}

bool Network::has_link(NodeId src, NodeId dst) const {
  return link_index_.contains(LinkRef(src, dst));
}

const Link& Network::link(NodeId src, NodeId dst) const {
  const auto it = link_index_.find(LinkRef(src, dst));
  if (it == link_index_.end()) {
    throw std::out_of_range("link: no such link " + std::to_string(src.v) +
                            "->" + std::to_string(dst.v));
  }
  return links_[it->second];
}

const std::vector<NodeId>& Network::successors(NodeId id) const {
  if (!has_node(id)) throw std::out_of_range("successors: bad id");
  return succ_[static_cast<std::size_t>(id.v)];
}

const std::vector<NodeId>& Network::predecessors(NodeId id) const {
  if (!has_node(id)) throw std::out_of_range("predecessors: bad id");
  return pred_[static_cast<std::size_t>(id.v)];
}

int Network::ninterfaces(NodeId id) const {
  // Count distinct neighbours over both directions: a full-duplex cable
  // (two directed links) is one physical interface.
  std::vector<NodeId> nbrs = successors(id);
  const auto& in = predecessors(id);
  nbrs.insert(nbrs.end(), in.begin(), in.end());
  std::sort(nbrs.begin(), nbrs.end());
  nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  return static_cast<int>(nbrs.size());
}

std::vector<NodeId> Network::nodes_of_kind(NodeKind kind) const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == kind) out.emplace_back(static_cast<std::int32_t>(i));
  }
  return out;
}

void Network::validate() const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const NodeId id(static_cast<std::int32_t>(i));
    const Node& n = nodes_[i];
    if (n.kind == NodeKind::kSwitch) {
      if (ninterfaces(id) < 1) {
        throw std::logic_error("validate: switch " + n.name +
                               " has no interfaces");
      }
      if (n.sw.processors < 1) {
        throw std::logic_error("validate: switch " + n.name +
                               " has no processors");
      }
      if (n.sw.croute <= gmfnet::Time::zero() ||
          n.sw.csend <= gmfnet::Time::zero()) {
        throw std::logic_error("validate: switch " + n.name +
                               " has non-positive task costs");
      }
    }
  }
  for (const Link& l : links_) {
    if (l.speed_bps <= 0) throw std::logic_error("validate: bad link speed");
  }
}

}  // namespace gmfnet::net
