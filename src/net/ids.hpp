// Strongly-typed identifiers for nodes and flows.
#pragma once

#include <cstdint>
#include <functional>

namespace gmfnet::net {

/// Index of a node within a Network; dense, assigned in insertion order.
struct NodeId {
  std::int32_t v = -1;

  constexpr NodeId() = default;
  constexpr explicit NodeId(std::int32_t value) : v(value) {}
  [[nodiscard]] constexpr bool valid() const { return v >= 0; }
  constexpr auto operator<=>(const NodeId&) const = default;
};

/// Index of a flow within a flow set.
struct FlowId {
  std::int32_t v = -1;

  constexpr FlowId() = default;
  constexpr explicit FlowId(std::int32_t value) : v(value) {}
  [[nodiscard]] constexpr bool valid() const { return v >= 0; }
  constexpr auto operator<=>(const FlowId&) const = default;
};

/// A directed link, identified by its endpoints.  The paper writes
/// link(N1,N2); each physical full-duplex Ethernet cable is two of these.
struct LinkRef {
  NodeId src;
  NodeId dst;

  constexpr LinkRef() = default;
  constexpr LinkRef(NodeId s, NodeId d) : src(s), dst(d) {}
  constexpr auto operator<=>(const LinkRef&) const = default;
};

}  // namespace gmfnet::net

template <>
struct std::hash<gmfnet::net::NodeId> {
  std::size_t operator()(gmfnet::net::NodeId id) const noexcept {
    return std::hash<std::int32_t>{}(id.v);
  }
};

template <>
struct std::hash<gmfnet::net::FlowId> {
  std::size_t operator()(gmfnet::net::FlowId id) const noexcept {
    return std::hash<std::int32_t>{}(id.v);
  }
};

template <>
struct std::hash<gmfnet::net::LinkRef> {
  std::size_t operator()(const gmfnet::net::LinkRef& l) const noexcept {
    const auto a = static_cast<std::uint64_t>(static_cast<std::uint32_t>(l.src.v));
    const auto b = static_cast<std::uint64_t>(static_cast<std::uint32_t>(l.dst.v));
    return std::hash<std::uint64_t>{}((a << 32) | b);
  }
};
