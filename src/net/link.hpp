// Directed link attributes (§2.1: linkspeed(N1,N2) and prop(N1,N2)).
#pragma once

#include "ethernet/framing.hpp"
#include "net/ids.hpp"
#include "util/time.hpp"

namespace gmfnet::net {

struct Link {
  NodeId src;
  NodeId dst;
  /// Bitrate of the link in bits/second (linkspeed(N1,N2)).
  ethernet::LinkSpeedBps speed_bps = 100'000'000;
  /// Propagation delay (prop(N1,N2)); speed-of-light term, zero by default
  /// for LAN-scale topologies.
  gmfnet::Time prop = gmfnet::Time::zero();
};

}  // namespace gmfnet::net
