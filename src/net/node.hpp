// Node kinds and per-switch parameters (§2.1 of the paper).
#pragma once

#include <string>

#include "util/time.hpp"

namespace gmfnet::net {

/// The three node roles of Figure 1.  Flows originate/terminate at end hosts
/// or routers and are relayed only by Ethernet switches.
enum class NodeKind {
  kEndHost,  ///< IP end host (PC); source/sink of flows
  kSwitch,   ///< software-implemented Ethernet switch (Click-style)
  kRouter,   ///< IP router at the network boundary; source/sink of flows
};

[[nodiscard]] constexpr const char* to_string(NodeKind k) {
  switch (k) {
    case NodeKind::kEndHost: return "endhost";
    case NodeKind::kSwitch: return "switch";
    case NodeKind::kRouter: return "router";
  }
  return "?";
}

/// Parameters of a software-implemented Ethernet switch.
///
/// Defaults are the paper's measured values for the Click implementation:
/// CROUTE = 2.7 us (NIC FIFO -> classified -> priority queue) and
/// CSEND = 1.0 us (priority queue -> NIC FIFO).  `processors` models the
/// multiprocessor extension from the Conclusions: interfaces are partitioned
/// over CPUs, shrinking the stride service period CIRC accordingly.
struct SwitchParams {
  gmfnet::Time croute = gmfnet::Time::ns(2700);
  gmfnet::Time csend = gmfnet::Time::ns(1000);
  int processors = 1;
};

/// A node of the modelled network.
struct Node {
  NodeKind kind = NodeKind::kEndHost;
  std::string name;
  SwitchParams sw;  ///< meaningful only when kind == kSwitch
};

}  // namespace gmfnet::net
