// AnalysisEngine: the long-lived, incremental admission-control core.
//
// The seed's AdmissionController re-derived the whole world per query: every
// try_admit copied the flow vector, rebuilt the AnalysisContext and iterated
// the holistic fixed point from a cold jitter map.  The engine keeps the
// world alive between queries and makes the per-arrival work proportional to
// what the arrival actually changed:
//
//  * Route-based dirty tracking.  Adding or removing a flow dirties only the
//    links of its route.  At evaluation time the dirty set is closed
//    transitively over link sharing (a flow is affected iff it shares a link
//    with an affected flow), and only that component is re-analysed; every
//    other flow's converged FlowResult is reused verbatim.  Per-flow
//    parameter caches (gmf::FlowLinkParams, DemandCurves) live in the
//    context and are never rebuilt for untouched flows.
//
//  * Warm-started fixed point.  Re-analysis seeds the holistic iteration
//    from the previously converged JitterMap instead of zeros.  The sweep
//    operator is monotone and adding a flow only adds interference, so the
//    old fixed point under-approximates the new one and the iteration
//    reaches the *same* least fixed point in near-minimal sweeps (a one-flow
//    delta typically converges in 2).  After a removal the affected
//    component restarts from the initial map (its fixed point may shrink);
//    unaffected components keep their converged state either way.
//
//  * Batch admission.  evaluate_batch fans independent what-if analyses over
//    a gmfnet::ThreadPool; each candidate runs against a copy-on-write view
//    of the cached context (shared derived state, nothing recomputed) and
//    the shared warm jitter map.
//
// Results are bit-identical to a from-scratch AnalysisContext +
// analyze_holistic run on the same flow set: both iterations converge to the
// unique least fixed point, and per-flow results are pure functions of
// (context, fixed point).  tests/test_engine_equivalence.cpp checks this
// property over randomized scenarios.
//
// The engine is not thread-safe; drive it from one thread (evaluate_batch
// parallelises internally).
#pragma once

#include <cstddef>
#include <optional>
#include <set>
#include <vector>

#include "core/holistic.hpp"
#include "gmf/flow.hpp"
#include "net/network.hpp"

namespace gmfnet::engine {

/// Outcome of one non-committing what-if admission probe.
struct WhatIfResult {
  /// Full holistic result of resident set + candidate (candidate is the
  /// last flow id).
  core::HolisticResult result;
  /// True when the combined set is schedulable — the admission verdict.
  bool admissible = false;
};

/// Instrumentation counters (monotonic since construction).
struct EngineStats {
  std::size_t evaluations = 0;       ///< evaluate()/what-if runs executed
  std::size_t full_runs = 0;         ///< cold full-set analyses
  std::size_t incremental_runs = 0;  ///< warm dirty-component analyses
  std::size_t flow_analyses = 0;     ///< per-flow per-sweep analyses run
  std::size_t flow_results_reused = 0;  ///< cached FlowResults reused
  std::size_t sweeps = 0;            ///< total sweeps executed
};

class AnalysisEngine {
 public:
  /// `opts.initial_jitters` is ignored: the engine owns warm starting.
  explicit AnalysisEngine(net::Network network,
                          core::HolisticOptions opts = {});

  // -- resident-set mutation (lazy: no analysis happens here) ---------------

  /// Validates and appends `flow` unconditionally (no admission test; use
  /// try_admit for gated admission).  Throws std::logic_error on malformed
  /// flows.  Dirties only the flow's route links.
  net::FlowId add_flow(gmf::Flow flow);

  /// Removes the resident flow at `index` (ids above shift down by one).
  /// Returns false when `index` is out of range, leaving all state
  /// untouched.  Dirties only the removed flow's route links.
  bool remove_flow(std::size_t index);

  // -- queries --------------------------------------------------------------

  [[nodiscard]] std::size_t flow_count() const { return ctx_.flow_count(); }
  [[nodiscard]] const gmf::Flow& flow(std::size_t index) const {
    return ctx_.flow(net::FlowId(static_cast<std::int32_t>(index)));
  }
  [[nodiscard]] const net::Network& network() const { return ctx_.network(); }
  [[nodiscard]] const core::AnalysisContext& context() const { return ctx_; }
  [[nodiscard]] const EngineStats& stats() const { return stats_; }

  // -- analysis -------------------------------------------------------------

  /// Holistic result for the resident set.  Incremental: only the dirty
  /// component (if any) is re-analysed, warm-started from the cached fixed
  /// point.  The returned reference stays valid until the next engine call.
  const core::HolisticResult& evaluate();

  /// What-if: result of resident set + `candidate`, without committing
  /// anything.  Throws std::logic_error on malformed candidates.
  WhatIfResult what_if(const gmf::Flow& candidate);

  /// Tests `candidate` against the resident set; on acceptance it joins the
  /// set (and the converged state is kept — no re-analysis needed) and the
  /// full result is returned, on rejection the set is unchanged and
  /// std::nullopt is returned.
  std::optional<core::HolisticResult> try_admit(gmf::Flow candidate);

  /// Independent what-if probes for every candidate against the *same*
  /// resident set, fanned over a thread pool; candidates are not committed
  /// and do not see each other.  out[i] corresponds to candidates[i].
  /// Throws std::logic_error if any candidate is malformed (before any
  /// analysis runs).
  std::vector<WhatIfResult> evaluate_batch(
      const std::vector<gmf::Flow>& candidates);

 private:
  struct Cache {
    /// True when `result.jitters` is a converged fixed point for the
    /// resident set as of the last evaluation, and `result.flows` holds one
    /// converged FlowResult per then-resident flow.
    bool valid = false;
    core::HolisticResult result;
  };

  struct RunStats {
    std::size_t flow_analyses = 0;
    std::size_t flow_results_reused = 0;
    std::size_t sweeps = 0;
  };

  /// Marks every flow sharing a link (transitively) with a seed flow.
  /// Seeds: the flows passed in as already-dirty, flows touching
  /// `dirty_links_`, and flows with id >= the cached result size (added
  /// since the last evaluation, so they have no reusable FlowResult).
  [[nodiscard]] std::vector<bool> dirty_closure(
      const core::AnalysisContext& ctx, std::vector<bool> dirty) const;

  /// Warm-start map for `ctx`: initial everywhere, then cached converged
  /// entries adopted for every flow with a cache entry — except dirty flows
  /// when `reset_dirty` (after removals their fixed point may shrink).
  [[nodiscard]] core::JitterMap warm_start(const core::AnalysisContext& ctx,
                                           const std::vector<bool>& dirty,
                                           bool reset_dirty) const;

  /// Gauss-Seidel sweeps over the dirty flows only, from `start`; clean
  /// flows' results are adopted from the cache.  Bit-identical to a cold
  /// full-set run (same least fixed point).
  [[nodiscard]] core::HolisticResult run_incremental(
      const core::AnalysisContext& ctx, const std::vector<bool>& dirty,
      core::JitterMap start, RunStats& rs) const;

  /// One what-if probe against a prepared view (resident set + candidate).
  [[nodiscard]] WhatIfResult probe(const core::AnalysisContext& view,
                                   RunStats& rs) const;

  /// Folds one run's counters into stats_ (call before any cache install).
  void record_run(const RunStats& rs);

  void install(core::HolisticResult result);

  core::AnalysisContext ctx_;
  core::HolisticOptions opts_;
  Cache cache_;
  std::set<net::LinkRef> dirty_links_;
  bool removal_pending_ = false;
  EngineStats stats_;
};

}  // namespace gmfnet::engine
