// AnalysisEngine: the long-lived, incremental, sharded admission-control
// core.
//
// The holistic analysis converges to a unique least fixed point per
// link-sharing component, so disjoint locality domains are analytically
// independent.  The engine exploits that twice over:
//
//  * Locality-domain sharding.  The resident set is partitioned into the
//    connected components of the link-sharing graph, maintained
//    incrementally as flows come and go: an add unions the domains its
//    route touches (merging shards when it bridges them), a removal
//    rebuilds the touched shard's partition and splits it when the
//    component fell apart.  Each shard owns its own AnalysisContext, dirty
//    set and warm JitterMap (engine/shard.hpp), so an admission touching
//    one domain re-analyses only that shard — the work is proportional to
//    the touched domain, not the resident count — and a full-set
//    evaluation fans the dirty shards over a thread pool.
//
//  * RCU-style published snapshots.  After every committed mutation the
//    engine publishes an immutable EngineSnapshot (engine/snapshot.hpp) by
//    a single atomic shared_ptr swap.  Reader threads load the snapshot
//    (`published()`) and run `EngineSnapshot::what_if` probes against it
//    with zero engine locking — all snapshot state is immutable or
//    copy-on-write — so N operator threads issue concurrent what-ifs while
//    the writer thread keeps admitting.  Readers see the world as of the
//    last publication: consistent, possibly one mutation stale.
//
//  * Warm-started fixed point.  Re-analysis seeds the holistic iteration
//    from the previously converged JitterMap instead of zeros.  The sweep
//    operator is monotone and adding a flow only adds interference, so the
//    old fixed point under-approximates the new one and the iteration
//    reaches the *same* least fixed point in near-minimal sweeps (a
//    one-flow delta typically converges in 2).  After a removal the
//    affected component restarts from the initial map (its fixed point may
//    shrink); unaffected components keep their converged state either way.
//
// Results are bit-identical to a from-scratch AnalysisContext +
// analyze_holistic run on the same flow set: both iterations converge to
// the unique least fixed point, per-flow results are pure functions of
// (context, fixed point), and shard-local contexts preserve the global
// per-link flow order, so even the floating-point link aggregates match.
// tests/test_engine_equivalence.cpp and tests/test_engine_shard.cpp check
// this property over randomized scenarios, including concurrent readers.
//
// Threading contract: ONE writer thread drives the mutating API (add_flow,
// remove_flow, evaluate, what_if, try_admit, evaluate_batch).  Any number
// of reader threads may concurrently call published() / stats() and probe
// the returned snapshots.  evaluate_batch parallelises internally.
#pragma once

#include <atomic>
#include <cstddef>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/holistic.hpp"
#include "engine/shard.hpp"
#include "engine/snapshot.hpp"
#include "gmf/flow.hpp"
#include "net/network.hpp"
#include "util/thread_pool.hpp"

namespace gmfnet::engine {

/// Instrumentation counters (monotonic since construction or the last
/// reset()).  Materialized from relaxed atomics: safe to read while
/// concurrent probes record, though each counter is only individually
/// consistent mid-flight.  At quiescence `evaluations == full_runs +
/// incremental_runs` (every solver run is exactly one of the two); a read
/// racing a probe's record may transiently see the sum off by the in-flight
/// runs.
struct EngineStats {
  std::size_t evaluations = 0;       ///< solver runs executed (shards+probes)
  std::size_t full_runs = 0;         ///< cold runs (no usable warm cache)
  std::size_t incremental_runs = 0;  ///< warm dirty-component runs
  std::size_t flow_analyses = 0;     ///< per-flow per-sweep analyses run
  std::size_t flow_results_reused = 0;  ///< cached FlowResults reused
  std::size_t sweeps = 0;            ///< total sweeps executed
  std::size_t accel_accepted = 0;    ///< Anderson iterates kept (safeguard)
  std::size_t accel_rejected = 0;    ///< Anderson iterates rolled back
};

class AnalysisEngine {
 public:
  /// `opts.warm_start` is ignored: the engine owns warm starting.
  /// `opts.order` is also ignored: every shard/probe solve is Gauss-Seidel
  /// (the engine's parallelism comes from fanning shards and batch probes
  /// over the pool, not from Jacobi sweeps; results are the same unique
  /// least fixed point either way).  `shard_by_domain = false` forces the
  /// whole resident set into a single shard (the pre-shard behaviour; kept
  /// for benchmarking the sharded path against it).
  explicit AnalysisEngine(net::Network network,
                          core::HolisticOptions opts = {},
                          bool shard_by_domain = true);

  // -- resident-set mutation (lazy: no analysis happens here) ---------------

  /// Validates and appends `flow` unconditionally (no admission test; use
  /// try_admit for gated admission).  Throws std::logic_error on malformed
  /// flows.  Dirties only the flow's locality domain.
  net::FlowId add_flow(gmf::Flow flow);

  /// Removes the resident flow at `index` (ids above shift down by one).
  /// Returns false when `index` is out of range, leaving all state
  /// untouched.  Dirties only the removed flow's domain, splitting it when
  /// the removal disconnected it.
  bool remove_flow(std::size_t index);

  // -- queries --------------------------------------------------------------

  [[nodiscard]] std::size_t flow_count() const { return locs_.size(); }
  [[nodiscard]] const gmf::Flow& flow(std::size_t index) const;
  [[nodiscard]] const net::Network& network() const {
    return empty_ctx_->network();
  }
  [[nodiscard]] EngineStats stats() const;
  /// Zeroes every counter (writer thread only).
  void reset_stats();

  /// The engine's effective solve options (warm_start disengaged, order
  /// normalized away by the per-shard Gauss-Seidel contract above).  The
  /// daemon reports `options().solver.mode` in StatsResponse.
  [[nodiscard]] const core::HolisticOptions& options() const { return opts_; }

  /// Current number of locality domains (shards).
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  /// Which shard (by position) the flow at `index` currently lives in.
  /// Positions are not stable across mutations; use for introspection.
  /// Throws std::out_of_range on a bad index.
  [[nodiscard]] std::size_t shard_of(std::size_t index) const {
    return locs_.at(index).shard;
  }

  // -- analysis -------------------------------------------------------------

  /// Holistic result for the resident set.  Incremental: only dirty shards
  /// are re-solved (fanned over a thread pool when several are dirty),
  /// warm-started from their cached fixed points; the fresh snapshot is
  /// published.  The returned reference stays valid until the next engine
  /// call.
  const core::HolisticResult& evaluate();

  /// What-if: result of resident set + `candidate`, without committing
  /// anything.  Runs against the published snapshot (evaluating first when
  /// stale).  Throws std::logic_error on malformed candidates.
  WhatIfResult what_if(const gmf::Flow& candidate);

  /// Tests `candidate` against the resident set; on acceptance it joins the
  /// set (adopting the probe's converged state — no re-analysis) and the
  /// full result is returned, on rejection the set is unchanged and
  /// std::nullopt is returned.
  std::optional<core::HolisticResult> try_admit(gmf::Flow candidate);

  // -- coalesced mutation batches -------------------------------------------
  //
  // A batch amortizes the dominant per-mutation cost — the O(resident)
  // global-result assembly + snapshot publication — over K queued
  // mutations: begin_batch(); K × try_admit_lean()/remove_flow();
  // end_batch() performs ONE assembly and ONE publication.  Verdicts are
  // bit-identical to the sequential try_admit path: a lean probe runs
  // against the exact same shard contexts and converged caches, it merely
  // skips materializing the whole-set result between commits.  Readers keep
  // seeing the last published snapshot until end_batch().

  /// Opens a coalesced batch.  Only affects which internal snapshot lean
  /// admissions probe against; readers are never blocked.
  void begin_batch();

  /// Gated admission without publishing: identical verdict to try_admit on
  /// the same state, but a success only commits the probe's shard surgery —
  /// the global result and published snapshot stay stale until end_batch().
  /// Returns true when the candidate was admitted.  Throws std::logic_error
  /// on malformed candidates.
  bool try_admit_lean(gmf::Flow candidate);

  /// Closes the batch: solves anything still dirty (e.g. lazy removals),
  /// assembles the global result and publishes exactly one fresh snapshot.
  const core::HolisticResult& end_batch();

  /// Independent what-if probes for every candidate against the *same*
  /// published snapshot, fanned over a thread pool; candidates are not
  /// committed and do not see each other.  out[i] corresponds to
  /// candidates[i].  Throws std::logic_error if any candidate is malformed
  /// (before any analysis runs).
  std::vector<WhatIfResult> evaluate_batch(
      const std::vector<gmf::Flow>& candidates);

  // -- persistence (io/checkpoint.{hpp,cpp}) --------------------------------

  /// Writes a versioned binary checkpoint of the complete engine state —
  /// network, resident flows (global-id order), the shard partition, and
  /// every shard's converged fixed point — to `os`.  Evaluates first, so the
  /// checkpoint always holds a fully solved world.  Writer thread only.
  /// Throws std::runtime_error on stream write failure.
  void save(std::ostream& os);

  /// Rebuilds an engine from a checkpoint written by save(): shards, flow
  /// locations and the link index are reconstructed directly from the
  /// stream, the cached fixed points are installed verbatim, and a fresh
  /// EngineSnapshot is published — WITHOUT running the solver.  The restored
  /// engine answers published()->what_if(...) probes immediately and
  /// bit-identically to the pre-save engine, and stats().evaluations stays 0
  /// until the first post-restore mutation is evaluated.
  ///
  /// `opts` must agree with the saving engine's options on every field the
  /// cached fixed points depend on (hop.horizon, hop.charge_self_circ,
  /// max_sweeps, solver.mode — all fingerprinted in the stream); a mismatch
  /// is rejected,
  /// since the persisted state would silently misanswer under different
  /// analysis semantics.  Throws io::CheckpointError on truncated,
  /// corrupted, forward-incompatible or semantically invalid streams.
  static AnalysisEngine restore(std::istream& is,
                                core::HolisticOptions opts = {});

  /// restore() for callers that need the engine on the heap (the engine is
  /// neither copyable nor movable — atomic counters — so a prvalue cannot
  /// be re-seated after construction).  The RPC server's RESTORE handler
  /// swaps engines behind an atomic shared_ptr; this is its entry point.
  static std::unique_ptr<AnalysisEngine> restore_unique(
      std::istream& is, core::HolisticOptions opts = {});

  // -- snapshots ------------------------------------------------------------

  /// Evaluates (if stale) and returns the freshly published snapshot
  /// (writer thread only — it may solve dirty shards).
  std::shared_ptr<const EngineSnapshot> snapshot();

  /// The last published snapshot: safe to call from any thread, never
  /// null.  May lag behind uncommitted add_flow/remove_flow calls until the
  /// writer evaluates.  The read path takes no engine lock — publication is
  /// an atomic shared_ptr swap.  (std::atomic_load over
  /// std::atomic<shared_ptr>: identical semantics, but the free functions'
  /// pthread-based implementation is ThreadSanitizer-transparent, while
  /// libstdc++'s _Sp_atomic lock-bit protocol is not.)
  [[nodiscard]] std::shared_ptr<const EngineSnapshot> published() const {
    return std::atomic_load(&published_);
  }

 private:
  /// Parsed checkpoint payload (filled by io/checkpoint.cpp).  The
  /// restoring constructor below rebuilds shard contexts / locs_ /
  /// link_shard_ from it and publishes, without ever invoking the solver.
  struct RestoredShard {
    std::vector<net::FlowId> to_global;  ///< ascending global ids
    core::HolisticResult cache;          ///< the shard's persisted result
  };
  struct RestoredState {
    net::Network network;
    bool shard_by_domain = true;
    std::vector<gmf::Flow> flows;  ///< resident set, global-id order
    std::vector<RestoredShard> shards;
  };
  /// Restore path: validates the partition (every flow in exactly one
  /// shard, no link owned by two shards, caches parallel to contexts) and
  /// throws std::logic_error on violations.  Defined in io/checkpoint.cpp.
  AnalysisEngine(RestoredState&& st, core::HolisticOptions opts);
  /// Strict checkpoint-stream parse shared by restore / restore_unique
  /// (defined in io/checkpoint.cpp); throws io::CheckpointError.
  static RestoredState parse_checkpoint(std::istream& is,
                                        const core::HolisticOptions& opts);

  /// One counter per cache line: batch probes on different pool workers
  /// fold RunStats concurrently, and unpadded adjacent atomics would
  /// false-share — every fetch_add bouncing the whole stats block between
  /// cores.
  struct alignas(64) PaddedCounter {
    std::atomic<std::size_t> v{0};
  };
  struct AtomicStats {
    PaddedCounter evaluations;
    PaddedCounter full_runs;
    PaddedCounter incremental_runs;
    PaddedCounter flow_analyses;
    PaddedCounter flow_results_reused;
    PaddedCounter sweeps;
    PaddedCounter accel_accepted;
    PaddedCounter accel_rejected;
  };

  /// Shard indices (ascending, deduped) owning the given route links; all
  /// shards in single-domain mode.
  [[nodiscard]] std::vector<std::uint32_t> touched_shards(
      const std::vector<net::LinkRef>& links) const;

  /// Merges the given shards (ascending indices) into one, preserving each
  /// part's local order; returns the merged shard's index.
  std::uint32_t merge_shards(const std::vector<std::uint32_t>& parts);

  /// Splits shard `idx` into its link-sharing components if the last
  /// removal disconnected it (rebuild-on-remove).  New parts are appended
  /// at the end of shards_ (existing shard positions are untouched);
  /// returns true when a split happened.
  bool split_if_disconnected(std::uint32_t idx);

  /// Points locs_ and link_shard_ at shard `sid`'s current contents
  /// (O(shard), used after domain-local surgery).
  void index_shard(std::uint32_t sid);

  /// Fixes locs_/link_shard_ shard references after erasing the given
  /// positions (ascending) from shards_ — a flat renumbering pass, no
  /// per-flow route walks.  Entries pointing at erased shards are left for
  /// a follow-up index_shard of whichever shard absorbed their flows.
  void renumber_shards(const std::vector<std::uint32_t>& erased);

  /// Solves every dirty shard (fanned over the pool when several are
  /// dirty), folding run stats; returns true when any shard ran.  Factored
  /// out of evaluate() so lean batch admissions can converge the world
  /// without assembling/publishing it.
  bool solve_dirty();

  /// Assembles the global result from the shard caches and publishes a
  /// fresh snapshot.
  void assemble_and_publish();

  /// Rebuilds the writer-private lean snapshot from the current shard
  /// state.  Identical to the snapshot half of assemble_and_publish()
  /// except the global result is left null (lean probes never read it) and
  /// nothing is published.
  void refresh_lean_snapshot();

  /// Installs a successful probe as a committed merged shard (candidate
  /// included); publishes unless `publish` is false (lean batch commits
  /// defer the assembly + publication to end_batch()).
  void commit_probe(EngineSnapshot::Probe probe, bool publish = true);

  /// Folds one run's counters into the stats (relaxed atomics).
  void record_run(const RunStats& rs);

  /// Worker count a pool for this engine would have (without creating one).
  [[nodiscard]] std::size_t effective_threads() const;

  void ensure_pool();

  std::shared_ptr<const core::AnalysisContext> empty_ctx_;
  core::HolisticOptions opts_;
  bool shard_by_domain_;
  std::vector<Shard> shards_;
  std::vector<FlowLoc> locs_;  ///< global flow id -> (shard, local)
  std::map<net::LinkRef, std::uint32_t> link_shard_;
  /// Assembled whole-set result of the last evaluation (null = stale).
  std::shared_ptr<const core::HolisticResult> global_;
  /// Writer-private snapshot backing lean batch probes; never published.
  /// Rebuilt lazily whenever the shard structure changed underneath it.
  std::shared_ptr<const EngineSnapshot> lean_snap_;
  bool lean_stale_ = true;
  /// Accessed only via std::atomic_load / std::atomic_store.
  std::shared_ptr<const EngineSnapshot> published_;
  std::unique_ptr<ThreadPool> pool_;  ///< lazy; batch + shard fan-out
  /// Reusable probe workspace for the writer thread's what_if/try_admit.
  ProbeScratch writer_scratch_;
  /// Per-slot probe workspaces for evaluate_batch's pool fan-out (sized
  /// pool size + 1 by ensure_pool; slot indexing per parallel_for_slotted).
  std::vector<ProbeScratch> batch_scratch_;
  AtomicStats stats_;
};

}  // namespace gmfnet::engine
