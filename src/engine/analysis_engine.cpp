#include "engine/analysis_engine.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <thread>
#include <utility>

namespace gmfnet::engine {

AnalysisEngine::AnalysisEngine(net::Network network, core::HolisticOptions opts,
                               bool shard_by_domain)
    : empty_ctx_(std::make_shared<const core::AnalysisContext>(
          std::move(network))),
      opts_(opts),
      shard_by_domain_(shard_by_domain) {
  opts_.warm_start = {};  // the engine owns warm starting
  assemble_and_publish();           // publish the (empty) world
}

const gmf::Flow& AnalysisEngine::flow(std::size_t index) const {
  const FlowLoc& loc = locs_.at(index);
  return shards_[loc.shard].ctx->flow(
      net::FlowId(static_cast<std::int32_t>(loc.local)));
}

EngineStats AnalysisEngine::stats() const {
  EngineStats out;
  out.evaluations = stats_.evaluations.v.load(std::memory_order_relaxed);
  out.full_runs = stats_.full_runs.v.load(std::memory_order_relaxed);
  out.incremental_runs =
      stats_.incremental_runs.v.load(std::memory_order_relaxed);
  out.flow_analyses = stats_.flow_analyses.v.load(std::memory_order_relaxed);
  out.flow_results_reused =
      stats_.flow_results_reused.v.load(std::memory_order_relaxed);
  out.sweeps = stats_.sweeps.v.load(std::memory_order_relaxed);
  out.accel_accepted =
      stats_.accel_accepted.v.load(std::memory_order_relaxed);
  out.accel_rejected =
      stats_.accel_rejected.v.load(std::memory_order_relaxed);
  return out;
}

void AnalysisEngine::reset_stats() {
  stats_.evaluations.v.store(0, std::memory_order_relaxed);
  stats_.full_runs.v.store(0, std::memory_order_relaxed);
  stats_.incremental_runs.v.store(0, std::memory_order_relaxed);
  stats_.flow_analyses.v.store(0, std::memory_order_relaxed);
  stats_.flow_results_reused.v.store(0, std::memory_order_relaxed);
  stats_.sweeps.v.store(0, std::memory_order_relaxed);
  stats_.accel_accepted.v.store(0, std::memory_order_relaxed);
  stats_.accel_rejected.v.store(0, std::memory_order_relaxed);
}

void AnalysisEngine::record_run(const RunStats& rs) {
  if (!rs.ran) return;
  stats_.evaluations.v.fetch_add(1, std::memory_order_relaxed);
  if (rs.full) {
    stats_.full_runs.v.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.incremental_runs.v.fetch_add(1, std::memory_order_relaxed);
  }
  stats_.flow_analyses.v.fetch_add(rs.flow_analyses,
                                   std::memory_order_relaxed);
  stats_.flow_results_reused.v.fetch_add(rs.flow_results_reused,
                                         std::memory_order_relaxed);
  stats_.sweeps.v.fetch_add(rs.sweeps, std::memory_order_relaxed);
  stats_.accel_accepted.v.fetch_add(rs.accel_accepted,
                                    std::memory_order_relaxed);
  stats_.accel_rejected.v.fetch_add(rs.accel_rejected,
                                    std::memory_order_relaxed);
}

std::vector<std::uint32_t> AnalysisEngine::touched_shards(
    const std::vector<net::LinkRef>& links) const {
  std::vector<std::uint32_t> out;
  if (!shard_by_domain_) {
    // Single-domain mode: everything lives in shard 0.
    for (std::uint32_t i = 0; i < shards_.size(); ++i) out.push_back(i);
    return out;
  }
  for (const net::LinkRef l : links) {
    const auto it = link_shard_.find(l);
    if (it != link_shard_.end()) out.push_back(it->second);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::uint32_t AnalysisEngine::merge_shards(
    const std::vector<std::uint32_t>& parts) {
  Shard merged;
  core::AnalysisContext ctx = core::AnalysisContext::empty_clone(*empty_ctx_);

  // The merged cache keeps every part's warm state: flows a part's
  // converged cache covers are adopted at their (unchanged) fixed point;
  // uncovered flows — parts never solved, or flows added since a part's
  // last solve — get a padded entry seeded with the holistic initial state
  // and their route links dirtied, so the next run restarts exactly them
  // (plus closure) instead of the whole merged domain going cold.  A part
  // whose cache exists but did not converge invalidates the merge (its
  // entries are mid-iteration): the merged shard then solves cold, the same
  // as the pre-shard engine's invalid cache.
  bool converged = true;
  bool sched = true;
  for (const std::uint32_t pi : parts) {
    if (shards_[pi].cache) {
      converged &= shards_[pi].cache->converged;
      sched &= shards_[pi].cache->schedulable;
    }
  }

  // Merge in the canonical global-id order (see merge_order): the
  // Gauss-Seidel sweep order inside a merged component matches the
  // one-context engine's exactly.
  const std::vector<MergeEnt> ents = merge_order(
      parts, [this](std::uint32_t part) -> const std::vector<net::FlowId>& {
        return shards_[part].to_global;
      });

  core::HolisticResult cache;
  cache.converged = converged;
  cache.schedulable = sched;
  std::vector<std::size_t> uncovered;
  for (std::size_t pos = 0; pos < ents.size(); ++pos) {
    const MergeEnt& e = ents[pos];
    const Shard& part = shards_[e.shard];
    ctx.adopt_flow_deferred(*part.ctx,
                            net::FlowId(static_cast<std::int32_t>(e.local)));
    merged.to_global.push_back(e.global);
    if (part.cache_valid() && e.local < part.cache->flows.size()) {
      cache.flows.push_back(part.cache->flows[e.local]);
      cache.jitters.adopt_flow(part.cache->jitters,
                               net::FlowId(static_cast<std::int32_t>(e.local)),
                               net::FlowId(static_cast<std::int32_t>(pos)));
    } else {
      cache.flows.emplace_back();
      uncovered.push_back(pos);
    }
  }
  // All parts registered: one aggregate pass per link (see
  // adopt_flow_deferred), bit-identical to per-adopt recomputation.
  ctx.recompute_all_aggregates();
  // With no covered flow at all there is no warm state to keep: leave the
  // cache null so the run goes (and is counted) cold.
  const bool any_covered = uncovered.size() < ents.size();
  if (any_covered) {
    for (const std::size_t pos : uncovered) {
      const net::FlowId local(static_cast<std::int32_t>(pos));
      seed_source_jitters(ctx, local, cache.jitters);
      for (const net::LinkRef l : ctx.route_links(local)) {
        merged.dirty_links.insert(l);
      }
    }
  }
  for (const std::uint32_t pi : parts) {
    Shard& part = shards_[pi];
    if (part.cache) {
      cache.sweeps = std::max(cache.sweeps, part.cache->sweeps);
    }
    merged.dirty_links.insert(part.dirty_links.begin(),
                              part.dirty_links.end());
    merged.removal_pending |= part.removal_pending;
  }
  merged.ctx = std::make_shared<const core::AnalysisContext>(std::move(ctx));
  if (any_covered) {
    merged.cache =
        std::make_shared<const core::HolisticResult>(std::move(cache));
  }

  // parts is ascending: erase back-to-front so indices stay valid, then
  // renumber the survivors and index the merged shard that absorbed the
  // erased parts' flows and links.
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    shards_.erase(shards_.begin() + static_cast<std::ptrdiff_t>(*it));
  }
  renumber_shards(parts);
  shards_.push_back(std::move(merged));
  const auto merged_idx = static_cast<std::uint32_t>(shards_.size() - 1);
  index_shard(merged_idx);
  return merged_idx;
}

bool AnalysisEngine::split_if_disconnected(std::uint32_t idx) {
  Shard& s = shards_[idx];
  const core::AnalysisContext& ctx = *s.ctx;
  const std::size_t n = ctx.flow_count();
  if (n <= 1) return false;

  // Union-find (path halving) over local flow ids via shared links.
  std::vector<std::uint32_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0u);
  const auto find = [&](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  const auto unite = [&](std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  };
  for (std::size_t f = 0; f < n; ++f) {
    for (const net::LinkRef l :
         ctx.route_links(net::FlowId(static_cast<std::int32_t>(f)))) {
      for (const net::FlowId j : ctx.flows_on_link(l)) {
        unite(static_cast<std::uint32_t>(f),
              static_cast<std::uint32_t>(j.v));
      }
    }
  }

  // Components in first-appearance (local id) order: each part's flows keep
  // their relative local order, preserving per-link flow order.
  std::vector<std::vector<std::uint32_t>> members;
  std::map<std::uint32_t, std::size_t> comp_of_root;
  for (std::size_t f = 0; f < n; ++f) {
    const std::uint32_t r = find(static_cast<std::uint32_t>(f));
    const auto it = comp_of_root.find(r);
    if (it == comp_of_root.end()) {
      comp_of_root.emplace(r, members.size());
      members.push_back({static_cast<std::uint32_t>(f)});
    } else {
      members[it->second].push_back(static_cast<std::uint32_t>(f));
    }
  }
  if (members.size() <= 1) return false;

  const bool cache_full =
      s.cache && s.cache->converged && s.cache->flows.size() == n;
  std::vector<Shard> parts;
  parts.reserve(members.size());
  for (const std::vector<std::uint32_t>& m : members) {
    Shard part;
    core::AnalysisContext pctx = core::AnalysisContext::empty_clone(*empty_ctx_);
    for (const std::uint32_t f : m) {
      pctx.adopt_flow_deferred(ctx, net::FlowId(static_cast<std::int32_t>(f)));
      part.to_global.push_back(s.to_global[f]);
    }
    pctx.recompute_all_aggregates();
    if (cache_full) {
      // The parent fixed point restricted to a disconnected component is
      // exactly that component's fixed point.
      core::HolisticResult c;
      c.converged = true;
      c.sweeps = s.cache->sweeps;
      bool sched = true;
      for (std::size_t k = 0; k < m.size(); ++k) {
        c.flows.push_back(s.cache->flows[m[k]]);
        c.jitters.adopt_flow(s.cache->jitters,
                             net::FlowId(static_cast<std::int32_t>(m[k])),
                             net::FlowId(static_cast<std::int32_t>(k)));
        sched &= c.flows.back().schedulable();
      }
      c.schedulable = sched;
      part.cache = std::make_shared<const core::HolisticResult>(std::move(c));
    }
    for (std::size_t k = 0; k < m.size(); ++k) {
      for (const net::LinkRef l :
           pctx.route_links(net::FlowId(static_cast<std::int32_t>(k)))) {
        if (s.dirty_links.count(l) != 0) part.dirty_links.insert(l);
      }
    }
    part.removal_pending = s.removal_pending && !part.dirty_links.empty();
    part.ctx = std::make_shared<const core::AnalysisContext>(std::move(pctx));
    parts.push_back(std::move(part));
  }
  shards_[idx] = std::move(parts.front());
  for (std::size_t k = 1; k < parts.size(); ++k) {
    shards_.push_back(std::move(parts[k]));
  }
  return true;
}

void AnalysisEngine::index_shard(std::uint32_t sid) {
  const Shard& s = shards_[sid];
  for (std::uint32_t l = 0; l < s.to_global.size(); ++l) {
    locs_[static_cast<std::size_t>(s.to_global[l].v)] = FlowLoc{sid, l};
    for (const net::LinkRef link :
         s.ctx->route_links(net::FlowId(static_cast<std::int32_t>(l)))) {
      link_shard_[link] = sid;
    }
  }
}

void AnalysisEngine::renumber_shards(const std::vector<std::uint32_t>& erased) {
  // remap[old position] -> new position after the erasures.
  const std::size_t old_count = shards_.size() + erased.size();
  std::vector<std::uint32_t> remap(old_count, 0);
  std::size_t gone = 0;
  for (std::uint32_t i = 0; i < old_count; ++i) {
    if (gone < erased.size() && erased[gone] == i) {
      ++gone;  // remap stays 0; the caller re-indexes the absorbing shard
    } else {
      remap[i] = i - static_cast<std::uint32_t>(gone);
    }
  }
  for (FlowLoc& fl : locs_) fl.shard = remap[fl.shard];
  for (auto& [link, sid] : link_shard_) sid = remap[sid];
}

net::FlowId AnalysisEngine::add_flow(gmf::Flow flow) {
  flow.validate(network());
  const net::FlowId global(static_cast<std::int32_t>(locs_.size()));

  const std::vector<std::uint32_t> touched =
      touched_shards(flow.route().links());
  std::uint32_t target;
  if (touched.empty()) {
    target = static_cast<std::uint32_t>(shards_.size());
    Shard fresh;
    fresh.ctx = std::make_shared<const core::AnalysisContext>(
        core::AnalysisContext::empty_clone(*empty_ctx_));
    shards_.push_back(std::move(fresh));
  } else if (touched.size() == 1) {
    target = touched.front();
  } else {
    // The new flow bridges several domains: union them first.
    target = merge_shards(touched);
  }

  Shard& s = shards_[target];
  core::AnalysisContext work = *s.ctx;
  const net::FlowId local = work.add_flow(std::move(flow));
  for (const net::LinkRef l : work.route_links(local)) {
    s.dirty_links.insert(l);
    link_shard_[l] = target;
  }
  s.ctx = std::make_shared<const core::AnalysisContext>(std::move(work));
  s.to_global.push_back(global);
  locs_.push_back(FlowLoc{target, static_cast<std::uint32_t>(local.v)});
  global_ = nullptr;
  lean_stale_ = true;
  return global;
}

bool AnalysisEngine::remove_flow(std::size_t index) {
  if (index >= locs_.size()) return false;
  const FlowLoc loc = locs_[index];
  Shard& s = shards_[loc.shard];
  const net::FlowId local(static_cast<std::int32_t>(loc.local));
  const std::vector<net::LinkRef> touched_links = s.ctx->route_links(local);

  core::AnalysisContext work = *s.ctx;
  work.remove_flow(loc.local);
  s.ctx = std::make_shared<const core::AnalysisContext>(std::move(work));
  s.to_global.erase(s.to_global.begin() +
                    static_cast<std::ptrdiff_t>(loc.local));
  if (s.cache && loc.local < s.cache->flows.size()) {
    // Keep the cache parallel to the shifted local ids; the surviving
    // entries remain the converged state of their (clean) components.
    core::HolisticResult c = *s.cache;
    c.flows.erase(c.flows.begin() + static_cast<std::ptrdiff_t>(loc.local));
    c.jitters.erase_flow(local);
    s.cache = std::make_shared<const core::HolisticResult>(std::move(c));
  }
  for (const net::LinkRef l : touched_links) s.dirty_links.insert(l);
  s.removal_pending = true;

  // Global ids above the removed one shift down by one, in every shard —
  // flat integer passes (forced by the index-shifting removal contract);
  // all structural rework stays domain-local.
  for (Shard& sh : shards_) {
    for (net::FlowId& g : sh.to_global) {
      if (static_cast<std::size_t>(g.v) > index) g = net::FlowId(g.v - 1);
    }
  }
  locs_.erase(locs_.begin() + static_cast<std::ptrdiff_t>(index));

  // Links that lost their last flow leave the link->shard map.
  for (const net::LinkRef l : touched_links) {
    if (s.ctx->flows_on_link(l).empty()) link_shard_.erase(l);
  }

  if (s.flow_count() == 0) {
    shards_.erase(shards_.begin() + static_cast<std::ptrdiff_t>(loc.shard));
    renumber_shards({loc.shard});
  } else {
    // Locals above the removed one shifted down within the shard.
    for (std::uint32_t l = loc.local;
         l < shards_[loc.shard].to_global.size(); ++l) {
      locs_[static_cast<std::size_t>(shards_[loc.shard].to_global[l].v)] =
          FlowLoc{loc.shard, l};
    }
    if (shard_by_domain_) {
      // Rebuild-on-remove: the removal may have disconnected the domain.
      const std::size_t before_split = shards_.size();
      if (split_if_disconnected(loc.shard)) {
        index_shard(loc.shard);
        for (auto k = static_cast<std::uint32_t>(before_split);
             k < shards_.size(); ++k) {
          index_shard(k);
        }
      }
    }
  }
  global_ = nullptr;
  lean_stale_ = true;
  return true;
}

std::size_t AnalysisEngine::effective_threads() const {
  return opts_.threads != 0
             ? opts_.threads
             : std::max(1u, std::thread::hardware_concurrency());
}

void AnalysisEngine::ensure_pool() {
  if (!pool_) {
    pool_ = std::make_unique<ThreadPool>(opts_.threads);
    // One probe workspace per parallel_for_slotted slot (workers + the
    // calling thread's inline slot).
    batch_scratch_ = std::vector<ProbeScratch>(pool_->size() + 1);
  }
}

void AnalysisEngine::assemble_and_publish() {
  core::HolisticResult g;
  g.converged = true;
  g.sweeps = 0;
  g.flows.resize(locs_.size());
  bool sched = true;
  for (const Shard& s : shards_) {
    // Every shard holds a result here: evaluate() solves all dirty shards
    // before assembling, and a run always installs one (even diverged).
    g.converged &= s.cache->converged;
    sched &= s.cache->schedulable;
    g.sweeps = std::max(g.sweeps, s.cache->sweeps);
    for (std::size_t l = 0; l < s.to_global.size(); ++l) {
      const auto gid = static_cast<std::size_t>(s.to_global[l].v);
      g.flows[gid] = s.cache->flows[l];
      g.jitters.adopt_flow(s.cache->jitters,
                           net::FlowId(static_cast<std::int32_t>(l)),
                           net::FlowId(static_cast<std::int32_t>(gid)));
    }
  }
  g.schedulable = g.converged && sched;
  global_ = std::make_shared<const core::HolisticResult>(std::move(g));

  auto snap = std::shared_ptr<EngineSnapshot>(new EngineSnapshot());
  snap->empty_ctx_ = empty_ctx_;
  snap->opts_ = opts_;
  snap->sharded_ = shard_by_domain_;
  snap->shards_.reserve(shards_.size());
  for (const Shard& s : shards_) {
    snap->shards_.push_back(
        EngineSnapshot::ShardView{s.ctx, s.cache, s.to_global});
  }
  snap->locs_ = locs_;
  snap->link_shard_ = link_shard_;
  snap->global_ = global_;
  std::atomic_store(&published_,
                    std::shared_ptr<const EngineSnapshot>(std::move(snap)));
}

bool AnalysisEngine::solve_dirty() {
  std::vector<std::size_t> dirty;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].needs_run()) dirty.push_back(i);
  }
  if (dirty.empty()) return false;

  std::vector<RunStats> rs(dirty.size());
  if (dirty.size() > 1 && effective_threads() > 1) {
    // Independent domains: fan the dirty shards over the pool.  Shard runs
    // are Gauss-Seidel (no nested pools) and touch disjoint state.
    ensure_pool();
    pool_->parallel_for(dirty.size(), [&](std::size_t k) {
      rs[k] = shards_[dirty[k]].run(opts_);
    });
  } else {
    // One dirty shard — or one effective worker: the pool round trip buys
    // nothing, solve inline on the writer thread.
    for (std::size_t k = 0; k < dirty.size(); ++k) {
      rs[k] = shards_[dirty[k]].run(opts_);
    }
  }
  for (const RunStats& r : rs) record_run(r);

  // Flows of untouched shards are adopted verbatim at assembly.
  std::size_t run_flows = 0;
  for (const std::size_t i : dirty) run_flows += shards_[i].flow_count();
  stats_.flow_results_reused.v.fetch_add(locs_.size() - run_flows,
                                         std::memory_order_relaxed);

  // A run installs fresh shard caches: any lean snapshot's ShardViews now
  // point at stale state.
  lean_stale_ = true;
  return true;
}

const core::HolisticResult& AnalysisEngine::evaluate() {
  const bool ran = solve_dirty();
  if (!ran && global_ != nullptr) return *global_;
  assemble_and_publish();
  return *global_;
}

std::shared_ptr<const EngineSnapshot> AnalysisEngine::snapshot() {
  (void)evaluate();
  return published();
}

WhatIfResult AnalysisEngine::what_if(const gmf::Flow& candidate) {
  (void)evaluate();
  const std::shared_ptr<const EngineSnapshot> snap = published();
  EngineSnapshot::Probe probe =
      snap->run_probe(candidate, writer_scratch_, /*retain_ctx=*/false);
  // Untouched shards' flows enter the full result verbatim: count them as
  // reused alongside the clean flows of the probed component.
  probe.rs.flow_results_reused += flow_count() + 1 - probe.to_global.size();
  record_run(probe.rs);
  return snap->finish_probe(std::move(probe));
}

std::optional<core::HolisticResult> AnalysisEngine::try_admit(
    gmf::Flow candidate) {
  (void)evaluate();
  const std::shared_ptr<const EngineSnapshot> snap = published();
  // retain_ctx: an accepted probe is committed wholesale, so its context
  // (candidate included) and complete local result must leave the scratch.
  EngineSnapshot::Probe probe =
      snap->run_probe(candidate, writer_scratch_, /*retain_ctx=*/true);
  probe.rs.flow_results_reused += flow_count() + 1 - probe.to_global.size();
  record_run(probe.rs);
  if (!snap->probe_admissible(probe)) return std::nullopt;

  // Commit: adopt the probe's context and converged state wholesale; the
  // next arrival warm-starts from here.
  commit_probe(std::move(probe));
  return *global_;
}

void AnalysisEngine::commit_probe(EngineSnapshot::Probe probe, bool publish) {
  assert(probe.base_converged);
  Shard merged;
  merged.to_global = std::move(probe.to_global);
  merged.ctx =
      std::make_shared<const core::AnalysisContext>(std::move(*probe.ctx));
  merged.cache =
      std::make_shared<const core::HolisticResult>(std::move(probe.local));
  // probe.touched is ascending: erase back-to-front, renumber survivors,
  // then index the committed shard (which includes the new candidate, so
  // locs_ grows by one first).
  for (auto it = probe.touched.rbegin(); it != probe.touched.rend(); ++it) {
    shards_.erase(shards_.begin() + static_cast<std::ptrdiff_t>(*it));
  }
  renumber_shards(probe.touched);
  locs_.push_back(FlowLoc{});
  shards_.push_back(std::move(merged));
  index_shard(static_cast<std::uint32_t>(shards_.size() - 1));
  lean_stale_ = true;
  if (publish) {
    assemble_and_publish();
  } else {
    // Lean batch commit: the shard surgery is done but the global result
    // and published snapshot stay stale until end_batch() assembles once.
    global_ = nullptr;
  }
}

void AnalysisEngine::begin_batch() {
  // Lean probes must not run against a snapshot predating the batch.
  lean_stale_ = true;
}

void AnalysisEngine::refresh_lean_snapshot() {
  auto snap = std::shared_ptr<EngineSnapshot>(new EngineSnapshot());
  snap->empty_ctx_ = empty_ctx_;
  snap->opts_ = opts_;
  snap->sharded_ = shard_by_domain_;
  snap->shards_.reserve(shards_.size());
  for (const Shard& s : shards_) {
    snap->shards_.push_back(
        EngineSnapshot::ShardView{s.ctx, s.cache, s.to_global});
  }
  snap->locs_ = locs_;
  snap->link_shard_ = link_shard_;
  // global_ stays null: lean snapshots only back run_probe /
  // probe_admissible, which never read it — skipping the O(resident)
  // assembly is the whole point of the batch.
  lean_snap_ = std::move(snap);
  lean_stale_ = false;
}

bool AnalysisEngine::try_admit_lean(gmf::Flow candidate) {
  (void)solve_dirty();
  if (lean_stale_ || !lean_snap_) refresh_lean_snapshot();
  const std::shared_ptr<const EngineSnapshot> snap = lean_snap_;
  // retain_ctx: an accepted probe is committed wholesale, as in try_admit.
  EngineSnapshot::Probe probe =
      snap->run_probe(candidate, writer_scratch_, /*retain_ctx=*/true);
  probe.rs.flow_results_reused += flow_count() + 1 - probe.to_global.size();
  record_run(probe.rs);
  if (!snap->probe_admissible(probe)) return false;
  commit_probe(std::move(probe), /*publish=*/false);
  return true;
}

const core::HolisticResult& AnalysisEngine::end_batch() {
  lean_snap_.reset();
  lean_stale_ = true;
  // Any lean commit nulled global_, so this assembles + publishes exactly
  // once; a batch that committed nothing keeps the current publication.
  return evaluate();
}

std::vector<WhatIfResult> AnalysisEngine::evaluate_batch(
    const std::vector<gmf::Flow>& candidates) {
  (void)evaluate();
  std::vector<WhatIfResult> out(candidates.size());
  if (candidates.empty()) return out;

  // Surface validation errors to the caller before any analysis runs.
  for (const gmf::Flow& c : candidates) c.validate(network());

  const std::shared_ptr<const EngineSnapshot> snap = published();
  ensure_pool();
  // Each slot owns one ProbeScratch (batch_scratch_ has pool size + 1
  // entries; slot size() is the single-worker inline path), so repeated
  // candidates against the same shards reuse a warm probe base.
  pool_->parallel_for_slotted(
      candidates.size(), [&](std::size_t slot, std::size_t i) {
        EngineSnapshot::Probe probe =
            snap->run_probe(candidates[i], batch_scratch_[slot],
                            /*retain_ctx=*/false);
        probe.rs.flow_results_reused +=
            snap->flow_count() + 1 - probe.to_global.size();
        record_run(probe.rs);
        out[i] = snap->finish_probe(std::move(probe));
      });
  return out;
}

}  // namespace gmfnet::engine
