#include "engine/analysis_engine.hpp"

#include <utility>

#include "core/end_to_end.hpp"
#include "util/thread_pool.hpp"

namespace gmfnet::engine {

AnalysisEngine::AnalysisEngine(net::Network network, core::HolisticOptions opts)
    : ctx_(std::move(network)), opts_(opts) {
  opts_.initial_jitters = nullptr;  // the engine owns warm starting
}

net::FlowId AnalysisEngine::add_flow(gmf::Flow flow) {
  const net::FlowId id = ctx_.add_flow(std::move(flow));
  for (const net::LinkRef l : ctx_.route_links(id)) dirty_links_.insert(l);
  return id;
}

bool AnalysisEngine::remove_flow(std::size_t index) {
  if (index >= ctx_.flow_count()) return false;
  for (const net::LinkRef l :
       ctx_.route_links(net::FlowId(static_cast<std::int32_t>(index)))) {
    dirty_links_.insert(l);
  }
  ctx_.remove_flow(index);
  if (cache_.valid && index < cache_.result.flows.size()) {
    // Keep the cache parallel to the shifted flow ids; the surviving
    // entries remain the converged state of their (clean) components.
    cache_.result.flows.erase(cache_.result.flows.begin() +
                              static_cast<std::ptrdiff_t>(index));
    cache_.result.jitters.erase_flow(
        net::FlowId(static_cast<std::int32_t>(index)));
  }
  removal_pending_ = true;
  return true;
}

std::vector<bool> AnalysisEngine::dirty_closure(
    const core::AnalysisContext& ctx, std::vector<bool> dirty) const {
  const std::size_t n = ctx.flow_count();
  dirty.resize(n, false);
  // Flows without a cached FlowResult (added since the last evaluation)
  // must be dirty: run_incremental reuses cache entries for clean flows.
  // add_flow also dirties their route links, but seed them explicitly
  // rather than leaning on that invariant.
  for (std::size_t f = cache_.result.flows.size(); f < n; ++f) {
    dirty[f] = true;
  }
  std::vector<net::FlowId> worklist;
  for (std::size_t f = 0; f < n; ++f) {
    if (dirty[f]) {
      worklist.push_back(net::FlowId(static_cast<std::int32_t>(f)));
      continue;
    }
    for (const net::LinkRef l :
         ctx.route_links(net::FlowId(static_cast<std::int32_t>(f)))) {
      if (dirty_links_.count(l) != 0) {
        dirty[f] = true;
        worklist.push_back(net::FlowId(static_cast<std::int32_t>(f)));
        break;
      }
    }
  }
  // Transitive closure over link sharing: interference only travels across
  // shared links, so everything outside the closure keeps its fixed point.
  while (!worklist.empty()) {
    const net::FlowId i = worklist.back();
    worklist.pop_back();
    for (const net::LinkRef l : ctx.route_links(i)) {
      for (const net::FlowId j : ctx.flows_on_link(l)) {
        const auto jf = static_cast<std::size_t>(j.v);
        if (!dirty[jf]) {
          dirty[jf] = true;
          worklist.push_back(j);
        }
      }
    }
  }
  return dirty;
}

core::JitterMap AnalysisEngine::warm_start(const core::AnalysisContext& ctx,
                                           const std::vector<bool>& dirty,
                                           bool reset_dirty) const {
  // Clean flows sit exactly at their (unchanged) fixed point; dirty flows
  // after an add start from the old fixed point, a sound
  // under-approximation of the new one.  Start from one copy of the cached
  // map and reset only the flows that must restart from the initial state
  // (flows added since the last evaluation, and the dirty component after a
  // removal).
  core::JitterMap start = cache_.result.jitters;
  const std::size_t cached = cache_.result.flows.size();
  for (std::size_t f = 0; f < ctx.flow_count(); ++f) {
    if (f < cached && !(dirty[f] && reset_dirty)) continue;
    const net::FlowId id(static_cast<std::int32_t>(f));
    start.clear_flow(id);
    const gmf::Flow& flow = ctx.flow(id);
    const core::StageKey& source = ctx.stages(id).front();
    for (std::size_t k = 0; k < flow.frame_count(); ++k) {
      start.set_jitter(id, source, k, flow.frame(k).jitter);
    }
  }
  return start;
}

core::HolisticResult AnalysisEngine::run_incremental(
    const core::AnalysisContext& ctx, const std::vector<bool>& dirty,
    core::JitterMap start, RunStats& rs) const {
  std::vector<net::FlowId> dirty_ids;
  for (std::size_t f = 0; f < ctx.flow_count(); ++f) {
    if (dirty[f]) dirty_ids.push_back(net::FlowId(static_cast<std::int32_t>(f)));
  }

  core::HolisticResult out;
  out.jitters = std::move(start);

  // Per-flow change flags over the dirty component (clean flows never
  // change — they are not analysed).  A dirty flow is re-analysed only when
  // it or a read-set neighbor changed since its previous analysis; a skipped
  // re-analysis would have been the identity, so results stay bit-identical
  // (same scheme as analyze_holistic's sweeps).  The read-set is walked on
  // the fly over the flow's route links — probes must not pay an
  // all-flows neighbor table for a small dirty component.
  std::vector<char> changed(ctx.flow_count(), 0);
  for (const net::FlowId id : dirty_ids) {
    changed[static_cast<std::size_t>(id.v)] = 1;
  }
  const auto inputs_dirty = [&](net::FlowId id) {
    if (changed[static_cast<std::size_t>(id.v)]) return true;
    for (const net::LinkRef l : ctx.route_links(id)) {
      for (const net::FlowId j : ctx.flows_on_link(l)) {
        if (changed[static_cast<std::size_t>(j.v)]) return true;
      }
    }
    return false;
  };

  std::vector<core::FlowResult> fresh(dirty_ids.size());
  bool diverged = false;
  for (int sweep = 0; sweep < opts_.max_sweeps; ++sweep) {
    // A sweep writes only the analysed (dirty) flows' own entries, so the
    // convergence snapshot/compare stays proportional to the flows actually
    // analysed instead of the whole map.
    core::JitterMap before;
    for (std::size_t k = 0; k < dirty_ids.size(); ++k) {
      const net::FlowId id = dirty_ids[k];
      if (sweep > 0 && !inputs_dirty(id)) {
        changed[static_cast<std::size_t>(id.v)] = 0;
        continue;
      }
      before.adopt_flow(out.jitters, id, id);
      fresh[k] =
          core::analyze_flow_end_to_end(ctx, out.jitters, id, opts_.hop);
      changed[static_cast<std::size_t>(id.v)] =
          out.jitters.flow_equals(before, id) ? 0 : 1;
      ++rs.flow_analyses;
      if (!fresh[k].all_converged()) diverged = true;
    }
    out.sweeps = sweep + 1;
    ++rs.sweeps;

    if (diverged) break;
    bool unchanged = true;
    for (const net::FlowId id : dirty_ids) {
      if (changed[static_cast<std::size_t>(id.v)]) {
        unchanged = false;
        break;
      }
    }
    if (unchanged) {
      out.converged = true;
      break;
    }
  }

  // Assemble the full per-flow result vector: fresh for the dirty
  // component, cached (still converged, untouched component) otherwise.
  out.flows.resize(ctx.flow_count());
  for (std::size_t k = 0; k < dirty_ids.size(); ++k) {
    out.flows[static_cast<std::size_t>(dirty_ids[k].v)] = std::move(fresh[k]);
  }
  for (std::size_t f = 0; f < ctx.flow_count(); ++f) {
    if (!dirty[f]) {
      out.flows[f] = cache_.result.flows[f];
      ++rs.flow_results_reused;
    }
  }

  if (diverged || !out.converged) {
    out.converged = false;
    out.schedulable = false;
    return out;
  }
  out.schedulable = true;
  for (const core::FlowResult& fr : out.flows) {
    if (!fr.schedulable()) {
      out.schedulable = false;
      break;
    }
  }
  return out;
}

void AnalysisEngine::install(core::HolisticResult result) {
  cache_.result = std::move(result);
  cache_.valid = cache_.result.converged;
  dirty_links_.clear();
  removal_pending_ = false;
}

const core::HolisticResult& AnalysisEngine::evaluate() {
  const bool clean = dirty_links_.empty() && !removal_pending_ &&
                     cache_.result.flows.size() == ctx_.flow_count();
  if (cache_.valid && clean) return cache_.result;

  if (!cache_.valid) {
    // No converged state to start from: cold full-set run.
    record_run(RunStats{});
    install(core::analyze_holistic(ctx_, opts_));
    return cache_.result;
  }

  const std::vector<bool> dirty =
      dirty_closure(ctx_, std::vector<bool>(ctx_.flow_count(), false));
  core::JitterMap start = warm_start(ctx_, dirty, removal_pending_);
  RunStats rs;
  core::HolisticResult result =
      run_incremental(ctx_, dirty, std::move(start), rs);
  record_run(rs);
  install(std::move(result));
  return cache_.result;
}

WhatIfResult AnalysisEngine::probe(const core::AnalysisContext& view,
                                   RunStats& rs) const {
  WhatIfResult out;
  if (!cache_.valid) {
    // Resident set has no converged state (diverging base): cold run.
    // Force Gauss-Seidel: probes may run inside evaluate_batch's pool
    // workers, and a Jacobi run would build a nested pool per probe.
    core::HolisticOptions cold = opts_;
    cold.order = core::SweepOrder::kGaussSeidel;
    out.result = core::analyze_holistic(view, cold);
  } else {
    // The candidate is the last flow of the view; its component is dirty.
    std::vector<bool> seed(view.flow_count(), false);
    seed.back() = true;
    const std::vector<bool> dirty = dirty_closure(view, std::move(seed));
    core::JitterMap start = warm_start(view, dirty, /*reset_dirty=*/false);
    out.result = run_incremental(view, dirty, std::move(start), rs);
  }
  out.admissible = out.result.schedulable;
  return out;
}

void AnalysisEngine::record_run(const RunStats& rs) {
  ++stats_.evaluations;
  if (cache_.valid) {
    ++stats_.incremental_runs;
  } else {
    ++stats_.full_runs;
  }
  stats_.flow_analyses += rs.flow_analyses;
  stats_.flow_results_reused += rs.flow_results_reused;
  stats_.sweeps += rs.sweeps;
}

WhatIfResult AnalysisEngine::what_if(const gmf::Flow& candidate) {
  evaluate();
  core::AnalysisContext view = ctx_;
  view.add_flow(candidate);
  RunStats rs;
  const WhatIfResult out = probe(view, rs);
  record_run(rs);
  return out;
}

std::optional<core::HolisticResult> AnalysisEngine::try_admit(
    gmf::Flow candidate) {
  evaluate();
  core::AnalysisContext view = ctx_;
  view.add_flow(std::move(candidate));
  RunStats rs;
  WhatIfResult probed = probe(view, rs);
  record_run(rs);
  if (!probed.admissible) return std::nullopt;

  // Commit: adopt the what-if view and its converged state wholesale; the
  // next arrival warm-starts from here.
  ctx_ = std::move(view);
  install(std::move(probed.result));
  return cache_.result;
}

std::vector<WhatIfResult> AnalysisEngine::evaluate_batch(
    const std::vector<gmf::Flow>& candidates) {
  evaluate();
  std::vector<WhatIfResult> out(candidates.size());
  if (candidates.empty()) return out;

  // Build the copy-on-write views serially so validation errors surface to
  // the caller before any analysis runs.  Each view shares every resident
  // flow's derived state with the cached context; only the candidate's own
  // parameters are computed.
  std::vector<core::AnalysisContext> views;
  views.reserve(candidates.size());
  for (const gmf::Flow& c : candidates) {
    views.push_back(ctx_);
    views.back().add_flow(c);
  }

  std::vector<RunStats> rs(candidates.size());
  ThreadPool pool(opts_.threads);
  pool.parallel_for(candidates.size(), [&](std::size_t i) {
    out[i] = probe(views[i], rs[i]);
  });

  for (const RunStats& r : rs) record_run(r);
  return out;
}

}  // namespace gmfnet::engine
