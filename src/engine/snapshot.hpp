// EngineSnapshot: an immutable, published view of the engine's committed
// world — every shard's context and converged fixed point, the global flow
// index, and the assembled whole-set result.
//
// RCU-style concurrency: the writer thread publishes a new snapshot (one
// atomic shared_ptr swap) after every committed mutation; reader threads
// load the pointer and run what-if probes against the snapshot with no
// locking whatsoever — every byte reachable from a snapshot is immutable,
// all shared state is either const or copy-on-write (a probe's writes
// clone before touching anything shared), so N operator threads issue
// concurrent what-ifs while the writer keeps admitting.  A reader's view
// is consistent-but-possibly-stale: it sees the resident set as of the
// last publication, never a half-applied mutation.
//
// A probe touches only the shards the candidate's route links belong to:
// it assembles a probe context from those shards (adopting their immutable
// derived state, O(touched) not O(residents)), warm-starts from their
// converged jitters, and solves just the candidate's dirty component.
// Results are bit-identical to a from-scratch whole-set analysis
// (tests/test_engine_shard.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/context.hpp"
#include "core/holistic.hpp"
#include "engine/shard.hpp"
#include "gmf/flow.hpp"
#include "net/network.hpp"

namespace gmfnet::engine {

/// Outcome of one non-committing what-if admission probe.
struct WhatIfResult {
  /// Full holistic result of resident set + candidate (candidate is the
  /// last flow id).
  core::HolisticResult result;
  /// True when the combined set is schedulable — the admission verdict.
  bool admissible = false;
};

class AnalysisEngine;

class EngineSnapshot {
 public:
  [[nodiscard]] std::size_t flow_count() const { return locs_.size(); }
  [[nodiscard]] const gmf::Flow& flow(std::size_t index) const;
  /// The resident flows in global order (copies; for verification code).
  [[nodiscard]] std::vector<gmf::Flow> flows() const;
  /// Assembled whole-set result as of publication.
  [[nodiscard]] const core::HolisticResult& result() const { return *global_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  /// Which shard (by position) the flow at `index` lives in.  Throws
  /// std::out_of_range on a bad index.
  [[nodiscard]] std::size_t shard_of(std::size_t index) const {
    return locs_.at(index).shard;
  }
  [[nodiscard]] const net::Network& network() const {
    return empty_ctx_->network();
  }

  /// Lock-free what-if probe: the result of resident set + `candidate`
  /// (candidate is the last flow id), bit-identical to a from-scratch run,
  /// computed against this snapshot without touching the engine.  Safe to
  /// call from any number of threads concurrently.  Throws std::logic_error
  /// on malformed candidates.
  [[nodiscard]] WhatIfResult what_if(const gmf::Flow& candidate) const;

 private:
  friend class AnalysisEngine;

  EngineSnapshot() = default;

  /// One shard's committed state (shared with the engine's Shard).
  struct ShardView {
    std::shared_ptr<const core::AnalysisContext> ctx;
    std::shared_ptr<const core::HolisticResult> result;
    std::vector<net::FlowId> to_global;
  };

  /// Everything a probe computed, in probe-local flow ids — enough for the
  /// engine to commit the probe as a merged shard without re-solving.
  struct Probe {
    /// Touched shards' flows (global-id order) + candidate last.  Optional
    /// only so Probe is default-constructible; always engaged after
    /// run_probe.
    std::optional<core::AnalysisContext> ctx;
    /// Complete result over `ctx` (clean flows adopted from shard caches).
    core::HolisticResult local;
    /// Probe-local id -> global id (candidate maps to flow_count()).
    std::vector<net::FlowId> to_global;
    /// Snapshot shard indices the candidate's route touched (ascending).
    std::vector<std::uint32_t> touched;
    /// Probe-local dirty closure (true for the candidate's component).
    std::vector<bool> dirty;
    /// False when some shard's base was not converged: `local` is then a
    /// cold whole-set run in global order and `touched` covers every shard.
    bool base_converged = true;
    RunStats rs;
  };

  [[nodiscard]] Probe run_probe(const gmf::Flow& candidate) const;
  /// Expands a probe into the full-set WhatIfResult (untouched shards
  /// adopted from the published global result).
  [[nodiscard]] WhatIfResult assemble(const Probe& probe) const;

  /// Template context sharing the network + CIRC table (cheap empty clone).
  std::shared_ptr<const core::AnalysisContext> empty_ctx_;
  core::HolisticOptions opts_;
  /// False = single-domain mode: probes always touch every shard.
  bool sharded_ = true;
  std::vector<ShardView> shards_;
  std::vector<FlowLoc> locs_;
  /// Directed link -> owning shard (links with at least one resident flow).
  std::map<net::LinkRef, std::uint32_t> link_shard_;
  std::shared_ptr<const core::HolisticResult> global_;
};

}  // namespace gmfnet::engine
