// EngineSnapshot: an immutable, published view of the engine's committed
// world — every shard's context and converged fixed point, the global flow
// index, and the assembled whole-set result.
//
// RCU-style concurrency: the writer thread publishes a new snapshot (one
// atomic shared_ptr swap) after every committed mutation; reader threads
// load the pointer and run what-if probes against the snapshot with no
// locking whatsoever — every byte reachable from a snapshot is immutable,
// all shared state is either const or copy-on-write (a probe's writes
// clone before touching anything shared), so N operator threads issue
// concurrent what-ifs while the writer keeps admitting.  A reader's view
// is consistent-but-possibly-stale: it sees the resident set as of the
// last publication, never a half-applied mutation.
//
// A probe touches only the shards the candidate's route links belong to:
// it assembles a probe context from those shards (adopting their immutable
// derived state, O(touched) not O(residents)), warm-starts from their
// converged jitters, and solves just the candidate's dirty component.
// Results are bit-identical to a from-scratch whole-set analysis
// (tests/test_engine_shard.cpp).
//
// Probe cost amortization: a ProbeScratch keeps the assembled probe base
// (context + warm-start map) alive between probes, keyed on the pinned
// identity of the touched shards' committed state.  A scratch hit turns a
// probe's setup into one add_flow/remove_flow pair on the cached base —
// the per-probe O(touched flows) context copy and jitter adoption are paid
// once per (reader, shard-state) instead of once per probe.  One scratch
// per reader thread, never shared (see ProbeScratch).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/context.hpp"
#include "core/holistic.hpp"
#include "engine/shard.hpp"
#include "gmf/flow.hpp"
#include "net/network.hpp"

namespace gmfnet::engine {

class AnalysisEngine;
class EngineSnapshot;

/// Reusable per-reader probe workspace: caches assembled probe bases
/// (context + converged warm-start map) keyed on the pinned identity of
/// the touched shards' committed state, so repeated probes against the
/// same world skip the per-probe context assembly entirely.
///
/// Contract: one scratch per thread, NEVER shared between concurrent
/// probes — the scratch is mutated in place (the cached base temporarily
/// holds the candidate mid-probe).  A scratch may be reused freely across
/// candidates, snapshots and even engines: entries are validated against
/// the probed snapshot's shard-state pointers (held alive by the entry, so
/// pointer identity is ABA-safe) and rebuilt on mismatch.  Results are
/// bit-identical with and without scratch reuse
/// (tests/test_probe_scratch.cpp).
class ProbeScratch {
 public:
  ProbeScratch() = default;
  ProbeScratch(ProbeScratch&&) noexcept = default;
  ProbeScratch& operator=(ProbeScratch&&) noexcept = default;
  ProbeScratch(const ProbeScratch&) = delete;
  ProbeScratch& operator=(const ProbeScratch&) = delete;

  /// Drops every cached base (and the shard state it pins).
  void clear() { entries_.clear(); }

 private:
  friend class EngineSnapshot;

  /// One cached probe base: the residents-only context and warm-start map
  /// assembled from a specific set of committed shard states.  The pinned
  /// ctx/result pointers are both the cache key and the lifetime guard —
  /// while the entry holds them, their addresses cannot be reused, so raw
  /// pointer equality against a snapshot's shards is a sound identity test.
  struct Entry {
    std::vector<std::shared_ptr<const core::AnalysisContext>> ctxs;
    std::vector<std::shared_ptr<const core::HolisticResult>> results;
    /// Residents of the touched shards in canonical merge order (optional
    /// only for default-constructibility; always engaged once cached).
    std::optional<core::AnalysisContext> base;
    /// Converged warm start over `base` (never mutated; copied per probe).
    core::JitterMap base_start;
    /// Merge order; `shard` indexes ctxs/results, not snapshot shards.
    std::vector<MergeEnt> srcs;
    std::uint64_t stamp = 0;  ///< LRU clock value of the last use
  };

  static constexpr std::size_t kMaxEntries = 8;

  std::vector<Entry> entries_;
  std::uint64_t clock_ = 0;
};

/// A mutex-guarded free list of ProbeScratch objects for callers whose
/// probing threads are not long-lived (e.g. one RPC connection thread per
/// client): acquire() hands out a warm scratch (or a fresh one when none
/// is free) and the RAII Lease returns it on destruction.
class ProbeScratchPool {
 public:
  class Lease {
   public:
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), scratch_(std::move(other.scratch_)) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() {
      if (pool_ != nullptr) pool_->release(std::move(scratch_));
    }

    [[nodiscard]] ProbeScratch& get() const { return *scratch_; }

   private:
    friend class ProbeScratchPool;
    Lease(ProbeScratchPool* pool, std::unique_ptr<ProbeScratch> scratch)
        : pool_(pool), scratch_(std::move(scratch)) {}

    ProbeScratchPool* pool_;
    std::unique_ptr<ProbeScratch> scratch_;
  };

  [[nodiscard]] Lease acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.empty()) return Lease(this, std::make_unique<ProbeScratch>());
    std::unique_ptr<ProbeScratch> s = std::move(free_.back());
    free_.pop_back();
    return Lease(this, std::move(s));
  }

 private:
  void release(std::unique_ptr<ProbeScratch> s) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(s));
  }

  std::mutex mu_;
  std::vector<std::unique_ptr<ProbeScratch>> free_;
};

/// Outcome of one non-committing what-if admission probe.
///
/// Copy-free by construction: instead of materializing the full-set
/// HolisticResult per probe (a deep copy of every resident's FlowResult
/// plus the jitter map), the probe returns the verdict, its component-local
/// solve, and a COW handle to the published global result.  Cheap accessors
/// (worst_response, converged, sweeps) answer directly from those pieces;
/// result() assembles — and caches — the full HolisticResult only when a
/// caller actually wants all of it.
///
/// Thread safety: a WhatIfResult value is NOT safe to share between
/// threads without synchronization (result() caches lazily); the underlying
/// published state it references is immutable and safely shared.
class WhatIfResult {
 public:
  WhatIfResult() = default;

  /// True when the combined set is schedulable — the admission verdict.
  bool admissible = false;

  /// True when the probe's fixed point converged.
  [[nodiscard]] bool converged() const { return converged_; }
  /// Sweeps the probe's solve executed.
  [[nodiscard]] int sweeps() const { return sweeps_; }
  /// Flows in the probed world (residents + candidate; the candidate is
  /// the last flow id).
  [[nodiscard]] std::size_t flow_count() const { return total_flows_; }

  /// Per-flow result by global flow id, without materializing the full
  /// result: flows in the probe's dirty component come from the probe's
  /// solve, everything else from the shared published state.
  [[nodiscard]] const core::FlowResult& flow_result(net::FlowId global) const;
  /// Worst end-to-end bound of a flow (Time::max() if it diverged).
  [[nodiscard]] gmfnet::Time worst_response(net::FlowId global) const {
    return flow_result(global).worst_response();
  }

  /// Full holistic result of resident set + candidate, bit-identical to a
  /// from-scratch run.  Materialized on first call and cached; prefer the
  /// accessors above on hot paths.
  [[nodiscard]] const core::HolisticResult& result() const;

  /// Wraps an already-complete result (RPC decode, cold whole-set runs).
  [[nodiscard]] static WhatIfResult from_full(bool admissible,
                                              core::HolisticResult full);

  /// A verdict-only value: carries the admission verdict and the summary
  /// accessors (converged, sweeps, flow_count) but no per-flow payload —
  /// flow_result()/result() throw std::logic_error.  The wire form for
  /// probes that asked for verdicts only (WhatIfBatchRequest.verdict_only):
  /// encoding a full result is a deep copy of every resident's FlowResult,
  /// O(world) per probe, which dwarfs the probe itself on large worlds.
  [[nodiscard]] static WhatIfResult verdict_only(bool admissible,
                                                bool converged, int sweeps,
                                                std::size_t flow_count);

  /// False for verdict-only values: per-flow accessors would throw.
  [[nodiscard]] bool detailed() const { return !verdict_only_; }

 private:
  friend class EngineSnapshot;

  /// Published global result the untouched flows are shared from (null for
  /// default-constructed and from_full values).
  std::shared_ptr<const core::HolisticResult> base_;
  /// The probe's component-local solve (probe-local flow ids).
  core::HolisticResult local_;
  /// Probe-local id -> global id, ascending (candidate last).
  std::vector<net::FlowId> to_global_;
  /// Probe-local dirty flags (true for the candidate's component).
  std::vector<bool> dirty_;
  std::size_t total_flows_ = 0;
  bool converged_ = false;
  int sweeps_ = 0;
  /// Lazily materialized full result (result() cache; set eagerly by
  /// from_full).
  mutable std::shared_ptr<const core::HolisticResult> full_;
  /// True when this value carries no per-flow payload (see verdict_only()).
  bool verdict_only_ = false;
};

class EngineSnapshot {
 public:
  [[nodiscard]] std::size_t flow_count() const { return locs_.size(); }
  [[nodiscard]] const gmf::Flow& flow(std::size_t index) const;
  /// The resident flows in global order (copies; for verification code).
  [[nodiscard]] std::vector<gmf::Flow> flows() const;
  /// Assembled whole-set result as of publication.
  [[nodiscard]] const core::HolisticResult& result() const { return *global_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  /// Which shard (by position) the flow at `index` lives in.  Throws
  /// std::out_of_range on a bad index.
  [[nodiscard]] std::size_t shard_of(std::size_t index) const {
    return locs_.at(index).shard;
  }
  [[nodiscard]] const net::Network& network() const {
    return empty_ctx_->network();
  }

  /// Lock-free what-if probe: the verdict for resident set + `candidate`
  /// (candidate is the last flow id), bit-identical to a from-scratch run,
  /// computed against this snapshot without touching the engine.  Safe to
  /// call from any number of threads concurrently.  Throws std::logic_error
  /// on malformed candidates.
  [[nodiscard]] WhatIfResult what_if(const gmf::Flow& candidate) const;

  /// what_if reusing the caller's per-thread `scratch` — the hot path for
  /// readers issuing many probes (see ProbeScratch for the contract).
  /// Identical results, one candidate add/remove instead of a full probe
  /// assembly on scratch hits.
  [[nodiscard]] WhatIfResult what_if(const gmf::Flow& candidate,
                                     ProbeScratch& scratch) const;

 private:
  friend class AnalysisEngine;

  EngineSnapshot() = default;

  /// One shard's committed state (shared with the engine's Shard).
  struct ShardView {
    std::shared_ptr<const core::AnalysisContext> ctx;
    std::shared_ptr<const core::HolisticResult> result;
    std::vector<net::FlowId> to_global;
  };

  /// Everything a probe computed, in probe-local flow ids — enough for the
  /// engine to commit the probe as a merged shard without re-solving.
  struct Probe {
    /// Touched shards' flows (global-id order) + candidate last.  Engaged
    /// only on the cold path or when run_probe ran with retain_ctx (the
    /// commit path); plain what-ifs leave the context in the scratch.
    std::optional<core::AnalysisContext> ctx;
    /// The probe's solve.  Complete (clean flows adopted) only when ctx is
    /// engaged; otherwise clean entries stay default-constructed — the
    /// schedulable verdict already accounts for them.
    core::HolisticResult local;
    /// Probe-local id -> global id (candidate maps to flow_count()).
    std::vector<net::FlowId> to_global;
    /// Snapshot shard indices the candidate's route touched (ascending).
    std::vector<std::uint32_t> touched;
    /// Probe-local dirty closure (true for the candidate's component).
    std::vector<bool> dirty;
    /// False when some shard's base was not converged: `local` is then a
    /// cold whole-set run in global order and `touched` covers every shard.
    bool base_converged = true;
    RunStats rs;
  };

  /// Runs the probe against `scratch` (building/reusing a cached base).
  /// With `retain_ctx`, the candidate-bearing context and the complete
  /// local result are moved into the returned Probe (evicting the scratch
  /// entry) — required by the commit path; without it, the scratch base is
  /// restored to the residents-only world for the next probe.
  [[nodiscard]] Probe run_probe(const gmf::Flow& candidate,
                                ProbeScratch& scratch, bool retain_ctx) const;
  /// The admission verdict of a finished probe (converged, every untouched
  /// shard schedulable, probed component schedulable).
  [[nodiscard]] bool probe_admissible(const Probe& p) const;
  /// Wraps a finished probe into the copy-free WhatIfResult.
  [[nodiscard]] WhatIfResult finish_probe(Probe&& probe) const;

  /// Scratch entry lookup/build for a probe over `touched` (ascending
  /// snapshot shard indices).  find_entry returns null on miss;
  /// build_entry assembles the base (bulk adoption in canonical merge
  /// order) and inserts it, evicting the least-recently-used entry when
  /// the scratch is full.
  [[nodiscard]] ProbeScratch::Entry* find_entry(
      ProbeScratch& scratch, const std::vector<std::uint32_t>& touched) const;
  ProbeScratch::Entry& build_entry(
      ProbeScratch& scratch, const std::vector<std::uint32_t>& touched) const;

  /// Template context sharing the network + CIRC table (cheap empty clone).
  std::shared_ptr<const core::AnalysisContext> empty_ctx_;
  core::HolisticOptions opts_;
  /// False = single-domain mode: probes always touch every shard.
  bool sharded_ = true;
  std::vector<ShardView> shards_;
  std::vector<FlowLoc> locs_;
  /// Directed link -> owning shard (links with at least one resident flow).
  std::map<net::LinkRef, std::uint32_t> link_shard_;
  std::shared_ptr<const core::HolisticResult> global_;
};

}  // namespace gmfnet::engine
