#include "engine/snapshot.hpp"

#include <algorithm>
#include <utility>

namespace gmfnet::engine {

const gmf::Flow& EngineSnapshot::flow(std::size_t index) const {
  const FlowLoc& loc = locs_.at(index);
  return shards_[loc.shard].ctx->flow(
      net::FlowId(static_cast<std::int32_t>(loc.local)));
}

std::vector<gmf::Flow> EngineSnapshot::flows() const {
  std::vector<gmf::Flow> out;
  out.reserve(locs_.size());
  for (std::size_t g = 0; g < locs_.size(); ++g) out.push_back(flow(g));
  return out;
}

EngineSnapshot::Probe EngineSnapshot::run_probe(
    const gmf::Flow& candidate) const {
  // Surface malformed candidates before any assembly work.
  candidate.validate(network());

  Probe p;
  p.rs.ran = true;

  bool base_converged = true;
  for (const ShardView& s : shards_) {
    if (!s.result || !s.result->converged) {
      base_converged = false;
      break;
    }
  }
  if (!base_converged) {
    // Some component never converged: there is no fixed point to warm-start
    // from, so run the whole set + candidate cold, in global order —
    // bit-identical to the from-scratch analysis.  (Gauss-Seidel is forced:
    // probes may run inside a thread-pool worker, and a Jacobi run would
    // build a nested pool per probe.)
    p.base_converged = false;
    p.rs.full = true;
    core::AnalysisContext full = core::AnalysisContext::empty_clone(*empty_ctx_);
    for (std::size_t g = 0; g < locs_.size(); ++g) {
      const FlowLoc& loc = locs_[g];
      full.adopt_flow(*shards_[loc.shard].ctx,
                      net::FlowId(static_cast<std::int32_t>(loc.local)));
      p.to_global.push_back(net::FlowId(static_cast<std::int32_t>(g)));
    }
    full.add_flow(candidate);
    p.to_global.push_back(net::FlowId(static_cast<std::int32_t>(locs_.size())));
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      p.touched.push_back(static_cast<std::uint32_t>(s));
    }
    core::HolisticOptions cold = opts_;
    cold.order = core::SweepOrder::kGaussSeidel;
    cold.initial_jitters = nullptr;
    p.local = core::analyze_holistic(full, cold);
    p.rs.sweeps = static_cast<std::size_t>(p.local.sweeps);
    p.dirty.assign(full.flow_count(), true);
    p.ctx = std::move(full);
    return p;
  }

  // The shards the candidate's route links already belong to; the probe
  // world is exactly their union + the candidate.
  if (!sharded_ && !shards_.empty()) {
    p.touched.push_back(0);
  } else {
    for (const net::LinkRef l : candidate.route().links()) {
      const auto it = link_shard_.find(l);
      if (it != link_shard_.end()) p.touched.push_back(it->second);
    }
    std::sort(p.touched.begin(), p.touched.end());
    p.touched.erase(std::unique(p.touched.begin(), p.touched.end()),
                    p.touched.end());
  }

  // Assemble the probe context by adopting the touched shards' immutable
  // derived state — O(touched flows), not O(residents).  Probe locals run
  // in the canonical global-id order (see merge_order), so the
  // Gauss-Seidel sweep order inside the probed component — and every
  // per-link flow list, floating-point aggregate and envelope merge —
  // matches the one-context engine exactly.
  std::vector<MergeEnt> srcs;
  core::AnalysisContext ctx = core::AnalysisContext::empty_clone(*empty_ctx_);
  if (p.touched.size() == 1) {
    // Single touched domain (the common case): one context copy, no
    // per-flow adoption.
    const ShardView& s = shards_[p.touched.front()];
    ctx = *s.ctx;
    p.to_global = s.to_global;
    for (std::uint32_t l = 0; l < s.to_global.size(); ++l) {
      srcs.push_back(MergeEnt{s.to_global[l], p.touched.front(), l});
    }
  } else if (!p.touched.empty()) {
    srcs = merge_order(
        p.touched,
        [this](std::uint32_t part) -> const std::vector<net::FlowId>& {
          return shards_[part].to_global;
        });
    for (const MergeEnt& e : srcs) {
      ctx.adopt_flow(*shards_[e.shard].ctx,
                     net::FlowId(static_cast<std::int32_t>(e.local)));
      p.to_global.push_back(e.global);
    }
  }
  const std::size_t residents = ctx.flow_count();
  const net::FlowId cand_local = ctx.add_flow(candidate);
  p.to_global.push_back(net::FlowId(static_cast<std::int32_t>(locs_.size())));

  // Warm start: every resident sits at its converged fixed point; only the
  // candidate (and transitively its component) is dirty.
  core::JitterMap start;
  for (std::size_t pos = 0; pos < srcs.size(); ++pos) {
    start.adopt_flow(shards_[srcs[pos].shard].result->jitters,
                     net::FlowId(static_cast<std::int32_t>(srcs[pos].local)),
                     net::FlowId(static_cast<std::int32_t>(pos)));
  }
  seed_source_jitters(ctx, cand_local, start);

  p.dirty = dirty_closure(ctx, std::vector<bool>(ctx.flow_count(), false), {},
                          residents);

  core::IncrementalStats is;
  p.local = core::analyze_holistic_dirty(ctx, p.dirty, std::move(start),
                                         opts_, &is);
  p.rs.flow_analyses = is.flow_analyses;
  p.rs.sweeps = is.sweeps;

  // Clean residents keep their converged results verbatim.
  for (std::size_t pos = 0; pos < srcs.size(); ++pos) {
    if (!p.dirty[pos]) {
      p.local.flows[pos] =
          shards_[srcs[pos].shard].result->flows[srcs[pos].local];
      ++p.rs.flow_results_reused;
    }
  }
  finalize_schedulable(p.local);
  p.ctx = std::move(ctx);
  return p;
}

WhatIfResult EngineSnapshot::assemble(const Probe& p) const {
  WhatIfResult out;
  if (!p.base_converged) {
    // The cold whole-set run is already in global order.
    out.result = p.local;
    out.admissible = out.result.schedulable;
    return out;
  }

  core::HolisticResult& r = out.result;
  r.converged = p.local.converged;
  r.sweeps = p.local.sweeps;
  // Untouched shards are adopted wholesale from the published global
  // result: one flows-vector copy plus one copy-on-write pointer per flow.
  r.flows = global_->flows;
  r.flows.resize(locs_.size() + 1);
  r.jitters = global_->jitters;
  // Probe flows: only the dirty component (and the candidate) can differ
  // from the published state — clean probe flows share the very same
  // per-flow jitter maps the global result adopted at publication.
  for (std::size_t f = 0; f < p.to_global.size(); ++f) {
    if (!p.dirty[f]) continue;
    const auto g = static_cast<std::size_t>(p.to_global[f].v);
    r.flows[g] = p.local.flows[f];
    r.jitters.adopt_flow(p.local.jitters,
                         net::FlowId(static_cast<std::int32_t>(f)),
                         net::FlowId(static_cast<std::int32_t>(g)));
  }

  bool untouched_ok = true;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (std::find(p.touched.begin(), p.touched.end(),
                  static_cast<std::uint32_t>(s)) != p.touched.end()) {
      continue;
    }
    untouched_ok &= shards_[s].result->schedulable;
  }
  r.schedulable = r.converged && untouched_ok && p.local.schedulable;
  out.admissible = r.schedulable;
  return out;
}

WhatIfResult EngineSnapshot::what_if(const gmf::Flow& candidate) const {
  return assemble(run_probe(candidate));
}

}  // namespace gmfnet::engine
