#include "engine/snapshot.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace gmfnet::engine {

const gmf::Flow& EngineSnapshot::flow(std::size_t index) const {
  const FlowLoc& loc = locs_.at(index);
  return shards_[loc.shard].ctx->flow(
      net::FlowId(static_cast<std::int32_t>(loc.local)));
}

std::vector<gmf::Flow> EngineSnapshot::flows() const {
  std::vector<gmf::Flow> out;
  out.reserve(locs_.size());
  for (std::size_t g = 0; g < locs_.size(); ++g) out.push_back(flow(g));
  return out;
}

// --------------------------------------------------------- WhatIfResult --

const core::FlowResult& WhatIfResult::flow_result(net::FlowId global) const {
  if (verdict_only_) {
    throw std::logic_error(
        "verdict-only what-if result carries no per-flow payload");
  }
  if (full_) return full_->flows.at(static_cast<std::size_t>(global.v));
  if (!base_) return result().flows.at(static_cast<std::size_t>(global.v));
  const auto it =
      std::lower_bound(to_global_.begin(), to_global_.end(), global,
                       [](net::FlowId a, net::FlowId b) { return a.v < b.v; });
  if (it != to_global_.end() && it->v == global.v) {
    const auto f = static_cast<std::size_t>(it - to_global_.begin());
    // Clean probe flows are identical to the published entries; only the
    // dirty component carries probe-fresh results.
    if (dirty_[f]) return local_.flows[f];
  }
  return base_->flows.at(static_cast<std::size_t>(global.v));
}

const core::HolisticResult& WhatIfResult::result() const {
  if (verdict_only_) {
    throw std::logic_error(
        "verdict-only what-if result carries no per-flow payload");
  }
  if (full_) return *full_;
  if (!base_) {
    // Default-constructed value (or a cold probe that stored the complete
    // global-order result in local_).
    full_ = std::make_shared<const core::HolisticResult>(local_);
    return *full_;
  }
  core::HolisticResult r;
  r.converged = converged_;
  r.sweeps = sweeps_;
  // Untouched flows are adopted wholesale from the published global result:
  // one flows-vector copy plus one copy-on-write pointer per flow — paid
  // only here, never on the probe hot path.
  r.flows = base_->flows;
  r.flows.resize(total_flows_);
  r.jitters = base_->jitters;
  for (std::size_t f = 0; f < to_global_.size(); ++f) {
    if (!dirty_[f]) continue;
    const auto g = static_cast<std::size_t>(to_global_[f].v);
    r.flows[g] = local_.flows[f];
    r.jitters.adopt_flow(local_.jitters,
                         net::FlowId(static_cast<std::int32_t>(f)),
                         net::FlowId(static_cast<std::int32_t>(g)));
  }
  r.schedulable = admissible;
  full_ = std::make_shared<const core::HolisticResult>(std::move(r));
  return *full_;
}

WhatIfResult WhatIfResult::from_full(bool admissible,
                                     core::HolisticResult full) {
  WhatIfResult out;
  out.admissible = admissible;
  out.converged_ = full.converged;
  out.sweeps_ = full.sweeps;
  out.total_flows_ = full.flows.size();
  out.full_ = std::make_shared<const core::HolisticResult>(std::move(full));
  return out;
}

WhatIfResult WhatIfResult::verdict_only(bool admissible, bool converged,
                                        int sweeps, std::size_t flow_count) {
  WhatIfResult out;
  out.admissible = admissible;
  out.converged_ = converged;
  out.sweeps_ = sweeps;
  out.total_flows_ = flow_count;
  out.verdict_only_ = true;
  return out;
}

// ------------------------------------------------------- scratch entries --

ProbeScratch::Entry* EngineSnapshot::find_entry(
    ProbeScratch& scratch, const std::vector<std::uint32_t>& touched) const {
  for (ProbeScratch::Entry& e : scratch.entries_) {
    if (e.ctxs.size() != touched.size()) continue;
    bool match = true;
    for (std::size_t k = 0; k < touched.size(); ++k) {
      const ShardView& s = shards_[touched[k]];
      if (e.ctxs[k].get() != s.ctx.get() ||
          e.results[k].get() != s.result.get()) {
        match = false;
        break;
      }
    }
    if (match) return &e;
  }
  return nullptr;
}

ProbeScratch::Entry& EngineSnapshot::build_entry(
    ProbeScratch& scratch, const std::vector<std::uint32_t>& touched) const {
  ProbeScratch::Entry e;
  e.ctxs.reserve(touched.size());
  e.results.reserve(touched.size());
  for (const std::uint32_t s : touched) {
    e.ctxs.push_back(shards_[s].ctx);
    e.results.push_back(shards_[s].result);
  }

  // Assemble the residents-only base in the canonical global-id order (see
  // merge_order): the Gauss-Seidel sweep order inside the probed component
  // — and every per-link flow list, floating-point aggregate and envelope
  // merge — matches the one-context engine exactly.
  if (touched.size() == 1) {
    // Single touched domain (the common case): one context copy — paid
    // once per (scratch, shard state), amortized over every probe hit.
    const ShardView& s = shards_[touched.front()];
    e.base = *s.ctx;
    e.srcs.reserve(s.to_global.size());
    for (std::uint32_t l = 0; l < s.to_global.size(); ++l) {
      e.srcs.push_back(MergeEnt{s.to_global[l], 0, l});
    }
  } else {
    e.srcs = merge_order(
        touched,
        [this](std::uint32_t part) -> const std::vector<net::FlowId>& {
          return shards_[part].to_global;
        });
    // Re-key each entry to its position among the touched parts — the
    // index into the pinned ctxs/results, stable across republishes.
    for (MergeEnt& m : e.srcs) {
      m.shard = static_cast<std::uint32_t>(
          std::lower_bound(touched.begin(), touched.end(), m.shard) -
          touched.begin());
    }
    core::AnalysisContext base =
        core::AnalysisContext::empty_clone(*empty_ctx_);
    // Bulk adoption: register every flow, then recompute each link's
    // aggregates once — O(flows) aggregate work instead of the per-adopt
    // quadratic, bit-identical (the recompute sums from scratch in flow-id
    // order, exactly like add_flows).
    for (const MergeEnt& m : e.srcs) {
      base.adopt_flow_deferred(*e.ctxs[m.shard],
                               net::FlowId(static_cast<std::int32_t>(m.local)));
    }
    base.recompute_all_aggregates();
    e.base = std::move(base);
  }

  // Converged warm start over the base: every resident sits at its shard's
  // published fixed point.
  for (std::size_t pos = 0; pos < e.srcs.size(); ++pos) {
    const MergeEnt& m = e.srcs[pos];
    e.base_start.adopt_flow(e.results[m.shard]->jitters,
                            net::FlowId(static_cast<std::int32_t>(m.local)),
                            net::FlowId(static_cast<std::int32_t>(pos)));
  }

  if (scratch.entries_.size() >= ProbeScratch::kMaxEntries) {
    // Evict the least recently used base (and the shard state it pins) —
    // bounds scratch memory across republishes and engine swaps.
    auto victim = scratch.entries_.begin();
    for (auto it = scratch.entries_.begin(); it != scratch.entries_.end();
         ++it) {
      if (it->stamp < victim->stamp) victim = it;
    }
    scratch.entries_.erase(victim);
  }
  scratch.entries_.push_back(std::move(e));
  return scratch.entries_.back();
}

// ---------------------------------------------------------------- probes --

EngineSnapshot::Probe EngineSnapshot::run_probe(const gmf::Flow& candidate,
                                                ProbeScratch& scratch,
                                                bool retain_ctx) const {
  // Surface malformed candidates before any assembly work.
  candidate.validate(network());

  Probe p;
  p.rs.ran = true;

  bool base_converged = true;
  for (const ShardView& s : shards_) {
    if (!s.result || !s.result->converged) {
      base_converged = false;
      break;
    }
  }
  if (!base_converged) {
    // Some component never converged: there is no fixed point to warm-start
    // from, so run the whole set + candidate cold, in global order —
    // bit-identical to the from-scratch analysis.  (Gauss-Seidel is forced:
    // probes may run inside a thread-pool worker, and a Jacobi run would
    // build a nested pool per probe.)
    p.base_converged = false;
    p.rs.full = true;
    core::AnalysisContext full =
        core::AnalysisContext::empty_clone(*empty_ctx_);
    for (std::size_t g = 0; g < locs_.size(); ++g) {
      const FlowLoc& loc = locs_[g];
      full.adopt_flow_deferred(*shards_[loc.shard].ctx,
                               net::FlowId(static_cast<std::int32_t>(loc.local)));
      p.to_global.push_back(net::FlowId(static_cast<std::int32_t>(g)));
    }
    full.recompute_all_aggregates();
    full.add_flow(candidate);
    p.to_global.push_back(net::FlowId(static_cast<std::int32_t>(locs_.size())));
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      p.touched.push_back(static_cast<std::uint32_t>(s));
    }
    core::HolisticOptions cold = opts_;
    cold.order = core::SweepOrder::kGaussSeidel;
    cold.warm_start = {};
    core::IncrementalStats cold_is;
    p.local = core::solve_holistic(full, core::SolveRequest{}, cold, &cold_is);
    p.rs.sweeps = static_cast<std::size_t>(p.local.sweeps);
    p.rs.accel_accepted = cold_is.accel_accepted;
    p.rs.accel_rejected = cold_is.accel_rejected;
    p.dirty.assign(full.flow_count(), true);
    p.ctx = std::move(full);
    return p;
  }

  // The shards the candidate's route links already belong to; the probe
  // world is exactly their union + the candidate.
  if (!sharded_ && !shards_.empty()) {
    p.touched.push_back(0);
  } else {
    for (const net::LinkRef l : candidate.route().links()) {
      const auto it = link_shard_.find(l);
      if (it != link_shard_.end()) p.touched.push_back(it->second);
    }
    std::sort(p.touched.begin(), p.touched.end());
    p.touched.erase(std::unique(p.touched.begin(), p.touched.end()),
                    p.touched.end());
  }

  ProbeScratch::Entry* entry = find_entry(scratch, p.touched);
  if (entry == nullptr) entry = &build_entry(scratch, p.touched);
  entry->stamp = ++scratch.clock_;

  // Current global ids of the base's flows.  The entry pins the touched
  // shards' states, and global-id shifts while a shard is unchanged are
  // order-preserving (removals elsewhere shift uniformly down, additions
  // append larger ids), so the merge order cached at build time is still
  // canonical.  Guard it anyway: a non-ascending sequence rebuilds the
  // entry against the live snapshot.
  const auto fill_to_global = [&](const ProbeScratch::Entry& en) {
    p.to_global.clear();
    p.to_global.reserve(en.srcs.size() + 1);
    for (const MergeEnt& m : en.srcs) {
      p.to_global.push_back(shards_[p.touched[m.shard]].to_global[m.local]);
    }
  };
  const auto strictly_ascending = [](const std::vector<net::FlowId>& v) {
    for (std::size_t i = 1; i < v.size(); ++i) {
      if (v[i - 1].v >= v[i].v) return false;
    }
    return true;
  };
  fill_to_global(*entry);
  if (!strictly_ascending(p.to_global)) {
    scratch.entries_.erase(scratch.entries_.begin() +
                           (entry - scratch.entries_.data()));
    entry = &build_entry(scratch, p.touched);
    entry->stamp = ++scratch.clock_;
    fill_to_global(*entry);
  }

  // The probe mutates the cached base in place: add the candidate, solve
  // the dirty component, then restore the residents-only world (or hand the
  // candidate-bearing context to the commit path).  Any failure mid-probe
  // drops the entry — a half-mutated base must never be reused.
  const std::size_t entry_idx =
      static_cast<std::size_t>(entry - scratch.entries_.data());
  core::AnalysisContext& ctx = *entry->base;
  try {
    const std::size_t residents = ctx.flow_count();
    const net::FlowId cand_local = ctx.add_flow(candidate);
    p.to_global.push_back(
        net::FlowId(static_cast<std::int32_t>(locs_.size())));

    // Warm start: every resident sits at its converged fixed point; only
    // the candidate (and transitively its component) is dirty.  Copying the
    // cached map costs one shared pointer per resident.
    core::JitterMap start = entry->base_start;
    seed_source_jitters(ctx, cand_local, start);

    p.dirty = dirty_closure(ctx, std::vector<bool>(ctx.flow_count(), false),
                            {}, residents);

    core::IncrementalStats is;
    core::SolveRequest req;
    req.dirty = &p.dirty;
    req.start = core::WarmStartView(start);
    p.local = core::solve_holistic(ctx, req, opts_, &is);
    p.rs.flow_analyses = is.flow_analyses;
    p.rs.sweeps = is.sweeps;
    p.rs.accel_accepted = is.accel_accepted;
    p.rs.accel_rejected = is.accel_rejected;
    for (std::size_t pos = 0; pos < residents; ++pos) {
      if (!p.dirty[pos]) ++p.rs.flow_results_reused;
    }

    if (retain_ctx) {
      // The commit path installs the probe as a merged shard, so its local
      // result must be complete: adopt the clean residents' converged
      // FlowResults verbatim and finalize the verdict.
      for (std::size_t pos = 0; pos < entry->srcs.size(); ++pos) {
        if (p.dirty[pos]) continue;
        const MergeEnt& m = entry->srcs[pos];
        p.local.flows[pos] = entry->results[m.shard]->flows[m.local];
      }
      finalize_schedulable(p.local);
    } else {
      // Restore the base to the residents-only world for the next probe:
      // removing the (last-id) candidate erases its derived entry, drops it
      // from its route links (erasing links it alone introduced) and
      // recomputes exactly the touched aggregates from scratch —
      // bit-identical to the pre-add state.
      ctx.remove_flow(static_cast<std::size_t>(cand_local.v));
    }
  } catch (...) {
    scratch.entries_.erase(scratch.entries_.begin() +
                           static_cast<std::ptrdiff_t>(entry_idx));
    throw;
  }
  if (retain_ctx) {
    p.ctx = std::move(*entry->base);
    scratch.entries_.erase(scratch.entries_.begin() +
                           static_cast<std::ptrdiff_t>(entry_idx));
  }
  return p;
}

bool EngineSnapshot::probe_admissible(const Probe& p) const {
  if (!p.base_converged) return p.local.schedulable;
  if (!p.local.converged) return false;
  // Untouched shards keep their published verdicts; p.touched is ascending,
  // so one two-pointer sweep covers all shards.
  std::size_t t = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (t < p.touched.size() &&
        p.touched[t] == static_cast<std::uint32_t>(s)) {
      ++t;
      continue;
    }
    if (!shards_[s].result->schedulable) return false;
  }
  // The probed component: dirty flows from the probe's solve, clean flows
  // from their shard's committed result — flag reads only, no copies.  The
  // candidate (last, always dirty) takes the first branch.
  for (std::size_t f = 0; f < p.to_global.size(); ++f) {
    if (p.dirty[f]) {
      if (!p.local.flows[f].schedulable()) return false;
    } else {
      const FlowLoc& loc = locs_[static_cast<std::size_t>(p.to_global[f].v)];
      if (!shards_[loc.shard].result->flows[loc.local].schedulable()) {
        return false;
      }
    }
  }
  return true;
}

WhatIfResult EngineSnapshot::finish_probe(Probe&& p) const {
  const bool admissible = probe_admissible(p);
  if (!p.base_converged) {
    // The cold whole-set run is already the full result in global order.
    return WhatIfResult::from_full(admissible, std::move(p.local));
  }
  WhatIfResult out;
  out.admissible = admissible;
  out.base_ = global_;
  out.converged_ = p.local.converged;
  out.sweeps_ = p.local.sweeps;
  out.local_ = std::move(p.local);
  out.to_global_ = std::move(p.to_global);
  out.dirty_ = std::move(p.dirty);
  out.total_flows_ = locs_.size() + 1;
  return out;
}

WhatIfResult EngineSnapshot::what_if(const gmf::Flow& candidate) const {
  // One-shot probe: a throwaway scratch keeps the semantics; callers on hot
  // paths should hold a per-thread ProbeScratch and use the overload below.
  ProbeScratch scratch;
  return what_if(candidate, scratch);
}

WhatIfResult EngineSnapshot::what_if(const gmf::Flow& candidate,
                                     ProbeScratch& scratch) const {
  return finish_probe(run_probe(candidate, scratch, /*retain_ctx=*/false));
}

}  // namespace gmfnet::engine
