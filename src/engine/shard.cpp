#include "engine/shard.hpp"

#include <algorithm>
#include <utility>

namespace gmfnet::engine {

std::vector<MergeEnt> merge_order(
    const std::vector<std::uint32_t>& parts,
    const std::function<const std::vector<net::FlowId>&(std::uint32_t)>&
        to_global_of) {
  std::vector<MergeEnt> ents;
  for (const std::uint32_t part : parts) {
    const std::vector<net::FlowId>& to_global = to_global_of(part);
    for (std::uint32_t l = 0; l < to_global.size(); ++l) {
      ents.push_back(MergeEnt{to_global[l], part, l});
    }
  }
  std::sort(ents.begin(), ents.end(),
            [](const MergeEnt& a, const MergeEnt& b) {
              return a.global.v < b.global.v;
            });
  return ents;
}

void finalize_schedulable(core::HolisticResult& r) {
  if (!r.converged) return;
  r.schedulable = true;
  for (const core::FlowResult& fr : r.flows) {
    if (!fr.schedulable()) {
      r.schedulable = false;
      break;
    }
  }
}

std::vector<bool> dirty_closure(const core::AnalysisContext& ctx,
                                std::vector<bool> dirty,
                                const std::set<net::LinkRef>& dirty_links,
                                std::size_t cached_flows) {
  const std::size_t n = ctx.flow_count();
  dirty.resize(n, false);
  // Flows without a cached FlowResult must be dirty: the incremental run
  // reuses cache entries for clean flows.
  for (std::size_t f = cached_flows; f < n; ++f) dirty[f] = true;

  std::vector<net::FlowId> worklist;
  for (std::size_t f = 0; f < n; ++f) {
    if (dirty[f]) {
      worklist.push_back(net::FlowId(static_cast<std::int32_t>(f)));
      continue;
    }
    for (const net::LinkRef l :
         ctx.route_links(net::FlowId(static_cast<std::int32_t>(f)))) {
      if (dirty_links.count(l) != 0) {
        dirty[f] = true;
        worklist.push_back(net::FlowId(static_cast<std::int32_t>(f)));
        break;
      }
    }
  }
  // Transitive closure over link sharing: interference only travels across
  // shared links, so everything outside the closure keeps its fixed point.
  while (!worklist.empty()) {
    const net::FlowId i = worklist.back();
    worklist.pop_back();
    for (const net::LinkRef l : ctx.route_links(i)) {
      for (const net::FlowId j : ctx.flows_on_link(l)) {
        const auto jf = static_cast<std::size_t>(j.v);
        if (!dirty[jf]) {
          dirty[jf] = true;
          worklist.push_back(j);
        }
      }
    }
  }
  return dirty;
}

void seed_source_jitters(const core::AnalysisContext& ctx, net::FlowId id,
                         core::JitterMap& map) {
  map.clear_flow(id);
  const gmf::Flow& flow = ctx.flow(id);
  const core::StageKey& source = ctx.stages(id).front();
  for (std::size_t k = 0; k < flow.frame_count(); ++k) {
    map.set_jitter(id, source, k, flow.frame(k).jitter);
  }
}

core::JitterMap warm_start(const core::AnalysisContext& ctx,
                           const core::JitterMap& cached,
                           std::size_t cached_flows,
                           const std::vector<bool>& dirty, bool reset_dirty) {
  // Clean flows sit exactly at their (unchanged) fixed point; dirty flows
  // after an add start from the old fixed point, a sound
  // under-approximation of the new one.  Start from one copy of the cached
  // map and reset only the flows that must restart from the initial state
  // (flows with no cached entries, and the dirty component after a
  // removal).
  core::JitterMap start = cached;
  for (std::size_t f = 0; f < ctx.flow_count(); ++f) {
    if (f < cached_flows && !(dirty[f] && reset_dirty)) continue;
    seed_source_jitters(ctx, net::FlowId(static_cast<std::int32_t>(f)), start);
  }
  return start;
}

RunStats Shard::run(const core::HolisticOptions& opts) {
  RunStats rs;
  const std::size_t n = flow_count();
  const bool clean = cache_valid() && dirty_links.empty() &&
                     !removal_pending && cache->flows.size() == n;
  if (clean) return rs;
  rs.ran = true;

  std::vector<bool> dirty;
  core::JitterMap start;
  if (!cache_valid()) {
    // No converged state to start from: cold run, everything dirty.  With
    // all flows dirty and the initial map this is exactly the cold
    // Gauss-Seidel analyze_holistic sweep.
    rs.full = true;
    dirty.assign(n, true);
    start = core::JitterMap::initial(*ctx);
  } else {
    dirty = dirty_closure(*ctx, std::vector<bool>(n, false), dirty_links,
                          cache->flows.size());
    start = warm_start(*ctx, cache->jitters, cache->flows.size(), dirty,
                       removal_pending);
  }

  core::IncrementalStats is;
  core::SolveRequest req;
  req.dirty = &dirty;
  req.start = core::WarmStartView(start);
  core::HolisticResult result = core::solve_holistic(*ctx, req, opts, &is);
  rs.flow_analyses = is.flow_analyses;
  rs.sweeps = is.sweeps;
  rs.accel_accepted = is.accel_accepted;
  rs.accel_rejected = is.accel_rejected;

  // Clean flows keep their converged results verbatim.
  for (std::size_t f = 0; f < n; ++f) {
    if (!dirty[f]) {
      result.flows[f] = cache->flows[f];
      ++rs.flow_results_reused;
    }
  }
  finalize_schedulable(result);

  cache = std::make_shared<const core::HolisticResult>(std::move(result));
  dirty_links.clear();
  removal_pending = false;
  return rs;
}

}  // namespace gmfnet::engine
