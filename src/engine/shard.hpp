// EngineShard: one locality domain of the resident set.
//
// The holistic fixed point decomposes over the connected components of the
// link-sharing graph: interference only travels across shared links, so two
// flows whose routes are link-disjoint (transitively) have independent
// fixed points.  A Shard owns one such component — its own AnalysisContext
// (shard-local flow ids), its own converged HolisticResult, and its own
// dirty-link set — so an admission touching one domain re-analyses only
// that shard, and a full-set evaluation fans the dirty shards over a
// thread pool.
//
// Committed state (`ctx`, `cache`) is immutable and reference-counted:
// publishing an EngineSnapshot shares the pointers with concurrent readers
// for free, and every mutation builds a *new* context/result and swaps the
// pointer, RCU-style — readers holding the old pointers are never raced.
// The Shard object itself (dirty bookkeeping, the pointers) is owned by the
// single writer thread.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "core/context.hpp"
#include "core/holistic.hpp"

namespace gmfnet::engine {

/// Counters of one solver run (folded into EngineStats).
struct RunStats {
  bool ran = false;   ///< a solver run actually executed
  bool full = false;  ///< cold run (no usable warm cache) vs incremental
  std::size_t flow_analyses = 0;
  std::size_t sweeps = 0;
  std::size_t flow_results_reused = 0;
  std::size_t accel_accepted = 0;  ///< Anderson iterates kept this run
  std::size_t accel_rejected = 0;  ///< Anderson safeguard rollbacks this run
};

/// Where one global flow id lives: which shard, and at which shard-local id.
struct FlowLoc {
  std::uint32_t shard = 0;
  std::uint32_t local = 0;
};

/// Marks every flow of `ctx` sharing a link (transitively) with a seed
/// flow.  Seeds: the flows already set in `dirty`, flows touching
/// `dirty_links`, and flows with id >= `cached_flows` (no reusable
/// FlowResult, e.g. added since the last evaluation).
[[nodiscard]] std::vector<bool> dirty_closure(
    const core::AnalysisContext& ctx, std::vector<bool> dirty,
    const std::set<net::LinkRef>& dirty_links, std::size_t cached_flows);

/// Seeds `map` with `id`'s holistic initial state: the source stage carries
/// the source-specified per-frame jitters, downstream stages are absent.
void seed_source_jitters(const core::AnalysisContext& ctx, net::FlowId id,
                         core::JitterMap& map);

/// One entry of a multi-shard merge, in global-id order.
struct MergeEnt {
  net::FlowId global;
  std::uint32_t shard = 0;  ///< part index (caller's shard id)
  std::uint32_t local = 0;  ///< local flow id within that part
};

/// The canonical merge order for combining several shards into one flow
/// sequence: all parts' flows sorted by global id.  Every shard keeps its
/// locals sorted by global id, so this is exactly the one-context engine's
/// flow order — the bit-identical-results guarantee (per-link FP sums,
/// Gauss-Seidel sweep order) depends on both the engine's shard merges and
/// the snapshot's probe assembly using this single definition.
/// `to_global_of(part)` returns a part's local-to-global map.
[[nodiscard]] std::vector<MergeEnt> merge_order(
    const std::vector<std::uint32_t>& parts,
    const std::function<const std::vector<net::FlowId>&(std::uint32_t)>&
        to_global_of);

/// Finalizes `r.schedulable` after its `flows` vector is complete (fresh
/// dirty results + adopted clean ones): all flows meet deadlines, and only
/// a converged result can be schedulable.
void finalize_schedulable(core::HolisticResult& r);

/// Warm-start map for `ctx` from a converged `cached` map covering the
/// first `cached_flows` flows: cached entries adopted for every covered
/// flow — except dirty flows when `reset_dirty` (after removals their fixed
/// point may shrink) — and the holistic initial state for everything else.
[[nodiscard]] core::JitterMap warm_start(const core::AnalysisContext& ctx,
                                         const core::JitterMap& cached,
                                         std::size_t cached_flows,
                                         const std::vector<bool>& dirty,
                                         bool reset_dirty);

/// One locality domain.  Mutations (performed by AnalysisEngine) follow the
/// copy-and-swap discipline described above; `run` re-solves the shard's
/// fixed point incrementally and installs the fresh result as `cache`.
struct Shard {
  /// Committed context over this shard's flows (shard-local ids), shared
  /// with published snapshots.  Never mutated in place.
  std::shared_ptr<const core::AnalysisContext> ctx;
  /// Last solved result for `ctx`'s flow set (null before the first run).
  /// `cache->converged` gates warm starting; a non-converged cache forces
  /// the next run cold, exactly like the pre-shard engine's invalid cache.
  std::shared_ptr<const core::HolisticResult> cache;
  /// Shard-local flow id -> global flow id, in local order.  Local order
  /// preserves global insertion order among this shard's flows, which keeps
  /// every per-link flow list — and hence every floating-point aggregate
  /// and envelope merge — bit-identical to the one-context engine.
  std::vector<net::FlowId> to_global;

  // Writer-side dirty bookkeeping (not part of snapshots).
  std::set<net::LinkRef> dirty_links;
  bool removal_pending = false;

  [[nodiscard]] std::size_t flow_count() const {
    return ctx ? ctx->flow_count() : 0;
  }

  /// True when `cache` is a converged fixed point usable as a warm start.
  [[nodiscard]] bool cache_valid() const { return cache && cache->converged; }

  /// True when the next evaluate() must (re-)solve this shard.
  [[nodiscard]] bool needs_run() const {
    return !cache_valid() || !dirty_links.empty() || removal_pending ||
           cache->flows.size() != flow_count();
  }

  /// Solves the shard: no-op when clean, warm-started dirty-component run
  /// when the cache is usable, cold Gauss-Seidel run otherwise.  Installs
  /// the complete result (clean flows adopted from the old cache) as the
  /// new `cache` and clears the dirty bookkeeping.  Bit-identical to a
  /// from-scratch analyze_holistic over the shard's flow set.
  RunStats run(const core::HolisticOptions& opts);
};

}  // namespace gmfnet::engine
