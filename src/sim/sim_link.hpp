// Link transmitter: serializes Ethernet frames at linkspeed and delivers
// them after the propagation delay.
#pragma once

#include <deque>
#include <functional>

#include "ethernet/framing.hpp"
#include "sim/event_queue.hpp"
#include "sim/packet.hpp"
#include "util/time.hpp"

namespace gmfnet::sim {

/// One directed link's transmit side.
///
/// Two feed disciplines exist in the modelled system:
///  * end hosts: an unbounded work-conserving FIFO ahead of the wire —
///    `enqueue` and frames go back-to-back (`auto_feed == true`);
///  * switch NICs: the card's FIFO holds a single frame that the stride-
///    scheduled egress task deposited; the egress task only refills it when
///    it observes the FIFO empty (`auto_feed == false`, use `try_load`).
class LinkTransmitter {
 public:
  using DeliverFn = std::function<void(const EthFrame&, gmfnet::Time)>;

  LinkTransmitter(EventQueue& queue, ethernet::LinkSpeedBps speed,
                  gmfnet::Time prop, bool auto_feed, DeliverFn deliver);

  /// Host-side: append to the FIFO; starts transmitting when idle.
  void enqueue(gmfnet::Time now, const EthFrame& frame);

  /// Switch-NIC-side: returns false when the card FIFO is occupied (a frame
  /// is waiting or on the wire); on true the frame was accepted.
  bool try_load(gmfnet::Time now, const EthFrame& frame);

  /// True when the single-slot card FIFO is free (only meaningful for
  /// auto_feed == false transmitters).
  [[nodiscard]] bool card_fifo_empty() const { return !busy_; }

  [[nodiscard]] bool busy() const { return busy_; }
  [[nodiscard]] std::size_t queued() const { return fifo_.size(); }

 private:
  void start_next(gmfnet::Time now);
  void transmit(gmfnet::Time now, const EthFrame& frame);

  EventQueue& queue_;
  ethernet::LinkSpeedBps speed_;
  gmfnet::Time prop_;
  bool auto_feed_;
  DeliverFn deliver_;
  std::deque<EthFrame> fifo_;
  bool busy_ = false;
};

}  // namespace gmfnet::sim
