#include "sim/trace.hpp"

#include <sstream>

namespace gmfnet::sim {

const char* to_string(TraceEvent e) {
  switch (e) {
    case TraceEvent::kPacketArrival: return "packet-arrival";
    case TraceEvent::kFrameReleased: return "frame-released";
    case TraceEvent::kFrameDelivered: return "frame-delivered";
    case TraceEvent::kPacketDelivered: return "packet-delivered";
  }
  return "?";
}

void SimTrace::record(const TraceRecord& r) {
  if (!enabled_) return;
  if (records_.size() >= max_) {
    ++dropped_;
    return;
  }
  records_.push_back(r);
}

std::string SimTrace::render() const {
  std::ostringstream os;
  for (const TraceRecord& r : records_) {
    os << r.at.str() << ' ' << to_string(r.event)
       << " flow=" << r.packet.flow.v << " seq=" << r.packet.seq
       << " kind=" << r.frame_kind;
    if (r.frag_index >= 0) os << " frag=" << r.frag_index;
    if (r.node.valid()) os << " node=" << r.node.v;
    os << '\n';
  }
  if (dropped_ > 0) os << "(+" << dropped_ << " dropped records)\n";
  return os.str();
}

}  // namespace gmfnet::sim
