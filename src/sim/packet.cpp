// Intentionally empty: sim/packet.hpp is all aggregates.  The translation
// unit exists so the build exercises the header standalone.
#include "sim/packet.hpp"
