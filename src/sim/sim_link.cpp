#include "sim/sim_link.hpp"

#include <cassert>

namespace gmfnet::sim {

LinkTransmitter::LinkTransmitter(EventQueue& queue,
                                 ethernet::LinkSpeedBps speed,
                                 gmfnet::Time prop, bool auto_feed,
                                 DeliverFn deliver)
    : queue_(queue),
      speed_(speed),
      prop_(prop),
      auto_feed_(auto_feed),
      deliver_(std::move(deliver)) {}

void LinkTransmitter::enqueue(gmfnet::Time now, const EthFrame& frame) {
  assert(auto_feed_);
  fifo_.push_back(frame);
  if (!busy_) start_next(now);
}

bool LinkTransmitter::try_load(gmfnet::Time now, const EthFrame& frame) {
  assert(!auto_feed_);
  // The card FIFO holds one frame from deposit until its transmission
  // completes (the paper's egress task tests "FIFO empty" before
  // refilling); a busy card refuses the load.
  if (busy_) return false;
  busy_ = true;
  transmit(now, frame);
  return true;
}

void LinkTransmitter::start_next(gmfnet::Time now) {
  assert(auto_feed_);
  if (fifo_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  const EthFrame frame = fifo_.front();
  fifo_.pop_front();
  transmit(now, frame);
}

void LinkTransmitter::transmit(gmfnet::Time now, const EthFrame& frame) {
  const gmfnet::Time tx = ethernet::wire_time(frame.wire_bits, speed_);
  const gmfnet::Time done = now + tx;
  // Delivery happens prop after the last bit leaves.
  const gmfnet::Time at = done + prop_;
  queue_.schedule(at, [this, frame, at] { deliver_(frame, at); });
  queue_.schedule(done, [this, done] {
    if (auto_feed_) {
      start_next(done);
    } else {
      busy_ = false;  // card FIFO frees; egress task may refill on its next
                      // service
    }
  });
}

}  // namespace gmfnet::sim
