// GMF arrival generation at the source host.
//
// A FlowSource walks a flow's frame cycle, producing packet arrivals that
// respect the GMF contract (consecutive arrivals of frames k and k+1 are at
// least T^k apart) and splitting every packet into Ethernet frames released
// within the generalized-jitter window [t, t + GJ^k).
#pragma once

#include <functional>
#include <vector>

#include "gmf/flow.hpp"
#include "sim/event_queue.hpp"
#include "sim/packet.hpp"
#include "util/rng.hpp"

namespace gmfnet::sim {

/// How inter-arrival slack beyond the minimum separations is drawn.
enum class ArrivalModel {
  /// Arrivals exactly at the minimum separations (the densest legal
  /// sequence — the pattern the analysis is tightest against).
  kPeriodic,
  /// Uniform multiplicative slack: separation = T^k * U[1, 1+slack].
  kUniformSlack,
};

struct SourceOptions {
  ArrivalModel model = ArrivalModel::kPeriodic;
  double slack = 0.5;            ///< for kUniformSlack
  gmfnet::Time start_offset = gmfnet::Time::zero();  ///< first arrival time
  /// Fragment releases inside [t, t+GJ): true scatters them uniformly;
  /// false releases the worst case (all at the end of the window is not
  /// legal — the *first* frame defines t — so "worst" is first at t, rest
  /// just before t+GJ).
  bool scatter_jitter = true;
};

class FlowSource {
 public:
  /// `emit(frame, release_time)` is called for every Ethernet frame;
  /// `on_packet(id, kind, arrival, frag_count)` announces each new packet.
  using EmitFn = std::function<void(const EthFrame&, gmfnet::Time)>;
  using PacketFn = std::function<void(const PacketId&, std::size_t,
                                      gmfnet::Time, int)>;

  FlowSource(EventQueue& queue, const gmf::Flow& flow, net::FlowId id,
             SourceOptions opts, Rng rng, EmitFn emit, PacketFn on_packet);

  /// Schedules the first arrival; subsequent arrivals self-schedule until
  /// `until`.
  void start(gmfnet::Time until);

  [[nodiscard]] std::uint64_t packets_released() const { return seq_; }

 private:
  void arrive(gmfnet::Time now, gmfnet::Time until);

  EventQueue& queue_;
  const gmf::Flow& flow_;
  net::FlowId id_;
  SourceOptions opts_;
  Rng rng_;
  EmitFn emit_;
  PacketFn on_packet_;
  std::size_t kind_ = 0;      ///< next frame index in the GMF cycle
  std::uint64_t seq_ = 0;
  /// Per-frame fragment wire layouts, precomputed (speed-independent).
  std::vector<std::vector<ethernet::Bits>> layouts_;
};

}  // namespace gmfnet::sim
