#include "sim/sim_source.hpp"

#include <algorithm>

namespace gmfnet::sim {

FlowSource::FlowSource(EventQueue& queue, const gmf::Flow& flow,
                       net::FlowId id, SourceOptions opts, Rng rng,
                       EmitFn emit, PacketFn on_packet)
    : queue_(queue),
      flow_(flow),
      id_(id),
      opts_(opts),
      rng_(rng),
      emit_(std::move(emit)),
      on_packet_(std::move(on_packet)) {
  layouts_.reserve(flow_.frame_count());
  for (std::size_t k = 0; k < flow_.frame_count(); ++k) {
    layouts_.push_back(ethernet::fragment_layout(flow_.nbits(k)));
  }
}

void FlowSource::start(gmfnet::Time until) {
  const gmfnet::Time first = opts_.start_offset;
  if (first > until) return;
  queue_.schedule(first, [this, first, until] { arrive(first, until); });
}

void FlowSource::arrive(gmfnet::Time now, gmfnet::Time until) {
  const std::size_t kind = kind_;
  const gmf::FrameSpec& spec = flow_.frame(kind);
  const auto& layout = layouts_[kind];
  const int frag_count = static_cast<int>(layout.size());

  const PacketId pid{id_, seq_++};
  on_packet_(pid, kind, now, frag_count);

  // Fragment release offsets within the generalized-jitter window
  // [now, now + GJ^k).  The first fragment defines the packet arrival, so
  // offset 0 is always used; the remaining fragments scatter.
  std::vector<gmfnet::Time> offsets(layout.size(), gmfnet::Time::zero());
  if (spec.jitter > gmfnet::Time::zero() && layout.size() > 1) {
    for (std::size_t f = 1; f < layout.size(); ++f) {
      if (opts_.scatter_jitter) {
        offsets[f] = gmfnet::Time(static_cast<gmfnet::Time::rep>(
            rng_.uniform01() * static_cast<double>(spec.jitter.ps())));
      } else {
        // Adversarial: everything except the first fragment lands at the
        // very end of the window.
        offsets[f] = spec.jitter - gmfnet::Time(1);
      }
    }
    std::sort(offsets.begin(), offsets.end());
  }

  for (std::size_t f = 0; f < layout.size(); ++f) {
    EthFrame frame;
    frame.packet = pid;
    frame.frame_kind = kind;
    frame.priority = flow_.priority();
    frame.frag_index = static_cast<int>(f);
    frame.frag_count = frag_count;
    frame.wire_bits = layout[f];
    const gmfnet::Time release = now + offsets[f];
    queue_.schedule(release, [this, frame, release] { emit_(frame, release); });
  }

  // Next arrival.
  gmfnet::Time sep = spec.min_separation;
  if (opts_.model == ArrivalModel::kUniformSlack) {
    const double mult = 1.0 + rng_.uniform01() * opts_.slack;
    sep = gmfnet::Time(static_cast<gmfnet::Time::rep>(
        static_cast<double>(sep.ps()) * mult));
  }
  kind_ = (kind_ + 1) % flow_.frame_count();
  const gmfnet::Time next = now + sep;
  if (next <= until) {
    queue_.schedule(next, [this, next, until] { arrive(next, until); });
  }
}

}  // namespace gmfnet::sim
