#include "sim/sim_switch.hpp"

#include <cassert>
#include <stdexcept>

namespace gmfnet::sim {

SimSwitch::SimSwitch(EventQueue& queue, net::NodeId self,
                     std::vector<net::NodeId> neighbors, Options opts,
                     ForwardFn forward,
                     std::map<net::NodeId, LinkTransmitter*> out_links)
    : queue_(queue),
      self_(self),
      neighbors_(std::move(neighbors)),
      opts_(opts),
      forward_(std::move(forward)) {
  if (neighbors_.empty()) {
    throw std::invalid_argument("SimSwitch: no interfaces");
  }
  if (opts_.processors < 1) {
    throw std::invalid_argument("SimSwitch: no processors");
  }
  if (opts_.poll_cost <= gmfnet::Time::zero()) {
    throw std::invalid_argument("SimSwitch: poll_cost must be positive");
  }

  in_.resize(neighbors_.size());
  out_.resize(neighbors_.size());
  for (std::size_t p = 0; p < neighbors_.size(); ++p) {
    port_of_[neighbors_[p]] = p;
    const auto it = out_links.find(neighbors_[p]);
    if (it == out_links.end() || it->second == nullptr) {
      throw std::invalid_argument("SimSwitch: missing transmitter");
    }
    out_[p].tx = it->second;
  }

  // Interfaces partitioned round-robin over CPUs; every interface brings
  // one ingress and one egress task, equal tickets (round-robin stride,
  // Click's default configuration).
  cpus_.resize(static_cast<std::size_t>(opts_.processors));
  for (std::size_t p = 0; p < neighbors_.size(); ++p) {
    Cpu& cpu = cpus_[p % cpus_.size()];
    cpu.tasks.push_back(Task{true, p});
    cpu.sched.add_task(1, "in" + std::to_string(p));
    cpu.tasks.push_back(Task{false, p});
    cpu.sched.add_task(1, "out" + std::to_string(p));
  }
}

void SimSwitch::receive(const EthFrame& frame, net::NodeId from) {
  const auto it = port_of_.find(from);
  if (it == port_of_.end()) {
    throw std::logic_error("SimSwitch: frame from non-neighbour");
  }
  in_[it->second].fifo.push_back(frame);
}

void SimSwitch::start() {
  for (std::size_t c = 0; c < cpus_.size(); ++c) {
    if (cpus_[c].tasks.empty()) continue;
    queue_.schedule(gmfnet::Time::zero(),
                    [this, c] { cpu_step(c, gmfnet::Time::zero()); });
  }
}

std::size_t SimSwitch::buffered() const {
  std::size_t n = 0;
  for (const InPort& p : in_) n += p.fifo.size();
  for (const OutPort& p : out_) {
    for (const auto& [prio, q] : p.queues) n += q.size();
  }
  return n;
}

void SimSwitch::cpu_step(std::size_t cpu, gmfnet::Time now) {
  Cpu& c = cpus_[cpu];
  const std::size_t t = c.sched.dispatch();
  const gmfnet::Time cost = run_task(c.tasks[t], now);
  const gmfnet::Time next = now + cost;
  queue_.schedule(next, [this, cpu, next] { cpu_step(cpu, next); });
}

gmfnet::Time SimSwitch::run_task(const Task& task, gmfnet::Time now) {
  if (task.is_ingress) {
    InPort& port = in_[task.port];
    if (port.fifo.empty()) return opts_.poll_cost;
    const EthFrame frame = port.fifo.front();
    port.fifo.pop_front();
    const gmfnet::Time done = now + opts_.croute;
    // Classification result lands in the outbound priority queue when the
    // CROUTE work completes.
    queue_.schedule(done, [this, frame] {
      const net::NodeId next_hop = forward_(frame);
      const auto it = port_of_.find(next_hop);
      if (it == port_of_.end()) {
        throw std::logic_error("SimSwitch: route to non-neighbour");
      }
      out_[it->second].queues[frame.priority].push_back(frame);
    });
    return opts_.croute;
  }

  OutPort& port = out_[task.port];
  // The egress task only acts when the card FIFO is free (Figure 5's
  // description) and a frame is queued.
  if (port.empty() || !port.tx->card_fifo_empty()) return opts_.poll_cost;
  auto first = port.queues.begin();  // highest priority (greater<> order)
  const EthFrame frame = first->second.front();
  first->second.pop_front();
  if (first->second.empty()) port.queues.erase(first);
  const gmfnet::Time done = now + opts_.csend;
  queue_.schedule(done, [this, task, frame, done] {
    const bool ok = out_[task.port].tx->try_load(done, frame);
    // The card was observed free at service start and only this task feeds
    // it, so the load cannot fail.
    assert(ok);
    (void)ok;
  });
  return opts_.csend;
}

}  // namespace gmfnet::sim
