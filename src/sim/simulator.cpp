#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>

namespace gmfnet::sim {

Simulator::Simulator(const net::Network& network,
                     std::vector<gmf::Flow> flows, SimOptions opts)
    : net_(network), flows_(std::move(flows)), opts_(opts) {
  net_.validate();
  for (const gmf::Flow& f : flows_) f.validate(net_);

  stats_.resize(flows_.size());
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    const std::size_t n = flows_[f].frame_count();
    stats_[f].per_kind.resize(n);
    stats_[f].max_response.assign(n, gmfnet::Time::zero());
    stats_[f].deadline_misses.assign(n, 0);
  }

  // One transmitter per directed link.  Host-side links feed back-to-back
  // from an unbounded FIFO; switch-side links model the single-slot card
  // FIFO that the stride-scheduled egress task refills.
  for (const net::Link& l : net_.links()) {
    const bool from_switch =
        net_.node(l.src).kind == net::NodeKind::kSwitch;
    links_[net::LinkRef(l.src, l.dst)] = std::make_unique<LinkTransmitter>(
        queue_, l.speed_bps, l.prop, /*auto_feed=*/!from_switch,
        [this, src = l.src, dst = l.dst](const EthFrame& frame,
                                         gmfnet::Time now) {
          on_deliver(dst, src, frame, now);
        });
  }

  // One SimSwitch per switch node.
  for (const net::NodeId sw : net_.nodes_of_kind(net::NodeKind::kSwitch)) {
    std::vector<net::NodeId> nbrs = net_.successors(sw);
    {
      const auto& in = net_.predecessors(sw);
      nbrs.insert(nbrs.end(), in.begin(), in.end());
      std::sort(nbrs.begin(), nbrs.end());
      nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    }
    std::map<net::NodeId, LinkTransmitter*> out;
    for (const net::NodeId n : nbrs) {
      const auto it = links_.find(net::LinkRef(sw, n));
      if (it == links_.end()) {
        throw std::logic_error(
            "Simulator: switch interface without outgoing link (switch "
            "cabling must be full duplex)");
      }
      out[n] = it->second.get();
    }

    const net::Node& node = net_.node(sw);
    SimSwitch::Options so;
    so.croute = node.sw.croute;
    so.csend = node.sw.csend;
    so.poll_cost = gmfnet::min(opts_.poll_cost,
                               gmfnet::min(so.croute, so.csend));
    so.processors = node.sw.processors;

    switches_[sw] = std::make_unique<SimSwitch>(
        queue_, sw, std::move(nbrs), so,
        [this, sw](const EthFrame& frame) {
          return flows_[static_cast<std::size_t>(frame.packet.flow.v)]
              .route()
              .succ(sw);
        },
        std::move(out));
  }

  // One source per flow.
  Rng master(opts_.seed);
  for (std::size_t f = 0; f < flows_.size(); ++f) {
    const net::FlowId id(static_cast<std::int32_t>(f));
    sources_.push_back(std::make_unique<FlowSource>(
        queue_, flows_[f], id, opts_.source, master.split(),
        [this](const EthFrame& frame, gmfnet::Time now) {
          on_emit(frame, now);
        },
        [this](const PacketId& pid, std::size_t kind, gmfnet::Time arrival,
               int frag_count) {
          on_packet(pid, kind, arrival, frag_count);
        }));
  }
}

Simulator::~Simulator() = default;

void Simulator::run() {
  if (ran_) throw std::logic_error("Simulator::run called twice");
  ran_ = true;

  for (auto& [id, sw] : switches_) sw->start();
  for (auto& src : sources_) src->start(opts_.horizon);

  // The switch CPU loops self-perpetuate, so the queue never drains on its
  // own: run to the horizon, then keep going until every in-flight packet
  // has completed (bounded by a generous drain limit).
  const gmfnet::Time drain_limit =
      opts_.horizon + gmfnet::max(opts_.horizon, gmfnet::Time::sec(10));
  while (!queue_.empty()) {
    const gmfnet::Time t = queue_.next_time();
    if (t > opts_.horizon && open_packets_.empty()) break;
    if (t > drain_limit) break;
    end_time_ = queue_.run_next();
  }

  for (const auto& [pid, rec] : open_packets_) {
    ++stats_[static_cast<std::size_t>(pid.flow.v)].packets_incomplete;
  }
}

void Simulator::on_packet(const PacketId& id, std::size_t kind,
                          gmfnet::Time arrival, int frag_count) {
  PacketRecord rec;
  rec.id = id;
  rec.frame_kind = kind;
  rec.arrival = arrival;
  rec.frag_count = frag_count;
  open_packets_[id] = rec;
  if (opts_.trace != nullptr) {
    opts_.trace->record(TraceRecord{arrival, TraceEvent::kPacketArrival, id,
                                    kind, -1,
                                    flows_[static_cast<std::size_t>(id.flow.v)]
                                        .route()
                                        .source()});
  }
}

void Simulator::on_emit(const EthFrame& frame, gmfnet::Time now) {
  const gmf::Flow& flow =
      flows_[static_cast<std::size_t>(frame.packet.flow.v)];
  const net::Route& route = flow.route();
  const net::LinkRef first(route.node_at(0), route.node_at(1));
  links_.at(first)->enqueue(now, frame);
  if (opts_.trace != nullptr) {
    opts_.trace->record(TraceRecord{now, TraceEvent::kFrameReleased,
                                    frame.packet, frame.frame_kind,
                                    frame.frag_index, route.source()});
  }
}

void Simulator::on_deliver(net::NodeId at, net::NodeId from,
                           const EthFrame& frame, gmfnet::Time now) {
  const auto fidx = static_cast<std::size_t>(frame.packet.flow.v);
  const gmf::Flow& flow = flows_[fidx];

  if (opts_.trace != nullptr) {
    opts_.trace->record(TraceRecord{now, TraceEvent::kFrameDelivered,
                                    frame.packet, frame.frame_kind,
                                    frame.frag_index, at});
  }

  if (at != flow.route().destination()) {
    // Intermediate hop: must be a switch relaying the frame.
    switches_.at(at)->receive(frame, from);
    return;
  }

  const auto it = open_packets_.find(frame.packet);
  if (it == open_packets_.end()) {
    throw std::logic_error("Simulator: delivery for unknown packet");
  }
  PacketRecord& rec = it->second;
  ++rec.frags_delivered;
  if (!rec.complete()) return;

  rec.delivered = now;
  const gmfnet::Time resp = rec.response();
  FlowSimStats& st = stats_[fidx];
  st.per_kind[rec.frame_kind].add(resp.to_sec());
  st.max_response[rec.frame_kind] =
      gmfnet::max(st.max_response[rec.frame_kind], resp);
  if (resp > flow.frame(rec.frame_kind).deadline) {
    ++st.deadline_misses[rec.frame_kind];
  }
  ++st.packets_completed;
  if (opts_.trace != nullptr) {
    opts_.trace->record(TraceRecord{now, TraceEvent::kPacketDelivered,
                                    frame.packet, rec.frame_kind, -1, at});
  }
  open_packets_.erase(it);
}

}  // namespace gmfnet::sim
