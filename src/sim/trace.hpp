// Optional event trace for debugging and for the example programs that
// narrate a packet's journey.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/ids.hpp"
#include "sim/packet.hpp"
#include "util/time.hpp"

namespace gmfnet::sim {

enum class TraceEvent : std::uint8_t {
  kPacketArrival,   ///< UDP packet enqueued at its source
  kFrameReleased,   ///< Ethernet frame released at the source
  kFrameDelivered,  ///< Ethernet frame received at a node
  kPacketDelivered, ///< last fragment reached the destination
};

[[nodiscard]] const char* to_string(TraceEvent e);

struct TraceRecord {
  gmfnet::Time at;
  TraceEvent event;
  PacketId packet;
  std::size_t frame_kind = 0;
  int frag_index = -1;      ///< -1 for packet-level events
  net::NodeId node;         ///< where it happened (invalid for releases)
};

/// Append-only trace buffer.  Disabled (and free) unless `enable` was
/// called; the simulator takes an optional pointer to one of these.
class SimTrace {
 public:
  void enable(std::size_t max_records = 1 << 20) {
    enabled_ = true;
    max_ = max_records;
  }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(const TraceRecord& r);

  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t dropped() const { return dropped_; }

  /// Renders one line per record ("12.3us frame-delivered flow=0 seq=4 ...").
  [[nodiscard]] std::string render() const;

 private:
  bool enabled_ = false;
  std::size_t max_ = 0;
  std::size_t dropped_ = 0;
  std::vector<TraceRecord> records_;
};

}  // namespace gmfnet::sim
