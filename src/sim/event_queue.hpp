// Discrete-event core: a time-ordered queue of callbacks.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "util/time.hpp"

namespace gmfnet::sim {

/// Min-heap of (time, insertion sequence) ordered events.  The sequence
/// number makes simultaneous events run in insertion order, so simulations
/// are deterministic.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  void schedule(gmfnet::Time at, Callback cb) {
    heap_.push(Entry{at, next_seq_++, std::move(cb)});
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] gmfnet::Time next_time() const { return heap_.top().at; }

  /// Pops and runs the earliest event; returns its timestamp.
  gmfnet::Time run_next() {
    Entry e = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    e.cb();
    return e.at;
  }

 private:
  struct Entry {
    gmfnet::Time at;
    std::uint64_t seq;
    Callback cb;

    bool operator>(const Entry& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace gmfnet::sim
