// The packet-level simulator: wires sources, links and software switches
// for a network + GMF flow set and measures end-to-end response times.
//
// This is the executable model of the system the paper analyses; property
// tests and experiment E6 assert that every simulated response time stays
// below the analytical bound.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "gmf/flow.hpp"
#include "net/network.hpp"
#include "sim/event_queue.hpp"
#include "sim/packet.hpp"
#include "sim/sim_link.hpp"
#include "sim/sim_source.hpp"
#include "sim/sim_switch.hpp"
#include "sim/trace.hpp"
#include "util/stats.hpp"

namespace gmfnet::sim {

struct SimOptions {
  /// Simulated time span; arrivals stop at the horizon but in-flight
  /// packets are drained to completion.
  gmfnet::Time horizon = gmfnet::Time::sec(1);
  SourceOptions source;
  /// Cost of a task service that finds nothing to do (must be positive and
  /// should be <= CROUTE/CSEND for the analysis to upper-bound the model).
  gmfnet::Time poll_cost = gmfnet::Time::ns(100);
  std::uint64_t seed = 1;
  SimTrace* trace = nullptr;  ///< optional, not owned
};

/// Measured response-time statistics of one flow.
struct FlowSimStats {
  /// Per GMF frame kind: observed response-time stats (in seconds for the
  /// OnlineStats, exact Time for the maxima).
  std::vector<OnlineStats> per_kind;
  std::vector<gmfnet::Time> max_response;  ///< per kind
  std::vector<std::uint64_t> deadline_misses;  ///< per kind
  std::uint64_t packets_completed = 0;
  std::uint64_t packets_incomplete = 0;  ///< still in flight at drain end

  [[nodiscard]] gmfnet::Time worst_response() const {
    gmfnet::Time w = gmfnet::Time::zero();
    for (gmfnet::Time t : max_response) w = gmfnet::max(w, t);
    return w;
  }
  [[nodiscard]] std::uint64_t total_misses() const {
    std::uint64_t m = 0;
    for (auto v : deadline_misses) m += v;
    return m;
  }
};

class Simulator {
 public:
  Simulator(const net::Network& network, std::vector<gmf::Flow> flows,
            SimOptions opts);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Runs to completion (horizon + drain).  Call once.
  void run();

  [[nodiscard]] const FlowSimStats& stats(net::FlowId id) const {
    return stats_[static_cast<std::size_t>(id.v)];
  }
  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }
  [[nodiscard]] gmfnet::Time end_time() const { return end_time_; }

 private:
  void on_packet(const PacketId& id, std::size_t kind, gmfnet::Time arrival,
                 int frag_count);
  void on_emit(const EthFrame& frame, gmfnet::Time now);
  void on_deliver(net::NodeId at, net::NodeId from, const EthFrame& frame,
                  gmfnet::Time now);

  const net::Network& net_;
  std::vector<gmf::Flow> flows_;
  SimOptions opts_;
  EventQueue queue_;

  std::map<net::LinkRef, std::unique_ptr<LinkTransmitter>> links_;
  std::map<net::NodeId, std::unique_ptr<SimSwitch>> switches_;
  std::vector<std::unique_ptr<FlowSource>> sources_;

  std::map<PacketId, PacketRecord> open_packets_;
  std::vector<FlowSimStats> stats_;
  gmfnet::Time end_time_ = gmfnet::Time::zero();
  bool ran_ = false;
};

}  // namespace gmfnet::sim
