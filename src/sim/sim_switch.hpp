// The software-implemented Ethernet switch of Figure 5, simulated at the
// task level.
//
// Per interface (= neighbouring node) the switch runs two software tasks on
// its CPU(s) under stride scheduling:
//   * the ingress task: pops one Ethernet frame from the interface's NIC
//     FIFO, classifies it (flow -> output interface and priority) and pushes
//     it into the corresponding outbound priority queue — cost CROUTE;
//   * the egress task: when the outbound NIC's card FIFO is free, moves the
//     highest-priority queued frame into it — cost CSEND.
// A task that finds nothing to do costs `poll_cost` (a real Click element
// returns quickly but not in zero time; poll_cost <= CROUTE/CSEND keeps the
// analysis's CIRC service period an upper bound).
//
// With `processors` > 1, interfaces are partitioned round-robin over the
// CPUs (both tasks of an interface stay together), as the Conclusions
// propose for network processors.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "net/ids.hpp"
#include "sim/event_queue.hpp"
#include "sim/packet.hpp"
#include "sim/sim_link.hpp"
#include "switchsim/stride.hpp"
#include "util/time.hpp"

namespace gmfnet::sim {

class SimSwitch {
 public:
  struct Options {
    gmfnet::Time croute = gmfnet::Time::ns(2700);
    gmfnet::Time csend = gmfnet::Time::ns(1000);
    gmfnet::Time poll_cost = gmfnet::Time::ns(100);
    int processors = 1;
  };

  /// Maps a frame to its next-hop node as seen from this switch.
  using ForwardFn = std::function<net::NodeId(const EthFrame&)>;

  /// `out_links[n]` is the transmitter towards neighbour n (card-FIFO
  /// discipline, auto_feed == false).  `neighbors` fixes the interface
  /// order (and hence the task order in the stride scheduler).
  SimSwitch(EventQueue& queue, net::NodeId self,
            std::vector<net::NodeId> neighbors, Options opts,
            ForwardFn forward,
            std::map<net::NodeId, LinkTransmitter*> out_links);

  /// Frame arrival from neighbour `from`: lands in that interface's NIC
  /// FIFO, to be picked up by the ingress task.
  void receive(const EthFrame& frame, net::NodeId from);

  /// Starts the CPU loop(s) at t = 0.
  void start();

  [[nodiscard]] net::NodeId self() const { return self_; }
  /// Total frames currently buffered in the switch (diagnostics).
  [[nodiscard]] std::size_t buffered() const;

 private:
  struct Task {
    bool is_ingress;
    std::size_t port;  ///< index into neighbors_
  };
  struct Cpu {
    switchsim::StrideScheduler sched;
    std::vector<Task> tasks;
  };
  struct InPort {
    std::deque<EthFrame> fifo;
  };
  struct OutPort {
    /// priority -> FIFO of frames; larger key served first.
    std::map<std::int64_t, std::deque<EthFrame>, std::greater<>> queues;
    LinkTransmitter* tx = nullptr;
    [[nodiscard]] bool empty() const { return queues.empty(); }
  };

  void cpu_step(std::size_t cpu, gmfnet::Time now);
  /// Executes one task service at `now`; side effects land at completion.
  /// Returns the service cost.
  gmfnet::Time run_task(const Task& task, gmfnet::Time now);

  EventQueue& queue_;
  net::NodeId self_;
  std::vector<net::NodeId> neighbors_;
  Options opts_;
  ForwardFn forward_;
  std::vector<InPort> in_;
  std::vector<OutPort> out_;
  std::map<net::NodeId, std::size_t> port_of_;
  std::vector<Cpu> cpus_;
};

}  // namespace gmfnet::sim
