// Simulated traffic units: UDP packets and the Ethernet frames carrying
// them.
#pragma once

#include <cstdint>

#include "ethernet/framing.hpp"
#include "net/ids.hpp"
#include "util/time.hpp"

namespace gmfnet::sim {

/// One release of one GMF frame: a UDP packet instance.
struct PacketId {
  net::FlowId flow;
  std::uint64_t seq = 0;  ///< global release counter within the flow

  auto operator<=>(const PacketId&) const = default;
};

/// An Ethernet frame in flight.
struct EthFrame {
  PacketId packet;
  std::size_t frame_kind = 0;   ///< GMF frame index k of the packet
  std::int64_t priority = 0;    ///< flow priority (static, 802.1p style)
  int frag_index = 0;           ///< 0-based fragment number
  int frag_count = 1;           ///< fragments of this packet
  ethernet::Bits wire_bits = 0; ///< on-the-wire footprint incl. overheads
};

/// Delivery bookkeeping for one packet.
struct PacketRecord {
  PacketId id;
  std::size_t frame_kind = 0;
  gmfnet::Time arrival;          ///< enqueue time at the source (response t0)
  gmfnet::Time delivered;        ///< when the last fragment reached the sink
  int frags_delivered = 0;
  int frag_count = 0;
  [[nodiscard]] bool complete() const {
    return frags_delivered == frag_count;
  }
  [[nodiscard]] gmfnet::Time response() const { return delivered - arrival; }
};

}  // namespace gmfnet::sim
