#include "ethernet/framing.hpp"

#include <cassert>

namespace gmfnet::ethernet {

namespace {
/// ceil(a / b) for non-negative a, positive b, without overflow for the
/// magnitudes used here.
std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// ceil(bits * 1e12 / speed) via 128-bit intermediate: bits can reach ~5e5
/// and 1e12 multiplier would overflow int64 only past ~9e6 bits, but staying
/// in 128 bits keeps this correct for any datagram/burst size a caller might
/// aggregate.
Time ceil_bits_over_speed(Bits bits, LinkSpeedBps speed) {
  assert(speed > 0);
  assert(bits >= 0);
  const __int128 num = static_cast<__int128>(bits) * 1'000'000'000'000LL;
  const __int128 q = (num + speed - 1) / speed;
  return Time(static_cast<Time::rep>(q));
}
}  // namespace

Bits udp_datagram_bits(Bits payload_bits, bool rtp) {
  assert(payload_bits >= 0);
  // eq: nbits = ceil(S/8)*8 + 8*8 (+ 16*8 with RTP)
  Bits nbits = ceil_div(payload_bits, 8) * 8 + kUdpHeaderBits;
  if (rtp) nbits += kRtpHeaderBits;
  return nbits;
}

std::int64_t fragment_count(Bits nbits) {
  assert(nbits >= 0);
  if (nbits == 0) return 1;
  return ceil_div(nbits, kDataBitsPerFrame);
}

Bits fragment_wire_bits(Bits nbits, std::int64_t idx) {
  const std::int64_t n = fragment_count(nbits);
  assert(idx >= 0 && idx < n);
  if (idx + 1 < n) return kMaxFrameWireBits;
  // Trailing fragment: remaining data + its own IP header + L2 overhead.
  const Bits rem = nbits - idx * kDataBitsPerFrame;
  if (rem == kDataBitsPerFrame) return kMaxFrameWireBits;
  return rem + kIpHeaderBits + kL2OverheadBits;
}

Bits datagram_wire_bits(Bits nbits) {
  const std::int64_t n = fragment_count(nbits);
  Bits total = (n - 1) * kMaxFrameWireBits;
  total += fragment_wire_bits(nbits, n - 1);
  return total;
}

Time transmission_time(Bits nbits, LinkSpeedBps speed) {
  return ceil_bits_over_speed(datagram_wire_bits(nbits), speed);
}

Time wire_time(Bits wire_bits, LinkSpeedBps speed) {
  return ceil_bits_over_speed(wire_bits, speed);
}

Time max_frame_transmission_time(LinkSpeedBps speed) {
  return ceil_bits_over_speed(kMaxFrameWireBits, speed);
}

std::vector<Bits> fragment_layout(Bits nbits) {
  const std::int64_t n = fragment_count(nbits);
  std::vector<Bits> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    out.push_back(fragment_wire_bits(nbits, i));
  }
  return out;
}

}  // namespace gmfnet::ethernet
