// Wire-format constants from §3.1 of the paper.
//
// An Ethernet frame carries at most 1500 bytes of payload; 20 of those are
// the IP header, leaving 1480 bytes (= 11840 bits) of transport data per
// frame.  On the wire the frame additionally occupies 14 bytes of Ethernet
// header, 4 bytes of CRC, 8 bytes of preamble + start-frame delimiter, and
// 12 byte-times of inter-frame gap — 38 bytes = 304 bits of L2 overhead —
// for a maximum wire footprint of 1500*8 + 304 = 12304 bits, the paper's
// "maximum size of an Ethernet frame".
#pragma once

#include <cstdint>

namespace gmfnet::ethernet {

using Bits = std::int64_t;

inline constexpr Bits kUdpHeaderBits = 8 * 8;     ///< 8-byte UDP header
inline constexpr Bits kRtpHeaderBits = 16 * 8;    ///< 16-byte RTP header
inline constexpr Bits kIpHeaderBits = 20 * 8;     ///< 20-byte IPv4 header

inline constexpr Bits kEthPayloadBits = 1500 * 8;  ///< MTU payload
/// Transport data per Ethernet frame after the per-fragment IP header.
inline constexpr Bits kDataBitsPerFrame = kEthPayloadBits - kIpHeaderBits;
static_assert(kDataBitsPerFrame == 11840);

inline constexpr Bits kEthHeaderBits = 14 * 8;
inline constexpr Bits kEthCrcBits = 4 * 8;
inline constexpr Bits kEthPreambleSfdBits = 8 * 8;
inline constexpr Bits kEthInterFrameGapBits = 12 * 8;
/// Total L2 overhead per frame on the wire (304 bits).
inline constexpr Bits kL2OverheadBits =
    kEthHeaderBits + kEthCrcBits + kEthPreambleSfdBits + kEthInterFrameGapBits;
static_assert(kL2OverheadBits == 304);

/// Wire footprint of a maximum-size Ethernet frame (12304 bits, eq (1)).
inline constexpr Bits kMaxFrameWireBits = kEthPayloadBits + kL2OverheadBits;
static_assert(kMaxFrameWireBits == 12304);

/// Maximum UDP payload (IPv4 total-length limit minus IP+UDP headers).
inline constexpr Bits kMaxUdpPayloadBytes = 65535 - 20 - 8;

/// The 4-byte 802.1Q tag that carries the 802.1p priority code point.
///
/// Fidelity note (see DESIGN.md): the paper prices Ethernet frames at
/// 12304 bits while relying on 802.1p priorities, which on the wire live
/// in this tag — strictly, priority-tagged frames occupy
/// kMaxFrameWireBits + kVlanTagBits = 12336 bits.  We follow the paper's
/// arithmetic (the anchors 12304/11840 are pinned by the text); the
/// constant quantifies the ~0.26% underestimate for deployments that tag.
inline constexpr Bits kVlanTagBits = 4 * 8;
static_assert(kMaxFrameWireBits + kVlanTagBits == 12336);

}  // namespace gmfnet::ethernet
