#include "ethernet/pcp.hpp"

#include <algorithm>
#include <cassert>
#include <map>

namespace gmfnet::ethernet {

std::vector<Pcp> quantize_priorities(
    const std::vector<std::int64_t>& priorities, int levels) {
  assert(levels >= 2 && levels <= kMaxPcpLevels);
  std::vector<Pcp> out(priorities.size(), 0);
  if (priorities.empty()) return out;

  // Rank the distinct priority values.
  std::vector<std::int64_t> distinct(priorities);
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());

  const auto d = static_cast<std::int64_t>(distinct.size());
  std::map<std::int64_t, Pcp> clazz;
  for (std::int64_t r = 0; r < d; ++r) {
    // Spread ranks evenly over the available levels, lowest rank -> class 0.
    const auto c = static_cast<Pcp>(
        std::min<std::int64_t>(levels - 1, r * levels / std::max<std::int64_t>(d, 1)));
    clazz[distinct[static_cast<std::size_t>(r)]] = c;
  }
  for (std::size_t i = 0; i < priorities.size(); ++i) {
    out[i] = clazz[priorities[i]];
  }
  return out;
}

bool quantization_is_lossless(const std::vector<std::int64_t>& priorities,
                              const std::vector<Pcp>& pcp) {
  assert(priorities.size() == pcp.size());
  for (std::size_t i = 0; i < priorities.size(); ++i) {
    for (std::size_t j = 0; j < priorities.size(); ++j) {
      if (priorities[i] < priorities[j] && pcp[i] >= pcp[j]) return false;
    }
  }
  return true;
}

}  // namespace gmfnet::ethernet
