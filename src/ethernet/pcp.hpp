// IEEE 802.1p priority code points.
//
// The paper targets commodity switches that "support 2-8 priority levels and
// can operate according to the IEEE 802.1p standard".  Analysis-side flow
// priorities are arbitrary integers (larger = more urgent); this module maps
// them onto the limited number of hardware levels a given switch exposes,
// which is what an operator deploying the admission controller would do.
#pragma once

#include <cstdint>
#include <vector>

namespace gmfnet::ethernet {

/// Priority code point: 0..7, larger is more urgent (as in 802.1p).
using Pcp = std::int8_t;

inline constexpr int kMaxPcpLevels = 8;

/// Quantizes arbitrary analysis priorities onto `levels` hardware classes
/// (2 <= levels <= 8).  Input priorities are ranked; ranks are split into
/// `levels` contiguous groups as evenly as possible, preserving order:
/// output[i] in [0, levels) and prio[i] >= prio[j] => output[i] >= output[j].
[[nodiscard]] std::vector<Pcp> quantize_priorities(
    const std::vector<std::int64_t>& priorities, int levels);

/// True when the quantization preserved all *strict* orderings, i.e. no two
/// distinct priorities were merged into one class.  With more distinct
/// priorities than levels this is necessarily false; the admission
/// controller then re-runs the analysis with the merged classes.
[[nodiscard]] bool quantization_is_lossless(
    const std::vector<std::int64_t>& priorities, const std::vector<Pcp>& pcp);

}  // namespace gmfnet::ethernet
