// Packetization: UDP payload -> fragment layout -> per-link transmission
// time, implementing §3.1 of the paper ("Basic parameters").
#pragma once

#include <cstdint>
#include <vector>

#include "ethernet/constants.hpp"
#include "util/time.hpp"

namespace gmfnet::ethernet {

/// Link bitrate in bits per second.
using LinkSpeedBps = std::int64_t;

/// `nbits_i^k`: the size of the UDP datagram (payload padded to whole bytes
/// plus the 8-byte UDP header, plus the 16-byte RTP header when RTP is
/// used).  The IP header is NOT included here — it is added per fragment,
/// because IP fragmentation prepends a fresh IP header to every fragment.
[[nodiscard]] Bits udp_datagram_bits(Bits payload_bits, bool rtp = false);

/// Number of Ethernet frames needed to carry a UDP datagram of `nbits`
/// transport bits (ceil(nbits / 11840), minimum 1: a zero-payload datagram
/// still occupies one frame).
[[nodiscard]] std::int64_t fragment_count(Bits nbits);

/// Wire bits of fragment `idx` (0-based) of a datagram of `nbits` bits.
/// Full fragments occupy 12304 bits; a trailing partial fragment occupies
/// its data bits + IP header (160) + L2 overhead (304).  See DESIGN.md
/// correction #1.
[[nodiscard]] Bits fragment_wire_bits(Bits nbits, std::int64_t idx);

/// Total wire bits of the whole datagram (sum over fragments).
[[nodiscard]] Bits datagram_wire_bits(Bits nbits);

/// `C_i^k,link`: transmission time of the whole datagram on a link of the
/// given speed; exact integer picoseconds, rounded up per fragment so the
/// result is an upper bound.
[[nodiscard]] Time transmission_time(Bits nbits, LinkSpeedBps speed);

/// Transmission time of `wire_bits` raw bits on a link (ceil to ps).
[[nodiscard]] Time wire_time(Bits wire_bits, LinkSpeedBps speed);

/// `MFT(link)`: Maximum-Frame-Transmission-Time, eq (1): 12304 bits at the
/// link speed.  This is the non-preemptive blocking quantum of the egress
/// analysis.
[[nodiscard]] Time max_frame_transmission_time(LinkSpeedBps speed);

/// Convenience: per-fragment wire bit layout of a datagram.
[[nodiscard]] std::vector<Bits> fragment_layout(Bits nbits);

}  // namespace gmfnet::ethernet
