// Stride scheduling (Waldspurger & Weihl, 1995), as used by Click to share
// the switch CPU among the per-interface ingress/egress tasks (§2.2).
//
// Each task has `tickets`; its stride is STRIDE1 / tickets.  The dispatcher
// repeatedly runs the task with the smallest pass and advances that task's
// pass by its stride.  With equal tickets this degenerates to round-robin —
// the configuration the paper (and Click's default) assumes — but the full
// proportional-share mechanism is implemented and tested.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gmfnet::switchsim {

class StrideScheduler {
 public:
  /// The "large integer constant" of the algorithm.  2^20 as in the original
  /// tech report; any value much larger than the max ticket count works.
  static constexpr std::int64_t kStride1 = 1 << 20;

  /// Adds a task with the given ticket count (>= 1); returns its index.
  std::size_t add_task(std::int64_t tickets, std::string name = {});

  [[nodiscard]] std::size_t task_count() const { return tasks_.size(); }
  [[nodiscard]] std::int64_t tickets(std::size_t task) const {
    return tasks_[task].tickets;
  }
  [[nodiscard]] std::int64_t pass(std::size_t task) const {
    return tasks_[task].pass;
  }
  [[nodiscard]] const std::string& name(std::size_t task) const {
    return tasks_[task].name;
  }

  /// Selects the next task to run (smallest pass; ties by lowest index, a
  /// deterministic stand-in for the unspecified tie-break) and advances its
  /// pass by its stride.  Requires at least one task.
  std::size_t dispatch();

  /// Resets all passes to their strides, as at boot.
  void reset();

 private:
  struct Task {
    std::int64_t tickets;
    std::int64_t stride;
    std::int64_t pass;
    std::string name;
  };
  std::vector<Task> tasks_;
};

}  // namespace gmfnet::switchsim
