#include "switchsim/switch_model.hpp"

#include <stdexcept>

#include "ethernet/framing.hpp"

namespace gmfnet::switchsim {

gmfnet::Time circ(int ninterfaces, gmfnet::Time croute, gmfnet::Time csend) {
  if (ninterfaces < 1) {
    throw std::invalid_argument("circ: ninterfaces must be >= 1");
  }
  return static_cast<gmfnet::Time::rep>(ninterfaces) * (croute + csend);
}

int interfaces_per_processor(int ninterfaces, int processors) {
  if (ninterfaces < 1 || processors < 1) {
    throw std::invalid_argument("interfaces_per_processor: bad arguments");
  }
  return (ninterfaces + processors - 1) / processors;
}

gmfnet::Time circ_multiproc(int ninterfaces, int processors,
                            gmfnet::Time croute, gmfnet::Time csend) {
  return circ(interfaces_per_processor(ninterfaces, processors), croute,
              csend);
}

gmfnet::Time circ_of(const net::Network& net, net::NodeId n) {
  const net::Node& node = net.node(n);
  if (node.kind != net::NodeKind::kSwitch) {
    throw std::invalid_argument("circ_of: node " + node.name +
                                " is not a switch");
  }
  return circ_multiproc(net.ninterfaces(n), node.sw.processors,
                        node.sw.croute, node.sw.csend);
}

bool sustains_linkspeed(gmfnet::Time circ_value,
                        ethernet::LinkSpeedBps speed_bps) {
  return circ_value < ethernet::max_frame_transmission_time(speed_bps);
}

}  // namespace gmfnet::switchsim
