// Static timing model of a software-implemented Ethernet switch (§3.3 and
// the multiprocessor discussion in the Conclusions).
//
// One CPU runs, under round-robin stride scheduling, one ingress task
// (cost CROUTE) and one egress task (cost CSEND) per network interface, so a
// given task is serviced once every
//   CIRC(N) = NINTERFACES(N) * (CROUTE(N) + CSEND(N)).
// With m CPUs and NINTERFACES divisible by m, interfaces are partitioned
// over the CPUs (both tasks of an interface stay together), shrinking the
// effective per-CPU interface count and hence CIRC.
#pragma once

#include "net/network.hpp"
#include "util/time.hpp"

namespace gmfnet::switchsim {

/// CIRC for an explicit interface count and task costs, single CPU.
[[nodiscard]] gmfnet::Time circ(int ninterfaces, gmfnet::Time croute,
                                gmfnet::Time csend);

/// Interfaces served by each CPU when `ninterfaces` are partitioned over
/// `processors` CPUs: ceil(ninterfaces / processors) (the worst-loaded CPU
/// determines the service period; equals the paper's NINTERFACES/m when
/// divisible).
[[nodiscard]] int interfaces_per_processor(int ninterfaces, int processors);

/// CIRC with the multiprocessor partitioning applied.
[[nodiscard]] gmfnet::Time circ_multiproc(int ninterfaces, int processors,
                                          gmfnet::Time croute,
                                          gmfnet::Time csend);

/// CIRC(N) for a switch node in a network (uses the node's SwitchParams and
/// its interface count).  Throws std::invalid_argument if N is not a switch.
[[nodiscard]] gmfnet::Time circ_of(const net::Network& net, net::NodeId n);

/// A switch keeps up with a link at `speed_bps` when it can hand the NIC a
/// new frame at least as fast as minimum-size... — the paper's Conclusions
/// use the *maximum* frame: the switch "comfortably deals with" the link
/// when CIRC(N) < MFT(link), i.e. the egress task is guaranteed a service
/// within every frame transmission.  This predicate implements that check.
[[nodiscard]] bool sustains_linkspeed(gmfnet::Time circ_value,
                                      ethernet::LinkSpeedBps speed_bps);

}  // namespace gmfnet::switchsim
