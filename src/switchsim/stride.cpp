#include "switchsim/stride.hpp"

#include <cassert>
#include <stdexcept>

namespace gmfnet::switchsim {

std::size_t StrideScheduler::add_task(std::int64_t tickets, std::string name) {
  if (tickets < 1) {
    throw std::invalid_argument("StrideScheduler: tickets must be >= 1");
  }
  Task t;
  t.tickets = tickets;
  t.stride = kStride1 / tickets;
  // "When the system boots, the pass of a task is initialized to its stride."
  t.pass = t.stride;
  t.name = std::move(name);
  tasks_.push_back(std::move(t));
  return tasks_.size() - 1;
}

std::size_t StrideScheduler::dispatch() {
  assert(!tasks_.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < tasks_.size(); ++i) {
    if (tasks_[i].pass < tasks_[best].pass) best = i;
  }
  tasks_[best].pass += tasks_[best].stride;
  return best;
}

void StrideScheduler::reset() {
  for (Task& t : tasks_) t.pass = t.stride;
}

}  // namespace gmfnet::switchsim
