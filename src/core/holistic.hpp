// Holistic analysis ("Putting it all together", §3.5): iterate the Figure-6
// algorithm over all flows, feeding each stage's response time back as the
// downstream generalized jitter, until the jitter map reaches a fixed point.
//
// The outer loop is owned by a pluggable solver strategy (SolverOptions):
//   * kPlain (default): plain sweeps — Gauss-Seidel (flows analysed in
//     sequence against the live map) or Jacobi (all flows against a frozen
//     snapshot, embarrassingly parallel over a thread pool; same fixed
//     point).  Bit-identical to the historical behaviour.
//   * kAnderson: Anderson(m)/EDIIS(1) acceleration over the jitter-map
//     residual, safeguarded so the fixed point reached is the same as the
//     plain iteration's (see SolverOptions for the contract).  Applies to
//     Gauss-Seidel sweeps; Jacobi whole-set runs stay plain.
// The convergence bench (E8 + the near-saturation section of
// bench_holistic_convergence) compares the strategies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "core/context.hpp"
#include "core/end_to_end.hpp"

namespace gmfnet::core {

enum class SweepOrder { kGaussSeidel, kJacobi };

/// Which strategy owns the outer fixed-point loop.
enum class SolverMode : std::uint8_t {
  kPlain = 0,     ///< plain monotone sweeps (the bit-identical default)
  kAnderson = 1,  ///< safeguarded Anderson(m) over the jitter-map residual
};

/// Iteration-strategy knobs of the holistic solve.  `mode` selects the
/// strategy; the remaining fields tune kAnderson and are ignored by kPlain.
///
/// Safeguard contract (kAnderson): the iteration maintains the Kleene
/// climb-from-below invariant.  An accelerated iterate y is formed from the
/// plain iterate g by extrapolating along the Anderson direction, clamped
/// per entry to the smaller of cap plain steps and a conservative Aitken
/// remaining-distance estimate (entries the last sweep left unchanged are
/// never perturbed), and *speculatively* injected.  The next plain sweep
/// z = G(y) is the acceptance check: y is kept only when z >= y
/// componentwise AND the sweep strictly advanced at least one entry (a
/// sweep that leaves the speculative iterate untouched would be certifying
/// its own landing — only a plain climb may declare convergence).  On
/// rejection — including a diverging sweep — the solve rolls back to the
/// saved pre-injection map, re-analyses every dirty flow, and continues
/// plainly; after `max_rejects` rejections acceleration is disabled for the
/// rest of the solve.  An adaptive damping factor backs off 4x per
/// rejection and regrows 2x per acceptance.
///
/// What the certificate guarantees depends on the structure of the
/// iterated interference graph (edge j -> i when j can interfere with i on
/// a shared link AND j's jitter there is itself produced by the iteration):
///
///   * Acyclic graph — in particular whenever iterated flows sharing links
///     have distinct priorities: the sweep operator has a UNIQUE fixed
///     point, and the acceptance check proves y lies at or below it by
///     induction over the dependency order.  The accelerated solve is
///     therefore bit-identical to plain Gauss-Seidel: same verdicts, same
///     response times, same jitter maps.  This is the only regime in which
///     acceleration engages by default; the graph is checked per solve.
///
///   * Cyclic graph (equal-priority flows sharing links both ways): the
///     staircase operator can have several fixed points near saturation,
///     and a speculative overshoot can be self-confirming, so no local
///     certificate can prove least-ness.  By default the driver detects
///     the cycle and stays plain (identity preserved trivially).  Setting
///     `accept_cyclic` opts into acceleration anyway: every result is still
///     a certified fixed point of the plain sweep operator and hence a
///     sound, conservative upper bound on the least fixed point (responses
///     never under-estimated, verdicts never optimistic), but near-critical
///     cycles may converge a few interference quanta above the least fixed
///     point.  The convergence bench exercises this mode explicitly.
///
/// Convergence is only ever declared on a plain sweep that changed
/// nothing, so the returned map is a genuine fixed point either way.
/// tests/test_solver_equivalence.cpp asserts result identity against
/// kPlain across randomized scenarios (acyclic by construction), the
/// forced-rejection path, and the cyclic opt-in's conservatism.
struct SolverOptions {
  SolverMode mode = SolverMode::kPlain;
  int m = 1;              ///< Anderson history depth (residual differences)
  int warmup_sweeps = 3;  ///< plain sweeps before the first proposal (the
                          ///< ratio clamp needs >= 4 recorded iterates, so
                          ///< proposals start at sweep 4 regardless)
  int plain_between = 1;  ///< plain sweeps between successive proposals
  double cap = 8.0;       ///< per-entry extrapolation cap, in units of the
                          ///< entry's last plain step (g - x)
  double gain = 1.0;      ///< extrapolation scaling; > 1 overshoots on
                          ///< purpose (test hook for the safeguard path)
  int max_rejects = 6;    ///< safeguard rejections before acceleration is
                          ///< disabled for the remainder of the solve
  /// Accelerate even when the iterated interference graph is cyclic (see
  /// the contract above): results stay certified fixed points and sound
  /// upper bounds, but exact least-fixed-point identity is no longer
  /// guaranteed near criticality.  Off by default.
  bool accept_cyclic = false;

  bool operator==(const SolverOptions&) const = default;
};

/// Parses a --solver style spec into `out`: "plain", "anderson", or
/// "anderson:M" with M in [1, 8] (e.g. "anderson:2").  Returns false (and
/// leaves `out` untouched) on anything else.
bool parse_solver_spec(std::string_view spec, SolverOptions& out);

/// SolverOptions from the GMFNET_SOLVER environment variable (same spec
/// grammar), or the default when unset/empty.  Malformed values throw
/// std::runtime_error — CI forcing acceleration on must not silently run
/// plain.  Test suites build their options through this so the ASan/TSan
/// jobs can re-run them with acceleration forced on.
[[nodiscard]] SolverOptions solver_options_from_env();

/// Typed non-owning warm-start handle: seed the iteration from a previously
/// converged map instead of JitterMap::initial(ctx).
///
/// Lifetime contract: the view borrows the map — the referenced JitterMap
/// must outlive every solve the view is passed to, and must not be mutated
/// while a solve reads it.  The solve copies the map's state on entry
/// (copy-on-write, one pointer per flow), so the borrow ends when the call
/// returns.
///
/// Soundness contract: seeding is sound whenever the seed lies at or below
/// the least fixed point of the sweep operator — e.g. the converged map of
/// the same flow set minus some flows (interference only grew, so the old
/// fixed point is a valid under-approximation and the iteration converges
/// to the *same* least fixed point, in far fewer sweeps).
class WarmStartView {
 public:
  /// Disengaged: the solve starts from JitterMap::initial(ctx).
  WarmStartView() = default;
  /// Borrows `seed` (not owned; see the lifetime contract above).
  explicit WarmStartView(const JitterMap& seed) : map_(&seed) {}

  [[nodiscard]] bool engaged() const { return map_ != nullptr; }
  /// The borrowed seed; only meaningful when engaged().
  [[nodiscard]] const JitterMap& map() const { return *map_; }

 private:
  const JitterMap* map_ = nullptr;
};

struct HolisticOptions {
  HopOptions hop;                 ///< per-hop options (horizon, ablations)
  int max_sweeps = 64;            ///< fixed-point sweep cap
  SweepOrder order = SweepOrder::kGaussSeidel;
  std::size_t threads = 0;        ///< Jacobi worker threads (0 = hardware)
  /// Warm start for whole-set solves (see WarmStartView for the lifetime
  /// and soundness contracts).  Disengaged: start from the initial map.
  WarmStartView warm_start;
  /// Iteration strategy (fingerprinted by checkpoints: restored fixed
  /// points must have been produced under the same mode).
  SolverOptions solver;
};

struct HolisticResult {
  /// True when the jitter map reached a fixed point with every per-hop
  /// analysis converging.
  bool converged = false;
  /// True when `converged` and every frame of every flow meets its deadline
  /// — the admission controller's verdict.
  bool schedulable = false;
  int sweeps = 0;                 ///< sweeps executed (including the last,
                                  ///< unchanged one when converged)
  std::vector<FlowResult> flows;  ///< per-flow results of the final sweep
  JitterMap jitters;              ///< the fixed-point jitter map

  /// Worst end-to-end bound of a flow (Time::max() if it diverged).
  [[nodiscard]] gmfnet::Time worst_response(FlowId i) const {
    return flows[static_cast<std::size_t>(i.v)].worst_response();
  }
};

/// For each flow, the ids of all other flows sharing at least one route
/// link with it — the exact read-set of its per-sweep analysis (every
/// interferer of every stage lives on one of the flow's route links).  The
/// sweep skip logic of solve_holistic and the engine's incremental runs
/// re-analyse a flow only when it or a neighbor changed in the window since
/// its last analysis.
[[nodiscard]] std::vector<std::vector<FlowId>> link_neighbors(
    const AnalysisContext& ctx);

/// Counters of one solve (engine instrumentation).
struct IncrementalStats {
  std::size_t flow_analyses = 0;   ///< per-flow per-sweep analyses executed
  std::size_t sweeps = 0;          ///< sweeps executed
  std::size_t accel_accepted = 0;  ///< accelerated iterates kept
  std::size_t accel_rejected = 0;  ///< safeguard rollbacks to a plain sweep
};

/// One solve, described as a request.  This is the single solver entry
/// point: whole-set analyses and the engine's restricted shard/probe solves
/// are the same request with different dirty sets, so iteration strategies
/// are added in one place (solve_holistic) and every caller gets them.
struct SolveRequest {
  /// Flows to (re-)analyse, indexed by flow id; null means every flow of
  /// the context (a whole-set solve).  When non-null, clean (false) flows
  /// are never analysed or written — their entries in `start` must already
  /// sit at the (unchanged) fixed point, which makes the run bit-identical
  /// to a whole-set solve on the same context (both reach the unique least
  /// fixed point; see WarmStartView).  Borrowed; must outlive the call.
  const std::vector<bool>* dirty = nullptr;
  /// Seed map.  Whole-set requests may leave it disengaged (the initial
  /// map); restricted requests must engage it (std::logic_error otherwise —
  /// clean flows' fixed points cannot be conjured from nothing).
  WarmStartView start;
};

/// Runs the holistic fixed point described by `req` under `opts`.
///
/// Whole-set requests (`req.dirty == nullptr`) honor `opts.order` and
/// finalize `schedulable` over all flows.  Restricted requests force
/// Gauss-Seidel sweeps, leave clean flows' `flows` entries
/// default-constructed and `schedulable` false: the caller owns adopting
/// its cached FlowResults for clean flows and finalizing the verdict
/// (skipped when `converged` is false).  `opts.warm_start` is ignored in
/// favour of `req.start`.
///
/// Anderson acceleration (opts.solver) applies to every Gauss-Seidel solve;
/// accepted/rejected proposals are counted in `stats` when provided.
[[nodiscard]] HolisticResult solve_holistic(const AnalysisContext& ctx,
                                            const SolveRequest& req,
                                            const HolisticOptions& opts,
                                            IncrementalStats* stats = nullptr);

/// Whole-set convenience wrapper: solve_holistic with every flow dirty,
/// seeded from `opts.warm_start`.
[[nodiscard]] HolisticResult analyze_holistic(const AnalysisContext& ctx,
                                              const HolisticOptions& opts = {});

/// Restricted-solve compatibility wrapper: solve_holistic over `dirty`,
/// seeded from `start`.  `opts.order` and `opts.warm_start` are ignored
/// (the run is Gauss-Seidel from `start` by construction).
[[nodiscard]] HolisticResult analyze_holistic_dirty(
    const AnalysisContext& ctx, const std::vector<bool>& dirty,
    JitterMap start, const HolisticOptions& opts,
    IncrementalStats* stats = nullptr);

}  // namespace gmfnet::core
