// Holistic analysis ("Putting it all together", §3.5): iterate the Figure-6
// algorithm over all flows, feeding each stage's response time back as the
// downstream generalized jitter, until the jitter map reaches a fixed point.
//
// Two sweep orders are provided:
//   * Gauss-Seidel (default): flows are analysed in sequence against the
//     live jitter map — fewer sweeps, inherently serial.
//   * Jacobi: all flows are analysed against a frozen snapshot and the new
//     jitters installed afterwards — embarrassingly parallel across flows
//     (thread pool), same fixed point (both iterate a monotone operator
//     from the same start).
// The convergence bench (E8) compares the two.
#pragma once

#include <cstddef>
#include <vector>

#include "core/context.hpp"
#include "core/end_to_end.hpp"

namespace gmfnet::core {

enum class SweepOrder { kGaussSeidel, kJacobi };

struct HolisticOptions {
  HopOptions hop;                 ///< per-hop options (horizon, ablations)
  int max_sweeps = 64;            ///< fixed-point sweep cap
  SweepOrder order = SweepOrder::kGaussSeidel;
  std::size_t threads = 0;        ///< Jacobi worker threads (0 = hardware)
  /// Warm start: seed the iteration from this map instead of
  /// JitterMap::initial(ctx).  Sound whenever the seed lies at or below the
  /// least fixed point of the sweep operator — e.g. the converged map of the
  /// same flow set minus some flows (interference only grew, so the old
  /// fixed point is a valid under-approximation and the iteration converges
  /// to the *same* least fixed point, in far fewer sweeps).  Not owned; must
  /// outlive the analyze_holistic call.
  const JitterMap* initial_jitters = nullptr;
};

struct HolisticResult {
  /// True when the jitter map reached a fixed point with every per-hop
  /// analysis converging.
  bool converged = false;
  /// True when `converged` and every frame of every flow meets its deadline
  /// — the admission controller's verdict.
  bool schedulable = false;
  int sweeps = 0;                 ///< sweeps executed (including the last,
                                  ///< unchanged one when converged)
  std::vector<FlowResult> flows;  ///< per-flow results of the final sweep
  JitterMap jitters;              ///< the fixed-point jitter map

  /// Worst end-to-end bound of a flow (Time::max() if it diverged).
  [[nodiscard]] gmfnet::Time worst_response(FlowId i) const {
    return flows[static_cast<std::size_t>(i.v)].worst_response();
  }
};

/// For each flow, the ids of all other flows sharing at least one route
/// link with it — the exact read-set of its per-sweep analysis (every
/// interferer of every stage lives on one of the flow's route links).  The
/// sweep skip logic of analyze_holistic and the engine's incremental runs
/// re-analyse a flow only when it or a neighbor changed in the window since
/// its last analysis.
[[nodiscard]] std::vector<std::vector<FlowId>> link_neighbors(
    const AnalysisContext& ctx);

/// Runs the holistic fixed point on the whole flow set of `ctx`.
[[nodiscard]] HolisticResult analyze_holistic(const AnalysisContext& ctx,
                                              const HolisticOptions& opts = {});

/// Counters of one restricted run (engine instrumentation).
struct IncrementalStats {
  std::size_t flow_analyses = 0;  ///< per-flow per-sweep analyses executed
  std::size_t sweeps = 0;         ///< sweeps executed
};

/// The per-shard / per-probe solve entry point: Gauss-Seidel holistic fixed
/// point restricted to the `dirty` flows of `ctx`, iterated from `start`.
/// Clean flows are never analysed or written — their entries in `start`
/// must already sit at the (unchanged) fixed point, which makes the run
/// bit-identical to a whole-set analyze_holistic on the same context (both
/// reach the unique least fixed point; see the warm-start note on
/// HolisticOptions::initial_jitters).  With every flow dirty and `start`
/// the initial map, this *is* the cold Gauss-Seidel run.
///
/// On return, `flows` entries of clean flows are default-constructed and
/// `schedulable` is left false: the caller owns adopting its cached
/// FlowResults for clean flows and finalizing the schedulability verdict
/// (skipped when `converged` is false).  `opts.order` and
/// `opts.initial_jitters` are ignored (the run is Gauss-Seidel from
/// `start` by construction).
[[nodiscard]] HolisticResult analyze_holistic_dirty(
    const AnalysisContext& ctx, const std::vector<bool>& dirty,
    JitterMap start, const HolisticOptions& opts,
    IncrementalStats* stats = nullptr);

}  // namespace gmfnet::core
