// The admission controller of §3.5: a flow is accepted iff, with the flow
// added, the holistic analysis converges and every frame of every flow
// (existing and new) still meets its end-to-end deadline.
#pragma once

#include <optional>
#include <vector>

#include "core/holistic.hpp"
#include "gmf/flow.hpp"
#include "net/network.hpp"

namespace gmfnet::core {

class AdmissionController {
 public:
  explicit AdmissionController(net::Network network,
                               HolisticOptions opts = {});

  /// Tests `flow` against the currently admitted set.  On acceptance the
  /// flow joins the set and the full holistic result is returned; on
  /// rejection the admitted set is unchanged and std::nullopt is returned.
  std::optional<HolisticResult> try_admit(gmf::Flow flow);

  /// Removes a previously admitted flow by index (order of admission);
  /// subsequent indices shift down.  Removal never invalidates guarantees,
  /// so no re-analysis is needed.
  void remove(std::size_t index);

  [[nodiscard]] const std::vector<gmf::Flow>& admitted() const {
    return flows_;
  }
  [[nodiscard]] std::size_t admitted_count() const { return flows_.size(); }
  [[nodiscard]] std::size_t rejected_count() const { return rejected_; }

  /// Holistic result for the currently admitted set (recomputed on demand;
  /// nullopt when no flow is admitted).
  [[nodiscard]] std::optional<HolisticResult> current_guarantees() const;

  [[nodiscard]] const net::Network& network() const { return net_; }

 private:
  net::Network net_;
  HolisticOptions opts_;
  std::vector<gmf::Flow> flows_;
  std::size_t rejected_ = 0;
};

}  // namespace gmfnet::core
