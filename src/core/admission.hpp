// The admission controller of §3.5: a flow is accepted iff, with the flow
// added, the holistic analysis converges and every frame of every flow
// (existing and new) still meets its end-to-end deadline.
//
// The controller is a thin policy wrapper over engine::AnalysisEngine: the
// engine keeps the analysis world (parameter caches, converged jitter fixed
// point) alive between arrivals, so each decision re-analyses only the
// component the candidate actually touches, warm-started from the previous
// fixed point — instead of rebuilding the world per query.
//
// Layering note: this header stays in core/ for API stability (the
// controller predates the engine), but it sits logically in the engine
// layer — core's analyses never depend on it.
#pragma once

#include <optional>
#include <vector>

#include "core/holistic.hpp"
#include "engine/analysis_engine.hpp"
#include "gmf/flow.hpp"
#include "net/network.hpp"

namespace gmfnet::core {

class AdmissionController {
 public:
  explicit AdmissionController(net::Network network,
                               HolisticOptions opts = {});

  /// Tests `flow` against the currently admitted set.  On acceptance the
  /// flow joins the set and the full holistic result is returned; on
  /// rejection the admitted set is unchanged and std::nullopt is returned.
  std::optional<HolisticResult> try_admit(gmf::Flow flow);

  /// Removes a previously admitted flow by index (order of admission);
  /// subsequent indices shift down.  Returns false (and changes nothing)
  /// when `index` does not name an admitted flow.  Removal never
  /// invalidates guarantees, so no re-analysis happens here.
  bool remove(std::size_t index);

  [[nodiscard]] const std::vector<gmf::Flow>& admitted() const {
    return admitted_;
  }
  [[nodiscard]] std::size_t admitted_count() const {
    return admitted_.size();
  }
  [[nodiscard]] std::size_t rejected_count() const { return rejected_; }

  /// Holistic result for the currently admitted set (served from the
  /// engine's cache, recomputed incrementally when stale; nullopt when no
  /// flow is admitted).
  [[nodiscard]] std::optional<HolisticResult> current_guarantees() const;

  [[nodiscard]] const net::Network& network() const {
    return engine_.network();
  }

  /// The underlying incremental engine (exposed for instrumentation).
  [[nodiscard]] const engine::AnalysisEngine& engine() const {
    return engine_;
  }

 private:
  /// mutable: current_guarantees() is logically const but may refresh the
  /// engine's memoized result.
  mutable engine::AnalysisEngine engine_;
  /// Mirror of the engine's resident set, kept so admitted() can expose the
  /// flows as one contiguous vector.
  std::vector<gmf::Flow> admitted_;
  std::size_t rejected_ = 0;
};

}  // namespace gmfnet::core
