#include "core/admission.hpp"

namespace gmfnet::core {

AdmissionController::AdmissionController(net::Network network,
                                         HolisticOptions opts)
    : net_(std::move(network)), opts_(opts) {
  net_.validate();
}

std::optional<HolisticResult> AdmissionController::try_admit(gmf::Flow flow) {
  std::vector<gmf::Flow> candidate = flows_;
  candidate.push_back(std::move(flow));

  // AnalysisContext validates the candidate flow against the network; let
  // malformed flows surface as exceptions rather than "rejected".
  AnalysisContext ctx(net_, candidate);
  HolisticResult result = analyze_holistic(ctx, opts_);
  if (!result.schedulable) {
    ++rejected_;
    return std::nullopt;
  }
  flows_ = std::move(candidate);
  return result;
}

void AdmissionController::remove(std::size_t index) {
  if (index < flows_.size()) {
    flows_.erase(flows_.begin() + static_cast<std::ptrdiff_t>(index));
  }
}

std::optional<HolisticResult> AdmissionController::current_guarantees() const {
  if (flows_.empty()) return std::nullopt;
  AnalysisContext ctx(net_, flows_);
  return analyze_holistic(ctx, opts_);
}

}  // namespace gmfnet::core
