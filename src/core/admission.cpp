#include "core/admission.hpp"

namespace gmfnet::core {

AdmissionController::AdmissionController(net::Network network,
                                         HolisticOptions opts)
    : engine_(std::move(network), opts) {}

std::optional<HolisticResult> AdmissionController::try_admit(gmf::Flow flow) {
  // The engine validates the candidate against the network; malformed flows
  // surface as exceptions rather than "rejected".
  auto result = engine_.try_admit(flow);
  if (!result) {
    ++rejected_;
    return result;
  }
  admitted_.push_back(std::move(flow));
  return result;
}

bool AdmissionController::remove(std::size_t index) {
  if (!engine_.remove_flow(index)) return false;
  admitted_.erase(admitted_.begin() + static_cast<std::ptrdiff_t>(index));
  return true;
}

std::optional<HolisticResult> AdmissionController::current_guarantees() const {
  if (engine_.flow_count() == 0) return std::nullopt;
  return engine_.evaluate();
}

}  // namespace gmfnet::core
