// End-to-end response-time assembly: the algorithm of Figure 6.
//
// For a frame k of flow τ_i, walk the route and chain the three per-hop
// analyses, accumulating the response-time sum RSUM and the jitter sum JSUM;
// before each stage, the flow's own generalized jitter at that stage is set
// to the accumulated JSUM (lines 8/13/17), which is what downstream flows
// see as interference jitter during the holistic iteration.
#pragma once

#include <vector>

#include "core/context.hpp"
#include "core/hop_result.hpp"

namespace gmfnet::core {

/// One stage's contribution to a frame's end-to-end bound.
struct StageResponse {
  StageKey stage;
  HopResult hop;
};

/// End-to-end result for one frame of one flow.
struct FrameResult {
  /// R_i^k: upper bound on source-to-destination response time, including
  /// the source generalized jitter (Figure 6 line 3).  Meaningful only when
  /// `converged`.
  gmfnet::Time response = gmfnet::Time::zero();
  bool converged = false;
  /// True when `converged` and response <= the frame's deadline D_i^k.
  bool meets_deadline = false;
  std::vector<StageResponse> stages;
};

/// End-to-end result for all frames of one flow.
struct FlowResult {
  std::vector<FrameResult> frames;
  [[nodiscard]] bool all_converged() const;
  [[nodiscard]] bool schedulable() const;  ///< all frames meet deadlines
  /// Worst response over the frames (Time::max() if any diverged).
  [[nodiscard]] gmfnet::Time worst_response() const;
};

/// Runs Figure 6 for one frame.  Reads interference jitters from `jitters`
/// and *writes* flow i's own per-stage jitters into it (lines 8/13/17).
[[nodiscard]] FrameResult analyze_frame_end_to_end(const AnalysisContext& ctx,
                                                   JitterMap& jitters,
                                                   FlowId i, std::size_t frame,
                                                   const HopOptions& opts = {});

/// Runs Figure 6 for every frame of flow i.
[[nodiscard]] FlowResult analyze_flow_end_to_end(const AnalysisContext& ctx,
                                                 JitterMap& jitters, FlowId i,
                                                 const HopOptions& opts = {});

}  // namespace gmfnet::core
