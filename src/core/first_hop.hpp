// First-hop analysis, eqs (14)-(20).
//
// The source node is an arbitrary PC (or router): the operator cannot
// control its queueing discipline, so the only assumption is that the output
// link is *work-conserving*.  Consequently every flow sharing the first link
// interferes regardless of priority, and the bound is a busy-period analysis
// over the total demand MX of all flows on link(S, succ(τ_i, S)).
#pragma once

#include <cstddef>

#include "core/context.hpp"
#include "core/hop_result.hpp"

namespace gmfnet::core {

/// Precondition (20): total utilization of the first link < 1.
[[nodiscard]] bool first_hop_feasible(const AnalysisContext& ctx, FlowId i);

/// R_i^k,link(S, succ(τ_i, S)): response time of frame k of flow i on its
/// first link, from "all Ethernet frames enqueued at S" to "all received at
/// succ".  Includes the link propagation delay (eq 19).
///
/// `jitters` supplies extra_j (eq extra) for every interfering flow: the
/// maximum generalized jitter of flow j on this link as currently assumed by
/// the holistic iteration.
[[nodiscard]] HopResult analyze_first_hop(const AnalysisContext& ctx,
                                          const JitterMap& jitters, FlowId i,
                                          std::size_t frame,
                                          const HopOptions& opts = {});

}  // namespace gmfnet::core
