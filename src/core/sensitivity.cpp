#include "core/sensitivity.hpp"

#include <algorithm>
#include <cmath>

#include "ethernet/constants.hpp"

namespace gmfnet::core {

std::optional<std::vector<FlowSlack>> compute_slack(
    const AnalysisContext& ctx, const HolisticOptions& opts) {
  const HolisticResult res = analyze_holistic(ctx, opts);
  if (!res.converged) return std::nullopt;

  std::vector<FlowSlack> out;
  out.reserve(ctx.flow_count());
  for (std::size_t f = 0; f < ctx.flow_count(); ++f) {
    const FlowId id(static_cast<std::int32_t>(f));
    const gmf::Flow& flow = ctx.flow(id);
    FlowSlack s;
    s.flow = id;
    s.slack = gmfnet::Time::max();
    for (std::size_t k = 0; k < flow.frame_count(); ++k) {
      const FrameResult& fr = res.flows[f].frames[k];
      const gmfnet::Time margin = flow.frame(k).deadline - fr.response;
      if (margin < s.slack) {
        s.slack = margin;
        s.critical_frame = k;
      }
    }
    // Bottleneck stage of the critical frame.
    const FrameResult& crit = res.flows[f].frames[s.critical_frame];
    gmfnet::Time worst = gmfnet::Time(-1);
    for (const StageResponse& st : crit.stages) {
      if (st.hop.response > worst) {
        worst = st.hop.response;
        s.bottleneck = st.stage;
        s.bottleneck_response = st.hop.response;
      }
    }
    out.push_back(s);
  }
  return out;
}

net::Network scale_link_speeds(const net::Network& network, double factor) {
  net::Network out;
  for (std::size_t i = 0; i < network.node_count(); ++i) {
    const net::NodeId id(static_cast<std::int32_t>(i));
    const net::Node& n = network.node(id);
    switch (n.kind) {
      case net::NodeKind::kEndHost:
        out.add_endhost(n.name);
        break;
      case net::NodeKind::kSwitch:
        out.add_switch(n.name, n.sw);
        break;
      case net::NodeKind::kRouter:
        out.add_router(n.name);
        break;
    }
  }
  for (const net::Link& l : network.links()) {
    const auto speed = static_cast<ethernet::LinkSpeedBps>(
        std::llround(static_cast<double>(l.speed_bps) * factor));
    out.add_link(l.src, l.dst, std::max<ethernet::LinkSpeedBps>(speed, 1),
                 l.prop);
  }
  return out;
}

std::vector<gmf::Flow> scale_payloads(const std::vector<gmf::Flow>& flows,
                                      double factor) {
  std::vector<gmf::Flow> out;
  out.reserve(flows.size());
  for (const gmf::Flow& f : flows) {
    std::vector<gmf::FrameSpec> frames(f.frames());
    for (gmf::FrameSpec& fr : frames) {
      const double scaled =
          std::ceil(static_cast<double>(fr.payload_bits) * factor / 8.0) *
          8.0;
      fr.payload_bits = std::clamp<ethernet::Bits>(
          static_cast<ethernet::Bits>(scaled), 0,
          ethernet::kMaxUdpPayloadBytes * 8);
    }
    out.emplace_back(f.name(), f.route(), std::move(frames), f.priority(),
                     f.rtp());
  }
  return out;
}

namespace {
bool schedulable_at(const net::Network& network,
                    const std::vector<gmf::Flow>& flows,
                    const HolisticOptions& opts) {
  AnalysisContext ctx(network, flows);
  return analyze_holistic(ctx, opts).schedulable;
}
}  // namespace

ScalingResult max_payload_scaling(const net::Network& network,
                                  const std::vector<gmf::Flow>& flows,
                                  double lo, double hi, double tolerance,
                                  const HolisticOptions& opts) {
  ScalingResult out;
  auto ok = [&](double f) {
    ++out.probes;
    return schedulable_at(network, scale_payloads(flows, f), opts);
  };
  if (!ok(lo)) return out;  // max_factor stays 0
  if (ok(hi)) {
    out.max_factor = hi;
    return out;
  }
  double good = lo;
  double bad = hi;
  while ((bad - good) / good > tolerance) {
    const double mid = 0.5 * (good + bad);
    if (ok(mid)) {
      good = mid;
    } else {
      bad = mid;
    }
  }
  out.max_factor = good;
  return out;
}

std::optional<double> min_speed_scaling(const net::Network& network,
                                        const std::vector<gmf::Flow>& flows,
                                        double lo, double hi,
                                        double tolerance,
                                        const HolisticOptions& opts) {
  auto ok = [&](double f) {
    return schedulable_at(scale_link_speeds(network, f), flows, opts);
  };
  if (!ok(hi)) return std::nullopt;
  if (ok(lo)) return lo;
  double bad = lo;
  double good = hi;
  while ((good - bad) / bad > tolerance) {
    const double mid = 0.5 * (bad + good);
    if (ok(mid)) {
      good = mid;
    } else {
      bad = mid;
    }
  }
  return good;
}

}  // namespace gmfnet::core
