// Switch-ingress analysis, eqs (21)-(27): from the reception of a frame's
// Ethernet frames in the NIC FIFO of switch N to their enqueueing in the
// outbound priority queue.
//
// The ingress task of the receiving interface is serviced once every
// CIRC(N) under round-robin stride scheduling and moves one Ethernet frame
// per service, so every Ethernet frame received on the same interface —
// regardless of flow priority (classification happens *after* this stage) —
// costs one CIRC-spaced service slot.  Interference therefore counts frames
// (NX), not transmission time.
#pragma once

#include <cstddef>

#include "core/context.hpp"
#include "core/hop_result.hpp"

namespace gmfnet::core {

/// Precondition: the ingress service can keep up, i.e.
/// sum over flows on the incoming link of NSUM_j * CIRC(N) / TSUM_j < 1.
/// (The paper states no explicit condition for this stage; this is the
/// analogue of eq (20).)
[[nodiscard]] bool ingress_feasible(const AnalysisContext& ctx, FlowId i,
                                    NodeId n);

/// R_i^k,in(N): response time of frame k of flow i inside switch N, from
/// "all Ethernet frames received at N" to "all enqueued in the priority
/// queue".  N must be an intermediate switch of flow i's route.
[[nodiscard]] HopResult analyze_ingress(const AnalysisContext& ctx,
                                        const JitterMap& jitters, FlowId i,
                                        std::size_t frame, NodeId n,
                                        const HopOptions& opts = {});

}  // namespace gmfnet::core
