#include "core/first_hop.hpp"

#include <vector>

#include "util/fixed_point.hpp"

namespace gmfnet::core {

bool first_hop_feasible(const AnalysisContext& ctx, FlowId i) {
  const net::Route& route = ctx.flow(i).route();
  const LinkRef link(route.node_at(0), route.node_at(1));
  return ctx.link_utilization(link) < 1.0;  // eq (20)
}

HopResult analyze_first_hop(const AnalysisContext& ctx,
                            const JitterMap& jitters, FlowId i,
                            std::size_t frame, const HopOptions& opts) {
  HopResult result;
  const gmf::Flow& fi = ctx.flow(i);
  const net::Route& route = fi.route();
  const NodeId src = route.node_at(0);
  const NodeId nxt = route.node_at(1);
  const LinkRef link(src, nxt);
  const StageKey stage = StageKey::link(link);

  if (!first_hop_feasible(ctx, i)) return result;  // eq (20) violated

  const gmf::FlowLinkParams& pi = ctx.link_params(i, link);
  const gmfnet::Time ck = pi.c(frame);
  const gmfnet::Time tsum_i = pi.tsum();

  // Gather interfering flows with their demand curves and extra_j.
  struct Interferer {
    const gmf::DemandCurve* curve;
    gmfnet::Time extra;
    bool is_self;
  };
  std::vector<Interferer> all;
  for (const FlowId j : ctx.flows_on_link(link)) {
    all.push_back(Interferer{&ctx.demand(j, link),
                             jitters.max_jitter(j, stage), j == i});
  }

  FixedPointOptions fp;
  fp.horizon = opts.horizon;

  // Busy period, eqs (14)-(15).  Seeded with C_i^k (DESIGN.md correction #2:
  // eq (14)'s zero seed is itself a fixed point when all jitters are zero).
  const auto busy_fn = [&](gmfnet::Time t) {
    gmfnet::Time next = gmfnet::Time::zero();
    for (const Interferer& j : all) next += j.curve->mx(t + j.extra);
    return next;
  };
  const FixedPointResult busy = iterate_fixed_point(ck, busy_fn, fp);
  result.iterations += busy.iterations;
  result.busy_period = busy.value;
  if (!busy.converged) return result;

  // Q = ceil(t / TSUM_i): instances of frame k inside the busy period.
  const std::int64_t q_count =
      gmfnet::max(busy.value, gmfnet::Time(1)).ceil_div(tsum_i);
  result.instances = q_count;

  gmfnet::Time worst = gmfnet::Time::zero();
  for (std::int64_t q = 0; q < q_count; ++q) {
    // Queueing time, eqs (16)-(17): w(q) = q*CSUM_i + sum over other flows
    // of MX_j(w + extra_j).
    const gmfnet::Time self = q * pi.csum();
    const auto w_fn = [&](gmfnet::Time w) {
      gmfnet::Time next = self;
      for (const Interferer& j : all) {
        if (j.is_self) continue;
        next += j.curve->mx(w + j.extra);
      }
      return next;
    };
    const FixedPointResult w = iterate_fixed_point(self, w_fn, fp);
    result.iterations += w.iterations;
    if (!w.converged) return result;
    // eq (18): R(q) = w(q) - q*TSUM_i + C_i^k.
    worst = gmfnet::max(worst, w.value - q * tsum_i + ck);
  }

  // eq (19): add the propagation delay of the link.
  result.response = worst + ctx.network().prop(src, nxt);
  result.converged = true;
  return result;
}

}  // namespace gmfnet::core
