#include "core/first_hop.hpp"

#include "core/hop_level.hpp"
#include "util/fixed_point.hpp"

namespace gmfnet::core {

bool first_hop_feasible(const AnalysisContext& ctx, FlowId i) {
  const net::Route& route = ctx.flow(i).route();
  const LinkRef link(route.node_at(0), route.node_at(1));
  return ctx.link_utilization(link) < 1.0;  // eq (20)
}

HopResult analyze_first_hop(const AnalysisContext& ctx,
                            const JitterMap& jitters, FlowId i,
                            std::size_t frame, const HopOptions& opts) {
  HopResult result;
  const gmf::Flow& fi = ctx.flow(i);
  const net::Route& route = fi.route();
  const NodeId src = route.node_at(0);
  const NodeId nxt = route.node_at(1);
  const LinkRef link(src, nxt);
  const StageKey stage = StageKey::link(link);

  if (!first_hop_feasible(ctx, i)) return result;  // eq (20) violated

  const gmf::FlowLinkParams& pi = ctx.link_params(i, link);
  const gmfnet::Time ck = pi.c(frame);
  const gmfnet::Time tsum_i = pi.tsum();

  FixedPointOptions fp;
  fp.horizon = opts.horizon;
  HopScratch& scratch = HopScratch::local();

  if (opts.use_envelope &&
      ctx.flows_on_link(link).size() > kEnvelopeMinInterferers) {
    // Interfering flows = every other flow on the link; the merged envelope
    // of their jitter-shifted MX curves is cached per hop and revalidated
    // in O(k) (see hop_level.hpp).  The analysed flow's own demand is
    // evaluated directly so its per-frame jitter writes don't invalidate
    // the cache.
    auto& ids = scratch.ids;
    ids.clear();
    for (const FlowId j : ctx.flows_on_link(link)) {
      if (j != i) ids.push_back(j);
    }
    LevelSlot& slot =
        scratch.slot(HopSlotKey{HopKind::kFirstHop, src.v, nxt.v, i.v});
    slot.ensure(ctx, jitters, ids, stage, link);
    slot.ensure_self(ctx.demand(i, link), jitters.max_jitter(i, stage));

    // Busy period, eqs (14)-(15).  Seeded with C_i^k (DESIGN.md correction
    // #2: eq (14)'s zero seed is itself a fixed point when all jitters are
    // zero).
    const auto busy_fn = [&](gmfnet::Time t) {
      return gmfnet::Time(
          slot.self_envelope().eval(t, slot.self_cursor()).cost +
          slot.envelope().eval(t, slot.cursor()).cost);
    };
    const FixedPointResult busy = iterate_fixed_point(ck, busy_fn, fp);
    result.iterations += busy.iterations;
    result.busy_period = busy.value;
    if (!busy.converged) return result;

    // Q = ceil(t / TSUM_i): instances of frame k inside the busy period.
    const std::int64_t q_count =
        gmfnet::max(busy.value, gmfnet::Time(1)).ceil_div(tsum_i);
    result.instances = q_count;

    gmfnet::Time worst = gmfnet::Time::zero();
    for (std::int64_t q = 0; q < q_count; ++q) {
      // Queueing time, eqs (16)-(17): w(q) = q*CSUM_i + sum over other
      // flows of MX_j(w + extra_j).
      const gmfnet::Time self = q * pi.csum();
      const auto w_fn = [&](gmfnet::Time w) {
        return self +
               gmfnet::Time(slot.envelope().eval(w, slot.cursor()).cost);
      };
      const FixedPointResult w = iterate_fixed_point(self, w_fn, fp);
      result.iterations += w.iterations;
      if (!w.converged) return result;
      // eq (18): R(q) = w(q) - q*TSUM_i + C_i^k.
      worst = gmfnet::max(worst, w.value - q * tsum_i + ck);
    }

    result.response = worst + ctx.network().prop(src, nxt);  // eq (19)
    result.converged = true;
    return result;
  }

  // Reference (naive) path: per-interferer binary searches each iteration,
  // gathered into the reusable per-thread buffer.
  auto& level = scratch.naive;
  level.clear();
  for (const FlowId j : ctx.flows_on_link(link)) {
    level.push_back(HopScratch::NaiveSpec{&ctx.demand(j, link),
                                          jitters.max_jitter(j, stage),
                                          j == i});
  }

  const auto busy_fn = [&](gmfnet::Time t) {
    gmfnet::Time next = gmfnet::Time::zero();
    for (const HopScratch::NaiveSpec& j : level) {
      next += j.curve->mx(t + j.shift);
    }
    return next;
  };
  const FixedPointResult busy = iterate_fixed_point(ck, busy_fn, fp);
  result.iterations += busy.iterations;
  result.busy_period = busy.value;
  if (!busy.converged) return result;

  const std::int64_t q_count =
      gmfnet::max(busy.value, gmfnet::Time(1)).ceil_div(tsum_i);
  result.instances = q_count;

  gmfnet::Time worst = gmfnet::Time::zero();
  for (std::int64_t q = 0; q < q_count; ++q) {
    const gmfnet::Time self = q * pi.csum();
    const auto w_fn = [&](gmfnet::Time w) {
      gmfnet::Time next = self;
      for (const HopScratch::NaiveSpec& j : level) {
        if (j.is_self) continue;
        next += j.curve->mx(w + j.shift);
      }
      return next;
    };
    const FixedPointResult w = iterate_fixed_point(self, w_fn, fp);
    result.iterations += w.iterations;
    if (!w.converged) return result;
    worst = gmfnet::max(worst, w.value - q * tsum_i + ck);
  }

  result.response = worst + ctx.network().prop(src, nxt);  // eq (19)
  result.converged = true;
  return result;
}

}  // namespace gmfnet::core
