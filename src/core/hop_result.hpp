// Shared result/option types for the three per-hop analyses.
#pragma once

#include <cstdint>

#include "util/time.hpp"

namespace gmfnet::core {

/// Outcome of one per-hop response-time computation for one frame.
struct HopResult {
  /// Upper bound on the hop response time; meaningful only if `converged`.
  gmfnet::Time response = gmfnet::Time::zero();
  bool converged = false;
  /// Fixed point of the busy-period iteration.
  gmfnet::Time busy_period = gmfnet::Time::zero();
  /// Q: number of frame-k instances examined in the busy period.
  std::int64_t instances = 0;
  /// Total fixed-point iterations spent (busy period + all w(q) chains);
  /// reported by the runtime-scaling bench (E9).
  std::int64_t iterations = 0;
};

/// Options common to the per-hop analyses.
struct HopOptions {
  /// Busy periods / queueing times beyond this are treated as divergence
  /// (the hop is reported non-converged).  10 s is far beyond any deadline
  /// in the paper's domain (VoIP/video: tens of ms).
  gmfnet::Time horizon = gmfnet::Time::sec(10);

  /// DESIGN.md correction #4/#5: charge the stride-scheduler service period
  /// CIRC for the analysed flow's own Ethernet frames (sound default).
  /// `false` reproduces the paper's literal recurrences, which omit the
  /// self CIRC terms; kept for the ablation bench (E10).
  bool charge_self_circ = true;

  /// Evaluate per-hop demand through the merged gmf::LevelEnvelope fast
  /// path (one cursor-advanced pass per fixed-point iteration) instead of
  /// k binary searches over the individual DemandCurves.  Bit-identical
  /// results either way — the naive path is kept as the reference for the
  /// equivalence suites and the bench_demand_eval speedup measurement.
  bool use_envelope = true;
};

}  // namespace gmfnet::core
