// Sensitivity analysis on top of the holistic bounds: how much slack a
// flow set has, which stage of a flow's pipeline dominates its bound, and
// how far traffic can be scaled before guarantees break.
//
// These are the questions an operator asks the admission controller after a
// "yes": how close to the edge are we, and where is the edge?
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/holistic.hpp"

namespace gmfnet::core {

/// Per-flow slack: the margin between the worst frame's bound and its
/// deadline.
struct FlowSlack {
  FlowId flow;
  /// min over frames of (deadline - bound); negative when a deadline is
  /// missed, Time::zero() at the edge.
  gmfnet::Time slack = gmfnet::Time::zero();
  /// Frame attaining the minimum.
  std::size_t critical_frame = 0;
  /// The pipeline stage contributing the largest share of that frame's
  /// bound (the flow's bottleneck).
  StageKey bottleneck;
  gmfnet::Time bottleneck_response = gmfnet::Time::zero();
};

/// Slack report for a schedulable flow set.  Returns std::nullopt when the
/// holistic analysis does not converge.
[[nodiscard]] std::optional<std::vector<FlowSlack>> compute_slack(
    const AnalysisContext& ctx, const HolisticOptions& opts = {});

/// Result of the capacity-scaling search.
struct ScalingResult {
  /// Largest multiplier in [lo, hi] for which the scaled system is
  /// schedulable, 0 if even `lo` fails.
  double max_factor = 0.0;
  /// Schedulability at the probe points actually evaluated, for reporting.
  std::int64_t probes = 0;
};

/// Binary-searches the largest uniform payload scaling factor (every frame
/// of every flow's payload multiplied by f) that keeps the whole set
/// schedulable.  `tolerance` is the relative precision of the search.
///
/// Monotonicity note: payload growth only increases every C/NFRAMES term,
/// so schedulability is antitone in the factor and bisection is exact up to
/// byte rounding.
[[nodiscard]] ScalingResult max_payload_scaling(
    const net::Network& network, const std::vector<gmf::Flow>& flows,
    double lo = 0.1, double hi = 16.0, double tolerance = 0.01,
    const HolisticOptions& opts = {});

/// Binary-searches the smallest uniform link-speed multiplier that makes
/// the set schedulable (how much faster must the cabling get?).  Returns
/// std::nullopt when even `hi` times faster links do not suffice.
[[nodiscard]] std::optional<double> min_speed_scaling(
    const net::Network& network, const std::vector<gmf::Flow>& flows,
    double lo = 1.0 / 16.0, double hi = 16.0, double tolerance = 0.01,
    const HolisticOptions& opts = {});

/// Scales every link speed of a network by `factor` (helper, exposed for
/// tests and benches).
[[nodiscard]] net::Network scale_link_speeds(const net::Network& network,
                                             double factor);

/// Scales every payload of every flow by `factor` (bytes rounded up).
[[nodiscard]] std::vector<gmf::Flow> scale_payloads(
    const std::vector<gmf::Flow>& flows, double factor);

}  // namespace gmfnet::core
