// Switch-egress analysis, eqs (28)-(35): from a frame's Ethernet frames
// sitting in the prioritized output queue of switch N towards
// succ(τ_i, N), until all of them have been received at the successor.
//
// Two delay mechanisms combine:
//   * static-priority link scheduling: higher-or-equal-priority flows (hep,
//     eq 2) interfere with their transmission time (MX), and one already-
//     transmitting lower-priority Ethernet frame blocks for up to MFT
//     (non-preemptive per-frame transmission);
//   * the stride-scheduled egress task moves one Ethernet frame per
//     CIRC(N)-spaced service — the link can sit idle with a queued frame
//     until the task runs — contributing NX * CIRC per interfering frame.
#pragma once

#include <cstddef>

#include "core/context.hpp"
#include "core/hop_result.hpp"

namespace gmfnet::core {

/// Precondition, eqs (34)/(35): the level-i utilization (τ_i plus hep flows)
/// of the link must be < 1 for the level-i busy period to terminate.
[[nodiscard]] bool egress_feasible(const AnalysisContext& ctx, FlowId i,
                                   NodeId n);

/// R_i^k,link(N, succ(τ_i, N)): response time of frame k of flow i from
/// enqueueing in the priority queue of N to full reception at the successor
/// node.  Includes the link propagation delay (eq 33).  N must be an
/// intermediate switch of flow i's route.
[[nodiscard]] HopResult analyze_egress(const AnalysisContext& ctx,
                                       const JitterMap& jitters, FlowId i,
                                       std::size_t frame, NodeId n,
                                       const HopOptions& opts = {});

}  // namespace gmfnet::core
