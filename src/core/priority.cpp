#include "core/priority.hpp"

#include <algorithm>
#include <numeric>

namespace gmfnet::core {

namespace {
gmfnet::Time min_separation(const gmf::Flow& f) {
  gmfnet::Time m = gmfnet::Time::max();
  for (const gmf::FrameSpec& s : f.frames()) {
    m = gmfnet::min(m, s.min_separation);
  }
  return m;
}
}  // namespace

void assign_priorities(std::vector<gmf::Flow>& flows, PriorityScheme scheme) {
  if (scheme == PriorityScheme::kExplicit) return;

  std::vector<std::size_t> order(flows.size());
  std::iota(order.begin(), order.end(), 0);

  const auto key = [&](std::size_t i) {
    return scheme == PriorityScheme::kDeadlineMonotonic
               ? flows[i].min_deadline()
               : min_separation(flows[i]);
  };
  // Sort by key descending: the largest deadline/period gets priority 0
  // (least urgent), the smallest gets n-1 (most urgent).
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const gmfnet::Time ka = key(a);
    const gmfnet::Time kb = key(b);
    return ka != kb ? ka > kb : a < b;
  });
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    flows[order[rank]].set_priority(static_cast<std::int64_t>(rank));
  }
}

bool apply_pcp_levels(std::vector<gmf::Flow>& flows, int levels) {
  std::vector<std::int64_t> prios;
  prios.reserve(flows.size());
  for (const gmf::Flow& f : flows) prios.push_back(f.priority());

  const std::vector<ethernet::Pcp> pcp =
      ethernet::quantize_priorities(prios, levels);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    flows[i].set_priority(pcp[i]);
  }
  return ethernet::quantization_is_lossless(prios, pcp);
}

}  // namespace gmfnet::core
