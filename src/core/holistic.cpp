#include "core/holistic.hpp"

#include <memory>

#include "util/thread_pool.hpp"

namespace gmfnet::core {

namespace {

/// One Gauss-Seidel sweep: analyse flows in order against the live map.
std::vector<FlowResult> sweep_gauss_seidel(const AnalysisContext& ctx,
                                           JitterMap& jitters,
                                           const HopOptions& hop) {
  std::vector<FlowResult> results(ctx.flow_count());
  for (std::size_t f = 0; f < ctx.flow_count(); ++f) {
    const FlowId id(static_cast<std::int32_t>(f));
    results[f] = analyze_flow_end_to_end(ctx, jitters, id, hop);
  }
  return results;
}

/// One Jacobi sweep: all flows against a frozen snapshot, in parallel; own
/// jitters are merged back afterwards.  The pool is created once per
/// analyze_holistic call and reused across sweeps.
std::vector<FlowResult> sweep_jacobi(const AnalysisContext& ctx,
                                     JitterMap& jitters,
                                     const HopOptions& hop,
                                     ThreadPool& pool) {
  const JitterMap snapshot = jitters;
  std::vector<FlowResult> results(ctx.flow_count());
  std::vector<JitterMap> locals(ctx.flow_count(), snapshot);

  pool.parallel_for(ctx.flow_count(), [&](std::size_t f) {
    const FlowId id(static_cast<std::int32_t>(f));
    results[f] = analyze_flow_end_to_end(ctx, locals[f], id, hop);
  });

  JitterMap merged = snapshot;
  for (std::size_t f = 0; f < ctx.flow_count(); ++f) {
    merged.adopt_flow(locals[f], FlowId(static_cast<std::int32_t>(f)));
  }
  jitters = std::move(merged);
  return results;
}

}  // namespace

HolisticResult analyze_holistic(const AnalysisContext& ctx,
                                const HolisticOptions& opts) {
  HolisticResult out;
  out.jitters =
      opts.initial_jitters ? *opts.initial_jitters : JitterMap::initial(ctx);

  std::unique_ptr<ThreadPool> pool;
  if (opts.order == SweepOrder::kJacobi) {
    pool = std::make_unique<ThreadPool>(opts.threads);
  }

  for (int sweep = 0; sweep < opts.max_sweeps; ++sweep) {
    const JitterMap before = out.jitters;
    out.flows = opts.order == SweepOrder::kGaussSeidel
                    ? sweep_gauss_seidel(ctx, out.jitters, opts.hop)
                    : sweep_jacobi(ctx, out.jitters, opts.hop, *pool);
    out.sweeps = sweep + 1;

    // Any per-hop divergence means the jitters would grow without bound:
    // report unschedulable immediately.
    for (const FlowResult& fr : out.flows) {
      if (!fr.all_converged()) {
        out.converged = false;
        out.schedulable = false;
        return out;
      }
    }

    if (out.jitters == before) {
      out.converged = true;
      break;
    }
  }

  if (!out.converged) {
    // Sweep cap reached without a fixed point: treat as unschedulable (the
    // monotone jitters were still growing).
    out.schedulable = false;
    return out;
  }

  out.schedulable = true;
  for (const FlowResult& fr : out.flows) {
    if (!fr.schedulable()) {
      out.schedulable = false;
      break;
    }
  }
  return out;
}

}  // namespace gmfnet::core
