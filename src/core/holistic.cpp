#include "core/holistic.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>

#include "util/fixed_point.hpp"
#include "util/thread_pool.hpp"

namespace gmfnet::core {

std::vector<std::vector<FlowId>> link_neighbors(const AnalysisContext& ctx) {
  const std::size_t n = ctx.flow_count();
  std::vector<std::vector<FlowId>> out(n);
  for (std::size_t f = 0; f < n; ++f) {
    const FlowId id(static_cast<std::int32_t>(f));
    std::vector<FlowId>& nb = out[f];
    for (const LinkRef l : ctx.route_links(id)) {
      for (const FlowId j : ctx.flows_on_link(l)) {
        if (j != id) nb.push_back(j);
      }
    }
    std::sort(nb.begin(), nb.end());
    nb.erase(std::unique(nb.begin(), nb.end()), nb.end());
  }
  return out;
}

bool parse_solver_spec(std::string_view spec, SolverOptions& out) {
  if (spec == "plain") {
    out = SolverOptions{};
    return true;
  }
  SolverOptions so;
  so.mode = SolverMode::kAnderson;
  if (spec == "anderson") {
    out = so;
    return true;
  }
  constexpr std::string_view prefix = "anderson:";
  if (spec.size() == prefix.size() + 1 && spec.substr(0, prefix.size()) == prefix) {
    const char c = spec[prefix.size()];
    if (c >= '1' && c <= '8') {
      so.m = c - '0';
      out = so;
      return true;
    }
  }
  return false;
}

SolverOptions solver_options_from_env() {
  const char* env = std::getenv("GMFNET_SOLVER");
  if (env == nullptr || *env == '\0') return SolverOptions{};
  SolverOptions so;
  if (!parse_solver_spec(env, so)) {
    throw std::runtime_error(std::string("GMFNET_SOLVER: unknown solver spec '") +
                             env + "' (want plain | anderson | anderson:M)");
  }
  return so;
}

namespace {

// Sweep-to-sweep change tracking: re-analysing flow f is the identity
// whenever neither f's own entries nor any read-set neighbor's entries
// changed since f's previous analysis (the analysis is a deterministic
// function of exactly those entries).  Each sweep therefore records, per
// flow, whether its own entries actually changed — replacing the full
// `jitters == before` JitterMap comparison — and the next sweep skips flows
// whose inputs are clean, reusing their previous FlowResult verbatim.
// Results stay bit-identical to always-re-analyse sweeps; only redundant
// work is dropped (in particular the final, unchanged sweep that merely
// confirms convergence).

/// True when `changed[f]` or any of f's neighbors' flags is set.
bool inputs_dirty(const std::vector<char>& changed,
                  const std::vector<std::vector<FlowId>>& neighbors,
                  std::size_t f) {
  if (changed[f]) return true;
  for (const FlowId j : neighbors[f]) {
    if (changed[static_cast<std::size_t>(j.v)]) return true;
  }
  return false;
}

/// One Jacobi sweep: all dirty-input flows against a frozen snapshot, in
/// parallel; their jitters are merged back afterwards.  The pool is created
/// once per solve and reused across sweeps.
bool sweep_jacobi(const AnalysisContext& ctx, JitterMap& jitters,
                  const HopOptions& hop,
                  const std::vector<std::vector<FlowId>>& neighbors,
                  bool first_sweep, std::vector<char>& changed,
                  std::vector<FlowResult>& results, ThreadPool& pool) {
  const JitterMap snapshot = jitters;
  const std::size_t n = ctx.flow_count();
  // All reads go against the previous sweep's flags (Jacobi semantics).
  const std::vector<char> changed_prev = changed;
  std::vector<char> analyzed(n, 0);
  std::vector<JitterMap> locals(n);

  pool.parallel_for(n, [&](std::size_t f) {
    if (!first_sweep && !inputs_dirty(changed_prev, neighbors, f)) {
      changed[f] = 0;
      return;
    }
    const FlowId id(static_cast<std::int32_t>(f));
    locals[f] = snapshot;
    results[f] = analyze_flow_end_to_end(ctx, locals[f], id, hop);
    changed[f] = locals[f].flow_equals(snapshot, id) ? 0 : 1;
    analyzed[f] = 1;
  });

  JitterMap merged = snapshot;
  bool ok = true;
  for (std::size_t f = 0; f < n; ++f) {
    if (!analyzed[f]) continue;
    merged.adopt_flow(locals[f], FlowId(static_cast<std::int32_t>(f)));
    ok &= results[f].all_converged();
  }
  jitters = std::move(merged);
  return ok;
}

// ------------------------------------------------- Anderson sweep driver --

/// The kAnderson strategy: observes the Gauss-Seidel iterate sequence
/// between sweeps, proposes clamped Anderson(m) extrapolations, and owns
/// the speculate/accept/rollback safeguard state.  The solve loop consults
/// it in exactly three places: record the pre-sweep iterate, judge a
/// speculative sweep, and ask for a proposal after a plain sweep.
///
/// The flattened iterate vector enumerates, for every dirty flow in
/// ascending id order, every (stage, frame) entry of that flow — exactly
/// the set of entries analyze_flow_end_to_end rewrites when the flow is
/// analysed.  Injection therefore never creates an entry the very next
/// sweep would not itself create, which keeps the converged map's entry
/// *structure* (JitterMap equality is structural) identical to the plain
/// iteration's.
class AndersonDriver {
 public:
  AndersonDriver(const AnalysisContext& ctx, const std::vector<FlowId>& dirty,
                 const SolverOptions& so)
      : ctx_(ctx), dirty_(dirty), so_(so), mixer_(so.m) {
    for (const FlowId id : dirty_) {
      slot_count_ +=
          ctx_.stages(id).size() * ctx_.flow(id).frame_count();
    }
  }

  /// False once acceleration is disabled (too many rejections) or there is
  /// nothing to accelerate; the solve loop stops paying the flatten cost.
  [[nodiscard]] bool active() const {
    return !disabled_ && slot_count_ > 0;
  }
  [[nodiscard]] bool speculating() const { return speculating_; }

  /// Records the pre-sweep iterate x_k (no-op while speculating: the
  /// injected proposal is already recorded).  Keeps the previous record as
  /// x_{k-1} so the proposal clamp can measure two consecutive plain steps.
  void note_pre_sweep(const JitterMap& m) {
    if (!active() || speculating_) return;
    prev3_.swap(prev2_);
    prev2_.swap(pre_);
    flatten(m, pre_);
    ++steps_seen_;
  }

  /// After a *plain* sweep produced `g`: feed the (x, G(x)) pair to the
  /// mixer and, when the cadence allows, return true with `inject` holding
  /// the clamped accelerated iterate to adopt (and the pre-injection map
  /// saved for rollback).  `sweeps_done` is the count including this sweep.
  bool propose_after_plain(const JitterMap& g, int sweeps_done,
                           JitterMap& inject) {
    if (!active()) return false;
    std::vector<double> cur;
    flatten(g, cur);
    if (just_judged_) {
      // The sweep that just ran was the acceptance check: its (y, z) pair
      // is already in the history (judge recorded it).
      just_judged_ = false;
    } else {
      mixer_.push(pre_, cur);
    }

    if (sweeps_done < so_.warmup_sweeps ||
        sweeps_done - last_inject_sweep_ <= so_.plain_between ||
        steps_seen_ < 4 || prev3_.size() != slot_count_) {
      return false;
    }
    std::vector<double> y = mixer_.propose();
    if (y.empty()) return false;

    // Clamp to the monotone extrapolation cone: never below the plain
    // iterate g (the sweep already certified it), and per entry never more
    // than the smaller of
    //   * cap steps beyond g (step = the entry's last plain increment; an
    //     entry the last sweep left unchanged is never perturbed), and
    //   * beta times the entry's Aitken remaining-distance estimate
    //     step * r / (1 - r), with the contraction ratio r taken as the
    //     MINIMUM over the last three consecutive plain steps (and clamped
    //     below 1).  A sustained geometric ratchet keeps r high and the
    //     bound generous; a one-off staircase burst (one big step between
    //     small ones) yields a small minimum ratio and a correspondingly
    //     timid bound.  The minimum-ratio tail under-estimates the distance
    //     still to climb, so clipped proposals stay below the least fixed
    //     point instead of jumping into the self-confirming territory of a
    //     larger fixed point of a near-critical interference cycle.
    // The extrapolation length is further scaled by alpha_: the adaptive
    // factor backs off geometrically on every safeguard rejection (the
    // map's staircase nonsmoothness makes full Anderson jumps overshoot
    // pre-asymptotically) and regrows on acceptance.  `gain` scales the
    // whole permitted raise (the > 1 test hook that forces the rejection
    // path).  Flooring keeps the integer iterate biased toward
    // under-approximation.
    constexpr double kAitkenBeta = 0.9;
    constexpr double kRatioMax = 0.95;
    injected_.resize(slot_count_);
    bool any = false;
    for (std::size_t i = 0; i < slot_count_; ++i) {
      const double gi = cur[i];
      const double s2 = gi - pre_[i];
      const double s1 = pre_[i] - prev2_[i];
      const double s0 = prev2_[i] - prev3_[i];
      double allowed = 0.0;
      if (s2 > 0.0 && s1 > 0.0 && s0 > 0.0) {
        const double r = std::min({s1 / s0, s2 / s1, kRatioMax});
        const double remaining = s2 * r / (1.0 - r);
        allowed = so_.gain * std::min(so_.cap * s2, kAitkenBeta * remaining);
      }
      double raise = alpha_ * (y[i] - gi);
      if (raise < 0.0) raise = 0.0;
      if (raise > allowed) raise = allowed;
      const auto v = static_cast<std::int64_t>(std::floor(gi + raise));
      const auto gv = static_cast<std::int64_t>(gi);
      injected_[i] = v < gv ? gv : v;
      any |= injected_[i] != gv;
    }
    if (!any) return false;

    // Build the injected map as a copy-on-write delta over g: only slots
    // that actually moved are written, so untouched flows stay shared.
    rollback_ = g;
    inject = g;
    std::size_t i = 0;
    for (const FlowId id : dirty_) {
      const std::vector<StageKey>& stages = ctx_.stages(id);
      const std::size_t frames = ctx_.flow(id).frame_count();
      for (const StageKey& s : stages) {
        for (std::size_t k = 0; k < frames; ++k, ++i) {
          const auto gv =
              static_cast<std::int64_t>(cur[i]);
          if (injected_[i] != gv) {
            inject.set_jitter(id, s, k, gmfnet::Time(injected_[i]));
          }
        }
      }
    }
    speculating_ = true;
    last_inject_sweep_ = sweeps_done;
    return true;
  }

  /// Judges the sweep that followed an injection: z = G(y) accepts y iff it
  /// did not decrease any slot (y was still a valid under-approximation of
  /// the fixed point the sweep is climbing to) AND advanced at least one
  /// slot.  The strict-advance requirement is what keeps the least fixed
  /// point exact: z == y means the speculation landed exactly on *a* fixed
  /// point of the sweep operator, and a speculative landing cannot certify
  /// that it is the least one — only a plain climb can.  Rejecting it rolls
  /// back to the certified map; if y really was the least fixed point the
  /// plain continuation re-reaches it in a couple of sweeps.  On acceptance
  /// the (y, z) pair extends the mixer history; on rejection the caller
  /// rolls back to rollback_map() and the speculative history is dropped.
  bool judge(const JitterMap& z, bool diverged) {
    speculating_ = false;
    steps_seen_ = 0;  // the plain-step sequence is broken either way
    if (diverged) return reject();
    std::vector<double> zf;
    flatten(z, zf);
    bool advanced = false;
    for (std::size_t i = 0; i < slot_count_; ++i) {
      const auto zi = static_cast<std::int64_t>(zf[i]);
      if (zi < injected_[i]) return reject();
      advanced |= zi != injected_[i];
    }
    if (!advanced) return reject();
    // Feed the accepted application G(y) = z to the history.
    std::vector<double> yf(slot_count_);
    for (std::size_t i = 0; i < slot_count_; ++i) {
      yf[i] = static_cast<double>(injected_[i]);
    }
    mixer_.push(std::move(yf), std::move(zf));
    rollback_ = JitterMap();
    just_judged_ = true;
    alpha_ = std::min(1.0, alpha_ * 2.0);
    return true;
  }

  /// The certified pre-injection map a rejected speculation restores.
  [[nodiscard]] JitterMap take_rollback() { return std::move(rollback_); }

 private:
  bool reject() {
    mixer_.reset();
    just_judged_ = false;
    alpha_ *= 0.25;
    if (++rejects_ >= so_.max_rejects) disabled_ = true;
    return false;
  }

  void flatten(const JitterMap& m, std::vector<double>& out) const {
    out.clear();
    out.reserve(slot_count_);
    for (const FlowId id : dirty_) {
      const std::vector<StageKey>& stages = ctx_.stages(id);
      const std::size_t frames = ctx_.flow(id).frame_count();
      for (const StageKey& s : stages) {
        for (std::size_t k = 0; k < frames; ++k) {
          out.push_back(static_cast<double>(m.jitter(id, s, k).ps()));
        }
      }
    }
  }

  const AnalysisContext& ctx_;
  const std::vector<FlowId>& dirty_;
  SolverOptions so_;
  AndersonMixer mixer_;
  std::size_t slot_count_ = 0;
  std::vector<double> pre_;            ///< flattened pre-sweep iterate x_k
  std::vector<double> prev2_;          ///< the iterate before pre_ (x_{k-1})
  std::vector<double> prev3_;          ///< the iterate before prev2_
  int steps_seen_ = 0;  ///< consecutive plain pre-sweep records; reset on
                        ///< every speculation so ratio measurements only
                        ///< ever span uninterrupted plain steps
  std::vector<std::int64_t> injected_; ///< last injected y, exact values
  JitterMap rollback_;                 ///< pre-injection map while speculating
  bool speculating_ = false;
  bool just_judged_ = false;  ///< last sweep was an accepted acceptance check
  double alpha_ = 1.0;        ///< adaptive extrapolation damping
  bool disabled_ = false;
  int rejects_ = 0;
  int last_inject_sweep_ = -1000000;
};

/// Whole-set Jacobi solve (kept separate: its sweeps are pool-parallel and
/// acceleration does not apply).  Bit-identical to the historical Jacobi
/// analyze_holistic.
HolisticResult solve_jacobi(const AnalysisContext& ctx,
                            const HolisticOptions& opts, HolisticResult out,
                            IncrementalStats* stats) {
  const std::vector<std::vector<FlowId>> neighbors = link_neighbors(ctx);
  std::vector<char> changed(ctx.flow_count(), 1);
  ThreadPool pool(opts.threads);

  for (int sweep = 0; sweep < opts.max_sweeps; ++sweep) {
    const bool ok = sweep_jacobi(ctx, out.jitters, opts.hop, neighbors,
                                 sweep == 0, changed, out.flows, pool);
    out.sweeps = sweep + 1;
    if (stats != nullptr) ++stats->sweeps;
    if (!ok) {
      out.converged = false;
      out.schedulable = false;
      return out;
    }
    if (std::none_of(changed.begin(), changed.end(),
                     [](char c) { return c != 0; })) {
      out.converged = true;
      break;
    }
  }
  if (!out.converged) {
    out.schedulable = false;
    return out;
  }
  out.schedulable = true;
  for (const FlowResult& fr : out.flows) {
    if (!fr.schedulable()) {
      out.schedulable = false;
      break;
    }
  }
  return out;
}

// True when the iterated interference graph over `iterated` has a directed
// cycle.  Edge j -> i when j can interfere with i (shared directed link,
// prio_j >= prio_i) AND j's jitter on that link is itself produced by the
// iteration (the link is not j's first hop — a flow's jitter at its source
// link is the constant source jitter).  On an acyclic graph the sweep
// operator is a DAG evaluation with a unique fixed point, which is what
// makes the Anderson certificate exact (see SolverOptions); near-critical
// cycles admit several fixed points, so the driver only engages on cycles
// when the caller opted in.  Clean flows' jitters are constants during a
// restricted solve, so only `iterated` flows carry edges.
bool interference_cyclic(const AnalysisContext& ctx,
                         const std::vector<FlowId>& iterated) {
  const std::size_t n = ctx.flow_count();
  std::vector<char> in_set(n, 0);
  for (const FlowId id : iterated) in_set[static_cast<std::size_t>(id.v)] = 1;

  // Adjacency j -> i, vertices indexed by flow id (non-iterated rows empty).
  std::vector<std::vector<std::size_t>> adj(n);
  for (const FlowId i : iterated) {
    const std::int64_t pi = ctx.flow(i).priority();
    for (const LinkRef l : ctx.route_links(i)) {
      for (const FlowId j : ctx.flows_on_link(l)) {
        if (j == i || !in_set[static_cast<std::size_t>(j.v)]) continue;
        if (ctx.flow(j).priority() < pi) continue;
        if (ctx.route_links(j).front() == l) continue;  // constant jitter
        adj[static_cast<std::size_t>(j.v)].push_back(
            static_cast<std::size_t>(i.v));
      }
    }
  }

  // Iterative three-color DFS.
  std::vector<char> color(n, 0);  // 0 white, 1 on stack, 2 done
  std::vector<std::pair<std::size_t, std::size_t>> stack;
  for (const FlowId root : iterated) {
    const auto r = static_cast<std::size_t>(root.v);
    if (color[r] != 0) continue;
    color[r] = 1;
    stack.emplace_back(r, 0);
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      if (next < adj[v].size()) {
        const std::size_t w = adj[v][next++];
        if (color[w] == 1) return true;
        if (color[w] == 0) {
          color[w] = 1;
          stack.emplace_back(w, 0);
        }
      } else {
        color[v] = 2;
        stack.pop_back();
      }
    }
  }
  return false;
}

}  // namespace

HolisticResult solve_holistic(const AnalysisContext& ctx,
                              const SolveRequest& req,
                              const HolisticOptions& opts,
                              IncrementalStats* stats) {
  const bool whole_set = req.dirty == nullptr;
  if (!whole_set && !req.start.engaged()) {
    throw std::logic_error(
        "solve_holistic: a restricted request needs an engaged warm start "
        "(clean flows' fixed points cannot be conjured from nothing)");
  }

  HolisticResult out;
  out.jitters =
      req.start.engaged() ? req.start.map() : JitterMap::initial(ctx);
  out.flows.resize(ctx.flow_count());

  if (whole_set && opts.order == SweepOrder::kJacobi) {
    return solve_jacobi(ctx, opts, std::move(out), stats);
  }

  // The dirty id set, ascending — the Gauss-Seidel analysis order.
  std::vector<FlowId> dirty_ids;
  for (std::size_t f = 0; f < ctx.flow_count(); ++f) {
    if (whole_set || (f < req.dirty->size() && (*req.dirty)[f])) {
      dirty_ids.push_back(FlowId(static_cast<std::int32_t>(f)));
    }
  }

  // Per-flow change flags over the dirty set (clean flows never change —
  // they are not analysed).  A dirty flow is re-analysed only when it or a
  // read-set neighbor changed since its previous analysis; a skipped
  // re-analysis would have been the identity, so results stay bit-identical
  // to always-re-analyse sweeps.  Whole-set solves precompute the neighbor
  // table (every flow is walked every sweep); restricted solves walk the
  // read-set on the fly over the flow's route links — probes must not pay
  // an all-flows neighbor table for a small dirty component.
  std::vector<char> changed(ctx.flow_count(), 0);
  for (const FlowId id : dirty_ids) {
    changed[static_cast<std::size_t>(id.v)] = 1;
  }
  std::vector<std::vector<FlowId>> neighbors;
  if (whole_set) neighbors = link_neighbors(ctx);
  const auto flow_inputs_dirty = [&](FlowId id) {
    const auto f = static_cast<std::size_t>(id.v);
    if (!neighbors.empty()) return inputs_dirty(changed, neighbors, f);
    if (changed[f]) return true;
    for (const LinkRef l : ctx.route_links(id)) {
      for (const FlowId j : ctx.flows_on_link(l)) {
        if (changed[static_cast<std::size_t>(j.v)]) return true;
      }
    }
    return false;
  };

  std::unique_ptr<AndersonDriver> driver;
  if (opts.solver.mode == SolverMode::kAnderson && !dirty_ids.empty() &&
      (opts.solver.accept_cyclic || !interference_cyclic(ctx, dirty_ids))) {
    driver = std::make_unique<AndersonDriver>(ctx, dirty_ids, opts.solver);
  }
  const auto mark_all_dirty = [&] {
    for (const FlowId id : dirty_ids) {
      changed[static_cast<std::size_t>(id.v)] = 1;
    }
  };

  // A sweep writes only the analysed (dirty) flows' own entries, so the
  // convergence snapshot/compare stays proportional to the flows actually
  // analysed instead of the whole map.  One snapshot map serves every
  // sweep: adopt_flow overwrites the slot, so carrying the map across
  // sweeps saves the per-sweep slot-vector allocation on probe hot paths.
  JitterMap before;
  for (int sweep = 0; sweep < opts.max_sweeps; ++sweep) {
    if (driver) driver->note_pre_sweep(out.jitters);
    bool diverged = false;
    for (const FlowId id : dirty_ids) {
      if (sweep > 0 && !flow_inputs_dirty(id)) {
        changed[static_cast<std::size_t>(id.v)] = 0;
        continue;
      }
      before.adopt_flow(out.jitters, id, id);
      FlowResult& fr = out.flows[static_cast<std::size_t>(id.v)];
      fr = analyze_flow_end_to_end(ctx, out.jitters, id, opts.hop);
      changed[static_cast<std::size_t>(id.v)] =
          out.jitters.flow_equals(before, id) ? 0 : 1;
      if (stats != nullptr) ++stats->flow_analyses;
      if (!fr.all_converged()) diverged = true;
    }
    out.sweeps = sweep + 1;
    if (stats != nullptr) ++stats->sweeps;

    if (driver && driver->speculating()) {
      // This sweep was the acceptance check z = G(y) for an injected
      // accelerated iterate.  A divergent or decreasing z rejects y: the
      // solve rolls back to the certified pre-injection map and re-analyses
      // every dirty flow from it (which also overwrites any FlowResult the
      // speculative sweep computed against y).
      if (driver->judge(out.jitters, diverged)) {
        if (stats != nullptr) ++stats->accel_accepted;
      } else {
        out.jitters = driver->take_rollback();
        mark_all_dirty();
        if (stats != nullptr) ++stats->accel_rejected;
        continue;
      }
    } else if (diverged) {
      // Any per-hop divergence of the plain iteration means the jitters
      // would grow without bound: report unschedulable immediately.
      out.converged = false;
      out.schedulable = false;
      return out;
    }

    bool unchanged = true;
    for (const FlowId id : dirty_ids) {
      if (changed[static_cast<std::size_t>(id.v)]) {
        unchanged = false;
        break;
      }
    }
    if (unchanged) {
      out.converged = true;
      break;
    }

    if (driver && sweep + 1 < opts.max_sweeps) {
      JitterMap inject;
      if (driver->propose_after_plain(out.jitters, sweep + 1, inject)) {
        // Adopt the speculative iterate; the next sweep re-analyses every
        // dirty flow against it and judges it.
        out.jitters = std::move(inject);
        mark_all_dirty();
      }
    }
  }

  if (!out.converged) {
    // Sweep cap reached without a fixed point: treat as unschedulable (the
    // monotone jitters were still growing).
    out.schedulable = false;
    return out;
  }

  if (whole_set) {
    out.schedulable = true;
    for (const FlowResult& fr : out.flows) {
      if (!fr.schedulable()) {
        out.schedulable = false;
        break;
      }
    }
  }
  // Restricted solves leave schedulable false: the caller adopts its cached
  // FlowResults for the clean flows and finalizes the verdict over the
  // complete vector.
  return out;
}

HolisticResult analyze_holistic(const AnalysisContext& ctx,
                                const HolisticOptions& opts) {
  SolveRequest req;
  req.start = opts.warm_start;
  return solve_holistic(ctx, req, opts);
}

HolisticResult analyze_holistic_dirty(const AnalysisContext& ctx,
                                      const std::vector<bool>& dirty,
                                      JitterMap start,
                                      const HolisticOptions& opts,
                                      IncrementalStats* stats) {
  SolveRequest req;
  req.dirty = &dirty;
  req.start = WarmStartView(start);
  return solve_holistic(ctx, req, opts, stats);
}

}  // namespace gmfnet::core
