#include "core/holistic.hpp"

#include <algorithm>
#include <memory>

#include "util/thread_pool.hpp"

namespace gmfnet::core {

std::vector<std::vector<FlowId>> link_neighbors(const AnalysisContext& ctx) {
  const std::size_t n = ctx.flow_count();
  std::vector<std::vector<FlowId>> out(n);
  for (std::size_t f = 0; f < n; ++f) {
    const FlowId id(static_cast<std::int32_t>(f));
    std::vector<FlowId>& nb = out[f];
    for (const LinkRef l : ctx.route_links(id)) {
      for (const FlowId j : ctx.flows_on_link(l)) {
        if (j != id) nb.push_back(j);
      }
    }
    std::sort(nb.begin(), nb.end());
    nb.erase(std::unique(nb.begin(), nb.end()), nb.end());
  }
  return out;
}

namespace {

// Sweep-to-sweep change tracking: re-analysing flow f is the identity
// whenever neither f's own entries nor any read-set neighbor's entries
// changed since f's previous analysis (the analysis is a deterministic
// function of exactly those entries).  Each sweep therefore records, per
// flow, whether its own entries actually changed — replacing the full
// `jitters == before` JitterMap comparison — and the next sweep skips flows
// whose inputs are clean, reusing their previous FlowResult verbatim.
// Results stay bit-identical to always-re-analyse sweeps; only redundant
// work is dropped (in particular the final, unchanged sweep that merely
// confirms convergence).

/// True when `changed[f]` or any of f's neighbors' flags is set.
bool inputs_dirty(const std::vector<char>& changed,
                  const std::vector<std::vector<FlowId>>& neighbors,
                  std::size_t f) {
  if (changed[f]) return true;
  for (const FlowId j : neighbors[f]) {
    if (changed[static_cast<std::size_t>(j.v)]) return true;
  }
  return false;
}

/// One Gauss-Seidel sweep: analyse flows in order against the live map.
/// `changed` is read in place — entries below the current flow hold this
/// sweep's status, entries at or above it the previous sweep's, which is
/// exactly the read-set each flow saw last time.  Returns false on a
/// divergent per-hop analysis.
bool sweep_gauss_seidel(const AnalysisContext& ctx, JitterMap& jitters,
                        const HopOptions& hop,
                        const std::vector<std::vector<FlowId>>& neighbors,
                        bool first_sweep, std::vector<char>& changed,
                        std::vector<FlowResult>& results) {
  JitterMap before;  // per-flow snapshot, copy-on-write (one pointer)
  bool ok = true;
  for (std::size_t f = 0; f < ctx.flow_count(); ++f) {
    if (!first_sweep && !inputs_dirty(changed, neighbors, f)) {
      changed[f] = 0;  // identity re-analysis skipped; result reused
      continue;
    }
    const FlowId id(static_cast<std::int32_t>(f));
    before.adopt_flow(jitters, id);
    results[f] = analyze_flow_end_to_end(ctx, jitters, id, hop);
    changed[f] = jitters.flow_equals(before, id) ? 0 : 1;
    ok &= results[f].all_converged();
  }
  return ok;
}

/// One Jacobi sweep: all dirty-input flows against a frozen snapshot, in
/// parallel; their jitters are merged back afterwards.  The pool is created
/// once per analyze_holistic call and reused across sweeps.
bool sweep_jacobi(const AnalysisContext& ctx, JitterMap& jitters,
                  const HopOptions& hop,
                  const std::vector<std::vector<FlowId>>& neighbors,
                  bool first_sweep, std::vector<char>& changed,
                  std::vector<FlowResult>& results, ThreadPool& pool) {
  const JitterMap snapshot = jitters;
  const std::size_t n = ctx.flow_count();
  // All reads go against the previous sweep's flags (Jacobi semantics).
  const std::vector<char> changed_prev = changed;
  std::vector<char> analyzed(n, 0);
  std::vector<JitterMap> locals(n);

  pool.parallel_for(n, [&](std::size_t f) {
    if (!first_sweep && !inputs_dirty(changed_prev, neighbors, f)) {
      changed[f] = 0;
      return;
    }
    const FlowId id(static_cast<std::int32_t>(f));
    locals[f] = snapshot;
    results[f] = analyze_flow_end_to_end(ctx, locals[f], id, hop);
    changed[f] = locals[f].flow_equals(snapshot, id) ? 0 : 1;
    analyzed[f] = 1;
  });

  JitterMap merged = snapshot;
  bool ok = true;
  for (std::size_t f = 0; f < n; ++f) {
    if (!analyzed[f]) continue;
    merged.adopt_flow(locals[f], FlowId(static_cast<std::int32_t>(f)));
    ok &= results[f].all_converged();
  }
  jitters = std::move(merged);
  return ok;
}

}  // namespace

HolisticResult analyze_holistic(const AnalysisContext& ctx,
                                const HolisticOptions& opts) {
  HolisticResult out;
  out.jitters =
      opts.initial_jitters ? *opts.initial_jitters : JitterMap::initial(ctx);
  out.flows.resize(ctx.flow_count());

  const std::vector<std::vector<FlowId>> neighbors = link_neighbors(ctx);
  std::vector<char> changed(ctx.flow_count(), 1);

  std::unique_ptr<ThreadPool> pool;
  if (opts.order == SweepOrder::kJacobi) {
    pool = std::make_unique<ThreadPool>(opts.threads);
  }

  for (int sweep = 0; sweep < opts.max_sweeps; ++sweep) {
    const bool first = sweep == 0;
    const bool ok =
        opts.order == SweepOrder::kGaussSeidel
            ? sweep_gauss_seidel(ctx, out.jitters, opts.hop, neighbors, first,
                                 changed, out.flows)
            : sweep_jacobi(ctx, out.jitters, opts.hop, neighbors, first,
                           changed, out.flows, *pool);
    out.sweeps = sweep + 1;

    // Any per-hop divergence means the jitters would grow without bound:
    // report unschedulable immediately.
    if (!ok) {
      out.converged = false;
      out.schedulable = false;
      return out;
    }

    if (std::none_of(changed.begin(), changed.end(),
                     [](char c) { return c != 0; })) {
      out.converged = true;
      break;
    }
  }

  if (!out.converged) {
    // Sweep cap reached without a fixed point: treat as unschedulable (the
    // monotone jitters were still growing).
    out.schedulable = false;
    return out;
  }

  out.schedulable = true;
  for (const FlowResult& fr : out.flows) {
    if (!fr.schedulable()) {
      out.schedulable = false;
      break;
    }
  }
  return out;
}

HolisticResult analyze_holistic_dirty(const AnalysisContext& ctx,
                                      const std::vector<bool>& dirty,
                                      JitterMap start,
                                      const HolisticOptions& opts,
                                      IncrementalStats* stats) {
  std::vector<FlowId> dirty_ids;
  for (std::size_t f = 0; f < ctx.flow_count(); ++f) {
    if (f < dirty.size() && dirty[f]) {
      dirty_ids.push_back(FlowId(static_cast<std::int32_t>(f)));
    }
  }

  HolisticResult out;
  out.jitters = std::move(start);
  out.flows.resize(ctx.flow_count());

  // Per-flow change flags over the dirty set (clean flows never change —
  // they are not analysed).  A dirty flow is re-analysed only when it or a
  // read-set neighbor changed since its previous analysis; a skipped
  // re-analysis would have been the identity, so results stay bit-identical
  // (same scheme as analyze_holistic's sweeps).  The read-set is walked on
  // the fly over the flow's route links — probes must not pay an all-flows
  // neighbor table for a small dirty component.
  std::vector<char> changed(ctx.flow_count(), 0);
  for (const FlowId id : dirty_ids) {
    changed[static_cast<std::size_t>(id.v)] = 1;
  }
  const auto inputs_dirty = [&](FlowId id) {
    if (changed[static_cast<std::size_t>(id.v)]) return true;
    for (const LinkRef l : ctx.route_links(id)) {
      for (const FlowId j : ctx.flows_on_link(l)) {
        if (changed[static_cast<std::size_t>(j.v)]) return true;
      }
    }
    return false;
  };

  bool diverged = false;
  // A sweep writes only the analysed (dirty) flows' own entries, so the
  // convergence snapshot/compare stays proportional to the flows actually
  // analysed instead of the whole map.  One snapshot map serves every
  // sweep: adopt_flow overwrites the slot, so carrying the map across
  // sweeps saves the per-sweep slot-vector allocation on probe hot paths.
  JitterMap before;
  for (int sweep = 0; sweep < opts.max_sweeps; ++sweep) {
    for (const FlowId id : dirty_ids) {
      if (sweep > 0 && !inputs_dirty(id)) {
        changed[static_cast<std::size_t>(id.v)] = 0;
        continue;
      }
      before.adopt_flow(out.jitters, id, id);
      FlowResult& fr = out.flows[static_cast<std::size_t>(id.v)];
      fr = analyze_flow_end_to_end(ctx, out.jitters, id, opts.hop);
      changed[static_cast<std::size_t>(id.v)] =
          out.jitters.flow_equals(before, id) ? 0 : 1;
      if (stats != nullptr) ++stats->flow_analyses;
      if (!fr.all_converged()) diverged = true;
    }
    out.sweeps = sweep + 1;
    if (stats != nullptr) ++stats->sweeps;

    if (diverged) break;
    bool unchanged = true;
    for (const FlowId id : dirty_ids) {
      if (changed[static_cast<std::size_t>(id.v)]) {
        unchanged = false;
        break;
      }
    }
    if (unchanged) {
      out.converged = true;
      break;
    }
  }

  // schedulable stays false: the caller adopts its cached FlowResults for
  // the clean flows and finalizes the verdict over the complete vector.
  return out;
}

}  // namespace gmfnet::core
