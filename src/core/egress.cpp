#include "core/egress.hpp"

#include <stdexcept>

#include "core/hop_level.hpp"
#include "util/fixed_point.hpp"

namespace gmfnet::core {

namespace {
LinkRef outgoing_link(const AnalysisContext& ctx, FlowId i, NodeId n) {
  const net::Route& route = ctx.flow(i).route();
  const NodeId next = route.succ(n);
  if (!next.valid() || n == route.source()) {
    throw std::invalid_argument(
        "analyze_egress: node is not an intermediate hop of the flow");
  }
  return LinkRef(n, next);
}
}  // namespace

bool egress_feasible(const AnalysisContext& ctx, FlowId i, NodeId n) {
  // eq (35) with the self term included (DESIGN.md correction #3).
  return ctx.egress_level_utilization(i, outgoing_link(ctx, i, n)) < 1.0;
}

HopResult analyze_egress(const AnalysisContext& ctx, const JitterMap& jitters,
                         FlowId i, std::size_t frame, NodeId n,
                         const HopOptions& opts) {
  HopResult result;
  const LinkRef link = outgoing_link(ctx, i, n);
  const StageKey stage = StageKey::link(link);
  const gmfnet::Time circ = ctx.circ(n);

  if (!egress_feasible(ctx, i, n)) return result;

  const gmf::FlowLinkParams& pi = ctx.link_params(i, link);
  const gmfnet::Time ck = pi.c(frame);
  const gmfnet::Time tsum_i = pi.tsum();
  const gmfnet::Time mft = pi.mft();
  const std::int64_t nf_k = pi.nframes(frame);

  FixedPointOptions fp;
  fp.horizon = opts.horizon;
  HopScratch& scratch = HopScratch::local();

  // flows_on_link over-approximates the hep level size; good enough for a
  // cost cutover.
  if (opts.use_envelope &&
      ctx.flows_on_link(link).size() > kEnvelopeMinInterferers) {
    // hep flows (eq 2) interfere with both transmission time and task
    // services; gathered allocation-free into the per-thread buffer.  The
    // analysed flow itself participates in the busy period (correction #3)
    // but is evaluated directly, outside the cached envelope.
    auto& ids = scratch.ids;
    ids.clear();
    ctx.for_each_hep(i, link, [&](FlowId j) { ids.push_back(j); });
    LevelSlot& slot = scratch.slot(
        HopSlotKey{HopKind::kEgress, link.src.v, link.dst.v, i.v});
    slot.ensure(ctx, jitters, ids, stage, link);
    slot.ensure_self(ctx.demand(i, link), jitters.max_jitter(i, stage));

    // Level-i busy period, eqs (28)-(29): lower-priority blocking MFT plus,
    // per level-i flow, transmission demand MX and task-service demand
    // NX * CIRC (self task services per opts.charge_self_circ).
    const auto busy_fn = [&](gmfnet::Time t) {
      const gmf::EnvelopeSums s = slot.envelope().eval(t, slot.cursor());
      const gmf::EnvelopeSums self_s =
          slot.self_envelope().eval(t, slot.self_cursor());
      gmfnet::Time next =
          mft + gmfnet::Time(s.cost + self_s.cost) + s.count * circ;
      if (opts.charge_self_circ) {
        next += self_s.count * circ;
      }
      return next;
    };
    const FixedPointResult busy = iterate_fixed_point(mft + ck, busy_fn, fp);
    result.iterations += busy.iterations;
    result.busy_period = busy.value;
    if (!busy.converged) return result;

    const std::int64_t q_count =
        gmfnet::max(busy.value, gmfnet::Time(1)).ceil_div(tsum_i);
    result.instances = q_count;

    gmfnet::Time worst = gmfnet::Time::zero();
    for (std::int64_t q = 0; q < q_count; ++q) {
      // Queueing, eqs (30)-(31): blocking + q cycles of self transmission
      // (+ self task services, correction #5) + hep interference.
      gmfnet::Time self = mft + q * pi.csum();
      if (opts.charge_self_circ) {
        self += (q * pi.nsum() + nf_k) * circ;
      }
      const auto w_fn = [&](gmfnet::Time w) {
        const gmf::EnvelopeSums s = slot.envelope().eval(w, slot.cursor());
        return self + gmfnet::Time(s.cost) + s.count * circ;
      };
      const FixedPointResult w = iterate_fixed_point(self, w_fn, fp);
      result.iterations += w.iterations;
      if (!w.converged) return result;
      // eq (32): R(q) = w(q) - q*TSUM_i + C_i^k.
      worst = gmfnet::max(worst, w.value - q * tsum_i + ck);
    }

    // eq (33): add propagation delay.
    result.response = worst + ctx.network().prop(link.src, link.dst);
    result.converged = true;
    return result;
  }

  // Reference (naive) path: level set {i} ∪ hep in the per-thread buffer.
  auto& level = scratch.naive;
  level.clear();
  level.push_back(HopScratch::NaiveSpec{&ctx.demand(i, link),
                                        jitters.max_jitter(i, stage), true});
  ctx.for_each_hep(i, link, [&](FlowId j) {
    level.push_back(HopScratch::NaiveSpec{&ctx.demand(j, link),
                                          jitters.max_jitter(j, stage),
                                          false});
  });

  const auto busy_fn = [&](gmfnet::Time t) {
    gmfnet::Time next = mft;
    for (const HopScratch::NaiveSpec& j : level) {
      if (j.is_self && !opts.charge_self_circ) {
        next += j.curve->mx(t + j.shift);
      } else {
        next += j.curve->mx(t + j.shift) + j.curve->nx(t + j.shift) * circ;
      }
    }
    return next;
  };
  const FixedPointResult busy = iterate_fixed_point(mft + ck, busy_fn, fp);
  result.iterations += busy.iterations;
  result.busy_period = busy.value;
  if (!busy.converged) return result;

  const std::int64_t q_count =
      gmfnet::max(busy.value, gmfnet::Time(1)).ceil_div(tsum_i);
  result.instances = q_count;

  gmfnet::Time worst = gmfnet::Time::zero();
  for (std::int64_t q = 0; q < q_count; ++q) {
    gmfnet::Time self = mft + q * pi.csum();
    if (opts.charge_self_circ) {
      self += (q * pi.nsum() + nf_k) * circ;
    }
    const auto w_fn = [&](gmfnet::Time w) {
      gmfnet::Time next = self;
      for (const HopScratch::NaiveSpec& j : level) {
        if (j.is_self) continue;
        next += j.curve->mx(w + j.shift) + j.curve->nx(w + j.shift) * circ;
      }
      return next;
    };
    const FixedPointResult w = iterate_fixed_point(self, w_fn, fp);
    result.iterations += w.iterations;
    if (!w.converged) return result;
    worst = gmfnet::max(worst, w.value - q * tsum_i + ck);
  }

  // eq (33): add propagation delay.
  result.response = worst + ctx.network().prop(link.src, link.dst);
  result.converged = true;
  return result;
}

}  // namespace gmfnet::core
