// AnalysisContext: the world the response-time analyses run against
// (network + flow set + all derived per-link parameters), and JitterMap:
// the mutable per-stage generalized-jitter state that the holistic
// iteration drives to a fixed point.
//
// The context is built *incrementally*: flows can be added and removed one
// at a time, and only the state derived from the touched flow's route links
// is (re)computed — untouched flows' parameter caches are never rebuilt.
// All heavy per-flow derived state (stage pipeline, FlowLinkParams,
// DemandCurves) is immutable once built and shared between copies, so
// copying a context is a cheap copy-on-write view: the admission engine
// fans what-if analyses over copies without recomputing anything.
//
// Concurrency contract (the snapshot what-if path leans on this): every
// const member function, the copy constructor, and adopt_flow *reading its
// source* are safe to call from any number of threads concurrently, as long
// as no thread mutates the object being read.  The shared derived state
// (FlowDerived, network, CIRC table) is immutable after construction and
// reference-counted with atomic counts, so concurrent copies and
// cross-context adoption never race.  Mutations (add_flow / remove_flow)
// require exclusive access to the mutated context only — they never write
// through the shared state.  The same contract holds for JitterMap: const
// reads and copies are concurrency-safe, writes are copy-on-write against
// any state shared with other maps (a shared per-flow map is cloned before
// the first write), so concurrent readers holding snapshots never observe
// a writer's mutation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "gmf/demand.hpp"
#include "gmf/flow.hpp"
#include "gmf/link_params.hpp"
#include "net/network.hpp"
#include "util/time.hpp"

namespace gmfnet::core {

using net::FlowId;
using net::LinkRef;
using net::NodeId;

/// A "stage" of a flow's pipeline in the Figure-6 algorithm: either a link
/// traversal (first hop or switch egress) or the ingress processing inside a
/// switch.  GJ_i^k,link(N1,N2) is keyed by a kLink stage, GJ_i^k,in(N) by a
/// kIngress stage.
struct StageKey {
  enum class Kind : std::uint8_t { kLink, kIngress };

  Kind kind = Kind::kLink;
  NodeId a;  ///< link source / ingress node
  NodeId b;  ///< link destination; invalid for kIngress

  static StageKey link(NodeId src, NodeId dst) {
    return StageKey{Kind::kLink, src, dst};
  }
  static StageKey link(LinkRef l) { return link(l.src, l.dst); }
  static StageKey ingress(NodeId n) { return StageKey{Kind::kIngress, n, {}}; }

  [[nodiscard]] bool is_link() const { return kind == Kind::kLink; }
  [[nodiscard]] LinkRef as_link() const { return LinkRef(a, b); }

  auto operator<=>(const StageKey&) const = default;
};

class AnalysisContext;

/// Per-flow, per-stage, per-frame generalized jitter — the quantity the
/// holistic analysis iterates on.  Missing entries read as zero (the
/// holistic initial assumption for non-source stages).
///
/// Per-flow stage maps are copy-on-write: copying a JitterMap shares them,
/// and a write clones only the written flow's map.  Snapshots (Jacobi
/// sweeps, the engine's convergence checks and warm starts) therefore cost
/// one pointer per untouched flow.  Equality compares values, not sharing.
class JitterMap {
 public:
  JitterMap() = default;

  /// Holistic initial state: every flow's first-link stage carries the
  /// source-specified GJ_i^k; all downstream stages are absent (zero).
  static JitterMap initial(const AnalysisContext& ctx);

  /// GJ for one frame at one stage (zero when never set).
  [[nodiscard]] gmfnet::Time jitter(FlowId flow, const StageKey& stage,
                                    std::size_t frame) const;

  /// extra_j of the paper: max over frames of the stage jitter.
  [[nodiscard]] gmfnet::Time max_jitter(FlowId flow,
                                        const StageKey& stage) const;

  void set_jitter(FlowId flow, const StageKey& stage, std::size_t frame,
                  gmfnet::Time value);

  /// Replaces this map's entries for `flow` with those of `other` (used by
  /// the Jacobi sweep to merge per-flow results computed against a frozen
  /// snapshot).
  void adopt_flow(const JitterMap& other, FlowId flow);

  /// Cross-id adoption: replaces this map's entries for `to` with `other`'s
  /// entries for `from`.  Used by the incremental engine to carry a flow's
  /// converged jitters across flow-id shifts caused by removals.
  void adopt_flow(const JitterMap& other, FlowId from, FlowId to);

  /// Drops `flow`'s entries and shifts every higher flow id down by one —
  /// the jitter-map counterpart of erasing a flow from the context.
  void erase_flow(FlowId flow);

  /// Clears `flow`'s entries (they read as zero again) without shifting ids.
  void clear_flow(FlowId flow);

  /// True when this map's and `other`'s entries for `flow` are identical.
  /// Lets the incremental engine detect convergence by comparing only the
  /// flows a sweep may have changed, instead of the whole map.
  [[nodiscard]] bool flow_equals(const JitterMap& other, FlowId flow) const;

  /// Opaque shared handle to one flow's current entry state (null = no
  /// entries).  Holding the handle *pins* that state: per-flow maps are
  /// copy-on-write and only mutate in place when unshared, so any later
  /// write to the flow — in this map or any copy — clones first.  Therefore
  /// flow_state_ptr(f) == held_handle.get() proves the flow's entries are
  /// unchanged since the handle was taken (no in-place mutation, and no
  /// address reuse while the handle keeps the old state alive).  The hop-
  /// level envelope cache (core/hop_level.hpp) uses this to revalidate a
  /// built envelope in O(1) per interferer, with zero map lookups.
  using FlowStateHandle = std::shared_ptr<const void>;
  [[nodiscard]] FlowStateHandle flow_state(FlowId flow) const;
  /// The raw identity of `flow`'s current state, for comparison against a
  /// *held* FlowStateHandle (sound only while the handle is alive).
  [[nodiscard]] const void* flow_state_ptr(FlowId flow) const;

  bool operator==(const JitterMap& other) const;

  // -- serialization accessors (io/checkpoint) ------------------------------
  // A JitterMap is value-equal to another iff the per-flow per-stage frame
  // vectors match, so a checkpoint needs exactly: the slot count, which
  // slots hold entries, and each slot's (stage -> frames) pairs in stage
  // order.  The cached per-stage maximum is derived state and is rebuilt on
  // restore.

  /// Number of per-flow slots (>= every flow id ever written or adopted).
  [[nodiscard]] std::size_t flow_slots() const { return per_flow_.size(); }
  /// True when `flow` holds an entry state (false reads as all-zero).
  [[nodiscard]] bool has_entries(FlowId flow) const;
  /// One flow's complete entry state: (stage, per-frame jitters) pairs in
  /// stage order.  Empty when the slot is absent.
  using StageEntries =
      std::vector<std::pair<StageKey, std::vector<gmfnet::Time>>>;
  [[nodiscard]] StageEntries stage_entries(FlowId flow) const;
  /// Pre-sizes the slot vector to exactly `n` absent slots (restore path;
  /// slot count participates in operator==).
  void resize_slots(std::size_t n);
  /// Installs a complete per-frame vector for one stage of `flow`,
  /// recomputing the cached maximum — the bulk restore counterpart of
  /// set_jitter.
  void set_stage_frames(FlowId flow, const StageKey& stage,
                        std::vector<gmfnet::Time> frames);

 private:
  /// Per-frame jitters of one flow at one stage, with the frame maximum
  /// maintained incrementally — max_jitter (extra_j) is read k times per
  /// hop analysis per fixed-point chain, so it must not rescan the frames.
  struct StageJitter {
    std::vector<gmfnet::Time> frames;
    gmfnet::Time max = gmfnet::Time::zero();  ///< max over `frames`

    /// Value equality ignores `max`: it is derived from `frames`.
    bool operator==(const StageJitter& other) const {
      return frames == other.frames;
    }
  };

  /// [stage] -> per-frame jitter state, for one flow.
  using StageMap = std::map<StageKey, StageJitter>;

  /// Read view of one flow's entries (empty when absent).
  [[nodiscard]] const StageMap& flow_map(std::size_t f) const;
  /// Write access: clones the flow's map iff it is shared (copy-on-write).
  [[nodiscard]] StageMap& mutable_flow_map(std::size_t f);

  /// per_flow_[flow.v] -> shared stage map (null reads as empty).
  std::vector<std::shared_ptr<StageMap>> per_flow_;
};

/// The analysis world.  Flow addition validates the flow and eagerly
/// precomputes, for every link of its route, the FlowLinkParams and
/// DemandCurve — so all analysis-time queries are read-only and safe to
/// issue from parallel (Jacobi) sweeps.  Per-link aggregates (utilization
/// sums) are maintained incrementally: an add/remove touches only the links
/// of the affected flow's route.
class AnalysisContext {
 public:
  /// Empty world over `network`; flows are added incrementally.
  explicit AnalysisContext(net::Network network);
  /// Monolithic construction: equivalent to adding every flow in order.
  AnalysisContext(net::Network network, std::vector<gmf::Flow> flows);

  /// Validates `flow` (throws std::logic_error on malformed flows), derives
  /// its per-link parameter caches and appends it.  Only this flow's route
  /// links are touched; every other flow's derived state is untouched and
  /// stays shared with any copies of the context.
  FlowId add_flow(gmf::Flow flow);

  /// Appends every flow of `flows` in order, equivalent to (and
  /// bit-identical with) repeated add_flow — but each touched link's
  /// aggregates are recomputed once after all appends instead of once per
  /// add, so bulk construction of an n-flow shared link costs O(n) aggregate
  /// work, not O(n^2).  The checkpoint warm-boot path and the monolithic
  /// constructor build contexts through this.
  void add_flows(std::vector<gmf::Flow> flows);

  /// Removes the flow at `index` (flow ids above it shift down by one).
  /// Only the per-link aggregates of the removed flow's route links are
  /// recomputed.  Throws std::out_of_range on a bad index.
  void remove_flow(std::size_t index);

  /// Appends flow `src` of `from` by *adopting* its immutable derived state
  /// (parameters, demand curves, stages) — no validation, no curve
  /// rebuilding; only this context's per-link aggregates are updated.  The
  /// engine's shard/snapshot layer uses this to assemble domain- and
  /// probe-contexts from committed state in O(route links) per flow.
  /// `from` must be over the same network.  Equivalent to
  /// add_flow(from.flow(src)) but O(curves) cheaper, bit-identically.
  FlowId adopt_flow(const AnalysisContext& from, FlowId src);

  /// adopt_flow minus the aggregate recomputation: shares the derived state
  /// and registers the flow on its route links; the caller owns calling
  /// recompute_all_aggregates() (or recomputing the touched links) before
  /// any query runs.  Bulk assembly of an n-flow shared link through this +
  /// one recompute costs O(n) aggregate work instead of O(n^2), with a
  /// final state bit-identical to repeated adopt_flow (the recompute sums
  /// from scratch in flow-id order either way).
  FlowId adopt_flow_deferred(const AnalysisContext& from, FlowId src);

  /// Recomputes every link's aggregates from scratch — the bulk closing
  /// bracket of a adopt_flow_deferred sequence.
  void recompute_all_aggregates();

  /// An empty context sharing `like`'s network and CIRC table: skips
  /// network re-validation and CIRC recomputation, so building a per-domain
  /// context costs only the per-flow adoption.
  [[nodiscard]] static AnalysisContext empty_clone(const AnalysisContext& like);

  [[nodiscard]] const net::Network& network() const { return *net_; }
  [[nodiscard]] std::size_t flow_count() const { return derived_.size(); }
  [[nodiscard]] const gmf::Flow& flow(FlowId id) const {
    return derived_[static_cast<std::size_t>(id.v)]->flow;
  }

  /// flows(N1,N2): ids of flows whose route uses the directed link.
  [[nodiscard]] const std::vector<FlowId>& flows_on_link(LinkRef link) const;

  /// hep(τ_i, N1, N2), eq (2): other flows on the link with priority >= τ_i.
  [[nodiscard]] std::vector<FlowId> hep(FlowId i, LinkRef link) const;
  /// lp(τ_i, N1, N2), eq (3): other flows on the link with lower priority.
  [[nodiscard]] std::vector<FlowId> lp(FlowId i, LinkRef link) const;

  /// Allocation-free hep traversal: calls `fn(j)` for every flow of
  /// hep(τ_i, link), in link order — the single definition of eq (2)'s
  /// filter for the hot paths that must not build an id vector.
  template <typename Fn>
  void for_each_hep(FlowId i, LinkRef link, Fn&& fn) const {
    const std::int64_t pi = flow(i).priority();
    for (const FlowId j : flows_on_link(link)) {
      if (j != i && flow(j).priority() >= pi) fn(j);
    }
  }

  /// Basic parameters of flow `i` on `link` (must be a link of its route).
  [[nodiscard]] const gmf::FlowLinkParams& link_params(FlowId i,
                                                       LinkRef link) const;
  /// Request-bound curve of flow `i` on `link`.
  [[nodiscard]] const gmf::DemandCurve& demand(FlowId i, LinkRef link) const;

  /// CIRC(N) of a switch node (precomputed).
  [[nodiscard]] gmfnet::Time circ(NodeId n) const;

  /// Sum over flows on `link` of CSUM/TSUM — the left side of eq (20).
  /// Maintained incrementally; O(log links) per query.
  [[nodiscard]] double link_utilization(LinkRef link) const;
  /// Ingress-task load on the FIFO of `link`: sum of NSUM*CIRC(dst)/TSUM.
  [[nodiscard]] double ingress_utilization(LinkRef link) const;
  /// Egress load of eq (34)/(35) for flow i: hep flows plus i itself.
  [[nodiscard]] double egress_level_utilization(FlowId i, LinkRef link) const;

  /// Opaque shared handle to flow `i`'s immutable derived state (params,
  /// demand curves, stages).  The state is shared across context copies and
  /// never mutated, so two equal handles denote the *same* flow with the
  /// same curves; holding the handle keeps the state alive, making raw
  /// derived_state_ptr comparisons against a held handle ABA-safe.  The
  /// hop-level envelope cache uses this to revalidate interferer curves in
  /// O(1) per flow.
  using DerivedStateHandle = std::shared_ptr<const void>;
  [[nodiscard]] DerivedStateHandle derived_state(FlowId i) const {
    return derived_[static_cast<std::size_t>(i.v)];
  }
  [[nodiscard]] const void* derived_state_ptr(FlowId i) const {
    return derived_[static_cast<std::size_t>(i.v)].get();
  }

  /// The ordered pipeline stages of flow `i` per Figure 6: first link, then
  /// (ingress, egress-link) per intermediate switch.
  [[nodiscard]] const std::vector<StageKey>& stages(FlowId i) const;

  /// The route links of flow `i`, in traversal order (cached).
  [[nodiscard]] const std::vector<LinkRef>& route_links(FlowId i) const;

 private:
  /// One flow plus everything derived from it alone (given the network):
  /// immutable once built, shared between context copies — copying a
  /// context costs one pointer per untouched flow.
  struct FlowDerived {
    gmf::Flow flow;
    std::vector<StageKey> stages;
    std::vector<LinkRef> links;               ///< route links, in order
    std::vector<gmf::FlowLinkParams> params;  ///< parallel to `links`
    std::vector<gmf::DemandCurve> demand;     ///< parallel to `links`
  };

  /// Per-link mutable state: the flows crossing the link plus the
  /// incrementally maintained utilization aggregates.
  struct LinkState {
    std::vector<FlowId> flows;
    double utilization = 0.0;          ///< sum of CSUM/TSUM
    double ingress_utilization = 0.0;  ///< sum of NSUM*CIRC(dst)/TSUM
  };

  /// Uninitialized shell for empty_clone (no network yet).
  AnalysisContext() = default;

  [[nodiscard]] const FlowDerived& derived(FlowId i, const char* what) const;
  /// Recomputes `state`'s aggregates from scratch, summing in flow-id order
  /// (bit-identical to a monolithic rebuild).
  void recompute_link_aggregates(LinkRef link, LinkState& state) const;
  /// add_flow minus the aggregate recomputation: validates, derives and
  /// appends `flow`, registering it on its route links.  The caller owns
  /// recomputing the touched links' aggregates before any query runs.
  FlowId append_flow_deferred(gmf::Flow flow);

  std::shared_ptr<const net::Network> net_;
  /// CIRC by node id (zero for non-switches); network-static, shared.
  std::shared_ptr<const std::vector<gmfnet::Time>> circ_;
  std::vector<std::shared_ptr<const FlowDerived>> derived_;
  std::map<LinkRef, LinkState> links_;
};

}  // namespace gmfnet::core
