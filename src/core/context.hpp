// AnalysisContext: the immutable world the response-time analyses run
// against (network + flow set + all derived per-link parameters), and
// JitterMap: the mutable per-stage generalized-jitter state that the
// holistic iteration drives to a fixed point.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "gmf/demand.hpp"
#include "gmf/flow.hpp"
#include "gmf/link_params.hpp"
#include "net/network.hpp"
#include "util/time.hpp"

namespace gmfnet::core {

using net::FlowId;
using net::LinkRef;
using net::NodeId;

/// A "stage" of a flow's pipeline in the Figure-6 algorithm: either a link
/// traversal (first hop or switch egress) or the ingress processing inside a
/// switch.  GJ_i^k,link(N1,N2) is keyed by a kLink stage, GJ_i^k,in(N) by a
/// kIngress stage.
struct StageKey {
  enum class Kind : std::uint8_t { kLink, kIngress };

  Kind kind = Kind::kLink;
  NodeId a;  ///< link source / ingress node
  NodeId b;  ///< link destination; invalid for kIngress

  static StageKey link(NodeId src, NodeId dst) {
    return StageKey{Kind::kLink, src, dst};
  }
  static StageKey link(LinkRef l) { return link(l.src, l.dst); }
  static StageKey ingress(NodeId n) { return StageKey{Kind::kIngress, n, {}}; }

  [[nodiscard]] bool is_link() const { return kind == Kind::kLink; }
  [[nodiscard]] LinkRef as_link() const { return LinkRef(a, b); }

  auto operator<=>(const StageKey&) const = default;
};

class AnalysisContext;

/// Per-flow, per-stage, per-frame generalized jitter — the quantity the
/// holistic analysis iterates on.  Missing entries read as zero (the
/// holistic initial assumption for non-source stages).
class JitterMap {
 public:
  JitterMap() = default;

  /// Holistic initial state: every flow's first-link stage carries the
  /// source-specified GJ_i^k; all downstream stages are absent (zero).
  static JitterMap initial(const AnalysisContext& ctx);

  /// GJ for one frame at one stage (zero when never set).
  [[nodiscard]] gmfnet::Time jitter(FlowId flow, const StageKey& stage,
                                    std::size_t frame) const;

  /// extra_j of the paper: max over frames of the stage jitter.
  [[nodiscard]] gmfnet::Time max_jitter(FlowId flow,
                                        const StageKey& stage) const;

  void set_jitter(FlowId flow, const StageKey& stage, std::size_t frame,
                  gmfnet::Time value);

  /// Replaces this map's entries for `flow` with those of `other` (used by
  /// the Jacobi sweep to merge per-flow results computed against a frozen
  /// snapshot).
  void adopt_flow(const JitterMap& other, FlowId flow);

  bool operator==(const JitterMap&) const = default;

 private:
  friend class AnalysisContext;
  /// per_flow_[flow.v][stage] -> per-frame jitter vector
  std::vector<std::map<StageKey, std::vector<gmfnet::Time>>> per_flow_;
};

/// Immutable analysis world.  Construction validates the network and every
/// flow, and eagerly precomputes, for every (flow, route link) pair, the
/// FlowLinkParams and DemandCurve — so all analysis-time queries are
/// read-only and safe to issue from parallel (Jacobi) sweeps.
class AnalysisContext {
 public:
  AnalysisContext(net::Network network, std::vector<gmf::Flow> flows);

  [[nodiscard]] const net::Network& network() const { return net_; }
  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }
  [[nodiscard]] const gmf::Flow& flow(FlowId id) const {
    return flows_[static_cast<std::size_t>(id.v)];
  }
  [[nodiscard]] const std::vector<gmf::Flow>& flows() const { return flows_; }

  /// flows(N1,N2): ids of flows whose route uses the directed link.
  [[nodiscard]] const std::vector<FlowId>& flows_on_link(LinkRef link) const;

  /// hep(τ_i, N1, N2), eq (2): other flows on the link with priority >= τ_i.
  [[nodiscard]] std::vector<FlowId> hep(FlowId i, LinkRef link) const;
  /// lp(τ_i, N1, N2), eq (3): other flows on the link with lower priority.
  [[nodiscard]] std::vector<FlowId> lp(FlowId i, LinkRef link) const;

  /// Basic parameters of flow `i` on `link` (must be a link of its route).
  [[nodiscard]] const gmf::FlowLinkParams& link_params(FlowId i,
                                                       LinkRef link) const;
  /// Request-bound curve of flow `i` on `link`.
  [[nodiscard]] const gmf::DemandCurve& demand(FlowId i, LinkRef link) const;

  /// CIRC(N) of a switch node (precomputed).
  [[nodiscard]] gmfnet::Time circ(NodeId n) const;

  /// Sum over flows on `link` of CSUM/TSUM — the left side of eq (20).
  [[nodiscard]] double link_utilization(LinkRef link) const;
  /// Ingress-task load on the FIFO of `link`: sum of NSUM*CIRC(dst)/TSUM.
  [[nodiscard]] double ingress_utilization(LinkRef link) const;
  /// Egress load of eq (34)/(35) for flow i: hep flows plus i itself.
  [[nodiscard]] double egress_level_utilization(FlowId i, LinkRef link) const;

  /// The ordered pipeline stages of flow `i` per Figure 6: first link, then
  /// (ingress, egress-link) per intermediate switch.
  [[nodiscard]] const std::vector<StageKey>& stages(FlowId i) const;

 private:
  net::Network net_;
  std::vector<gmf::Flow> flows_;
  std::map<LinkRef, std::vector<FlowId>> flows_on_link_;
  std::vector<std::vector<StageKey>> stages_;
  // (flow, link) -> dense index into params_/demand_.
  std::map<std::pair<std::int32_t, LinkRef>, std::size_t> pair_index_;
  std::vector<gmf::FlowLinkParams> params_;
  std::vector<gmf::DemandCurve> demand_;
  std::vector<gmfnet::Time> circ_;  ///< by node id; zero for non-switches
};

}  // namespace gmfnet::core
