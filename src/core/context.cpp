#include "core/context.hpp"

#include <stdexcept>

#include "switchsim/switch_model.hpp"

namespace gmfnet::core {

JitterMap JitterMap::initial(const AnalysisContext& ctx) {
  JitterMap m;
  m.per_flow_.resize(ctx.flow_count());
  for (std::size_t f = 0; f < ctx.flow_count(); ++f) {
    const FlowId id(static_cast<std::int32_t>(f));
    const gmf::Flow& flow = ctx.flow(id);
    const auto& stages = ctx.stages(id);
    std::vector<gmfnet::Time> src_jitter(flow.frame_count());
    for (std::size_t k = 0; k < flow.frame_count(); ++k) {
      src_jitter[k] = flow.frame(k).jitter;
    }
    m.per_flow_[f][stages.front()] = std::move(src_jitter);
  }
  return m;
}

gmfnet::Time JitterMap::jitter(FlowId flow, const StageKey& stage,
                               std::size_t frame) const {
  const auto f = static_cast<std::size_t>(flow.v);
  if (f >= per_flow_.size()) return gmfnet::Time::zero();
  const auto it = per_flow_[f].find(stage);
  if (it == per_flow_[f].end() || frame >= it->second.size()) {
    return gmfnet::Time::zero();
  }
  return it->second[frame];
}

gmfnet::Time JitterMap::max_jitter(FlowId flow, const StageKey& stage) const {
  const auto f = static_cast<std::size_t>(flow.v);
  if (f >= per_flow_.size()) return gmfnet::Time::zero();
  const auto it = per_flow_[f].find(stage);
  if (it == per_flow_[f].end()) return gmfnet::Time::zero();
  gmfnet::Time m = gmfnet::Time::zero();
  for (gmfnet::Time t : it->second) m = gmfnet::max(m, t);
  return m;
}

void JitterMap::set_jitter(FlowId flow, const StageKey& stage,
                           std::size_t frame, gmfnet::Time value) {
  const auto f = static_cast<std::size_t>(flow.v);
  if (f >= per_flow_.size()) per_flow_.resize(f + 1);
  auto& v = per_flow_[f][stage];
  if (frame >= v.size()) v.resize(frame + 1, gmfnet::Time::zero());
  v[frame] = value;
}

void JitterMap::adopt_flow(const JitterMap& other, FlowId flow) {
  const auto f = static_cast<std::size_t>(flow.v);
  if (f >= per_flow_.size()) per_flow_.resize(f + 1);
  per_flow_[f] = f < other.per_flow_.size()
                     ? other.per_flow_[f]
                     : std::map<StageKey, std::vector<gmfnet::Time>>{};
}

AnalysisContext::AnalysisContext(net::Network network,
                                 std::vector<gmf::Flow> flows)
    : net_(std::move(network)), flows_(std::move(flows)) {
  net_.validate();
  for (const gmf::Flow& f : flows_) f.validate(net_);

  stages_.resize(flows_.size());
  circ_.resize(net_.node_count(), gmfnet::Time::zero());
  for (const NodeId n : net_.nodes_of_kind(net::NodeKind::kSwitch)) {
    circ_[static_cast<std::size_t>(n.v)] = switchsim::circ_of(net_, n);
  }

  for (std::size_t f = 0; f < flows_.size(); ++f) {
    const FlowId id(static_cast<std::int32_t>(f));
    const gmf::Flow& flow = flows_[f];
    const net::Route& route = flow.route();

    // Stage sequence per Figure 6: first link, then per-switch (in, link).
    auto& st = stages_[f];
    st.push_back(StageKey::link(route.node_at(0), route.node_at(1)));
    for (std::size_t i = 1; i + 1 < route.node_count(); ++i) {
      st.push_back(StageKey::ingress(route.node_at(i)));
      st.push_back(StageKey::link(route.node_at(i), route.node_at(i + 1)));
    }

    for (const LinkRef l : route.links()) {
      flows_on_link_[l].push_back(id);
      pair_index_[{id.v, l}] = params_.size();
      params_.emplace_back(flow, net_.linkspeed(l.src, l.dst));
      demand_.emplace_back(params_.back());
    }
  }
}

const std::vector<FlowId>& AnalysisContext::flows_on_link(LinkRef link) const {
  static const std::vector<FlowId> kEmpty;
  const auto it = flows_on_link_.find(link);
  return it == flows_on_link_.end() ? kEmpty : it->second;
}

std::vector<FlowId> AnalysisContext::hep(FlowId i, LinkRef link) const {
  std::vector<FlowId> out;
  const std::int64_t pi = flow(i).priority();
  for (const FlowId j : flows_on_link(link)) {
    if (j != i && flow(j).priority() >= pi) out.push_back(j);
  }
  return out;
}

std::vector<FlowId> AnalysisContext::lp(FlowId i, LinkRef link) const {
  std::vector<FlowId> out;
  const std::int64_t pi = flow(i).priority();
  for (const FlowId j : flows_on_link(link)) {
    if (j != i && flow(j).priority() < pi) out.push_back(j);
  }
  return out;
}

const gmf::FlowLinkParams& AnalysisContext::link_params(FlowId i,
                                                        LinkRef link) const {
  const auto it = pair_index_.find({i.v, link});
  if (it == pair_index_.end()) {
    throw std::out_of_range("link_params: flow does not traverse link");
  }
  return params_[it->second];
}

const gmf::DemandCurve& AnalysisContext::demand(FlowId i, LinkRef link) const {
  const auto it = pair_index_.find({i.v, link});
  if (it == pair_index_.end()) {
    throw std::out_of_range("demand: flow does not traverse link");
  }
  return demand_[it->second];
}

gmfnet::Time AnalysisContext::circ(NodeId n) const {
  if (!net_.has_node(n)) throw std::out_of_range("circ: bad node");
  return circ_[static_cast<std::size_t>(n.v)];
}

double AnalysisContext::link_utilization(LinkRef link) const {
  double u = 0;
  for (const FlowId j : flows_on_link(link)) {
    u += link_params(j, link).utilization();
  }
  return u;
}

double AnalysisContext::ingress_utilization(LinkRef link) const {
  const gmfnet::Time c = circ(link.dst);
  double u = 0;
  for (const FlowId j : flows_on_link(link)) {
    const auto& p = link_params(j, link);
    u += static_cast<double>(p.nsum()) * static_cast<double>(c.ps()) /
         static_cast<double>(p.tsum().ps());
  }
  return u;
}

double AnalysisContext::egress_level_utilization(FlowId i, LinkRef link) const {
  double u = link_params(i, link).utilization();
  for (const FlowId j : hep(i, link)) {
    u += link_params(j, link).utilization();
  }
  return u;
}

const std::vector<StageKey>& AnalysisContext::stages(FlowId i) const {
  return stages_[static_cast<std::size_t>(i.v)];
}

}  // namespace gmfnet::core
