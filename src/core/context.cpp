#include "core/context.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "switchsim/switch_model.hpp"

namespace gmfnet::core {

JitterMap JitterMap::initial(const AnalysisContext& ctx) {
  JitterMap m;
  m.per_flow_.resize(ctx.flow_count());
  for (std::size_t f = 0; f < ctx.flow_count(); ++f) {
    const FlowId id(static_cast<std::int32_t>(f));
    const gmf::Flow& flow = ctx.flow(id);
    const auto& stages = ctx.stages(id);
    StageJitter src_jitter;
    src_jitter.frames.resize(flow.frame_count());
    for (std::size_t k = 0; k < flow.frame_count(); ++k) {
      src_jitter.frames[k] = flow.frame(k).jitter;
      src_jitter.max = gmfnet::max(src_jitter.max, src_jitter.frames[k]);
    }
    m.per_flow_[f] = std::make_shared<StageMap>();
    (*m.per_flow_[f])[stages.front()] = std::move(src_jitter);
  }
  return m;
}

const JitterMap::StageMap& JitterMap::flow_map(std::size_t f) const {
  static const StageMap kEmpty;
  if (f >= per_flow_.size() || !per_flow_[f]) return kEmpty;
  return *per_flow_[f];
}

JitterMap::StageMap& JitterMap::mutable_flow_map(std::size_t f) {
  if (f >= per_flow_.size()) per_flow_.resize(f + 1);
  auto& slot = per_flow_[f];
  if (!slot) {
    slot = std::make_shared<StageMap>();
  } else if (slot.use_count() > 1) {
    // Shared with a snapshot/copy: clone before the write.
    slot = std::make_shared<StageMap>(*slot);
  }
  return *slot;
}

gmfnet::Time JitterMap::jitter(FlowId flow, const StageKey& stage,
                               std::size_t frame) const {
  const StageMap& m = flow_map(static_cast<std::size_t>(flow.v));
  const auto it = m.find(stage);
  if (it == m.end() || frame >= it->second.frames.size()) {
    return gmfnet::Time::zero();
  }
  return it->second.frames[frame];
}

gmfnet::Time JitterMap::max_jitter(FlowId flow, const StageKey& stage) const {
  const StageMap& sm = flow_map(static_cast<std::size_t>(flow.v));
  const auto it = sm.find(stage);
  return it == sm.end() ? gmfnet::Time::zero() : it->second.max;
}

void JitterMap::set_jitter(FlowId flow, const StageKey& stage,
                           std::size_t frame, gmfnet::Time value) {
  StageJitter& sj = mutable_flow_map(static_cast<std::size_t>(flow.v))[stage];
  auto& v = sj.frames;
  if (frame >= v.size()) v.resize(frame + 1, gmfnet::Time::zero());
  const gmfnet::Time old = v[frame];
  v[frame] = value;
  // Maintain the cached maximum exactly: a write at or above it raises it;
  // overwriting the (unique or not) maximum with less forces one rescan.
  if (value >= sj.max) {
    sj.max = value;
  } else if (old == sj.max) {
    gmfnet::Time m = gmfnet::Time::zero();
    for (const gmfnet::Time t : v) m = gmfnet::max(m, t);
    sj.max = m;
  }
}

void JitterMap::adopt_flow(const JitterMap& other, FlowId flow) {
  adopt_flow(other, flow, flow);
}

void JitterMap::adopt_flow(const JitterMap& other, FlowId from, FlowId to) {
  const auto src = static_cast<std::size_t>(from.v);
  const auto dst = static_cast<std::size_t>(to.v);
  if (dst >= per_flow_.size()) per_flow_.resize(dst + 1);
  // Adoption shares the source's map; a later write to either side clones.
  per_flow_[dst] =
      src < other.per_flow_.size() ? other.per_flow_[src] : nullptr;
}

void JitterMap::erase_flow(FlowId flow) {
  const auto f = static_cast<std::size_t>(flow.v);
  if (f < per_flow_.size()) {
    per_flow_.erase(per_flow_.begin() + static_cast<std::ptrdiff_t>(f));
  }
}

void JitterMap::clear_flow(FlowId flow) {
  const auto f = static_cast<std::size_t>(flow.v);
  if (f < per_flow_.size()) per_flow_[f] = nullptr;
}

JitterMap::FlowStateHandle JitterMap::flow_state(FlowId flow) const {
  const auto f = static_cast<std::size_t>(flow.v);
  if (f >= per_flow_.size()) return nullptr;
  return per_flow_[f];
}

const void* JitterMap::flow_state_ptr(FlowId flow) const {
  const auto f = static_cast<std::size_t>(flow.v);
  return f < per_flow_.size() ? static_cast<const void*>(per_flow_[f].get())
                              : nullptr;
}

bool JitterMap::flow_equals(const JitterMap& other, FlowId flow) const {
  const auto f = static_cast<std::size_t>(flow.v);
  // Shared maps are equal by construction; only diverged ones need a deep
  // compare.
  if (f < per_flow_.size() && f < other.per_flow_.size() &&
      per_flow_[f] == other.per_flow_[f]) {
    return true;
  }
  return flow_map(f) == other.flow_map(f);
}

bool JitterMap::operator==(const JitterMap& other) const {
  if (per_flow_.size() != other.per_flow_.size()) return false;
  for (std::size_t f = 0; f < per_flow_.size(); ++f) {
    if (!flow_equals(other, FlowId(static_cast<std::int32_t>(f)))) {
      return false;
    }
  }
  return true;
}

bool JitterMap::has_entries(FlowId flow) const {
  const auto f = static_cast<std::size_t>(flow.v);
  return f < per_flow_.size() && per_flow_[f] != nullptr;
}

JitterMap::StageEntries JitterMap::stage_entries(FlowId flow) const {
  StageEntries out;
  const StageMap& m = flow_map(static_cast<std::size_t>(flow.v));
  out.reserve(m.size());
  for (const auto& [stage, sj] : m) out.emplace_back(stage, sj.frames);
  return out;
}

void JitterMap::resize_slots(std::size_t n) { per_flow_.resize(n); }

void JitterMap::set_stage_frames(FlowId flow, const StageKey& stage,
                                 std::vector<gmfnet::Time> frames) {
  StageJitter sj;
  sj.max = gmfnet::Time::zero();
  for (const gmfnet::Time t : frames) sj.max = gmfnet::max(sj.max, t);
  sj.frames = std::move(frames);
  mutable_flow_map(static_cast<std::size_t>(flow.v))[stage] = std::move(sj);
}

AnalysisContext::AnalysisContext(net::Network network)
    : net_(std::make_shared<const net::Network>(std::move(network))) {
  net_->validate();
  std::vector<gmfnet::Time> circ(net_->node_count(), gmfnet::Time::zero());
  for (const NodeId n : net_->nodes_of_kind(net::NodeKind::kSwitch)) {
    circ[static_cast<std::size_t>(n.v)] = switchsim::circ_of(*net_, n);
  }
  circ_ = std::make_shared<const std::vector<gmfnet::Time>>(std::move(circ));
}

AnalysisContext::AnalysisContext(net::Network network,
                                 std::vector<gmf::Flow> flows)
    : AnalysisContext(std::move(network)) {
  add_flows(std::move(flows));
}

FlowId AnalysisContext::append_flow_deferred(gmf::Flow flow) {
  flow.validate(*net_);
  const FlowId id(static_cast<std::int32_t>(derived_.size()));

  auto d = std::make_shared<FlowDerived>();
  d->flow = std::move(flow);
  const net::Route& route = d->flow.route();

  // Stage sequence per Figure 6: first link, then per-switch (in, link).
  d->stages.push_back(StageKey::link(route.node_at(0), route.node_at(1)));
  for (std::size_t i = 1; i + 1 < route.node_count(); ++i) {
    d->stages.push_back(StageKey::ingress(route.node_at(i)));
    d->stages.push_back(StageKey::link(route.node_at(i), route.node_at(i + 1)));
  }

  d->links = route.links();
  d->params.reserve(d->links.size());
  for (const LinkRef l : d->links) {
    d->params.emplace_back(d->flow, net_->linkspeed(l.src, l.dst));
  }
  d->demand.reserve(d->params.size());
  for (const gmf::FlowLinkParams& p : d->params) d->demand.emplace_back(p);

  derived_.push_back(std::move(d));

  // Route-based incremental update: only this flow's links are touched.
  for (const LinkRef l : derived_.back()->links) links_[l].flows.push_back(id);
  return id;
}

FlowId AnalysisContext::add_flow(gmf::Flow flow) {
  const FlowId id = append_flow_deferred(std::move(flow));
  for (const LinkRef l : derived_.back()->links) {
    recompute_link_aggregates(l, links_[l]);
  }
  return id;
}

void AnalysisContext::add_flows(std::vector<gmf::Flow> flows) {
  // Validate the whole batch up front: a validation failure must leave the
  // context untouched (matching add_flow's validate-before-mutate order),
  // not mid-batch with links whose aggregates were never recomputed.
  for (const gmf::Flow& f : flows) f.validate(*net_);
  derived_.reserve(derived_.size() + flows.size());
  std::vector<LinkRef> touched;
  for (gmf::Flow& f : flows) {
    const FlowId id = append_flow_deferred(std::move(f));
    const auto& links = derived_[static_cast<std::size_t>(id.v)]->links;
    touched.insert(touched.end(), links.begin(), links.end());
  }
  // One from-scratch aggregate pass per touched link, however many of the
  // appended flows crossed it.  The recompute sums in flow-id order, so the
  // final state matches the sequential add_flow path bit for bit.
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (const LinkRef l : touched) {
    recompute_link_aggregates(l, links_[l]);
  }
}

FlowId AnalysisContext::adopt_flow(const AnalysisContext& from, FlowId src) {
  const auto s = static_cast<std::size_t>(src.v);
  if (src.v < 0 || s >= from.derived_.size()) {
    throw std::out_of_range("adopt_flow: no such flow in source context");
  }
  const FlowId id(static_cast<std::int32_t>(derived_.size()));
  // Share the immutable derived state verbatim; only this context's
  // per-link aggregates are recomputed, exactly as add_flow would.
  derived_.push_back(from.derived_[s]);
  for (const LinkRef l : derived_.back()->links) {
    LinkState& state = links_[l];
    state.flows.push_back(id);
    recompute_link_aggregates(l, state);
  }
  return id;
}

FlowId AnalysisContext::adopt_flow_deferred(const AnalysisContext& from,
                                            FlowId src) {
  const auto s = static_cast<std::size_t>(src.v);
  if (src.v < 0 || s >= from.derived_.size()) {
    throw std::out_of_range("adopt_flow: no such flow in source context");
  }
  const FlowId id(static_cast<std::int32_t>(derived_.size()));
  derived_.push_back(from.derived_[s]);
  for (const LinkRef l : derived_.back()->links) links_[l].flows.push_back(id);
  return id;
}

void AnalysisContext::recompute_all_aggregates() {
  for (auto& [link, state] : links_) recompute_link_aggregates(link, state);
}

AnalysisContext AnalysisContext::empty_clone(const AnalysisContext& like) {
  AnalysisContext out;
  out.net_ = like.net_;
  out.circ_ = like.circ_;
  return out;
}

void AnalysisContext::remove_flow(std::size_t index) {
  if (index >= derived_.size()) {
    throw std::out_of_range("remove_flow: no flow at this index");
  }
  const auto removed = static_cast<std::int32_t>(index);
  const std::vector<LinkRef> touched = derived_[index]->links;

  derived_.erase(derived_.begin() + static_cast<std::ptrdiff_t>(index));

  // Flow ids above the removed one shift down by one, on every link.
  for (auto it = links_.begin(); it != links_.end();) {
    auto& flows = it->second.flows;
    std::erase(flows, FlowId(removed));
    for (FlowId& f : flows) {
      if (f.v > removed) f = FlowId(f.v - 1);
    }
    if (flows.empty()) {
      it = links_.erase(it);
    } else {
      ++it;
    }
  }
  // Only the removed flow's route links need their aggregates rebuilt.
  for (const LinkRef l : touched) {
    const auto it = links_.find(l);
    if (it != links_.end()) recompute_link_aggregates(l, it->second);
  }
}

void AnalysisContext::recompute_link_aggregates(LinkRef link,
                                                LinkState& state) const {
  const gmfnet::Time c = circ(link.dst);
  state.utilization = 0.0;
  state.ingress_utilization = 0.0;
  for (const FlowId j : state.flows) {
    const gmf::FlowLinkParams& p = link_params(j, link);
    state.utilization += p.utilization();
    state.ingress_utilization += static_cast<double>(p.nsum()) *
                                 static_cast<double>(c.ps()) /
                                 static_cast<double>(p.tsum().ps());
  }
}

const std::vector<FlowId>& AnalysisContext::flows_on_link(LinkRef link) const {
  static const std::vector<FlowId> kEmpty;
  const auto it = links_.find(link);
  return it == links_.end() ? kEmpty : it->second.flows;
}

std::vector<FlowId> AnalysisContext::hep(FlowId i, LinkRef link) const {
  std::vector<FlowId> out;
  for_each_hep(i, link, [&](FlowId j) { out.push_back(j); });
  return out;
}

std::vector<FlowId> AnalysisContext::lp(FlowId i, LinkRef link) const {
  std::vector<FlowId> out;
  const std::int64_t pi = flow(i).priority();
  for (const FlowId j : flows_on_link(link)) {
    if (j != i && flow(j).priority() < pi) out.push_back(j);
  }
  return out;
}

const AnalysisContext::FlowDerived& AnalysisContext::derived(
    FlowId i, const char* what) const {
  const auto f = static_cast<std::size_t>(i.v);
  if (i.v < 0 || f >= derived_.size()) {
    throw std::out_of_range(std::string(what) + ": no such flow");
  }
  return *derived_[f];
}

const gmf::FlowLinkParams& AnalysisContext::link_params(FlowId i,
                                                        LinkRef link) const {
  const FlowDerived& d = derived(i, "link_params");
  for (std::size_t k = 0; k < d.links.size(); ++k) {
    if (d.links[k] == link) return d.params[k];
  }
  throw std::out_of_range("link_params: flow does not traverse link");
}

const gmf::DemandCurve& AnalysisContext::demand(FlowId i, LinkRef link) const {
  const FlowDerived& d = derived(i, "demand");
  for (std::size_t k = 0; k < d.links.size(); ++k) {
    if (d.links[k] == link) return d.demand[k];
  }
  throw std::out_of_range("demand: flow does not traverse link");
}

gmfnet::Time AnalysisContext::circ(NodeId n) const {
  if (!net_->has_node(n)) throw std::out_of_range("circ: bad node");
  return (*circ_)[static_cast<std::size_t>(n.v)];
}

double AnalysisContext::link_utilization(LinkRef link) const {
  const auto it = links_.find(link);
  return it == links_.end() ? 0.0 : it->second.utilization;
}

double AnalysisContext::ingress_utilization(LinkRef link) const {
  const auto it = links_.find(link);
  return it == links_.end() ? 0.0 : it->second.ingress_utilization;
}

double AnalysisContext::egress_level_utilization(FlowId i, LinkRef link) const {
  // Runs per egress hop analysis, so it must not allocate a temporary id
  // vector the way hep() does.
  double u = link_params(i, link).utilization();
  for_each_hep(i, link,
               [&](FlowId j) { u += link_params(j, link).utilization(); });
  return u;
}

const std::vector<StageKey>& AnalysisContext::stages(FlowId i) const {
  return derived_[static_cast<std::size_t>(i.v)]->stages;
}

const std::vector<LinkRef>& AnalysisContext::route_links(FlowId i) const {
  return derived_[static_cast<std::size_t>(i.v)]->links;
}

}  // namespace gmfnet::core
