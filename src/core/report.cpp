#include "core/report.hpp"

#include <sstream>

#include "util/table.hpp"

namespace gmfnet::core {

std::string stage_label(const net::Network& network, const StageKey& stage) {
  if (stage.is_link()) {
    return "link(" + network.node(stage.a).name + " -> " +
           network.node(stage.b).name + ")";
  }
  return "in(" + network.node(stage.a).name + ")";
}

std::string render_flow_report(const AnalysisContext& ctx,
                               const HolisticResult& result, FlowId flow,
                               const ReportOptions& opts) {
  const gmf::Flow& f = ctx.flow(flow);
  const FlowResult& fr = result.flows[static_cast<std::size_t>(flow.v)];
  std::ostringstream os;

  os << "flow '" << f.name() << "' (priority " << f.priority() << ", "
     << f.frame_count() << " frame" << (f.frame_count() == 1 ? "" : "s")
     << ", route ";
  for (std::size_t i = 0; i < f.route().node_count(); ++i) {
    if (i) os << " -> ";
    os << ctx.network().node(f.route().node_at(i)).name;
  }
  os << ")\n";

  if (!fr.all_converged()) {
    os << "  ANALYSIS DIVERGED: no bound exists (overload on the route)\n";
    return os.str();
  }

  if (opts.per_frame) {
    Table t;
    std::vector<std::string> cols = {"frame", "bound", "deadline", "slack",
                                     "verdict"};
    if (opts.per_stage) {
      for (const StageResponse& st : fr.frames[0].stages) {
        cols.push_back(stage_label(ctx.network(), st.stage));
      }
    }
    t.set_columns(cols);
    for (std::size_t k = 0; k < fr.frames.size(); ++k) {
      const FrameResult& frame = fr.frames[k];
      std::vector<std::string> row = {
          std::to_string(k), frame.response.str(),
          f.frame(k).deadline.str(),
          (f.frame(k).deadline - frame.response).str(),
          frame.meets_deadline ? "ok" : "MISS"};
      if (opts.per_stage) {
        for (const StageResponse& st : frame.stages) {
          row.push_back(st.hop.response.str());
        }
      }
      t.add_row(row);
    }
    os << t.render();
  } else {
    os << "  worst bound " << fr.worst_response().str() << ", "
       << (fr.schedulable() ? "all deadlines met" : "DEADLINE MISS") << "\n";
  }
  return os.str();
}

std::string render_report(const AnalysisContext& ctx,
                          const HolisticResult& result,
                          const ReportOptions& opts) {
  std::ostringstream os;
  os << "gmfnet holistic analysis: "
     << (result.converged ? "converged" : "DID NOT CONVERGE") << " after "
     << result.sweeps << " sweep" << (result.sweeps == 1 ? "" : "s")
     << "; verdict: "
     << (result.schedulable ? "SCHEDULABLE" : "NOT SCHEDULABLE") << "\n\n";

  Table summary("Summary");
  summary.set_columns({"flow", "priority", "worst bound", "min deadline",
                       "verdict"});
  for (std::size_t fi = 0; fi < ctx.flow_count(); ++fi) {
    const FlowId id(static_cast<std::int32_t>(fi));
    const gmf::Flow& f = ctx.flow(id);
    const FlowResult& fr = result.flows[fi];
    summary.add_row({f.name(), std::to_string(f.priority()),
                     fr.all_converged() ? fr.worst_response().str()
                                        : "diverged",
                     f.min_deadline().str(),
                     fr.schedulable() ? "ok" : "MISS"});
  }
  os << summary.render();

  if (opts.per_frame || opts.per_stage) {
    for (std::size_t fi = 0; fi < ctx.flow_count(); ++fi) {
      os << "\n"
         << render_flow_report(ctx, result,
                               FlowId(static_cast<std::int32_t>(fi)), opts);
    }
  }
  return os.str();
}

}  // namespace gmfnet::core
