#include "core/end_to_end.hpp"

#include "core/egress.hpp"
#include "core/first_hop.hpp"
#include "core/ingress.hpp"

namespace gmfnet::core {

bool FlowResult::all_converged() const {
  for (const FrameResult& f : frames) {
    if (!f.converged) return false;
  }
  return !frames.empty();
}

bool FlowResult::schedulable() const {
  for (const FrameResult& f : frames) {
    if (!f.meets_deadline) return false;
  }
  return !frames.empty();
}

gmfnet::Time FlowResult::worst_response() const {
  gmfnet::Time worst = gmfnet::Time::zero();
  for (const FrameResult& f : frames) {
    if (!f.converged) return gmfnet::Time::max();
    worst = gmfnet::max(worst, f.response);
  }
  return worst;
}

FrameResult analyze_frame_end_to_end(const AnalysisContext& ctx,
                                     JitterMap& jitters, FlowId i,
                                     std::size_t frame,
                                     const HopOptions& opts) {
  FrameResult out;
  const gmf::Flow& fi = ctx.flow(i);
  const net::Route& route = fi.route();

  // Figure 6 line 3: both sums start at the source generalized jitter.
  gmfnet::Time rsum = fi.frame(frame).jitter;
  gmfnet::Time jsum = rsum;

  auto run_stage = [&](const StageKey& stage, const HopResult& hop) {
    out.stages.push_back(StageResponse{stage, hop});
    if (!hop.converged) return false;
    rsum += hop.response;
    jsum += hop.response;
    return true;
  };

  // Lines 7-11: the first link, analysed with the work-conserving model.
  {
    const StageKey stage =
        StageKey::link(route.node_at(0), route.node_at(1));
    jitters.set_jitter(i, stage, frame, jsum);  // line 8
    if (!run_stage(stage, analyze_first_hop(ctx, jitters, i, frame, opts))) {
      return out;
    }
  }

  // Lines 4-23: every intermediate switch contributes an ingress stage and
  // an egress-link stage.
  for (std::size_t idx = 1; idx + 1 < route.node_count(); ++idx) {
    const NodeId n = route.node_at(idx);

    const StageKey in_stage = StageKey::ingress(n);
    jitters.set_jitter(i, in_stage, frame, jsum);  // line 13
    if (!run_stage(in_stage,
                   analyze_ingress(ctx, jitters, i, frame, n, opts))) {
      return out;
    }

    const StageKey out_stage = StageKey::link(n, route.node_at(idx + 1));
    jitters.set_jitter(i, out_stage, frame, jsum);  // line 17
    if (!run_stage(out_stage,
                   analyze_egress(ctx, jitters, i, frame, n, opts))) {
      return out;
    }
  }

  out.response = rsum;  // line 24
  out.converged = true;
  out.meets_deadline = rsum <= fi.frame(frame).deadline;
  return out;
}

FlowResult analyze_flow_end_to_end(const AnalysisContext& ctx,
                                   JitterMap& jitters, FlowId i,
                                   const HopOptions& opts) {
  FlowResult out;
  const std::size_t n = ctx.flow(i).frame_count();
  out.frames.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    out.frames.push_back(analyze_frame_end_to_end(ctx, jitters, i, k, opts));
  }
  return out;
}

}  // namespace gmfnet::core
