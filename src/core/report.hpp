// Human-readable reports over analysis results.
//
// The admission controller's output is consumed by people (capacity
// reviews, change tickets); this module renders a HolisticResult — per-flow
// verdicts, per-frame bounds and the Figure-6 stage decomposition — as
// plain text, with node names resolved through the network.
#pragma once

#include <string>

#include "core/end_to_end.hpp"
#include "core/holistic.hpp"

namespace gmfnet::core {

/// What to include in render_report.
struct ReportOptions {
  bool per_frame = true;    ///< one row per GMF frame (else worst only)
  bool per_stage = false;   ///< add the stage decomposition per frame
};

/// Stage label with resolved node names, e.g. "link(0 -> 4)" / "in(4)".
[[nodiscard]] std::string stage_label(const net::Network& network,
                                      const StageKey& stage);

/// Renders the verdict for one flow.
[[nodiscard]] std::string render_flow_report(const AnalysisContext& ctx,
                                             const HolisticResult& result,
                                             FlowId flow,
                                             const ReportOptions& opts = {});

/// Renders the whole result: a summary table plus (optionally) per-flow
/// sections.
[[nodiscard]] std::string render_report(const AnalysisContext& ctx,
                                        const HolisticResult& result,
                                        const ReportOptions& opts = {});

}  // namespace gmfnet::core
