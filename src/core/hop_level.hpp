// Per-hop interferer-level caching for the three per-hop analyses.
//
// A hop analysis of flow i repeatedly needs the same set of interferers
// with the same jitter shifts: across its fixed-point iterations, across
// the per-frame loop of Figure 6, across holistic sweeps whose inputs have
// settled, and across engine what-if probes sharing resident state.  The
// expensive parts — k JitterMap lookups to read extra_j and the build of
// the merged gmf::LevelEnvelope — are therefore cached per
// (analysis kind, hop, analysed flow) in a per-thread arena and
// *revalidated* instead of recomputed:
//
//   * interferer ids: compared against the cached id list (contiguous
//     int32 compare);
//   * demand curves: compared by address + process-unique uid;
//   * jitter shifts: compared by JitterMap::flow_state_ptr against the
//     *held* copy-on-write handles (see JitterMap::flow_state) — pointer
//     equality proves the interferer's entries, and hence its max_jitter,
//     are unchanged, with zero map lookups.
//
// Only when revalidation fails are the shifts re-read and the envelope
// re-fingerprinted/rebuilt.  The analysed flow's own demand is evaluated
// directly against its DemandCurve (it is not part of the envelope), so
// the per-frame writes to its own jitters never invalidate the cache.
//
// Everything here is per-thread (HopScratch::local()): no locks, no
// allocation on the steady-state path, safe under Jacobi sweeps and the
// engine's batched what-if pools.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/context.hpp"
#include "gmf/envelope.hpp"

namespace gmfnet::core {

/// Which per-hop analysis a cached level belongs to.
enum class HopKind : std::uint8_t { kFirstHop = 0, kIngress = 1, kEgress = 2 };

/// Below this many interferers the per-hop analyses use the direct
/// per-curve path even when HopOptions::use_envelope is set: with one or
/// two interferers the naive loop beats the envelope's slot bookkeeping,
/// and the two paths are bit-identical, so the cutover is purely a cost
/// choice (measured crossover in bench_demand_eval).
constexpr std::size_t kEnvelopeMinInterferers = 4;

/// Cache key: which analysis, at which hop, for which analysed flow.  The
/// flow id is part of the key because the interferer set depends on it
/// (hep filtering) and so does the iteration pattern the cursor tracks.
struct HopSlotKey {
  HopKind kind = HopKind::kFirstHop;
  std::int32_t a = -1;     ///< link source or ingress node
  std::int32_t b = -1;     ///< link destination (-1 for ingress)
  std::int32_t flow = -1;  ///< analysed flow id

  auto operator<=>(const HopSlotKey&) const = default;
};

/// One hop's cached interferer level: the merged envelope, its cursor, and
/// the evidence (ids, pinned derived-state and jitter handles) that it is
/// current.  A second single-entry envelope serves the analysed flow's own
/// curve, so its per-frame jitter writes rebuild only that tiny envelope,
/// never the merged one.
class LevelSlot {
 public:
  /// Revalidates the slot against (ctx, jitters) for the interferer set
  /// `ids` (analysed flow excluded, iteration order fixed): on any mismatch
  /// re-reads the shifts and rebuilds the envelope.  `link` is the link the
  /// interferers' demand curves are projected on; `stage` keys their jitter
  /// reads.
  void ensure(const AnalysisContext& ctx, const JitterMap& jitters,
              const std::vector<FlowId>& ids, const StageKey& stage,
              LinkRef link);

  /// Revalidates the self envelope for (curve, shift); the fingerprint
  /// inside LevelEnvelope::ensure makes this two compares when unchanged.
  void ensure_self(const gmf::DemandCurve& curve, gmfnet::Time shift) {
    const gmf::EnvelopeSpec spec{&curve, shift};
    self_env_.ensure(&spec, 1);
  }

  [[nodiscard]] const gmf::LevelEnvelope& envelope() const { return env_; }
  /// Shared cursor for the busy-period and w(q) chains: each chain start
  /// below the previous chain's fixed point costs one binary-search
  /// re-anchor per interferer, then the chain advances forward.
  [[nodiscard]] gmf::EvalCursor& cursor() { return cursor_; }
  [[nodiscard]] const gmf::LevelEnvelope& self_envelope() const {
    return self_env_;
  }
  [[nodiscard]] gmf::EvalCursor& self_cursor() { return self_cursor_; }

 private:
  std::vector<FlowId> ids_;
  /// Pinned immutable derived states (parallel to ids_): pointer equality
  /// against the context's current handle proves the interferer's demand
  /// curves are unchanged, in O(1) without touching them.
  std::vector<AnalysisContext::DerivedStateHandle> derived_;
  /// Pinned jitter states (parallel to ids_): pointer equality proves the
  /// interferer's entries — hence its max_jitter shift — are unchanged.
  std::vector<JitterMap::FlowStateHandle> jitter_;
  std::vector<gmf::EnvelopeSpec> specs_;                ///< parallel to ids_
  gmf::LevelEnvelope env_;
  gmf::EvalCursor cursor_;
  gmf::LevelEnvelope self_env_;
  gmf::EvalCursor self_cursor_;
};

/// Per-thread scratch arena for the per-hop analyses: reusable gather
/// buffers (no per-hop heap allocation) and the persistent level slots.
class HopScratch {
 public:
  /// The calling thread's arena.
  static HopScratch& local();

  /// Interferer-id gather buffer for the current hop; clear before use.
  std::vector<FlowId> ids;

  /// Gather buffer for the naive (reference) path: (curve, shift, is_self)
  /// per level member, self included.
  struct NaiveSpec {
    const gmf::DemandCurve* curve;
    gmfnet::Time shift;
    bool is_self;
  };
  std::vector<NaiveSpec> naive;

  /// The (persistent) level slot for `key`.  Slots pin derived/jitter state
  /// of the scenarios they last served, so the arena is bounded: when a
  /// *new* key would exceed the cap, the whole arena is dropped (every slot
  /// rebuilds on next use) rather than letting a long-lived thread that
  /// churns through many engines/networks accumulate pins forever.
  LevelSlot& slot(const HopSlotKey& key);

 private:
  /// Generous for any one scenario (kinds x hops x flows actually analysed
  /// concurrently on a thread), small against process memory.
  static constexpr std::size_t kMaxSlots = 4096;

  std::map<HopSlotKey, LevelSlot> slots_;
};

}  // namespace gmfnet::core
