#include "core/ingress.hpp"

#include <stdexcept>

#include "core/hop_level.hpp"
#include "util/fixed_point.hpp"

namespace gmfnet::core {

namespace {
LinkRef incoming_link(const AnalysisContext& ctx, FlowId i, NodeId n) {
  const net::Route& route = ctx.flow(i).route();
  const NodeId prev = route.prec(n);
  if (!prev.valid()) {
    throw std::invalid_argument(
        "analyze_ingress: node is not an intermediate hop of the flow");
  }
  return LinkRef(prev, n);
}
}  // namespace

bool ingress_feasible(const AnalysisContext& ctx, FlowId i, NodeId n) {
  return ctx.ingress_utilization(incoming_link(ctx, i, n)) < 1.0;
}

HopResult analyze_ingress(const AnalysisContext& ctx, const JitterMap& jitters,
                          FlowId i, std::size_t frame, NodeId n,
                          const HopOptions& opts) {
  HopResult result;
  const LinkRef in_link = incoming_link(ctx, i, n);
  const StageKey stage = StageKey::ingress(n);
  const gmfnet::Time circ = ctx.circ(n);

  if (!ingress_feasible(ctx, i, n)) return result;

  const gmf::FlowLinkParams& pi = ctx.link_params(i, in_link);
  const gmfnet::Time tsum_i = pi.tsum();
  const std::int64_t nf_k = pi.nframes(frame);

  FixedPointOptions fp;
  fp.horizon = opts.horizon;
  HopScratch& scratch = HopScratch::local();

  if (opts.use_envelope &&
      ctx.flows_on_link(in_link).size() > kEnvelopeMinInterferers) {
    // Interference: every other flow received over the same incoming
    // interface, with jitter GJ_j,in(N) (Figure 6 line 13); merged NX
    // envelope cached per hop, self evaluated directly.
    auto& ids = scratch.ids;
    ids.clear();
    for (const FlowId j : ctx.flows_on_link(in_link)) {
      if (j != i) ids.push_back(j);
    }
    LevelSlot& slot =
        scratch.slot(HopSlotKey{HopKind::kIngress, n.v, -1, i.v});
    slot.ensure(ctx, jitters, ids, stage, in_link);
    slot.ensure_self(ctx.demand(i, in_link), jitters.max_jitter(i, stage));

    // Busy period, eqs (21)-(22): every received Ethernet frame costs one
    // CIRC-spaced service.  Seeded with the packet's own drain time.
    const auto busy_fn = [&](gmfnet::Time t) {
      const std::int64_t frames =
          slot.self_envelope().eval(t, slot.self_cursor()).count +
          slot.envelope().eval(t, slot.cursor()).count;
      return frames * circ;
    };
    const FixedPointResult busy =
        iterate_fixed_point(nf_k * circ, busy_fn, fp);
    result.iterations += busy.iterations;
    result.busy_period = busy.value;
    if (!busy.converged) return result;

    const std::int64_t q_count =
        gmfnet::max(busy.value, gmfnet::Time(1)).ceil_div(tsum_i);  // eq (27)
    result.instances = q_count;

    gmfnet::Time worst = gmfnet::Time::zero();
    for (std::int64_t q = 0; q < q_count; ++q) {
      // Queueing, eqs (23)-(24).  Self term per DESIGN.md correction #4:
      // q full cycles (q*NSUM_i frames) plus the packet's own frames except
      // the final one, whose service is the +CIRC of eq (25).
      // opts.charge_self_circ = false reproduces the literal q*CIRC seed.
      const gmfnet::Time self = opts.charge_self_circ
                                    ? (q * pi.nsum() + nf_k - 1) * circ
                                    : q * circ;
      const auto w_fn = [&](gmfnet::Time w) {
        return self + slot.envelope().eval(w, slot.cursor()).count * circ;
      };
      const FixedPointResult w = iterate_fixed_point(self, w_fn, fp);
      result.iterations += w.iterations;
      if (!w.converged) return result;
      // eq (25): R(q) = w(q) - q*TSUM_i + CIRC(N)  (the final frame's
      // service).
      worst = gmfnet::max(worst, w.value - q * tsum_i + circ);
    }

    result.response = worst;
    result.converged = true;
    return result;
  }

  // Reference (naive) path.
  auto& all = scratch.naive;
  all.clear();
  for (const FlowId j : ctx.flows_on_link(in_link)) {
    all.push_back(HopScratch::NaiveSpec{&ctx.demand(j, in_link),
                                        jitters.max_jitter(j, stage), j == i});
  }

  const auto busy_fn = [&](gmfnet::Time t) {
    std::int64_t frames = 0;
    for (const HopScratch::NaiveSpec& j : all) {
      frames += j.curve->nx(t + j.shift);
    }
    return frames * circ;
  };
  const FixedPointResult busy =
      iterate_fixed_point(nf_k * circ, busy_fn, fp);
  result.iterations += busy.iterations;
  result.busy_period = busy.value;
  if (!busy.converged) return result;

  const std::int64_t q_count =
      gmfnet::max(busy.value, gmfnet::Time(1)).ceil_div(tsum_i);  // eq (27)
  result.instances = q_count;

  gmfnet::Time worst = gmfnet::Time::zero();
  for (std::int64_t q = 0; q < q_count; ++q) {
    const gmfnet::Time self = opts.charge_self_circ
                                  ? (q * pi.nsum() + nf_k - 1) * circ
                                  : q * circ;
    const auto w_fn = [&](gmfnet::Time w) {
      std::int64_t frames = 0;
      for (const HopScratch::NaiveSpec& j : all) {
        if (j.is_self) continue;
        frames += j.curve->nx(w + j.shift);
      }
      return self + frames * circ;
    };
    const FixedPointResult w = iterate_fixed_point(self, w_fn, fp);
    result.iterations += w.iterations;
    if (!w.converged) return result;
    worst = gmfnet::max(worst, w.value - q * tsum_i + circ);
  }

  result.response = worst;
  result.converged = true;
  return result;
}

}  // namespace gmfnet::core
