#include "core/hop_level.hpp"

namespace gmfnet::core {

void LevelSlot::ensure(const AnalysisContext& ctx, const JitterMap& jitters,
                       const std::vector<FlowId>& ids, const StageKey& stage,
                       LinkRef link) {
  // Revalidation: same interferers, same derived state (= same curves),
  // same jitter state (= same shifts) — two pointer compares per
  // interferer against the *pinned* handles (see the class comment for why
  // pinning makes raw pointer equality sound), no map lookups, no curve
  // dereferences.
  if (ids_ == ids) {
    bool valid = true;
    for (std::size_t m = 0; m < ids.size(); ++m) {
      if (ctx.derived_state_ptr(ids[m]) != derived_[m].get() ||
          jitters.flow_state_ptr(ids[m]) != jitter_[m].get()) {
        valid = false;
        break;
      }
    }
    if (valid) return;
  }

  // Re-gather: read each interferer's shift once, pin its derived and
  // jitter state, and re-fingerprint the envelope (which itself skips the
  // rebuild when the curves and shifts come out unchanged, e.g. after an
  // id-order-preserving context copy).
  ids_ = ids;
  derived_.resize(ids.size());
  jitter_.resize(ids.size());
  specs_.resize(ids.size());
  for (std::size_t m = 0; m < ids.size(); ++m) {
    derived_[m] = ctx.derived_state(ids[m]);
    jitter_[m] = jitters.flow_state(ids[m]);
    specs_[m].curve = &ctx.demand(ids[m], link);
    specs_[m].shift = jitters.max_jitter(ids[m], stage);
  }
  env_.ensure(specs_.data(), specs_.size());
}

LevelSlot& HopScratch::slot(const HopSlotKey& key) {
  if (slots_.size() >= kMaxSlots && slots_.find(key) == slots_.end()) {
    // Evict every other slot instead of clearing: a scenario whose hop
    // working set exceeds the cap keeps ~half its hot entries per round
    // instead of falling off a rebuild-everything cliff each wraparound.
    for (auto it = slots_.begin(); it != slots_.end();) {
      it = slots_.erase(it);
      if (it != slots_.end()) ++it;
    }
  }
  return slots_[key];
}

HopScratch& HopScratch::local() {
  thread_local HopScratch scratch;
  return scratch;
}

}  // namespace gmfnet::core
