// Priority assignment for the static-priority output queues.
//
// The paper assumes each flow carries a fixed 802.1p priority but does not
// prescribe how the operator picks it; deadline-monotonic is the standard
// choice for deadline-constrained static-priority systems and is what the
// admission controller uses by default.  Larger value = more urgent.
#pragma once

#include <vector>

#include "ethernet/pcp.hpp"
#include "gmf/flow.hpp"

namespace gmfnet::core {

enum class PriorityScheme {
  kDeadlineMonotonic,  ///< smaller min deadline  -> higher priority
  kRateMonotonic,      ///< smaller min separation -> higher priority
  kExplicit,           ///< keep the priorities already set on the flows
};

/// Assigns priorities in place.  Produces a total order (distinct values
/// 0..n-1, ties broken by index for determinism); kExplicit is a no-op.
void assign_priorities(std::vector<gmf::Flow>& flows, PriorityScheme scheme);

/// Collapses the flows' priorities onto `levels` 802.1p classes (2..8) in
/// place, preserving order as far as the level count allows.  Returns true
/// when no two distinct priorities were merged.
bool apply_pcp_levels(std::vector<gmf::Flow>& flows, int levels);

}  // namespace gmfnet::core
