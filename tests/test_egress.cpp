// Unit tests for the switch-egress analysis (eqs 28-35).
#include "core/egress.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"

namespace gmfnet::core {
namespace {

constexpr ethernet::LinkSpeedBps kSpeed = 10'000'000;

struct World {
  net::StarNetwork star = net::make_star_network(4, kSpeed);

  net::Route route(std::size_t from, std::size_t to) const {
    return net::Route({star.hosts[from], star.sw, star.hosts[to]});
  }

  gmf::Flow sporadic(std::string name, std::size_t from, std::size_t to,
                     gmfnet::Time period, ethernet::Bits payload,
                     std::int64_t priority) const {
    return gmf::make_sporadic_flow(std::move(name), route(from, to), period,
                                   period, payload, priority);
  }
};

TEST(Egress, LoneFlowPaysBlockingSelfCircAndTransmission) {
  const World w;
  std::vector<gmf::Flow> flows = {
      w.sporadic("a", 0, 1, gmfnet::Time::ms(20), 1000 * 8, 0)};
  const AnalysisContext ctx(w.star.net, flows);
  const LinkRef out(w.star.sw, w.star.hosts[1]);
  const auto& p = ctx.link_params(FlowId(0), out);
  const gmfnet::Time circ = ctx.circ(w.star.sw);

  const HopResult r = analyze_egress(ctx, JitterMap::initial(ctx), FlowId(0),
                                     0, w.star.sw);
  ASSERT_TRUE(r.converged);
  // w(0) = MFT + NF*CIRC; R = w + C.
  EXPECT_EQ(r.response, p.mft() + p.nframes(0) * circ + p.c(0));
}

TEST(Egress, PaperLiteralVariantOmitsSelfCirc) {
  const World w;
  std::vector<gmf::Flow> flows = {
      w.sporadic("a", 0, 1, gmfnet::Time::ms(20), 1000 * 8, 0)};
  const AnalysisContext ctx(w.star.net, flows);
  const LinkRef out(w.star.sw, w.star.hosts[1]);
  const auto& p = ctx.link_params(FlowId(0), out);
  HopOptions literal;
  literal.charge_self_circ = false;
  const HopResult r = analyze_egress(ctx, JitterMap::initial(ctx), FlowId(0),
                                     0, w.star.sw, literal);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.response, p.mft() + p.c(0));  // eq (30)/(32) literally
}

TEST(Egress, HigherPriorityInterferesLowerDoesNotBeyondBlocking) {
  const World w;
  // Three flows to the same output host: priorities 2 > 1 > 0.
  std::vector<gmf::Flow> flows = {
      w.sporadic("mid", 0, 3, gmfnet::Time::ms(20), 1000 * 8, 1),
      w.sporadic("high", 1, 3, gmfnet::Time::ms(20), 2000 * 8, 2),
      w.sporadic("low", 2, 3, gmfnet::Time::ms(20), 12000 * 8, 0)};
  const AnalysisContext ctx(w.star.net, flows);
  const LinkRef out(w.star.sw, w.star.hosts[3]);
  const gmfnet::Time circ = ctx.circ(w.star.sw);
  const auto& pm = ctx.link_params(FlowId(0), out);
  const auto& ph = ctx.link_params(FlowId(1), out);

  const HopResult r = analyze_egress(ctx, JitterMap::initial(ctx), FlowId(0),
                                     0, w.star.sw);
  ASSERT_TRUE(r.converged);
  // mid suffers: MFT blocking (from low, already transmitting), high's
  // transmission + its task services, its own frame services, then its own
  // transmission.  The 12000-byte low-priority packet contributes ONLY the
  // single-frame MFT blocking.
  const gmfnet::Time expected = pm.mft() + ph.c(0) +
                                (ph.nframes(0) + pm.nframes(0)) * circ +
                                pm.c(0);
  EXPECT_EQ(r.response, expected);
}

TEST(Egress, EqualPriorityCountsAsInterference) {
  const World w;
  std::vector<gmf::Flow> flows = {
      w.sporadic("a", 0, 3, gmfnet::Time::ms(20), 1000 * 8, 1),
      w.sporadic("b", 1, 3, gmfnet::Time::ms(20), 1000 * 8, 1)};
  const AnalysisContext ctx(w.star.net, flows);
  const LinkRef out(w.star.sw, w.star.hosts[3]);
  const auto& p = ctx.link_params(FlowId(0), out);
  const gmfnet::Time circ = ctx.circ(w.star.sw);
  const HopResult r = analyze_egress(ctx, JitterMap::initial(ctx), FlowId(0),
                                     0, w.star.sw);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.response,
            p.mft() + p.c(0) + (2 * p.nframes(0)) * circ + p.c(0));
}

TEST(Egress, DifferentOutputPortsDoNotInterfere) {
  const World w;
  std::vector<gmf::Flow> flows = {
      w.sporadic("a", 0, 1, gmfnet::Time::ms(20), 1000 * 8, 0),
      w.sporadic("b", 2, 3, gmfnet::Time::ms(20), 12000 * 8, 5)};
  const AnalysisContext ctx(w.star.net, flows);
  const LinkRef out(w.star.sw, w.star.hosts[1]);
  const auto& p = ctx.link_params(FlowId(0), out);
  const gmfnet::Time circ = ctx.circ(w.star.sw);
  const HopResult r = analyze_egress(ctx, JitterMap::initial(ctx), FlowId(0),
                                     0, w.star.sw);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.response, p.mft() + p.nframes(0) * circ + p.c(0));
}

TEST(Egress, PropagationDelayAdds) {
  net::Network net;
  const NodeId h0 = net.add_endhost();
  const NodeId sw = net.add_switch();
  const NodeId h1 = net.add_endhost();
  net.add_duplex_link(h0, sw, kSpeed);
  net.add_duplex_link(sw, h1, kSpeed, gmfnet::Time::us(70));
  std::vector<gmf::Flow> flows = {gmf::make_sporadic_flow(
      "a", net::Route({h0, sw, h1}), gmfnet::Time::ms(20),
      gmfnet::Time::ms(20), 1000 * 8)};
  const AnalysisContext ctx(net, flows);
  const LinkRef out(sw, h1);
  const auto& p = ctx.link_params(FlowId(0), out);
  const HopResult r =
      analyze_egress(ctx, JitterMap::initial(ctx), FlowId(0), 0, sw);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.response, p.mft() + p.nframes(0) * ctx.circ(sw) + p.c(0) +
                            gmfnet::Time::us(70));
}

TEST(Egress, FeasibilityUsesLevelUtilization) {
  const World w;
  // Low-priority flow is overloaded BY HIGHER traffic: high alone exceeds
  // the link.
  std::vector<gmf::Flow> flows = {
      w.sporadic("low", 0, 3, gmfnet::Time::ms(20), 1000 * 8, 0),
      w.sporadic("high", 1, 3, gmfnet::Time::ms(2), 15000 * 8, 9)};
  const AnalysisContext ctx(w.star.net, flows);
  EXPECT_FALSE(egress_feasible(ctx, FlowId(0), w.star.sw));
  // The high-priority flow itself is also infeasible (its own load > 1).
  EXPECT_FALSE(egress_feasible(ctx, FlowId(1), w.star.sw));
  const HopResult r = analyze_egress(ctx, JitterMap::initial(ctx), FlowId(0),
                                     0, w.star.sw);
  EXPECT_FALSE(r.converged);
}

TEST(Egress, HighPriorityUnaffectedByLowOverloadOnOtherPort) {
  const World w;
  // Heavy low-priority traffic to host 1; light high-priority to host 3.
  std::vector<gmf::Flow> flows = {
      w.sporadic("heavy-low", 0, 1, gmfnet::Time::ms(25), 18000 * 8, 0),
      w.sporadic("light-high", 2, 3, gmfnet::Time::ms(20), 500 * 8, 9)};
  const AnalysisContext ctx(w.star.net, flows);
  EXPECT_TRUE(egress_feasible(ctx, FlowId(1), w.star.sw));
  const HopResult r = analyze_egress(ctx, JitterMap::initial(ctx), FlowId(1),
                                     0, w.star.sw);
  ASSERT_TRUE(r.converged);
  const LinkRef out(w.star.sw, w.star.hosts[3]);
  const auto& p = ctx.link_params(FlowId(1), out);
  EXPECT_EQ(r.response,
            p.mft() + p.nframes(0) * ctx.circ(w.star.sw) + p.c(0));
}

TEST(Egress, RejectsSourceOrDestinationNode) {
  const World w;
  std::vector<gmf::Flow> flows = {
      w.sporadic("a", 0, 1, gmfnet::Time::ms(20), 1000 * 8, 0)};
  const AnalysisContext ctx(w.star.net, flows);
  const JitterMap jm = JitterMap::initial(ctx);
  EXPECT_THROW((void)analyze_egress(ctx, jm, FlowId(0), 0, w.star.hosts[0]),
               std::invalid_argument);
  EXPECT_THROW((void)analyze_egress(ctx, jm, FlowId(0), 0, w.star.hosts[1]),
               std::invalid_argument);
}

TEST(Egress, GmfCycleWorstFrameDominates) {
  const World w;
  std::vector<gmf::FrameSpec> fr(3);
  fr[0] = {gmfnet::Time::ms(30), gmfnet::Time::ms(100), gmfnet::Time::zero(),
           16'000 * 8};
  fr[1] = {gmfnet::Time::ms(30), gmfnet::Time::ms(100), gmfnet::Time::zero(),
           1'500 * 8};
  fr[2] = {gmfnet::Time::ms(30), gmfnet::Time::ms(100), gmfnet::Time::zero(),
           4'000 * 8};
  std::vector<gmf::Flow> flows = {gmf::Flow("g", w.route(0, 1), fr)};
  const AnalysisContext ctx(w.star.net, flows);
  const JitterMap jm = JitterMap::initial(ctx);
  gmfnet::Time r0 =
      analyze_egress(ctx, jm, FlowId(0), 0, w.star.sw).response;
  gmfnet::Time r1 =
      analyze_egress(ctx, jm, FlowId(0), 1, w.star.sw).response;
  gmfnet::Time r2 =
      analyze_egress(ctx, jm, FlowId(0), 2, w.star.sw).response;
  EXPECT_GT(r0, r2);
  EXPECT_GT(r2, r1);
}

}  // namespace
}  // namespace gmfnet::core
