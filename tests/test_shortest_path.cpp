#include "net/shortest_path.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"

namespace gmfnet::net {
namespace {

TEST(ShortestPath, Figure1HostPairs) {
  const Figure1Network f = make_figure1_network();
  const auto r = shortest_route(f.net, f.host0, f.host3);
  ASSERT_TRUE(r.has_value());
  // 0 -> 4 -> 6 -> 3 is the unique 3-hop path (via 5 would be 4 hops).
  ASSERT_EQ(r->node_count(), 4u);
  EXPECT_EQ(r->node_at(0), f.host0);
  EXPECT_EQ(r->node_at(1), f.sw4);
  EXPECT_EQ(r->node_at(2), f.sw6);
  EXPECT_EQ(r->node_at(3), f.host3);
  EXPECT_NO_THROW(r->validate(f.net));
}

TEST(ShortestPath, SameHostPairIsNull) {
  const Figure1Network f = make_figure1_network();
  EXPECT_FALSE(shortest_route(f.net, f.host0, f.host0).has_value());
}

TEST(ShortestPath, NeverRoutesThroughHosts) {
  // h0 - s - h1, and a "shortcut" h0 - hx - h1 that hosts can't relay.
  Network net;
  const NodeId h0 = net.add_endhost();
  const NodeId hx = net.add_endhost();
  const NodeId h1 = net.add_endhost();
  const NodeId s = net.add_switch();
  net.add_duplex_link(h0, hx, 1000);
  net.add_duplex_link(hx, h1, 1000);
  net.add_duplex_link(h0, s, 1000);
  net.add_duplex_link(s, h1, 1000);
  const auto r = shortest_route(net, h0, h1);
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(r->node_count(), 3u);
  EXPECT_EQ(r->node_at(1), s);
}

TEST(ShortestPath, DisconnectedReturnsNull) {
  Network net;
  const NodeId a = net.add_endhost();
  const NodeId s = net.add_switch();
  const NodeId b = net.add_endhost();
  net.add_duplex_link(a, s, 1000);
  // b is isolated.
  EXPECT_FALSE(shortest_route(net, a, b).has_value());
}

TEST(ShortestPath, LatencyMetricPrefersFastLinks) {
  // Two parallel switch paths: one short but slow, one longer but fast.
  Network net;
  const NodeId a = net.add_endhost("a");
  const NodeId b = net.add_endhost("b");
  const NodeId slow = net.add_switch("slow");
  const NodeId f1 = net.add_switch("f1");
  const NodeId f2 = net.add_switch("f2");
  net.add_duplex_link(a, slow, 1'000'000);   // 1 Mbit/s
  net.add_duplex_link(slow, b, 1'000'000);
  net.add_duplex_link(a, f1, 1'000'000'000); // 1 Gbit/s
  net.add_duplex_link(f1, f2, 1'000'000'000);
  net.add_duplex_link(f2, b, 1'000'000'000);

  const auto by_hops = shortest_route(net, a, b, RouteMetric::kHops);
  ASSERT_TRUE(by_hops.has_value());
  EXPECT_EQ(by_hops->hop_count(), 2u);  // via slow

  const auto by_latency = shortest_route(net, a, b, RouteMetric::kLatency);
  ASSERT_TRUE(by_latency.has_value());
  EXPECT_EQ(by_latency->hop_count(), 3u);  // via f1,f2
}

TEST(ShortestPath, DeterministicTieBreak) {
  const Figure1Network f = make_figure1_network();
  const auto r1 = shortest_route(f.net, f.host1, f.host2);
  const auto r2 = shortest_route(f.net, f.host1, f.host2);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(*r1, *r2);
}

TEST(ShortestPath, LineNetworkEndToEnd) {
  const LineNetwork l = make_line_network(5, 100'000'000);
  const auto r = shortest_route(l.net, l.src_host, l.dst_host);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->hop_count(), 6u);  // 5 switches -> 6 links
}

TEST(ShortestPath, RouterAsEndpoint) {
  const Figure1Network f = make_figure1_network();
  const auto r = shortest_route(f.net, f.router7, f.host0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->source(), f.router7);
  EXPECT_EQ(r->destination(), f.host0);
  EXPECT_NO_THROW(r->validate(f.net));
}

}  // namespace
}  // namespace gmfnet::net
