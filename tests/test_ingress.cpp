// Unit tests for the switch-ingress analysis (eqs 21-27).
#include "core/ingress.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"

namespace gmfnet::core {
namespace {

constexpr ethernet::LinkSpeedBps kSpeed = 10'000'000;

struct World {
  net::StarNetwork star = net::make_star_network(4, kSpeed);
  gmfnet::Time circ;

  World() { circ = ctx({}).circ(star.sw); }

  net::Route route(std::size_t from, std::size_t to) const {
    return net::Route({star.hosts[from], star.sw, star.hosts[to]});
  }

  gmf::Flow sporadic(std::string name, std::size_t from, std::size_t to,
                     gmfnet::Time period, ethernet::Bits payload) const {
    return gmf::make_sporadic_flow(std::move(name), route(from, to), period,
                                   period, payload);
  }

  AnalysisContext ctx(std::vector<gmf::Flow> flows) const {
    if (flows.empty()) {
      flows.push_back(sporadic("probe", 0, 1, gmfnet::Time::ms(20), 800));
    }
    return AnalysisContext(star.net, std::move(flows));
  }
};

TEST(Ingress, CircOfFourPortStarIs14_8us) {
  const World w;
  EXPECT_EQ(w.circ, gmfnet::Time::us_f(14.8));
}

TEST(Ingress, LoneSingleFrameFlowCostsOneCirc) {
  const World w;
  const auto ctx = w.ctx({w.sporadic("a", 0, 1, gmfnet::Time::ms(20),
                                     1000 * 8)});  // 1 Ethernet frame
  const HopResult r = analyze_ingress(ctx, JitterMap::initial(ctx), FlowId(0),
                                      0, w.star.sw);
  ASSERT_TRUE(r.converged);
  // (NF-1)*CIRC queueing + CIRC final service = 1 * CIRC.
  EXPECT_EQ(r.response, w.circ);
}

TEST(Ingress, MultiFragmentPacketCostsCircPerFrame) {
  const World w;
  // 4000-byte payload -> 3 Ethernet frames.
  const auto ctx =
      w.ctx({w.sporadic("a", 0, 1, gmfnet::Time::ms(20), 4000 * 8)});
  const auto& p =
      ctx.link_params(FlowId(0), LinkRef(w.star.hosts[0], w.star.sw));
  ASSERT_EQ(p.nframes(0), 3);
  const HopResult r = analyze_ingress(ctx, JitterMap::initial(ctx), FlowId(0),
                                      0, w.star.sw);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.response, 3 * w.circ);
}

TEST(Ingress, SameInterfaceFlowsInterfere) {
  const World w;
  const auto ctx = w.ctx({w.sporadic("a", 0, 1, gmfnet::Time::ms(20), 1000 * 8),
                          w.sporadic("b", 0, 2, gmfnet::Time::ms(20),
                                     4000 * 8)});  // 3 frames
  const HopResult r = analyze_ingress(ctx, JitterMap::initial(ctx), FlowId(0),
                                      0, w.star.sw);
  ASSERT_TRUE(r.converged);
  // Own frame + 3 interfering frames, all CIRC-spaced services.
  EXPECT_EQ(r.response, 4 * w.circ);
}

TEST(Ingress, OtherInterfaceFlowsDoNotInterfere) {
  // Each incoming interface has its own task; round-robin guarantees each
  // task a service every CIRC regardless of other interfaces' load.
  const World w;
  const auto ctx = w.ctx({w.sporadic("a", 0, 1, gmfnet::Time::ms(20), 1000 * 8),
                          w.sporadic("b", 2, 3, gmfnet::Time::ms(20),
                                     12000 * 8)});
  const HopResult r = analyze_ingress(ctx, JitterMap::initial(ctx), FlowId(0),
                                      0, w.star.sw);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.response, w.circ);
}

TEST(Ingress, PaperLiteralVariantIsSmaller) {
  const World w;
  const auto ctx =
      w.ctx({w.sporadic("a", 0, 1, gmfnet::Time::ms(20), 4000 * 8)});
  HopOptions sound;
  HopOptions literal;
  literal.charge_self_circ = false;
  const auto jm = JitterMap::initial(ctx);
  const HopResult rs =
      analyze_ingress(ctx, jm, FlowId(0), 0, w.star.sw, sound);
  const HopResult rl =
      analyze_ingress(ctx, jm, FlowId(0), 0, w.star.sw, literal);
  ASSERT_TRUE(rs.converged);
  ASSERT_TRUE(rl.converged);
  // The printed recurrence omits the packet's own frame count: 1 CIRC.
  EXPECT_EQ(rl.response, w.circ);
  EXPECT_EQ(rs.response, 3 * w.circ);
  EXPECT_LE(rl.response, rs.response);
}

TEST(Ingress, JitterOfInterfererMatters) {
  const World w;
  auto mk = [&](gmfnet::Time jitter) {
    std::vector<gmf::Flow> flows = {
        w.sporadic("a", 0, 1, gmfnet::Time::ms(4), 1000 * 8),
        gmf::make_sporadic_flow("b", w.route(0, 2), gmfnet::Time::ms(4),
                                gmfnet::Time::ms(4), 1000 * 8, 0, jitter)};
    return AnalysisContext(w.star.net, flows);
  };
  const auto quiet = mk(gmfnet::Time::zero());
  const auto jittery = mk(gmfnet::Time::ms(4));
  // The ingress stage reads jitter at in(sw): propagate the source jitter
  // there manually (as Figure 6 line 13 would).
  JitterMap jq = JitterMap::initial(quiet);
  JitterMap jj = JitterMap::initial(jittery);
  jj.set_jitter(FlowId(1), StageKey::ingress(w.star.sw), 0,
                gmfnet::Time::ms(4));
  const HopResult rq = analyze_ingress(quiet, jq, FlowId(0), 0, w.star.sw);
  const HopResult rj = analyze_ingress(jittery, jj, FlowId(0), 0, w.star.sw);
  ASSERT_TRUE(rq.converged);
  ASSERT_TRUE(rj.converged);
  EXPECT_GT(rj.response, rq.response);
}

TEST(Ingress, RejectsNonIntermediateNode) {
  const World w;
  const auto ctx = w.ctx({});
  EXPECT_THROW((void)analyze_ingress(ctx, JitterMap::initial(ctx),
                                     FlowId(0), 0, w.star.hosts[0]),
               std::invalid_argument);
}

TEST(Ingress, FeasibilityDetectsCircOverload) {
  // Frames arriving faster than one per CIRC on a single interface.
  // 14.8us per frame max rate = ~67.5k frames/s; a 1-frame packet every
  // 20us offers 50k/s -> fits; every 10us -> 100k/s -> overload.
  const World w;
  const auto ok =
      w.ctx({w.sporadic("a", 0, 1, gmfnet::Time::us(20), 100 * 8)});
  EXPECT_TRUE(ingress_feasible(ok, FlowId(0), w.star.sw));
  const auto bad =
      w.ctx({w.sporadic("a", 0, 1, gmfnet::Time::us(10), 100 * 8)});
  EXPECT_FALSE(ingress_feasible(bad, FlowId(0), w.star.sw));
  const HopResult r = analyze_ingress(bad, JitterMap::initial(bad), FlowId(0),
                                      0, w.star.sw);
  EXPECT_FALSE(r.converged);
}

}  // namespace
}  // namespace gmfnet::core
