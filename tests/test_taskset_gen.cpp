#include "workload/taskset_gen.hpp"

#include <gtest/gtest.h>

#include "baseline/utilization.hpp"
#include "net/topology.hpp"

namespace gmfnet::workload {
namespace {

TEST(TasksetGen, GeneratesRequestedFlowCount) {
  const auto star = net::make_star_network(6, 100'000'000);
  Rng rng(1);
  TasksetParams params;
  params.num_flows = 10;
  const auto ts = generate_taskset(star.net, star.hosts, params, rng);
  ASSERT_TRUE(ts.has_value());
  EXPECT_EQ(ts->flows.size(), 10u);
}

TEST(TasksetGen, FlowsValidateAgainstNetwork) {
  const auto tree = net::make_tree_network(3, 2, 100'000'000);
  Rng rng(2);
  TasksetParams params;
  params.num_flows = 12;
  const auto ts = generate_taskset(tree.net, tree.hosts, params, rng);
  ASSERT_TRUE(ts.has_value());
  for (const auto& f : ts->flows) {
    EXPECT_NO_THROW(f.validate(tree.net)) << f.name();
  }
}

TEST(TasksetGen, RespectsFrameCountBounds) {
  const auto star = net::make_star_network(6, 100'000'000);
  Rng rng(3);
  TasksetParams params;
  params.num_flows = 20;
  params.min_frames = 2;
  params.max_frames = 5;
  const auto ts = generate_taskset(star.net, star.hosts, params, rng);
  ASSERT_TRUE(ts.has_value());
  for (const auto& f : ts->flows) {
    EXPECT_GE(f.frame_count(), 2u);
    EXPECT_LE(f.frame_count(), 5u);
  }
}

TEST(TasksetGen, SeparationsWithinConfiguredRange) {
  const auto star = net::make_star_network(6, 100'000'000);
  Rng rng(4);
  TasksetParams params;
  params.num_flows = 16;
  params.separation_lo = gmfnet::Time::ms(10);
  params.separation_hi = gmfnet::Time::ms(20);
  params.separation_spread = 0.25;
  const auto ts = generate_taskset(star.net, star.hosts, params, rng);
  ASSERT_TRUE(ts.has_value());
  for (const auto& f : ts->flows) {
    for (const auto& fr : f.frames()) {
      EXPECT_GE(fr.min_separation, gmfnet::Time::ms_f(7.4));
      EXPECT_LE(fr.min_separation, gmfnet::Time::ms_f(25.1));
    }
  }
}

TEST(TasksetGen, UtilizationTracksTarget) {
  // Offered utilization is realised against the bottleneck link, so on a
  // single-switch star the per-link sum is within a reasonable factor of
  // the split shares.
  const auto star = net::make_star_network(8, 100'000'000);
  for (const double target : {0.2, 0.5, 0.8}) {
    Rng rng(5);
    TasksetParams params;
    params.num_flows = 16;
    params.total_utilization = target;
    params.size_spread = 0.0;  // exact realisation per frame
    const auto ts = generate_taskset(star.net, star.hosts, params, rng);
    ASSERT_TRUE(ts.has_value());
    double total = 0;
    core::AnalysisContext ctx(star.net, ts->flows);
    for (std::size_t f = 0; f < ts->flows.size(); ++f) {
      const auto& route = ts->flows[f].route();
      total += ctx.link_params(core::FlowId(static_cast<std::int32_t>(f)),
                               route.links().front())
                   .utilization();
    }
    // Framing overheads and byte rounding put realised slightly above the
    // share; payload clamping can pull it below.  Accept a loose band.
    EXPECT_GT(total, 0.5 * target);
    EXPECT_LT(total, 2.0 * target + 0.05);
  }
}

TEST(TasksetGen, DeadlinesProportionalToCycle) {
  const auto star = net::make_star_network(6, 100'000'000);
  Rng rng(6);
  TasksetParams params;
  params.num_flows = 10;
  params.deadline_factor_lo = 0.5;
  params.deadline_factor_hi = 1.0;
  const auto ts = generate_taskset(star.net, star.hosts, params, rng);
  ASSERT_TRUE(ts.has_value());
  for (const auto& f : ts->flows) {
    const gmfnet::Time tsum = f.tsum();
    for (const auto& fr : f.frames()) {
      EXPECT_GE(fr.deadline.ps(), tsum.ps() / 2 - 1);
      EXPECT_LE(fr.deadline, tsum);
    }
  }
}

TEST(TasksetGen, DeterministicPerSeed) {
  const auto star = net::make_star_network(6, 100'000'000);
  TasksetParams params;
  params.num_flows = 8;
  Rng r1(42), r2(42);
  const auto a = generate_taskset(star.net, star.hosts, params, r1);
  const auto b = generate_taskset(star.net, star.hosts, params, r2);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  for (std::size_t i = 0; i < a->flows.size(); ++i) {
    EXPECT_EQ(a->flows[i].route(), b->flows[i].route());
    ASSERT_EQ(a->flows[i].frame_count(), b->flows[i].frame_count());
    for (std::size_t k = 0; k < a->flows[i].frame_count(); ++k) {
      EXPECT_EQ(a->flows[i].frame(k).payload_bits,
                b->flows[i].frame(k).payload_bits);
      EXPECT_EQ(a->flows[i].frame(k).min_separation,
                b->flows[i].frame(k).min_separation);
    }
  }
}

TEST(TasksetGen, FailsGracefullyWithoutRoutes) {
  // Two disconnected hosts: no routable pairs.  (Directly cabled hosts
  // WOULD be routable — a one-link route is legal.)
  net::Network net;
  const auto a = net.add_endhost();
  const auto b = net.add_endhost();
  Rng rng(7);
  TasksetParams params;
  params.num_flows = 2;
  EXPECT_FALSE(generate_taskset(net, {a, b}, params, rng).has_value());
}

TEST(TasksetGen, RejectsDegenerateInputs) {
  const auto star = net::make_star_network(4, 100'000'000);
  Rng rng(8);
  TasksetParams params;
  params.num_flows = 0;
  EXPECT_FALSE(generate_taskset(star.net, star.hosts, params, rng)
                   .has_value());
  params.num_flows = 3;
  EXPECT_FALSE(
      generate_taskset(star.net, {star.hosts[0]}, params, rng).has_value());
}

}  // namespace
}  // namespace gmfnet::workload
