#include "net/network.hpp"

#include <gtest/gtest.h>

namespace gmfnet::net {
namespace {

TEST(Network, AddNodesAssignsSequentialIds) {
  Network n;
  const NodeId a = n.add_endhost("a");
  const NodeId b = n.add_switch("b");
  const NodeId c = n.add_router("c");
  EXPECT_EQ(a.v, 0);
  EXPECT_EQ(b.v, 1);
  EXPECT_EQ(c.v, 2);
  EXPECT_EQ(n.node_count(), 3u);
  EXPECT_EQ(n.node(a).kind, NodeKind::kEndHost);
  EXPECT_EQ(n.node(b).kind, NodeKind::kSwitch);
  EXPECT_EQ(n.node(c).kind, NodeKind::kRouter);
}

TEST(Network, AutoNamesWhenEmpty) {
  Network n;
  const NodeId a = n.add_endhost();
  EXPECT_EQ(n.node(a).name, "n0");
}

TEST(Network, SwitchParamsStored) {
  Network n;
  SwitchParams p;
  p.croute = gmfnet::Time::us(3);
  p.processors = 4;
  const NodeId s = n.add_switch("s", p);
  EXPECT_EQ(n.node(s).sw.croute, gmfnet::Time::us(3));
  EXPECT_EQ(n.node(s).sw.processors, 4);
}

TEST(Network, LinkAttributes) {
  Network n;
  const NodeId a = n.add_endhost();
  const NodeId s = n.add_switch();
  n.add_link(a, s, 10'000'000, gmfnet::Time::us(5));
  EXPECT_TRUE(n.has_link(a, s));
  EXPECT_FALSE(n.has_link(s, a));
  EXPECT_EQ(n.linkspeed(a, s), 10'000'000);
  EXPECT_EQ(n.prop(a, s), gmfnet::Time::us(5));
}

TEST(Network, DuplexAddsBothDirections) {
  Network n;
  const NodeId a = n.add_endhost();
  const NodeId s = n.add_switch();
  n.add_duplex_link(a, s, 1'000'000'000);
  EXPECT_TRUE(n.has_link(a, s));
  EXPECT_TRUE(n.has_link(s, a));
  EXPECT_EQ(n.link_count(), 2u);
}

TEST(Network, RejectsBadLinks) {
  Network n;
  const NodeId a = n.add_endhost();
  const NodeId s = n.add_switch();
  EXPECT_THROW(n.add_link(a, a, 1000), std::invalid_argument);
  EXPECT_THROW(n.add_link(a, NodeId(99), 1000), std::invalid_argument);
  EXPECT_THROW(n.add_link(a, s, 0), std::invalid_argument);
  EXPECT_THROW(n.add_link(a, s, -5), std::invalid_argument);
  EXPECT_THROW(n.add_link(a, s, 1000, gmfnet::Time(-1)),
               std::invalid_argument);
  n.add_link(a, s, 1000);
  EXPECT_THROW(n.add_link(a, s, 1000), std::invalid_argument);  // duplicate
}

TEST(Network, SuccessorsAndPredecessors) {
  Network n;
  const NodeId a = n.add_endhost();
  const NodeId s = n.add_switch();
  const NodeId b = n.add_endhost();
  n.add_duplex_link(a, s, 1000);
  n.add_link(s, b, 1000);
  EXPECT_EQ(n.successors(s).size(), 2u);
  EXPECT_EQ(n.predecessors(s).size(), 1u);
  EXPECT_EQ(n.predecessors(b).size(), 1u);
  EXPECT_TRUE(n.successors(b).empty());
}

TEST(Network, NinterfacesCountsDistinctNeighbours) {
  Network n;
  const NodeId s = n.add_switch();
  const NodeId a = n.add_endhost();
  const NodeId b = n.add_endhost();
  n.add_duplex_link(s, a, 1000);  // duplex cable = ONE interface
  n.add_link(s, b, 1000);         // simplex link still occupies a port
  EXPECT_EQ(n.ninterfaces(s), 2);
  EXPECT_EQ(n.ninterfaces(a), 1);
}

TEST(Network, NodesOfKind) {
  Network n;
  n.add_endhost();
  n.add_switch();
  n.add_switch();
  n.add_router();
  EXPECT_EQ(n.nodes_of_kind(NodeKind::kSwitch).size(), 2u);
  EXPECT_EQ(n.nodes_of_kind(NodeKind::kEndHost).size(), 1u);
  EXPECT_EQ(n.nodes_of_kind(NodeKind::kRouter).size(), 1u);
}

TEST(Network, ValidateRejectsIsolatedSwitch) {
  Network n;
  n.add_switch("lonely");
  EXPECT_THROW(n.validate(), std::logic_error);
}

TEST(Network, ValidateRejectsBadSwitchParams) {
  Network n;
  SwitchParams p;
  p.processors = 0;
  const NodeId s = n.add_switch("s", p);
  const NodeId a = n.add_endhost();
  n.add_duplex_link(s, a, 1000);
  EXPECT_THROW(n.validate(), std::logic_error);
}

TEST(Network, ValidateAcceptsWellFormed) {
  Network n;
  const NodeId s = n.add_switch();
  const NodeId a = n.add_endhost();
  n.add_duplex_link(s, a, 1000);
  EXPECT_NO_THROW(n.validate());
}

TEST(Network, OutOfRangeAccessThrows) {
  Network n;
  EXPECT_THROW((void)n.node(NodeId(0)), std::out_of_range);
  const NodeId a = n.add_endhost();
  const NodeId b = n.add_endhost();
  EXPECT_THROW((void)n.link(a, b), std::out_of_range);
  EXPECT_THROW((void)n.successors(NodeId(9)), std::out_of_range);
}

}  // namespace
}  // namespace gmfnet::net
