#include "core/priority.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"

namespace gmfnet::core {
namespace {

std::vector<gmf::Flow> three_flows() {
  const auto star = net::make_star_network(4, 10'000'000);
  auto mk = [&](const std::string& name, gmfnet::Time period,
                gmfnet::Time deadline) {
    return gmf::make_sporadic_flow(
        name, net::Route({star.hosts[0], star.sw, star.hosts[1]}), period,
        deadline, 1000 * 8);
  };
  return {mk("slow", gmfnet::Time::ms(100), gmfnet::Time::ms(90)),
          mk("fast", gmfnet::Time::ms(10), gmfnet::Time::ms(40)),
          mk("mid", gmfnet::Time::ms(50), gmfnet::Time::ms(15))};
}

TEST(Priority, DeadlineMonotonicOrdersByMinDeadline) {
  auto flows = three_flows();
  assign_priorities(flows, PriorityScheme::kDeadlineMonotonic);
  // Deadlines: slow=90, fast=40, mid=15 -> mid most urgent.
  EXPECT_GT(flows[2].priority(), flows[1].priority());
  EXPECT_GT(flows[1].priority(), flows[0].priority());
  // Total order over 0..n-1.
  EXPECT_EQ(flows[0].priority(), 0);
  EXPECT_EQ(flows[2].priority(), 2);
}

TEST(Priority, RateMonotonicOrdersByMinSeparation) {
  auto flows = three_flows();
  assign_priorities(flows, PriorityScheme::kRateMonotonic);
  // Periods: slow=100, fast=10, mid=50 -> fast most urgent.
  EXPECT_GT(flows[1].priority(), flows[2].priority());
  EXPECT_GT(flows[2].priority(), flows[0].priority());
}

TEST(Priority, ExplicitKeepsAssignments) {
  auto flows = three_flows();
  flows[0].set_priority(7);
  flows[1].set_priority(3);
  flows[2].set_priority(5);
  assign_priorities(flows, PriorityScheme::kExplicit);
  EXPECT_EQ(flows[0].priority(), 7);
  EXPECT_EQ(flows[1].priority(), 3);
  EXPECT_EQ(flows[2].priority(), 5);
}

TEST(Priority, DmUsesMinDeadlineOfGmfCycle) {
  const auto star = net::make_star_network(4, 10'000'000);
  std::vector<gmf::FrameSpec> fr(2);
  fr[0] = {gmfnet::Time::ms(30), gmfnet::Time::ms(100), gmfnet::Time::zero(),
           800};
  fr[1] = {gmfnet::Time::ms(30), gmfnet::Time::ms(5), gmfnet::Time::zero(),
           800};  // min deadline 5 ms
  std::vector<gmf::Flow> flows = {
      gmf::Flow("gmf", net::Route({star.hosts[0], star.sw, star.hosts[1]}),
                fr),
      gmf::make_sporadic_flow(
          "sporadic", net::Route({star.hosts[2], star.sw, star.hosts[3]}),
          gmfnet::Time::ms(20), gmfnet::Time::ms(20), 800)};
  assign_priorities(flows, PriorityScheme::kDeadlineMonotonic);
  EXPECT_GT(flows[0].priority(), flows[1].priority());  // 5 ms < 20 ms
}

TEST(Priority, TieBreaksAreDeterministic) {
  auto flows = three_flows();
  for (auto& f : flows) f.set_priority(0);
  auto copy = flows;
  assign_priorities(flows, PriorityScheme::kDeadlineMonotonic);
  assign_priorities(copy, PriorityScheme::kDeadlineMonotonic);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_EQ(flows[i].priority(), copy[i].priority());
  }
}

TEST(Priority, PcpLevelsLosslessWhenFewFlows) {
  auto flows = three_flows();
  assign_priorities(flows, PriorityScheme::kDeadlineMonotonic);
  EXPECT_TRUE(apply_pcp_levels(flows, 8));
  for (const auto& f : flows) {
    EXPECT_GE(f.priority(), 0);
    EXPECT_LT(f.priority(), 8);
  }
  // Relative order survived.
  EXPECT_GT(flows[2].priority(), flows[1].priority());
  EXPECT_GT(flows[1].priority(), flows[0].priority());
}

TEST(Priority, PcpLevelsLossyWhenTooManyClasses) {
  const auto star = net::make_star_network(4, 10'000'000);
  std::vector<gmf::Flow> flows;
  for (int i = 0; i < 6; ++i) {
    flows.push_back(gmf::make_sporadic_flow(
        "f" + std::to_string(i),
        net::Route({star.hosts[0], star.sw, star.hosts[1]}),
        gmfnet::Time::ms(10 + i), gmfnet::Time::ms(10 + i), 800));
  }
  assign_priorities(flows, PriorityScheme::kDeadlineMonotonic);
  EXPECT_FALSE(apply_pcp_levels(flows, 2));  // 6 classes into 2 levels
  for (const auto& f : flows) {
    EXPECT_GE(f.priority(), 0);
    EXPECT_LT(f.priority(), 2);
  }
}

}  // namespace
}  // namespace gmfnet::core
