// The central validation property (experiment E6): for every delivered
// packet, the simulated response time never exceeds the holistic analytical
// bound of its frame kind.
#include <gtest/gtest.h>

#include "core/holistic.hpp"
#include "sim/simulator.hpp"
#include "workload/scenario.hpp"
#include "workload/taskset_gen.hpp"

namespace gmfnet {
namespace {

/// Runs analysis + simulation on a scenario and checks the bound per flow
/// and per frame kind.  Returns the analysis result for extra assertions.
core::HolisticResult check_bounds(const net::Network& network,
                                  const std::vector<gmf::Flow>& flows,
                                  const sim::SimOptions& sim_opts) {
  core::AnalysisContext ctx(network, flows);
  const core::HolisticResult bound = core::analyze_holistic(ctx);
  EXPECT_TRUE(bound.converged);

  sim::Simulator simulator(network, flows, sim_opts);
  simulator.run();

  for (std::size_t f = 0; f < flows.size(); ++f) {
    const net::FlowId id(static_cast<std::int32_t>(f));
    const sim::FlowSimStats& st = simulator.stats(id);
    EXPECT_GT(st.packets_completed, 0u) << flows[f].name();
    for (std::size_t k = 0; k < flows[f].frame_count(); ++k) {
      if (st.per_kind[k].count() == 0) continue;
      EXPECT_LE(st.max_response[k], bound.flows[f].frames[k].response)
          << flows[f].name() << " frame " << k << ": simulated "
          << st.max_response[k].str() << " vs bound "
          << bound.flows[f].frames[k].response.str();
    }
  }
  return bound;
}

TEST(SimVsAnalysis, LoneVoipFlow) {
  const auto s = workload::make_voip_office_scenario(1, 10'000'000);
  sim::SimOptions opts;
  opts.horizon = Time::sec(1);
  check_bounds(s.network, s.flows, opts);
}

TEST(SimVsAnalysis, Figure2MpegPeriodicArrivals) {
  const auto s = workload::make_figure2_scenario(10'000'000, false);
  sim::SimOptions opts;
  opts.horizon = Time::sec(3);
  check_bounds(s.network, s.flows, opts);
}

TEST(SimVsAnalysis, Figure2WithCrossTraffic) {
  const auto s = workload::make_figure2_scenario(10'000'000, true);
  sim::SimOptions opts;
  opts.horizon = Time::sec(3);
  check_bounds(s.network, s.flows, opts);
}

TEST(SimVsAnalysis, VideoconfOnFastNetwork) {
  const auto s = workload::make_videoconf_scenario(100'000'000);
  sim::SimOptions opts;
  opts.horizon = Time::sec(2);
  check_bounds(s.network, s.flows, opts);
}

TEST(SimVsAnalysis, RandomSlackArrivalsStayUnderBound) {
  const auto s = workload::make_figure2_scenario(10'000'000, true);
  sim::SimOptions opts;
  opts.horizon = Time::sec(3);
  opts.source.model = sim::ArrivalModel::kUniformSlack;
  opts.source.slack = 0.7;
  opts.seed = 1234;
  check_bounds(s.network, s.flows, opts);
}

TEST(SimVsAnalysis, AdversarialJitterScatterStaysUnderBound) {
  const auto s = workload::make_figure2_scenario(10'000'000, true);
  sim::SimOptions opts;
  opts.horizon = Time::sec(2);
  opts.source.scatter_jitter = false;  // fragments at the jitter-window edge
  check_bounds(s.network, s.flows, opts);
}

/// Randomized sweep: generated task sets on a star network, several seeds.
class SimVsAnalysisSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimVsAnalysisSweep, GeneratedTasksets) {
  const std::uint64_t seed = GetParam();
  const auto star = net::make_star_network(6, 100'000'000);
  Rng rng(seed);
  workload::TasksetParams params;
  params.num_flows = 6;
  params.total_utilization = 0.35;
  params.separation_lo = gmfnet::Time::ms(2);
  params.separation_hi = gmfnet::Time::ms(20);
  params.max_jitter_fraction = 0.2;
  // Deadlines irrelevant here (we compare bounds, not verdicts): widen so
  // the holistic analysis reports converged bounds.
  params.deadline_factor_lo = 4.0;
  params.deadline_factor_hi = 8.0;
  const auto ts = workload::generate_taskset(star.net, star.hosts, params,
                                             rng);
  ASSERT_TRUE(ts.has_value());

  sim::SimOptions opts;
  opts.horizon = Time::sec(1);
  opts.seed = seed * 31 + 7;
  opts.source.model = sim::ArrivalModel::kUniformSlack;
  check_bounds(star.net, ts->flows, opts);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimVsAnalysisSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(SimVsAnalysis, BoundIsReasonablyTightForLoneFlow) {
  // Tightness sanity: for an uncontended VoIP flow the bound must be within
  // a small factor of the simulated worst case (blocking MFT + CIRC terms
  // account for the gap).
  const auto s = workload::make_voip_office_scenario(1, 100'000'000);
  sim::SimOptions opts;
  opts.horizon = Time::sec(1);
  const auto bound = check_bounds(s.network, s.flows, opts);

  sim::Simulator simulator(s.network, s.flows, opts);
  simulator.run();
  const double measured =
      static_cast<double>(simulator.stats(net::FlowId(0)).worst_response().ps());
  const double analytic = static_cast<double>(
      bound.flows[0].frames[0].response.ps());
  // The gap is dominated by terms the lone simulated flow never pays:
  // the 500 us source-jitter budget (single-fragment packets have nothing
  // to scatter), the full-frame MFT blocking quantum and the CIRC service
  // allowances.  A factor ~15 at 100 Mbit/s is expected pessimism; flag
  // only egregious regressions.
  EXPECT_LT(analytic / measured, 25.0);
}

}  // namespace
}  // namespace gmfnet
