#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/bench_json.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace gmfnet {
namespace {

TEST(Csv, HeaderOnly) {
  CsvWriter w({"a", "b"});
  EXPECT_EQ(w.to_string(), "a,b\n");
  EXPECT_EQ(w.row_count(), 0u);
}

TEST(Csv, MixedValueTypes) {
  CsvWriter w({"name", "count", "ratio"});
  w.begin_row();
  w.add("x");
  w.add(std::int64_t{42});
  w.add(0.5);
  EXPECT_EQ(w.to_string(), "name,count,ratio\nx,42,0.5\n");
}

TEST(Csv, EscapesSpecialCharacters) {
  CsvWriter w({"v"});
  w.begin_row();
  w.add("a,b");
  w.begin_row();
  w.add("say \"hi\"");
  const std::string s = w.to_string();
  EXPECT_NE(s.find("\"a,b\""), std::string::npos);
  EXPECT_NE(s.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Csv, SaveRoundTrip) {
  CsvWriter w({"x"});
  w.begin_row();
  w.add(std::int64_t{7});
  const std::string path = testing::TempDir() + "/gmfnet_csv_test.csv";
  ASSERT_TRUE(w.save(path));
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_EQ(ss.str(), "x\n7\n");
  std::remove(path.c_str());
}

TEST(Csv, SaveToBadPathFails) {
  CsvWriter w({"x"});
  EXPECT_FALSE(w.save("/nonexistent_dir_zzz/file.csv"));
}

TEST(Csv, AddBeforeBeginRowThrows) {
  // Regression: this used to hit rows_.back() on an empty vector (UB).
  CsvWriter w({"a"});
  EXPECT_THROW(w.add("x"), std::logic_error);
  EXPECT_THROW(w.add(1.0), std::logic_error);
  EXPECT_THROW(w.add(std::int64_t{1}), std::logic_error);
}

TEST(Csv, ShortRowRejectedAtRender) {
  // Regression: a row narrower than the header used to render silently,
  // shifting later columns under the wrong header.
  CsvWriter w({"a", "b"});
  w.begin_row();
  w.add("only");
  EXPECT_THROW((void)w.to_string(), std::logic_error);
  EXPECT_THROW((void)w.save(testing::TempDir() + "/gmfnet_short.csv"),
               std::logic_error);
}

TEST(Csv, OverfullRowRejectedAtAdd) {
  CsvWriter w({"a"});
  w.begin_row();
  w.add("x");
  EXPECT_THROW(w.add("y"), std::logic_error);
}

TEST(BenchJson, AddBeforeBeginRowThrows) {
  // Regression: same empty-vector UB as CsvWriter::add.
  BenchJsonWriter w("t");
  EXPECT_THROW(w.add("k", 1.0), std::logic_error);
  EXPECT_THROW(w.add("k", std::int64_t{1}), std::logic_error);
  EXPECT_THROW(w.add("k", std::string("v")), std::logic_error);
  EXPECT_THROW(w.add("k", true), std::logic_error);
}

TEST(BenchJson, RendersRows) {
  BenchJsonWriter w("demo");
  w.begin_row();
  w.add("n", 1);
  w.add("ok", true);
  const std::string s = w.to_string();
  EXPECT_NE(s.find("\"bench\": \"demo\""), std::string::npos);
  EXPECT_NE(s.find("\"n\": 1"), std::string::npos);
  EXPECT_NE(s.find("\"ok\": true"), std::string::npos);
}

TEST(Table, RendersAlignedGrid) {
  Table t("Title");
  t.set_columns({"col", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.render();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("| col    | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
  // Separator lines present.
  EXPECT_NE(s.find("+--------+-------+"), std::string::npos);
}

TEST(Table, ShortRowsPadWithEmptyCells) {
  Table t;
  t.set_columns({"a", "b"});
  t.add_row({"only"});
  const std::string s = t.render();
  EXPECT_NE(s.find("| only |"), std::string::npos);
}

TEST(Table, NumberFormatters) {
  EXPECT_EQ(Table::num(1.5), "1.5");
  EXPECT_EQ(Table::num(1e6), "1e+06");
  EXPECT_EQ(Table::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fixed(2.0, 3), "2.000");
}

}  // namespace
}  // namespace gmfnet
