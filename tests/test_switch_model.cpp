#include "switchsim/switch_model.hpp"

#include <gtest/gtest.h>

#include "ethernet/framing.hpp"
#include "net/topology.hpp"

namespace gmfnet::switchsim {
namespace {

TEST(SwitchModel, PaperCircExample) {
  // §3.3: "a task is serviced every 4*(2.7+1) us; that is every 14.8 us."
  const gmfnet::Time c = circ(4, gmfnet::Time::ns(2700), gmfnet::Time::ns(1000));
  EXPECT_EQ(c, gmfnet::Time::us_f(14.8));
}

TEST(SwitchModel, CircScalesWithInterfaces) {
  const gmfnet::Time croute = gmfnet::Time::ns(2700);
  const gmfnet::Time csend = gmfnet::Time::ns(1000);
  EXPECT_EQ(circ(1, croute, csend), gmfnet::Time::us_f(3.7));
  EXPECT_EQ(circ(8, croute, csend), gmfnet::Time::us_f(29.6));
}

TEST(SwitchModel, CircRejectsBadArguments) {
  EXPECT_THROW((void)circ(0, gmfnet::Time::us(1), gmfnet::Time::us(1)),
               std::invalid_argument);
  EXPECT_THROW((void)interfaces_per_processor(4, 0), std::invalid_argument);
  EXPECT_THROW((void)interfaces_per_processor(0, 4), std::invalid_argument);
}

TEST(SwitchModel, InterfacesPerProcessor) {
  EXPECT_EQ(interfaces_per_processor(48, 16), 3);  // the Conclusions example
  EXPECT_EQ(interfaces_per_processor(48, 1), 48);
  EXPECT_EQ(interfaces_per_processor(4, 4), 1);
  EXPECT_EQ(interfaces_per_processor(5, 4), 2);  // ceil when not divisible
}

TEST(SwitchModel, ConclusionsFortyEightPortExample) {
  // 16 CPUs, 48 ports, Click costs -> CIRC = 3 * 3.7 us = 11.1 us, and such
  // a switch "can comfortably deal with links of speed 1 Gigabit/s".
  const gmfnet::Time c = circ_multiproc(48, 16, gmfnet::Time::ns(2700),
                                        gmfnet::Time::ns(1000));
  EXPECT_EQ(c, gmfnet::Time::us_f(11.1));
  EXPECT_TRUE(sustains_linkspeed(c, 1'000'000'000));
}

TEST(SwitchModel, SinglCpuFortyEightPortCannotDoGigabit) {
  const gmfnet::Time c = circ_multiproc(48, 1, gmfnet::Time::ns(2700),
                                        gmfnet::Time::ns(1000));
  EXPECT_EQ(c, gmfnet::Time::us_f(177.6));
  EXPECT_FALSE(sustains_linkspeed(c, 1'000'000'000));
  // ...but a 10 Mbit/s link (MFT = 1.2304 ms) is fine.
  EXPECT_TRUE(sustains_linkspeed(c, 10'000'000));
}

TEST(SwitchModel, SustainBoundaryIsStrict) {
  // CIRC exactly equal to MFT does not sustain (task may lag a full frame).
  const gmfnet::Time mft = ethernet::max_frame_transmission_time(1'000'000'000);
  EXPECT_FALSE(sustains_linkspeed(mft, 1'000'000'000));
  EXPECT_TRUE(sustains_linkspeed(mft - gmfnet::Time(1), 1'000'000'000));
}

TEST(SwitchModel, CircOfNetworkNode) {
  // Figure 5's switch (node 4 of Figure 1) has 4 interfaces.
  const net::Figure1Network f = net::make_figure1_network();
  EXPECT_EQ(circ_of(f.net, f.sw4), gmfnet::Time::us_f(14.8));
  // Switch 5 has 3 interfaces (4, 2, 6).
  EXPECT_EQ(circ_of(f.net, f.sw5), gmfnet::Time::us_f(11.1));
}

TEST(SwitchModel, CircOfRespectsProcessors) {
  net::SwitchParams p;
  p.processors = 2;
  const net::Figure1Network f = net::make_figure1_network(10'000'000, p);
  // Switch 4: 4 interfaces over 2 CPUs -> 2 per CPU -> 7.4 us.
  EXPECT_EQ(circ_of(f.net, f.sw4), gmfnet::Time::us_f(7.4));
}

TEST(SwitchModel, CircOfRejectsNonSwitch) {
  const net::Figure1Network f = net::make_figure1_network();
  EXPECT_THROW((void)circ_of(f.net, f.host0), std::invalid_argument);
  EXPECT_THROW((void)circ_of(f.net, f.router7), std::invalid_argument);
}

/// Port-count sweep of the Conclusions' scaling argument: with Click's
/// measured costs, a single CPU sustains 100 Mbit/s only up to 33 ports
/// (CIRC < MFT = 123.04 us <=> ports <= 33).
class CircSweep : public ::testing::TestWithParam<int> {};

TEST_P(CircSweep, HundredMbitPortBudget) {
  const int ports = GetParam();
  const gmfnet::Time c = circ(ports, gmfnet::Time::ns(2700),
                              gmfnet::Time::ns(1000));
  const bool ok = sustains_linkspeed(c, 100'000'000);
  EXPECT_EQ(ok, ports <= 33) << "ports=" << ports;
}

INSTANTIATE_TEST_SUITE_P(Ports, CircSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 24, 32, 33, 34,
                                           48, 64));

}  // namespace
}  // namespace gmfnet::switchsim
