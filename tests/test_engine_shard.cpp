// The sharded engine's contracts:
//
//  * Partition correctness: at every point, two resident flows live in the
//    same shard iff their routes share links transitively (checked against
//    a reference union-find over the global flow set), shards merge when a
//    flow bridges domains and split again when a removal disconnects one
//    (rebuild-on-remove).
//
//  * Bit-identical results: evaluate(), what_if() and snapshot probes match
//    a from-scratch AnalysisContext + analyze_holistic run on the same
//    global flow set — same verdicts, same per-frame responses, same
//    fixed-point jitters — across randomized multi-domain scenarios and
//    mutation orders, and the sharded engine matches the single-domain
//    (shard_by_domain = false) engine.
//
//  * Snapshot consistency under concurrency: reader threads probing
//    published snapshots while the writer admits/removes always observe a
//    committed world — every probe bit-matches a from-scratch run over the
//    snapshot's own flow list (the same equivalence harness, applied to
//    whatever world the reader happened to catch).
//
//  * EngineStats: evaluations == full_runs + incremental_runs always (every
//    solver run is exactly one of the two), counters survive concurrent
//    batch probes, and reset_stats() zeroes them.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/priority.hpp"
#include "engine/analysis_engine.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"
#include "workload/taskset_gen.hpp"

namespace gmfnet::engine {
namespace {

constexpr ethernet::LinkSpeedBps kSpeed = 100'000'000;

core::HolisticResult from_scratch(const net::Network& net,
                                  const std::vector<gmf::Flow>& flows) {
  const core::AnalysisContext ctx(net, flows);
  return core::analyze_holistic(ctx);
}

void expect_bit_identical(const core::HolisticResult& inc,
                          const core::HolisticResult& cold,
                          const std::string& where) {
  ASSERT_EQ(inc.converged, cold.converged) << where;
  ASSERT_EQ(inc.schedulable, cold.schedulable) << where;
  // Without a fixed point the per-sweep partial state is not comparable.
  if (!inc.converged) return;
  EXPECT_TRUE(inc.jitters == cold.jitters)
      << where << ": jitter fixed points differ";
  ASSERT_EQ(inc.flows.size(), cold.flows.size()) << where;
  for (std::size_t f = 0; f < inc.flows.size(); ++f) {
    const core::FlowId id(static_cast<std::int32_t>(f));
    EXPECT_EQ(inc.worst_response(id), cold.worst_response(id))
        << where << ": flow " << f;
    ASSERT_EQ(inc.flows[f].frames.size(), cold.flows[f].frames.size());
    for (std::size_t k = 0; k < inc.flows[f].frames.size(); ++k) {
      EXPECT_EQ(inc.flows[f].frames[k].response,
                cold.flows[f].frames[k].response)
          << where << ": flow " << f << " frame " << k;
      EXPECT_EQ(inc.flows[f].frames[k].meets_deadline,
                cold.flows[f].frames[k].meets_deadline)
          << where << ": flow " << f << " frame " << k;
    }
  }
}

/// Reference partition: union-find over the engine's resident flows by
/// transitive link sharing, used to check shard assignment.
std::vector<std::size_t> reference_partition(
    const net::Network& net, const std::vector<gmf::Flow>& flows) {
  const core::AnalysisContext ctx(net, flows);
  const std::size_t n = flows.size();
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  const auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (std::size_t f = 0; f < n; ++f) {
    for (const net::LinkRef l :
         ctx.route_links(net::FlowId(static_cast<std::int32_t>(f)))) {
      for (const net::FlowId j : ctx.flows_on_link(l)) {
        const std::size_t a = find(f);
        const std::size_t b = find(static_cast<std::size_t>(j.v));
        if (a != b) parent[std::max(a, b)] = std::min(a, b);
      }
    }
  }
  std::vector<std::size_t> root(n);
  for (std::size_t f = 0; f < n; ++f) root[f] = find(f);
  return root;
}

void expect_partition_matches(const AnalysisEngine& eng,
                              const net::Network& net,
                              const std::vector<gmf::Flow>& flows,
                              const std::string& where) {
  ASSERT_EQ(eng.flow_count(), flows.size()) << where;
  const std::vector<std::size_t> root = reference_partition(net, flows);
  std::size_t domains = 0;
  for (std::size_t f = 0; f < flows.size(); ++f) domains += root[f] == f;
  EXPECT_EQ(eng.shard_count(), domains) << where;
  for (std::size_t a = 0; a < flows.size(); ++a) {
    for (std::size_t b = a + 1; b < flows.size(); ++b) {
      EXPECT_EQ(eng.shard_of(a) == eng.shard_of(b), root[a] == root[b])
          << where << ": flows " << a << "," << b;
    }
  }
}

gmf::Flow voip_between(const net::StarNetwork& star, std::size_t a,
                       std::size_t b, const std::string& name) {
  return workload::make_voip_flow(
      name, net::Route({star.hosts[a], star.sw, star.hosts[b]}));
}

TEST(EngineShard, DisjointFlowsGetTheirOwnShards) {
  const auto star = net::make_star_network(8, kSpeed);
  AnalysisEngine eng(star.net);
  eng.add_flow(voip_between(star, 0, 1, "a"));
  eng.add_flow(voip_between(star, 2, 3, "b"));
  eng.add_flow(voip_between(star, 4, 5, "c"));
  EXPECT_EQ(eng.shard_count(), 3u);
  EXPECT_NE(eng.shard_of(0), eng.shard_of(1));
  // Same host pair -> same links -> same shard.
  eng.add_flow(voip_between(star, 0, 1, "a2"));
  EXPECT_EQ(eng.shard_count(), 3u);
  EXPECT_EQ(eng.shard_of(0), eng.shard_of(3));
}

TEST(EngineShard, BridgeFlowMergesAndRemovalResplits) {
  const auto star = net::make_star_network(8, kSpeed);
  AnalysisEngine eng(star.net);
  eng.add_flow(voip_between(star, 0, 1, "a"));
  eng.add_flow(voip_between(star, 2, 3, "b"));
  ASSERT_EQ(eng.shard_count(), 2u);
  // 0 -> 3 shares host0's uplink with "a" and host3's downlink with "b".
  const net::FlowId bridge = eng.add_flow(voip_between(star, 0, 3, "bridge"));
  EXPECT_EQ(eng.shard_count(), 1u);
  EXPECT_TRUE(eng.evaluate().schedulable);
  // Rebuild-on-remove: dropping the bridge disconnects the domain again.
  ASSERT_TRUE(eng.remove_flow(static_cast<std::size_t>(bridge.v)));
  EXPECT_EQ(eng.shard_count(), 2u);
  EXPECT_NE(eng.shard_of(0), eng.shard_of(1));
  EXPECT_TRUE(eng.evaluate().schedulable);
}

TEST(EngineShard, MergeKeepsWarmStateOfEvaluatedParts) {
  // Bridging two domains while one of them holds a flow added since its
  // last solve must not go cold: covered flows warm-start, only the
  // uncovered ones (plus closure) restart.
  const auto star = net::make_star_network(8, kSpeed);
  AnalysisEngine eng(star.net);
  eng.add_flow(voip_between(star, 0, 1, "a"));
  eng.add_flow(voip_between(star, 2, 3, "b"));
  (void)eng.evaluate();
  eng.add_flow(voip_between(star, 0, 1, "a2"));  // domain A, not yet solved
  eng.add_flow(voip_between(star, 0, 3, "bridge"));  // merges A and B
  ASSERT_EQ(eng.shard_count(), 1u);

  const EngineStats before = eng.stats();
  const core::HolisticResult& merged = eng.evaluate();
  // The merge preserved the parts' converged state: an incremental run,
  // not a cold full one.
  EXPECT_EQ(eng.stats().full_runs, before.full_runs);
  EXPECT_EQ(eng.stats().incremental_runs, before.incremental_runs + 1);

  std::vector<gmf::Flow> mirror = {
      voip_between(star, 0, 1, "a"), voip_between(star, 2, 3, "b"),
      voip_between(star, 0, 1, "a2"), voip_between(star, 0, 3, "bridge")};
  expect_bit_identical(merged, from_scratch(star.net, mirror),
                       "merge with unevaluated add");
}

/// A small campus: `cells` independent stars, so scenarios have several
/// locality domains by construction.
struct Campus {
  net::Network net;
  std::vector<net::NodeId> hosts;  // all hosts, cell-major
  std::vector<net::NodeId> switches;
};

Campus make_campus(int cells, int hosts_per_cell) {
  Campus c;
  for (int cell = 0; cell < cells; ++cell) {
    const net::NodeId sw = c.net.add_switch("sw" + std::to_string(cell));
    c.switches.push_back(sw);
    for (int h = 0; h < hosts_per_cell; ++h) {
      const net::NodeId host = c.net.add_endhost(
          "c" + std::to_string(cell) + "h" + std::to_string(h));
      c.net.add_duplex_link(host, sw, kSpeed);
      c.hosts.push_back(host);
    }
  }
  return c;
}

class EngineShardEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(EngineShardEquivalence, RandomMultiDomainScenarios) {
  const std::uint64_t seed = GetParam();
  Rng rng(0x51a4d5eed + seed * 0x9E3779B9ull);

  const int cells = 2 + static_cast<int>(seed % 3);  // 2..4 domains
  const Campus campus = make_campus(cells, 4);

  workload::TasksetParams params;
  params.num_flows = 4 + static_cast<int>(rng.next_below(6));  // 4..9
  params.total_utilization = rng.uniform(0.15, 0.5);
  params.deadline_factor_lo = 2.0;
  params.deadline_factor_hi = 4.0;
  auto ts = workload::generate_taskset(campus.net, campus.hosts, params, rng);
  ASSERT_TRUE(ts.has_value());
  core::assign_priorities(ts->flows, core::PriorityScheme::kDeadlineMonotonic);

  AnalysisEngine eng(campus.net);
  AnalysisEngine mono(campus.net, {}, /*shard_by_domain=*/false);
  std::vector<gmf::Flow> mirror;

  const auto check = [&](const std::string& where) {
    const core::HolisticResult cold = from_scratch(campus.net, mirror);
    expect_bit_identical(eng.evaluate(), cold, where + " (sharded)");
    expect_bit_identical(mono.evaluate(), cold, where + " (single-domain)");
    expect_partition_matches(eng, campus.net, mirror, where);
    EXPECT_LE(mono.shard_count(), 1u) << where;
  };

  // Incremental adds across domains.
  for (std::size_t i = 0; i < ts->flows.size(); ++i) {
    eng.add_flow(ts->flows[i]);
    mono.add_flow(ts->flows[i]);
    mirror.push_back(ts->flows[i]);
    check("seed " + std::to_string(seed) + " after add " + std::to_string(i));
  }

  // Random removals (exercises split-on-remove and cache reindexing).
  const std::size_t removals = 1 + rng.next_below(3);
  for (std::size_t r = 0; r < removals && !mirror.empty(); ++r) {
    const auto idx = static_cast<std::size_t>(rng.next_below(mirror.size()));
    ASSERT_TRUE(eng.remove_flow(idx));
    ASSERT_TRUE(mono.remove_flow(idx));
    mirror.erase(mirror.begin() + static_cast<std::ptrdiff_t>(idx));
    if (mirror.empty()) break;
    check("seed " + std::to_string(seed) + " after remove " +
          std::to_string(idx));
  }

  // Re-add after removal (warm start over a shrunk fixed point).
  eng.add_flow(ts->flows[0]);
  mono.add_flow(ts->flows[0]);
  mirror.push_back(ts->flows[0]);
  check("seed " + std::to_string(seed) + " after re-add");

  // Snapshot probes: lock-free reader path vs cold truth, full result.
  const auto snap = eng.snapshot();
  ASSERT_EQ(snap->flow_count(), mirror.size());
  std::vector<gmf::Flow> cands = {ts->flows.back(), ts->flows[0]};
  for (std::size_t i = 0; i < cands.size(); ++i) {
    const WhatIfResult probe = snap->what_if(cands[i]);
    std::vector<gmf::Flow> with = mirror;
    with.push_back(cands[i]);
    expect_bit_identical(probe.result(), from_scratch(campus.net, with),
                         "seed " + std::to_string(seed) +
                             " snapshot candidate " + std::to_string(i));
    EXPECT_EQ(probe.admissible, probe.result().schedulable);
  }
  EXPECT_EQ(eng.flow_count(), mirror.size());  // probes committed nothing
}

INSTANTIATE_TEST_SUITE_P(Scenarios, EngineShardEquivalence,
                         ::testing::Range<std::uint64_t>(0, 40));

TEST(EngineShard, SnapshotStressReadersVsWriter) {
  // Writer thread admits/removes while reader threads probe whatever
  // snapshot is currently published.  Every probe must bit-match a
  // from-scratch run over the snapshot's own flow list — i.e. readers only
  // ever see committed worlds, never a half-applied mutation.
  const Campus campus = make_campus(3, 4);
  const auto flow_for = [&](int n, const std::string& prefix) {
    const int cell = n % 3;
    const std::size_t a = static_cast<std::size_t>(cell) * 4 +
                          static_cast<std::size_t>(n % 2) * 2;
    return workload::make_voip_flow(
        prefix + std::to_string(n),
        net::Route({campus.hosts[a],
                    campus.switches[static_cast<std::size_t>(cell)],
                    campus.hosts[a + 1]}),
        gmfnet::Time::ms(20), /*priority=*/5);
  };

  AnalysisEngine eng(campus.net);
  for (int n = 0; n < 6; ++n) eng.add_flow(flow_for(n, "seed"));
  (void)eng.evaluate();

  std::atomic<bool> stop{false};
  std::atomic<int> probes_ok{0};
  std::atomic<int> probes_bad{0};

  const int kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      int i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = eng.published();
        const gmf::Flow cand = flow_for(100 + (r * 7 + i) % 11, "probe");
        const WhatIfResult w = snap->what_if(cand);
        // Verify against cold truth for the very flow set the snapshot
        // claims to hold (self-consistency of the published world).
        std::vector<gmf::Flow> with = snap->flows();
        with.push_back(cand);
        const core::HolisticResult cold = from_scratch(campus.net, with);
        const bool ok =
            w.converged() == cold.converged &&
            w.admissible == cold.schedulable &&
            w.flow_count() == cold.flows.size() &&
            (!cold.converged || w.result().jitters == cold.jitters);
        (ok ? probes_ok : probes_bad).fetch_add(1,
                                                std::memory_order_relaxed);
        ++i;
      }
    });
  }

  // Writer: churn admissions and removals across all three domains, then
  // keep the readers alive until each has landed at least one probe (on a
  // single-core box the 40 rounds can finish before a reader ever runs).
  for (int round = 0; round < 40; ++round) {
    (void)eng.try_admit(flow_for(200 + round, "w"));
    if (eng.flow_count() > 8) {
      (void)eng.remove_flow(static_cast<std::size_t>(round) %
                            eng.flow_count());
    }
    (void)eng.evaluate();
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (probes_ok.load() + probes_bad.load() < kReaders &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(probes_bad.load(), 0);
  EXPECT_GT(probes_ok.load(), 0);
}

TEST(EngineShard, StatsConsistencyAndReset) {
  const auto star = net::make_star_network(10, kSpeed);
  AnalysisEngine eng(star.net);
  const auto consistent = [&] {
    const EngineStats s = eng.stats();
    return s.evaluations == s.full_runs + s.incremental_runs;
  };
  EXPECT_TRUE(consistent());

  eng.add_flow(voip_between(star, 0, 1, "a"));
  eng.add_flow(voip_between(star, 2, 3, "b"));
  (void)eng.evaluate();
  EXPECT_TRUE(consistent());
  EXPECT_EQ(eng.stats().full_runs, 2u);  // one cold run per new domain

  (void)eng.what_if(voip_between(star, 0, 1, "probe"));
  EXPECT_TRUE(consistent());

  // Concurrent batch probes record through the atomic counters.
  std::vector<gmf::Flow> cands;
  for (int i = 0; i < 16; ++i) {
    cands.push_back(voip_between(star, 4, 5, "c" + std::to_string(i)));
  }
  const EngineStats before = eng.stats();
  const auto batch = eng.evaluate_batch(cands);
  ASSERT_EQ(batch.size(), cands.size());
  const EngineStats after = eng.stats();
  EXPECT_TRUE(consistent());
  EXPECT_EQ(after.evaluations - before.evaluations, cands.size());

  eng.reset_stats();
  const EngineStats zero = eng.stats();
  EXPECT_EQ(zero.evaluations, 0u);
  EXPECT_EQ(zero.full_runs, 0u);
  EXPECT_EQ(zero.incremental_runs, 0u);
  EXPECT_EQ(zero.flow_analyses, 0u);
  EXPECT_EQ(zero.flow_results_reused, 0u);
  EXPECT_EQ(zero.sweeps, 0u);
  EXPECT_TRUE(consistent());
}

}  // namespace
}  // namespace gmfnet::engine
