// Checkpoint/restore contracts:
//
//  * Round trip: restore(save(engine)) reproduces the engine bit for bit —
//    same flows, same shard partition, same assembled HolisticResult and
//    fixed-point jitters, same snapshot what-if answers — over randomized
//    multi-domain scenarios with adds and removals (the engine-equivalence
//    harness), and with ZERO solver runs on the restored engine until its
//    first post-restore mutation.
//
//  * Robustness: truncated streams, bit-flipped bytes, bad magic and
//    forward-incompatible version fields are all rejected with
//    io::CheckpointError — never UB, never a silently wrong engine.
//
//  * Restore-then-mutate: a restored engine evolves exactly like the
//    engine it was saved from (and like a from-scratch solve).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/priority.hpp"
#include "engine/analysis_engine.hpp"
#include "io/checkpoint.hpp"
#include "net/topology.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"
#include "workload/taskset_gen.hpp"

namespace gmfnet::engine {
namespace {

constexpr ethernet::LinkSpeedBps kSpeed = 100'000'000;

core::HolisticResult from_scratch(const net::Network& net,
                                  const std::vector<gmf::Flow>& flows) {
  const core::AnalysisContext ctx(net, flows);
  return core::analyze_holistic(ctx);
}

void expect_bit_identical(const core::HolisticResult& a,
                          const core::HolisticResult& b,
                          const std::string& where) {
  ASSERT_EQ(a.converged, b.converged) << where;
  ASSERT_EQ(a.schedulable, b.schedulable) << where;
  if (!a.converged) return;
  EXPECT_TRUE(a.jitters == b.jitters) << where << ": jitter maps differ";
  ASSERT_EQ(a.flows.size(), b.flows.size()) << where;
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    const core::FlowId id(static_cast<std::int32_t>(f));
    EXPECT_EQ(a.worst_response(id), b.worst_response(id))
        << where << ": flow " << f;
    ASSERT_EQ(a.flows[f].frames.size(), b.flows[f].frames.size()) << where;
    for (std::size_t k = 0; k < a.flows[f].frames.size(); ++k) {
      EXPECT_EQ(a.flows[f].frames[k].response, b.flows[f].frames[k].response)
          << where << ": flow " << f << " frame " << k;
      EXPECT_EQ(a.flows[f].frames[k].meets_deadline,
                b.flows[f].frames[k].meets_deadline)
          << where << ": flow " << f << " frame " << k;
    }
  }
}

std::string checkpoint_of(AnalysisEngine& eng) {
  std::ostringstream os;
  eng.save(os);
  return os.str();
}

AnalysisEngine restore_from(const std::string& blob,
                            core::HolisticOptions opts = {}) {
  std::istringstream is(blob);
  return AnalysisEngine::restore(is, opts);
}

/// Multi-cell star campus (several locality domains by construction).
struct Campus {
  net::Network net;
  std::vector<net::NodeId> hosts;  // cell-major
  std::vector<net::NodeId> switches;
};

Campus make_campus(int cells, int hosts_per_cell) {
  Campus c;
  for (int cell = 0; cell < cells; ++cell) {
    const net::NodeId sw = c.net.add_switch("sw" + std::to_string(cell));
    c.switches.push_back(sw);
    for (int h = 0; h < hosts_per_cell; ++h) {
      const net::NodeId host = c.net.add_endhost(
          "c" + std::to_string(cell) + "h" + std::to_string(h));
      c.net.add_duplex_link(host, sw, kSpeed);
      c.hosts.push_back(host);
    }
  }
  return c;
}

class CheckpointRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CheckpointRoundTrip, RandomMultiDomainScenarios) {
  const std::uint64_t seed = GetParam();
  Rng rng(0xc8ec9f0117ull + seed * 0x9E3779B9ull);

  const int cells = 2 + static_cast<int>(seed % 3);
  const Campus campus = make_campus(cells, 4);

  workload::TasksetParams params;
  params.num_flows = 4 + static_cast<int>(rng.next_below(6));
  params.total_utilization = rng.uniform(0.15, 0.5);
  params.deadline_factor_lo = 2.0;
  params.deadline_factor_hi = 4.0;
  auto ts = workload::generate_taskset(campus.net, campus.hosts, params, rng);
  ASSERT_TRUE(ts.has_value());
  core::assign_priorities(ts->flows, core::PriorityScheme::kDeadlineMonotonic);

  AnalysisEngine eng(campus.net);
  std::vector<gmf::Flow> mirror;
  for (const gmf::Flow& f : ts->flows) {
    eng.add_flow(f);
    mirror.push_back(f);
  }
  // A couple of removals so caches have lived through id shifts and splits.
  const std::size_t removals = rng.next_below(3);
  for (std::size_t r = 0; r < removals && mirror.size() > 2; ++r) {
    const auto idx = static_cast<std::size_t>(rng.next_below(mirror.size()));
    ASSERT_TRUE(eng.remove_flow(idx));
    mirror.erase(mirror.begin() + static_cast<std::ptrdiff_t>(idx));
  }
  const core::HolisticResult before = eng.evaluate();  // copy

  const std::string blob = checkpoint_of(eng);
  AnalysisEngine restored = restore_from(blob);

  // Restore ran no solver: not on restore, not on the first evaluate.
  EXPECT_EQ(restored.stats().evaluations, 0u);
  const core::HolisticResult& after = restored.evaluate();
  EXPECT_EQ(restored.stats().evaluations, 0u);

  // The world is the same, bit for bit.
  const std::string where = "seed " + std::to_string(seed);
  expect_bit_identical(after, before, where);
  expect_bit_identical(after, from_scratch(campus.net, mirror),
                       where + " vs cold truth");
  ASSERT_EQ(restored.flow_count(), eng.flow_count());
  for (std::size_t f = 0; f < mirror.size(); ++f) {
    EXPECT_EQ(restored.flow(f), mirror[f]) << where << ": flow " << f;
  }
  ASSERT_EQ(restored.shard_count(), eng.shard_count()) << where;
  for (std::size_t a = 0; a < mirror.size(); ++a) {
    for (std::size_t b = a + 1; b < mirror.size(); ++b) {
      EXPECT_EQ(restored.shard_of(a) == restored.shard_of(b),
                eng.shard_of(a) == eng.shard_of(b))
          << where << ": flows " << a << "," << b;
    }
  }

  // Lock-free probes off the restored snapshot: identical to the live
  // engine's and to cold truth, and still zero engine solver runs.
  const gmf::Flow cand = ts->flows.front();
  const WhatIfResult live_probe = eng.published()->what_if(cand);
  const WhatIfResult restored_probe = restored.published()->what_if(cand);
  EXPECT_EQ(restored_probe.admissible, live_probe.admissible) << where;
  expect_bit_identical(restored_probe.result(), live_probe.result(),
                       where + " probe vs live");
  std::vector<gmf::Flow> with = mirror;
  with.push_back(cand);
  expect_bit_identical(restored_probe.result(), from_scratch(campus.net, with),
                       where + " probe vs cold truth");
  EXPECT_EQ(restored.stats().evaluations, 0u);

  // Restore-then-mutate: both engines evolve identically from here.
  eng.add_flow(cand);
  restored.add_flow(cand);
  expect_bit_identical(restored.evaluate(), eng.evaluate(),
                       where + " after mutate");
  expect_bit_identical(restored.evaluate(), from_scratch(campus.net, with),
                       where + " after mutate vs cold truth");
  EXPECT_GT(restored.stats().evaluations, 0u);  // the mutation solved

  const auto ridx = static_cast<std::size_t>(rng.next_below(with.size()));
  ASSERT_TRUE(eng.remove_flow(ridx));
  ASSERT_TRUE(restored.remove_flow(ridx));
  with.erase(with.begin() + static_cast<std::ptrdiff_t>(ridx));
  expect_bit_identical(restored.evaluate(), eng.evaluate(),
                       where + " after remove");
  expect_bit_identical(restored.evaluate(), from_scratch(campus.net, with),
                       where + " after remove vs cold truth");
}

INSTANTIATE_TEST_SUITE_P(Scenarios, CheckpointRoundTrip,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(Checkpoint, SaveIsDeterministicAndStableAcrossRestore) {
  const Campus campus = make_campus(3, 4);
  AnalysisEngine eng(campus.net);
  for (int n = 0; n < 9; ++n) {
    // Rotating host pairs inside flow n's own cell.
    const auto cell = static_cast<std::size_t>(n % 3);
    const std::size_t a = cell * 4 + static_cast<std::size_t>(n % 2) * 2;
    eng.add_flow(workload::make_voip_flow(
        "c" + std::to_string(n),
        net::Route({campus.hosts[a], campus.switches[cell],
                    campus.hosts[a + 1]})));
  }
  const std::string blob1 = checkpoint_of(eng);
  const std::string blob2 = checkpoint_of(eng);
  EXPECT_EQ(blob1, blob2);

  // save(restore(blob)) is the identity on the byte stream.
  AnalysisEngine restored = restore_from(blob1);
  EXPECT_EQ(checkpoint_of(restored), blob1);
}

TEST(Checkpoint, EmptyEngineRoundTrips) {
  const auto star = net::make_star_network(4, kSpeed);
  AnalysisEngine eng(star.net);
  AnalysisEngine restored = restore_from(checkpoint_of(eng));
  EXPECT_EQ(restored.flow_count(), 0u);
  EXPECT_EQ(restored.stats().evaluations, 0u);
  // An empty restored engine still serves probes.
  const gmf::Flow cand = workload::make_voip_flow(
      "c", net::Route({star.hosts[0], star.sw, star.hosts[1]}));
  EXPECT_TRUE(restored.published()->what_if(cand).admissible);
}

TEST(Checkpoint, SingleDomainModeRoundTrips) {
  const auto star = net::make_star_network(6, kSpeed);
  AnalysisEngine eng(star.net, {}, /*shard_by_domain=*/false);
  for (int n = 0; n < 4; ++n) {
    eng.add_flow(workload::make_voip_flow(
        "c" + std::to_string(n),
        net::Route({star.hosts[static_cast<std::size_t>(2 * (n % 2))],
                    star.sw,
                    star.hosts[static_cast<std::size_t>(2 * (n % 2) + 1)]})));
  }
  const core::HolisticResult before = eng.evaluate();
  AnalysisEngine restored = restore_from(checkpoint_of(eng));
  EXPECT_EQ(restored.shard_count(), 1u);
  expect_bit_identical(restored.evaluate(), before, "single-domain");
  EXPECT_EQ(restored.stats().evaluations, 0u);
}

// ---------------------------------------------------- malformed streams --

class CheckpointMalformed : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto star = net::make_star_network(6, kSpeed);
    AnalysisEngine eng(star.net);
    for (int n = 0; n < 4; ++n) {
      eng.add_flow(workload::make_voip_flow(
          "c" + std::to_string(n),
          net::Route({star.hosts[static_cast<std::size_t>(n)], star.sw,
                      star.hosts[static_cast<std::size_t>(n + 1)]})));
    }
    blob_ = checkpoint_of(eng);
  }

  std::string blob_;
};

TEST_F(CheckpointMalformed, TruncationAtEveryPrefixRejected) {
  // Every strict prefix must be rejected cleanly — header cuts, section
  // cuts, mid-field cuts.  Step 7 keeps the test fast while hitting every
  // alignment class.
  for (std::size_t len = 0; len < blob_.size(); len += 7) {
    EXPECT_THROW((void)restore_from(blob_.substr(0, len)),
                 io::CheckpointError)
        << "prefix length " << len;
  }
}

TEST_F(CheckpointMalformed, EveryBitFlipRejected) {
  // The payload is checksummed and the header fields are each validated, so
  // ANY single corrupted byte must surface as CheckpointError — never a
  // silently different engine.
  for (std::size_t i = 0; i < blob_.size(); i += 5) {
    std::string bad = blob_;
    bad[i] = static_cast<char>(bad[i] ^ 0x4D);
    EXPECT_THROW((void)restore_from(bad), io::CheckpointError)
        << "flipped byte " << i;
  }
}

TEST_F(CheckpointMalformed, TrailingGarbageRejected) {
  EXPECT_THROW((void)restore_from(blob_ + "extra"), io::CheckpointError);
}

TEST_F(CheckpointMalformed, BadMagicRejected) {
  std::string bad = blob_;
  bad[0] = 'X';
  try {
    (void)restore_from(bad);
    FAIL() << "expected CheckpointError";
  } catch (const io::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }
}

TEST_F(CheckpointMalformed, ForwardIncompatibleVersionRejected) {
  std::string bad = blob_;
  bad[io::ckpt::kVersionOffset] =
      static_cast<char>(io::ckpt::kVersion + 1);  // little-endian low byte
  try {
    (void)restore_from(bad);
    FAIL() << "expected CheckpointError";
  } catch (const io::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST_F(CheckpointMalformed, EmptyAndGarbageStreamsRejected) {
  EXPECT_THROW((void)restore_from(""), io::CheckpointError);
  EXPECT_THROW((void)restore_from("not a checkpoint at all"),
               io::CheckpointError);
}

TEST_F(CheckpointMalformed, AnalysisOptionMismatchRejected) {
  core::HolisticOptions other;
  other.hop.charge_self_circ = false;
  try {
    (void)restore_from(blob_, other);
    FAIL() << "expected CheckpointError";
  } catch (const io::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("options"), std::string::npos);
  }

  core::HolisticOptions sweeps;
  sweeps.max_sweeps = 7;
  EXPECT_THROW((void)restore_from(blob_, sweeps), io::CheckpointError);

  // Fields the fixed points do not depend on are free to differ.
  core::HolisticOptions threads;
  threads.threads = 2;
  threads.order = core::SweepOrder::kJacobi;
  threads.hop.use_envelope = false;
  EXPECT_NO_THROW((void)restore_from(blob_, threads));
}

TEST_F(CheckpointMalformed, SolverMismatchRejectedLoudly) {
  // blob_ was saved under the plain default; restoring it under a different
  // iteration strategy must be a loud CheckpointError naming the solver —
  // silently re-running persisted fixed points under another strategy would
  // make the restored world unauditable.  Same for the cyclic opt-in, which
  // changes the set of reachable fixed points.
  core::HolisticOptions anderson;
  anderson.solver.mode = core::SolverMode::kAnderson;
  try {
    (void)restore_from(blob_, anderson);
    FAIL() << "expected CheckpointError";
  } catch (const io::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("solver"), std::string::npos);
  }

  core::HolisticOptions cyclic;
  cyclic.solver.accept_cyclic = true;
  EXPECT_THROW((void)restore_from(blob_, cyclic), io::CheckpointError);

  // And the reverse direction: a checkpoint saved under Anderson restores
  // under Anderson but not under plain.
  core::HolisticOptions acc;
  acc.solver.mode = core::SolverMode::kAnderson;
  acc.solver.m = 2;
  const auto star = net::make_star_network(4, kSpeed);
  AnalysisEngine eng(star.net, acc);
  eng.add_flow(workload::make_voip_flow(
      "c0", net::Route({star.hosts[0], star.sw, star.hosts[1]})));
  (void)eng.evaluate();
  const std::string acc_blob = checkpoint_of(eng);
  EXPECT_NO_THROW((void)restore_from(acc_blob, acc));
  EXPECT_THROW((void)restore_from(acc_blob, core::HolisticOptions{}),
               io::CheckpointError);
}

}  // namespace
}  // namespace gmfnet::engine
