#include "sim/sim_link.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gmfnet::sim {
namespace {

constexpr ethernet::LinkSpeedBps kTenMbit = 10'000'000;

EthFrame frame_of(ethernet::Bits wire_bits, int frag = 0) {
  EthFrame f;
  f.packet = PacketId{net::FlowId(0), 0};
  f.frag_index = frag;
  f.wire_bits = wire_bits;
  return f;
}

struct Deliveries {
  std::vector<std::pair<EthFrame, Time>> got;
  LinkTransmitter::DeliverFn fn() {
    return [this](const EthFrame& f, Time at) { got.emplace_back(f, at); };
  }
};

TEST(SimLink, HostFifoTransmitsAtWireTime) {
  EventQueue q;
  Deliveries d;
  LinkTransmitter tx(q, kTenMbit, Time::zero(), /*auto_feed=*/true, d.fn());
  tx.enqueue(Time::zero(), frame_of(10'000));
  while (!q.empty()) q.run_next();
  ASSERT_EQ(d.got.size(), 1u);
  EXPECT_EQ(d.got[0].second, Time::ms(1));  // 10000 bits / 10 Mbit/s
}

TEST(SimLink, PropagationDelaysDelivery) {
  EventQueue q;
  Deliveries d;
  LinkTransmitter tx(q, kTenMbit, Time::us(250), true, d.fn());
  tx.enqueue(Time::zero(), frame_of(10'000));
  while (!q.empty()) q.run_next();
  ASSERT_EQ(d.got.size(), 1u);
  EXPECT_EQ(d.got[0].second, Time::ms(1) + Time::us(250));
}

TEST(SimLink, HostFifoIsBackToBack) {
  EventQueue q;
  Deliveries d;
  LinkTransmitter tx(q, kTenMbit, Time::zero(), true, d.fn());
  tx.enqueue(Time::zero(), frame_of(10'000, 0));
  tx.enqueue(Time::zero(), frame_of(20'000, 1));
  EXPECT_EQ(tx.queued(), 1u);  // first frame is on the wire already
  while (!q.empty()) q.run_next();
  ASSERT_EQ(d.got.size(), 2u);
  EXPECT_EQ(d.got[0].second, Time::ms(1));
  EXPECT_EQ(d.got[1].second, Time::ms(3));  // 1 ms + 2 ms, no gap
}

TEST(SimLink, HostFifoPreservesOrder) {
  EventQueue q;
  Deliveries d;
  LinkTransmitter tx(q, kTenMbit, Time::zero(), true, d.fn());
  for (int i = 0; i < 5; ++i) tx.enqueue(Time::zero(), frame_of(1'000, i));
  while (!q.empty()) q.run_next();
  ASSERT_EQ(d.got.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(d.got[static_cast<std::size_t>(i)].first.frag_index, i);
}

TEST(SimLink, IdleHostLinkRestartsOnNewFrame) {
  EventQueue q;
  Deliveries d;
  LinkTransmitter tx(q, kTenMbit, Time::zero(), true, d.fn());
  tx.enqueue(Time::zero(), frame_of(10'000));
  while (!q.empty()) q.run_next();
  EXPECT_FALSE(tx.busy());
  tx.enqueue(Time::ms(10), frame_of(10'000));
  while (!q.empty()) q.run_next();
  ASSERT_EQ(d.got.size(), 2u);
  EXPECT_EQ(d.got[1].second, Time::ms(11));
}

TEST(SimLink, CardFifoAcceptsOneFrameAtATime) {
  EventQueue q;
  Deliveries d;
  LinkTransmitter tx(q, kTenMbit, Time::zero(), /*auto_feed=*/false, d.fn());
  EXPECT_TRUE(tx.card_fifo_empty());
  EXPECT_TRUE(tx.try_load(Time::zero(), frame_of(10'000, 0)));
  EXPECT_FALSE(tx.card_fifo_empty());
  // Occupied until the transmission completes.
  EXPECT_FALSE(tx.try_load(Time::us(1), frame_of(1'000, 1)));
  while (!q.empty()) q.run_next();
  EXPECT_TRUE(tx.card_fifo_empty());
  EXPECT_TRUE(tx.try_load(Time::ms(2), frame_of(1'000, 1)));
  while (!q.empty()) q.run_next();
  ASSERT_EQ(d.got.size(), 2u);
  EXPECT_EQ(d.got[0].second, Time::ms(1));
  EXPECT_EQ(d.got[1].second, Time::ms(2) + Time::us(100));
}

}  // namespace
}  // namespace gmfnet::sim
