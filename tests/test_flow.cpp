#include "gmf/flow.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"

namespace gmfnet::gmf {
namespace {

net::Figure1Network fig() { return net::make_figure1_network(); }

net::Route route03(const net::Figure1Network& f) {
  return net::Route({f.host0, f.sw4, f.sw6, f.host3});
}

std::vector<FrameSpec> three_frames() {
  std::vector<FrameSpec> frames(3);
  frames[0] = {gmfnet::Time::ms(30), gmfnet::Time::ms(100),
               gmfnet::Time::ms(1), 12'000 * 8};
  frames[1] = {gmfnet::Time::ms(20), gmfnet::Time::ms(80),
               gmfnet::Time::ms(2), 4'000 * 8};
  frames[2] = {gmfnet::Time::ms(10), gmfnet::Time::ms(60),
               gmfnet::Time::zero(), 1'000 * 8};
  return frames;
}

TEST(Flow, BasicAccessors) {
  const auto f = fig();
  const Flow flow("f", route03(f), three_frames(), 5, true);
  EXPECT_EQ(flow.name(), "f");
  EXPECT_EQ(flow.frame_count(), 3u);
  EXPECT_EQ(flow.priority(), 5);
  EXPECT_TRUE(flow.rtp());
  EXPECT_EQ(flow.source(), f.host0);
  EXPECT_EQ(flow.destination(), f.host3);
  EXPECT_EQ(flow.frame(1).payload_bits, 4'000 * 8);
}

TEST(Flow, TsumSumsSeparations) {
  const auto f = fig();
  const Flow flow("f", route03(f), three_frames());
  EXPECT_EQ(flow.tsum(), gmfnet::Time::ms(60));
}

TEST(Flow, TsumWindowSpansArrivals) {
  const auto f = fig();
  const Flow flow("f", route03(f), three_frames());
  // eq (9): k2 arrivals span k2-1 separations.
  EXPECT_EQ(flow.tsum_window(0, 1), gmfnet::Time::zero());
  EXPECT_EQ(flow.tsum_window(0, 2), gmfnet::Time::ms(30));
  EXPECT_EQ(flow.tsum_window(0, 3), gmfnet::Time::ms(50));
  // Wrap-around: starting at frame 2, the next arrival is frame 0.
  EXPECT_EQ(flow.tsum_window(2, 2), gmfnet::Time::ms(10));
  EXPECT_EQ(flow.tsum_window(2, 3), gmfnet::Time::ms(40));
}

TEST(Flow, MaxJitterAndMinDeadline) {
  const auto f = fig();
  const Flow flow("f", route03(f), three_frames());
  EXPECT_EQ(flow.max_source_jitter(), gmfnet::Time::ms(2));
  EXPECT_EQ(flow.min_deadline(), gmfnet::Time::ms(60));
}

TEST(Flow, NbitsAddsHeaders) {
  const auto f = fig();
  const Flow plain("p", route03(f), three_frames(), 0, false);
  const Flow rtp("r", route03(f), three_frames(), 0, true);
  EXPECT_EQ(plain.nbits(2), 1'000 * 8 + 64);
  EXPECT_EQ(rtp.nbits(2), 1'000 * 8 + 64 + 128);
}

TEST(Flow, ValidateAcceptsWellFormed) {
  const auto f = fig();
  const Flow flow("f", route03(f), three_frames());
  EXPECT_NO_THROW(flow.validate(f.net));
}

TEST(Flow, ValidateRejectsEmptyFrames) {
  const auto f = fig();
  const Flow flow("f", route03(f), {});
  EXPECT_THROW(flow.validate(f.net), std::logic_error);
}

TEST(Flow, ValidateRejectsBadFrameFields) {
  const auto f = fig();
  auto frames = three_frames();
  frames[1].min_separation = gmfnet::Time::zero();
  EXPECT_THROW(Flow("f", route03(f), frames).validate(f.net),
               std::logic_error);

  frames = three_frames();
  frames[0].deadline = gmfnet::Time::zero();
  EXPECT_THROW(Flow("f", route03(f), frames).validate(f.net),
               std::logic_error);

  frames = three_frames();
  frames[2].jitter = gmfnet::Time(-1);
  EXPECT_THROW(Flow("f", route03(f), frames).validate(f.net),
               std::logic_error);

  frames = three_frames();
  frames[2].payload_bits = -8;
  EXPECT_THROW(Flow("f", route03(f), frames).validate(f.net),
               std::logic_error);

  frames = three_frames();
  frames[2].payload_bits = (65507 + 1) * 8;  // beyond UDP maximum
  EXPECT_THROW(Flow("f", route03(f), frames).validate(f.net),
               std::logic_error);
}

TEST(Flow, ValidateRejectsBadRoute) {
  const auto f = fig();
  const net::Route bad({f.host0, f.sw5, f.host3});  // missing links
  EXPECT_THROW(Flow("f", bad, three_frames()).validate(f.net),
               std::logic_error);
}

TEST(Flow, SporadicFactoryIsSingleFrame) {
  const auto f = fig();
  const Flow s = make_sporadic_flow("s", route03(f), gmfnet::Time::ms(20),
                                    gmfnet::Time::ms(10), 160 * 8, 3,
                                    gmfnet::Time::us(500), true);
  EXPECT_EQ(s.frame_count(), 1u);
  EXPECT_EQ(s.tsum(), gmfnet::Time::ms(20));
  EXPECT_EQ(s.priority(), 3);
  EXPECT_TRUE(s.rtp());
  EXPECT_EQ(s.frame(0).jitter, gmfnet::Time::us(500));
  EXPECT_NO_THROW(s.validate(f.net));
}

TEST(Flow, SettersWork) {
  const auto f = fig();
  Flow flow("f", route03(f), three_frames());
  flow.set_priority(9);
  flow.set_name("renamed");
  EXPECT_EQ(flow.priority(), 9);
  EXPECT_EQ(flow.name(), "renamed");
}

}  // namespace
}  // namespace gmfnet::gmf
