// LevelEnvelope / EvalCursor equivalence properties: for any set of
// jitter-shifted demand curves, envelope evaluation must be bit-identical
// to summing DemandCurve::mx/nx per interferer — at random t, at staircase
// boundaries (span-0 steps, exact step edges, periodic wrap points), at
// negative t, and under both monotone (cursor fast path) and adversarially
// non-monotone (binary-search fallback) query orders.
#include "gmf/envelope.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "util/rng.hpp"

namespace gmfnet::gmf {
namespace {

constexpr ethernet::LinkSpeedBps kSpeed = 10'000'000;

Flow make_flow(std::vector<FrameSpec> frames, const std::string& name) {
  const net::Figure1Network f = net::make_figure1_network();
  return Flow(name, net::Route({f.host0, f.sw4, f.sw6, f.host3}),
              std::move(frames));
}

/// A random GMF flow: 1..6 frames, random separations/sizes.  With
/// `constant_rate`, all separations equal — the heavy-dedupe case.
Flow random_flow(Rng& rng, const std::string& name, bool constant_rate) {
  const auto n = static_cast<std::size_t>(rng.uniform_i64(1, 6));
  const gmfnet::Time common =
      gmfnet::Time::us(rng.uniform_i64(500, 40'000));
  std::vector<FrameSpec> fr(n);
  for (auto& s : fr) {
    s.min_separation =
        constant_rate ? common : gmfnet::Time::us(rng.uniform_i64(500, 40'000));
    s.deadline = gmfnet::Time::ms(500);
    s.jitter = gmfnet::Time::zero();
    s.payload_bits = rng.uniform_i64(1, 20'000) * 8;
  }
  return make_flow(std::move(fr), name);
}

struct Level {
  std::vector<std::unique_ptr<DemandCurve>> curves;
  std::vector<EnvelopeSpec> specs;
};

Level random_level(Rng& rng, std::size_t k) {
  Level lvl;
  for (std::size_t i = 0; i < k; ++i) {
    const Flow f =
        random_flow(rng, "f" + std::to_string(i), rng.chance(0.3));
    const FlowLinkParams p(f, kSpeed);
    lvl.curves.push_back(std::make_unique<DemandCurve>(p));
    EnvelopeSpec spec;
    spec.curve = lvl.curves.back().get();
    spec.shift = gmfnet::Time(rng.uniform_i64(0, 50'000'000'000));  // 0..50ms
    lvl.specs.push_back(spec);
  }
  return lvl;
}

/// The reference: per-interferer binary-searched sums, exactly what the
/// naive per-hop path computes.
EnvelopeSums naive_sums(const Level& lvl, gmfnet::Time t) {
  EnvelopeSums s;
  for (const EnvelopeSpec& j : lvl.specs) {
    s.cost += j.curve->mx(t + j.shift).ps();
    s.count += j.curve->nx(t + j.shift);
  }
  return s;
}

void expect_equal(const EnvelopeSums& got, const EnvelopeSums& want,
                  gmfnet::Time t) {
  EXPECT_EQ(got.cost, want.cost) << "t=" << t.str();
  EXPECT_EQ(got.count, want.count) << "t=" << t.str();
}

/// Interesting probe points of one level: every step edge of every curve
/// (shifted back into the envelope's t domain) and its +-1 neighbors, the
/// periodic wrap points, and 0.
std::vector<gmfnet::Time> boundary_probes(const Level& lvl) {
  std::vector<gmfnet::Time> probes = {gmfnet::Time::zero()};
  for (const EnvelopeSpec& j : lvl.specs) {
    const gmfnet::Time::rep tsum = j.curve->tsum().ps();
    for (int cycle = 0; cycle < 3; ++cycle) {
      for (const DemandCurve::Step& s : j.curve->steps()) {
        // t such that (t + shift) mod tsum lands exactly on the span edge.
        const gmfnet::Time::rep at = cycle * tsum + s.span - j.shift.ps();
        for (const int d : {-1, 0, 1}) {
          probes.push_back(gmfnet::Time(at + d));
        }
      }
      probes.push_back(gmfnet::Time(cycle * tsum - j.shift.ps()));
    }
  }
  return probes;
}

class EnvelopeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnvelopeProperty, MonotoneSweepMatchesNaive) {
  Rng rng(0xe17e + GetParam() * 0x9E3779B9ull);
  const auto k = static_cast<std::size_t>(rng.uniform_i64(1, 8));
  const Level lvl = random_level(rng, k);

  LevelEnvelope env;
  EXPECT_FALSE(env.ensure(lvl.specs.data(), lvl.specs.size()));  // built
  EXPECT_TRUE(env.ensure(lvl.specs.data(), lvl.specs.size()));   // reused
  EvalCursor cur;

  // Monotone non-decreasing t sequence — the fixed-point iteration shape
  // that exercises the forward-cursor fast path, including repeats and
  // multi-cycle jumps over the periodic wrap.
  gmfnet::Time t = gmfnet::Time::zero();
  for (int probe = 0; probe < 400; ++probe) {
    expect_equal(env.eval(t, cur), naive_sums(lvl, t), t);
    if (rng.chance(0.15)) continue;  // repeated query (converged iterate)
    t += gmfnet::Time(rng.uniform_i64(0, 30'000'000'000));
  }
}

TEST_P(EnvelopeProperty, NonMonotoneAndNegativeMatchesNaive) {
  Rng rng(0xbad5eed + GetParam() * 0x517cc1b7ull);
  const auto k = static_cast<std::size_t>(rng.uniform_i64(1, 8));
  const Level lvl = random_level(rng, k);

  LevelEnvelope env;
  env.ensure(lvl.specs.data(), lvl.specs.size());
  EvalCursor cur;

  // Adversarial order: random jumps in both directions, including negative
  // t (MX/NX must read as zero) — the binary-search fallback path.
  for (int probe = 0; probe < 400; ++probe) {
    const gmfnet::Time t(rng.uniform_i64(-10'000'000'000, 200'000'000'000));
    expect_equal(env.eval(t, cur), naive_sums(lvl, t), t);
  }
}

TEST_P(EnvelopeProperty, BoundaryProbesMatchNaive) {
  Rng rng(0xb0 + GetParam());
  const auto k = static_cast<std::size_t>(rng.uniform_i64(1, 6));
  const Level lvl = random_level(rng, k);

  LevelEnvelope env;
  env.ensure(lvl.specs.data(), lvl.specs.size());
  EvalCursor cur;

  std::vector<gmfnet::Time> probes = boundary_probes(lvl);
  // Sorted (monotone cursor) and then shuffled (fallback) passes.
  std::sort(probes.begin(), probes.end());
  for (const gmfnet::Time t : probes) {
    expect_equal(env.eval(t, cur), naive_sums(lvl, t), t);
  }
  rng.shuffle(probes);
  for (const gmfnet::Time t : probes) {
    expect_equal(env.eval(t, cur), naive_sums(lvl, t), t);
  }
}

TEST(Envelope, RebuildOnChangedShiftResetsCursor) {
  Rng rng(42);
  Level lvl = random_level(rng, 4);
  LevelEnvelope env;
  env.ensure(lvl.specs.data(), lvl.specs.size());
  EvalCursor cur;
  const gmfnet::Time t1 = gmfnet::Time::ms(7);
  expect_equal(env.eval(t1, cur), naive_sums(lvl, t1), t1);

  // New jitter generation: shifts change, fingerprint must miss and the
  // stale cursor must not leak positions into the new build.
  for (EnvelopeSpec& s : lvl.specs) s.shift += gmfnet::Time::us(123);
  EXPECT_FALSE(env.ensure(lvl.specs.data(), lvl.specs.size()));
  const gmfnet::Time t2 = gmfnet::Time::us(3);  // behind the old cursor
  expect_equal(env.eval(t2, cur), naive_sums(lvl, t2), t2);
}

TEST(Envelope, SharedCursorAcrossChainsStaysExact) {
  // The per-hop analyses share one cursor between the busy-period chain and
  // every w(q) chain: chains restart below the previous chain's fixed
  // point, so the cursor must re-anchor and still be exact afterwards.
  Rng rng(7);
  const Level lvl = random_level(rng, 5);
  LevelEnvelope env;
  env.ensure(lvl.specs.data(), lvl.specs.size());
  EvalCursor cur;

  for (int chain = 0; chain < 8; ++chain) {
    gmfnet::Time t(chain * 3'000'000'000LL);  // seeds grow chain over chain
    for (int it = 0; it < 40; ++it) {
      expect_equal(env.eval(t, cur), naive_sums(lvl, t), t);
      t += gmfnet::Time(rng.uniform_i64(0, 2'000'000'000));
    }
  }
}

TEST(Envelope, EmptyLevelIsZero) {
  LevelEnvelope env;
  env.ensure(nullptr, 0);
  EvalCursor cur;
  const EnvelopeSums s = env.eval(gmfnet::Time::ms(5), cur);
  EXPECT_EQ(s.cost, 0);
  EXPECT_EQ(s.count, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnvelopeProperty,
                         ::testing::Range<std::uint64_t>(0, 24));

}  // namespace
}  // namespace gmfnet::gmf
