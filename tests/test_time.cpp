#include "util/time.hpp"

#include <gtest/gtest.h>

namespace gmfnet {
namespace {

TEST(Time, DefaultIsZero) {
  EXPECT_EQ(Time().ps(), 0);
  EXPECT_EQ(Time(), Time::zero());
}

TEST(Time, FactoriesScaleCorrectly) {
  EXPECT_EQ(Time::ns(1).ps(), 1'000);
  EXPECT_EQ(Time::us(1).ps(), 1'000'000);
  EXPECT_EQ(Time::ms(1).ps(), 1'000'000'000);
  EXPECT_EQ(Time::sec(1).ps(), 1'000'000'000'000);
}

TEST(Time, FractionalFactoriesRound) {
  EXPECT_EQ(Time::us_f(2.7).ps(), 2'700'000);
  EXPECT_EQ(Time::us_f(14.8).ps(), 14'800'000);
  EXPECT_EQ(Time::ms_f(1.2304).ps(), 1'230'400'000);
  EXPECT_EQ(Time::ns_f(0.4).ps(), 400);
}

TEST(Time, Conversions) {
  EXPECT_DOUBLE_EQ(Time::ms(30).to_sec(), 0.030);
  EXPECT_DOUBLE_EQ(Time::us(5).to_ns(), 5000.0);
  EXPECT_DOUBLE_EQ(Time::sec(2).to_ms(), 2000.0);
}

TEST(Time, Arithmetic) {
  const Time a = Time::ms(3);
  const Time b = Time::us(500);
  EXPECT_EQ((a + b).ps(), 3'500'000'000);
  EXPECT_EQ((a - b).ps(), 2'500'000'000);
  EXPECT_EQ((a * 3).ps(), 9'000'000'000);
  EXPECT_EQ((3 * a), a * 3);
  EXPECT_EQ((-a).ps(), -3'000'000'000);
}

TEST(Time, CompoundAssignment) {
  Time t = Time::us(10);
  t += Time::us(5);
  EXPECT_EQ(t, Time::us(15));
  t -= Time::us(1);
  EXPECT_EQ(t, Time::us(14));
  t *= 2;
  EXPECT_EQ(t, Time::us(28));
}

TEST(Time, Comparisons) {
  EXPECT_LT(Time::us(1), Time::us(2));
  EXPECT_LE(Time::us(2), Time::us(2));
  EXPECT_GT(Time::ms(1), Time::us(999));
  EXPECT_EQ(Time::ms(1), Time::us(1000));
}

TEST(Time, FloorCeilDivision) {
  EXPECT_EQ(Time::ms(10).floor_div(Time::ms(3)), 3);
  EXPECT_EQ(Time::ms(10).ceil_div(Time::ms(3)), 4);
  EXPECT_EQ(Time::ms(9).ceil_div(Time::ms(3)), 3);
  EXPECT_EQ(Time::zero().ceil_div(Time::ms(3)), 0);
  EXPECT_EQ(Time::ms(10).mod(Time::ms(3)), Time::ms(1));
  EXPECT_EQ(Time::ms(9).mod(Time::ms(3)), Time::zero());
}

TEST(Time, MinMax) {
  EXPECT_EQ(min(Time::us(1), Time::us(2)), Time::us(1));
  EXPECT_EQ(max(Time::us(1), Time::us(2)), Time::us(2));
  EXPECT_EQ(min(Time::us(2), Time::us(2)), Time::us(2));
}

TEST(Time, StrPicksUnits) {
  EXPECT_EQ(Time(500).str(), "500ps");
  EXPECT_EQ(Time::us_f(14.8).str(), "14.8us");
  EXPECT_EQ(Time::ms(30).str(), "30ms");
  EXPECT_EQ(Time::sec(2).str(), "2s");
  EXPECT_EQ(Time::ns(12).str(), "12ns");
}

TEST(Time, PaperConstantsAreExact) {
  // 12304 bits at 10 Mbit/s = 1.2304 ms; at 1 Gbit/s = 12.304 us.
  const Time t10m = Time(12304LL * 1'000'000'000'000 / 10'000'000);
  EXPECT_EQ(t10m, Time::ns(1'230'400));
  const Time t1g = Time(12304LL * 1'000'000'000'000 / 1'000'000'000);
  EXPECT_EQ(t1g, Time::ns(12'304));
}

}  // namespace
}  // namespace gmfnet
