#include "sim/sim_switch.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace gmfnet::sim {
namespace {

constexpr ethernet::LinkSpeedBps kTenMbit = 10'000'000;

/// Harness: a switch with two host neighbours (ids 1 and 2); frames from
/// flow f are forwarded to `next_of[f]`.
struct Harness {
  EventQueue q;
  net::NodeId sw{0};
  net::NodeId h1{1};
  net::NodeId h2{2};
  std::map<net::FlowId, net::NodeId> next_of;
  std::vector<std::pair<EthFrame, Time>> delivered;
  std::unique_ptr<LinkTransmitter> tx1;
  std::unique_ptr<LinkTransmitter> tx2;
  std::unique_ptr<SimSwitch> sswitch;

  explicit Harness(SimSwitch::Options opts = {}) {
    auto deliver = [this](const EthFrame& f, Time at) {
      delivered.emplace_back(f, at);
    };
    tx1 = std::make_unique<LinkTransmitter>(q, kTenMbit, Time::zero(), false,
                                            deliver);
    tx2 = std::make_unique<LinkTransmitter>(q, kTenMbit, Time::zero(), false,
                                            deliver);
    sswitch = std::make_unique<SimSwitch>(
        q, sw, std::vector<net::NodeId>{h1, h2}, opts,
        [this](const EthFrame& f) { return next_of.at(f.packet.flow); },
        std::map<net::NodeId, LinkTransmitter*>{{h1, tx1.get()},
                                                {h2, tx2.get()}});
  }

  EthFrame frame(int flow, std::int64_t prio, ethernet::Bits wire,
                 int frag = 0) {
    EthFrame f;
    f.packet = PacketId{net::FlowId(flow), 0};
    f.priority = prio;
    f.wire_bits = wire;
    f.frag_index = frag;
    return f;
  }

  void run_until(Time limit) {
    sswitch->start();
    while (!q.empty() && q.next_time() <= limit) q.run_next();
  }
};

TEST(SimSwitch, ForwardsAFrameWithinCircBudget) {
  Harness h;
  h.next_of[net::FlowId(0)] = h.h2;
  h.sswitch->receive(h.frame(0, 0, 12'304), h.h1);
  h.run_until(Time::ms(10));
  ASSERT_EQ(h.delivered.size(), 1u);
  // Analytic bound: ingress <= NF*CIRC, egress <= MFT + NF*CIRC + C with
  // CIRC = 2 interfaces * 3.7 us = 7.4 us, C = MFT = 1.2304 ms.
  const Time circ = Time::us_f(7.4);
  const Time mft = Time::ns(1'230'400);
  EXPECT_LE(h.delivered[0].second, circ + mft + circ + mft);
  EXPECT_GE(h.delivered[0].second, mft);  // at least the wire time
}

TEST(SimSwitch, RejectsFrameFromStranger) {
  Harness h;
  EXPECT_THROW(h.sswitch->receive(h.frame(0, 0, 1000), net::NodeId(9)),
               std::logic_error);
}

TEST(SimSwitch, RejectsBadConfiguration) {
  EventQueue q;
  EXPECT_THROW(SimSwitch(q, net::NodeId(0), {}, {}, nullptr, {}),
               std::invalid_argument);
  SimSwitch::Options bad;
  bad.poll_cost = Time::zero();
  auto deliver = [](const EthFrame&, Time) {};
  LinkTransmitter tx(q, kTenMbit, Time::zero(), false, deliver);
  EXPECT_THROW(SimSwitch(q, net::NodeId(0), {net::NodeId(1)}, bad, nullptr,
                         {{net::NodeId(1), &tx}}),
               std::invalid_argument);
}

TEST(SimSwitch, HigherPriorityLeavesFirst) {
  Harness h;
  h.next_of[net::FlowId(0)] = h.h2;
  h.next_of[net::FlowId(1)] = h.h2;
  h.next_of[net::FlowId(2)] = h.h2;
  // A blocker occupies the wire first (the non-preemptive MFT blocking of
  // eq (28)); while it transmits (~1.23 ms), both contenders get
  // classified, and the priority queue must then release the high-priority
  // frame first even though the low one arrived earlier.
  h.sswitch->receive(h.frame(2, /*prio=*/3, 12'304), h.h1);
  h.sswitch->receive(h.frame(0, /*prio=*/0, 12'304), h.h1);
  h.sswitch->receive(h.frame(1, /*prio=*/7, 12'304), h.h1);
  h.run_until(Time::ms(20));
  ASSERT_EQ(h.delivered.size(), 3u);
  EXPECT_EQ(h.delivered[0].first.packet.flow, net::FlowId(2));  // blocker
  EXPECT_EQ(h.delivered[1].first.packet.flow, net::FlowId(1));  // high
  EXPECT_EQ(h.delivered[2].first.packet.flow, net::FlowId(0));  // low
}

TEST(SimSwitch, SamePriorityIsFifo) {
  Harness h;
  h.next_of[net::FlowId(0)] = h.h2;
  h.next_of[net::FlowId(1)] = h.h2;
  h.sswitch->receive(h.frame(0, 3, 12'304), h.h1);
  h.sswitch->receive(h.frame(1, 3, 12'304), h.h1);
  h.run_until(Time::ms(20));
  ASSERT_EQ(h.delivered.size(), 2u);
  EXPECT_EQ(h.delivered[0].first.packet.flow, net::FlowId(0));
}

TEST(SimSwitch, SeparateOutputsDoNotBlockEachOther) {
  Harness h;
  h.next_of[net::FlowId(0)] = h.h1;
  h.next_of[net::FlowId(1)] = h.h2;
  h.sswitch->receive(h.frame(0, 0, 12'304), h.h2);
  h.sswitch->receive(h.frame(1, 0, 12'304), h.h1);
  h.run_until(Time::ms(20));
  ASSERT_EQ(h.delivered.size(), 2u);
  // Both complete within ~one frame time + task overheads: they used
  // different wires.
  for (const auto& [f, at] : h.delivered) {
    EXPECT_LE(at, Time::ms(2));
  }
}

TEST(SimSwitch, DrainsABurstWorkConserving) {
  Harness h;
  h.next_of[net::FlowId(0)] = h.h2;
  const int n = 8;
  for (int i = 0; i < n; ++i) {
    h.sswitch->receive(h.frame(0, 0, 12'304, i), h.h1);
  }
  h.run_until(Time::ms(30));
  ASSERT_EQ(h.delivered.size(), static_cast<std::size_t>(n));
  // In order.
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(h.delivered[static_cast<std::size_t>(i)].first.frag_index, i);
  }
  // Work conservation: n frames cannot take much longer than n wire times
  // plus per-frame task overheads (CIRC per frame is a generous envelope).
  const Time envelope =
      n * (Time::ns(1'230'400) + Time::us_f(7.4) + Time::us_f(7.4)) +
      Time::us_f(7.4) * 2;
  EXPECT_LE(h.delivered.back().second, envelope);
}

TEST(SimSwitch, BufferedCountsQueues) {
  Harness h;
  h.next_of[net::FlowId(0)] = h.h2;
  EXPECT_EQ(h.sswitch->buffered(), 0u);
  h.sswitch->receive(h.frame(0, 0, 12'304), h.h1);
  h.sswitch->receive(h.frame(0, 0, 12'304, 1), h.h1);
  EXPECT_EQ(h.sswitch->buffered(), 2u);
}

TEST(SimSwitch, TwoProcessorsServeFaster) {
  // With one interface per CPU, CIRC halves.  Task costs are inflated so
  // the CPU (not the 10 Mbit/s wire) is the bottleneck, as in the
  // Conclusions' network-processor discussion.
  SimSwitch::Options uni;
  uni.croute = Time::us(200);
  uni.csend = Time::us(100);
  SimSwitch::Options dual = uni;
  dual.processors = 2;
  Harness h1x(uni);
  Harness h2x(dual);
  for (Harness* h : {&h1x, &h2x}) {
    h->next_of[net::FlowId(0)] = h->h2;
    for (int i = 0; i < 20; ++i) {
      h->sswitch->receive(h->frame(0, 0, 1'000, i), h->h1);
    }
    h->run_until(Time::ms(50));
  }
  ASSERT_EQ(h1x.delivered.size(), 20u);
  ASSERT_EQ(h2x.delivered.size(), 20u);
  EXPECT_LT(h2x.delivered.back().second, h1x.delivered.back().second);
}

}  // namespace
}  // namespace gmfnet::sim
