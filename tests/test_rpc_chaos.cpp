// Randomized chaos soak: reader clients hammer a daemon with WHAT_IF_BATCH
// probes while the thread-local fault injector perturbs every client-side
// transport syscall — short reads/writes, EINTR storms, scheduling delays,
// and mid-frame connection resets.  The daemon's own syscalls stay honest:
// the faults model a hostile network / dying peers as seen from one side.
//
// The invariant the whole robustness layer exists for: no hang, no crash,
// and every verdict that IS delivered is bit-identical to the same probe
// on an in-process mirror engine.  Faults may cost availability (a request
// can exhaust its retries), never correctness.
//
// Request count defaults to a tier-1-friendly 2500 and scales up via
// GMFNET_CHAOS_REQUESTS (the CI chaos jobs run 10000 under ASan/TSan).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "engine/analysis_engine.hpp"
#include "rpc/client.hpp"
#include "rpc/fault_injection.hpp"
#include "rpc/server.hpp"
#include "util/rng.hpp"
#include "workload/scenario.hpp"

namespace gmfnet::rpc {
namespace {

constexpr ethernet::LinkSpeedBps kSpeed = 100'000'000;

struct Campus {
  net::Network net;
  std::vector<net::NodeId> hosts;  // cell-major
  std::vector<net::NodeId> switches;
};

Campus make_campus(int cells, int hosts_per_cell) {
  Campus c;
  for (int cell = 0; cell < cells; ++cell) {
    const net::NodeId sw = c.net.add_switch("sw" + std::to_string(cell));
    c.switches.push_back(sw);
    for (int h = 0; h < hosts_per_cell; ++h) {
      const net::NodeId host = c.net.add_endhost(
          "c" + std::to_string(cell) + "h" + std::to_string(h));
      c.net.add_duplex_link(host, sw, kSpeed);
      c.hosts.push_back(host);
    }
  }
  return c;
}

int chaos_requests() {
  if (const char* env = std::getenv("GMFNET_CHAOS_REQUESTS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 2'500;
}

bool bit_identical(const core::HolisticResult& a,
                   const core::HolisticResult& b) {
  if (a.converged != b.converged || a.schedulable != b.schedulable ||
      a.sweeps != b.sweeps || !(a.jitters == b.jitters) ||
      a.flows.size() != b.flows.size()) {
    return false;
  }
  for (std::size_t f = 0; f < a.flows.size(); ++f) {
    if (a.flows[f].frames.size() != b.flows[f].frames.size()) return false;
    for (std::size_t k = 0; k < a.flows[f].frames.size(); ++k) {
      if (a.flows[f].frames[k].response != b.flows[f].frames[k].response ||
          a.flows[f].frames[k].meets_deadline !=
              b.flows[f].frames[k].meets_deadline) {
        return false;
      }
    }
  }
  return true;
}

bool verdicts_match(const engine::WhatIfResult& got,
                    const engine::WhatIfResult& want) {
  return got.admissible == want.admissible &&
         bit_identical(got.result(), want.result());
}

TEST(RpcChaos, DeliveredVerdictsMatchTheMirrorUnderInjectedFaults) {
  const int cells = 3;
  const Campus campus = make_campus(cells, 4);

  // A static resident world, mirrored in-process: the daemon only serves
  // non-committing probes during the fault phase, so the mirror's batch
  // answers are THE expected bytes for every delivered verdict.
  auto engine = std::make_shared<engine::AnalysisEngine>(campus.net);
  engine::AnalysisEngine mirror(campus.net);
  for (int cell = 0; cell < cells; ++cell) {
    const auto a = static_cast<std::size_t>(cell * 4);
    const gmf::Flow resident = workload::make_voip_flow(
        "resident" + std::to_string(cell),
        net::Route({campus.hosts[a],
                    campus.switches[static_cast<std::size_t>(cell)],
                    campus.hosts[a + 1]}));
    ASSERT_TRUE(engine->try_admit(resident).has_value());
    ASSERT_TRUE(mirror.try_admit(resident).has_value());
  }

  std::vector<gmf::Flow> cands;
  for (int cell = 0; cell < cells; ++cell) {
    const auto a = static_cast<std::size_t>(cell * 4 + 2);
    cands.push_back(workload::make_voip_flow(
        "cand" + std::to_string(cell),
        net::Route({campus.hosts[a],
                    campus.switches[static_cast<std::size_t>(cell)],
                    campus.hosts[a + 1]})));
  }
  const std::vector<engine::WhatIfResult> expected =
      mirror.evaluate_batch(cands);
  ASSERT_EQ(expected.size(), cands.size());

  ServerConfig cfg;
  cfg.unix_path = "/tmp/gmfnet_chaos_" + std::to_string(::getpid()) + ".sock";
  cfg.io_timeout_ms = 2'000;
  cfg.idle_timeout_ms = 10'000;
  Server server(engine, cfg);
  std::thread serve([&server] { server.serve(); });

  // One shared (thread-safe) injector: the coverage counters below are
  // aggregates over every client thread.
  FaultProfile profile;
  profile.seed = 0xC0FFEE;
  profile.short_io = 0.20;
  profile.eintr = 0.15;
  profile.delay = 0.10;
  profile.max_delay_us = 200;
  profile.reset = 0.03;
  FaultInjector injector(profile);

  const int total = chaos_requests();
  constexpr int kThreads = 4;
  std::atomic<int> tickets{0};
  std::atomic<int> delivered{0};
  std::atomic<int> undeliverable{0};
  std::atomic<int> mismatches{0};

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int tid = 0; tid < kThreads; ++tid) {
    workers.emplace_back([&, tid] {
      ScopedFaultInjection scope(injector);
      Rng rng(0xBADD1Eull + static_cast<std::uint64_t>(tid) * 7919);
      ClientConfig ccfg;
      ccfg.connect_timeout_ms = 2'000;
      ccfg.request_timeout_ms = 2'000;
      ccfg.max_retries = 10;
      ccfg.backoff_initial_ms = 1;
      ccfg.backoff_max_ms = 16;
      ccfg.backoff_seed = static_cast<std::uint64_t>(tid) + 1;
      std::optional<Client> client;
      while (tickets.fetch_add(1, std::memory_order_relaxed) < total) {
        if (!client) {
          try {
            client.emplace(Client::connect_unix(cfg.unix_path, ccfg));
          } catch (const TransportError&) {
            continue;  // daemon busy reaping — next ticket retries
          }
        }
        const std::size_t lo = rng.next_below(cands.size());
        const std::size_t n = 1 + rng.next_below(cands.size() - lo);
        const std::vector<gmf::Flow> batch(
            cands.begin() + static_cast<std::ptrdiff_t>(lo),
            cands.begin() + static_cast<std::ptrdiff_t>(lo + n));
        try {
          const std::vector<engine::WhatIfResult> got =
              client->what_if_batch(batch);
          if (got.size() != n) {
            mismatches.fetch_add(1);
            continue;
          }
          for (std::size_t i = 0; i < n; ++i) {
            if (!verdicts_match(got[i], expected[lo + i])) {
              mismatches.fetch_add(1);
            }
          }
          delivered.fetch_add(1, std::memory_order_relaxed);
        } catch (const TransportError&) {
          // Retries exhausted inside a fault storm: availability lost,
          // never correctness.  Fresh connection for the next ticket.
          undeliverable.fetch_add(1, std::memory_order_relaxed);
          client.reset();
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(delivered.load() + undeliverable.load(), total);
  // The retry policy should deliver the vast majority despite the storm.
  EXPECT_GT(delivered.load(), total / 2)
      << "delivered " << delivered.load() << "/" << total;

  // The soak only proves something if every fault kind actually fired.
  EXPECT_GT(injector.ios(), 0u);
  EXPECT_GT(injector.shorts(), 0u);
  EXPECT_GT(injector.eintrs(), 0u);
  EXPECT_GT(injector.delays(), 0u);
  EXPECT_GT(injector.resets(), 0u);

  // The daemon came through unharmed: a clean client (no injector on this
  // thread) still gets mirror-identical answers for the full batch.
  Client clean = Client::connect_unix(cfg.unix_path);
  const std::vector<engine::WhatIfResult> after =
      clean.what_if_batch(cands);
  ASSERT_EQ(after.size(), expected.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_TRUE(verdicts_match(after[i], expected[i])) << "cand " << i;
  }
  EXPECT_EQ(clean.stats().flows, static_cast<std::uint64_t>(cells));
  clean.shutdown();
  serve.join();
}

}  // namespace
}  // namespace gmfnet::rpc
