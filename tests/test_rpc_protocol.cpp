// Wire-protocol contracts (mirroring tests/test_checkpoint.cpp's
// robustness suite for the on-disk format):
//
//  * Round trip: decode(encode(msg)) reproduces every request/response
//    type byte for byte (verified by re-encoding the decoded message).
//
//  * Robustness: every-prefix truncation and every-5th-byte corruption of
//    encoded frames, oversized and zero body lengths, unknown message
//    types, forward-incompatible versions, bad magic and trailing bytes
//    are all rejected with rpc::ProtocolError — never UB, never a
//    silently different message.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/context.hpp"
#include "core/holistic.hpp"
#include "net/topology.hpp"
#include "rpc/protocol.hpp"
#include "workload/scenario.hpp"

namespace gmfnet::rpc {
namespace {

constexpr ethernet::LinkSpeedBps kSpeed = 100'000'000;

/// A small solved world so response messages carry real HolisticResults
/// (multi-frame flows, populated jitter maps) instead of toy zeros.
struct World {
  net::StarNetwork topo = net::make_star_network(6, kSpeed);
  std::vector<gmf::Flow> flows;
  core::HolisticResult result;

  World() {
    for (int n = 0; n < 4; ++n) {
      flows.push_back(workload::make_voip_flow(
          "c" + std::to_string(n),
          net::Route({topo.hosts[static_cast<std::size_t>(n)], topo.sw,
                      topo.hosts[static_cast<std::size_t>(n + 1)]})));
    }
    const core::AnalysisContext ctx(topo.net, flows);
    result = core::analyze_holistic(ctx);
    EXPECT_TRUE(result.converged);
  }
};

World& world() {
  static World w;
  return w;
}

std::vector<std::string> representative_request_frames() {
  World& w = world();
  return {
      encode_request(AdmitRequest{w.flows[0]}),
      encode_request(RemoveRequest{3}),
      encode_request(WhatIfBatchRequest{w.flows}),
      encode_request(WhatIfBatchRequest{w.flows, /*verdict_only=*/true}),
      encode_request(StatsRequest{}),
      encode_request(SaveCheckpointRequest{}),
      encode_request(RestoreRequest{"pretend checkpoint bytes"}),
      encode_request(ShutdownRequest{}),
      encode_request(SubscribeRequest{7, 1234, 0x5EEDBEEF}),
      encode_request(SubscribeRequest{0, 0, 0}),  // brand-new replica
      encode_request(PromoteRequest{}),
      encode_request(RoleRequest{}),
      encode_request(RepointRequest{"unix:/tmp/primary.sock"}),
      encode_request(AdmitBatchRequest{w.flows}),
      encode_request(AdmitBatchRequest{{}}),  // degenerate empty batch
  };
}

std::vector<std::string> representative_response_frames() {
  World& w = world();
  engine::WhatIfResult wi = engine::WhatIfResult::from_full(true, w.result);
  engine::EngineStats stats;
  stats.evaluations = 7;
  stats.incremental_runs = 5;
  stats.sweeps = 21;
  stats.accel_accepted = 4;
  stats.accel_rejected = 1;
  StatsResponse sr;
  sr.stats = stats;
  sr.flows = 4;
  sr.shards = 2;
  sr.role = Role::kReplica;
  sr.epoch = 3;
  sr.commit_seq = 99;
  sr.uptime_ms = 123'456;
  sr.solver_mode =
      static_cast<std::uint8_t>(core::SolverMode::kAnderson);
  DeltaResponse admit_delta;
  admit_delta.kind = DeltaKind::kAdmit;
  admit_delta.epoch = 2;
  admit_delta.seq = 17;
  admit_delta.flows_after = 5;
  admit_delta.flow = w.flows[1];
  DeltaResponse remove_delta;
  remove_delta.kind = DeltaKind::kRemove;
  remove_delta.epoch = 2;
  remove_delta.seq = 18;
  remove_delta.flows_after = 4;
  remove_delta.index = 3;
  DeltaResponse restore_delta;
  restore_delta.kind = DeltaKind::kRestore;
  restore_delta.epoch = 2;
  restore_delta.seq = 19;
  restore_delta.flows_after = 0;
  restore_delta.checkpoint = std::string("ckpt \x00\x01 blob", 12);
  DeltaResponse batch_delta;
  batch_delta.kind = DeltaKind::kBatch;
  batch_delta.epoch = 2;
  batch_delta.seq = 20;
  batch_delta.flows_after = 5;
  batch_delta.ops.push_back(DeltaOp{DeltaKind::kAdmit, w.flows[0], 0});
  batch_delta.ops.push_back(DeltaOp{DeltaKind::kRemove, gmf::Flow{}, 2});
  batch_delta.ops.push_back(DeltaOp{DeltaKind::kAdmit, w.flows[2], 0});
  RoleResponse role;
  role.role = Role::kReplica;
  role.fenced = false;
  role.epoch = 2;
  role.commit_seq = 19;
  role.primary_addr = "127.0.0.1:7447";
  role.connected = true;
  role.full_syncs = 1;
  role.deltas_applied = 18;
  return {
      encode_response(AdmitResponse{w.result}),
      encode_response(AdmitResponse{std::nullopt}),
      encode_response(RemoveResponse{true}),
      encode_response(WhatIfBatchResponse{{wi, wi}}),
      // Lean and detailed results side by side in one batch.
      encode_response(WhatIfBatchResponse{
          {engine::WhatIfResult::verdict_only(true, true, 6, 5), wi,
           engine::WhatIfResult::verdict_only(false, false, 31, 9)}}),
      encode_response(sr),
      encode_response(
          SaveCheckpointResponse{std::string("blobby \x00\x01\x7f", 10)}),
      encode_response(RestoreResponse{42}),
      encode_response(ShutdownResponse{}),
      encode_response(SubscribeResponse{5, 101}),
      encode_response(SyncFullResponse{
          5, 100, 0xFEEDF00D, std::string("full sync \x00 bytes", 16)}),
      encode_response(admit_delta),
      encode_response(remove_delta),
      encode_response(restore_delta),
      encode_response(batch_delta),
      encode_response(PromoteResponse{6}),
      encode_response(role),
      encode_response(NotPrimaryResponse{"unix:/tmp/primary.sock", 5}),
      encode_response(ErrorResponse{"flow validation failed"}),
      encode_response(AdmitBatchResponse{{1, 0, 1, 1}, 7}),
      encode_response(AdmitBatchResponse{{}, 0}),
  };
}

// ------------------------------------------------------------ round trip --

TEST(RpcProtocol, RequestsRoundTripBitIdentically) {
  for (const std::string& frame : representative_request_frames()) {
    const Request decoded = decode_request(frame);
    EXPECT_EQ(encode_request(decoded), frame);
  }
}

TEST(RpcProtocol, ResponsesRoundTripBitIdentically) {
  for (const std::string& frame : representative_response_frames()) {
    const Response decoded = decode_response(frame);
    EXPECT_EQ(encode_response(decoded), frame);
  }
}

TEST(RpcProtocol, StatsResponseCarriesSolverModeAndAccelCounters) {
  // The operator-facing solver telemetry (gmfnet_ctl stats): which
  // iteration strategy the daemon's solves run under, and how often the
  // Anderson safeguard accepted/rolled back.
  engine::EngineStats stats;
  stats.sweeps = 33;
  stats.accel_accepted = 6;
  stats.accel_rejected = 2;
  StatsResponse sr;
  sr.stats = stats;
  sr.solver_mode = static_cast<std::uint8_t>(core::SolverMode::kAnderson);
  const Response decoded = decode_response(encode_response(sr));
  const auto& got = std::get<StatsResponse>(decoded);
  EXPECT_EQ(got.solver_mode,
            static_cast<std::uint8_t>(core::SolverMode::kAnderson));
  EXPECT_EQ(got.stats.sweeps, 33u);
  EXPECT_EQ(got.stats.accel_accepted, 6u);
  EXPECT_EQ(got.stats.accel_rejected, 2u);
}

TEST(RpcProtocol, VerdictOnlyWhatIfCarriesSummaryButNoPayload) {
  const engine::WhatIfResult lean =
      engine::WhatIfResult::verdict_only(true, false, 17, 42);
  const Response decoded =
      decode_response(encode_response(WhatIfBatchResponse{{lean}}));
  const auto& batch = std::get<WhatIfBatchResponse>(decoded);
  ASSERT_EQ(batch.results.size(), 1u);
  const engine::WhatIfResult& got = batch.results[0];
  EXPECT_TRUE(got.admissible);
  EXPECT_FALSE(got.converged());
  EXPECT_EQ(got.sweeps(), 17);
  EXPECT_EQ(got.flow_count(), 42u);
  EXPECT_FALSE(got.detailed());
  EXPECT_THROW((void)got.result(), std::logic_error);
  EXPECT_THROW((void)got.flow_result(net::FlowId(0)), std::logic_error);
}

TEST(RpcProtocol, WhatIfBatchRequestPreservesVerdictOnlyFlag) {
  for (const bool flag : {false, true}) {
    const Request decoded = decode_request(
        encode_request(WhatIfBatchRequest{world().flows, flag}));
    ASSERT_TRUE(std::holds_alternative<WhatIfBatchRequest>(decoded));
    EXPECT_EQ(std::get<WhatIfBatchRequest>(decoded).verdict_only, flag);
  }
}

TEST(RpcProtocol, AdmitRequestPreservesFlowExactly) {
  const gmf::Flow& original = world().flows[2];
  const Request decoded = decode_request(encode_request(AdmitRequest{original}));
  ASSERT_TRUE(std::holds_alternative<AdmitRequest>(decoded));
  EXPECT_EQ(std::get<AdmitRequest>(decoded).flow, original);
}

TEST(RpcProtocol, RequestAndResponseDecodersRejectEachOthersFrames) {
  for (const std::string& frame : representative_request_frames()) {
    EXPECT_THROW((void)decode_response(frame), ProtocolError);
  }
  for (const std::string& frame : representative_response_frames()) {
    EXPECT_THROW((void)decode_request(frame), ProtocolError);
  }
}

// ------------------------------------------------------------ robustness --

TEST(RpcProtocol, TruncationAtEveryPrefixRejected) {
  for (const std::string& frame : representative_request_frames()) {
    for (std::size_t len = 0; len < frame.size(); ++len) {
      EXPECT_THROW((void)decode_request(frame.substr(0, len)), ProtocolError)
          << "prefix length " << len;
    }
  }
  for (const std::string& frame : representative_response_frames()) {
    for (std::size_t len = 0; len < frame.size(); ++len) {
      EXPECT_THROW((void)decode_response(frame.substr(0, len)), ProtocolError)
          << "prefix length " << len;
    }
  }
}

TEST(RpcProtocol, CorruptionOfEveryFifthByteRejected) {
  // The body is checksummed and every header field is validated, so ANY
  // single corrupted byte must surface as ProtocolError.
  for (const std::string& frame : representative_request_frames()) {
    for (std::size_t i = 0; i < frame.size(); i += 5) {
      std::string bad = frame;
      bad[i] = static_cast<char>(bad[i] ^ 0x4D);
      EXPECT_THROW((void)decode_request(bad), ProtocolError)
          << "flipped byte " << i;
    }
  }
  for (const std::string& frame : representative_response_frames()) {
    for (std::size_t i = 0; i < frame.size(); i += 5) {
      std::string bad = frame;
      bad[i] = static_cast<char>(bad[i] ^ 0x4D);
      EXPECT_THROW((void)decode_response(bad), ProtocolError)
          << "flipped byte " << i;
    }
  }
}

/// Patches a little-endian u64 at `off`.
void patch_u64(std::string& frame, std::size_t off, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    frame[off + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

TEST(RpcProtocol, OversizedBodyLengthRejected) {
  std::string bad = encode_request(RemoveRequest{1});
  patch_u64(bad, kBodyLenOffset, kMaxBodyLen + 1);
  try {
    (void)decode_request(bad);
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("oversized"), std::string::npos);
  }
  // The bound must hold even for a header-only prefix — a stream reader
  // validates it before allocating or reading the body.
  EXPECT_THROW((void)decode_frame_header(
                   std::string_view(bad).substr(0, kHeaderSize)),
               ProtocolError);
}

TEST(RpcProtocol, ZeroLengthBodyRejected) {
  std::string bad = encode_request(StatsRequest{});
  bad.resize(kHeaderSize);  // drop the (reserved-byte) body entirely
  patch_u64(bad, kBodyLenOffset, 0);
  try {
    (void)decode_request(bad);
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("zero-length"), std::string::npos);
  }
}

TEST(RpcProtocol, UnknownMessageTypeRejected) {
  // 13/115 are the first unassigned values after the batch-admission
  // messages (requests end at ADMIT_BATCH=12, responses at
  // ADMIT_BATCH=114).
  for (const std::uint32_t type :
       {0u, 13u, 100u, 115u, 199u, 201u, 0xDEADu}) {
    std::string bad = encode_request(StatsRequest{});
    for (int i = 0; i < 4; ++i) {
      bad[kTypeOffset + static_cast<std::size_t>(i)] =
          static_cast<char>((type >> (8 * i)) & 0xFF);
    }
    try {
      (void)decode_request(bad);
      FAIL() << "expected ProtocolError for type " << type;
    } catch (const ProtocolError& e) {
      EXPECT_NE(std::string(e.what()).find("unknown message type"),
                std::string::npos);
    }
  }
}

TEST(RpcProtocol, InvalidEnumValuesInWellFramedBodiesRejected) {
  // A frame can be perfectly checksummed and still carry nonsense enum
  // values (a buggy or hostile peer); strict decode must reject them.
  StatsResponse sr;
  sr.role = static_cast<Role>(9);
  EXPECT_THROW((void)decode_response(encode_response(sr)), ProtocolError);

  DeltaResponse d;
  d.kind = static_cast<DeltaKind>(0);
  EXPECT_THROW((void)decode_response(encode_response(d)), ProtocolError);
  d.kind = static_cast<DeltaKind>(77);
  EXPECT_THROW((void)decode_response(encode_response(d)), ProtocolError);
}

TEST(RpcProtocol, ForwardIncompatibleVersionRejected) {
  std::string bad = encode_request(StatsRequest{});
  bad[kVersionOffset] = static_cast<char>(kVersion + 1);
  try {
    (void)decode_request(bad);
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(RpcProtocol, BadMagicRejected) {
  std::string bad = encode_request(StatsRequest{});
  bad[0] = 'X';
  try {
    (void)decode_request(bad);
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }
}

TEST(RpcProtocol, TrailingBytesRejected) {
  EXPECT_THROW((void)decode_request(encode_request(StatsRequest{}) + "x"),
               ProtocolError);
  EXPECT_THROW(
      (void)decode_response(encode_response(RestoreResponse{1}) + "extra"),
      ProtocolError);
}

TEST(RpcProtocol, EmptyAndGarbageBuffersRejected) {
  EXPECT_THROW((void)decode_request(""), ProtocolError);
  EXPECT_THROW((void)decode_request("not an rpc frame, not even close...."),
               ProtocolError);
  EXPECT_THROW((void)decode_response(std::string(kHeaderSize, '\0')),
               ProtocolError);
}

}  // namespace
}  // namespace gmfnet::rpc
